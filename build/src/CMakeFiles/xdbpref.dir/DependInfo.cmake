
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/schema.cc" "src/CMakeFiles/xdbpref.dir/catalog/schema.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/catalog/schema.cc.o.d"
  "/root/repo/src/catalog/tpcds_schema.cc" "src/CMakeFiles/xdbpref.dir/catalog/tpcds_schema.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/catalog/tpcds_schema.cc.o.d"
  "/root/repo/src/catalog/tpch_schema.cc" "src/CMakeFiles/xdbpref.dir/catalog/tpch_schema.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/catalog/tpch_schema.cc.o.d"
  "/root/repo/src/catalog/value.cc" "src/CMakeFiles/xdbpref.dir/catalog/value.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/catalog/value.cc.o.d"
  "/root/repo/src/common/math_util.cc" "src/CMakeFiles/xdbpref.dir/common/math_util.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/common/math_util.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/xdbpref.dir/common/random.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/common/random.cc.o.d"
  "/root/repo/src/datagen/tpcds_gen.cc" "src/CMakeFiles/xdbpref.dir/datagen/tpcds_gen.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/datagen/tpcds_gen.cc.o.d"
  "/root/repo/src/datagen/tpch_gen.cc" "src/CMakeFiles/xdbpref.dir/datagen/tpch_gen.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/datagen/tpch_gen.cc.o.d"
  "/root/repo/src/design/enumerator.cc" "src/CMakeFiles/xdbpref.dir/design/enumerator.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/design/enumerator.cc.o.d"
  "/root/repo/src/design/estimator.cc" "src/CMakeFiles/xdbpref.dir/design/estimator.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/design/estimator.cc.o.d"
  "/root/repo/src/design/schema_graph.cc" "src/CMakeFiles/xdbpref.dir/design/schema_graph.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/design/schema_graph.cc.o.d"
  "/root/repo/src/design/sd_design.cc" "src/CMakeFiles/xdbpref.dir/design/sd_design.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/design/sd_design.cc.o.d"
  "/root/repo/src/design/stars.cc" "src/CMakeFiles/xdbpref.dir/design/stars.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/design/stars.cc.o.d"
  "/root/repo/src/design/wd_design.cc" "src/CMakeFiles/xdbpref.dir/design/wd_design.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/design/wd_design.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/xdbpref.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/CMakeFiles/xdbpref.dir/engine/plan.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/engine/plan.cc.o.d"
  "/root/repo/src/engine/query.cc" "src/CMakeFiles/xdbpref.dir/engine/query.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/engine/query.cc.o.d"
  "/root/repo/src/engine/rewriter.cc" "src/CMakeFiles/xdbpref.dir/engine/rewriter.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/engine/rewriter.cc.o.d"
  "/root/repo/src/partition/bulk_loader.cc" "src/CMakeFiles/xdbpref.dir/partition/bulk_loader.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/partition/bulk_loader.cc.o.d"
  "/root/repo/src/partition/config.cc" "src/CMakeFiles/xdbpref.dir/partition/config.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/partition/config.cc.o.d"
  "/root/repo/src/partition/deployment.cc" "src/CMakeFiles/xdbpref.dir/partition/deployment.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/partition/deployment.cc.o.d"
  "/root/repo/src/partition/metrics.cc" "src/CMakeFiles/xdbpref.dir/partition/metrics.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/partition/metrics.cc.o.d"
  "/root/repo/src/partition/mutation.cc" "src/CMakeFiles/xdbpref.dir/partition/mutation.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/partition/mutation.cc.o.d"
  "/root/repo/src/partition/partitioner.cc" "src/CMakeFiles/xdbpref.dir/partition/partitioner.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/partition/partitioner.cc.o.d"
  "/root/repo/src/partition/presets.cc" "src/CMakeFiles/xdbpref.dir/partition/presets.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/partition/presets.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/xdbpref.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/xdbpref.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/xdbpref.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/xdbpref.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/partition.cc" "src/CMakeFiles/xdbpref.dir/storage/partition.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/storage/partition.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/xdbpref.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/storage/table.cc.o.d"
  "/root/repo/src/workloads/tpcds_queries.cc" "src/CMakeFiles/xdbpref.dir/workloads/tpcds_queries.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/workloads/tpcds_queries.cc.o.d"
  "/root/repo/src/workloads/tpcds_workload.cc" "src/CMakeFiles/xdbpref.dir/workloads/tpcds_workload.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/workloads/tpcds_workload.cc.o.d"
  "/root/repo/src/workloads/tpch_queries.cc" "src/CMakeFiles/xdbpref.dir/workloads/tpch_queries.cc.o" "gcc" "src/CMakeFiles/xdbpref.dir/workloads/tpch_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
