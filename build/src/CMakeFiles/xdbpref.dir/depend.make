# Empty dependencies file for xdbpref.
# This may be replaced when dependencies are built.
