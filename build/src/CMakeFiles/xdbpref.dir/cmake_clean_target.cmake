file(REMOVE_RECURSE
  "libxdbpref.a"
)
