# Empty compiler generated dependencies file for bench_fig11_locality_redundancy.
# This may be replaced when dependencies are built.
