# Empty dependencies file for bench_fig9_optimizations.
# This may be replaced when dependencies are built.
