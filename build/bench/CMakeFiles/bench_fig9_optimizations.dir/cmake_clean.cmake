file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_optimizations.dir/bench_fig9_optimizations.cc.o"
  "CMakeFiles/bench_fig9_optimizations.dir/bench_fig9_optimizations.cc.o.d"
  "bench_fig9_optimizations"
  "bench_fig9_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
