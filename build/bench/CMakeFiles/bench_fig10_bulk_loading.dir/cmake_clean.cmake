file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bulk_loading.dir/bench_fig10_bulk_loading.cc.o"
  "CMakeFiles/bench_fig10_bulk_loading.dir/bench_fig10_bulk_loading.cc.o.d"
  "bench_fig10_bulk_loading"
  "bench_fig10_bulk_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bulk_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
