# Empty compiler generated dependencies file for bench_fig10_bulk_loading.
# This may be replaced when dependencies are built.
