# Empty dependencies file for bench_fig8_per_query.
# This may be replaced when dependencies are built.
