file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_estimation.dir/bench_fig13_estimation.cc.o"
  "CMakeFiles/bench_fig13_estimation.dir/bench_fig13_estimation.cc.o.d"
  "bench_fig13_estimation"
  "bench_fig13_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
