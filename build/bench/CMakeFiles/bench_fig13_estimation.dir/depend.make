# Empty dependencies file for bench_fig13_estimation.
# This may be replaced when dependencies are built.
