# Empty compiler generated dependencies file for tpcds_engine_test.
# This may be replaced when dependencies are built.
