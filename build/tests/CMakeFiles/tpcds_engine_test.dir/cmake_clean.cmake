file(REMOVE_RECURSE
  "CMakeFiles/tpcds_engine_test.dir/tpcds_engine_test.cc.o"
  "CMakeFiles/tpcds_engine_test.dir/tpcds_engine_test.cc.o.d"
  "tpcds_engine_test"
  "tpcds_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcds_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
