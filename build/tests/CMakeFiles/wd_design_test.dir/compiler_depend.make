# Empty compiler generated dependencies file for wd_design_test.
# This may be replaced when dependencies are built.
