file(REMOVE_RECURSE
  "CMakeFiles/wd_design_test.dir/wd_design_test.cc.o"
  "CMakeFiles/wd_design_test.dir/wd_design_test.cc.o.d"
  "wd_design_test"
  "wd_design_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wd_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
