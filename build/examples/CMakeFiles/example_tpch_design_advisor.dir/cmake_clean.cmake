file(REMOVE_RECURSE
  "CMakeFiles/example_tpch_design_advisor.dir/tpch_design_advisor.cpp.o"
  "CMakeFiles/example_tpch_design_advisor.dir/tpch_design_advisor.cpp.o.d"
  "example_tpch_design_advisor"
  "example_tpch_design_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpch_design_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
