# Empty dependencies file for example_tpch_design_advisor.
# This may be replaced when dependencies are built.
