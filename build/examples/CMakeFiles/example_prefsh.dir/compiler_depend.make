# Empty compiler generated dependencies file for example_prefsh.
# This may be replaced when dependencies are built.
