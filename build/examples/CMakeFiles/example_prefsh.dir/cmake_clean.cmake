file(REMOVE_RECURSE
  "CMakeFiles/example_prefsh.dir/prefsh.cpp.o"
  "CMakeFiles/example_prefsh.dir/prefsh.cpp.o.d"
  "example_prefsh"
  "example_prefsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_prefsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
