file(REMOVE_RECURSE
  "CMakeFiles/example_tpcds_locality_explorer.dir/tpcds_locality_explorer.cpp.o"
  "CMakeFiles/example_tpcds_locality_explorer.dir/tpcds_locality_explorer.cpp.o.d"
  "example_tpcds_locality_explorer"
  "example_tpcds_locality_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpcds_locality_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
