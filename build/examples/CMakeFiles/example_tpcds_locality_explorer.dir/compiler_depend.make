# Empty compiler generated dependencies file for example_tpcds_locality_explorer.
# This may be replaced when dependencies are built.
