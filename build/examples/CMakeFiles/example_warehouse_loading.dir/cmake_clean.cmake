file(REMOVE_RECURSE
  "CMakeFiles/example_warehouse_loading.dir/warehouse_loading.cpp.o"
  "CMakeFiles/example_warehouse_loading.dir/warehouse_loading.cpp.o.d"
  "example_warehouse_loading"
  "example_warehouse_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_warehouse_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
