# Empty compiler generated dependencies file for example_warehouse_loading.
# This may be replaced when dependencies are built.
