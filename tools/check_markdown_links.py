#!/usr/bin/env python3
"""Markdown link checker — stdlib only, no network.

Scans the repository's *.md files for inline links/images
(``[text](target)``) and verifies that

* relative file targets exist (relative to the containing file);
* ``#anchor`` fragments — own-file or cross-file — resolve to a heading,
  using GitHub's slugging rules (lowercase, spaces to dashes, punctuation
  stripped, duplicate slugs suffixed -1, -2, ...).

External targets (http/https/mailto) are not fetched; bare URLs outside
link syntax are ignored. Fenced code blocks are skipped so shell snippets
containing ``[...](...)`` cannot false-positive.

Usage: python3 tools/check_markdown_links.py [root_dir]
Exits non-zero listing every broken link.
"""

import os
import re
import sys
import unicodedata

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
FENCE = re.compile(r"^\s*(```|~~~)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def slugify(title: str) -> str:
    """GitHub-style heading slug."""
    # Strip inline code/emphasis markers and links ([text](url) -> text).
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title)
    title = title.replace("`", "").replace("*", "").replace("_", " ")
    out = []
    for ch in title.strip().lower():
        if ch.isalnum():
            out.append(ch)
        elif ch in (" ", "-"):
            out.append("-" if ch == "-" else "-")
        else:
            cat = unicodedata.category(ch)
            # GitHub keeps marks/connector chars, drops punctuation/symbols.
            if cat.startswith("M"):
                out.append(ch)
    return "".join(out)


def heading_slugs(path: str) -> set:
    slugs = {}
    result = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if not m:
                continue
            slug = slugify(m.group(2))
            n = slugs.get(slug, 0)
            slugs[slug] = n + 1
            result.add(slug if n == 0 else f"{slug}-{n}")
    return result


def iter_markdown_files(root: str):
    skip_dirs = {".git", "build", "third_party", "node_modules"}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in skip_dirs and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(md_path: str, slug_cache: dict) -> list:
    errors = []
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in INLINE_LINK.finditer(line):
                target = m.group(1)
                if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                    continue  # http:, https:, mailto:, etc.
                path_part, _, fragment = target.partition("#")
                if path_part:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(md_path), path_part)
                    )
                    if not os.path.exists(resolved):
                        errors.append(f"{md_path}:{lineno}: missing file: {target}")
                        continue
                else:
                    resolved = md_path
                if fragment and resolved.endswith(".md"):
                    if resolved not in slug_cache:
                        slug_cache[resolved] = heading_slugs(resolved)
                    if fragment.lower() not in slug_cache[resolved]:
                        errors.append(
                            f"{md_path}:{lineno}: missing anchor: {target}"
                        )
    return errors


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    slug_cache = {}
    errors = []
    count = 0
    for md in sorted(iter_markdown_files(root)):
        count += 1
        errors.extend(check_file(md, slug_cache))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) across {count} markdown file(s)")
        return 1
    print(f"OK: {count} markdown file(s), no broken relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
