#!/usr/bin/env python3
"""Determinism / convention linter for the pref source tree (regex tier).

The paper's evaluation depends on every run being repeatable: parallel
folds are bit-identical by construction (DESIGN.md par.7), exchange counters
are deterministic (par.8), and query output must not depend on wall-clock
time or ad-hoc threads. This linter enforces the conventions that are
genuinely *lexical* — a forbidden token in a forbidden place — where a
regex over comment-stripped source is exact, fast, and build-free.

Type- and scope-sensitive invariants (unordered-container iteration
through `auto`/typedef chains, pool blocking discipline, include layering,
metric-name schema, dropped Status values) live in tools/pref_analyze.py,
which supersedes this tool's former unordered-iter rule with canonical-
type-aware checks (DESIGN.md §14).

Rules (each finding names one):

  raw-random      rand(), std::random_device, time(), or
                  std::chrono::system_clock outside src/common/random.*.
                  All randomness must flow through the seeded Rng so runs
                  replay; wall-clock time is allowed only in steady_clock
                  form (stopwatch/trace timing). Applies to src/ and
                  bench/ (benchmark numbers must replay too).

  raw-thread      std::thread construction outside src/common/thread_pool.*.
                  Ad-hoc threads bypass the bounded pool (oversubscription,
                  PREF_THREADS ignored) and its deterministic scheduling
                  contracts. Applies to src/ and bench/.

  raw-stdout      std::cout / printf / fprintf(stdout, ...) in src/ only.
                  Library code must not write to stdout: query output and
                  bench JSON are diffed byte-for-byte, and a stray print
                  corrupts them. Use stderr for diagnostics. Bench mains
                  are exempt — human-readable stdout is their job.

  raw-simd        #include of a raw intrinsics header (<immintrin.h>,
                  <x86intrin.h>, <emmintrin.h>, ...) outside
                  src/common/simd.h. All vector code lives behind the
                  dispatched kernels in common/simd.h, whose scalar
                  fallbacks are pinned bit-identical (DESIGN.md §13);
                  ad-hoc intrinsics elsewhere escape the
                  PREF_FORCE_SCALAR escape hatch and the identity tests.
                  Applies to src/ and bench/.

  wall-clock      Any clock read (std::chrono::{steady,system,
                  high_resolution}_clock or a Stopwatch) in the
                  observability paths that must be replayable:
                  src/engine/profile.*, src/engine/workload_monitor.*,
                  src/common/metrics_timeseries.*. Monitor windows and
                  timeline ticks advance on completion counts, never wall
                  time (DESIGN.md §11); wall-clock quantities enter a
                  profile only as values measured elsewhere (ExecStats /
                  SchedulerTimings). stopwatch.h itself stays the one
                  sanctioned steady_clock wrapper.

Allowlist: tools/lint_allowlist.txt (shared with pref_analyze.py) holds
`rule path` pairs for whole-file exemptions; each line must carry a
trailing `# reason`.

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Self-test: `--self-test` runs the linter over tests/lint_corpus/, where
each file declares its expected findings with `// expect: <rule>` markers
on the offending line. Markers naming rules owned by other tools
(pref_analyze's) are ignored here — each tool audits its own rules over
the shared corpus. The corpus runs under CTest
(lint_determinism_selftest) so a linter regression fails the suite like
any other bug.
"""

import argparse
import re
import sys
from pathlib import Path

from lint_common import (
    REPO_ROOT,
    SOURCE_SUFFIXES,
    Finding,
    default_allowlist,
    iter_source_files,
    load_allowlist,
    strip_code,
)

RULES = ("raw-random", "raw-thread", "raw-stdout", "raw-simd", "wall-clock")

RAW_RANDOM = re.compile(
    r"(?<![\w:])rand\s*\(|std::random_device|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|std::chrono::system_clock"
)
RAW_THREAD = re.compile(r"\bstd::thread\b(?!::hardware_concurrency)")

# Rule (raw-simd): every x86 intrinsics umbrella/sub-header ends in
# "intrin.h" and is included in angle form (quoted includes are project
# headers). strip_code leaves angle includes in the code stream.
RAW_SIMD = re.compile(r"#\s*include\s*<\w*intrin\.h>")

# Rule (wall-clock): the replayable observability layer may not read clocks.
WALL_CLOCK_PATHS = (
    "src/engine/profile",
    "src/engine/workload_monitor",
    "src/common/metrics_timeseries",
)
WALL_CLOCK = re.compile(
    r"std::chrono::(?:steady|system|high_resolution)_clock|\bStopwatch\b"
)
RAW_STDOUT = re.compile(r"\bstd::cout\b|(?<![\w:.])printf\s*\(|\bfprintf\s*\(\s*stdout\b")


def check_file(path, rel, allowed):
    findings = []
    try:
        text = path.read_text()
    except UnicodeDecodeError:
        return findings
    code, _ = strip_code(text)
    rel_posix = rel.as_posix()

    def allowed_rule(rule):
        return (rule, rel_posix) in allowed

    in_random = rel_posix.startswith("src/common/random")
    if not in_random and not allowed_rule("raw-random"):
        for idx, line in enumerate(code):
            m = RAW_RANDOM.search(line)
            if m:
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "raw-random",
                        f"'{m.group(0).strip()}' outside src/common/random.*; "
                        "route randomness through the seeded Rng and timing "
                        "through steady_clock so runs replay",
                    )
                )

    if rel_posix.startswith(WALL_CLOCK_PATHS) and not allowed_rule("wall-clock"):
        for idx, line in enumerate(code):
            m = WALL_CLOCK.search(line)
            if m:
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "wall-clock",
                        f"'{m.group(0).strip()}' in replayable observability "
                        "code; windows and ticks advance on completion "
                        "counts, never wall time — take timings from "
                        "ExecStats/SchedulerTimings measured elsewhere",
                    )
                )

    in_simd = rel_posix.startswith("src/common/simd")
    if not in_simd and not allowed_rule("raw-simd"):
        for idx, line in enumerate(code):
            m = RAW_SIMD.search(line)
            if m:
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "raw-simd",
                        f"'{m.group(0).strip()}' outside src/common/simd.h; "
                        "raw intrinsics belong behind the dispatched "
                        "kernels (scalar-fallback + bit-identity contract, "
                        "DESIGN.md §13)",
                    )
                )

    in_pool = rel_posix.startswith("src/common/thread_pool")
    if not in_pool and not allowed_rule("raw-thread"):
        for idx, line in enumerate(code):
            if RAW_THREAD.search(line):
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "raw-thread",
                        "raw std::thread outside thread_pool.*; use "
                        "ThreadPool (bounded, PREF_THREADS-aware) instead",
                    )
                )

    # Bench drivers own their stdout (the human-readable table); only
    # library code under src/ is barred from printing.
    if rel_posix.startswith("src/") and not allowed_rule("raw-stdout"):
        for idx, line in enumerate(code):
            m = RAW_STDOUT.search(line)
            if m:
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "raw-stdout",
                        f"'{m.group(0).strip()}' in library code; stdout is "
                        "reserved for query/bench output — write diagnostics "
                        "to stderr",
                    )
                )
    return findings


def lint(root, allowlist_path):
    allowed = load_allowlist(allowlist_path)
    findings = []
    for path in iter_source_files(root, ("src", "bench")):
        findings.extend(check_file(path, path.relative_to(root), allowed))
    return findings


def self_test(root):
    """Golden corpus: each tests/lint_corpus file names its expected
    findings with `// expect: <rule>` on the offending line. Only markers
    naming this tool's RULES are audited; pref_analyze markers in the same
    files are its self-test's job. The corpus is laid out as
    <corpus>/src/... so path-scoped rules apply exactly as in the real
    tree."""
    corpus = root / "tests" / "lint_corpus"
    if not corpus.is_dir():
        print(f"self-test corpus missing: {corpus}", file=sys.stderr)
        return 2
    failures = []
    checked_files = 0
    expect_re = re.compile(r"//\s*expect:\s*([\w-]+)")
    for path in sorted(corpus.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        checked_files += 1
        rel = path.relative_to(corpus)
        expected = set()
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for m in expect_re.finditer(line):
                if m.group(1) in RULES:
                    expected.add((lineno, m.group(1)))
        got = {
            (f.line, f.rule)
            for f in check_file(path, rel, allowed=set())
            if f.rule in RULES
        }
        for miss in sorted(expected - got):
            failures.append(f"{rel}:{miss[0]}: expected [{miss[1]}] did not fire")
        for extra in sorted(got - expected):
            failures.append(f"{rel}:{extra[0]}: unexpected [{extra[1]}]")
    if not checked_files:
        print("self-test corpus is empty", file=sys.stderr)
        return 2
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"lint_determinism self-test: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print(f"lint_determinism self-test: {checked_files} corpus files OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repo root (default: the checkout this script lives in)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist file (default: tools/lint_allowlist.txt)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the golden-corpus self-check instead of linting src/")
    args = parser.parse_args()
    root = args.root.resolve()
    if args.self_test:
        sys.exit(self_test(root))
    allowlist = args.allowlist or default_allowlist(root)
    findings = lint(root, allowlist)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)", file=sys.stderr)
        sys.exit(1)
    print("lint_determinism: clean")


if __name__ == "__main__":
    main()
