#!/usr/bin/env python3
"""Determinism / convention linter for the pref source tree.

The paper's evaluation depends on every run being repeatable: parallel
folds are bit-identical by construction (DESIGN.md par.7), exchange counters
are deterministic (par.8), and query output must not depend on hash-map
iteration order, wall-clock time, or ad-hoc threads. This linter enforces
the conventions that keep it that way — the half of the invariants the
compiler can't see (the other half is Clang thread-safety analysis and
[[nodiscard]] Status; DESIGN.md par.9).

Rules (each finding names one):

  unordered-iter  Range-for / iterator loops over std::unordered_{map,set}
                  (and multi variants) in result-producing code
                  (src/engine, src/partition, src/design). Iteration order
                  is unspecified: feeding it into query output, a float
                  fold, or anything order-sensitive breaks repeatability.
                  Suppress a deliberate site with a justified comment on
                  the same or preceding line:
                      // lint:ordered-fold: <why ordering is safe>
                  A bare "lint:ordered-fold" without a reason is itself a
                  finding.

  raw-random      rand(), std::random_device, time(), or
                  std::chrono::system_clock outside src/common/random.*.
                  All randomness must flow through the seeded Rng so runs
                  replay; wall-clock time is allowed only in steady_clock
                  form (stopwatch/trace timing). Applies to src/ and
                  bench/ (benchmark numbers must replay too).

  raw-thread      std::thread construction outside src/common/thread_pool.*.
                  Ad-hoc threads bypass the bounded pool (oversubscription,
                  PREF_THREADS ignored) and its deterministic scheduling
                  contracts. Applies to src/ and bench/.

  raw-stdout      std::cout / printf / fprintf(stdout, ...) in src/ only.
                  Library code must not write to stdout: query output and
                  bench JSON are diffed byte-for-byte, and a stray print
                  corrupts them. Use stderr for diagnostics. Bench mains
                  are exempt — human-readable stdout is their job.

  raw-simd        #include of a raw intrinsics header (<immintrin.h>,
                  <x86intrin.h>, <emmintrin.h>, ...) outside
                  src/common/simd.h. All vector code lives behind the
                  dispatched kernels in common/simd.h, whose scalar
                  fallbacks are pinned bit-identical (DESIGN.md §13);
                  ad-hoc intrinsics elsewhere escape the
                  PREF_FORCE_SCALAR escape hatch and the identity tests.
                  Applies to src/ and bench/.

  wall-clock      Any clock read (std::chrono::{steady,system,
                  high_resolution}_clock or a Stopwatch) in the
                  observability paths that must be replayable:
                  src/engine/profile.*, src/engine/workload_monitor.*,
                  src/common/metrics_timeseries.*. Monitor windows and
                  timeline ticks advance on completion counts, never wall
                  time (DESIGN.md §11); wall-clock quantities enter a
                  profile only as values measured elsewhere (ExecStats /
                  SchedulerTimings). stopwatch.h itself stays the one
                  sanctioned steady_clock wrapper.

Allowlist: tools/lint_determinism_allowlist.txt holds `rule path` pairs
(paths relative to the repo root) for whole-file exemptions; each line must
carry a trailing `# reason`.

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Self-test: `--self-test` runs the linter over tests/lint_corpus/, where
each file declares its expected findings with `// expect: <rule>` markers
on the offending line (and suppressed lines expect nothing). This golden
corpus runs under CTest (lint_determinism_selftest) so a linter regression
fails the suite like any other bug.
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SOURCE_SUFFIXES = {".cc", ".h", ".cpp", ".hpp"}

# Rule (a) only bites where unspecified order can reach results: the
# executor, the partitioning/loading layer, and the design/estimation
# stack (whose cost numbers feed figure JSON).
ORDER_SENSITIVE_DIRS = ("src/engine", "src/partition", "src/design")

SUPPRESS_TAG = "lint:ordered-fold"

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<[^;]*?>\s*&?\s*(\w+)\s*[;({=]"
)
UNORDERED_ALIAS = re.compile(
    r"\busing\s+(\w+)\s*=\s*std::unordered_(?:multi)?(?:map|set)\b"
)
RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*\*?([A-Za-z_][\w.\->]*)\s*\)")
ITERATOR_USE = re.compile(r"\b([A-Za-z_][\w.\->]*?)(?:\.|->)(?:begin|cbegin)\s*\(")

RAW_RANDOM = re.compile(
    r"(?<![\w:])rand\s*\(|std::random_device|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|std::chrono::system_clock"
)
RAW_THREAD = re.compile(r"\bstd::thread\b(?!::hardware_concurrency)")

# Rule (raw-simd): every x86 intrinsics umbrella/sub-header ends in
# "intrin.h" and is included in angle form (quoted includes are project
# headers). strip_code leaves angle includes in the code stream.
RAW_SIMD = re.compile(r"#\s*include\s*<\w*intrin\.h>")

# Rule (e): the replayable observability layer may not read clocks at all.
WALL_CLOCK_PATHS = (
    "src/engine/profile",
    "src/engine/workload_monitor",
    "src/common/metrics_timeseries",
)
WALL_CLOCK = re.compile(
    r"std::chrono::(?:steady|system|high_resolution)_clock|\bStopwatch\b"
)
RAW_STDOUT = re.compile(r"\bstd::cout\b|(?<![\w:.])printf\s*\(|\bfprintf\s*\(\s*stdout\b")


def strip_code(text):
    """Returns (code_lines, comment_lines): per-line source with comments
    and string/char literals blanked, and the comment text alone (where
    suppression tags live). Line count is preserved."""
    code = []
    comments = []
    i = 0
    n = len(text)
    cur_code = []
    cur_comment = []
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw_string"
                    i += m.end()
                    continue
            if ch == '"':
                state = "string"
                i += 1
                continue
            if ch == "'":
                state = "char"
                i += 1
                continue
            cur_code.append(ch)
            i += 1
        elif state == "line_comment":
            cur_comment.append(ch)
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                cur_comment.append(ch)
                i += 1
        elif state == "string":
            if ch == "\\":
                i += 2
            elif ch == '"':
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "char":
            if ch == "\\":
                i += 2
            elif ch == "'":
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                i += len(raw_delim)
            else:
                i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def load_allowlist(path):
    allowed = set()
    if not path.exists():
        return allowed
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, reason = line.partition("#")
        parts = body.split()
        if len(parts) != 2 or not reason.strip():
            sys.exit(
                f"{path}:{lineno}: allowlist entries are '<rule> <path>  # reason'"
            )
        allowed.add((parts[0], parts[1]))
    return allowed


def unordered_names(code_lines):
    """Names of variables/members/aliases in this file whose type is an
    unordered container (one file at a time: good enough for our tree,
    where such containers are function-local or private members)."""
    names = set()
    aliases = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL.finditer(text):
        names.add(m.group(1))
    for m in UNORDERED_ALIAS.finditer(text):
        aliases.add(m.group(1))
    if aliases:
        alias_decl = re.compile(
            r"\b(?:" + "|".join(re.escape(a) for a in aliases) + r")\s+(\w+)\s*[;({=]"
        )
        for m in alias_decl.finditer(text):
            names.add(m.group(1))
    return names


def base_name(expr):
    """`mg.index` -> `index`, `groups` -> `groups`, `it->second` -> `second`."""
    return re.split(r"\.|->", expr)[-1]


def check_file(path, rel, allowed):
    findings = []
    try:
        text = path.read_text()
    except UnicodeDecodeError:
        return findings
    code, comments = strip_code(text)
    rel_posix = rel.as_posix()

    def allowed_rule(rule):
        return (rule, rel_posix) in allowed

    def suppressed(idx):
        """lint:ordered-fold on this line or in the contiguous comment
        block immediately above it; the tag must carry a reason (anything
        after the colon, possibly continuing on later comment lines)."""
        candidates = [idx]
        j = idx - 1
        # Walk up through comment-only lines so a multi-line justification
        # (tag on its first line) still covers the loop beneath it.
        while j >= 0 and not code[j].strip() and comments[j].strip():
            candidates.append(j)
            j -= 1
        for j in candidates:
            comment = comments[j]
            if SUPPRESS_TAG in comment:
                after = comment.split(SUPPRESS_TAG, 1)[1]
                reason = after.lstrip(":").strip()
                if reason:
                    return True
                findings.append(
                    Finding(
                        rel_posix,
                        j + 1,
                        "unordered-iter",
                        f"'{SUPPRESS_TAG}' suppression without a reason; write "
                        f"'// {SUPPRESS_TAG}: <why ordering is safe>'",
                    )
                )
                return True  # malformed tag already reported; don't double-fire
        return False

    order_sensitive = rel_posix.startswith(ORDER_SENSITIVE_DIRS)
    if order_sensitive and not allowed_rule("unordered-iter"):
        names = unordered_names(code)
        # Members declared in the sibling header (foo.cc -> foo.h) are
        # visible here too; unordered members iterated from the .cc would
        # otherwise slip through the per-file scan.
        sibling = path.with_suffix(".h")
        if path.suffix in (".cc", ".cpp") and sibling.is_file():
            names |= unordered_names(strip_code(sibling.read_text())[0])
        for idx, line in enumerate(code):
            hits = []
            m = RANGE_FOR.search(line)
            if m:
                hits.append(m.group(1))
            for it in ITERATOR_USE.finditer(line):
                hits.append(it.group(1))
            for expr in hits:
                if base_name(expr) in names:
                    if not suppressed(idx):
                        findings.append(
                            Finding(
                                rel_posix,
                                idx + 1,
                                "unordered-iter",
                                f"iteration over unordered container '{expr}' in "
                                "result-producing code; order is unspecified — fold "
                                f"deterministically or justify with '// {SUPPRESS_TAG}: ...'",
                            )
                        )
                    break  # one finding per line

    in_random = rel_posix.startswith("src/common/random")
    if not in_random and not allowed_rule("raw-random"):
        for idx, line in enumerate(code):
            m = RAW_RANDOM.search(line)
            if m:
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "raw-random",
                        f"'{m.group(0).strip()}' outside src/common/random.*; "
                        "route randomness through the seeded Rng and timing "
                        "through steady_clock so runs replay",
                    )
                )

    if rel_posix.startswith(WALL_CLOCK_PATHS) and not allowed_rule("wall-clock"):
        for idx, line in enumerate(code):
            m = WALL_CLOCK.search(line)
            if m:
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "wall-clock",
                        f"'{m.group(0).strip()}' in replayable observability "
                        "code; windows and ticks advance on completion "
                        "counts, never wall time — take timings from "
                        "ExecStats/SchedulerTimings measured elsewhere",
                    )
                )

    in_simd = rel_posix.startswith("src/common/simd")
    if not in_simd and not allowed_rule("raw-simd"):
        for idx, line in enumerate(code):
            m = RAW_SIMD.search(line)
            if m:
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "raw-simd",
                        f"'{m.group(0).strip()}' outside src/common/simd.h; "
                        "raw intrinsics belong behind the dispatched "
                        "kernels (scalar-fallback + bit-identity contract, "
                        "DESIGN.md §13)",
                    )
                )

    in_pool = rel_posix.startswith("src/common/thread_pool")
    if not in_pool and not allowed_rule("raw-thread"):
        for idx, line in enumerate(code):
            if RAW_THREAD.search(line):
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "raw-thread",
                        "raw std::thread outside thread_pool.*; use "
                        "ThreadPool (bounded, PREF_THREADS-aware) instead",
                    )
                )

    # Bench drivers own their stdout (the human-readable table); only
    # library code under src/ is barred from printing.
    if rel_posix.startswith("src/") and not allowed_rule("raw-stdout"):
        for idx, line in enumerate(code):
            m = RAW_STDOUT.search(line)
            if m:
                findings.append(
                    Finding(
                        rel_posix,
                        idx + 1,
                        "raw-stdout",
                        f"'{m.group(0).strip()}' in library code; stdout is "
                        "reserved for query/bench output — write diagnostics "
                        "to stderr",
                    )
                )
    return findings


def lint(root, allowlist_path):
    allowed = load_allowlist(allowlist_path)
    findings = []
    for tree in ("src", "bench"):
        for path in sorted((root / tree).rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            findings.extend(check_file(path, path.relative_to(root), allowed))
    return findings


def self_test(root):
    """Golden corpus: each tests/lint_corpus file names its expected
    findings with `// expect: <rule>` on the offending line. The corpus is
    laid out as <corpus>/src/... so path-scoped rules apply exactly as they
    do in the real tree."""
    corpus = root / "tests" / "lint_corpus"
    if not corpus.is_dir():
        print(f"self-test corpus missing: {corpus}", file=sys.stderr)
        return 2
    failures = []
    checked_files = 0
    expect_re = re.compile(r"//\s*expect:\s*([\w-]+)")
    for path in sorted(corpus.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        checked_files += 1
        rel = path.relative_to(corpus)
        expected = set()
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for m in expect_re.finditer(line):
                expected.add((lineno, m.group(1)))
        got = {
            (f.line, f.rule)
            for f in check_file(path, rel, allowed=set())
        }
        for miss in sorted(expected - got):
            failures.append(f"{rel}:{miss[0]}: expected [{miss[1]}] did not fire")
        for extra in sorted(got - expected):
            failures.append(f"{rel}:{extra[0]}: unexpected [{extra[1]}]")
    if not checked_files:
        print("self-test corpus is empty", file=sys.stderr)
        return 2
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"lint_determinism self-test: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print(f"lint_determinism self-test: {checked_files} corpus files OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repo root (default: the checkout this script lives in)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist file (default: tools/lint_determinism_allowlist.txt)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the golden-corpus self-check instead of linting src/")
    args = parser.parse_args()
    root = args.root.resolve()
    if args.self_test:
        sys.exit(self_test(root))
    allowlist = args.allowlist or root / "tools" / "lint_determinism_allowlist.txt"
    findings = lint(root, allowlist)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)", file=sys.stderr)
        sys.exit(1)
    print("lint_determinism: clean")


if __name__ == "__main__":
    main()
