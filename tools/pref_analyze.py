#!/usr/bin/env python3
"""pref-analyze: type- and scope-aware static analysis for the pref tree.

Supersedes the regex heuristics that used to guess at these invariants in
lint_determinism.py (which keeps only the genuinely lexical rules). Every
rule here needs *resolution* — what type does this expression have, which
module does this include land in, is this literal in the canonical
registry — organized as pluggable rules over a shared per-file fact
stream. See DESIGN.md §14 for the invariant catalog.

Rules:

  pool-discipline   Blocking calls (CondVar waits, sleep_for, .join(),
                    scheduler Take/WaitAny, MigrationExecutor::Wait*)
                    inside a lambda submitted to the ThreadPool (Post /
                    ParallelFor*). A pool lane that blocks on work the pool
                    itself must run is the PR 6 deadlock class; the pool's
                    own fork-joins are help-first and safe, anything else
                    parked inside a task is not. Suppress a provably-safe
                    site with `// lint:pool-wait: <why>`.

  unordered-iter    Iteration over std::unordered_map/unordered_set in
                    result-producing code (src/engine, src/partition,
                    src/design) — through real types: auto, structured
                    bindings, typedef/using chains, members declared in
                    other files, accessor return types. Unordered visit
                    order leaks into results unless the fold is order-
                    insensitive; justify with `// lint:ordered-fold: <why>`
                    (DESIGN.md §9).

  layering          The include DAG. Modules are ranked
                      common(0) < catalog(1) < storage(2)
                      < datagen/partition(3) < design(4) < engine(5)
                      < sql(6) < workloads(7)
                    and a file may include only its own module or a
                    strictly lower rank — back-edges (and same-rank
                    cross-module edges) are findings. tests/bench/examples
                    sit outside the DAG and may include anything.

  metric-name       Every metric/span/category string literal passed to
                    MetricsRegistry::{GetCounter,GetGauge,GetHistogram},
                    TraceSpan, or Tracer::AddComplete in src/ must be a
                    name registered in src/common/metric_names.h (or carry
                    a registered `...Prefix` constant's prefix). Unknown
                    names fork the BENCH_*.json schema silently; a name at
                    edit distance 1 of a registered one (typo, swapped
                    letters) is reported as a near-duplicate. Call sites
                    normally use the constants, which makes the literal
                    disappear entirely — the rule is the backstop.

  status-discipline Status/Result values constructed and dropped: swallowed
                    by a (void) cast, a bare call statement whose (sole)
                    declared return type is Status/Result, or a local
                    Status/Result never read after initialization. Use
                    PREF_RETURN_NOT_OK / PREF_CHECK_OK, or justify a
                    deliberate drop with `// lint:status-ok: <why>`.

Frontends. Facts are extracted by one of two interchangeable frontends and
fed to the same rule code:

  * clang    — libclang (clang.cindex) over compile_commands.json: real
               canonical types, real lambda scopes. Used in CI where a
               pinned libclang is installed.
  * fallback — a pure-Python resolver over a project-wide symbol index
               (alias chains, member/return types, local decl backtrack).
               No toolchain needed; powers the CTest corpus runs and
               development machines without libclang.

`--frontend=auto` (default) picks clang when importable, else fallback.
Both frontends are audited against the same golden corpus
(tests/lint_corpus, `// expect: <rule>` markers) via --self-test.

Allowlist: tools/lint_allowlist.txt (shared with lint_determinism.py),
`<rule> <path>  # reason` — whole-file exemptions only; prefer the in-place
tags above.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import re
import sys
from pathlib import Path

from lint_common import (
    REPO_ROOT,
    SOURCE_SUFFIXES,
    Finding,
    default_allowlist,
    extract_strings,
    iter_source_files,
    load_allowlist,
    strip_code,
    suppression,
)

RULES = (
    "pool-discipline",
    "unordered-iter",
    "layering",
    "metric-name",
    "status-discipline",
)

ORDER_SENSITIVE_DIRS = ("src/engine", "src/partition", "src/design")
ORDERED_FOLD_TAG = "lint:ordered-fold"
POOL_WAIT_TAG = "lint:pool-wait"
STATUS_OK_TAG = "lint:status-ok"

# ---------------------------------------------------------------------------
# Layering: module ranks. An include edge A -> B is legal iff B == A or
# rank(B) < rank(A). datagen and partition share a rank *and* must not
# include each other (same-rank cross-module edges are rejected).
MODULE_RANK = {
    "common": 0,
    "catalog": 1,
    "storage": 2,
    "datagen": 3,
    "partition": 3,
    "design": 4,
    "engine": 5,
    "sql": 6,
    "workloads": 7,
}

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

# Blocking calls that must not run inside a pool task. ParallelFor* and
# Post are absent on purpose: nested pool fan-out is help-first (the lane
# drains its own tag while joining) and fire-and-forget never blocks.
BLOCKING_RE = re.compile(
    r"\bcv_?\w*\s*\.\s*Wait\s*\(|->\s*Wait\s*\(|\bCondVar\b[\w\s]*\.\s*Wait"
    r"|\bWaitTerminal\s*\(|\bsleep_for\s*\(|\.\s*join\s*\(\s*\)"
    r"|\bWaitAny\s*\(|(?<![\w.])this_thread::yield"
)

METRIC_APIS_RE = re.compile(
    r"\bGetCounter\s*\(|\bGetGauge\s*\(|\bGetHistogram\s*\("
    r"|\bTraceSpan\b|\bAddComplete\s*\("
)

POOL_SUBMIT_RE = re.compile(
    r"(?:\b\w*pool\w*(?:\.|->)|ThreadPool::Default\(\)\s*\.)"
    r"(Post|ParallelFor|ParallelForChunks|ParallelForMorsels)\s*\("
)


# ---------------------------------------------------------------------------
# Metric-name registry (parsed from src/common/metric_names.h).

class MetricRegistry:
    def __init__(self, names, prefixes):
        self.names = names        # exact registered strings (metrics, spans,
                                  # categories — one namespace)
        self.prefixes = prefixes  # dynamic families: literal may be
                                  # "<prefix><anything>"

    @classmethod
    def load(cls, root):
        header = root / "src" / "common" / "metric_names.h"
        names, prefixes = set(), []
        if not header.exists():
            return cls(names, prefixes)
        for m in re.finditer(
            r'inline constexpr char (k\w+)\[\] =\s*"([^"]+)";',
            header.read_text(),
        ):
            const, value = m.groups()
            if const.endswith("Prefix"):
                prefixes.append(value)
            elif const.endswith("Suffix"):
                pass  # suffixes decorate dynamic names; not standalone
            else:
                names.add(value)
        return cls(names, prefixes)

    def registered(self, literal):
        if literal in self.names:
            return True
        return any(literal.startswith(p) and len(literal) > len(p)
                   for p in self.prefixes)

    def near_duplicate(self, literal):
        """A registered name within Damerau-Levenshtein distance 1 (one
        edit or one adjacent transposition) — the typo radius."""
        for name in self.names:
            if abs(len(name) - len(literal)) <= 1 and _dl_distance_le1(
                    literal, name):
                return name
        return None


def _dl_distance_le1(a, b):
    if a == b:
        return True
    la, lb = len(a), len(b)
    if abs(la - lb) > 1:
        return False
    if la == lb:
        # one substitution, or one adjacent transposition
        diffs = [i for i in range(la) if a[i] != b[i]]
        if len(diffs) == 1:
            return True
        return (len(diffs) == 2 and diffs[1] == diffs[0] + 1
                and a[diffs[0]] == b[diffs[1]] and a[diffs[1]] == b[diffs[0]])
    # one insertion/deletion
    if la > lb:
        a, b, la, lb = b, a, lb, la
    i = j = used = 0
    while i < la and j < lb:
        if a[i] == b[j]:
            i += 1
            j += 1
        else:
            if used:
                return False
            used = 1
            j += 1
    return True


# ---------------------------------------------------------------------------
# Fallback frontend: project-wide symbol index + per-file resolution.

ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
TYPEDEF_RE = re.compile(r"\btypedef\s+(.+?)\s+(\w+)\s*;")
FUNC_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s+)?(?:static\s+|virtual\s+|inline\s+|constexpr\s+|"
    r"explicit\s+|friend\s+)*"
    r"((?:const\s+)?[A-Za-z_][\w:]*(?:<[^;(]*>)?[&*\s]*?)\s+"
    r"(?:[A-Za-z_][\w:]*::)*([A-Za-z_]\w*)\s*\("
)


class SymbolIndex:
    """Name -> type facts mined from every indexed file: alias chains,
    members/locals/params of unordered type, function return types."""

    def __init__(self):
        self.aliases = {}          # alias name -> type string
        self.unordered_names = set()   # vars/members/functions of unordered type
        self.return_types = {}     # func name -> set of declared return types

    def build(self, files):
        texts = []
        for path in files:
            try:
                code, _ = strip_code(path.read_text())
            except (UnicodeDecodeError, OSError):
                continue
            texts.append(code)
            for line in code:
                for m in ALIAS_RE.finditer(line):
                    self.aliases[m.group(1)] = m.group(2)
                for m in TYPEDEF_RE.finditer(line):
                    self.aliases[m.group(2)] = m.group(1)
                m = FUNC_DECL_RE.match(line)
                if m:
                    ret = " ".join(m.group(1).split())
                    self.return_types.setdefault(m.group(2), set()).add(ret)
        # Close alias chains: an alias is unordered if its expansion
        # (transitively) names an unordered container.
        unordered_aliases = set()
        changed = True
        while changed:
            changed = False
            for name, ty in self.aliases.items():
                if name in unordered_aliases:
                    continue
                if UNORDERED_RE.search(ty) or any(
                        re.search(rf"\b{re.escape(u)}\b", ty)
                        for u in unordered_aliases):
                    unordered_aliases.add(name)
                    changed = True
        self.unordered_aliases = unordered_aliases
        # Declarations of unordered type (members, locals, params, returns).
        decl_res = [re.compile(
            r"\bunordered_(?:map|set|multimap|multiset)\s*<.*>[&*\s]*\s"
            r"([A-Za-z_]\w*)\s*[;={([,)]")]
        for u in unordered_aliases:
            decl_res.append(re.compile(
                rf"\b{re.escape(u)}\b[&*\s]*\s([A-Za-z_]\w*)\s*[;={{([,)]"))
        for code in texts:
            for line in code:
                for dre in decl_res:
                    for m in dre.finditer(line):
                        self.unordered_names.add(m.group(1))
        # Functions *returning* unordered types count as unordered names
        # (for (auto& kv : obj.rows()) resolves through the accessor).
        for fname, rets in self.return_types.items():
            for ret in rets:
                if UNORDERED_RE.search(ret) or any(
                        re.search(rf"\b{re.escape(u)}\b", ret)
                        for u in unordered_aliases):
                    self.unordered_names.add(fname)

    def type_is_unordered(self, ty):
        return bool(UNORDERED_RE.search(ty)) or any(
            re.search(rf"\b{re.escape(u)}\b", ty)
            for u in self.unordered_aliases)

    def status_return_only(self, fname):
        """True when every indexed declaration of `fname` returns
        Status/Result — bare-call drops are only flagged for unambiguous
        names so an unrelated void overload elsewhere cannot FP."""
        rets = self.return_types.get(fname)
        if not rets:
            return False
        return all(re.fullmatch(r"(?:const\s+)?(?:pref::)?(?:Status|Result<.*>)\s*[&*]?", r)
                   for r in rets)

    def status_return_some(self, fname):
        rets = self.return_types.get(fname, set())
        return any(re.search(r"\b(?:Status|Result)\b", r) for r in rets)


class FallbackFrontend:
    """Pure-Python fact extractor. Types are resolved against the
    SymbolIndex with an in-file backtrack for locals/auto; good enough for
    every idiom in the tree and the golden corpus, and always available."""

    name = "fallback"

    def __init__(self, index):
        self.index = index

    # -- type resolution ---------------------------------------------------

    def _resolve_expr(self, expr, code, at, depth=0):
        """True if `expr` (the range of a loop) is an unordered container.
        `at` is the 0-based line of the loop for local backtracking."""
        if depth > 4:
            return False
        expr = expr.strip().lstrip("*&").strip()
        while expr.startswith("(") and expr.endswith(")"):
            expr = expr[1:-1].strip()
        # strip trailing call parens: obj.rows() -> obj.rows
        call = expr.endswith("()")
        if call:
            expr = expr[:-2]
        # last component of a member chain
        last = re.split(r"\.|->", expr)[-1].strip()
        if not re.fullmatch(r"[A-Za-z_]\w*", last):
            return False
        # nearest in-file declaration wins over the global index
        local = self._local_decl(last, code, at, depth)
        if local is not None:
            return local
        return last in self.index.unordered_names

    def _local_decl(self, name, code, at, depth):
        """Backtrack for the nearest declaration of `name` above line
        `at`. Returns True/False when a decl settles the question, None
        when nothing local was found (fall through to the index)."""
        auto_re = re.compile(
            rf"\b(?:const\s+)?auto[&*\s]*\b{re.escape(name)}\s*=\s*([^;]+);")
        typed_re = re.compile(
            rf"^\s*(?:const\s+|mutable\s+|static\s+)*"
            rf"((?:std::)?[A-Za-z_][\w:]*(?:<.*>)?)[&*\s]*\s{re.escape(name)}"
            rf"\s*[;={{(]")
        for j in range(at, max(-1, at - 200), -1):
            line = code[j]
            m = auto_re.search(line)
            if m:
                rhs = m.group(1).strip()
                # auto it = container.begin() — resolve the container
                m2 = re.match(r"(.+?)\.\s*c?begin\s*\(\)\s*$", rhs)
                if m2:
                    rhs = m2.group(1)
                return self._resolve_expr(rhs, code, j, depth + 1)
            m = typed_re.match(line)
            if m and "return" not in line.split(name)[0]:
                ty = m.group(1)
                if ty in ("auto", "const", "return", "else", "if", "for",
                          "while", "case", "delete", "new", "co_return",
                          "throw", "using", "typedef", "namespace", "class",
                          "struct", "break", "continue", "goto", "do"):
                    continue
                return self.index.type_is_unordered(ty)
        return None

    # -- fact extraction ---------------------------------------------------

    def unordered_iters(self, code):
        """Yields (0-based line, range-expr) for iterations over unordered
        containers: range-for (incl. structured bindings) and classic
        iterator loops over .begin()."""
        n = len(code)
        for i in range(n):
            # join up to 3 lines so multi-line for-headers resolve
            window = " ".join(code[i:min(n, i + 3)])
            for m in re.finditer(r"\bfor\s*\(([^;()]*?):([^;]*?)\)", window):
                if not m.group(0).startswith(tuple(
                        "for" + c for c in (" ", "("))):
                    continue
                # only attribute to the line the `for` starts on
                if "for" not in code[i]:
                    continue
                expr = m.group(2).strip()
                if self._resolve_expr(expr, code, i):
                    yield i, expr
                break  # one loop head per starting line is plenty
            m = re.search(
                r"\bfor\s*\(\s*(?:const\s+)?auto\b[&*\s]*\w+\s*=\s*"
                r"([\w.\->]+?)\s*\.\s*c?begin\s*\(\)", window)
            if m and "for" in code[i]:
                if self._resolve_expr(m.group(1), code, i):
                    yield i, m.group(1)

    def pool_blocking(self, code):
        """Yields (0-based line, token) for blocking calls inside a lambda
        lexically passed to a pool-submission call."""
        n = len(code)
        i = 0
        while i < n:
            m = POOL_SUBMIT_RE.search(code[i])
            if not m:
                i += 1
                continue
            # Find the lambda argument's body: first '{' after a '[' that
            # follows the call paren, then brace-match to its close.
            open_line, open_col = None, None
            depth = 0
            j, col = i, m.end()
            seen_lambda = False
            while j < n:
                line = code[j]
                k = col
                while k < len(line):
                    ch = line[k]
                    if ch == "[":
                        seen_lambda = True
                    elif ch == "{" and seen_lambda:
                        open_line, open_col = j, k
                        break
                    elif ch == ")" and not seen_lambda:
                        break  # call closed without a lambda argument
                    k += 1
                if open_line is not None or (not seen_lambda and k < len(line)
                                             and line[k] == ")"):
                    break
                j += 1
                col = 0
            if open_line is None:
                i += 1
                continue
            # walk the lambda body
            j, k = open_line, open_col
            depth = 0
            body_lines = set()
            while j < n:
                line = code[j]
                while k < len(line):
                    if line[k] == "{":
                        depth += 1
                    elif line[k] == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    k += 1
                body_lines.add(j)
                if depth == 0 and k < len(line):
                    break
                j += 1
                k = 0
            for b in sorted(body_lines):
                bm = BLOCKING_RE.search(code[b])
                if bm:
                    yield b, bm.group(0).strip()
            i = max(i + 1, open_line + 1)

    def status_drops(self, code):
        """Yields (0-based line, message) for dropped Status/Result values."""
        n = len(code)
        status_local_re = re.compile(
            r"^\s*(?:const\s+)?(?:pref::)?(?:Status|Result<[^;=]*>)\s+"
            r"(\w+)\s*=[^=]")
        for i in range(n):
            line = code[i]
            # (void) cast of a Status-typed local or Status-returning call
            for m in re.finditer(r"\(\s*void\s*\)\s*([A-Za-z_][\w.\->:]*)"
                                 r"(\s*\()?", line):
                target, is_call = m.group(1), bool(m.group(2))
                name = re.split(r"\.|->|::", target)[-1]
                if is_call:
                    if self.index.status_return_some(name):
                        yield i, (f"Status/Result returned by '{name}(...)' "
                                  "swallowed by a (void) cast")
                else:
                    decl_re = re.compile(
                        rf"\b(?:Status|Result<[^;=]*>)\s+{re.escape(name)}\b")
                    for j in range(i, max(-1, i - 100), -1):
                        if decl_re.search(code[j]):
                            yield i, (f"Status/Result '{name}' swallowed by "
                                      "a (void) cast")
                            break
                        if re.search(rf"[\w>&\]]\s+{re.escape(name)}\s*[;=,)]",
                                     code[j]) and j != i:
                            break  # nearest decl is some other type
            # bare call statement whose only known return type is Status
            m = re.match(r"^\s*(?:[A-Za-z_][\w.\->]*(?:\.|->))?"
                         r"([A-Za-z_]\w*)\s*\(.*\)\s*;\s*$", line)
            # A continuation line of a multi-line macro/call (e.g. the
            # argument line of PREF_ASSIGN_OR_RAISE) can look exactly like
            # a bare call statement: require a statement start (previous
            # code line ended the last statement) and balanced parens.
            prev = ""
            for j in range(i - 1, max(-1, i - 20), -1):
                if code[j].strip():
                    prev = code[j].rstrip()
                    break
            at_stmt_start = (not prev) or prev[-1] in ";{}:"
            if (m and at_stmt_start
                    and line.count("(") == line.count(")")
                    and not re.match(r"^\s*(?:return|co_return)\b", line)):
                name = m.group(1)
                if (self.index.status_return_only(name)
                        and not re.search(r"\bPREF_\w+\s*\(", line)
                        and "=" not in line.split(name)[0]):
                    yield i, (f"result of '{name}(...)' (returns "
                              "Status/Result everywhere it is declared) "
                              "dropped on the floor")
            # local constructed and never read again
            m = status_local_re.match(line)
            if m:
                name = m.group(1)
                used = False
                depth = 0
                for j in range(i + 1, n):
                    if re.search(rf"\b{re.escape(name)}\b", code[j]):
                        used = True
                        break
                    depth += code[j].count("{") - code[j].count("}")
                    if depth < 0:
                        break
                if not used:
                    yield i, (f"Status/Result '{name}' constructed and "
                              "never read")


class ClangFrontend:
    """libclang fact extractor: canonical types from real ASTs, driven by
    compile_commands.json. Only .cc translation units are parsed; facts
    are attributed to whatever file (header or source) the node lives in,
    so header findings surface through their including TU."""

    name = "clang"

    def __init__(self, root, compdb_dir, index):
        import clang.cindex as ci  # noqa: F401 — availability gate
        self.ci = ci
        self.root = root
        self.index = index  # fallback SymbolIndex: shared status-name facts
        self.cindex = ci.Index.create()
        self.compdb = None
        if compdb_dir and (Path(compdb_dir) / "compile_commands.json").exists():
            self.compdb = ci.CompilationDatabase.fromDirectory(str(compdb_dir))
        # facts keyed by repo-relative path, filled lazily per TU
        self.facts = {}

    def _args_for(self, path):
        args = ["-std=c++20", f"-I{self.root / 'src'}"]
        if self.compdb is not None:
            cmds = self.compdb.getCompileCommands(str(path))
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]  # drop compiler + file
                args = [a for a in raw if not a.startswith("-o")
                        and a != "-c" and Path(a) != path]
        return args

    def parse_tu(self, path):
        ci = self.ci
        try:
            tu = self.cindex.parse(
                str(path), args=self._args_for(path),
                options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        except ci.TranslationUnitLoadError:
            return
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if loc.file is None:
                continue
            try:
                rel = Path(loc.file.name).resolve().relative_to(self.root)
            except ValueError:
                continue
            rel_posix = rel.as_posix()
            if not rel_posix.startswith("src/"):
                continue
            f = self.facts.setdefault(
                rel_posix, {"unordered": set(), "blocking": set(),
                            "drops": set()})
            k = cursor.kind
            if k == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                if children:
                    range_init = children[-2] if len(children) >= 2 else None
                    if range_init is not None:
                        canon = range_init.type.get_canonical().spelling
                        if UNORDERED_RE.search(canon):
                            f["unordered"].add(
                                (loc.line - 1,
                                 range_init.spelling or canon))
            elif k == ci.CursorKind.LAMBDA_EXPR:
                if self._submitted_to_pool(cursor):
                    for node in cursor.walk_preorder():
                        if node.kind == ci.CursorKind.CALL_EXPR and \
                                node.spelling in ("Wait", "WaitAny",
                                                  "WaitTerminal", "sleep_for",
                                                  "join", "yield"):
                            nloc = node.location
                            if nloc.file and Path(nloc.file.name).resolve() \
                                    == Path(loc.file.name).resolve():
                                f["blocking"].add(
                                    (nloc.line - 1, node.spelling))
            elif k in (ci.CursorKind.CSTYLE_CAST_EXPR,
                       ci.CursorKind.CXX_FUNCTIONAL_CAST_EXPR):
                if cursor.type.spelling == "void":
                    for sub in cursor.get_children():
                        st = sub.type.get_canonical().spelling
                        if re.search(r"\b(?:Status|Result)\b", st):
                            f["drops"].add(
                                (loc.line - 1,
                                 f"{st.split('::')[-1]} value swallowed by "
                                 "a (void) cast"))

    def _submitted_to_pool(self, lam):
        """True when the lambda is an argument of a ThreadPool submission
        call (Post/ParallelFor*) — walk up through implicit casts."""
        p = lam.semantic_parent
        node = lam
        hops = 0
        while node is not None and hops < 6:
            if node.kind == self.ci.CursorKind.CALL_EXPR and node.spelling in (
                    "Post", "ParallelFor", "ParallelForChunks",
                    "ParallelForMorsels"):
                return True
            node = getattr(node, "lexical_parent", None) or p
            p = None
            hops += 1
        return False


# ---------------------------------------------------------------------------
# Rules (frontend-agnostic: consume facts + lexical streams).

def rule_layering(rel_posix, code, strings, findings, allowed):
    if ("layering", rel_posix) in allowed:
        return
    parts = rel_posix.split("/")
    if len(parts) < 3 or parts[0] != "src" or parts[1] not in MODULE_RANK:
        return
    mod = parts[1]
    for idx, line in enumerate(code):
        # strip_code blanks the quoted path out of the code stream, so the
        # directive is spotted on the code line and the target read back
        # from the same line's string literals.
        if not re.match(r"\s*#\s*include\b", line):
            continue
        lits = strings[idx] if idx < len(strings) else []
        if not lits:
            continue  # angle include: system/third-party, outside the DAG
        inc = lits[0]
        dep = inc.split("/")[0]
        if dep not in MODULE_RANK or dep == mod:
            continue
        if MODULE_RANK[dep] >= MODULE_RANK[mod]:
            findings.append(Finding(
                rel_posix, idx + 1, "layering",
                f"back-edge: {mod} (rank {MODULE_RANK[mod]}) includes "
                f'"{inc}" ({dep}, rank {MODULE_RANK[dep]}); the '
                "include DAG is common < catalog < storage < "
                "datagen/partition < design < engine < sql < workloads"))


def rule_metric_name(rel_posix, code, strings, registry, findings, allowed):
    if ("metric-name", rel_posix) in allowed:
        return
    if not rel_posix.startswith("src/") or \
            rel_posix == "src/common/metric_names.h":
        return
    for idx, line in enumerate(code):
        if not METRIC_APIS_RE.search(line):
            continue
        for lit in strings[idx] if idx < len(strings) else []:
            if registry.registered(lit):
                continue
            near = registry.near_duplicate(lit)
            if near:
                findings.append(Finding(
                    rel_posix, idx + 1, "metric-name",
                    f'"{lit}" is one edit away from registered "{near}" — '
                    "likely a typo forking the metrics schema; use the "
                    "constant from common/metric_names.h"))
            else:
                findings.append(Finding(
                    rel_posix, idx + 1, "metric-name",
                    f'"{lit}" is not registered in common/metric_names.h; '
                    "add a constant there (single source of truth for the "
                    "BENCH_*.json schema) and use it here"))


def rule_unordered_iter(rel_posix, code, comments, iters, findings, allowed):
    if ("unordered-iter", rel_posix) in allowed:
        return
    if not rel_posix.startswith(ORDER_SENSITIVE_DIRS):
        return
    seen = set()
    for idx, expr in iters:
        if idx in seen:
            continue
        seen.add(idx)
        if suppression(code, comments, idx, ORDERED_FOLD_TAG, findings,
                       rel_posix, "unordered-iter"):
            continue
        findings.append(Finding(
            rel_posix, idx + 1, "unordered-iter",
            f"iteration over unordered container '{expr}': visit order is "
            "unspecified and leaks into results unless the fold is order-"
            "insensitive; sort first, or justify with "
            "'// lint:ordered-fold: <why>'"))


def rule_pool_discipline(rel_posix, code, comments, blocking, findings,
                         allowed):
    if ("pool-discipline", rel_posix) in allowed:
        return
    if rel_posix.startswith("src/common/thread_pool"):
        return  # the pool's own help-first machinery waits by design
    seen = set()
    for idx, token in blocking:
        if idx in seen:
            continue
        seen.add(idx)
        if suppression(code, comments, idx, POOL_WAIT_TAG, findings,
                       rel_posix, "pool-discipline"):
            continue
        findings.append(Finding(
            rel_posix, idx + 1, "pool-discipline",
            f"blocking call '{token}' inside a lambda submitted to the "
            "ThreadPool: a parked lane can deadlock the pool (the PR 6 "
            "class); restructure as help-first fan-out or justify with "
            "'// lint:pool-wait: <why>'"))


def rule_status_discipline(rel_posix, code, comments, drops, findings,
                           allowed):
    if ("status-discipline", rel_posix) in allowed:
        return
    if not rel_posix.startswith(("src/", "examples/")):
        return
    seen = set()
    for idx, msg in drops:
        if idx in seen:
            continue
        seen.add(idx)
        if suppression(code, comments, idx, STATUS_OK_TAG, findings,
                       rel_posix, "status-discipline"):
            continue
        findings.append(Finding(
            rel_posix, idx + 1, "status-discipline",
            f"{msg}; handle it with PREF_RETURN_NOT_OK/PREF_CHECK_OK or "
            "justify with '// lint:status-ok: <why>'"))


# ---------------------------------------------------------------------------
# Driver.

def analyze_files(root, files, frontend, registry, allowed,
                  rules=RULES):
    findings = []
    clang_facts = getattr(frontend, "facts", None)
    if clang_facts is not None:
        for path in files:
            if path.suffix in (".cc", ".cpp"):
                frontend.parse_tu(path)
    for path in files:
        rel_posix = path.relative_to(root).as_posix()
        try:
            text = path.read_text()
        except (UnicodeDecodeError, OSError):
            continue
        code, comments = strip_code(text)
        strings = extract_strings(text)
        if "layering" in rules:
            rule_layering(rel_posix, code, strings, findings, allowed)
        if "metric-name" in rules:
            rule_metric_name(rel_posix, code, strings, registry, findings,
                             allowed)
        if clang_facts is not None:
            f = clang_facts.get(rel_posix,
                                {"unordered": set(), "blocking": set(),
                                 "drops": set()})
            iters = sorted(f["unordered"])
            blocking = sorted(f["blocking"])
            drops = sorted(f["drops"])
        else:
            iters = list(frontend.unordered_iters(code))
            blocking = list(frontend.pool_blocking(code))
            drops = list(frontend.status_drops(code))
        if "unordered-iter" in rules:
            rule_unordered_iter(rel_posix, code, comments, iters, findings,
                                allowed)
        if "pool-discipline" in rules:
            rule_pool_discipline(rel_posix, code, comments, blocking,
                                 findings, allowed)
        if "status-discipline" in rules:
            rule_status_discipline(rel_posix, code, comments, drops,
                                   findings, allowed)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def make_frontend(kind, root, compdb, index):
    if kind in ("auto", "clang"):
        try:
            frontend = ClangFrontend(root, compdb, index)
            return frontend
        except Exception as e:  # ImportError, LibclangError, ...
            if kind == "clang":
                sys.exit(f"clang frontend unavailable: {e}")
    return FallbackFrontend(index)


def lint(root, frontend_kind, compdb, allowlist_path):
    files = list(iter_source_files(root, ("src",)))
    index = SymbolIndex()
    index.build(files)
    frontend = make_frontend(frontend_kind, root, compdb, index)
    registry = MetricRegistry.load(root)
    allowed = load_allowlist(allowlist_path)
    return frontend, analyze_files(root, files, frontend, registry, allowed)


def self_test(root, frontend_kind, compdb):
    """Golden corpus audit (see lint_determinism.py --self-test for the
    marker protocol): only `// expect:` markers naming this tool's RULES
    are checked here. The corpus is indexed as its own project so type
    resolution sees exactly the corpus files; the metric registry is the
    real one (corpus cases reference real registered names)."""
    corpus = root / "tests" / "lint_corpus"
    if not corpus.is_dir():
        print(f"self-test corpus missing: {corpus}", file=sys.stderr)
        return 2
    files = [p for p in sorted(corpus.rglob("*"))
             if p.suffix in SOURCE_SUFFIXES]
    if not files:
        print("self-test corpus is empty", file=sys.stderr)
        return 2
    index = SymbolIndex()
    index.build(files)
    # The corpus is always audited with the fallback frontend (available
    # everywhere, incl. CTest); when libclang is importable the clang
    # frontend is audited too, so CI checks both against the same truth.
    frontends = [FallbackFrontend(index)]
    if frontend_kind != "fallback":
        try:
            frontends.append(ClangFrontend(corpus, compdb, index))
        except Exception:
            if frontend_kind == "clang":
                print("clang frontend unavailable for self-test",
                      file=sys.stderr)
                return 2
    registry = MetricRegistry.load(root)
    expect_re = re.compile(r"//\s*expect:\s*([\w-]+)")
    failures = []
    for frontend in frontends:
        got = {}
        for f in analyze_files(corpus, files, frontend, registry,
                               allowed=set()):
            if f.rule in RULES:
                got.setdefault(f.path, set()).add((f.line, f.rule))
        for path in files:
            rel = path.relative_to(corpus).as_posix()
            expected = set()
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                for m in expect_re.finditer(line):
                    if m.group(1) in RULES:
                        expected.add((lineno, m.group(1)))
            g = got.get(rel, set())
            for miss in sorted(expected - g):
                failures.append(f"[{frontend.name}] {rel}:{miss[0]}: "
                                f"expected [{miss[1]}] did not fire")
            for extra in sorted(g - expected):
                failures.append(f"[{frontend.name}] {rel}:{extra[0]}: "
                                f"unexpected [{extra[1]}]")
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"pref_analyze self-test: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    names = "+".join(f.name for f in frontends)
    print(f"pref_analyze self-test: {len(files)} corpus files OK "
          f"({names} frontend)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=REPO_ROOT)
    parser.add_argument("--frontend", choices=("auto", "clang", "fallback"),
                        default="auto",
                        help="fact extractor: clang.cindex when available "
                             "(CI), pure-Python fallback otherwise")
    parser.add_argument("--compdb", type=Path, default=None,
                        help="directory holding compile_commands.json "
                             "(default: <root>/build)")
    parser.add_argument("--allowlist", type=Path, default=None)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    root = args.root.resolve()
    compdb = args.compdb or (root / "build")
    if args.self_test:
        sys.exit(self_test(root, args.frontend, compdb))
    allowlist = args.allowlist or default_allowlist(root)
    frontend, findings = lint(root, args.frontend, compdb, allowlist)
    for f in findings:
        print(f)
    if findings:
        print(f"pref_analyze ({frontend.name} frontend): "
              f"{len(findings)} finding(s)", file=sys.stderr)
        sys.exit(1)
    print(f"pref_analyze ({frontend.name} frontend): clean")


if __name__ == "__main__":
    main()
