"""Shared infrastructure for the repo's source linters.

Both tools/lint_determinism.py (regex-appropriate conventions: raw
randomness, ad-hoc threads, stdout writes, raw intrinsics, wall-clock
reads) and tools/pref_analyze.py (type- and scope-aware AST rules) build
on the helpers here:

  * strip_code     — comment/string-aware per-line source splitter
  * Finding        — one (path, line, rule, message) diagnostic
  * load_allowlist — the shared whole-file exemption list

Allowlist: tools/lint_allowlist.txt is shared by both tools (rule names
are disjoint across them). One `<rule> <path>` pair per line, path
relative to the repo root, followed by a mandatory `# reason`. This file
replaces the old per-tool tools/lint_determinism_allowlist.txt; the
format is unchanged, so old entries migrate by concatenation.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SOURCE_SUFFIXES = {".cc", ".h", ".cpp", ".hpp"}

ALLOWLIST_NAME = "lint_allowlist.txt"


def strip_code(text):
    """Returns (code_lines, comment_lines): per-line source with comments
    and string/char literals blanked, and the comment text alone (where
    suppression tags live). Line count is preserved."""
    code = []
    comments = []
    i = 0
    n = len(text)
    cur_code = []
    cur_comment = []
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw_string"
                    i += m.end()
                    continue
            if ch == '"':
                state = "string"
                i += 1
                continue
            if ch == "'":
                state = "char"
                i += 1
                continue
            cur_code.append(ch)
            i += 1
        elif state == "line_comment":
            cur_comment.append(ch)
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                cur_comment.append(ch)
                i += 1
        elif state == "string":
            if ch == "\\":
                i += 2
            elif ch == '"':
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "char":
            if ch == "\\":
                i += 2
            elif ch == "'":
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                i += len(raw_delim)
            else:
                i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


def extract_strings(text):
    """Per-line plain (non-raw) string literal contents: a list (one entry
    per source line) of lists of literal bodies, escapes left unresolved.
    The complement of strip_code for rules that inspect literals (metric
    names); raw strings and char literals are skipped."""
    per_line = [[]]
    i = 0
    n = len(text)
    state = "code"
    raw_delim = ""
    cur = []
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n" and state != "string":
            per_line.append([])
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
            elif ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
            elif ch == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw_string"
                    i += m.end()
                else:
                    i += 1
            elif ch == '"':
                state = "string"
                cur = []
                i += 1
            elif ch == "'":
                state = "char"
                i += 1
            else:
                i += 1
        elif state == "line_comment":
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        elif state == "string":
            if ch == "\\":
                cur.append(text[i:i + 2])
                i += 2
            elif ch == '"':
                per_line[-1].append("".join(cur))
                state = "code"
                i += 1
            elif ch == "\n":  # unterminated; keep line count consistent
                per_line.append([])
                state = "code"
                i += 1
            else:
                cur.append(ch)
                i += 1
        elif state == "char":
            if ch == "\\":
                i += 2
            elif ch == "'":
                state = "code"
                i += 1
            else:
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                i += len(raw_delim)
            else:
                i += 1
    return per_line


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def load_allowlist(path):
    """Parses the shared allowlist into a set of (rule, posix_path) pairs.
    Exits with a usage error on a malformed entry (a pair without a
    `# reason` is malformed on purpose: exemptions must be justified)."""
    allowed = set()
    if not path.exists():
        return allowed
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, reason = line.partition("#")
        parts = body.split()
        if len(parts) != 2 or not reason.strip():
            sys.exit(
                f"{path}:{lineno}: allowlist entries are '<rule> <path>  # reason'"
            )
        allowed.add((parts[0], parts[1]))
    return allowed


def default_allowlist(root):
    return root / "tools" / ALLOWLIST_NAME


def iter_source_files(root, trees):
    """Yields source files under `trees` (dirs relative to root), sorted."""
    for tree in trees:
        base = root / tree
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES:
                yield path


def suppression(code, comments, idx, tag, findings, rel_posix, rule):
    """True if line `idx` (0-based) is covered by a justified `tag`
    suppression comment — on the line itself or in the contiguous
    comment-only block immediately above. A bare tag without a reason is
    itself reported as a finding on `rule` (and still suppresses, so the
    site is not double-reported)."""
    candidates = [idx]
    j = idx - 1
    while j >= 0 and not code[j].strip() and comments[j].strip():
        candidates.append(j)
        j -= 1
    for j in candidates:
        comment = comments[j]
        if tag in comment:
            after = comment.split(tag, 1)[1]
            reason = after.lstrip(":").strip()
            if reason:
                return True
            findings.append(
                Finding(
                    rel_posix,
                    j + 1,
                    rule,
                    f"'{tag}' suppression without a reason; write "
                    f"'// {tag}: <why this site is safe>'",
                )
            )
            return True  # malformed tag already reported; don't double-fire
    return False
