// Figure 12: data-redundancy growth when scaling from 1 to 100 partitions
// (nodes) on TPC-H (a) and TPC-DS (b). The paper's claim: CP grows
// linearly (replication), SD and WD grow sub-linearly, so scale-out keeps
// per-node data bounded only under the PREF-based designs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/tpcds_gen.h"
#include "design/stars.h"
#include "workloads/tpcds_workload.h"

namespace {

const std::vector<int> kNodeCounts = {1, 2, 5, 10, 20, 50, 100};

pref::Status RunTpch(pref::bench::BenchReport* report) {
  double sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01);
  PREF_ASSIGN_OR_RAISE(auto gen, pref::GenerateTpch({sf, 42}));
  pref::Database db(std::move(gen));
  const pref::Schema& schema = db.schema();
  const std::vector<std::string> small = {"nation", "region", "supplier"};

  std::printf("\n=== Figure 12(a): TPC-H data-redundancy vs number of nodes ===\n");
  std::printf("%5s %10s %10s %10s\n", "nodes", "CP", "SD", "WD");
  for (int n : kNodeCounts) {
    PREF_ASSIGN_OR_RAISE(auto cp_config, pref::MakeTpchClassical(schema, n));
    PREF_ASSIGN_OR_RAISE(auto cp, pref::PartitionDatabase(db, cp_config));

    pref::SdOptions sd_options;
    sd_options.num_partitions = n;
    sd_options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(auto sd, pref::SchemaDrivenDesign(db, sd_options));
    PREF_ASSIGN_OR_RAISE(auto sd_pdb, pref::PartitionDatabase(db, sd.config));

    pref::WdOptions wd_options;
    wd_options.num_partitions = n;
    wd_options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(
        auto wd, pref::WorkloadDrivenDesign(db, pref::TpchQueryGraphs(schema),
                                            wd_options));
    PREF_ASSIGN_OR_RAISE(double wd_dr, wd.deployment.Redundancy(db));

    for (auto [name, dr] :
         {std::pair<const char*, double>{"CP", cp->DataRedundancy()},
          {"SD", sd_pdb->DataRedundancy()},
          {"WD", wd_dr}}) {
      report->Result(std::string("tpch/") + name + "/nodes=" + std::to_string(n), 0);
      report->Field("nodes", n);
      report->Field("data_redundancy", dr);
    }
    std::printf("%5d %10.2f %10.2f %10.2f\n", n, cp->DataRedundancy(),
                sd_pdb->DataRedundancy(), wd_dr);
  }
  std::printf("(paper shape: CP linear in n; SD/WD sub-linear, flattening)\n");
  return pref::Status::OK();
}

pref::Status RunTpcds(pref::bench::BenchReport* report) {
  pref::TpcdsGenOptions gen;
  gen.scale_factor = pref::bench::EnvScaleFactor("PREF_BENCH_DS_SF", 0.1);
  PREF_ASSIGN_OR_RAISE(auto db0, pref::GenerateTpcds(gen));
  pref::Database db(std::move(db0));
  const pref::Schema& schema = db.schema();
  const auto& small = pref::TpcdsSmallTables();

  std::printf("\n=== Figure 12(b): TPC-DS data-redundancy vs number of nodes ===\n");
  std::printf("%5s %10s %10s %10s\n", "nodes", "CP stars", "SD stars", "WD");
  PREF_ASSIGN_OR_RAISE(auto graphs, pref::TpcdsQueryGraphs(schema));
  for (int n : kNodeCounts) {
    PREF_ASSIGN_OR_RAISE(auto cp, pref::MakeTpcdsClassicalStars(db, n));
    PREF_ASSIGN_OR_RAISE(double cp_dr, cp.Redundancy(db));

    pref::SdOptions sd_options;
    sd_options.num_partitions = n;
    sd_options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(auto sd, pref::TpcdsSdIndividualStars(db, sd_options));
    PREF_ASSIGN_OR_RAISE(double sd_dr, sd.Redundancy(db));

    pref::WdOptions wd_options;
    wd_options.num_partitions = n;
    wd_options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(auto wd, pref::WorkloadDrivenDesign(db, graphs, wd_options));
    PREF_ASSIGN_OR_RAISE(double wd_dr, wd.deployment.Redundancy(db));

    for (auto [name, dr] : {std::pair<const char*, double>{"CP stars", cp_dr},
                            {"SD stars", sd_dr},
                            {"WD", wd_dr}}) {
      report->Result(std::string("tpcds/") + name + "/nodes=" + std::to_string(n),
                     0);
      report->Field("nodes", n);
      report->Field("data_redundancy", dr);
    }
    std::printf("%5d %10.2f %10.2f %10.2f\n", n, cp_dr, sd_dr, wd_dr);
  }
  std::printf("(paper shape: CP linear; SD/WD sub-linear)\n\n");
  return pref::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  pref::bench::BenchReport report(
      "fig12", pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01), 10);
  report.Config("tpcds_scale_factor",
                pref::bench::EnvScaleFactor("PREF_BENCH_DS_SF", 0.1));
  pref::Status st = RunTpch(&report);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-H failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = RunTpcds(&report);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-DS failed: %s\n", st.ToString().c_str());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
