// Figure 9: effectiveness of the §2.2 PREF-specific rewrites. Three
// queries over the SD-partitioned TPC-H database, each with (w) and
// without (wo) the optimizations:
//  (1) count distinct customer tuples   — dup-bitmap filter vs full-row
//                                          shuffle + value distinct,
//  (2) semi join customer x orders      — hasS=1 scan filter vs real join,
//  (3) anti join customer x orders      — hasS=0 scan filter vs real join
//                                          (the paper's unoptimized run
//                                          aborted after an hour).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

pref::bench::TpchBench* g_bench = nullptr;
double g_sf = 0.01;

pref::QuerySpec DistinctQuery(const pref::Schema& schema) {
  return *pref::QueryBuilder(&schema, "distinct")
              .From("customer")
              .Agg(pref::AggFunc::kCountStar, "", "cnt")
              .Build();
}

pref::QuerySpec SemiQuery(const pref::Schema& schema) {
  return *pref::QueryBuilder(&schema, "semi join")
              .From("customer")
              .Join("orders", "c_custkey", "o_custkey", pref::JoinType::kSemi)
              .Agg(pref::AggFunc::kCountStar, "", "cnt")
              .Build();
}

pref::QuerySpec AntiQuery(const pref::Schema& schema) {
  return *pref::QueryBuilder(&schema, "anti join")
              .From("customer")
              .Join("orders", "c_custkey", "o_custkey", pref::JoinType::kAnti)
              .Agg(pref::AggFunc::kCountStar, "", "cnt")
              .Build();
}

void PrintPaperTable(pref::bench::BenchReport* report) {
  const pref::bench::Variant& sd = g_bench->variants[1];  // SD (wo small tables)
  pref::CostModel model = pref::bench::PaperScaledModel(g_sf);
  pref::QueryOptions with, without;
  without.pref_optimizations = false;
  std::printf(
      "\n=== Figure 9: effectiveness of optimizations (SD-partitioned TPC-H) ===\n");
  std::printf("%-12s %22s %22s %8s\n", "query", "w optimizations (s)",
              "wo optimizations (s)", "speedup");
  const pref::Schema& schema = g_bench->db->schema();
  for (const auto& q : {DistinctQuery(schema), SemiQuery(schema), AntiQuery(schema)}) {
    auto fast = g_bench->Run(sd, q, with);
    auto slow = g_bench->Run(sd, q, without);
    if (!fast.ok() || !slow.ok()) {
      std::printf("%-12s FAILED (%s)\n", q.name.c_str(),
                  (!fast.ok() ? fast.status() : slow.status()).ToString().c_str());
      continue;
    }
    double f = fast->stats.SimulatedSeconds(model);
    double s = slow->stats.SimulatedSeconds(model);
    if (report != nullptr) {
      report->Result(q.name + "/w_opt", f);
      report->Result(q.name + "/wo_opt", s);
      report->Field("speedup", s / f);
    }
    std::printf("%-12s %22.3f %22.3f %7.1fx\n", q.name.c_str(), f, s, s / f);
  }
  std::printf(
      "(paper: distinct 1.07 vs 101.4, semi 1.02 vs 123.7, anti 0.50 vs aborted)\n\n");
}

void BM_Fig9(benchmark::State& state, const pref::QuerySpec* query, bool optimized) {
  const pref::bench::Variant& sd = g_bench->variants[1];
  pref::QueryOptions options;
  options.pref_optimizations = optimized;
  for (auto _ : state) {
    auto r = g_bench->Run(sd, *query, options);
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  g_sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01);
  auto bench = pref::bench::MakeTpchBench(g_sf, 10);
  if (!bench.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", bench.status().ToString().c_str());
    return 1;
  }
  g_bench = &*bench;
  pref::bench::BenchReport report("fig9", g_sf, g_bench->nodes);
  PrintPaperTable(&report);
  static auto distinct = DistinctQuery(g_bench->db->schema());
  static auto semi = SemiQuery(g_bench->db->schema());
  static auto anti = AntiQuery(g_bench->db->schema());
  for (const auto* q : {&distinct, &semi, &anti}) {
    benchmark::RegisterBenchmark(("fig9/" + q->name + "/w_opt").c_str(), BM_Fig9, q,
                                 true)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("fig9/" + q->name + "/wo_opt").c_str(), BM_Fig9, q,
                                 false)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
