// Microbenchmark for the vectorized execution kernels (DESIGN.md §8, §13):
// hash-join build and probe and the repartition exchange, each measured
// twice — the historical row-at-a-time implementation (std::unordered_
// multimap build, AppendRow emission) against the kernel path (batch
// hashing, batch-chain JoinHashTable, counting-sort ScatterPlan,
// column-at-a-time gathers) — plus the SIMD kernel layer measured
// scalar-vs-dispatched (prefix sum, batch hash combine, selection
// compaction), the word-at-a-time string hash against the old FNV-1a, the
// scratch-reuse scatter-plan path against fresh allocation, and a
// duplicate-heavy string-key probe with the old flat one-entry-per-row
// table layout against the contiguous chain layout. Every pair of variants
// produces identical output (checked at startup); the reported ratio is
// the kernel speedup. The dispatched SIMD level lands in config.simd_level
// (0 scalar, 1 AVX2, 2 AVX-512).
//
// Joins probe lineitem against an orders build side on orderkey;
// repartition shuffles lineitem across 10 targets on orderkey. Scale with
// PREF_BENCH_SF (default 0.1).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <unordered_map>

#include "bench_util.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "engine/exchange_kernels.h"
#include "engine/join_hash_table.h"

namespace {

using namespace pref;

constexpr int kTargets = 10;
constexpr size_t kMorselRows = 4096;  // mirrors the executor's morsel size

struct KernelBenchData {
  std::unique_ptr<Database> db;
  const RowBlock* probe = nullptr;  // lineitem
  const RowBlock* build = nullptr;  // orders
  std::vector<ColumnId> probe_keys;
  std::vector<ColumnId> build_keys;
};

KernelBenchData* g_data = nullptr;

std::vector<DataType> ConcatTypes(const RowBlock& l, const RowBlock& r) {
  std::vector<DataType> types;
  for (int c = 0; c < l.num_columns(); ++c) types.push_back(l.column(c).type());
  for (int c = 0; c < r.num_columns(); ++c) types.push_back(r.column(c).type());
  return types;
}

// --- Row-at-a-time reference (the pre-kernel executor, verbatim shape) ---

std::unordered_multimap<uint64_t, size_t> BuildRowAtATime(const RowBlock& r,
                                                          const std::vector<ColumnId>& rs) {
  std::unordered_multimap<uint64_t, size_t> build;
  build.reserve(r.num_rows());
  for (size_t i = 0; i < r.num_rows(); ++i) build.emplace(r.HashRow(rs, i), i);
  return build;
}

RowBlock ProbeRowAtATime(const RowBlock& l, const RowBlock& r,
                         const std::vector<ColumnId>& ls, const std::vector<ColumnId>& rs,
                         const std::unordered_multimap<uint64_t, size_t>& build) {
  RowBlock dst(ConcatTypes(l, r));
  for (size_t i = 0; i < l.num_rows(); ++i) {
    uint64_t h = l.HashRow(ls, i);
    auto range = build.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (!l.RowsEqual(ls, i, r, rs, it->second)) continue;
      for (int c = 0; c < l.num_columns(); ++c) dst.column(c).AppendFrom(l.column(c), i);
      for (int c = 0; c < r.num_columns(); ++c) {
        dst.column(l.num_columns() + c).AppendFrom(r.column(c), it->second);
      }
    }
  }
  return dst;
}

RowBlock RepartitionRowAtATime(const RowBlock& src, const std::vector<ColumnId>& keys,
                               size_t* bytes_shuffled) {
  std::vector<RowBlock> out;
  std::vector<DataType> types;
  for (int c = 0; c < src.num_columns(); ++c) types.push_back(src.column(c).type());
  for (int t = 0; t < kTargets; ++t) out.emplace_back(types);
  size_t bytes = 0;
  for (size_t r = 0; r < src.num_rows(); ++r) {
    int target = static_cast<int>(src.HashRow(keys, r) % kTargets);
    if (target != 0) bytes += src.RowByteSize(r);
    out[static_cast<size_t>(target)].AppendRow(src, r);
  }
  *bytes_shuffled = bytes;
  RowBlock merged(types);
  for (auto& block : out) merged.AppendBlock(block);
  return merged;
}

// --- Kernel path (mirrors the executor's new join/exchange shape) ---

JoinHashTable BuildKernel(const RowBlock& r, const std::vector<ColumnId>& rs) {
  std::vector<uint64_t> hashes(r.num_rows());
  r.HashRows(rs, hashes);
  return JoinHashTable(hashes);
}

RowBlock ProbeKernel(const RowBlock& l, const RowBlock& r,
                     const std::vector<ColumnId>& ls, const std::vector<ColumnId>& rs,
                     const JoinHashTable& table) {
  RowBlock dst(ConcatTypes(l, r));
  std::vector<uint64_t> probe_hashes(l.num_rows());
  l.HashRows(ls, probe_hashes);
  struct MorselSel {
    std::vector<uint32_t> left, right;
  };
  std::vector<MorselSel> sels((l.num_rows() + kMorselRows - 1) / kMorselRows);
  std::vector<uint32_t> match_buf;
  size_t total = 0;
  for (size_t m = 0; m < sels.size(); ++m) {
    const size_t row_end = std::min(l.num_rows(), (m + 1) * kMorselRows);
    MorselSel& sel = sels[m];
    for (size_t i = m * kMorselRows; i < row_end; ++i) {
      match_buf.clear();
      table.ForEachMatch(probe_hashes[i], [&](uint32_t b) {
        if (l.RowsEqual(ls, i, r, rs, b)) match_buf.push_back(b);
      });
      for (size_t k = match_buf.size(); k-- > 0;) {
        sel.left.push_back(static_cast<uint32_t>(i));
        sel.right.push_back(match_buf[k]);
      }
    }
    total += sel.left.size();
  }
  dst.Reserve(total);
  for (const MorselSel& sel : sels) {
    if (sel.left.empty()) continue;
    for (int c = 0; c < l.num_columns(); ++c) dst.column(c).AppendGather(l.column(c), sel.left);
    for (int c = 0; c < r.num_columns(); ++c) {
      dst.column(l.num_columns() + c).AppendGather(r.column(c), sel.right);
    }
  }
  return dst;
}

RowBlock RepartitionKernel(const RowBlock& src, const std::vector<ColumnId>& keys,
                           size_t* bytes_shuffled) {
  std::vector<uint64_t> hashes(src.num_rows());
  src.HashRows(keys, hashes);
  std::vector<uint32_t> targets(src.num_rows());
  for (size_t r = 0; r < targets.size(); ++r) {
    targets[r] = static_cast<uint32_t>(hashes[r] % kTargets);
  }
  std::vector<size_t> sizes(src.num_rows());
  src.RowByteSizes(sizes);
  size_t bytes = 0;
  for (size_t r = 0; r < targets.size(); ++r) {
    if (targets[r] != 0) bytes += sizes[r];
  }
  *bytes_shuffled = bytes;
  ScatterPlan plan = BuildScatterPlan(targets, kTargets);
  std::vector<DataType> types;
  for (int c = 0; c < src.num_columns(); ++c) types.push_back(src.column(c).type());
  RowBlock merged(types);
  merged.Reserve(src.num_rows());
  for (int t = 0; t < kTargets; ++t) merged.AppendGather(src, plan.SliceFor(t));
  return merged;
}

// --- Benchmarks -----------------------------------------------------------

void BM_JoinBuildRowAtATime(benchmark::State& state) {
  for (auto _ : state) {
    auto build = BuildRowAtATime(*g_data->build, g_data->build_keys);
    benchmark::DoNotOptimize(build.size());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(g_data->build->num_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_JoinBuildKernel(benchmark::State& state) {
  for (auto _ : state) {
    auto table = BuildKernel(*g_data->build, g_data->build_keys);
    benchmark::DoNotOptimize(table.capacity());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(g_data->build->num_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_JoinProbeRowAtATime(benchmark::State& state) {
  auto build = BuildRowAtATime(*g_data->build, g_data->build_keys);
  for (auto _ : state) {
    RowBlock out = ProbeRowAtATime(*g_data->probe, *g_data->build, g_data->probe_keys,
                                   g_data->build_keys, build);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(g_data->probe->num_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_JoinProbeKernel(benchmark::State& state) {
  JoinHashTable table = BuildKernel(*g_data->build, g_data->build_keys);
  for (auto _ : state) {
    RowBlock out = ProbeKernel(*g_data->probe, *g_data->build, g_data->probe_keys,
                               g_data->build_keys, table);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(g_data->probe->num_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_RepartitionRowAtATime(benchmark::State& state) {
  size_t bytes = 0;
  for (auto _ : state) {
    RowBlock out = RepartitionRowAtATime(*g_data->probe, g_data->probe_keys, &bytes);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(g_data->probe->num_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_RepartitionKernel(benchmark::State& state) {
  size_t bytes = 0;
  for (auto _ : state) {
    RowBlock out = RepartitionKernel(*g_data->probe, g_data->probe_keys, &bytes);
    benchmark::DoNotOptimize(out.num_rows());
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(g_data->probe->num_rows()), benchmark::Counter::kIsIterationInvariantRate);
}

uint64_t BlockDigest(const RowBlock& b) {
  uint64_t h = 0xcbf29ce484222325ULL;
  std::vector<ColumnId> all;
  for (int c = 0; c < b.num_columns(); ++c) all.push_back(c);
  for (size_t r = 0; r < b.num_rows(); ++r) h = HashCombine(h, b.HashRow(all, r));
  return h;
}

/// The comparison is only meaningful if both paths compute the same thing:
/// identical output rows in identical order.
bool VerifyVariantsAgree() {
  auto mm = BuildRowAtATime(*g_data->build, g_data->build_keys);
  JoinHashTable table = BuildKernel(*g_data->build, g_data->build_keys);
  RowBlock a = ProbeRowAtATime(*g_data->probe, *g_data->build, g_data->probe_keys,
                               g_data->build_keys, mm);
  RowBlock b = ProbeKernel(*g_data->probe, *g_data->build, g_data->probe_keys,
                           g_data->build_keys, table);
  if (a.num_rows() != b.num_rows() || BlockDigest(a) != BlockDigest(b)) {
    std::fprintf(stderr, "join variants disagree: %zu/%zu rows\n", a.num_rows(),
                 b.num_rows());
    return false;
  }
  size_t bytes_a = 0, bytes_b = 0;
  RowBlock ra = RepartitionRowAtATime(*g_data->probe, g_data->probe_keys, &bytes_a);
  RowBlock rb = RepartitionKernel(*g_data->probe, g_data->probe_keys, &bytes_b);
  if (ra.num_rows() != rb.num_rows() || bytes_a != bytes_b ||
      BlockDigest(ra) != BlockDigest(rb)) {
    std::fprintf(stderr, "repartition variants disagree\n");
    return false;
  }
  return true;
}

/// Median-of-k wall-clock of one variant, for the JSON report.
template <typename Fn>
double MeasureSeconds(Fn&& fn, int reps = 3) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void FillReport(pref::bench::BenchReport* report) {
  const RowBlock& probe = *g_data->probe;
  const RowBlock& build = *g_data->build;
  const double probe_rows = static_cast<double>(probe.num_rows());
  const double build_rows = static_cast<double>(build.num_rows());

  double t = MeasureSeconds([&] {
    auto b = BuildRowAtATime(build, g_data->build_keys);
    benchmark::DoNotOptimize(b.size());
  });
  report->Result("join_build/rowatatime", t);
  report->Field("rows_per_sec", build_rows / t);
  double t_build_row = t;

  t = MeasureSeconds([&] {
    auto b = BuildKernel(build, g_data->build_keys);
    benchmark::DoNotOptimize(b.capacity());
  });
  report->Result("join_build/kernel", t);
  report->Field("rows_per_sec", build_rows / t);
  report->Field("speedup", t_build_row / t);

  auto mm = BuildRowAtATime(build, g_data->build_keys);
  t = MeasureSeconds([&] {
    RowBlock out = ProbeRowAtATime(probe, build, g_data->probe_keys,
                                   g_data->build_keys, mm);
    benchmark::DoNotOptimize(out.num_rows());
  });
  report->Result("join_probe/rowatatime", t);
  report->Field("rows_per_sec", probe_rows / t);
  double t_probe_row = t;

  JoinHashTable table = BuildKernel(build, g_data->build_keys);
  t = MeasureSeconds([&] {
    RowBlock out =
        ProbeKernel(probe, build, g_data->probe_keys, g_data->build_keys, table);
    benchmark::DoNotOptimize(out.num_rows());
  });
  report->Result("join_probe/kernel", t);
  report->Field("rows_per_sec", probe_rows / t);
  report->Field("speedup", t_probe_row / t);

  size_t bytes = 0;
  t = MeasureSeconds([&] {
    RowBlock out = RepartitionRowAtATime(probe, g_data->probe_keys, &bytes);
    benchmark::DoNotOptimize(out.num_rows());
  });
  report->Result("repartition/rowatatime", t);
  report->Field("rows_per_sec", probe_rows / t);
  double t_rep_row = t;

  t = MeasureSeconds([&] {
    RowBlock out = RepartitionKernel(probe, g_data->probe_keys, &bytes);
    benchmark::DoNotOptimize(out.num_rows());
  });
  report->Result("repartition/kernel", t);
  report->Field("rows_per_sec", probe_rows / t);
  report->Field("speedup", t_rep_row / t);
}

// --- SIMD kernel layer: scalar vs dispatched level ------------------------

/// Deterministic pseudo-random 64-bit stream (splitmix64) for kernel inputs.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The pre-PR byte-at-a-time FNV-1a, kept here as the string-hash baseline.
uint64_t FnvHashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The pre-PR flat one-entry-per-row join table layout (verbatim shape):
/// duplicate keys re-probe the directory once per entry, confirming key
/// equality per row. The chain layout's baseline for join_probe_dup.
class FlatJoinTable {
 public:
  explicit FlatJoinTable(std::span<const uint64_t> hashes) {
    size_t cap = 16;
    while (cap < hashes.size() * 2) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, Entry{0, UINT32_MAX});
    for (size_t i = 0; i < hashes.size(); ++i) {
      size_t s = hashes[i] & mask_;
      while (slots_[s].row != UINT32_MAX) s = (s + 1) & mask_;
      slots_[s] = Entry{hashes[i], static_cast<uint32_t>(i)};
    }
  }
  template <typename Fn>
  void ForEachMatch(uint64_t h, Fn&& fn) const {
    for (size_t s = h & mask_; slots_[s].row != UINT32_MAX; s = (s + 1) & mask_) {
      if (slots_[s].hash == h) fn(slots_[s].row);
    }
  }

 private:
  struct Entry {
    uint64_t hash;
    uint32_t row;
  };
  std::vector<Entry> slots_;
  size_t mask_ = 0;
};

/// Measures scalar vs dispatched for the SIMD kernels at a cache-resident
/// working set (the executor touches these arrays per morsel/per block),
/// the string hash, the scatter-plan scratch reuse, and the flat-vs-chain
/// duplicate probe. Aborts (returns false) if any variant pair disagrees.
bool FillSimdReport(pref::bench::BenchReport* report) {
  const simd::Level active = simd::ActiveLevel();
  const size_t kN = 65536;
  uint64_t rng = 42;

  // Exclusive prefix sum over per-target counts (u32 lanes).
  {
    std::vector<uint32_t> v(kN);
    for (auto& x : v) x = static_cast<uint32_t>(NextRand(&rng) % 64);
    std::vector<uint32_t> ref(kN + 1), out(kN + 1);
    simd::ExclusiveSum(v.data(), kN, ref.data(), simd::Level::kScalar);
    simd::ExclusiveSum(v.data(), kN, out.data(), active);
    if (out != ref) {
      std::fprintf(stderr, "prefix_sum variants disagree\n");
      return false;
    }
    const int reps = 2000;
    double t_scalar = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        simd::ExclusiveSum(v.data(), kN, out.data(), simd::Level::kScalar);
        benchmark::DoNotOptimize(out[kN]);
      }
    });
    report->Result("prefix_sum/scalar", t_scalar);
    report->Field("elems_per_sec", kN * reps / t_scalar);
    double t_simd = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        simd::ExclusiveSum(v.data(), kN, out.data(), active);
        benchmark::DoNotOptimize(out[kN]);
      }
    });
    report->Result("prefix_sum/simd", t_simd);
    report->Field("elems_per_sec", kN * reps / t_simd);
    report->Field("speedup", t_scalar / t_simd);
  }

  // Batch hash combine over int64 keys (the HashRows inner loop).
  {
    std::vector<int64_t> keys(kN);
    for (auto& k : keys) k = static_cast<int64_t>(NextRand(&rng));
    std::vector<uint64_t> seed(kN);
    for (auto& a : seed) a = NextRand(&rng);
    std::vector<uint64_t> ref = seed, acc = seed;
    simd::HashCombineInt64(keys.data(), kN, ref.data(), simd::Level::kScalar);
    simd::HashCombineInt64(keys.data(), kN, acc.data(), active);
    if (acc != ref) {
      std::fprintf(stderr, "hash_batch variants disagree\n");
      return false;
    }
    const int reps = 500;
    double t_scalar = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        acc = seed;
        simd::HashCombineInt64(keys.data(), kN, acc.data(), simd::Level::kScalar);
        benchmark::DoNotOptimize(acc[0]);
      }
    });
    report->Result("hash_batch/scalar", t_scalar);
    report->Field("keys_per_sec", kN * reps / t_scalar);
    double t_simd = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        acc = seed;
        simd::HashCombineInt64(keys.data(), kN, acc.data(), active);
        benchmark::DoNotOptimize(acc[0]);
      }
    });
    report->Result("hash_batch/simd", t_simd);
    report->Field("keys_per_sec", kN * reps / t_simd);
    report->Field("speedup", t_scalar / t_simd);
  }

  // Selection compaction (the ExecScan/ExecFilter bitmap → vector pass).
  {
    std::vector<uint8_t> bitmap(kN);
    for (auto& b : bitmap) b = (NextRand(&rng) & 1) ? 1 : 0;
    std::vector<uint32_t> ref(kN), out(kN);
    const size_t ref_k =
        simd::BitmapToSelection(bitmap.data(), kN, 0, ref.data(), simd::Level::kScalar);
    const size_t got_k = simd::BitmapToSelection(bitmap.data(), kN, 0, out.data(), active);
    if (got_k != ref_k || !std::equal(ref.begin(), ref.begin() + ref_k, out.begin())) {
      std::fprintf(stderr, "compact variants disagree\n");
      return false;
    }
    const int reps = 1000;
    double t_scalar = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        benchmark::DoNotOptimize(
            simd::BitmapToSelection(bitmap.data(), kN, 0, out.data(), simd::Level::kScalar));
      }
    });
    report->Result("compact/scalar", t_scalar);
    report->Field("rows_per_sec", kN * reps / t_scalar);
    double t_simd = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        benchmark::DoNotOptimize(
            simd::BitmapToSelection(bitmap.data(), kN, 0, out.data(), active));
      }
    });
    report->Result("compact/simd", t_simd);
    report->Field("rows_per_sec", kN * reps / t_simd);
    report->Field("speedup", t_scalar / t_simd);
  }

  // Word-at-a-time string hash vs the old byte-at-a-time FNV-1a, over
  // TPC-comment-like strings (mixed lengths straddling word boundaries).
  {
    std::vector<std::string> strings(kN);
    for (size_t i = 0; i < kN; ++i) {
      strings[i] = "lineitem comment field #" + std::to_string(NextRand(&rng) % 100000);
    }
    const int reps = 20;
    uint64_t sink = 0;
    double t_fnv = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        for (const auto& s : strings) sink ^= FnvHashBytes(s);
        benchmark::DoNotOptimize(sink);
      }
    });
    report->Result("hash_string/fnv", t_fnv);
    report->Field("strings_per_sec", kN * reps / t_fnv);
    double t_word = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        for (const auto& s : strings) sink ^= HashBytes(s);
        benchmark::DoNotOptimize(sink);
      }
    });
    report->Result("hash_string/word", t_word);
    report->Field("strings_per_sec", kN * reps / t_word);
    report->Field("speedup", t_fnv / t_word);
  }

  // Scatter-plan scratch reuse vs fresh allocation per block (lineitem
  // targets, the ExecRepartition shape).
  {
    const RowBlock& probe = *g_data->probe;
    std::vector<uint64_t> hashes(probe.num_rows());
    probe.HashRows(g_data->probe_keys, hashes);
    std::vector<uint32_t> targets(probe.num_rows());
    for (size_t r = 0; r < targets.size(); ++r) {
      targets[r] = static_cast<uint32_t>(hashes[r] % kTargets);
    }
    ScatterScratch scratch;
    ScatterPlan reused;
    BuildScatterPlanInto(targets, kTargets, scratch, reused);
    ScatterPlan fresh = BuildScatterPlan(targets, kTargets);
    if (fresh.offsets != reused.offsets || fresh.ordered != reused.ordered) {
      std::fprintf(stderr, "scatter_plan variants disagree\n");
      return false;
    }
    const int reps = 10;
    double t_fresh = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        ScatterPlan plan = BuildScatterPlan(targets, kTargets);
        benchmark::DoNotOptimize(plan.ordered.data());
      }
    });
    report->Result("scatter_plan/fresh", t_fresh);
    report->Field("rows_per_sec", targets.size() * reps / t_fresh);
    double t_scratch = MeasureSeconds([&] {
      for (int i = 0; i < reps; ++i) {
        BuildScatterPlanInto(targets, kTargets, scratch, reused);
        benchmark::DoNotOptimize(reused.ordered.data());
      }
    });
    report->Result("scatter_plan/scratch", t_scratch);
    report->Field("rows_per_sec", targets.size() * reps / t_scratch);
    report->Field("speedup", t_fresh / t_scratch);
  }

  // Duplicate-heavy string-key probe: old flat one-entry-per-row layout
  // (re-probe + key confirm per duplicate) vs contiguous chains (one
  // confirm per distinct key, then a cache-resident row-id walk).
  {
    RowBlock build(std::vector<DataType>{DataType::kString});
    RowBlock probe(std::vector<DataType>{DataType::kString});
    const size_t build_rows = 20000, probe_rows = 10000;
    for (size_t i = 0; i < build_rows; ++i) {
      build.column(0).AppendString("order-clerk#" + std::to_string(i % 40));
    }
    for (size_t i = 0; i < probe_rows; ++i) {
      probe.column(0).AppendString("order-clerk#" + std::to_string(i % 60));
    }
    const std::vector<ColumnId> key = {0};
    std::vector<uint64_t> build_hashes(build_rows), probe_hashes(probe_rows);
    build.HashRows(key, build_hashes);
    probe.HashRows(key, probe_hashes);
    FlatJoinTable flat(build_hashes);
    JoinHashTable chain(build_hashes, build, key);
    auto probe_flat = [&] {
      uint64_t digest = 0;
      for (size_t i = 0; i < probe_rows; ++i) {
        flat.ForEachMatch(probe_hashes[i], [&](uint32_t b) {
          if (probe.RowsEqual(key, i, build, key, b)) {
            digest = HashCombine(digest, (static_cast<uint64_t>(i) << 32) | b);
          }
        });
      }
      return digest;
    };
    auto probe_chain = [&] {
      uint64_t digest = 0;
      for (size_t i = 0; i < probe_rows; ++i) {
        chain.ForEachChain(probe_hashes[i], [&](std::span<const uint32_t> rows) {
          if (!probe.RowsEqual(key, i, build, key, rows.front())) return;
          for (uint32_t b : rows) {
            digest = HashCombine(digest, (static_cast<uint64_t>(i) << 32) | b);
          }
        });
      }
      return digest;
    };
    if (probe_flat() != probe_chain()) {
      std::fprintf(stderr, "join_probe_dup variants disagree\n");
      return false;
    }
    double t_flat = MeasureSeconds([&] { benchmark::DoNotOptimize(probe_flat()); });
    report->Result("join_probe_dup/flat", t_flat);
    report->Field("probes_per_sec", probe_rows / t_flat);
    double t_chain = MeasureSeconds([&] { benchmark::DoNotOptimize(probe_chain()); });
    report->Result("join_probe_dup/chain", t_chain);
    report->Field("probes_per_sec", probe_rows / t_chain);
    report->Field("speedup", t_flat / t_chain);
  }

  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  double sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.1);
  auto db = pref::GenerateTpch({sf, 42});
  if (!db.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  KernelBenchData data;
  data.db = std::make_unique<pref::Database>(std::move(*db));
  auto lineitem = data.db->FindTable("lineitem");
  auto orders = data.db->FindTable("orders");
  if (!lineitem.ok() || !orders.ok()) return 1;
  data.probe = &(*lineitem)->data();
  data.build = &(*orders)->data();
  // l_orderkey and o_orderkey are the leading columns of both tables.
  data.probe_keys = {0};
  data.build_keys = {0};
  g_data = &data;

  if (!VerifyVariantsAgree()) return 1;

  pref::bench::BenchReport report("bench_kernels", sf, kTargets);
  report.Config("probe_rows", static_cast<double>(data.probe->num_rows()));
  report.Config("build_rows", static_cast<double>(data.build->num_rows()));
  report.Config("simd_level", static_cast<double>(pref::simd::ActiveLevel()));
  FillReport(&report);
  if (!FillSimdReport(&report)) return 1;

  benchmark::RegisterBenchmark("kernels/join_build/rowatatime", BM_JoinBuildRowAtATime)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("kernels/join_build/kernel", BM_JoinBuildKernel)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("kernels/join_probe/rowatatime", BM_JoinProbeRowAtATime)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("kernels/join_probe/kernel", BM_JoinProbeKernel)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("kernels/repartition/rowatatime", BM_RepartitionRowAtATime)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("kernels/repartition/kernel", BM_RepartitionKernel)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
