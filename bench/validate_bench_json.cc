// CI schema validator for the JSON documents the bench/observability layer
// emits: checks each file parses as JSON and that the schema's fixed
// top-level keys are present. Exits nonzero with a message on the first
// violation so the smoke job fails loudly.
//
// Usage: validate_bench_json [--schema=bench|profile|monitor|migration]
//                            [--require-fields=a,b,c]
//                            [--require-results=x,y/z] <doc.json> [...]
//
// Schemas:
//   bench    (default) — pref::bench::BenchReport output (--json=).
//   profile  — QueryProfile::WriteJson documents.
//   monitor  — bench_serve --monitor= documents (WorkloadMonitor JSON with
//              the spliced-in "timeseries" timeline).
//   migration — bench_serve --migrate documents: a bench report that also
//              carries the spliced-in "migration" section.
//
// --require-fields=a,b,c additionally demands that each listed field key
// (e.g. latency percentiles, locality/queue-wait fields) appears somewhere
// in every file.
//
// --require-results=x,y additionally demands a result row named x (and y,
// ...) in every file — how CI pins the simd-vs-scalar kernel entries of
// bench_kernels without asserting on their timings.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace {

struct SchemaDef {
  const char* name;
  std::vector<const char*> required_keys;
};

const SchemaDef kSchemas[] = {
    {"bench", {"figure", "config", "results", "metrics"}},
    {"profile", {"query", "summary", "cost_model", "operators"}},
    {"monitor",
     {"monitor", "drift", "scan_frequencies", "join_frequencies",
      "partition_rows", "timeseries"}},
    // A bench document carrying the online-migration section bench_serve
    // --migrate splices in next to the standard report keys.
    {"migration", {"figure", "config", "results", "migration", "metrics"}},
};

const SchemaDef* FindSchema(std::string_view name) {
  for (const SchemaDef& s : kSchemas) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

std::vector<std::string> SplitFields(std::string_view csv) {
  std::vector<std::string> out;
  while (!csv.empty()) {
    const size_t comma = csv.find(',');
    std::string_view field = csv.substr(0, comma);
    if (!field.empty()) out.emplace_back(field);
    if (comma == std::string_view::npos) break;
    csv.remove_prefix(comma + 1);
  }
  return out;
}

bool ValidateFile(const char* path, const SchemaDef& schema,
                  const std::vector<std::string>& required_fields,
                  const std::vector<std::string>& required_results) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<std::string> keys;
  if (!pref::JsonValidator::Valid(text, &keys)) {
    std::fprintf(stderr, "%s: not valid JSON\n", path);
    return false;
  }
  for (const char* required : schema.required_keys) {
    if (std::find(keys.begin(), keys.end(), required) == keys.end()) {
      std::fprintf(stderr, "%s: missing top-level key \"%s\" (schema %s)\n",
                   path, required, schema.name);
      return false;
    }
  }
  // JsonValidator reports top-level keys only, so required nested fields
  // are checked textually: an emitted field always appears as a quoted key.
  for (const std::string& field : required_fields) {
    const std::string needle = "\"" + field + "\":";
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "%s: missing required field \"%s\"\n", path,
                   field.c_str());
      return false;
    }
  }
  // Result rows serialize as {"name":"<x>",...}; check for the exact
  // quoted pair the writer emits.
  for (const std::string& result : required_results) {
    const std::string needle = "\"name\":\"" + result + "\"";
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "%s: missing required result row \"%s\"\n", path,
                   result.c_str());
      return false;
    }
  }
  std::printf("%s: ok (schema %s, %zu top-level keys)\n", path, schema.name,
              keys.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const SchemaDef* schema = FindSchema("bench");
  std::vector<std::string> required_fields;
  std::vector<std::string> required_results;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--schema=", 0) == 0) {
      schema = FindSchema(arg.substr(9));
      if (schema == nullptr) {
        std::fprintf(stderr, "unknown schema '%s' (bench|profile|monitor|migration)\n",
                     argv[i] + 9);
        return 2;
      }
    } else if (arg.rfind("--require-fields=", 0) == 0) {
      for (auto& f : SplitFields(arg.substr(17))) {
        required_fields.push_back(std::move(f));
      }
    } else if (arg.rfind("--require-results=", 0) == 0) {
      for (auto& r : SplitFields(arg.substr(18))) {
        required_results.push_back(std::move(r));
      }
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--schema=bench|profile|monitor|migration] "
                 "[--require-fields=a,b,c] [--require-results=x,y] "
                 "<doc.json> [...]\n",
                 argv[0]);
    return 2;
  }
  bool ok = true;
  for (const char* path : paths) {
    ok &= ValidateFile(path, *schema, required_fields, required_results);
  }
  return ok ? 0 : 1;
}
