// CI schema validator for the bench_fig* --json=<path> output: checks the
// file parses as JSON and that the fixed top-level keys emitted by
// pref::bench::BenchReport are all present. Exits nonzero with a message
// on the first violation so the smoke job fails loudly.
//
// Usage: validate_bench_json <report.json> [<report.json> ...]

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

const char* kRequiredKeys[] = {"figure", "config", "results", "metrics"};

bool ValidateFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<std::string> keys;
  if (!pref::JsonValidator::Valid(text, &keys)) {
    std::fprintf(stderr, "%s: not valid JSON\n", path);
    return false;
  }
  for (const char* required : kRequiredKeys) {
    if (std::find(keys.begin(), keys.end(), required) == keys.end()) {
      std::fprintf(stderr, "%s: missing top-level key \"%s\"\n", path, required);
      return false;
    }
  }
  std::printf("%s: ok (%zu top-level keys)\n", path, keys.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <report.json> [...]\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok &= ValidateFile(argv[i]);
  return ok ? 0 : 1;
}
