// CI schema validator for the bench_fig* --json=<path> output: checks the
// file parses as JSON and that the fixed top-level keys emitted by
// pref::bench::BenchReport are all present. Exits nonzero with a message
// on the first violation so the smoke job fails loudly.
//
// Usage: validate_bench_json [--require-fields=a,b,c] <report.json> [...]
//
// --require-fields=a,b,c additionally demands that each listed result
// field key (e.g. the latency percentiles bench_serve emits) appears
// somewhere in every file.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace {

const char* kRequiredKeys[] = {"figure", "config", "results", "metrics"};

std::vector<std::string> SplitFields(std::string_view csv) {
  std::vector<std::string> out;
  while (!csv.empty()) {
    const size_t comma = csv.find(',');
    std::string_view field = csv.substr(0, comma);
    if (!field.empty()) out.emplace_back(field);
    if (comma == std::string_view::npos) break;
    csv.remove_prefix(comma + 1);
  }
  return out;
}

bool ValidateFile(const char* path,
                  const std::vector<std::string>& required_fields) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<std::string> keys;
  if (!pref::JsonValidator::Valid(text, &keys)) {
    std::fprintf(stderr, "%s: not valid JSON\n", path);
    return false;
  }
  for (const char* required : kRequiredKeys) {
    if (std::find(keys.begin(), keys.end(), required) == keys.end()) {
      std::fprintf(stderr, "%s: missing top-level key \"%s\"\n", path, required);
      return false;
    }
  }
  // JsonValidator reports top-level keys only, so required result fields
  // are checked textually: a field emitted by BenchReport::Field always
  // appears as a quoted key.
  for (const std::string& field : required_fields) {
    const std::string needle = "\"" + field + "\":";
    if (text.find(needle) == std::string::npos) {
      std::fprintf(stderr, "%s: missing required field \"%s\"\n", path,
                   field.c_str());
      return false;
    }
  }
  std::printf("%s: ok (%zu top-level keys)\n", path, keys.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required_fields;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--require-fields=", 0) == 0) {
      for (auto& f : SplitFields(arg.substr(17))) {
        required_fields.push_back(std::move(f));
      }
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--require-fields=a,b,c] <report.json> [...]\n",
                 argv[0]);
    return 2;
  }
  bool ok = true;
  for (const char* path : paths) ok &= ValidateFile(path, required_fields);
  return ok ? 0 : 1;
}
