// Figure 11 (and Table 1): data-locality vs data-redundancy on TPC-H (a)
// and TPC-DS (b) at 10 partitions, for every variant evaluated in the
// paper, including the two baselines (All Hashed, All Replicated) and the
// TPC-DS naive / individual-stars versions of CP and SD.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "datagen/tpcds_gen.h"
#include "design/stars.h"
#include "workloads/tpcds_workload.h"

namespace {

struct Row {
  std::string name;
  double dl;
  double dr;
};

void Print(const char* title, const std::vector<Row>& rows, const char* paper) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-28s %6s %6s\n", "variant", "DL", "DR");
  for (const auto& row : rows) {
    std::printf("%-28s %6.2f %6.2f\n", row.name.c_str(), row.dl, row.dr);
  }
  std::printf("%s\n", paper);
}

pref::Status RunTpch(std::vector<Row>* rows) {
  double sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01);
  PREF_ASSIGN_OR_RAISE(auto bench, pref::bench::MakeTpchBench(sf, 10));
  const pref::Schema& schema = bench.db->schema();
  {
    PREF_ASSIGN_OR_RAISE(auto config, pref::MakeAllHashed(schema, 10));
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeSingleConfigVariant(
                                     *bench.db, "All Hashed", std::move(config)));
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  {
    PREF_ASSIGN_OR_RAISE(auto config, pref::MakeAllReplicated(schema, 10));
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeSingleConfigVariant(
                                     *bench.db, "All Replicated", std::move(config)));
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  for (const auto& v : bench.variants) {
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  return pref::Status::OK();
}

pref::Status RunTpcds(std::vector<Row>* rows) {
  pref::TpcdsGenOptions gen;
  gen.scale_factor = pref::bench::EnvScaleFactor("PREF_BENCH_DS_SF", 0.25);
  PREF_ASSIGN_OR_RAISE(auto db0, pref::GenerateTpcds(gen));
  pref::Database db(std::move(db0));
  const pref::Schema& schema = db.schema();
  const auto& small = pref::TpcdsSmallTables();

  {
    PREF_ASSIGN_OR_RAISE(auto config, pref::MakeAllHashed(schema, 10));
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeSingleConfigVariant(
                                     db, "All Hashed", std::move(config)));
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  {
    PREF_ASSIGN_OR_RAISE(auto config, pref::MakeAllReplicated(schema, 10));
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeSingleConfigVariant(
                                     db, "All Replicated", std::move(config)));
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  {
    PREF_ASSIGN_OR_RAISE(auto config, pref::MakeTpcdsClassicalNaive(schema, 10));
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeSingleConfigVariant(
                                     db, "CP Naive", std::move(config)));
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  {
    PREF_ASSIGN_OR_RAISE(auto deployment, pref::MakeTpcdsClassicalStars(db, 10));
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeDeploymentVariant(
                                     db, "CP Individual Stars", std::move(deployment)));
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  {
    pref::SdOptions options;
    options.num_partitions = 10;
    options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(auto sd, pref::SchemaDrivenDesign(db, options));
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeSingleConfigVariant(
                                     db, "SD Naive", std::move(sd.config)));
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  {
    pref::SdOptions options;
    options.num_partitions = 10;
    options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(auto deployment, pref::TpcdsSdIndividualStars(db, options));
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeDeploymentVariant(
                                     db, "SD Individual Stars", std::move(deployment)));
    rows->push_back({v.name, v.data_locality, v.data_redundancy});
  }
  {
    pref::WdOptions options;
    options.num_partitions = 10;
    options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(auto graphs, pref::TpcdsQueryGraphs(schema));
    PREF_ASSIGN_OR_RAISE(auto wd, pref::WorkloadDrivenDesign(db, graphs, options));
    std::printf("[WD TPC-DS] components: %d -> %d -> %d (paper: 165 -> 17 -> 7)\n",
                wd.initial_components, wd.components_after_phase1,
                wd.components_after_phase2);
    double dl = pref::WorkloadLocality(db, wd.deployment, graphs);
    PREF_ASSIGN_OR_RAISE(auto v, pref::bench::MakeDeploymentVariant(
                                     db, "WD (wo small tables)",
                                     std::move(wd.deployment)));
    rows->push_back({v.name, dl, v.data_redundancy});
  }
  return pref::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  std::vector<Row> tpch, tpcds;
  pref::Status st = RunTpch(&tpch);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-H failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Print("Figure 11(a): TPC-H locality vs redundancy (10 partitions)", tpch,
        "(paper: AH 0/0, AR 1/9, CP 1/1.21, SD 1/0.5, SD-wo-red 0.7/0.19, WD 1/1.5)");
  st = RunTpcds(&tpcds);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-DS failed: %s\n", st.ToString().c_str());
    return 1;
  }
  Print("Figure 11(b): TPC-DS locality vs redundancy (10 partitions)", tpcds,
        "(paper: AH 0/0, AR 1/9, CPnaive 1/4.15, CPstars 1/1.32, SDnaive 0.49/0.23,\n"
        " SDstars 0.65/0.38, WD 1/1.4)");
  pref::bench::BenchReport report(
      "fig11", pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01), 10);
  report.Config("tpcds_scale_factor",
                pref::bench::EnvScaleFactor("PREF_BENCH_DS_SF", 0.25));
  // This figure measures design-quality metrics, not runtime; rows carry
  // DL/DR fields and a zero simulated time.
  for (const auto* rows : {&tpch, &tpcds}) {
    const char* prefix = rows == &tpch ? "tpch/" : "tpcds/";
    for (const auto& r : *rows) {
      report.Result(prefix + r.name, 0);
      report.Field("data_locality", r.dl);
      report.Field("data_redundancy", r.dr);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
