// Figure 7 + Table 1: total runtime of the TPC-H queries (Q13/Q22
// excluded, as in the paper) under Classical / SD / SD-wo-redundancy / WD,
// plus the data-locality and data-redundancy each variant achieves.
//
// Absolute numbers come from the simulated-cluster cost model (the paper
// ran 10 EC2 m1.medium nodes with MySQL); the comparison *shape* —
// WD < SD < SD-wo-red < Classical on total runtime, Table 1's DL/DR — is
// the reproduced result.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

pref::bench::TpchBench* g_bench = nullptr;

bool Excluded(int query_number) {
  for (int q : pref::TpchExcludedQueries()) {
    if (q == query_number) return true;
  }
  return false;
}

double TotalSimulatedSeconds(const pref::bench::Variant& variant,
                             pref::CostModel model,
                             pref::bench::BenchReport* report = nullptr) {
  double total = 0;
  for (size_t i = 0; i < g_bench->queries.size(); ++i) {
    if (Excluded(static_cast<int>(i) + 1)) continue;
    auto result = g_bench->Run(variant, g_bench->queries[i]);
    if (!result.ok()) {
      std::fprintf(stderr, "Q%zu failed on %s: %s\n", i + 1, variant.name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    double simulated = result->stats.SimulatedSeconds(model);
    if (report != nullptr) {
      report->Result(variant.name + "/Q" + std::to_string(i + 1), simulated);
      report->Field("bytes_shuffled",
                    static_cast<double>(result->stats.bytes_shuffled));
      report->Field("wall_seconds", result->stats.wall_seconds);
    }
    total += simulated;
  }
  return total;
}

void BM_TotalRuntime(benchmark::State& state, const pref::bench::Variant* variant) {
  pref::CostModel model = pref::bench::PaperScaledModel(pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01));
  double simulated = 0;
  for (auto _ : state) {
    simulated = TotalSimulatedSeconds(*variant, model);
    benchmark::DoNotOptimize(simulated);
  }
  state.counters["simulated_total_s"] = simulated;
  state.counters["DL"] = variant->data_locality;
  state.counters["DR"] = variant->data_redundancy;
}

void PrintPaperTable(pref::bench::BenchReport* report) {
  pref::CostModel model = pref::bench::PaperScaledModel(pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01));
  std::printf("\n=== Figure 7: total runtime of all TPC-H queries (wo Q13/Q22) ===\n");
  std::printf("%-32s %18s\n", "variant", "simulated total (s)");
  for (const auto& v : g_bench->variants) {
    double total = TotalSimulatedSeconds(v, model, report);
    if (report != nullptr) {
      report->Result(v.name + "/total", total);
      report->Field("data_locality", v.data_locality);
      report->Field("data_redundancy", v.data_redundancy);
    }
    std::printf("%-32s %18.3f\n", v.name.c_str(), total);
  }
  std::printf("\n=== Table 1: data-locality / data-redundancy ===\n");
  std::printf("%-32s %6s %6s\n", "variant", "DL", "DR");
  for (const auto& v : g_bench->variants) {
    std::printf("%-32s %6.2f %6.2f\n", v.name.c_str(), v.data_locality,
                v.data_redundancy);
  }
  std::printf("(paper: CP 1.0/1.21, SD 1.0/0.5, SD-wo-red 0.7/0.19, WD 1.0/1.5)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  double sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01);
  auto bench = pref::bench::MakeTpchBench(sf, 10);
  if (!bench.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", bench.status().ToString().c_str());
    return 1;
  }
  g_bench = &*bench;
  pref::bench::BenchReport report("fig7", sf, g_bench->nodes);
  PrintPaperTable(&report);
  for (const auto& v : g_bench->variants) {
    benchmark::RegisterBenchmark(("fig7/" + v.name).c_str(), BM_TotalRuntime, &v)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
