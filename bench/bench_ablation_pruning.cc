// Ablation for the §7 outlook feature implemented here: partition pruning
// for seed-key equality predicates. Selective point queries scan one
// partition instead of all n.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

pref::bench::TpchBench* g_bench = nullptr;
double g_sf = 0.01;

pref::QuerySpec PointQuery(const pref::Schema& schema, int64_t orderkey) {
  return *pref::QueryBuilder(&schema, "point")
              .From("orders")
              .Where("orders", pref::Eq("o_orderkey", pref::Value(orderkey)))
              .Join("lineitem", "o_orderkey", "l_orderkey")
              .Agg(pref::AggFunc::kSum, "l_extendedprice", "total")
              .Build();
}

void PrintTable(pref::bench::BenchReport* report) {
  pref::CostModel model = pref::bench::PaperScaledModel(g_sf);
  const auto& cp = g_bench->variants[0];  // lineitem/orders co-hashed
  pref::QueryOptions off, on;
  on.partition_pruning = true;
  std::printf("\n=== Ablation: partition pruning (seed-key point query, CP) ===\n");
  std::printf("%-22s %14s %18s\n", "mode", "simulated (s)", "rows processed");
  for (auto [name, options] : {std::pair<const char*, pref::QueryOptions>{
                                   "pruning off", off},
                               {"pruning on", on}}) {
    double total = 0;
    size_t rows = 0;
    for (int64_t key : {100, 2000, 7777, 123456}) {
      auto r = g_bench->Run(cp, PointQuery(g_bench->db->schema(), key), options);
      if (!r.ok()) continue;
      total += r->stats.SimulatedSeconds(model);
      rows += r->stats.total_rows_processed;
    }
    if (report != nullptr) {
      report->Result(options.partition_pruning ? "pruning_on" : "pruning_off",
                     total);
      report->Field("rows_processed", static_cast<double>(rows));
    }
    std::printf("%-22s %14.3f %18zu\n", name, total, rows);
  }
  std::printf("\n");
}

void BM_Point(benchmark::State& state, bool pruning) {
  const auto& cp = g_bench->variants[0];
  pref::QueryOptions options;
  options.partition_pruning = pruning;
  auto q = PointQuery(g_bench->db->schema(), 4242);
  for (auto _ : state) {
    auto r = g_bench->Run(cp, q, options);
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  g_sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01);
  auto bench = pref::bench::MakeTpchBench(g_sf, 10);
  if (!bench.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", bench.status().ToString().c_str());
    return 1;
  }
  g_bench = &*bench;
  pref::bench::BenchReport report("ablation_pruning", g_sf, g_bench->nodes);
  PrintTable(&report);
  benchmark::RegisterBenchmark("pruning/off", BM_Point, false)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("pruning/on", BM_Point, true)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
