// Ablation: the skew-aware cumulative estimator (per-value copy-profile
// propagation + group occupancy) vs the paper's Appendix-A composition
// (independent per-edge factors multiplied along the path). Measured on
// TPC-DS at increasing skew; ground truth is the materialized DR of the
// configuration chosen at full sampling.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "catalog/tpcds_schema.h"
#include "datagen/tpcds_gen.h"
#include "design/sd_design.h"
#include "partition/partitioner.h"

namespace {

pref::Status Run(pref::bench::BenchReport* report) {
  std::printf(
      "\n=== Ablation: skew-aware vs naive (Appendix A) redundancy estimation ===\n");
  std::printf("%6s %10s %16s %16s\n", "skew", "actual DR", "skew-aware (err)",
              "naive (err)");
  for (double skew : {0.0, 0.3, 0.5, 0.7, 0.85}) {
    pref::TpcdsGenOptions gen;
    gen.scale_factor = 0.25;
    gen.skew = skew;
    PREF_ASSIGN_OR_RAISE(auto db0, pref::GenerateTpcds(gen));
    pref::Database db(std::move(db0));

    pref::SdOptions options;
    options.num_partitions = 10;
    options.replicate_tables = pref::TpcdsSmallTables();
    PREF_ASSIGN_OR_RAISE(auto aware, pref::SchemaDrivenDesign(db, options));
    options.naive_estimator = true;
    PREF_ASSIGN_OR_RAISE(auto naive, pref::SchemaDrivenDesign(db, options));

    // Ground truth: materialize the skew-aware configuration.
    PREF_ASSIGN_OR_RAISE(auto pdb, pref::PartitionDatabase(db, aware.config));
    double actual = pdb->DataRedundancy();
    auto err = [&](double est) {
      return actual == 0 ? 0.0 : std::fabs(est - actual) / actual * 100;
    };
    if (report != nullptr) {
      report->Result("skew=" + std::to_string(skew), 0);
      report->Field("actual_redundancy", actual);
      report->Field("aware_estimate", aware.estimated_redundancy);
      report->Field("aware_error_pct", err(aware.estimated_redundancy));
      report->Field("naive_estimate", naive.estimated_redundancy);
      report->Field("naive_error_pct", err(naive.estimated_redundancy));
    }
    std::printf("%6.2f %10.3f %9.3f (%4.0f%%) %9.3f (%4.0f%%)\n", skew, actual,
                aware.estimated_redundancy, err(aware.estimated_redundancy),
                naive.estimated_redundancy, err(naive.estimated_redundancy));
  }
  std::printf(
      "(the naive composition drifts as skew grows; the copy-profile\n"
      " propagation stays within a few percent — see DESIGN.md §4b)\n\n");
  return pref::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  pref::bench::BenchReport report("ablation_estimator", 0.25, 10);
  pref::Status st = Run(&report);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
