// Shared setup for the figure-reproduction benchmarks: builds the TPC-H
// database and the four §5.1 partitioning variants (CP, SD, SD wo
// redundancy, WD), with query routing for deployment-style variants.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "catalog/tpcds_schema.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "datagen/tpch_gen.h"
#include "design/sd_design.h"
#include "design/wd_design.h"
#include "engine/executor.h"
#include "partition/locality.h"
#include "partition/presets.h"
#include "workloads/tpch_queries.h"

namespace pref {
namespace bench {

inline double EnvScaleFactor(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

/// Observability flags shared by every bench_fig* main. Parsed (and
/// stripped from argv) *before* benchmark::Initialize, which rejects flags
/// it does not know.
struct BenchArgs {
  std::string json_path;   // --json=<path>: machine-readable BenchReport
  std::string trace_path;  // --trace=<path>: Chrome trace of this run
};

inline BenchArgs ParseBenchArgs(int* argc, char** argv) {
  BenchArgs out;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      out.json_path = std::string(arg.substr(7));
    } else if (arg.rfind("--trace=", 0) == 0) {
      out.trace_path = std::string(arg.substr(8));
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  // Tracing is opt-in per run; enable before any spans are created.
  if (!out.trace_path.empty()) Tracer::Default().SetEnabled(true);
  return out;
}

/// \brief Machine-readable benchmark output behind --json=<path>.
///
/// Fixed top-level schema (validated by bench/validate_bench_json):
///   {"figure": str, "config": {str: num}, "results": [{"name": str,
///    "simulated_seconds": num, ...}], "metrics": {...registry snapshot}}
/// Results are one row per (variant, query) or per measured configuration;
/// extra numeric fields attach to the most recent row.
class BenchReport {
 public:
  BenchReport(std::string figure, double scale_factor, int nodes)
      : figure_(std::move(figure)) {
    Config("scale_factor", scale_factor);
    Config("nodes", nodes);
    Config("threads", ThreadPool::DefaultConcurrency());
    Config("metrics_enabled", PREF_METRICS);
  }

  void Config(const std::string& key, double value) {
    config_.emplace_back(key, value);
  }

  /// Starts a result row; Field() calls attach to it until the next Result.
  void Result(std::string name, double simulated_seconds) {
    results_.push_back({std::move(name), simulated_seconds, {}});
  }
  void Field(const std::string& key, double value) {
    results_.back().fields.emplace_back(key, value);
  }

  /// Attaches a pre-rendered JSON object as one more top-level key,
  /// spliced in verbatim like the metrics snapshot (bench_serve's
  /// "migration" section rides along this way).
  void Section(const std::string& key, std::string json_object) {
    while (!json_object.empty() && json_object.back() == '\n') {
      json_object.pop_back();
    }
    sections_.emplace_back(key, std::move(json_object));
  }

  Status WriteTo(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return Status::Invalid("cannot open '", path, "' for writing");
    JsonWriter w(&os);
    w.BeginObject();
    w.Key("figure");
    w.String(figure_);
    w.Key("config");
    w.BeginObject();
    for (const auto& [k, v] : config_) {
      w.Key(k);
      w.Double(v);
    }
    w.EndObject();
    w.Key("results");
    w.BeginArray();
    for (const auto& r : results_) {
      w.BeginObject();
      w.Key("name");
      w.String(r.name);
      w.Key("simulated_seconds");
      w.Double(r.simulated_seconds);
      for (const auto& [k, v] : r.fields) {
        w.Key(k);
        w.Double(v);
      }
      w.EndObject();
    }
    w.EndArray();
    // Sections are spliced raw, bypassing the writer: the separator is
    // emitted by hand so the writer's comma state stays anchored at the
    // results array and the following Key("metrics") still delimits
    // correctly. Section keys are internal identifiers, never escaped.
    for (const auto& [k, json] : sections_) {
      os << ",\"" << k << "\":" << json;
    }
    // The metrics snapshot is itself a complete JSON object; splice it in
    // verbatim after the key.
    w.Key("metrics");
    MetricsRegistry::Default().WriteJson(os);
    w.EndObject();
    os << "\n";
    if (!os.good()) return Status::Invalid("short write to '", path, "'");
    return Status::OK();
  }

 private:
  struct Row {
    std::string name;
    double simulated_seconds;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::string figure_;
  std::vector<std::pair<std::string, double>> config_;
  std::vector<Row> results_;
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Writes the outputs requested by --json/--trace. Returns false (with the
/// failure on stderr) so mains can exit nonzero when a write fails.
inline bool FinishBench(const BenchReport& report, const BenchArgs& args) {
  bool ok = true;
  if (!args.trace_path.empty()) {
    Status s = Tracer::Default().WriteChromeTraceFile(args.trace_path);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
      ok = false;
    }
  }
  if (!args.json_path.empty()) {
    Status s = report.WriteTo(args.json_path);
    if (!s.ok()) {
      std::fprintf(stderr, "json export failed: %s\n", s.ToString().c_str());
      ok = false;
    }
  }
  return ok;
}

/// Cost model scaled so a reduced-SF in-memory run sits in the same
/// data-bound regime as the paper's SF-10 cluster: node throughput and
/// network bandwidth shrink by sf/10, keeping per-query cost ratios intact
/// while exchange latency stays physical.
inline CostModel PaperScaledModel(double scale_factor) {
  CostModel model;
  double ratio = scale_factor / 10.0;
  model.rows_per_second_per_node = 5e6 * ratio;
  model.network_bytes_per_second = 100e6 * ratio;
  model.exchange_latency_seconds = 0.05;
  return model;
}

/// One partitioning variant: one or more configurations (WD produces one
/// per merged MAST) with their materialized databases.
struct Variant {
  std::string name;
  std::vector<PartitioningConfig> configs;
  std::vector<std::unique_ptr<PartitionedDatabase>> pdbs;
  double data_locality = 0;
  double data_redundancy = 0;

  /// The partitioned database a query over `tables` routes to.
  Result<const PartitionedDatabase*> Route(const std::vector<TableId>& tables) const {
    for (size_t i = 0; i < configs.size(); ++i) {
      bool all = true;
      for (TableId t : tables) all &= configs[i].Contains(t);
      if (all) return pdbs[i].get();
    }
    return Status::NotFound("no configuration of variant '", name,
                            "' covers the query");
  }
};

struct TpchBench {
  std::unique_ptr<Database> db;
  std::vector<QuerySpec> queries;  // all 22
  std::vector<Variant> variants;   // CP, SD, SD wo red, WD
  int nodes = 10;

  Result<QueryResult> Run(const Variant& variant, const QuerySpec& query,
                          const QueryOptions& options = {}) const {
    std::vector<TableId> tables;
    for (const auto& ref : query.tables) {
      PREF_ASSIGN_OR_RAISE(TableId id, db->schema().FindTable(ref.table));
      tables.push_back(id);
    }
    PREF_ASSIGN_OR_RAISE(const PartitionedDatabase* pdb, variant.Route(tables));
    return ExecuteQuery(query, *pdb, options);
  }
};

inline Result<Variant> MakeSingleConfigVariant(const Database& db, std::string name,
                                               PartitioningConfig config) {
  Variant v;
  v.name = std::move(name);
  auto edges = SchemaEdges(db, config);
  v.data_locality = DataLocality(config, edges);
  PREF_ASSIGN_OR_RAISE(auto pdb, PartitionDatabase(db, config));
  v.data_redundancy = pdb->DataRedundancy();
  v.configs.push_back(std::move(config));
  v.pdbs.push_back(std::move(pdb));
  return v;
}

inline Result<Variant> MakeDeploymentVariant(
    const Database& db, std::string name, Deployment deployment,
    const std::vector<QueryGraph>* workload = nullptr) {
  Variant v;
  v.name = std::move(name);
  v.data_locality = workload != nullptr
                        ? WorkloadLocality(db, deployment, *workload)
                        : deployment.Locality(db);
  PREF_ASSIGN_OR_RAISE(v.data_redundancy, deployment.Redundancy(db));
  PREF_ASSIGN_OR_RAISE(auto pdbs, deployment.Materialize(db));
  v.pdbs = std::move(pdbs);
  for (auto& config : deployment.configs()) v.configs.push_back(std::move(config));
  return v;
}

/// Builds the full §5.1 comparison: Classical / SD / SD-wo-redundancy / WD.
inline Result<TpchBench> MakeTpchBench(double scale_factor, int nodes,
                                       uint64_t seed = 42) {
  TpchBench bench;
  bench.nodes = nodes;
  PREF_ASSIGN_OR_RAISE(auto db, GenerateTpch({scale_factor, seed}));
  bench.db = std::make_unique<Database>(std::move(db));
  const Schema& schema = bench.db->schema();
  bench.queries = TpchQueries(schema);

  const std::vector<std::string> small = {"nation", "region", "supplier"};

  {
    PREF_ASSIGN_OR_RAISE(auto config, MakeTpchClassical(schema, nodes));
    PREF_ASSIGN_OR_RAISE(auto v, MakeSingleConfigVariant(*bench.db, "Classical",
                                                         std::move(config)));
    bench.variants.push_back(std::move(v));
  }
  {
    SdOptions options;
    options.num_partitions = nodes;
    options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(auto sd, SchemaDrivenDesign(*bench.db, options));
    PREF_ASSIGN_OR_RAISE(
        auto v, MakeSingleConfigVariant(*bench.db, "SD (wo small tables)",
                                        std::move(sd.config)));
    bench.variants.push_back(std::move(v));
  }
  {
    SdOptions options;
    options.num_partitions = nodes;
    options.replicate_tables = small;
    options.no_redundancy_tables = {"customer", "orders", "lineitem", "part",
                                    "partsupp"};
    PREF_ASSIGN_OR_RAISE(auto sd, SchemaDrivenDesign(*bench.db, options));
    PREF_ASSIGN_OR_RAISE(
        auto v, MakeSingleConfigVariant(*bench.db, "SD (wo small, wo redundancy)",
                                        std::move(sd.config)));
    bench.variants.push_back(std::move(v));
  }
  {
    WdOptions options;
    options.num_partitions = nodes;
    options.replicate_tables = small;
    auto workload = TpchQueryGraphs(schema);
    PREF_ASSIGN_OR_RAISE(auto wd, WorkloadDrivenDesign(*bench.db, workload, options));
    PREF_ASSIGN_OR_RAISE(
        auto v, MakeDeploymentVariant(*bench.db, "WD (wo small tables)",
                                      std::move(wd.deployment), &workload));
    bench.variants.push_back(std::move(v));
  }
  return bench;
}

}  // namespace bench
}  // namespace pref
