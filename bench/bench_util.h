// Shared setup for the figure-reproduction benchmarks: builds the TPC-H
// database and the four §5.1 partitioning variants (CP, SD, SD wo
// redundancy, WD), with query routing for deployment-style variants.

#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "catalog/tpcds_schema.h"
#include "datagen/tpch_gen.h"
#include "design/sd_design.h"
#include "design/wd_design.h"
#include "engine/executor.h"
#include "partition/metrics.h"
#include "partition/presets.h"
#include "workloads/tpch_queries.h"

namespace pref {
namespace bench {

inline double EnvScaleFactor(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

/// Cost model scaled so a reduced-SF in-memory run sits in the same
/// data-bound regime as the paper's SF-10 cluster: node throughput and
/// network bandwidth shrink by sf/10, keeping per-query cost ratios intact
/// while exchange latency stays physical.
inline CostModel PaperScaledModel(double scale_factor) {
  CostModel model;
  double ratio = scale_factor / 10.0;
  model.rows_per_second_per_node = 5e6 * ratio;
  model.network_bytes_per_second = 100e6 * ratio;
  model.exchange_latency_seconds = 0.05;
  return model;
}

/// One partitioning variant: one or more configurations (WD produces one
/// per merged MAST) with their materialized databases.
struct Variant {
  std::string name;
  std::vector<PartitioningConfig> configs;
  std::vector<std::unique_ptr<PartitionedDatabase>> pdbs;
  double data_locality = 0;
  double data_redundancy = 0;

  /// The partitioned database a query over `tables` routes to.
  Result<const PartitionedDatabase*> Route(const std::vector<TableId>& tables) const {
    for (size_t i = 0; i < configs.size(); ++i) {
      bool all = true;
      for (TableId t : tables) all &= configs[i].Contains(t);
      if (all) return pdbs[i].get();
    }
    return Status::NotFound("no configuration of variant '", name,
                            "' covers the query");
  }
};

struct TpchBench {
  std::unique_ptr<Database> db;
  std::vector<QuerySpec> queries;  // all 22
  std::vector<Variant> variants;   // CP, SD, SD wo red, WD
  int nodes = 10;

  Result<QueryResult> Run(const Variant& variant, const QuerySpec& query,
                          const QueryOptions& options = {}) const {
    std::vector<TableId> tables;
    for (const auto& ref : query.tables) {
      PREF_ASSIGN_OR_RAISE(TableId id, db->schema().FindTable(ref.table));
      tables.push_back(id);
    }
    PREF_ASSIGN_OR_RAISE(const PartitionedDatabase* pdb, variant.Route(tables));
    return ExecuteQuery(query, *pdb, options);
  }
};

inline Result<Variant> MakeSingleConfigVariant(const Database& db, std::string name,
                                               PartitioningConfig config) {
  Variant v;
  v.name = std::move(name);
  auto edges = SchemaEdges(db, config);
  v.data_locality = DataLocality(config, edges);
  PREF_ASSIGN_OR_RAISE(auto pdb, PartitionDatabase(db, config));
  v.data_redundancy = pdb->DataRedundancy();
  v.configs.push_back(std::move(config));
  v.pdbs.push_back(std::move(pdb));
  return v;
}

inline Result<Variant> MakeDeploymentVariant(
    const Database& db, std::string name, Deployment deployment,
    const std::vector<QueryGraph>* workload = nullptr) {
  Variant v;
  v.name = std::move(name);
  v.data_locality = workload != nullptr
                        ? WorkloadLocality(db, deployment, *workload)
                        : deployment.Locality(db);
  PREF_ASSIGN_OR_RAISE(v.data_redundancy, deployment.Redundancy(db));
  PREF_ASSIGN_OR_RAISE(auto pdbs, deployment.Materialize(db));
  v.pdbs = std::move(pdbs);
  for (auto& config : deployment.configs()) v.configs.push_back(std::move(config));
  return v;
}

/// Builds the full §5.1 comparison: Classical / SD / SD-wo-redundancy / WD.
inline Result<TpchBench> MakeTpchBench(double scale_factor, int nodes,
                                       uint64_t seed = 42) {
  TpchBench bench;
  bench.nodes = nodes;
  PREF_ASSIGN_OR_RAISE(auto db, GenerateTpch({scale_factor, seed}));
  bench.db = std::make_unique<Database>(std::move(db));
  const Schema& schema = bench.db->schema();
  bench.queries = TpchQueries(schema);

  const std::vector<std::string> small = {"nation", "region", "supplier"};

  {
    PREF_ASSIGN_OR_RAISE(auto config, MakeTpchClassical(schema, nodes));
    PREF_ASSIGN_OR_RAISE(auto v, MakeSingleConfigVariant(*bench.db, "Classical",
                                                         std::move(config)));
    bench.variants.push_back(std::move(v));
  }
  {
    SdOptions options;
    options.num_partitions = nodes;
    options.replicate_tables = small;
    PREF_ASSIGN_OR_RAISE(auto sd, SchemaDrivenDesign(*bench.db, options));
    PREF_ASSIGN_OR_RAISE(
        auto v, MakeSingleConfigVariant(*bench.db, "SD (wo small tables)",
                                        std::move(sd.config)));
    bench.variants.push_back(std::move(v));
  }
  {
    SdOptions options;
    options.num_partitions = nodes;
    options.replicate_tables = small;
    options.no_redundancy_tables = {"customer", "orders", "lineitem", "part",
                                    "partsupp"};
    PREF_ASSIGN_OR_RAISE(auto sd, SchemaDrivenDesign(*bench.db, options));
    PREF_ASSIGN_OR_RAISE(
        auto v, MakeSingleConfigVariant(*bench.db, "SD (wo small, wo redundancy)",
                                        std::move(sd.config)));
    bench.variants.push_back(std::move(v));
  }
  {
    WdOptions options;
    options.num_partitions = nodes;
    options.replicate_tables = small;
    auto workload = TpchQueryGraphs(schema);
    PREF_ASSIGN_OR_RAISE(auto wd, WorkloadDrivenDesign(*bench.db, workload, options));
    PREF_ASSIGN_OR_RAISE(
        auto v, MakeDeploymentVariant(*bench.db, "WD (wo small tables)",
                                      std::move(wd.deployment), &workload));
    bench.variants.push_back(std::move(v));
  }
  return bench;
}

}  // namespace bench
}  // namespace pref
