// Figure 10: bulk-loading cost of the four §5.1 variants, plus the
// partition-index ablation (§2.3): PREF tables are cheap to load when
// routing goes through the partition index and degrade to scanning the
// referenced table without it.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "partition/bulk_loader.h"

namespace {

double g_sf = 0.01;
pref::bench::TpchBench* g_bench = nullptr;

/// Aggregated outcome of loading one whole configuration.
struct LoadResult {
  double seconds = 0;
  size_t copies = 0;
  pref::BulkLoadStats stats;  // per-phase seconds summed over tables
};

/// Loads the whole database into empty partitioned tables of `config`,
/// table by table in PREF dependency order, via the bulk loader.
pref::Result<LoadResult> LoadAll(const pref::Database& db,
                                 pref::PartitioningConfig config,
                                 bool use_partition_index,
                                 bool parallel = true) {
  PREF_RETURN_NOT_OK(config.Finalize());
  pref::PartitionedDatabase pdb(&db);
  for (pref::TableId id : config.LoadOrder()) {
    PREF_ASSIGN_OR_RAISE(auto* table, pdb.AddTable(id, config.spec(id)));
    (void)table;
  }
  pref::BulkLoader loader(use_partition_index, parallel);
  pref::Stopwatch timer;
  LoadResult out;
  for (pref::TableId id : config.LoadOrder()) {
    PREF_ASSIGN_OR_RAISE(auto stats, loader.Append(&pdb, id, db.table(id).data()));
    out.copies += stats.copies_written;
    out.stats.rows_inserted += stats.rows_inserted;
    out.stats.copies_written += stats.copies_written;
    out.stats.index_lookups += stats.index_lookups;
    out.stats.scan_probes += stats.scan_probes;
    out.stats.route_seconds += stats.route_seconds;
    out.stats.append_seconds += stats.append_seconds;
    out.stats.index_seconds += stats.index_seconds;
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

void PrintPaperTable(pref::bench::BenchReport* report) {
  std::printf("\n=== Figure 10: costs of bulk loading (wall s, this machine) ===\n");
  std::printf("%-32s %12s %16s\n", "variant", "load (s)", "copies written");
  for (const auto& v : g_bench->variants) {
    double seconds = 0;
    size_t copies = 0;
    pref::BulkLoadStats phases;
    for (const auto& config : v.configs) {
      auto r = LoadAll(*g_bench->db, config, /*use_partition_index=*/true);
      if (!r.ok()) {
        std::printf("%-32s FAILED: %s\n", v.name.c_str(),
                    r.status().ToString().c_str());
        seconds = -1;
        break;
      }
      seconds += r->seconds;
      copies += r->copies;
      phases.route_seconds += r->stats.route_seconds;
      phases.append_seconds += r->stats.append_seconds;
      phases.index_seconds += r->stats.index_seconds;
    }
    if (seconds >= 0) {
      if (report != nullptr) {
        report->Result(v.name, seconds);
        report->Field("copies_written", static_cast<double>(copies));
        report->Field("route_seconds", phases.route_seconds);
        report->Field("append_seconds", phases.append_seconds);
        report->Field("index_seconds", phases.index_seconds);
      }
      std::printf("%-32s %12.3f %16zu\n", v.name.c_str(), seconds, copies);
    }
  }
  std::printf("(paper shape: CP lowest-ish, SD slightly higher, SD-wo-red ~2x SD,\n"
              " WD highest)\n");

  // Ablation: partition index vs naive partner scan, on the SD config.
  std::printf("\n=== Ablation: partition index vs naive scan (SD config) ===\n");
  const auto& sd = g_bench->variants[1];
  auto with = LoadAll(*g_bench->db, sd.configs[0], true);
  auto without = LoadAll(*g_bench->db, sd.configs[0], false);
  if (with.ok() && without.ok()) {
    if (report != nullptr) {
      report->Result("SD/with_index", with->seconds);
      report->Field("index_lookups", static_cast<double>(with->stats.index_lookups));
      report->Result("SD/without_index", without->seconds);
      report->Field("scan_probes", static_cast<double>(without->stats.scan_probes));
    }
    std::printf("with partition index:    %10.3f s\n", with->seconds);
    std::printf("without (scan lookup):   %10.3f s  (%.0fx slower)\n",
                without->seconds, without->seconds / with->seconds);
  }
  std::printf("\n");
}

/// Serial-vs-parallel bulk loading over the bounded ThreadPool: the load is
/// repeated with the pool disabled and enabled per variant, reporting rows/s
/// and the speedup. Results are bit-identical either way (asserted by
/// tests/bulk_load_parallel_test); this reports the throughput delta.
void PrintParallelTable(pref::bench::BenchReport* report) {
  const int threads = pref::ThreadPool::Default().num_threads();
  std::printf("=== Parallel bulk loading (bounded pool, %d thread%s) ===\n",
              threads, threads == 1 ? "" : "s");
  if (threads == 1) {
    std::printf("(single hardware lane: set PREF_THREADS or run on a\n"
                " multi-core host to see the parallel path win)\n");
  }
  std::printf("%-32s %10s %10s %8s\n", "variant", "serial(s)", "parallel(s)",
              "speedup");
  const size_t total_rows = g_bench->db->TotalRows();
  for (const auto& v : g_bench->variants) {
    double serial = 0, parallel = 0;
    bool ok = true;
    for (const auto& config : v.configs) {
      auto s = LoadAll(*g_bench->db, config, true, /*parallel=*/false);
      auto p = LoadAll(*g_bench->db, config, true, /*parallel=*/true);
      if (!s.ok() || !p.ok()) {
        std::printf("%-32s FAILED\n", v.name.c_str());
        ok = false;
        break;
      }
      serial += s->seconds;
      parallel += p->seconds;
    }
    if (ok) {
      if (report != nullptr) {
        report->Result(v.name + "/serial", serial);
        report->Result(v.name + "/parallel", parallel);
        report->Field("speedup", serial / parallel);
      }
      std::printf("%-32s %10.3f %10.3f %7.2fx  (%.1fM rows/s parallel)\n",
                  v.name.c_str(), serial, parallel, serial / parallel,
                  static_cast<double>(total_rows) *
                      static_cast<double>(v.configs.size()) / parallel / 1e6);
    }
  }
  std::printf("\n");
}

void BM_BulkLoad(benchmark::State& state, const pref::bench::Variant* variant,
                 bool parallel) {
  for (auto _ : state) {
    for (const auto& config : variant->configs) {
      auto r = LoadAll(*g_bench->db, config, true, parallel);
      benchmark::DoNotOptimize(r);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  g_sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01);
  auto bench = pref::bench::MakeTpchBench(g_sf, 10);
  if (!bench.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", bench.status().ToString().c_str());
    return 1;
  }
  g_bench = &*bench;
  pref::bench::BenchReport report("fig10", g_sf, g_bench->nodes);
  PrintPaperTable(&report);
  PrintParallelTable(&report);
  for (const auto& v : g_bench->variants) {
    benchmark::RegisterBenchmark(("fig10/" + v.name).c_str(), BM_BulkLoad, &v,
                                 /*parallel=*/true)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("fig10_serial/" + v.name).c_str(), BM_BulkLoad,
                                 &v, /*parallel=*/false)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
