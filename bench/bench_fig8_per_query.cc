// Figure 8: per-query runtime of the TPC-H workload under the four
// partitioning variants. Prints one row per query with the simulated
// runtime of each variant plus shuffle volume, mirroring the bar chart.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

pref::bench::TpchBench* g_bench = nullptr;
double g_sf = 0.01;

bool Excluded(int query_number) {
  for (int q : pref::TpchExcludedQueries()) {
    if (q == query_number) return true;
  }
  return false;
}

void PrintPaperTable(pref::bench::BenchReport* report) {
  pref::CostModel model = pref::bench::PaperScaledModel(g_sf);
  std::printf("\n=== Figure 8: runtime for individual TPC-H queries (simulated s) ===\n");
  std::printf("%-5s", "query");
  for (const auto& v : g_bench->variants) std::printf(" %28s", v.name.c_str());
  std::printf("\n");
  for (size_t i = 0; i < g_bench->queries.size(); ++i) {
    if (Excluded(static_cast<int>(i) + 1)) continue;
    std::printf("Q%-4zu", i + 1);
    for (const auto& v : g_bench->variants) {
      auto r = g_bench->Run(v, g_bench->queries[i]);
      if (!r.ok()) {
        std::printf(" %28s", "FAILED");
        continue;
      }
      double simulated = r->stats.SimulatedSeconds(model);
      if (report != nullptr) {
        report->Result(v.name + "/Q" + std::to_string(i + 1), simulated);
        report->Field("bytes_shuffled",
                      static_cast<double>(r->stats.bytes_shuffled));
        report->Field("exchanges", r->stats.exchanges);
      }
      std::printf(" %17.3f (%6.2f MB)", simulated,
                  static_cast<double>(r->stats.bytes_shuffled) / 1e6);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_Query(benchmark::State& state, const pref::bench::Variant* variant,
              const pref::QuerySpec* query) {
  pref::CostModel model = pref::bench::PaperScaledModel(g_sf);
  double simulated = 0;
  for (auto _ : state) {
    auto r = g_bench->Run(*variant, *query);
    if (r.ok()) simulated = r->stats.SimulatedSeconds(model);
    benchmark::DoNotOptimize(simulated);
  }
  state.counters["simulated_s"] = simulated;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  g_sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.01);
  auto bench = pref::bench::MakeTpchBench(g_sf, 10);
  if (!bench.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", bench.status().ToString().c_str());
    return 1;
  }
  g_bench = &*bench;
  pref::bench::BenchReport report("fig8", g_sf, g_bench->nodes);
  PrintPaperTable(&report);
  // Register wall-clock benchmarks for a representative query subset to
  // keep the default run short (all queries via --benchmark_filter).
  for (const auto& v : g_bench->variants) {
    for (size_t i : {2u, 4u, 8u, 17u}) {  // Q3, Q5, Q9, Q18
      benchmark::RegisterBenchmark(
          ("fig8/Q" + std::to_string(i + 1) + "/" + v.name).c_str(), BM_Query, &v,
          &g_bench->queries[i])
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
