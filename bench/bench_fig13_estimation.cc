// Figure 13: accuracy and runtime of the redundancy estimation (Appendix
// A) under histogram sampling rates from 1% to 100%, for the SD design on
// TPC-H (uniform) and TPC-DS (skewed). Error is
// |Estimated(DR) - Actual(DR)| / Actual(DR); runtime is the full design
// run (histograms included).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/tpcds_gen.h"

namespace {

const std::vector<double> kRates = {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0};

pref::Status Sweep(const pref::Database& db, const char* title, const char* tag,
                   const std::vector<std::string>& replicate,
                   pref::bench::BenchReport* report) {
  // Ground truth: materialize the configuration chosen at full sampling.
  pref::SdOptions exact_options;
  exact_options.num_partitions = 10;
  exact_options.replicate_tables = replicate;
  PREF_ASSIGN_OR_RAISE(auto exact, pref::SchemaDrivenDesign(db, exact_options));
  PREF_ASSIGN_OR_RAISE(auto pdb, pref::PartitionDatabase(db, exact.config));
  double actual = pdb->DataRedundancy();

  std::printf("\n=== Figure 13: %s (actual DR = %.3f) ===\n", title, actual);
  std::printf("%8s %14s %12s %14s\n", "rate", "estimated DR", "error", "design (s)");
  for (double rate : kRates) {
    pref::SdOptions options = exact_options;
    options.sample_rate = rate;
    PREF_ASSIGN_OR_RAISE(auto result, pref::SchemaDrivenDesign(db, options));
    double err = actual == 0
                     ? 0.0
                     : std::fabs(result.estimated_redundancy - actual) / actual;
    if (report != nullptr) {
      report->Result(std::string(tag) + "/rate=" + std::to_string(rate),
                     result.design_seconds);
      report->Field("sample_rate", rate);
      report->Field("estimated_redundancy", result.estimated_redundancy);
      report->Field("actual_redundancy", actual);
      report->Field("relative_error", err);
    }
    std::printf("%7.0f%% %14.3f %11.1f%% %14.4f\n", rate * 100,
                result.estimated_redundancy, err * 100, result.design_seconds);
  }
  return pref::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  auto args = pref::bench::ParseBenchArgs(&argc, argv);
  double sf = pref::bench::EnvScaleFactor("PREF_BENCH_SF", 0.02);
  pref::bench::BenchReport report("fig13", sf, 10);
  auto tpch = pref::GenerateTpch({sf, 42});
  if (!tpch.ok()) return 1;
  pref::Status st = Sweep(*tpch, "TPC-H (uniform)", "tpch",
                          {"nation", "region", "supplier"}, &report);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  pref::TpcdsGenOptions gen;
  gen.scale_factor = pref::bench::EnvScaleFactor("PREF_BENCH_DS_SF", 0.25);
  report.Config("tpcds_scale_factor", gen.scale_factor);
  auto tpcds = pref::GenerateTpcds(gen);
  if (!tpcds.ok()) return 1;
  st = Sweep(*tpcds, "TPC-DS (skewed)", "tpcds", pref::TpcdsSmallTables(), &report);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "\n(paper: ~3%% error at 10%% sampling on TPC-H, ~8%% on TPC-DS; runtime\n"
      " grows with rate; WD runtime is ~10x SD, dominated by the merge phase)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pref::bench::FinishBench(report, args) ? 0 : 1;
}
