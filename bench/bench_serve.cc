// Concurrent query serving driver (DESIGN.md §10, EXPERIMENTS.md):
// replays the TPC-H (or TPC-DS) query mix through the QueryScheduler at a
// configurable client count and reports throughput + latency percentiles,
// verifying on every completion that concurrent execution returns results
// bit-identical to an isolated serial run of the same query.
//
// Phases:
//  1. isolated  — every query once, one at a time (the baseline results
//     and the serial latency distribution).
//  2. closed    — closed loop: --clients=K clients, each keeping one query
//     outstanding (K in flight at all times), replaying the mix
//     --rounds times.
//  3. open      — optional (--rate=R > 0): Poisson arrivals at R queries/s
//     from a seeded generator, latency measured submit-to-completion
//     including queue wait.
//
// Any result or ExecStats mismatch against the isolated baseline, or any
// failed query, makes the run exit nonzero.
//
// Observability (DESIGN.md §11): --monitor=PATH feeds every completion
// through a WorkloadMonitor and a MetricsTimeseries (ticked per
// completion, never by wall clock) and writes both as one JSON document;
// --shift-mix=tpch|tpcds appends a drift phase that replays the *other*
// mix through the same monitor, so the drift score crosses its threshold
// exactly once (the CI smoke asserts this); --profile=PATH dumps the
// first mix query's deterministic QueryProfile JSON.
//
// Online migration (DESIGN.md §12): --migrate (TPC-H only) appends a
// self-contained phase that serves an orders-centric submix of the TPC-H
// queries on a deliberately parts-hostile partitioning, shifts to the
// parts-centric submix, and lets the drift callback trigger a
// workload-driven re-design whose MigrationPlan executes in the
// background while the submix keeps being served. Every completion is
// verified bit-identical against a serial run on the exact database
// version it pinned, and the spliced-in "migration" JSON section records
// movement (moved vs. full-reload copies), the network footprint before
// and after (locality = fraction of processed tuples that never crossed
// the simulated network; a co-located join has no exchange, so its
// shuffle disappearing — not an exchange ratio — is the recovery
// signal), and the post-Rebase drift. The CI smoke asserts locality
// recovers with less data shipped than a reload.
//
// Flags: --clients=N --rounds=R --rate=QPS --mix=tpch|tpcds
// --monitor=PATH --shift-mix=MIX --window=N --drift-threshold=X
// --profile=PATH --migrate plus the standard --json=/--trace=. Scale via
// PREF_BENCH_SF (TPC-H, default 0.01) / PREF_BENCH_DS_SF (TPC-DS,
// default 0.05).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics_timeseries.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "datagen/tpcds_gen.h"
#include "engine/scheduler.h"
#include "engine/workload_monitor.h"
#include "partition/migration.h"
#include "partition/presets.h"
#include "workloads/tpcds_queries.h"

namespace pref {
namespace bench {
namespace {

struct ServeArgs {
  int clients = 4;
  int rounds = 2;
  double rate = 0;  // open-loop queries/s; 0 skips the open-loop phase
  std::string mix = "tpch";
  /// Write the monitor + timeline JSON document here ("" disables both).
  std::string monitor_path;
  /// Non-empty appends a drift phase replaying this mix.
  std::string shift_mix;
  /// Monitor window in completions; 0 = one window per mix replay.
  size_t window = 0;
  double drift_threshold = 0.5;
  /// Write the first mix query's deterministic profile JSON here.
  std::string profile_path;
  /// Append the online-migration phase (TPC-H only).
  bool migrate = false;
};

ServeArgs ParseServeArgs(int argc, char** argv) {
  ServeArgs out;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--clients=", 0) == 0) {
      out.clients = std::atoi(argv[i] + 10);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      out.rounds = std::atoi(argv[i] + 9);
    } else if (arg.rfind("--rate=", 0) == 0) {
      out.rate = std::atof(argv[i] + 7);
    } else if (arg.rfind("--mix=", 0) == 0) {
      out.mix = std::string(arg.substr(6));
    } else if (arg.rfind("--monitor=", 0) == 0) {
      out.monitor_path = std::string(arg.substr(10));
    } else if (arg.rfind("--shift-mix=", 0) == 0) {
      out.shift_mix = std::string(arg.substr(12));
    } else if (arg.rfind("--window=", 0) == 0) {
      out.window = static_cast<size_t>(std::atoll(argv[i] + 9));
    } else if (arg.rfind("--drift-threshold=", 0) == 0) {
      out.drift_threshold = std::atof(argv[i] + 18);
    } else if (arg.rfind("--profile=", 0) == 0) {
      out.profile_path = std::string(arg.substr(10));
    } else if (arg == "--migrate") {
      out.migrate = true;
    } else {
      std::fprintf(stderr, "bench_serve: unknown flag '%s'\n", argv[i]);
      std::exit(2);
    }
  }
  if (out.clients < 1) out.clients = 1;
  if (out.rounds < 1) out.rounds = 1;
  return out;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Bit-exact result comparison (the bench-side mirror of
/// executor_parallel_test's ExpectBitIdentical): row count, row order, and
/// per-cell equality with doubles compared by bit pattern.
bool BitIdentical(const QueryResult& a, const QueryResult& b) {
  if (a.rows.num_rows() != b.rows.num_rows()) return false;
  if (a.rows.num_columns() != b.rows.num_columns()) return false;
  if (a.column_names != b.column_names) return false;
  for (int c = 0; c < a.rows.num_columns(); ++c) {
    const Column& ca = a.rows.column(c);
    const Column& cb = b.rows.column(c);
    for (size_t r = 0; r < a.rows.num_rows(); ++r) {
      if (ca.is_double()) {
        if (DoubleBits(ca.GetDouble(r)) != DoubleBits(cb.GetDouble(r))) {
          return false;
        }
      } else if (ca.is_int()) {
        if (ca.GetInt64(r) != cb.GetInt64(r)) return false;
      } else {
        if (ca.GetString(r) != cb.GetString(r)) return false;
      }
    }
  }
  return true;
}

/// Per-query ExecStats must agree on everything except wall-clock — the
/// same rows through the same operators, and the same per-query morsel
/// counters (the satellite-fixed exec.scan.* / exec.agg.* scoping).
bool StatsEqual(const ExecStats& a, const ExecStats& b) {
  if (a.bytes_shuffled != b.bytes_shuffled) return false;
  if (a.rows_shuffled != b.rows_shuffled) return false;
  if (a.rows_local != b.rows_local) return false;
  if (a.exchanges != b.exchanges) return false;
  if (a.total_rows_processed != b.total_rows_processed) return false;
  if (a.node_rows != b.node_rows) return false;
  if (a.scan_morsels != b.scan_morsels) return false;
  if (a.scan_rows != b.scan_rows) return false;
  if (a.agg_morsels != b.agg_morsels) return false;
  if (a.agg_rows != b.agg_rows) return false;
  if (a.agg_groups != b.agg_groups) return false;
  if (a.operators.size() != b.operators.size()) return false;
  for (size_t i = 0; i < a.operators.size(); ++i) {
    const OperatorStats& oa = a.operators[i];
    const OperatorStats& ob = b.operators[i];
    if (oa.op != ob.op || oa.parent != ob.parent) return false;
    if (oa.detail != ob.detail) return false;
    if (oa.rows_in != ob.rows_in || oa.rows_out != ob.rows_out) return false;
    if (oa.rows_processed != ob.rows_processed) return false;
    if (oa.rows_shuffled != ob.rows_shuffled) return false;
    if (oa.bytes_shuffled != ob.bytes_shuffled) return false;
    if (oa.exchanges != ob.exchanges) return false;
    if (oa.rows_local != ob.rows_local) return false;
    if (oa.flows != ob.flows) return false;
    if (oa.node_rows != ob.node_rows) return false;
  }
  return true;
}

/// Exact nearest-rank percentile (q in (0, 1]) over raw latencies.
double PercentileSeconds(std::vector<double> latencies, double q) {
  if (latencies.empty()) return 0;
  std::sort(latencies.begin(), latencies.end());
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(latencies.size())));
  if (rank == 0) rank = 1;
  if (rank > latencies.size()) rank = latencies.size();
  return latencies[rank - 1];
}

struct PhaseOutcome {
  size_t queries = 0;
  double wall_seconds = 0;
  double simulated_seconds = 0;
  std::vector<double> latencies;    // seconds
  std::vector<double> queue_waits;  // admission + queue wait, seconds
  size_t errors = 0;
  size_t mismatches = 0;
};

void ReportPhase(BenchReport* report, const std::string& name,
                 const PhaseOutcome& out) {
  report->Result(name, out.simulated_seconds);
  report->Field("queries", static_cast<double>(out.queries));
  report->Field("wall_seconds", out.wall_seconds);
  report->Field("throughput_qps",
                out.wall_seconds > 0
                    ? static_cast<double>(out.queries) / out.wall_seconds
                    : 0);
  report->Field("p50_ms", PercentileSeconds(out.latencies, 0.50) * 1e3);
  report->Field("p95_ms", PercentileSeconds(out.latencies, 0.95) * 1e3);
  report->Field("p99_ms", PercentileSeconds(out.latencies, 0.99) * 1e3);
  report->Field("queue_p50_ms", PercentileSeconds(out.queue_waits, 0.50) * 1e3);
  report->Field("queue_p95_ms", PercentileSeconds(out.queue_waits, 0.95) * 1e3);
  report->Field("queue_p99_ms", PercentileSeconds(out.queue_waits, 0.99) * 1e3);
  double sum = 0, mx = 0;
  for (double l : out.latencies) {
    sum += l;
    mx = std::max(mx, l);
  }
  report->Field("mean_ms",
                out.latencies.empty()
                    ? 0
                    : sum / static_cast<double>(out.latencies.size()) * 1e3);
  report->Field("max_ms", mx * 1e3);
  report->Field("errors", static_cast<double>(out.errors));
  report->Field("mismatches", static_cast<double>(out.mismatches));
  std::printf("%-18s %6zu queries  %8.3fs wall  %8.1f qps  p50 %7.2fms  "
              "p95 %7.2fms  p99 %7.2fms  errors %zu  mismatches %zu\n",
              name.c_str(), out.queries, out.wall_seconds,
              out.wall_seconds > 0
                  ? static_cast<double>(out.queries) / out.wall_seconds
                  : 0,
              PercentileSeconds(out.latencies, 0.50) * 1e3,
              PercentileSeconds(out.latencies, 0.95) * 1e3,
              PercentileSeconds(out.latencies, 0.99) * 1e3,
              out.errors, out.mismatches);
}

/// The SD (wo small tables) TPC-H configuration of §5.1 (same shape as the
/// engine tests use): LINEITEM seed, the MAST chained with PREF, small
/// tables replicated.
PartitioningConfig MakeTpchServeConfig(const Schema& schema, int n) {
  PartitioningConfig config(&schema, n);
  PREF_CHECK_OK(config.AddHash("lineitem", {"l_orderkey"}));
  PREF_CHECK_OK(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}));
  PREF_CHECK_OK(
      config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}));
  PREF_CHECK_OK(config.AddPref("partsupp", {"ps_partkey", "ps_suppkey"},
                               "lineitem", {"l_partkey", "l_suppkey"}));
  PREF_CHECK_OK(config.AddPref("part", {"p_partkey"}, "partsupp", {"ps_partkey"}));
  PREF_CHECK_OK(config.AddReplicated("nation"));
  PREF_CHECK_OK(config.AddReplicated("region"));
  PREF_CHECK_OK(config.AddReplicated("supplier"));
  PREF_CHECK_OK(config.Finalize());
  return config;
}

/// The migration scenario's initial configuration: good for the
/// orders-centric submix (lineitem–orders–customer PREF chain), hostile to
/// the parts-centric one (part and partsupp hashed on unrelated keys, so
/// part⋈partsupp and lineitem⋈part shuffle everything).
PartitioningConfig MakeTpchMigrateConfig(const Schema& schema, int n) {
  PartitioningConfig config(&schema, n);
  PREF_CHECK_OK(config.AddHash("lineitem", {"l_orderkey"}));
  PREF_CHECK_OK(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}));
  PREF_CHECK_OK(
      config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}));
  PREF_CHECK_OK(config.AddHash("partsupp", {"ps_suppkey"}));
  PREF_CHECK_OK(config.AddHash("part", {"p_partkey"}));
  PREF_CHECK_OK(config.AddReplicated("nation"));
  PREF_CHECK_OK(config.AddReplicated("region"));
  PREF_CHECK_OK(config.AddReplicated("supplier"));
  PREF_CHECK_OK(config.Finalize());
  return config;
}

/// One verified completion: latency bookkeeping + baseline comparison.
void Consume(uint64_t id, Result<QueryResult> result, size_t query_index,
             double latency_seconds, const std::vector<QueryResult>& baseline,
             const std::vector<std::string>& names, const CostModel& cost_model,
             PhaseOutcome* out, const QueryProfile* profile = nullptr) {
  out->queries++;
  out->latencies.push_back(latency_seconds);
  if (profile != nullptr && profile->has_timings) {
    out->queue_waits.push_back(profile->timings.admission_wait_seconds +
                               profile->timings.queue_wait_seconds);
  }
  if (!result.status().ok()) {
    std::fprintf(stderr, "query %llu (%s) failed: %s\n",
                 static_cast<unsigned long long>(id),
                 names[query_index].c_str(), result.status().ToString().c_str());
    out->errors++;
    return;
  }
  out->simulated_seconds += result->stats.SimulatedSeconds(cost_model);
  const QueryResult& expect = baseline[query_index];
  if (!BitIdentical(*result, expect) ||
      !StatsEqual(result->stats, expect.stats)) {
    std::fprintf(stderr,
                 "query %llu (%s): concurrent result diverges from isolated "
                 "serial run\n",
                 static_cast<unsigned long long>(id),
                 names[query_index].c_str());
    out->mismatches++;
  }
}

/// A replayable mix: generated database, its partitioned form, queries.
struct MixSetup {
  Database db{Schema{}};
  std::unique_ptr<PartitionedDatabase> pdb;
  std::vector<QuerySpec> mix;
  double sf = 0;
};

bool BuildMix(const std::string& mix_name, int nodes, MixSetup* out) {
  if (mix_name == "tpch") {
    out->sf = EnvScaleFactor("PREF_BENCH_SF", 0.01);
    auto generated = GenerateTpch({out->sf, 42});
    PREF_CHECK_OK(generated.status());
    out->db = std::move(*generated);
    auto partitioned =
        PartitionDatabase(out->db, MakeTpchServeConfig(out->db.schema(), nodes));
    PREF_CHECK_OK(partitioned.status());
    out->pdb = std::move(*partitioned);
    out->mix = TpchQueries(out->db.schema());
    return true;
  }
  if (mix_name == "tpcds") {
    TpcdsGenOptions gen;
    gen.scale_factor = out->sf = EnvScaleFactor("PREF_BENCH_DS_SF", 0.05);
    auto generated = GenerateTpcds(gen);
    PREF_CHECK_OK(generated.status());
    out->db = std::move(*generated);
    auto config = MakeAllHashed(out->db.schema(), nodes);
    PREF_CHECK_OK(config.status());
    auto partitioned = PartitionDatabase(out->db, *config);
    PREF_CHECK_OK(partitioned.status());
    out->pdb = std::move(*partitioned);
    auto queries = TpcdsExecutableQueries(out->db.schema());
    PREF_CHECK_OK(queries.status());
    out->mix = std::move(*queries);
    return true;
  }
  std::fprintf(stderr, "bench_serve: unknown mix '%s' (tpch|tpcds)\n",
               mix_name.c_str());
  return false;
}

int Main(int argc, char** argv) {
  BenchArgs bench_args = ParseBenchArgs(&argc, argv);
  ServeArgs serve = ParseServeArgs(argc, argv);

  const int nodes = 4;
  MixSetup setup;
  if (!BuildMix(serve.mix, nodes, &setup)) return 2;
  Database& db = setup.db;
  std::unique_ptr<PartitionedDatabase>& pdb = setup.pdb;
  std::vector<QuerySpec>& mix = setup.mix;
  const double sf = setup.sf;
  const CostModel cost_model = PaperScaledModel(sf);

  // Observability: monitor + per-completion timeline, shared across the
  // concurrent phases (DESIGN.md §11). The drift callback only logs; the
  // crossing count lands in the monitor JSON for the CI smoke to assert.
  std::optional<WorkloadMonitor> monitor;
  std::optional<MetricsTimeseries> timeline;
  size_t monitored = 0;
  if (!serve.monitor_path.empty() || !serve.shift_mix.empty()) {
    MonitorOptions mopts;
    mopts.window_size = serve.window > 0 ? serve.window : mix.size();
    mopts.drift_threshold = serve.drift_threshold;
    monitor.emplace(mopts);
    monitor->SetDriftCallback([](double score, size_t window) {
      std::fprintf(stderr,
                   "monitor: drift score %.3f crossed threshold at window %zu\n",
                   score, window);
    });
    timeline.emplace(
        std::vector<std::string>{"scheduler.completed", "engine.exchange.rows",
                                 "engine.exchange.local_rows",
                                 "engine.rows_processed"},
        std::vector<std::string>{"scheduler.backlog", "scheduler.in_flight",
                                 "monitor.drift_milli", "monitor.skew_milli"});
  }
  auto observe = [&](const QueryProfile& profile, const QuerySpec& spec,
                     const Schema& schema) {
    if (!monitor.has_value()) return;
    monitor->OnQueryComplete(profile, spec, schema);
    ++monitored;
    timeline->Tick(static_cast<double>(monitored));
  };
  std::vector<std::string> names;
  names.reserve(mix.size());
  for (const auto& q : mix) names.push_back(q.name);

  BenchReport report("serve", sf, nodes);
  report.Config("clients", serve.clients);
  report.Config("rounds", serve.rounds);
  report.Config("rate", serve.rate);

  // Phase 1: isolated serial baseline — one query at a time, directly on
  // the executor. Everything afterwards must reproduce these bits.
  std::vector<QueryResult> baseline;
  PhaseOutcome isolated;
  {
    Stopwatch wall;
    for (const auto& q : mix) {
      Stopwatch latency;
      auto result = ExecuteQuery(q, *pdb, {}, cost_model);
      if (!result.status().ok()) {
        std::fprintf(stderr, "isolated run of %s failed: %s\n", q.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      isolated.latencies.push_back(latency.ElapsedSeconds());
      isolated.queries++;
      isolated.simulated_seconds += result->stats.SimulatedSeconds(cost_model);
      baseline.push_back(std::move(*result));
    }
    isolated.wall_seconds = wall.ElapsedSeconds();
  }
  ReportPhase(&report, "isolated/total", isolated);

  // The committed example profile: the first mix query's deterministic
  // sections (no scheduler timings), bit-identical at any PREF_THREADS.
  if (!serve.profile_path.empty() && !baseline.empty()) {
    QueryProfile profile =
        QueryProfile::FromStats(names[0], baseline[0].stats, cost_model);
    std::ofstream f(serve.profile_path);
    profile.WriteJson(f);
    if (!f) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   serve.profile_path.c_str());
      return 1;
    }
    std::printf("profile for %s written to %s\n", names[0].c_str(),
                serve.profile_path.c_str());
  }

  size_t total_errors = 0, total_mismatches = 0;

  // Phase 2: closed loop — `clients` queries outstanding at all times,
  // each completion immediately replaced by the next query in the mix.
  {
    QueryScheduler scheduler(*pdb, {serve.clients, nullptr});
    const size_t total = mix.size() * static_cast<size_t>(serve.rounds);
    PhaseOutcome closed;
    std::map<uint64_t, std::pair<size_t, double>> inflight;  // id → (qidx, t0)
    Stopwatch wall;
    size_t issued = 0;
    auto submit_next = [&] {
      const size_t qidx = issued % mix.size();
      SubmitOptions options;
      options.cost_model = cost_model;
      const uint64_t id = scheduler.Submit(mix[qidx], options);
      inflight.emplace(id, std::make_pair(qidx, wall.ElapsedSeconds()));
      ++issued;
    };
    for (int c = 0; c < serve.clients && issued < total; ++c) submit_next();
    while (!inflight.empty()) {
      const uint64_t id = scheduler.WaitAny();
      const double now = wall.ElapsedSeconds();
      auto it = inflight.find(id);
      const auto [qidx, t0] = it->second;
      inflight.erase(it);
      QueryProfile profile;
      auto result = scheduler.Take(id, &profile);
      observe(profile, mix[qidx], db.schema());
      Consume(id, std::move(result), qidx, now - t0, baseline, names,
              cost_model, &closed, &profile);
      if (issued < total) submit_next();
    }
    closed.wall_seconds = wall.ElapsedSeconds();
    ReportPhase(&report, "closed/clients=" + std::to_string(serve.clients),
                closed);
    total_errors += closed.errors;
    total_mismatches += closed.mismatches;
  }

  // Phase 3 (optional): open loop — Poisson arrivals at --rate qps from a
  // seeded generator; admission still bounded at `clients` in flight, so a
  // rate above capacity builds queueing delay (visible in the tail).
  if (serve.rate > 0) {
    QueryScheduler scheduler(*pdb, {serve.clients, nullptr});
    const size_t total = mix.size() * static_cast<size_t>(serve.rounds);
    Rng rng(42);
    std::vector<double> arrivals;
    arrivals.reserve(total);
    double t = 0;
    for (size_t i = 0; i < total; ++i) {
      t += -std::log(1.0 - rng.NextDouble()) / serve.rate;
      arrivals.push_back(t);
    }
    PhaseOutcome open;
    std::map<uint64_t, std::pair<size_t, double>> inflight;
    Stopwatch wall;
    size_t issued = 0, done = 0;
    auto drain_one = [&](uint64_t id) {
      const double now = wall.ElapsedSeconds();
      auto it = inflight.find(id);
      const auto [qidx, t0] = it->second;
      inflight.erase(it);
      QueryProfile profile;
      auto result = scheduler.Take(id, &profile);
      observe(profile, mix[qidx], db.schema());
      Consume(id, std::move(result), qidx, now - t0, baseline, names,
              cost_model, &open, &profile);
      ++done;
    };
    while (done < total) {
      if (issued < total && wall.ElapsedSeconds() >= arrivals[issued]) {
        const size_t qidx = issued % mix.size();
        SubmitOptions options;
        options.cost_model = cost_model;
        const uint64_t id = scheduler.Submit(mix[qidx], options);
        inflight.emplace(id, std::make_pair(qidx, arrivals[issued]));
        ++issued;
        continue;
      }
      if (const uint64_t id = scheduler.PollCompleted(); id != 0) {
        drain_one(id);
        continue;
      }
      if (issued == total) {
        // Nothing left to submit: block for the stragglers.
        drain_one(scheduler.WaitAny());
        continue;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    open.wall_seconds = wall.ElapsedSeconds();
    char label[64];
    std::snprintf(label, sizeof(label), "open/rate=%g", serve.rate);
    ReportPhase(&report, label, open);
    total_errors += open.errors;
    total_mismatches += open.mismatches;
  }

  // Phase 4 (optional): drift — replay the *other* mix through the same
  // monitor. Its join-frequency vector is (near-)disjoint from the
  // reference window's, so the drift score jumps above the threshold on
  // the first shifted window and stays there: exactly one upward crossing
  // (the CI smoke asserts crossings == 1). No baseline comparison — this
  // phase runs against a different database; failures still count.
  if (!serve.shift_mix.empty()) {
    MixSetup shifted;
    if (!BuildMix(serve.shift_mix, nodes, &shifted)) return 2;
    QueryScheduler scheduler(*shifted.pdb, {serve.clients, nullptr});
    const size_t total =
        shifted.mix.size() * static_cast<size_t>(serve.rounds);
    PhaseOutcome shift;
    std::map<uint64_t, std::pair<size_t, double>> inflight;
    Stopwatch wall;
    size_t issued = 0;
    auto submit_next = [&] {
      const size_t qidx = issued % shifted.mix.size();
      SubmitOptions options;
      options.cost_model = cost_model;
      const uint64_t id = scheduler.Submit(shifted.mix[qidx], options);
      inflight.emplace(id, std::make_pair(qidx, wall.ElapsedSeconds()));
      ++issued;
    };
    for (int c = 0; c < serve.clients && issued < total; ++c) submit_next();
    while (!inflight.empty()) {
      const uint64_t id = scheduler.WaitAny();
      const double now = wall.ElapsedSeconds();
      auto it = inflight.find(id);
      const auto [qidx, t0] = it->second;
      inflight.erase(it);
      QueryProfile profile;
      auto result = scheduler.Take(id, &profile);
      observe(profile, shifted.mix[qidx], shifted.db.schema());
      shift.queries++;
      shift.latencies.push_back(now - t0);
      shift.queue_waits.push_back(profile.timings.admission_wait_seconds +
                                  profile.timings.queue_wait_seconds);
      if (!result.status().ok()) {
        std::fprintf(stderr, "shift query %llu (%s) failed: %s\n",
                     static_cast<unsigned long long>(id),
                     shifted.mix[qidx].name.c_str(),
                     result.status().ToString().c_str());
        shift.errors++;
      } else {
        shift.simulated_seconds += result->stats.SimulatedSeconds(cost_model);
      }
      if (issued < total) submit_next();
    }
    shift.wall_seconds = wall.ElapsedSeconds();
    ReportPhase(&report, "shift/" + serve.shift_mix, shift);
    total_errors += shift.errors;
    std::printf("monitor: %zu windows, drift %.3f, %zu crossing(s)\n",
                monitor->windows_completed(), monitor->drift_score(),
                monitor->drift_crossings());
  }

  // Phase 5 (optional): online migration (DESIGN.md §12). Self-contained —
  // its own serving stack on the same TPC-H database, its own monitor.
  // Orders-centric submix on a parts-hostile configuration freezes the
  // drift reference; shifting to the parts-centric submix crosses the
  // threshold, and the callback's design → complete → plan → Start chain
  // migrates the live database in the background while that submix keeps
  // being served. Every completion is verified against a serial run on the
  // database *version* it pinned, so results stay bit-identical across the
  // swap barrier.
  if (serve.migrate) {
    if (serve.mix != "tpch") {
      std::fprintf(stderr, "bench_serve: --migrate requires --mix=tpch\n");
      return 2;
    }
    auto select = [&](const std::vector<std::string>& want,
                      std::vector<size_t>* out_idx) {
      for (const auto& name : want) {
        for (size_t i = 0; i < mix.size(); ++i) {
          if (mix[i].name == name) {
            out_idx->push_back(i);
            break;
          }
        }
      }
      return out_idx->size() == want.size();
    };
    // Orders-centric vs. parts-centric halves of the TPC-H mix: disjoint
    // join-key sets, so the shift reads as drift; both run on one database.
    std::vector<size_t> mix_a, mix_b;
    if (!select({"Q1", "Q3", "Q4", "Q10", "Q12", "Q18"}, &mix_a) ||
        !select({"Q2", "Q11", "Q14", "Q16", "Q17", "Q19"}, &mix_b)) {
      std::fprintf(stderr, "bench_serve: --migrate submix queries missing\n");
      return 2;
    }

    auto initial =
        PartitionDatabase(db, MakeTpchMigrateConfig(db.schema(), nodes));
    PREF_CHECK_OK(initial.status());
    ServingDatabase serving(
        std::shared_ptr<const PartitionedDatabase>(std::move(*initial)));

    MonitorOptions mopts;
    mopts.window_size = serve.window > 0 ? serve.window : mix_a.size();
    mopts.drift_threshold = serve.drift_threshold;
    WorkloadMonitor mig_monitor(mopts);
    bool drifted = false;
    double fire_score = 0;
    mig_monitor.SetDriftCallback([&](double score, size_t window) {
      drifted = true;
      fire_score = score;
      std::fprintf(stderr,
                   "migrate: drift %.3f crossed threshold at window %zu\n",
                   score, window);
    });

    // Every version ever served, so a completion pinned to any of them can
    // be verified against a serial baseline computed on that exact version.
    std::map<uint64_t, std::shared_ptr<const PartitionedDatabase>> versions;
    {
      auto snap = serving.Acquire();
      versions.emplace(snap.version, snap.pdb);
    }
    std::map<std::pair<uint64_t, size_t>, QueryResult> vbaseline;
    size_t baseline_skipped = 0;
    auto baseline_for = [&](uint64_t version,
                            size_t qidx) -> const QueryResult* {
      const auto key = std::make_pair(version, qidx);
      if (auto it = vbaseline.find(key); it != vbaseline.end()) {
        return &it->second;
      }
      auto vit = versions.find(version);
      if (vit == versions.end()) return nullptr;
      auto result = ExecuteQuery(mix[qidx], *vit->second, {}, cost_model);
      PREF_CHECK_OK(result.status());
      return &vbaseline.emplace(key, std::move(*result)).first->second;
    };

    // Per-version network footprint over the parts-centric completions:
    // version 1 is "before", the final version is "after". Locality is
    // reported as the fraction of processed tuples that never crossed the
    // simulated network (1 - shuffled/processed): a co-located join has no
    // exchange at all, so the exchange-tuple ratio alone would miss the
    // recovery — the shuffle *disappearing* is the win.
    struct VersionFootprint {
      size_t rows_shuffled = 0;
      size_t bytes_shuffled = 0;
      size_t rows_processed = 0;
      double simulated_seconds = 0;
    };
    std::map<uint64_t, VersionFootprint> footprint;
    std::optional<MigrationExecutor> executor;
    MigrationPlan planned;  // pre-execution copy for the report
    double design_seconds = 0;
    size_t migrations_started = 0;
    QueryScheduler scheduler(&serving, {serve.clients, nullptr});

    auto serve_submix = [&](const std::vector<size_t>& order, int nrounds,
                            bool track_locality, PhaseOutcome* out) {
      const size_t total = order.size() * static_cast<size_t>(nrounds);
      std::map<uint64_t, std::pair<size_t, double>> inflight;
      Stopwatch wall;
      size_t issued = 0;
      auto submit_next = [&] {
        const size_t qidx = order[issued % order.size()];
        SubmitOptions options;
        options.cost_model = cost_model;
        const uint64_t id = scheduler.Submit(mix[qidx], options);
        inflight.emplace(id, std::make_pair(qidx, wall.ElapsedSeconds()));
        ++issued;
      };
      for (int c = 0; c < serve.clients && issued < total; ++c) submit_next();
      while (!inflight.empty()) {
        const uint64_t id = scheduler.WaitAny();
        const double now = wall.ElapsedSeconds();
        auto it = inflight.find(id);
        const auto [qidx, t0] = it->second;
        inflight.erase(it);
        QueryProfile profile;
        auto result = scheduler.Take(id, &profile);
        // Notice newly published versions as soon as possible so late
        // completions pinned to them verify instead of being skipped.
        {
          auto snap = serving.Acquire();
          versions.emplace(snap.version, snap.pdb);
        }
        mig_monitor.OnQueryComplete(profile, mix[qidx], db.schema());
        out->queries++;
        out->latencies.push_back(now - t0);
        if (profile.has_timings) {
          out->queue_waits.push_back(profile.timings.admission_wait_seconds +
                                     profile.timings.queue_wait_seconds);
        }
        if (!result.status().ok()) {
          std::fprintf(stderr, "migrate query %llu (%s) failed: %s\n",
                       static_cast<unsigned long long>(id),
                       names[qidx].c_str(),
                       result.status().ToString().c_str());
          out->errors++;
        } else {
          out->simulated_seconds += result->stats.SimulatedSeconds(cost_model);
          if (track_locality) {
            VersionFootprint& fp = footprint[profile.database_version];
            fp.rows_shuffled += result->stats.rows_shuffled;
            fp.bytes_shuffled += result->stats.bytes_shuffled;
            fp.rows_processed += result->stats.total_rows_processed;
            fp.simulated_seconds += result->stats.SimulatedSeconds(cost_model);
          }
          const QueryResult* expect =
              baseline_for(profile.database_version, qidx);
          if (expect == nullptr) {
            ++baseline_skipped;
          } else if (!BitIdentical(*result, *expect) ||
                     !StatsEqual(result->stats, expect->stats)) {
            std::fprintf(stderr,
                         "migrate query %llu (%s): diverges from serial run "
                         "on version %llu\n",
                         static_cast<unsigned long long>(id),
                         names[qidx].c_str(),
                         static_cast<unsigned long long>(
                             profile.database_version));
            out->mismatches++;
          }
        }
        // Act on the crossing exactly once: re-design from the drifted
        // window and launch the migration; serving continues underneath.
        if (drifted && !executor.has_value()) {
          Stopwatch design_watch;
          auto base = serving.Acquire();
          WdOptions wopts;
          wopts.num_partitions = nodes;
          wopts.replicate_tables = {"nation", "region", "supplier"};
          auto graphs = mig_monitor.WindowQueryGraphs(db.schema());
          auto wd = WorkloadDrivenDesign(db, graphs, wopts);
          PREF_CHECK_OK(wd.status());
          auto target = CompleteServingConfig(wd->deployment, *base.pdb);
          PREF_CHECK_OK(target.status());
          auto plan = PlanMigration(db, *base.pdb, *target);
          PREF_CHECK_OK(plan.status());
          design_seconds = design_watch.ElapsedSeconds();
          planned = *plan;
          std::printf("%s", plan->ToString().c_str());
          MigrationOptions mig_opts;
          mig_opts.verify_colocation = true;
          executor.emplace(db, &serving, std::move(*plan), mig_opts);
          executor->Start();
          ++migrations_started;
        }
        if (issued < total) submit_next();
      }
      out->wall_seconds = wall.ElapsedSeconds();
    };

    PhaseOutcome warm, shift_serve, post;
    serve_submix(mix_a, serve.rounds, false, &warm);
    ReportPhase(&report, "migrate/orders-mix", warm);
    serve_submix(mix_b, serve.rounds, true, &shift_serve);
    ReportPhase(&report, "migrate/parts-shift", shift_serve);

    if (!executor.has_value()) {
      std::fprintf(stderr,
                   "bench_serve: --migrate shift never crossed the drift "
                   "threshold; no migration fired\n");
      return 1;
    }
    Status mig_status = executor->Wait();
    if (!mig_status.ok()) {
      std::fprintf(stderr, "bench_serve: migration failed: %s\n",
                   mig_status.ToString().c_str());
      return 1;
    }
    {
      auto snap = serving.Acquire();
      versions.emplace(snap.version, snap.pdb);
    }
    // The migrated-for mix is the new normal: the next completed window
    // freezes as the new drift reference.
    mig_monitor.Rebase();
    serve_submix(mix_b, serve.rounds, true, &post);
    ReportPhase(&report, "migrate/recovered", post);
    total_errors += warm.errors + shift_serve.errors + post.errors;
    total_mismatches +=
        warm.mismatches + shift_serve.mismatches + post.mismatches;

    // Plan fidelity: the executor must have written exactly the copies a
    // from-scratch load of every rebuilt table ships.
    size_t rebuilt_copies = 0, rebuilt_expected = 0, total_source_rows = 0;
    for (const MigrationStep& s : executor->plan().steps) {
      total_source_rows += db.table(s.table).num_rows();
      if (s.kind == MigrationStepKind::kKeep) continue;
      rebuilt_copies += s.rebuilt_copies;
      rebuilt_expected += s.reload_copies;
    }
    if (rebuilt_copies != rebuilt_expected) {
      std::fprintf(stderr,
                   "bench_serve: executor rebuilt %zu copies, plan "
                   "predicted %zu\n",
                   rebuilt_copies, rebuilt_expected);
      ++total_errors;
    }

    auto locality_of = [&](uint64_t version) {
      auto it = footprint.find(version);
      if (it == footprint.end() || it->second.rows_processed == 0) return 0.0;
      return 1.0 - static_cast<double>(it->second.rows_shuffled) /
                       static_cast<double>(it->second.rows_processed);
    };
    const uint64_t final_version = serving.version();
    const VersionFootprint fp_before = footprint[1];
    const VersionFootprint fp_after = footprint[final_version];
    const double locality_before = locality_of(1);
    const double locality_after = locality_of(final_version);
    std::printf(
        "migrate: %zu/%zu tables moved in %d epoch(s), %zu of %zu copies "
        "shipped (%.1f%% of a full reload), locality %.3f -> %.3f, shuffled "
        "rows %zu -> %zu, drift after rebase %.3f\n",
        planned.tables_moved, planned.tables_moved + planned.tables_kept,
        planned.num_epochs, planned.moved_copies, planned.reload_copies,
        planned.reload_copies > 0
            ? 100.0 * static_cast<double>(planned.moved_copies) /
                  static_cast<double>(planned.reload_copies)
            : 0.0,
        locality_before, locality_after, fp_before.rows_shuffled,
        fp_after.rows_shuffled, mig_monitor.drift_score());

    std::ostringstream ms;
    {
      JsonWriter w(&ms);
      w.BeginObject();
      w.Key("fired");
      w.UInt(migrations_started);
      w.Key("design_seconds");
      w.Double(design_seconds);
      w.Key("num_epochs");
      w.Int(planned.num_epochs);
      w.Key("epochs_published");
      w.Int(executor->epochs_published());
      w.Key("final_version");
      w.UInt(final_version);
      w.Key("tables_moved");
      w.UInt(planned.tables_moved);
      w.Key("tables_kept");
      w.UInt(planned.tables_kept);
      w.Key("moved_rows");
      w.UInt(planned.moved_rows);
      w.Key("moved_copies");
      w.UInt(planned.moved_copies);
      w.Key("moved_bytes");
      w.UInt(planned.moved_bytes);
      w.Key("reload_copies");
      w.UInt(planned.reload_copies);
      w.Key("rebuilt_copies");
      w.UInt(rebuilt_copies);
      w.Key("total_source_rows");
      w.UInt(total_source_rows);
      w.Key("locality_before");
      w.Double(locality_before);
      w.Key("locality_after");
      w.Double(locality_after);
      w.Key("rows_shuffled_before");
      w.UInt(fp_before.rows_shuffled);
      w.Key("rows_shuffled_after");
      w.UInt(fp_after.rows_shuffled);
      w.Key("bytes_shuffled_before");
      w.UInt(fp_before.bytes_shuffled);
      w.Key("bytes_shuffled_after");
      w.UInt(fp_after.bytes_shuffled);
      w.Key("rows_processed_before");
      w.UInt(fp_before.rows_processed);
      w.Key("rows_processed_after");
      w.UInt(fp_after.rows_processed);
      w.Key("simulated_seconds_before");
      w.Double(fp_before.simulated_seconds);
      w.Key("simulated_seconds_after");
      w.Double(fp_after.simulated_seconds);
      w.Key("drift_at_fire");
      w.Double(fire_score);
      w.Key("drift_after");
      w.Double(mig_monitor.drift_score());
      w.Key("drift_threshold");
      w.Double(mopts.drift_threshold);
      w.Key("drift_crossings");
      w.UInt(mig_monitor.drift_crossings());
      w.Key("rebases");
      w.UInt(mig_monitor.rebases());
      w.Key("baseline_skipped");
      w.UInt(baseline_skipped);
      w.Key("steps");
      w.BeginArray();
      for (const MigrationStep& s : executor->plan().steps) {
        w.BeginObject();
        w.Key("table");
        w.String(s.table_name);
        w.Key("kind");
        w.String(MigrationStepKindName(s.kind));
        w.Key("epoch");
        w.Int(s.epoch);
        w.Key("moved_rows");
        w.UInt(s.moved_rows);
        w.Key("moved_copies");
        w.UInt(s.moved_copies);
        w.Key("moved_bytes");
        w.UInt(s.moved_bytes);
        w.Key("reload_copies");
        w.UInt(s.reload_copies);
        w.Key("rebuilt_copies");
        w.UInt(s.rebuilt_copies);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    report.Section("migration", ms.str());
  }

  // The monitor document: the WorkloadMonitor JSON with the timeline
  // spliced in as one more top-level key.
  if (!serve.monitor_path.empty() && monitor.has_value()) {
    std::ostringstream mon, ts;
    monitor->WriteJson(mon);
    timeline->WriteJson(ts);
    auto trim = [](std::string s) {
      while (!s.empty() && s.back() == '\n') s.pop_back();
      return s;
    };
    std::string mon_doc = trim(mon.str());
    mon_doc.pop_back();  // drop the closing '}' to splice the timeline in
    std::ofstream f(serve.monitor_path);
    f << mon_doc << ",\"timeseries\":" << trim(ts.str()) << "}\n";
    if (!f) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   serve.monitor_path.c_str());
      return 1;
    }
    std::printf("monitor document written to %s\n",
                serve.monitor_path.c_str());
  }

  if (!FinishBench(report, bench_args)) return 1;
  if (total_errors > 0 || total_mismatches > 0) {
    std::fprintf(stderr, "bench_serve: %zu errors, %zu mismatches\n",
                 total_errors, total_mismatches);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pref

int main(int argc, char** argv) { return pref::bench::Main(argc, argv); }
