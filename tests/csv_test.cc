// Tests for CSV import/export: round-tripping, quoting, header mapping,
// and error atomicity.

#include <gtest/gtest.h>

#include <sstream>

#include "datagen/tpch_gen.h"
#include "catalog/tpch_schema.h"
#include "storage/csv.h"

namespace pref {
namespace {

Database MakeDb() {
  Schema s;
  EXPECT_TRUE(s.AddTable("t",
                         {{"id", DataType::kInt64},
                          {"score", DataType::kDouble},
                          {"tag", DataType::kString},
                          {"day", DataType::kDate}},
                         {"id"})
                  .ok());
  return Database(std::move(s));
}

TEST(CsvTest, ImportBasic) {
  Database db = MakeDb();
  Table* t = *db.FindTable("t");
  std::istringstream in(
      "id,score,tag,day\n"
      "1,2.5,alpha,100\n"
      "2,-0.25,beta,200\n");
  ASSERT_TRUE(ImportCsv(t, in).ok());
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->data().column(0).GetInt64(1), 2);
  EXPECT_DOUBLE_EQ(t->data().column(1).GetDouble(1), -0.25);
  EXPECT_EQ(t->data().column(2).GetString(0), "alpha");
  EXPECT_EQ(t->data().column(3).GetInt64(1), 200);
}

TEST(CsvTest, HeaderRemapsColumnOrder) {
  Database db = MakeDb();
  Table* t = *db.FindTable("t");
  std::istringstream in(
      "tag,id,day,score\n"
      "x,7,1,3.5\n");
  ASSERT_TRUE(ImportCsv(t, in).ok());
  EXPECT_EQ(t->data().column(0).GetInt64(0), 7);
  EXPECT_DOUBLE_EQ(t->data().column(1).GetDouble(0), 3.5);
  EXPECT_EQ(t->data().column(2).GetString(0), "x");
}

TEST(CsvTest, NoHeaderUsesSchemaOrder) {
  Database db = MakeDb();
  Table* t = *db.FindTable("t");
  std::istringstream in("5,1.5,z,9\n");
  CsvOptions options;
  options.header = false;
  ASSERT_TRUE(ImportCsv(t, in, options).ok());
  EXPECT_EQ(t->data().column(0).GetInt64(0), 5);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndQuotes) {
  Database db = MakeDb();
  Table* t = *db.FindTable("t");
  std::istringstream in(
      "id,score,tag,day\n"
      "1,0.5,\"hello, \"\"world\"\"\",3\n");
  ASSERT_TRUE(ImportCsv(t, in).ok());
  EXPECT_EQ(t->data().column(2).GetString(0), "hello, \"world\"");
}

TEST(CsvTest, ErrorsAreAtomic) {
  Database db = MakeDb();
  Table* t = *db.FindTable("t");
  std::istringstream in(
      "id,score,tag,day\n"
      "1,2.5,ok,1\n"
      "oops,2.5,bad,2\n");
  Status st = ImportCsv(t, in);
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(t->num_rows(), 0u);  // nothing applied
}

TEST(CsvTest, ErrorMessagesCarryLineNumbers) {
  Database db = MakeDb();
  Table* t = *db.FindTable("t");
  std::istringstream in(
      "id,score,tag,day\n"
      "1,notanumber,x,1\n");
  Status st = ImportCsv(t, in);
  ASSERT_TRUE(st.IsInvalid());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ArityMismatchRejected) {
  Database db = MakeDb();
  Table* t = *db.FindTable("t");
  std::istringstream in(
      "id,score,tag,day\n"
      "1,2.5,x\n");
  EXPECT_TRUE(ImportCsv(t, in).IsInvalid());
  std::istringstream bad_header("id,score\n");
  EXPECT_TRUE(ImportCsv(t, bad_header).IsInvalid());
  std::istringstream unknown("id,score,tag,nope\n1,1.0,x,1\n");
  EXPECT_FALSE(ImportCsv(t, unknown).ok());
}

TEST(CsvTest, RoundTripPreservesData) {
  Database db = MakeDb();
  Table* t = *db.FindTable("t");
  std::istringstream in(
      "id,score,tag,day\n"
      "1,0.1,\"a,b\",10\n"
      "2,12345.6789,plain,20\n"
      "3,-1e-9,\"q\"\"q\",30\n");
  ASSERT_TRUE(ImportCsv(t, in).ok());
  std::ostringstream out;
  ASSERT_TRUE(ExportCsv(*t, out).ok());
  Database db2 = MakeDb();
  Table* t2 = *db2.FindTable("t");
  std::istringstream back(out.str());
  ASSERT_TRUE(ImportCsv(t2, back).ok());
  ASSERT_EQ(t2->num_rows(), t->num_rows());
  for (size_t r = 0; r < t->num_rows(); ++r) {
    EXPECT_EQ(t->data().GetRow(r), t2->data().GetRow(r)) << "row " << r;
  }
}

TEST(CsvTest, FileRoundTripOnTpchTable) {
  auto db = GenerateTpch({0.001, 3});
  ASSERT_TRUE(db.ok());
  const Table& nation = **db->FindTable("nation");
  std::string path = testing::TempDir() + "/nation.csv";
  ASSERT_TRUE(ExportCsvFile(nation, path).ok());
  Database fresh(MakeTpchSchema());
  Table* loaded = *fresh.FindTable("nation");
  ASSERT_TRUE(ImportCsvFile(loaded, path).ok());
  ASSERT_EQ(loaded->num_rows(), nation.num_rows());
  for (size_t r = 0; r < nation.num_rows(); ++r) {
    EXPECT_EQ(loaded->data().GetRow(r), nation.data().GetRow(r));
  }
  EXPECT_TRUE(ImportCsvFile(loaded, "/no/such/file.csv").IsNotFound());
}

}  // namespace
}  // namespace pref
