// Engine tests: §2.2 rewrite rules (join cases 1-3, repartition insertion,
// duplicate elimination, hasS semi-/anti-rewrites), executor correctness
// against a single-node reference execution, and cost accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "partition/presets.h"
#include "test_util.h"

namespace pref {
namespace {

/// Canonical form of a result: rows keyed by their int/string columns;
/// double columns collected for tolerant comparison (different partition
/// layouts accumulate floating sums in different orders).
struct CanonResult {
  std::multiset<std::string> keys;
  std::map<std::string, std::vector<double>> doubles;
};

CanonResult Canon(const QueryResult& result) {
  CanonResult out;
  for (size_t r = 0; r < result.rows.num_rows(); ++r) {
    std::string key;
    std::vector<double> ds;
    for (int c = 0; c < result.rows.num_columns(); ++c) {
      const Column& col = result.rows.column(c);
      if (col.is_double()) {
        ds.push_back(col.GetDouble(r));
      } else if (col.is_int()) {
        key += std::to_string(col.GetInt64(r));
        key += '|';
      } else {
        key += col.GetString(r);
        key += '|';
      }
    }
    out.keys.insert(key);
    auto& bucket = out.doubles[key];
    bucket.insert(bucket.end(), ds.begin(), ds.end());
  }
  // Keys may repeat (raw projections): compare double buckets as sorted
  // multisets.
  for (auto& [key, ds] : out.doubles) std::sort(ds.begin(), ds.end());
  return out;
}

void ExpectResultsEqual(const QueryResult& expected, const QueryResult& actual,
                        const std::string& label) {
  CanonResult e = Canon(expected), a = Canon(actual);
  EXPECT_EQ(e.keys, a.keys) << label;
  if (e.keys != a.keys) return;
  for (const auto& [key, evals] : e.doubles) {
    const auto& avals = a.doubles[key];
    ASSERT_EQ(evals.size(), avals.size()) << label << " key " << key;
    for (size_t i = 0; i < evals.size(); ++i) {
      double tol = std::max(1e-6, std::fabs(evals[i]) * 1e-9);
      EXPECT_NEAR(evals[i], avals[i], tol) << label << " key " << key;
    }
  }
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    // Reference: single node, everything hash partitioned.
    auto ref_config = MakeAllHashed(db_->schema(), 1);
    ASSERT_TRUE(ref_config.ok());
    auto ref = PartitionDatabase(*db_, *ref_config);
    ASSERT_TRUE(ref.ok());
    reference_ = std::move(*ref);
    // SD-style PREF configuration on 6 nodes.
    auto sd = PartitionDatabase(*db_, MakeTpchSdManual(db_->schema(), 6));
    ASSERT_TRUE(sd.ok());
    sd_pdb_ = std::move(*sd);
    // Classical configuration on 6 nodes.
    auto cp_config = MakeTpchClassical(db_->schema(), 6);
    ASSERT_TRUE(cp_config.ok());
    auto cp = PartitionDatabase(*db_, *cp_config);
    ASSERT_TRUE(cp.ok());
    cp_pdb_ = std::move(*cp);
  }

  /// Runs `q` on the reference and on `pdb`; expects identical results.
  QueryResult CheckAgainstReference(const QuerySpec& q,
                                    const PartitionedDatabase& pdb,
                                    QueryOptions options = {}) {
    auto expected = ExecuteQuery(q, *reference_);
    auto actual = ExecuteQuery(q, pdb, options);
    EXPECT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_TRUE(actual.ok()) << actual.status().ToString();
    if (expected.ok() && actual.ok()) {
      ExpectResultsEqual(*expected, *actual, q.name);
      return std::move(*actual);
    }
    return QueryResult();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<PartitionedDatabase> reference_;
  std::unique_ptr<PartitionedDatabase> sd_pdb_;
  std::unique_ptr<PartitionedDatabase> cp_pdb_;
};

TEST_F(EngineTest, ScanFilterProject) {
  auto q = QueryBuilder(&db_->schema(), "scan")
               .From("customer")
               .Where("customer", Eq("c_mktsegment", Value(std::string("BUILDING"))))
               .Project({"c_custkey", "c_name"})
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *sd_pdb_);
  EXPECT_GT(r.rows.num_rows(), 0u);
  EXPECT_EQ(r.column_names, (std::vector<std::string>{"c_custkey", "c_name"}));
}

TEST_F(EngineTest, FilterOperatorsAllWork) {
  for (auto pred : {Lt("c_acctbal", Value(0.0)), Le("c_acctbal", Value(0.0)),
                    Gt("c_acctbal", Value(5000.0)), Ge("c_acctbal", Value(5000.0)),
                    Ne("c_mktsegment", Value(std::string("BUILDING"))),
                    Between("c_acctbal", Value(100.0), Value(200.0))}) {
    auto q = QueryBuilder(&db_->schema(), "filter-op")
                 .From("customer")
                 .Where("customer", pred)
                 .Agg(AggFunc::kCountStar, "", "cnt")
                 .Build();
    ASSERT_TRUE(q.ok());
    CheckAgainstReference(*q, *sd_pdb_);
  }
}

TEST_F(EngineTest, DnfResidualFilter) {
  Dnf dnf;
  dnf.disjuncts.push_back({Eq("c_mktsegment", Value(std::string("BUILDING"))),
                           Gt("c_acctbal", Value(0.0))});
  dnf.disjuncts.push_back({Eq("c_mktsegment", Value(std::string("MACHINERY")))});
  auto q = QueryBuilder(&db_->schema(), "dnf")
               .From("customer")
               .WhereDnf("customer", dnf)
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  CheckAgainstReference(*q, *sd_pdb_);
}

TEST_F(EngineTest, Case1CoHashedJoinIsLocal) {
  // CP: lineitem and orders co-hashed on orderkey -> no repartition; the
  // only exchange is the final gather of partial aggregates.
  auto q = QueryBuilder(&db_->schema(), "case1")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Agg(AggFunc::kSum, "l_extendedprice", "rev")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *cp_pdb_);
  EXPECT_EQ(r.stats.exchanges, 1);  // gather of partials only
}

TEST_F(EngineTest, Case2PrefSeedJoinIsLocal) {
  // SD: orders is PREF by lineitem (seed, hash on orderkey): case (2).
  auto q = QueryBuilder(&db_->schema(), "case2")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Agg(AggFunc::kSum, "o_totalprice", "total")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *sd_pdb_);
  EXPECT_EQ(r.stats.exchanges, 1);
}

TEST_F(EngineTest, Case3PrefPrefJoinIsLocal) {
  // Figure 3's query: customer (PREF by orders) join orders (PREF by
  // lineitem) on custkey, grouped by c_name -> the join itself is local;
  // the aggregation re-partitions on the group key.
  auto q = QueryBuilder(&db_->schema(), "fig3")
               .From("orders")
               .Join("customer", "o_custkey", "c_custkey")
               .GroupBy({"c_name"})
               .Agg(AggFunc::kSum, "o_totalprice", "revenue")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *sd_pdb_);
  // Repartition (group) + gather: 2 exchanges; the join added none.
  EXPECT_EQ(r.stats.exchanges, 2);
}

TEST_F(EngineTest, ThreeWayPrefChainLocal) {
  auto q = QueryBuilder(&db_->schema(), "chain")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Join("customer", "o_custkey", "c_custkey")
               .Agg(AggFunc::kSum, "l_extendedprice", "rev")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *sd_pdb_);
  EXPECT_EQ(r.stats.exchanges, 1);  // both joins local under SD
}

TEST_F(EngineTest, NonColocatedJoinRepartitions) {
  // Under CP, customer is replicated -> local. Under a both-hashed-on-PK
  // database, orders x customer must shuffle.
  auto all_hashed = MakeAllHashed(db_->schema(), 6);
  ASSERT_TRUE(all_hashed.ok());
  auto pdb = PartitionDatabase(*db_, *all_hashed);
  ASSERT_TRUE(pdb.ok());
  auto q = QueryBuilder(&db_->schema(), "shuffle")
               .From("orders")
               .Join("customer", "o_custkey", "c_custkey")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, **pdb);
  EXPECT_GT(r.stats.bytes_shuffled, 0u);
  EXPECT_GE(r.stats.exchanges, 2);  // at least one side repartitioned + gather
}

TEST_F(EngineTest, ReplicatedJoinIsLocal) {
  auto q = QueryBuilder(&db_->schema(), "repl")
               .From("customer")
               .Join("nation", "c_nationkey", "n_nationkey")
               .GroupBy({"n_name"})
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *sd_pdb_);
  EXPECT_GT(r.rows.num_rows(), 0u);
}

TEST_F(EngineTest, CountOverPrefTableEliminatesDuplicates) {
  // customer is PREF partitioned under SD and physically holds duplicates;
  // COUNT(*) must still equal the base cardinality.
  auto q = QueryBuilder(&db_->schema(), "count-dedup")
               .From("customer")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  auto r = ExecuteQuery(*q, *sd_pdb_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.num_rows(), 1u);
  EXPECT_EQ(r->rows.column(0).GetInt64(0),
            static_cast<int64_t>((*db_->FindTable("customer"))->num_rows()));
  // The PREF table materially contains more copies than the base count.
  EXPECT_GT(sd_pdb_->GetTable(*db_->schema().FindTable("customer"))->TotalRows(),
            (*db_->FindTable("customer"))->num_rows());
}

TEST_F(EngineTest, DistinctCountWithAndWithoutOptimizations) {
  // Figure 9 query (1): with the dup index, duplicate elimination is a
  // local bitmap filter; without it, a full-row shuffle is needed. Results
  // agree; the unoptimized run ships far more bytes.
  auto q = QueryBuilder(&db_->schema(), "fig9-distinct")
               .From("customer")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryOptions with_opt, without_opt;
  without_opt.pref_optimizations = false;
  auto a = ExecuteQuery(*q, *sd_pdb_, with_opt);
  auto b = ExecuteQuery(*q, *sd_pdb_, without_opt);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectResultsEqual(*a, *b, "fig9-distinct");
  EXPECT_GT(b->stats.bytes_shuffled, a->stats.bytes_shuffled);
}

TEST_F(EngineTest, SemiJoinViaHasSIndex) {
  // Figure 9 query (2): customers with orders.
  auto q = QueryBuilder(&db_->schema(), "fig9-semi")
               .From("customer")
               .Join("orders", "c_custkey", "o_custkey", JoinType::kSemi)
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *sd_pdb_);
  // Optimized: the orders scan disappears entirely.
  QueryOptions no_opt;
  no_opt.pref_optimizations = false;
  auto slow = ExecuteQuery(*q, *sd_pdb_, no_opt);
  ASSERT_TRUE(slow.ok());
  auto fast = ExecuteQuery(*q, *sd_pdb_);
  ASSERT_TRUE(fast.ok());
  ExpectResultsEqual(*slow, *fast, "fig9-semi");
  EXPECT_LT(r.stats.total_rows_processed, slow->stats.total_rows_processed);
}

TEST_F(EngineTest, AntiJoinViaHasSIndex) {
  // Figure 9 query (3): customers without orders (1/3 of them).
  auto q = QueryBuilder(&db_->schema(), "fig9-anti")
               .From("customer")
               .Join("orders", "c_custkey", "o_custkey", JoinType::kAnti)
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *sd_pdb_);
  ASSERT_EQ(r.rows.num_rows(), 1u);
  size_t customers = (*db_->FindTable("customer"))->num_rows();
  int64_t without = r.rows.column(0).GetInt64(0);
  EXPECT_GT(without, static_cast<int64_t>(customers / 4));
  EXPECT_LT(without, static_cast<int64_t>(customers / 2));
}

TEST_F(EngineTest, SemiAntiPartitionConsistency) {
  // hasS semi + hasS anti counts must sum to the base cardinality.
  auto semi = QueryBuilder(&db_->schema(), "semi")
                  .From("customer")
                  .Join("orders", "c_custkey", "o_custkey", JoinType::kSemi)
                  .Agg(AggFunc::kCountStar, "", "cnt")
                  .Build();
  auto anti = QueryBuilder(&db_->schema(), "anti")
                  .From("customer")
                  .Join("orders", "c_custkey", "o_custkey", JoinType::kAnti)
                  .Agg(AggFunc::kCountStar, "", "cnt")
                  .Build();
  ASSERT_TRUE(semi.ok() && anti.ok());
  auto s = ExecuteQuery(*semi, *sd_pdb_);
  auto a = ExecuteQuery(*anti, *sd_pdb_);
  ASSERT_TRUE(s.ok() && a.ok());
  EXPECT_EQ(s->rows.column(0).GetInt64(0) + a->rows.column(0).GetInt64(0),
            static_cast<int64_t>((*db_->FindTable("customer"))->num_rows()));
}

TEST_F(EngineTest, GroupByAlignedWithHashPartitioning) {
  // Group by the hash key of a hash-partitioned table: single-phase local
  // aggregation, only the gather moves data.
  auto q = QueryBuilder(&db_->schema(), "aligned")
               .From("orders")
               .GroupBy({"o_orderkey"})
               .Agg(AggFunc::kSum, "o_totalprice", "sum")
               .Build();
  ASSERT_TRUE(q.ok());
  QueryResult r = CheckAgainstReference(*q, *cp_pdb_);
  EXPECT_EQ(r.stats.exchanges, 1);
}

TEST_F(EngineTest, AllAggregateFunctions) {
  auto q = QueryBuilder(&db_->schema(), "aggs")
               .From("orders")
               .GroupBy({"o_orderstatus"})
               .Agg(AggFunc::kSum, "o_totalprice", "sum")
               .Agg(AggFunc::kMin, "o_totalprice", "min")
               .Agg(AggFunc::kMax, "o_totalprice", "max")
               .Agg(AggFunc::kAvg, "o_totalprice", "avg")
               .Agg(AggFunc::kCount, "o_totalprice", "cnt")
               .Agg(AggFunc::kCountStar, "", "cnt2")
               .Build();
  ASSERT_TRUE(q.ok());
  CheckAgainstReference(*q, *sd_pdb_);
  CheckAgainstReference(*q, *cp_pdb_);
}

TEST_F(EngineTest, PartitionPruningCutsScanWork) {
  auto q = QueryBuilder(&db_->schema(), "prune")
               .From("orders")
               .Where("orders", Eq("o_orderkey", Value(int64_t{100})))
               .Project({"o_orderkey", "o_totalprice"})
               .Build();
  ASSERT_TRUE(q.ok());
  QueryOptions pruned;
  pruned.partition_pruning = true;
  auto without = ExecuteQuery(*q, *cp_pdb_);
  auto with = ExecuteQuery(*q, *cp_pdb_, pruned);
  ASSERT_TRUE(without.ok() && with.ok());
  ExpectResultsEqual(*without, *with, "prune");
  EXPECT_LT(with->stats.total_rows_processed,
            without->stats.total_rows_processed / 2);
}

TEST_F(EngineTest, JoinWithFiltersOnBothSides) {
  auto q = QueryBuilder(&db_->schema(), "filters")
               .From("lineitem")
               .Where("lineitem", Gt("l_quantity", Value(25.0)))
               .Join("orders", "l_orderkey", "o_orderkey")
               .Where("orders", Eq("o_orderstatus", Value(std::string("F"))))
               .GroupBy({"o_orderpriority"})
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  CheckAgainstReference(*q, *sd_pdb_);
  CheckAgainstReference(*q, *cp_pdb_);
}

TEST_F(EngineTest, FourWayJoinMatchesReferenceUnderAllConfigs) {
  auto q = QueryBuilder(&db_->schema(), "fourway")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Join("customer", "o_custkey", "c_custkey")
               .Join("nation", "c_nationkey", "n_nationkey")
               .GroupBy({"n_name"})
               .Agg(AggFunc::kSum, "l_extendedprice", "volume")
               .Build();
  ASSERT_TRUE(q.ok());
  CheckAgainstReference(*q, *sd_pdb_);
  CheckAgainstReference(*q, *cp_pdb_);
}

TEST_F(EngineTest, CompositeKeyJoin) {
  auto q = QueryBuilder(&db_->schema(), "composite")
               .From("lineitem")
               .JoinMulti("partsupp", {"l_partkey", "l_suppkey"},
                          {"ps_partkey", "ps_suppkey"})
               .Agg(AggFunc::kSum, "ps_supplycost", "cost")
               .Build();
  ASSERT_TRUE(q.ok());
  // Under SD, partsupp is PREF by lineitem on exactly this predicate.
  QueryResult r = CheckAgainstReference(*q, *sd_pdb_);
  EXPECT_EQ(r.stats.exchanges, 1);
}

TEST_F(EngineTest, SelfJoinWithAliases) {
  auto q = QueryBuilder(&db_->schema(), "selfjoin")
               .From("orders", "o1")
               .Where("o1", Eq("o1.o_orderstatus", Value(std::string("F"))))
               .Join("orders", "o1.o_custkey", "o2.o_custkey", JoinType::kInner,
                     "o2")
               .Agg(AggFunc::kCountStar, "", "pairs")
               .Build();
  ASSERT_TRUE(q.ok());
  CheckAgainstReference(*q, *sd_pdb_);
}

TEST_F(EngineTest, SimulatedCostReflectsShuffles) {
  CostModel model;
  auto q = QueryBuilder(&db_->schema(), "cost")
               .From("orders")
               .Join("customer", "o_custkey", "c_custkey")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  auto all_hashed = PartitionDatabase(*db_, *MakeAllHashed(db_->schema(), 6));
  ASSERT_TRUE(all_hashed.ok());
  auto local = ExecuteQuery(*q, *sd_pdb_);
  auto remote = ExecuteQuery(*q, **all_hashed);
  ASSERT_TRUE(local.ok() && remote.ok());
  EXPECT_LT(local->stats.SimulatedSeconds(model),
            remote->stats.SimulatedSeconds(model));
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  auto q = QueryBuilder(&db_->schema(), "bad").From("nope").Build();
  EXPECT_FALSE(q.ok());
  auto q2 = QueryBuilder(&db_->schema(), "badcol")
                .From("orders")
                .Project({"no_such_col"})
                .Build();
  ASSERT_TRUE(q2.ok());  // name resolution happens at rewrite time
  EXPECT_FALSE(ExecuteQuery(*q2, *sd_pdb_).ok());
}

}  // namespace
}  // namespace pref
