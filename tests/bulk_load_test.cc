// Tests for §2.3 bulk loading: routing per scheme, dup/hasS maintenance,
// partition-index maintenance, and the naive (no-index) ablation path.

#include <gtest/gtest.h>

#include <unordered_map>

#include "datagen/tpch_gen.h"
#include "partition/bulk_loader.h"
#include "partition/partitioner.h"
#include "test_util.h"

namespace pref {
namespace {

/// Splits the orders table: first 80% loaded via initial partitioning,
/// last 20% returned as a bulk-load batch.
RowBlock TailRows(const Table& t, double fraction, size_t* cut_out) {
  size_t cut = static_cast<size_t>(static_cast<double>(t.num_rows()) * fraction);
  *cut_out = cut;
  RowBlock tail(&t.def());
  for (size_t r = cut; r < t.num_rows(); ++r) tail.AppendRow(t.data(), r);
  return tail;
}

/// Copies the first `cut` rows of `t` into a fresh Database that otherwise
/// mirrors `db` (only `table_name` is truncated).
Database TruncatedCopy(const Database& db, const std::string& table_name,
                       size_t cut) {
  Schema schema_copy = db.schema();
  Database out(std::move(schema_copy));
  for (const auto& def : db.schema().tables()) {
    const Table& src = db.table(def.id);
    Table* dst = *out.FindTable(def.name);
    size_t limit = def.name == table_name ? cut : src.num_rows();
    for (size_t r = 0; r < limit; ++r) dst->data().AppendRow(src.data(), r);
  }
  return out;
}

TEST(BulkLoadTest, HashRoutingMatchesPartitioner) {
  auto db = GenerateTpch({0.001, 3});
  ASSERT_TRUE(db.ok());
  const Table& orders = **db->FindTable("orders");
  size_t cut;
  RowBlock tail = TailRows(orders, 0.8, &cut);
  Database head_db = TruncatedCopy(*db, "orders", cut);

  PartitioningConfig config(&head_db.schema(), 4);
  ASSERT_TRUE(config.AddHash("orders", {"o_orderkey"}).ok());
  auto pdb = PartitionDatabase(head_db, std::move(config));
  ASSERT_TRUE(pdb.ok());

  TableId o_id = *head_db.schema().FindTable("orders");
  BulkLoader loader;
  auto stats = loader.Append(pdb->get(), o_id, tail);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_inserted, tail.num_rows());
  EXPECT_EQ(stats->copies_written, tail.num_rows());

  // Result must equal partitioning the full table in one go.
  PartitioningConfig full_config(&db->schema(), 4);
  ASSERT_TRUE(full_config.AddHash("orders", {"o_orderkey"}).ok());
  auto full = PartitionDatabase(*db, std::move(full_config));
  ASSERT_TRUE(full.ok());
  const PartitionedTable* a = (*pdb)->GetTable(o_id);
  const PartitionedTable* b = (*full)->GetTable(*db->schema().FindTable("orders"));
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(a->partition(p).rows.num_rows(), b->partition(p).rows.num_rows());
  }
}

TEST(BulkLoadTest, ReplicatedGoesEverywhere) {
  auto db = GenerateTpch({0.001, 3});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config(&db->schema(), 3);
  ASSERT_TRUE(config.AddReplicated("nation").ok());
  auto pdb = PartitionDatabase(*db, std::move(config));
  ASSERT_TRUE(pdb.ok());
  TableId n_id = *db->schema().FindTable("nation");
  RowBlock extra(&db->schema().table(n_id));
  ASSERT_TRUE(extra
                  .AppendRowValues({Value(int64_t{99}), Value(std::string("ATLANTIS")),
                                    Value(int64_t{0}), Value(std::string("c"))})
                  .ok());
  BulkLoader loader;
  auto stats = loader.Append(pdb->get(), n_id, extra);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->copies_written, 3u);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ((*pdb)->GetTable(n_id)->partition(p).rows.num_rows(), 26u);
  }
}

TEST(BulkLoadTest, PrefRoutingUsesPartitionIndexAndKeepsInvariants) {
  auto db = GenerateTpch({0.002, 5});
  ASSERT_TRUE(db.ok());
  const Table& orders = **db->FindTable("orders");
  size_t cut;
  RowBlock tail = TailRows(orders, 0.7, &cut);
  Database head_db = TruncatedCopy(*db, "orders", cut);

  PartitioningConfig config(&head_db.schema(), 6);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  auto pdb = PartitionDatabase(head_db, std::move(config));
  ASSERT_TRUE(pdb.ok());

  TableId o_id = *head_db.schema().FindTable("orders");
  BulkLoader loader(/*use_partition_index=*/true);
  auto stats = loader.Append(pdb->get(), o_id, tail);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->index_lookups, tail.num_rows());
  EXPECT_EQ(stats->scan_probes, 0u);

  // The loaded table must satisfy Definition 1 against the *full* source
  // database (head + tail = original orders).
  CheckPrefInvariants(*db, **pdb, o_id);
}

TEST(BulkLoadTest, NaiveScanPathMatchesIndexPath) {
  auto db = GenerateTpch({0.001, 5});
  ASSERT_TRUE(db.ok());
  const Table& orders = **db->FindTable("orders");
  size_t cut;
  RowBlock tail = TailRows(orders, 0.8, &cut);
  Database head_db = TruncatedCopy(*db, "orders", cut);

  auto make_pdb = [&]() {
    PartitioningConfig config(&head_db.schema(), 4);
    EXPECT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
    EXPECT_TRUE(
        config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
    auto pdb = PartitionDatabase(head_db, std::move(config));
    EXPECT_TRUE(pdb.ok());
    return std::move(*pdb);
  };
  auto with_index = make_pdb();
  auto without_index = make_pdb();
  TableId o_id = *head_db.schema().FindTable("orders");

  BulkLoader indexed(true), naive(false);
  auto s1 = indexed.Append(with_index.get(), o_id, tail);
  auto s2 = naive.Append(without_index.get(), o_id, tail);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_GT(s2->scan_probes, 0u);
  EXPECT_EQ(s1->copies_written, s2->copies_written);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(with_index->GetTable(o_id)->partition(p).rows.num_rows(),
              without_index->GetTable(o_id)->partition(p).rows.num_rows());
  }
  CheckPrefInvariants(*db, *without_index, o_id);
}

TEST(BulkLoadTest, OrphansRoundRobin) {
  auto db = GenerateTpch({0.001, 5});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config(&db->schema(), 4);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db, std::move(config));
  ASSERT_TRUE(pdb.ok());
  TableId o_id = *db->schema().FindTable("orders");
  // Insert 8 orders with order keys that have no lineitems.
  RowBlock extra(&db->schema().table(o_id));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(extra
                    .AppendRowValues({Value(int64_t{9000000 + i}), Value(int64_t{1}),
                                      Value(std::string("O")), Value(1.0),
                                      Value(int64_t{100}), Value(std::string("1-URGENT")),
                                      Value(int64_t{0})})
                    .ok());
  }
  std::vector<size_t> before(4);
  for (int p = 0; p < 4; ++p) {
    before[static_cast<size_t>(p)] =
        (*pdb)->GetTable(o_id)->partition(p).rows.num_rows();
  }
  BulkLoader loader;
  auto stats = loader.Append(pdb->get(), o_id, extra);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->copies_written, 8u);
  // Exactly two orphans per partition (round-robin of 8 over 4).
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ((*pdb)->GetTable(o_id)->partition(p).rows.num_rows(),
              before[static_cast<size_t>(p)] + 2);
  }
}

TEST(BulkLoadTest, MaintainsOwnPartitionIndexForDownstreamLoads) {
  // orders is PREF on lineitem; customer is PREF on orders. §2.3 requires
  // a referenced table to be fully loaded before its referencing table, so
  // the initial database here holds no customers at all: orders' tail is
  // bulk loaded first, then every customer routes via the *updated* orders
  // partition index.
  auto db = GenerateTpch({0.001, 11});
  ASSERT_TRUE(db.ok());
  const Table& customer = **db->FindTable("customer");
  size_t ccut;
  RowBlock ctail = TailRows(customer, 0.0, &ccut);  // all customers
  const Table& orders = **db->FindTable("orders");
  size_t ocut;
  RowBlock otail = TailRows(orders, 0.5, &ocut);

  Database head_db = TruncatedCopy(*db, "orders", ocut);
  Database head2 = TruncatedCopy(head_db, "customer", ccut);

  PartitioningConfig config(&head2.schema(), 4);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}).ok());
  auto pdb = PartitionDatabase(head2, std::move(config));
  ASSERT_TRUE(pdb.ok());

  TableId o_id = *head2.schema().FindTable("orders");
  TableId c_id = *head2.schema().FindTable("customer");
  BulkLoader loader;
  ASSERT_TRUE(loader.Append(pdb->get(), o_id, otail).ok());
  ASSERT_TRUE(loader.Append(pdb->get(), c_id, ctail).ok());
  CheckPrefInvariants(*db, **pdb, o_id);
  CheckPrefInvariants(*db, **pdb, c_id);
}

TEST(BulkLoadTest, ErrorsOnUnknownTableAndBadArity) {
  auto db = GenerateTpch({0.001, 3});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config(&db->schema(), 2);
  ASSERT_TRUE(config.AddHash("orders", {"o_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db, std::move(config));
  ASSERT_TRUE(pdb.ok());
  BulkLoader loader;
  TableId c_id = *db->schema().FindTable("customer");
  RowBlock rows(&db->schema().table(c_id));
  EXPECT_TRUE(loader.Append(pdb->get(), c_id, rows).status().IsNotFound());
  TableId o_id = *db->schema().FindTable("orders");
  RowBlock bad({DataType::kInt64});
  EXPECT_TRUE(loader.Append(pdb->get(), o_id, bad).status().IsInvalid());
}

}  // namespace
}  // namespace pref
