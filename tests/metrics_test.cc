// Tests for the runtime metrics registry: counter exactness under
// concurrent increments from the ThreadPool, histogram bucket boundary
// semantics, gauge high-water marks, and the JSON snapshot.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"

namespace pref {
namespace {

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Counter c;
  ThreadPool pool(4);
  const int kIters = 9999;  // multiple of 3
  pool.ParallelFor(kIters, [&](int i) { c.Add(static_cast<uint64_t>(i % 3 + 1)); });
#if PREF_METRICS
  // sum over i of (i % 3 + 1) = kIters / 3 * (1 + 2 + 3).
  EXPECT_EQ(c.Get(), static_cast<uint64_t>(kIters) / 3 * 6);
#else
  EXPECT_EQ(c.Get(), 0u);
#endif
  c.Reset();
  EXPECT_EQ(c.Get(), 0u);
}

TEST(Gauge, SetMaxKeepsHighWaterMark) {
  Gauge g;
  g.SetMax(5);
  g.SetMax(3);
#if PREF_METRICS
  EXPECT_EQ(g.Get(), 5);
  g.SetMax(9);
  EXPECT_EQ(g.Get(), 9);
  g.Set(-2);
  EXPECT_EQ(g.Get(), -2);
#endif
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 10.0});
  ASSERT_EQ(h.num_buckets(), 3u);  // (-inf,1], (1,10], (10,inf)
  h.Observe(0.5);
  h.Observe(1.0);   // boundary value lands in the lower bucket
  h.Observe(1.5);
  h.Observe(10.0);  // boundary value lands in the lower bucket
  h.Observe(11.0);
#if PREF_METRICS
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 10.0 + 11.0);
#endif
}

TEST(Histogram, QuantileInterpolatesWithinBuckets) {
  Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty histogram
  h.Observe(0.5);
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(5.0);
#if PREF_METRICS
  // Nearest rank over 4 samples: q=0.25 → rank 1 of the 2 in (0,1] →
  // halfway through the first bucket; q=0.75 → rank 3, first of the 2 in
  // (1,10] → halfway through the second.
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 5.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
  // Out-of-range q clamps instead of reading past the buckets.
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
#endif
}

TEST(Histogram, QuantileInOverflowBucketReportsLastFiniteBound) {
  Histogram h({1.0, 10.0});
  h.Observe(100.0);
  h.Observe(200.0);
#if PREF_METRICS
  // The overflow bucket has no upper edge; the quantile saturates at the
  // largest finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);
#endif
}

TEST(Histogram, SingleBucketQuantileEdgeCases) {
  // One finite bound: bucket (0, 10] plus the overflow bucket.
  Histogram h({10.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty histogram reports 0
  for (int i = 0; i < 4; ++i) h.Observe(1.0);
#if PREF_METRICS
  // All four observations land in the single finite bucket, so every
  // quantile interpolates linearly between 0 and the bound.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 2.5);  // clamps to rank 1 of 4
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
#endif
}

TEST(Histogram, SingleBucketOverflowOnlyReportsTheBound) {
  Histogram h({10.0});
  h.Observe(99.0);  // only the overflow bucket is populated
#if PREF_METRICS
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.01), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 10.0);
#endif
}

TEST(Histogram, ConcurrentObservationsKeepTotalExact) {
  Histogram h({0.5});
  ThreadPool pool(4);
  const int kIters = 20000;
  pool.ParallelFor(kIters, [&](int i) { h.Observe(i % 2 == 0 ? 0.25 : 0.75); });
#if PREF_METRICS
  EXPECT_EQ(h.TotalCount(), static_cast<uint64_t>(kIters));
  EXPECT_EQ(h.BucketCount(0), static_cast<uint64_t>(kIters) / 2);
  EXPECT_EQ(h.BucketCount(1), static_cast<uint64_t>(kIters) / 2);
#endif
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  Histogram& ha = registry.GetHistogram("x.latency");
  Histogram& hb = registry.GetHistogram("x.latency");
  EXPECT_EQ(&ha, &hb);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("b.count");
  registry.GetCounter("a.count");
  registry.GetGauge("c.depth");
  std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.count");
  EXPECT_EQ(samples[1].name, "b.count");
  EXPECT_EQ(samples[2].name, "c.depth");
}

TEST(MetricsRegistry, WriteJsonEmitsValidJson) {
  MetricsRegistry registry;
  registry.GetCounter("load.rows").Add(7);
  registry.GetGauge("pool.depth").SetMax(3);
  registry.GetHistogram("engine.seconds").Observe(0.01);
  std::ostringstream os;
  registry.WriteJson(os);
  std::vector<std::string> keys;
  ASSERT_TRUE(JsonValidator::Valid(os.str(), &keys)) << os.str();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "counters");
  EXPECT_EQ(keys[1], "gauges");
  EXPECT_EQ(keys[2], "histograms");
}

TEST(MetricsRegistry, ResetAllZeroesEverything) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  Histogram& h = registry.GetHistogram("h");
  c.Add(5);
  h.Observe(1.0);
  registry.ResetAll();
  EXPECT_EQ(c.Get(), 0u);
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(MetricsRegistry, PoolInstrumentsAreRegistered) {
  // The default pool registers its instruments on first use; run one
  // parallel loop and check the counters exist and (when compiled in)
  // reflect the work.
  Counter& tasks = MetricsRegistry::Default().GetCounter("pool.tasks_executed");
  uint64_t before = tasks.Get();
  ThreadPool::Default().ParallelFor(64, [](int) {});
  EXPECT_GE(tasks.Get(), before);
}

}  // namespace
}  // namespace pref
