// Tests for the workload-driven design (§4): per-query MASTs, containment
// merging (phase 1), cost-based DP merging (phase 2), and the emitted
// deployment.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "design/query_graph.h"
#include "design/wd_design.h"
#include "partition/partitioner.h"
#include "test_util.h"

namespace pref {
namespace {

QueryGraph Q(const Schema& schema, const std::string& name,
             std::vector<std::array<const char*, 4>> joins) {
  QueryGraphBuilder b(&schema, name);
  for (const auto& j : joins) b.Join(j[0], j[1], j[2], j[3]);
  auto g = b.Build();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return *g;
}

std::vector<QueryGraph> Figure5ishWorkload(const Schema& s) {
  // Mirrors the shape of Figure 5: Q2 contained in Q1, Q4 contained in Q3,
  // and the two residual MASTs mergeable without a cycle.
  return {
      Q(s, "Q1",
        {{"lineitem", "l_orderkey", "orders", "o_orderkey"},
         {"orders", "o_custkey", "customer", "c_custkey"}}),
      Q(s, "Q2", {{"lineitem", "l_orderkey", "orders", "o_orderkey"}}),
      Q(s, "Q3",
        {{"lineitem", "l_suppkey", "supplier", "s_suppkey"},
         {"supplier", "s_nationkey", "nation", "n_nationkey"}}),
      Q(s, "Q4", {{"supplier", "s_nationkey", "nation", "n_nationkey"}}),
  };
}

TEST(QueryGraphTest, BuilderResolvesNames) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  auto g = QueryGraphBuilder(&db->schema(), "q")
               .Join("orders", "o_custkey", "customer", "c_custkey")
               .Table("nation")
               .Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->tables.size(), 3u);
  EXPECT_EQ(g->equi_joins.size(), 1u);
  EXPECT_FALSE(QueryGraphBuilder(&db->schema(), "bad")
                   .Join("orders", "nope", "customer", "c_custkey")
                   .Build()
                   .ok());
}

TEST(WdDesignTest, ContainmentMergeReducesComponents) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  WdOptions options;
  options.num_partitions = 10;
  auto result = WorkloadDrivenDesign(*db, Figure5ishWorkload(db->schema()), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->initial_components, 4);
  EXPECT_EQ(result->components_after_phase1, 2);
  EXPECT_LE(result->components_after_phase2, 2);
  EXPECT_GE(result->components_after_phase2, 1);
  EXPECT_EQ(result->deployment.configs().size(),
            static_cast<size_t>(result->components_after_phase2));
}

TEST(WdDesignTest, DeploymentConfigsAreValidAndMaterialize) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  WdOptions options;
  options.num_partitions = 6;
  auto result = WorkloadDrivenDesign(*db, Figure5ishWorkload(db->schema()), options);
  ASSERT_TRUE(result.ok());
  auto pdbs = result->deployment.Materialize(*db);
  ASSERT_TRUE(pdbs.ok());
  for (size_t i = 0; i < pdbs->size(); ++i) {
    const auto& config = result->deployment.configs()[i];
    for (const auto& [table, spec] : config.specs()) {
      if (spec.method == PartitionMethod::kPref) {
        CheckPrefInvariants(*db, *(*pdbs)[i], table);
      }
    }
  }
}

TEST(WdDesignTest, QueriesRouteToTheirMast) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  WdOptions options;
  options.num_partitions = 10;
  auto workload = Figure5ishWorkload(db->schema());
  auto result = WorkloadDrivenDesign(*db, workload, options);
  ASSERT_TRUE(result.ok());
  for (const auto& q : workload) {
    const PartitioningConfig* routed = result->deployment.RouteQuery(q.tables);
    ASSERT_NE(routed, nullptr) << q.name;
    // Every join edge of the query is local under the routed config (the
    // WD guarantee: per-query data-locality maximized; these queries are
    // trees so nothing is cut).
    for (const auto& p : q.equi_joins) {
      EXPECT_TRUE(EdgeIsLocal(*routed, p)) << q.name;
    }
  }
}

TEST(WdDesignTest, ReplicatedTablesExcludedFromGraphs) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  WdOptions options;
  options.num_partitions = 10;
  options.replicate_tables = {"nation", "region", "supplier"};
  auto workload = Figure5ishWorkload(db->schema());
  auto result = WorkloadDrivenDesign(*db, workload, options);
  ASSERT_TRUE(result.ok());
  // Q3 loses its supplier/nation edges entirely; Q4 vanishes. Only the
  // C-O-L component remains.
  EXPECT_EQ(result->initial_components, 2);  // Q1 and Q2 components
  EXPECT_EQ(result->components_after_phase1, 1);
  // Replicated tables present in every emitted config.
  for (const auto& config : result->deployment.configs()) {
    EXPECT_TRUE(config.Contains(*db->schema().FindTable("nation")));
    EXPECT_EQ(config.spec(*db->schema().FindTable("nation")).method,
              PartitionMethod::kReplicated);
  }
}

TEST(WdDesignTest, CyclicQueryGraphStillGetsTreeConfig) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  // A query joining L-O, O-C and also L-S, S-N, C-N closes the cycle
  // O-C-N-S-L: the MAST must drop the lightest edge.
  auto q = Q(db->schema(), "cyclic",
             {{"lineitem", "l_orderkey", "orders", "o_orderkey"},
              {"orders", "o_custkey", "customer", "c_custkey"},
              {"lineitem", "l_suppkey", "supplier", "s_suppkey"},
              {"supplier", "s_nationkey", "nation", "n_nationkey"},
              {"customer", "c_nationkey", "nation", "n_nationkey"}});
  WdOptions options;
  options.num_partitions = 10;
  auto result = WorkloadDrivenDesign(*db, {q}, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->final_masts.size(), 1u);
  EXPECT_EQ(result->final_masts[0].edges.size(), 4u);  // 5 nodes, tree
}

TEST(WdDesignTest, MergeOnlyWhenItShrinksTotalSize) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  // Two disjoint single-edge queries over the same big table pair vs
  // disjoint pairs: identical queries must merge to one component.
  auto q1 = Q(db->schema(), "a", {{"lineitem", "l_orderkey", "orders", "o_orderkey"}});
  auto q2 = Q(db->schema(), "b", {{"lineitem", "l_orderkey", "orders", "o_orderkey"}});
  WdOptions options;
  options.num_partitions = 10;
  auto result = WorkloadDrivenDesign(*db, {q1, q2}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->components_after_phase1, 1);  // identical -> contained
  EXPECT_EQ(result->components_after_phase2, 1);
}

TEST(WdDesignTest, EmptyWorkloadYieldsEmptyDeployment) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  WdOptions options;
  auto result = WorkloadDrivenDesign(*db, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->components_after_phase2, 0);
  EXPECT_TRUE(result->deployment.configs().empty());
}

}  // namespace
}  // namespace pref
