// Tests for the SQL front end: lexing, parsing to QuerySpec, filter
// pushdown, and end-to-end execution equivalence with builder-made queries.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "partition/presets.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace pref {
namespace {

using sql::ParseQuery;
using sql::Tokenize;
using sql::TokenKind;

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a.b, c FROM t WHERE x >= 1.5 AND y <> 'hi'");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], TokenKind::kKeyword);     // SELECT
  EXPECT_EQ(kinds[1], TokenKind::kIdentifier);  // a.b
  EXPECT_EQ((*tokens)[1].text, "a.b");
  EXPECT_EQ(kinds[2], TokenKind::kComma);
  EXPECT_EQ(kinds.back(), TokenKind::kEnd);
  // ">=" and "<>" fold into single tokens.
  bool has_ge = false, has_ne = false, has_float = false, has_str = false;
  for (const auto& t : *tokens) {
    has_ge |= t.kind == TokenKind::kGe;
    has_ne |= t.kind == TokenKind::kNe;
    has_float |= t.kind == TokenKind::kFloat && t.float_value == 1.5;
    has_str |= t.kind == TokenKind::kString && t.text == "hi";
  }
  EXPECT_TRUE(has_ge && has_ne && has_float && has_str);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ; b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(LexerTest, NegativeNumbers) {
  auto tokens = Tokenize("x = -42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].int_value, -42);
}

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    auto pdb = PartitionDatabase(*db_, MakeTpchSdManual(db_->schema(), 4));
    ASSERT_TRUE(pdb.ok());
    pdb_ = std::move(*pdb);
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<PartitionedDatabase> pdb_;
};

TEST_F(SqlTest, SimpleProjection) {
  auto q = ParseQuery(db_->schema(),
                      "SELECT c_custkey, c_name FROM customer "
                      "WHERE c_mktsegment = 'BUILDING'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->projection, (std::vector<std::string>{"c_custkey", "c_name"}));
  // Filter pushed down to the customer scan.
  EXPECT_FALSE(q->table_filters[0].empty());
  EXPECT_TRUE(q->residual_filter.empty());
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rows.num_rows(), 0u);
}

TEST_F(SqlTest, AggregationWithGroupBy) {
  auto q = ParseQuery(db_->schema(),
                      "SELECT o_orderstatus, SUM(o_totalprice) AS revenue, COUNT(*) "
                      "FROM orders GROUP BY o_orderstatus");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregates.size(), 2u);
  EXPECT_EQ(q->aggregates[0].output_name, "revenue");
  EXPECT_EQ(q->aggregates[1].func, AggFunc::kCountStar);
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.num_rows(), 2u);  // F and O
}

TEST_F(SqlTest, JoinsWithOnConditions) {
  auto q = ParseQuery(db_->schema(),
                      "SELECT c_name, SUM(o_totalprice) AS revenue "
                      "FROM orders JOIN customer ON o_custkey = c_custkey "
                      "GROUP BY c_name");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].left_columns[0], "o_custkey");
  EXPECT_EQ(q->joins[0].right_columns[0], "c_custkey");
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rows.num_rows(), 0u);
}

TEST_F(SqlTest, JoinOrientationIsAutodetected) {
  // ON written "backwards" still orients correctly.
  auto q = ParseQuery(db_->schema(),
                      "SELECT COUNT(*) FROM orders "
                      "JOIN customer ON c_custkey = o_custkey");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->joins[0].left_columns[0], "o_custkey");
  EXPECT_EQ(q->joins[0].right_columns[0], "c_custkey");
}

TEST_F(SqlTest, SemiAndAntiJoins) {
  auto semi = ParseQuery(db_->schema(),
                         "SELECT COUNT(*) FROM customer "
                         "SEMI JOIN orders ON c_custkey = o_custkey");
  auto anti = ParseQuery(db_->schema(),
                         "SELECT COUNT(*) FROM customer "
                         "ANTI JOIN orders ON c_custkey = o_custkey");
  ASSERT_TRUE(semi.ok() && anti.ok());
  EXPECT_EQ(semi->joins[0].type, JoinType::kSemi);
  EXPECT_EQ(anti->joins[0].type, JoinType::kAnti);
  auto rs = ExecuteQuery(*semi, *pdb_);
  auto ra = ExecuteQuery(*anti, *pdb_);
  ASSERT_TRUE(rs.ok() && ra.ok());
  EXPECT_EQ(rs->rows.column(0).GetInt64(0) + ra->rows.column(0).GetInt64(0),
            static_cast<int64_t>((*db_->FindTable("customer"))->num_rows()));
}

TEST_F(SqlTest, MultiColumnJoin) {
  auto q = ParseQuery(db_->schema(),
                      "SELECT SUM(ps_supplycost) FROM lineitem "
                      "JOIN partsupp ON l_partkey = ps_partkey AND "
                      "l_suppkey = ps_suppkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->joins[0].left_columns.size(), 2u);
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
}

TEST_F(SqlTest, WhereDnfAndPushdown) {
  auto q = ParseQuery(
      db_->schema(),
      "SELECT COUNT(*) FROM customer WHERE "
      "(c_mktsegment = 'BUILDING' AND c_acctbal > 0.0) OR "
      "c_mktsegment = 'MACHINERY'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // All predicates over customer: pushed to the table filter as 2-way DNF.
  EXPECT_EQ(q->table_filters[0].disjuncts.size(), 2u);
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
}

TEST_F(SqlTest, CrossTableDisjunctionBecomesResidual) {
  auto q = ParseQuery(db_->schema(),
                      "SELECT COUNT(*) FROM orders "
                      "JOIN customer ON o_custkey = c_custkey "
                      "WHERE c_mktsegment = 'BUILDING' OR o_totalprice > 100.0");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->residual_filter.disjuncts.size(), 2u);
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
}

TEST_F(SqlTest, BetweenAndNot) {
  auto q = ParseQuery(db_->schema(),
                      "SELECT COUNT(*) FROM lineitem WHERE "
                      "l_quantity BETWEEN 10.0 AND 20.0 AND NOT l_returnflag = 'R'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& conj = q->table_filters[0].disjuncts[0];
  ASSERT_EQ(conj.size(), 2u);
  EXPECT_EQ(conj[0].op, CompareOp::kBetween);
  EXPECT_EQ(conj[1].op, CompareOp::kNe);
}

TEST_F(SqlTest, AliasedSelfJoin) {
  auto q = ParseQuery(db_->schema(),
                      "SELECT COUNT(*) FROM orders o1 "
                      "JOIN orders o2 ON o1.o_custkey = o2.o_custkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rows.column(0).GetInt64(0), 0);
}

TEST_F(SqlTest, SqlMatchesBuilderResult) {
  // The Figure 3 query written in SQL equals the builder version.
  auto sql_q = ParseQuery(db_->schema(),
                          "SELECT c_name, SUM(o_totalprice) AS revenue "
                          "FROM orders JOIN customer ON o_custkey = c_custkey "
                          "GROUP BY c_name");
  auto built = QueryBuilder(&db_->schema(), "fig3")
                   .From("orders")
                   .Join("customer", "o_custkey", "c_custkey")
                   .GroupBy({"c_name"})
                   .Agg(AggFunc::kSum, "o_totalprice", "revenue")
                   .Build();
  ASSERT_TRUE(sql_q.ok() && built.ok());
  auto a = ExecuteQuery(*sql_q, *pdb_);
  auto b = ExecuteQuery(*built, *pdb_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows.num_rows(), b->rows.num_rows());
}

TEST_F(SqlTest, ParseErrors) {
  EXPECT_FALSE(ParseQuery(db_->schema(), "SELEC x FROM t").ok());
  EXPECT_FALSE(ParseQuery(db_->schema(), "SELECT x FROM no_such_table").ok());
  EXPECT_FALSE(ParseQuery(db_->schema(), "SELECT c_name FROM customer GROUP BY").ok());
  EXPECT_FALSE(
      ParseQuery(db_->schema(), "SELECT c_name FROM customer WHERE c_name").ok());
  EXPECT_FALSE(ParseQuery(db_->schema(),
                          "SELECT c_name, SUM(c_acctbal) FROM customer "
                          "GROUP BY c_custkey")
                   .ok());  // c_name not grouped
  EXPECT_FALSE(ParseQuery(db_->schema(),
                          "SELECT COUNT(*) FROM customer JOIN orders ON "
                          "c_custkey = c_custkey")
                   .ok());  // join does not link the new table
  EXPECT_FALSE(ParseQuery(db_->schema(), "SELECT * FROM customer extra tokens").ok());
}

TEST_F(SqlTest, SelectStar) {
  auto q = ParseQuery(db_->schema(), "SELECT * FROM region");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->projection.empty());
  EXPECT_TRUE(q->aggregates.empty());
}

}  // namespace
}  // namespace pref
