// QueryScheduler tests (DESIGN.md §10): concurrent serving must be
// *invisible* in the results — N clients multiplexed over one pool get
// bit-identical rows and equal per-query ExecStats to an isolated serial
// run — plus admission control, cancellation, and deadline behavior.
//
// Runs under ThreadSanitizer and AddressSanitizer in CI.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/tpch_gen.h"
#include "engine/scheduler.h"
#include "test_util.h"
#include "workloads/tpch_queries.h"

namespace pref {
namespace {

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Bit-exact result comparison (same contract as executor_parallel_test):
/// row count, row order, and per-cell equality with doubles compared by
/// bit pattern.
void ExpectBitIdentical(const QueryResult& a, const QueryResult& b,
                        const std::string& label) {
  ASSERT_EQ(a.rows.num_rows(), b.rows.num_rows()) << label;
  ASSERT_EQ(a.rows.num_columns(), b.rows.num_columns()) << label;
  EXPECT_EQ(a.column_names, b.column_names) << label;
  for (int c = 0; c < a.rows.num_columns(); ++c) {
    const Column& ca = a.rows.column(c);
    const Column& cb = b.rows.column(c);
    for (size_t r = 0; r < a.rows.num_rows(); ++r) {
      if (ca.is_double()) {
        EXPECT_EQ(DoubleBits(ca.GetDouble(r)), DoubleBits(cb.GetDouble(r)))
            << label << " col " << c << " row " << r;
      } else if (ca.is_int()) {
        EXPECT_EQ(ca.GetInt64(r), cb.GetInt64(r))
            << label << " col " << c << " row " << r;
      } else {
        EXPECT_EQ(ca.GetString(r), cb.GetString(r))
            << label << " col " << c << " row " << r;
      }
    }
  }
}

/// Per-query ExecStats must agree on everything except wall-clock —
/// including the per-query morsel counters (scan_*/agg_*), which is
/// exactly what the per-query stats scoping fix guarantees: another
/// query's morsels never leak into this query's counts.
void ExpectStatsEqual(const ExecStats& a, const ExecStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.bytes_shuffled, b.bytes_shuffled) << label;
  EXPECT_EQ(a.rows_shuffled, b.rows_shuffled) << label;
  EXPECT_EQ(a.exchanges, b.exchanges) << label;
  EXPECT_EQ(a.total_rows_processed, b.total_rows_processed) << label;
  EXPECT_EQ(a.node_rows, b.node_rows) << label;
  EXPECT_EQ(a.scan_morsels, b.scan_morsels) << label;
  EXPECT_EQ(a.scan_rows, b.scan_rows) << label;
  EXPECT_EQ(a.agg_morsels, b.agg_morsels) << label;
  EXPECT_EQ(a.agg_rows, b.agg_rows) << label;
  EXPECT_EQ(a.agg_groups, b.agg_groups) << label;
  ASSERT_EQ(a.operators.size(), b.operators.size()) << label;
  for (size_t i = 0; i < a.operators.size(); ++i) {
    const OperatorStats& oa = a.operators[i];
    const OperatorStats& ob = b.operators[i];
    EXPECT_EQ(oa.op, ob.op) << label << " op " << i;
    EXPECT_EQ(oa.parent, ob.parent) << label << " op " << i;
    EXPECT_EQ(oa.rows_in, ob.rows_in) << label << " op " << oa.op;
    EXPECT_EQ(oa.rows_out, ob.rows_out) << label << " op " << oa.op;
    EXPECT_EQ(oa.rows_processed, ob.rows_processed) << label << " op " << oa.op;
    EXPECT_EQ(oa.rows_shuffled, ob.rows_shuffled) << label << " op " << oa.op;
    EXPECT_EQ(oa.bytes_shuffled, ob.bytes_shuffled) << label << " op " << oa.op;
    EXPECT_EQ(oa.exchanges, ob.exchanges) << label << " op " << oa.op;
    EXPECT_EQ(oa.node_rows, ob.node_rows) << label << " op " << oa.op;
  }
}

class SchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Same setup as executor_parallel_test: SF large enough that lineitem
    // partitions span multiple morsels, so concurrent queries genuinely
    // interleave fan-out tasks on the shared pool.
    auto db = GenerateTpch({0.01, 42});
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    auto pdb = PartitionDatabase(*db_, MakeTpchSdManual(db_->schema(), 4));
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    pdb_ = pdb->release();
  }

  static void TearDownTestSuite() {
    delete pdb_;
    pdb_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static PartitionedDatabase* pdb_;
};

Database* SchedulerTest::db_ = nullptr;
PartitionedDatabase* SchedulerTest::pdb_ = nullptr;

TEST_F(SchedulerTest, ConcurrentMatchesIsolatedSerialRun) {
  // The headline invariant: the full TPC-H mix submitted through the
  // scheduler at N ∈ {2, 4, 8} concurrent clients returns, per query, the
  // same bits and the same ExecStats as an isolated serial run.
  ThreadPool serial(1);
  const auto queries = TpchQueries(db_->schema());
  std::vector<QueryResult> baseline;
  for (const QuerySpec& q : queries) {
    auto r = ExecuteQuery(q, *pdb_, {}, {}, &serial);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    baseline.push_back(std::move(*r));
  }

  ThreadPool pool(4);
  for (int clients : {2, 4, 8}) {
    QueryScheduler scheduler(*pdb_, {clients, &pool});
    std::map<uint64_t, size_t> submitted;  // id → query index
    for (size_t i = 0; i < queries.size(); ++i) {
      submitted.emplace(scheduler.Submit(queries[i]), i);
    }
    // Drain in completion order (out-of-order by design).
    for (size_t n = 0; n < queries.size(); ++n) {
      const uint64_t id = scheduler.WaitAny();
      ASSERT_NE(id, 0u);
      auto it = submitted.find(id);
      ASSERT_NE(it, submitted.end());
      const QuerySpec& q = queries[it->second];
      auto result = scheduler.Take(id);
      ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
      const std::string label = q.name + " @" + std::to_string(clients);
      ExpectBitIdentical(baseline[it->second], *result, label);
      ExpectStatsEqual(baseline[it->second].stats, result->stats, label);
      submitted.erase(it);
    }
    EXPECT_EQ(scheduler.WaitAny(), 0u);  // nothing pending
    EXPECT_TRUE(submitted.empty());
  }
}

TEST_F(SchedulerTest, AdmissionBoundHoldsQueriesInBacklog) {
  // A 1-lane pool has no workers, so nothing executes until a waiter lends
  // its thread — the launch/backlog state right after Submit is exact.
  ThreadPool lane(1);
  QueryScheduler scheduler(*pdb_, {2, &lane});
  const auto queries = TpchQueries(db_->schema());
  ASSERT_GE(queries.size(), 5u);
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < 5; ++i) ids.push_back(scheduler.Submit(queries[i]));
  EXPECT_EQ(scheduler.InFlight(), 2);  // bound, not 5
  EXPECT_EQ(scheduler.Backlog(), 3);
  for (uint64_t id : ids) {
    auto result = scheduler.Take(id);  // the Take executes the queries
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(scheduler.InFlight(), 0);
  EXPECT_EQ(scheduler.Backlog(), 0);
}

TEST_F(SchedulerTest, CancelQueuedQueryCompletesImmediately) {
  ThreadPool lane(1);
  QueryScheduler scheduler(*pdb_, {1, &lane});
  const auto queries = TpchQueries(db_->schema());
  const uint64_t running = scheduler.Submit(queries[0]);
  const uint64_t queued = scheduler.Submit(queries[1]);
  EXPECT_EQ(scheduler.Backlog(), 1);
  scheduler.Cancel(queued);
  // The cancelled query is done *now* — WaitAny sees it without anything
  // having executed — and its slot never launches.
  EXPECT_EQ(scheduler.WaitAny(), queued);
  auto cancelled = scheduler.Take(queued);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled())
      << cancelled.status().ToString();
  auto result = scheduler.Take(running);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(SchedulerTest, CancelBeforeExecutionYieldsCancelledStatus) {
  // On a 1-lane pool the query task is posted but not yet executed, so the
  // Cancel deterministically lands before the executor's first operator
  // poll: Take must drive the query and get Status::Cancelled back.
  ThreadPool lane(1);
  QueryScheduler scheduler(*pdb_, {1, &lane});
  const auto queries = TpchQueries(db_->schema());
  const uint64_t id = scheduler.Submit(queries[0]);
  EXPECT_EQ(scheduler.InFlight(), 1);
  scheduler.Cancel(id);
  auto result = scheduler.Take(id);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST_F(SchedulerTest, TimeoutCancelsQuery) {
  QueryScheduler scheduler(*pdb_);
  const auto queries = TpchQueries(db_->schema());
  SubmitOptions options;
  // A deadline below clock resolution has always expired by the first
  // operator-boundary poll, so the outcome is deterministic.
  options.timeout_seconds = 1e-12;
  const uint64_t id = scheduler.Submit(queries[0], options);
  auto result = scheduler.Take(id);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
}

TEST_F(SchedulerTest, TakeIsOnceAndUnknownIdsAreErrors) {
  QueryScheduler scheduler(*pdb_);
  const auto queries = TpchQueries(db_->schema());
  const uint64_t id = scheduler.Submit(queries[0]);
  EXPECT_TRUE(scheduler.Take(id).ok());
  auto again = scheduler.Take(id);
  EXPECT_FALSE(again.ok());
  auto unknown = scheduler.Take(999999);
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(scheduler.WaitAny(), 0u);
}

TEST_F(SchedulerTest, DestructorDrainsUntakenQueries) {
  // Submitting and never Taking must not leak, deadlock, or touch freed
  // entries: the destructor waits for every query to finish.
  ThreadPool pool(4);
  {
    QueryScheduler scheduler(*pdb_, {4, &pool});
    const auto queries = TpchQueries(db_->schema());
    for (size_t i = 0; i < 6; ++i) scheduler.Submit(queries[i]);
  }  // ~QueryScheduler drains
}

}  // namespace
}  // namespace pref
