// Tests for RANGE partitioning: routing, bulk loading, PREF chains rooted
// at range/round-robin seeds (Definition 1 allows any scheme for the
// referenced table), and the engine's locality on such chains.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "partition/bulk_loader.h"
#include "partition/partitioner.h"
#include "partition/presets.h"
#include "test_util.h"

namespace pref {
namespace {

class RangePartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
  }

  /// Range bounds splitting [1, n_orders] into 4 partitions.
  std::vector<Value> OrderBounds() {
    int64_t n = static_cast<int64_t>((*db_->FindTable("orders"))->num_rows());
    return {Value(n / 4), Value(n / 2), Value(3 * n / 4)};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(RangePartitionTest, RoutesByBounds) {
  PartitioningConfig config(&db_->schema(), 4);
  ASSERT_TRUE(config.AddRange("orders", "o_orderkey", OrderBounds()).ok());
  auto pdb = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(pdb.ok());
  const PartitionedTable* o = (*pdb)->GetTable(*db_->schema().FindTable("orders"));
  auto bounds = OrderBounds();
  for (int p = 0; p < 4; ++p) {
    const RowBlock& rows = o->partition(p).rows;
    for (int64_t key : rows.column(0).ints()) {
      if (p > 0) {
        EXPECT_GE(key, bounds[static_cast<size_t>(p) - 1].AsInt64());
      }
      if (p < 3) {
        EXPECT_LT(key, bounds[static_cast<size_t>(p)].AsInt64());
      }
    }
  }
  EXPECT_EQ(o->TotalRows(), (*db_->FindTable("orders"))->num_rows());
}

TEST_F(RangePartitionTest, ValidatesBounds) {
  PartitioningConfig config(&db_->schema(), 4);
  EXPECT_TRUE(config.AddRange("orders", "o_orderkey", {Value(int64_t{5})})
                  .IsInvalid());  // too few
  EXPECT_TRUE(config
                  .AddRange("orders", "o_orderkey",
                            {Value(int64_t{5}), Value(int64_t{5}), Value(int64_t{9})})
                  .IsInvalid());  // not ascending
  EXPECT_FALSE(config.AddRange("orders", "nope", OrderBounds()).ok());
}

TEST_F(RangePartitionTest, PrefOnRangeSeedSatisfiesDefinition1) {
  PartitioningConfig config(&db_->schema(), 4);
  ASSERT_TRUE(config.AddRange("orders", "o_orderkey", OrderBounds()).ok());
  ASSERT_TRUE(
      config.AddPref("lineitem", {"l_orderkey"}, "orders", {"o_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(pdb.ok());
  CheckPrefInvariants(*db_, **pdb, *db_->schema().FindTable("lineitem"));
  // Orders are range-placed by key, so each lineitem has exactly one
  // partner partition: no duplicates.
  const PartitionedTable* l = (*pdb)->GetTable(*db_->schema().FindTable("lineitem"));
  EXPECT_EQ(l->TotalRows(), (*db_->FindTable("lineitem"))->num_rows());
}

TEST_F(RangePartitionTest, PrefOnRangeSeedJoinsLocally) {
  PartitioningConfig config(&db_->schema(), 4);
  ASSERT_TRUE(config.AddRange("orders", "o_orderkey", OrderBounds()).ok());
  ASSERT_TRUE(
      config.AddPref("lineitem", {"l_orderkey"}, "orders", {"o_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(pdb.ok());
  auto q = QueryBuilder(&db_->schema(), "range-join")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Agg(AggFunc::kSum, "l_extendedprice", "rev")
               .Build();
  ASSERT_TRUE(q.ok());
  auto r = ExecuteQuery(*q, **pdb);
  ASSERT_TRUE(r.ok());
  // Case (2) via placement faithfulness: only the partial-aggregate gather.
  EXPECT_EQ(r->stats.exchanges, 1);
  // Correctness against a reference execution.
  auto ref = PartitionDatabase(*db_, *MakeAllHashed(db_->schema(), 1));
  auto expected = ExecuteQuery(*q, **ref);
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(expected->rows.column(0).GetDouble(0), r->rows.column(0).GetDouble(0),
              std::abs(expected->rows.column(0).GetDouble(0)) * 1e-9);
}

TEST_F(RangePartitionTest, PrefOnRoundRobinSeedJoinsLocally) {
  PartitioningConfig config(&db_->schema(), 4);
  ASSERT_TRUE(config.AddRoundRobin("orders").ok());
  ASSERT_TRUE(
      config.AddPref("lineitem", {"l_orderkey"}, "orders", {"o_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(pdb.ok());
  CheckPrefInvariants(*db_, **pdb, *db_->schema().FindTable("lineitem"));
  auto q = QueryBuilder(&db_->schema(), "rr-join")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  ASSERT_TRUE(q.ok());
  auto r = ExecuteQuery(*q, **pdb);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.exchanges, 1);  // local despite the RR seed
  EXPECT_EQ(r->rows.column(0).GetInt64(0),
            static_cast<int64_t>((*db_->FindTable("lineitem"))->num_rows()));
}

TEST_F(RangePartitionTest, BulkLoadRoutesByRange) {
  PartitioningConfig config(&db_->schema(), 4);
  ASSERT_TRUE(config.AddRange("orders", "o_orderkey", OrderBounds()).ok());
  ASSERT_TRUE(config.Finalize().ok());
  PartitionedDatabase pdb(&*db_);
  TableId o_id = *db_->schema().FindTable("orders");
  ASSERT_TRUE(pdb.AddTable(o_id, config.spec(o_id)).ok());
  BulkLoader loader;
  auto stats = loader.Append(&pdb, o_id, (*db_->FindTable("orders"))->data());
  ASSERT_TRUE(stats.ok());
  // Same placement as the partitioner.
  auto direct = PartitionDatabase(*db_, config);
  ASSERT_TRUE(direct.ok());
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(pdb.GetTable(o_id)->partition(p).rows.num_rows(),
              (*direct)->GetTable(o_id)->partition(p).rows.num_rows());
  }
}

TEST_F(RangePartitionTest, SpecsEquivalentConsidersBounds) {
  auto b1 = PartitionSpec::Range(0, {Value(int64_t{10})}, 2);
  auto b2 = PartitionSpec::Range(0, {Value(int64_t{10})}, 2);
  auto b3 = PartitionSpec::Range(0, {Value(int64_t{20})}, 2);
  EXPECT_TRUE(SpecsEquivalent(b1, b2));
  EXPECT_FALSE(SpecsEquivalent(b1, b3));
}

TEST_F(RangePartitionTest, SkewedBoundsImbalanceVisible) {
  // Pathological bounds put everything into one partition — the library
  // does not rebalance (documented behavior); the data still round-trips.
  PartitioningConfig config(&db_->schema(), 3);
  ASSERT_TRUE(config
                  .AddRange("orders", "o_orderkey",
                            {Value(int64_t{-2}), Value(int64_t{-1})})
                  .ok());
  auto pdb = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(pdb.ok());
  const PartitionedTable* o = (*pdb)->GetTable(*db_->schema().FindTable("orders"));
  EXPECT_EQ(o->partition(0).rows.num_rows(), 0u);
  EXPECT_EQ(o->partition(1).rows.num_rows(), 0u);
  EXPECT_EQ(o->partition(2).rows.num_rows(),
            (*db_->FindTable("orders"))->num_rows());
}

}  // namespace
}  // namespace pref
