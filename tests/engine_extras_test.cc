// Tests for HAVING / ORDER BY / LIMIT (builder and SQL paths) and the
// EXPLAIN facade.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "partition/presets.h"
#include "sql/parser.h"
#include "test_util.h"

namespace pref {
namespace {

class EngineExtrasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    auto pdb = PartitionDatabase(*db_, MakeTpchSdManual(db_->schema(), 4));
    ASSERT_TRUE(pdb.ok());
    pdb_ = std::move(*pdb);
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<PartitionedDatabase> pdb_;
};

TEST_F(EngineExtrasTest, OrderByAscendingAndDescending) {
  auto q = QueryBuilder(&db_->schema(), "order")
               .From("orders")
               .GroupBy({"o_orderpriority"})
               .Agg(AggFunc::kCountStar, "", "cnt")
               .OrderBy("cnt", /*descending=*/true)
               .Build();
  ASSERT_TRUE(q.ok());
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r->rows.num_rows(), 2u);
  for (size_t i = 1; i < r->rows.num_rows(); ++i) {
    EXPECT_GE(r->rows.column(1).GetInt64(i - 1), r->rows.column(1).GetInt64(i));
  }
  // Ascending on the group key.
  auto q2 = QueryBuilder(&db_->schema(), "order2")
                .From("orders")
                .GroupBy({"o_orderpriority"})
                .Agg(AggFunc::kCountStar, "", "cnt")
                .OrderBy("o_orderpriority")
                .Build();
  auto r2 = ExecuteQuery(*q2, *pdb_);
  ASSERT_TRUE(r2.ok());
  for (size_t i = 1; i < r2->rows.num_rows(); ++i) {
    EXPECT_LE(r2->rows.column(0).GetString(i - 1), r2->rows.column(0).GetString(i));
  }
}

TEST_F(EngineExtrasTest, MultiKeySortIsStableLexicographic) {
  auto q = QueryBuilder(&db_->schema(), "multi")
               .From("orders")
               .GroupBy({"o_orderstatus", "o_orderpriority"})
               .Agg(AggFunc::kCountStar, "", "cnt")
               .OrderBy("o_orderstatus")
               .OrderBy("o_orderpriority", true)
               .Build();
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->rows.num_rows(); ++i) {
    const std::string& s0 = r->rows.column(0).GetString(i - 1);
    const std::string& s1 = r->rows.column(0).GetString(i);
    EXPECT_LE(s0, s1);
    if (s0 == s1) {
      EXPECT_GE(r->rows.column(1).GetString(i - 1), r->rows.column(1).GetString(i));
    }
  }
}

TEST_F(EngineExtrasTest, LimitTruncatesAfterSort) {
  auto q = QueryBuilder(&db_->schema(), "topk")
               .From("customer")
               .Project({"c_custkey", "c_acctbal"})
               .OrderBy("c_acctbal", true)
               .Limit(5)
               .Build();
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.num_rows(), 5u);
  // These must be the 5 largest balances in the base data.
  std::vector<double> balances;
  for (double v : (*db_->FindTable("customer"))->data().column(4).doubles()) {
    balances.push_back(v);
  }
  std::sort(balances.rbegin(), balances.rend());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(r->rows.column(1).GetDouble(i), balances[i]);
  }
}

TEST_F(EngineExtrasTest, LimitWithoutOrder) {
  auto q = QueryBuilder(&db_->schema(), "lim")
               .From("customer")
               .Project({"c_custkey"})
               .Limit(7)
               .Build();
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.num_rows(), 7u);
}

TEST_F(EngineExtrasTest, HavingFiltersGroups) {
  auto all = QueryBuilder(&db_->schema(), "all")
                 .From("orders")
                 .GroupBy({"o_custkey"})
                 .Agg(AggFunc::kCountStar, "", "cnt")
                 .Build();
  auto filtered = QueryBuilder(&db_->schema(), "having")
                      .From("orders")
                      .GroupBy({"o_custkey"})
                      .Agg(AggFunc::kCountStar, "", "cnt")
                      .Having(Dnf::And({Ge("cnt", Value(int64_t{20}))}))
                      .Build();
  auto ra = ExecuteQuery(*all, *pdb_);
  auto rf = ExecuteQuery(*filtered, *pdb_);
  ASSERT_TRUE(ra.ok() && rf.ok());
  size_t expected = 0;
  for (size_t i = 0; i < ra->rows.num_rows(); ++i) {
    if (ra->rows.column(1).GetInt64(i) >= 20) expected++;
  }
  EXPECT_EQ(rf->rows.num_rows(), expected);
  for (size_t i = 0; i < rf->rows.num_rows(); ++i) {
    EXPECT_GE(rf->rows.column(1).GetInt64(i), 20);
  }
}

TEST_F(EngineExtrasTest, SqlHavingOrderLimitRoundTrip) {
  auto q = sql::ParseQuery(db_->schema(),
                           "SELECT o_custkey, COUNT(*) AS cnt FROM orders "
                           "GROUP BY o_custkey HAVING cnt >= 15 "
                           "ORDER BY cnt DESC, o_custkey ASC LIMIT 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->limit, 3);
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_TRUE(q->order_by[0].second);
  EXPECT_FALSE(q->order_by[1].second);
  EXPECT_FALSE(q->having.empty());
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->rows.num_rows(), 3u);
  for (size_t i = 1; i < r->rows.num_rows(); ++i) {
    EXPECT_GE(r->rows.column(1).GetInt64(i - 1), r->rows.column(1).GetInt64(i));
  }
}

TEST_F(EngineExtrasTest, OrderByUnknownColumnFails) {
  auto q = QueryBuilder(&db_->schema(), "bad")
               .From("customer")
               .Project({"c_custkey"})
               .OrderBy("no_such")
               .Build();
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(ExecuteQuery(*q, *pdb_).ok());
}

TEST_F(EngineExtrasTest, ExplainShowsLocalJoinAndExchanges) {
  auto q = QueryBuilder(&db_->schema(), "explain")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .GroupBy({"o_orderpriority"})
               .Agg(AggFunc::kSum, "o_totalprice", "rev")
               .Build();
  auto text = ExplainQuery(*q, *pdb_);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Join"), std::string::npos);
  EXPECT_NE(text->find("Scan lineitem"), std::string::npos);
  EXPECT_NE(text->find("Repartition"), std::string::npos);  // group exchange
  EXPECT_NE(text->find("Gather"), std::string::npos);
  // Under SD, the join itself is local: exactly one Repartition (the
  // aggregation), counted by occurrences.
  size_t count = 0, pos = 0;
  while ((pos = text->find("Repartition", pos)) != std::string::npos) {
    count++;
    pos += 1;
  }
  EXPECT_EQ(count, 1u);
}

TEST_F(EngineExtrasTest, ExplainShowsHasSRewrite) {
  auto q = QueryBuilder(&db_->schema(), "semi")
               .From("customer")
               .Join("orders", "c_custkey", "o_custkey", JoinType::kSemi)
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto text = ExplainQuery(*q, *pdb_);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("[hasS=1]"), std::string::npos);
  EXPECT_EQ(text->find("Scan orders"), std::string::npos);  // join dropped
}

}  // namespace
}  // namespace pref
