// WorkloadMonitor tests (DESIGN.md §11): windows advance on completion
// counts, the first window freezes as the drift reference, the L1 drift
// score separates identical and disjoint join mixes, the threshold
// callback fires exactly once per upward crossing, and the window replays
// as the std::vector<QueryGraph> wd_design consumes.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "engine/workload_monitor.h"
#include "partition/partitioner.h"
#include "test_util.h"
#include "workloads/tpch_queries.h"

namespace pref {
namespace {

class WorkloadMonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new Database(std::move(*db));
    auto config = MakeTpchSdManual(db_->schema(), 4);
    auto pdb = PartitionDatabase(*db_, config);
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    pdb_ = pdb->release();
  }
  static void TearDownTestSuite() {
    delete pdb_;
    delete db_;
    pdb_ = nullptr;
    db_ = nullptr;
  }

  /// Executes `spec` and feeds the completion into `monitor`.
  static void RunAndFeed(WorkloadMonitor* monitor, const QuerySpec& spec) {
    auto result = ExecuteQuery(spec, *pdb_);
    ASSERT_TRUE(result.ok()) << spec.name << ": "
                             << result.status().ToString();
    monitor->OnQueryComplete(
        QueryProfile::FromStats(spec.name, result->stats), spec,
        db_->schema());
  }

  static Database* db_;
  static PartitionedDatabase* pdb_;
};

Database* WorkloadMonitorTest::db_ = nullptr;
PartitionedDatabase* WorkloadMonitorTest::pdb_ = nullptr;

/// A two-table join query: lineitem ⋈ orders on orderkey.
QuerySpec LineitemOrdersQuery(const Schema& schema) {
  auto spec = QueryBuilder(&schema, "li_ord")
                  .From("lineitem")
                  .Join("orders", "l_orderkey", "o_orderkey")
                  .Agg(AggFunc::kCountStar, "", "cnt")
                  .Build();
  PREF_CHECK_OK(spec.status());
  return *spec;
}

/// A disjoint-join query: partsupp ⋈ part on partkey.
QuerySpec PartsuppPartQuery(const Schema& schema) {
  auto spec = QueryBuilder(&schema, "ps_part")
                  .From("partsupp")
                  .Join("part", "ps_partkey", "p_partkey")
                  .Agg(AggFunc::kCountStar, "", "cnt")
                  .Build();
  PREF_CHECK_OK(spec.status());
  return *spec;
}

TEST_F(WorkloadMonitorTest, WindowsAdvanceOnCompletionCounts) {
  MonitorOptions opts;
  opts.window_size = 3;
  WorkloadMonitor monitor(opts);
  const QuerySpec q = LineitemOrdersQuery(db_->schema());
  for (int i = 0; i < 2; ++i) RunAndFeed(&monitor, q);
  EXPECT_EQ(monitor.completions(), 2u);
  EXPECT_EQ(monitor.windows_completed(), 0u);
  EXPECT_FALSE(monitor.has_reference());
  RunAndFeed(&monitor, q);
  EXPECT_EQ(monitor.windows_completed(), 1u);
  EXPECT_TRUE(monitor.has_reference());
  EXPECT_EQ(monitor.drift_score(), 0.0);
}

TEST_F(WorkloadMonitorTest, FrequenciesAndJoinKeys) {
  MonitorOptions opts;
  opts.window_size = 4;
  WorkloadMonitor monitor(opts);
  const QuerySpec li_ord = LineitemOrdersQuery(db_->schema());
  const QuerySpec ps_part = PartsuppPartQuery(db_->schema());
  RunAndFeed(&monitor, li_ord);
  RunAndFeed(&monitor, li_ord);
  RunAndFeed(&monitor, ps_part);
  RunAndFeed(&monitor, li_ord);

  const auto scans = monitor.ScanFrequencies();
  EXPECT_EQ(scans.at("lineitem"), 3u);
  EXPECT_EQ(scans.at("orders"), 3u);
  EXPECT_EQ(scans.at("partsupp"), 1u);
  EXPECT_EQ(scans.at("part"), 1u);

  const auto joins = monitor.JoinFrequencies();
  ASSERT_EQ(joins.size(), 2u);
  EXPECT_EQ(joins.at("lineitem.l_orderkey=orders.o_orderkey"), 3u);
  EXPECT_EQ(joins.at("part.p_partkey=partsupp.ps_partkey"), 1u);

  // Exchange-input rows accumulated per simulated node.
  const auto rows = monitor.PartitionRows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_GE(monitor.PartitionSkew(), 1.0);
}

TEST_F(WorkloadMonitorTest, DriftFiresExactlyOncePerCrossing) {
  MonitorOptions opts;
  opts.window_size = 2;
  opts.drift_threshold = 0.5;
  WorkloadMonitor monitor(opts);
  std::vector<std::pair<double, size_t>> fired;
  monitor.SetDriftCallback([&](double score, size_t window) {
    fired.emplace_back(score, window);
  });
  const QuerySpec li_ord = LineitemOrdersQuery(db_->schema());
  const QuerySpec ps_part = PartsuppPartQuery(db_->schema());

  // Window 1 (reference) and window 2: the same mix — drift 0, no firing.
  for (int i = 0; i < 4; ++i) RunAndFeed(&monitor, li_ord);
  EXPECT_EQ(monitor.windows_completed(), 2u);
  EXPECT_EQ(monitor.drift_score(), 0.0);
  EXPECT_TRUE(fired.empty());

  // Windows 3 and 4: a disjoint join mix — L1 distance 2.0. The callback
  // fires on the upward crossing (window 3) and must NOT fire again while
  // the score stays above threshold (window 4).
  for (int i = 0; i < 4; ++i) RunAndFeed(&monitor, ps_part);
  EXPECT_EQ(monitor.windows_completed(), 4u);
  EXPECT_DOUBLE_EQ(monitor.drift_score(), 2.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0].first, 2.0);
  EXPECT_EQ(fired[0].second, 3u);
  EXPECT_EQ(monitor.drift_crossings(), 1u);

  // Back to the reference mix (window 5, drift 0 re-arms), then shifted
  // again (window 6): a second genuine crossing.
  for (int i = 0; i < 2; ++i) RunAndFeed(&monitor, li_ord);
  EXPECT_EQ(monitor.drift_score(), 0.0);
  for (int i = 0; i < 2; ++i) RunAndFeed(&monitor, ps_part);
  EXPECT_EQ(monitor.drift_crossings(), 2u);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].second, 6u);
}

TEST_F(WorkloadMonitorTest, RebaseFreezesNewReferenceAndReArmsCrossing) {
  // After a migration the shifted mix is the new normal: Rebase() drops
  // the reference so the next completed window freezes as the new one,
  // the score returns to zero without the mix changing back, and a later
  // genuine shift crosses the threshold again.
  MonitorOptions opts;
  opts.window_size = 2;
  opts.drift_threshold = 0.5;
  WorkloadMonitor monitor(opts);
  std::vector<size_t> fired;
  monitor.SetDriftCallback(
      [&](double /*score*/, size_t window) { fired.push_back(window); });
  const QuerySpec li_ord = LineitemOrdersQuery(db_->schema());
  const QuerySpec ps_part = PartsuppPartQuery(db_->schema());

  // Reference window on the lineitem mix, then a shifted window: one
  // crossing, score pinned at the L1 maximum.
  for (int i = 0; i < 2; ++i) RunAndFeed(&monitor, li_ord);
  for (int i = 0; i < 2; ++i) RunAndFeed(&monitor, ps_part);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(monitor.drift_score(), 2.0);

  monitor.Rebase();
  EXPECT_EQ(monitor.rebases(), 1u);
  EXPECT_FALSE(monitor.has_reference());
  EXPECT_EQ(monitor.drift_score(), 0.0);

  // The next window of the *shifted* mix freezes as the new reference:
  // drift settles at zero with no new firing.
  for (int i = 0; i < 4; ++i) RunAndFeed(&monitor, ps_part);
  EXPECT_TRUE(monitor.has_reference());
  EXPECT_EQ(monitor.drift_score(), 0.0);
  EXPECT_EQ(fired.size(), 1u);

  // Shifting back to the original mix is now a fresh departure from the
  // rebased reference — the callback re-arms and fires once more.
  for (int i = 0; i < 2; ++i) RunAndFeed(&monitor, li_ord);
  EXPECT_DOUBLE_EQ(monitor.drift_score(), 2.0);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(monitor.drift_crossings(), 2u);
}

TEST_F(WorkloadMonitorTest, WindowReplaysAsQueryGraphs) {
  MonitorOptions opts;
  opts.window_size = 2;
  WorkloadMonitor monitor(opts);
  RunAndFeed(&monitor, LineitemOrdersQuery(db_->schema()));
  RunAndFeed(&monitor, PartsuppPartQuery(db_->schema()));
  const auto graphs = monitor.WindowQueryGraphs(db_->schema());
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].name, "li_ord");
  ASSERT_EQ(graphs[0].equi_joins.size(), 1u);
  auto li = db_->schema().FindTable("lineitem");
  auto ord = db_->schema().FindTable("orders");
  ASSERT_TRUE(li.ok() && ord.ok());
  EXPECT_TRUE(graphs[0].UsesTable(*li));
  EXPECT_TRUE(graphs[0].UsesTable(*ord));
  const JoinPredicate& p = graphs[0].equi_joins[0];
  EXPECT_TRUE((p.left_table == *li && p.right_table == *ord) ||
              (p.left_table == *ord && p.right_table == *li));
  EXPECT_EQ(graphs[1].name, "ps_part");
  EXPECT_EQ(graphs[1].equi_joins.size(), 1u);
}

TEST_F(WorkloadMonitorTest, JsonExportsAndParses) {
  MonitorOptions opts;
  opts.window_size = 2;
  WorkloadMonitor monitor(opts);
  RunAndFeed(&monitor, LineitemOrdersQuery(db_->schema()));
  RunAndFeed(&monitor, PartsuppPartQuery(db_->schema()));
  std::ostringstream os;
  monitor.WriteJson(os);
  std::vector<std::string> keys;
  ASSERT_TRUE(JsonValidator::Valid(os.str(), &keys)) << os.str();
  EXPECT_NE(os.str().find("\"scan_frequencies\":"), std::string::npos);
  EXPECT_NE(os.str().find("\"drift\":"), std::string::npos);
  EXPECT_NE(os.str().find("lineitem.l_orderkey=orders.o_orderkey"),
            std::string::npos);
}

}  // namespace
}  // namespace pref
