// Tests for the partitioning core: configuration validation, the PREF
// partitioner (Definition 1, including the Figure 2 example), baselines,
// metrics, and the deployment union semantics.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "catalog/tpch_schema.h"
#include "datagen/tpch_gen.h"
#include "partition/deployment.h"
#include "partition/locality.h"
#include "partition/partitioner.h"
#include "partition/presets.h"
#include "test_util.h"

namespace pref {
namespace {

/// Builds the Figure-2 micro database: LINEITEM(linekey, orderkey),
/// ORDERS(orderkey, custkey), CUSTOMER(custkey, cname).
Database MakeFigure2Database() {
  Schema s;
  EXPECT_TRUE(s.AddTable("lineitem",
                         {{"linekey", DataType::kInt64}, {"orderkey", DataType::kInt64}},
                         {"linekey"})
                  .ok());
  EXPECT_TRUE(s.AddTable("orders",
                         {{"orderkey", DataType::kInt64}, {"custkey", DataType::kInt64}},
                         {"orderkey"})
                  .ok());
  EXPECT_TRUE(s.AddTable("customer",
                         {{"custkey", DataType::kInt64}, {"cname", DataType::kString}},
                         {"custkey"})
                  .ok());
  Database db(std::move(s));
  RowBlock& l = (*db.FindTable("lineitem"))->data();
  for (auto [lk, ok_] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 1}, {1, 4}, {2, 1}, {3, 2}, {4, 3}}) {
    l.column(0).AppendInt64(lk);
    l.column(1).AppendInt64(ok_);
  }
  RowBlock& o = (*db.FindTable("orders"))->data();
  for (auto [ok_, ck] : std::vector<std::pair<int64_t, int64_t>>{
           {1, 1}, {2, 1}, {3, 2}, {4, 1}}) {
    o.column(0).AppendInt64(ok_);
    o.column(1).AppendInt64(ck);
  }
  RowBlock& c = (*db.FindTable("customer"))->data();
  for (auto [ck, nm] : std::vector<std::pair<int64_t, std::string>>{
           {1, "A"}, {2, "B"}, {3, "C"}}) {
    c.column(0).AppendInt64(ck);
    c.column(1).AppendString(nm);
  }
  return db;
}

PartitioningConfig MakeFigure2Config(const Schema& schema, int n = 3) {
  PartitioningConfig config(&schema, n);
  EXPECT_TRUE(config.AddHash("lineitem", {"linekey"}).ok());
  EXPECT_TRUE(
      config.AddPref("orders", {"orderkey"}, "lineitem", {"orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("customer", {"custkey"}, "orders", {"custkey"}).ok());
  EXPECT_TRUE(config.Finalize().ok());
  return config;
}

TEST(ConfigTest, FinalizeResolvesSeedChains) {
  Database db = MakeFigure2Database();
  PartitioningConfig config = MakeFigure2Config(db.schema());
  TableId l = *db.schema().FindTable("lineitem");
  TableId o = *db.schema().FindTable("orders");
  TableId c = *db.schema().FindTable("customer");
  EXPECT_EQ(config.spec(o).seed_table, l);
  EXPECT_EQ(config.spec(c).seed_table, l);  // transitively through orders
  EXPECT_EQ(config.spec(o).seed_attributes, config.spec(l).attributes);
  // Load order: lineitem before orders before customer.
  const auto& order = config.LoadOrder();
  auto pos = [&](TableId t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  EXPECT_LT(pos(l), pos(o));
  EXPECT_LT(pos(o), pos(c));
}

TEST(ConfigTest, RejectsCycles) {
  Database db = MakeFigure2Database();
  PartitioningConfig config(&db.schema(), 2);
  ASSERT_TRUE(
      config.AddPref("orders", {"orderkey"}, "lineitem", {"orderkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("lineitem", {"orderkey"}, "orders", {"orderkey"}).ok());
  ASSERT_TRUE(config.AddHash("customer", {"custkey"}).ok());
  EXPECT_TRUE(config.Finalize().IsInvalid());
}

TEST(ConfigTest, RejectsMissingReferencedTable) {
  Database db = MakeFigure2Database();
  PartitioningConfig config(&db.schema(), 2);
  ASSERT_TRUE(
      config.AddPref("orders", {"orderkey"}, "lineitem", {"orderkey"}).ok());
  EXPECT_TRUE(config.Finalize().IsInvalid());
}

TEST(ConfigTest, RejectsSelfReference) {
  Database db = MakeFigure2Database();
  PartitioningConfig config(&db.schema(), 2);
  EXPECT_TRUE(
      config.AddPref("orders", {"orderkey"}, "orders", {"orderkey"}).IsInvalid());
}

TEST(ConfigTest, RejectsDuplicateSpec) {
  Database db = MakeFigure2Database();
  PartitioningConfig config(&db.schema(), 2);
  ASSERT_TRUE(config.AddHash("orders", {"orderkey"}).ok());
  EXPECT_TRUE(config.AddReplicated("orders").IsAlreadyExists());
}

TEST(ConfigTest, AddRefByForeignKey) {
  Schema schema = MakeTpchSchema();
  PartitioningConfig config(&schema, 4);
  ASSERT_TRUE(config.AddHash("customer", {"c_custkey"}).ok());
  ASSERT_TRUE(config.AddRefByForeignKey("fk_orders_customer").ok());
  EXPECT_TRUE(config.AddRefByForeignKey("fk_nope").IsNotFound());
  ASSERT_TRUE(config.Finalize().ok());
  TableId orders = *schema.FindTable("orders");
  EXPECT_EQ(config.spec(orders).method, PartitionMethod::kPref);
  EXPECT_EQ(config.spec(orders).referenced_table, *schema.FindTable("customer"));
}

TEST(PartitionerTest, Figure2OrdersPlacement) {
  Database db = MakeFigure2Database();
  auto pdb = PartitionDatabase(db, MakeFigure2Config(db.schema()));
  ASSERT_TRUE(pdb.ok());

  TableId l_id = *db.schema().FindTable("lineitem");
  TableId o_id = *db.schema().FindTable("orders");
  const PartitionedTable* l = (*pdb)->GetTable(l_id);
  const PartitionedTable* o = (*pdb)->GetTable(o_id);

  // Lineitem is hash partitioned: no duplicates, all 5 rows present.
  EXPECT_EQ(l->TotalRows(), 5u);
  EXPECT_EQ(l->DistinctRows(), 5u);

  // Orders: each order is copied to every partition holding one of its
  // lineitems. Order 1 has lineitems (linekey 0 and 2); others one each.
  std::unordered_map<int64_t, std::set<int>> line_parts;
  for (int p = 0; p < l->num_partitions(); ++p) {
    const RowBlock& rows = l->partition(p).rows;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      line_parts[rows.column(1).GetInt64(r)].insert(p);
    }
  }
  std::unordered_map<int64_t, std::set<int>> order_parts;
  size_t order_copies = 0;
  for (int p = 0; p < o->num_partitions(); ++p) {
    const RowBlock& rows = o->partition(p).rows;
    order_copies += rows.num_rows();
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      order_parts[rows.column(0).GetInt64(r)].insert(p);
    }
  }
  for (const auto& [ok_, parts] : line_parts) {
    EXPECT_EQ(order_parts[ok_], parts) << "orderkey " << ok_;
  }
  size_t expected_copies = 0;
  for (const auto& [ok_, parts] : line_parts) expected_copies += parts.size();
  EXPECT_EQ(order_copies, expected_copies);

  CheckPrefInvariants(db, **pdb, o_id);
}

TEST(PartitionerTest, Figure2CustomerOrphanPlacedOnce) {
  Database db = MakeFigure2Database();
  auto pdb = PartitionDatabase(db, MakeFigure2Config(db.schema()));
  ASSERT_TRUE(pdb.ok());
  TableId c_id = *db.schema().FindTable("customer");
  const PartitionedTable* c = (*pdb)->GetTable(c_id);
  // Customer 3 has no orders: exactly one copy, has_partner = 0.
  int copies_of_3 = 0;
  for (int p = 0; p < c->num_partitions(); ++p) {
    const Partition& part = c->partition(p);
    for (size_t r = 0; r < part.rows.num_rows(); ++r) {
      if (part.rows.column(0).GetInt64(r) == 3) {
        copies_of_3++;
        EXPECT_FALSE(part.has_partner.Get(r));
        EXPECT_FALSE(part.dup.Get(r));
      }
    }
  }
  EXPECT_EQ(copies_of_3, 1);
  CheckPrefInvariants(db, **pdb, c_id);
}

TEST(PartitionerTest, Figure2RedundancyIsCumulative) {
  // Customer 1 must appear in every partition where one of its orders
  // appears — including partitions reached only via duplicated orders.
  Database db = MakeFigure2Database();
  auto pdb = PartitionDatabase(db, MakeFigure2Config(db.schema()));
  ASSERT_TRUE(pdb.ok());
  const PartitionedTable* o = (*pdb)->GetTable(*db.schema().FindTable("orders"));
  const PartitionedTable* c = (*pdb)->GetTable(*db.schema().FindTable("customer"));
  std::set<int> parts_with_cust1_orders, parts_with_cust1;
  for (int p = 0; p < o->num_partitions(); ++p) {
    const RowBlock& rows = o->partition(p).rows;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      if (rows.column(1).GetInt64(r) == 1) parts_with_cust1_orders.insert(p);
    }
  }
  for (int p = 0; p < c->num_partitions(); ++p) {
    const RowBlock& rows = c->partition(p).rows;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      if (rows.column(0).GetInt64(r) == 1) parts_with_cust1.insert(p);
    }
  }
  EXPECT_EQ(parts_with_cust1, parts_with_cust1_orders);
}

TEST(PartitionerTest, HashCoPartitioningAlignsJoinKeys) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config(&db->schema(), 4);
  ASSERT_TRUE(config.AddHash("orders", {"o_orderkey"}).ok());
  ASSERT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db, std::move(config));
  ASSERT_TRUE(pdb.ok());
  const PartitionedTable* o = (*pdb)->GetTable(*db->schema().FindTable("orders"));
  const PartitionedTable* l = (*pdb)->GetTable(*db->schema().FindTable("lineitem"));
  std::unordered_map<int64_t, int> order_part;
  for (int p = 0; p < o->num_partitions(); ++p) {
    for (int64_t key : o->partition(p).rows.column(0).ints()) order_part[key] = p;
  }
  for (int p = 0; p < l->num_partitions(); ++p) {
    for (int64_t key : l->partition(p).rows.column(0).ints()) {
      EXPECT_EQ(order_part.at(key), p);
    }
  }
  // Hash partitioning is lossless and duplicate-free.
  EXPECT_EQ(o->TotalRows(), (*db->FindTable("orders"))->num_rows());
  EXPECT_EQ(l->TotalRows(), (*db->FindTable("lineitem"))->num_rows());
}

TEST(PartitionerTest, ReplicatedCopiesToAllNodes) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config(&db->schema(), 3);
  ASSERT_TRUE(config.AddReplicated("nation").ok());
  auto pdb = PartitionDatabase(*db, std::move(config));
  ASSERT_TRUE(pdb.ok());
  const PartitionedTable* n = (*pdb)->GetTable(*db->schema().FindTable("nation"));
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(n->partition(p).rows.num_rows(), 25u);
  }
  EXPECT_EQ(n->DistinctRows(), 25u);
}

TEST(PartitionerTest, RoundRobinBalances) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config(&db->schema(), 4);
  ASSERT_TRUE(config.AddRoundRobin("customer").ok());
  auto pdb = PartitionDatabase(*db, std::move(config));
  ASSERT_TRUE(pdb.ok());
  const PartitionedTable* c = (*pdb)->GetTable(*db->schema().FindTable("customer"));
  size_t total = (*db->FindTable("customer"))->num_rows();
  for (int p = 0; p < 4; ++p) {
    size_t rows = c->partition(p).rows.num_rows();
    EXPECT_GE(rows, total / 4);
    EXPECT_LE(rows, total / 4 + 1);
  }
}

TEST(PartitionerTest, TpchSdConfigSatisfiesDefinition1) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config = MakeTpchSdManual(db->schema(), 10);
  auto pdb = PartitionDatabase(*db, config);
  ASSERT_TRUE(pdb.ok());
  for (const char* t : {"orders", "customer", "partsupp", "part"}) {
    CheckPrefInvariants(*db, **pdb, *db->schema().FindTable(t));
  }
}

TEST(PartitionerTest, ParallelPartitioningIdenticalToSerial) {
  // PartitionDatabase runs the shared route → append → index phases of the
  // bulk loader (partition/load_phases.h); the pooled path must reproduce
  // the serial path exactly: same partition contents in the same row order,
  // same dup/hasS bitmaps, same partition-index shapes.
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  auto serial =
      PartitionDatabase(*db, MakeTpchSdManual(db->schema(), 6), /*parallel=*/false);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel =
      PartitionDatabase(*db, MakeTpchSdManual(db->schema(), 6), /*parallel=*/true);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  for (const PartitionedTable* a : (*serial)->tables()) {
    const PartitionedTable* b = (*parallel)->GetTable(a->id());
    ASSERT_NE(b, nullptr) << a->name();
    ASSERT_EQ(a->num_partitions(), b->num_partitions()) << a->name();
    std::vector<ColumnId> cols(static_cast<size_t>(a->def().num_columns()));
    for (size_t c = 0; c < cols.size(); ++c) cols[c] = static_cast<ColumnId>(c);
    for (int p = 0; p < a->num_partitions(); ++p) {
      const Partition& pa = a->partition(p);
      const Partition& pb = b->partition(p);
      ASSERT_EQ(pa.rows.num_rows(), pb.rows.num_rows())
          << a->name() << " partition " << p;
      for (size_t r = 0; r < pa.rows.num_rows(); ++r) {
        ASSERT_TRUE(pa.rows.RowsEqual(cols, r, pb.rows, cols, r))
            << a->name() << " partition " << p << " row " << r;
      }
      EXPECT_TRUE(pa.dup == pb.dup) << a->name() << " dup, partition " << p;
      EXPECT_TRUE(pa.has_partner == pb.has_partner)
          << a->name() << " hasS, partition " << p;
    }
    ASSERT_EQ(a->indexes().size(), b->indexes().size()) << a->name();
    for (size_t i = 0; i < a->indexes().size(); ++i) {
      EXPECT_EQ(a->indexes()[i].first, b->indexes()[i].first) << a->name();
      EXPECT_EQ(a->indexes()[i].second->num_keys(), b->indexes()[i].second->num_keys())
          << a->name() << " index " << i;
    }
  }
}

TEST(PartitionerTest, PrefChainKeepsModerateRedundancy) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  auto pdb = PartitionDatabase(*db, MakeTpchSdManual(db->schema(), 10));
  ASSERT_TRUE(pdb.ok());
  // The paper reports DR = 0.5 for SD (wo small tables) at 10 nodes. With
  // small tables replicated here too, allow a loose band around it.
  double dr = (*pdb)->DataRedundancy();
  EXPECT_GT(dr, 0.1);
  EXPECT_LT(dr, 1.2);
}

TEST(PartitionerTest, PrefLocalJoinCompleteness) {
  // Definition 1's purpose: the equi-join along the partitioning predicate
  // can be executed per-partition with no network. Verify the per-partition
  // join of orders x lineitem on orderkey recovers every original pair.
  auto db = GenerateTpch({0.001, 9});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config(&db->schema(), 5);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db, std::move(config));
  ASSERT_TRUE(pdb.ok());
  const PartitionedTable* l = (*pdb)->GetTable(*db->schema().FindTable("lineitem"));
  const PartitionedTable* o = (*pdb)->GetTable(*db->schema().FindTable("orders"));
  size_t local_join_pairs = 0;
  for (int p = 0; p < 5; ++p) {
    std::unordered_map<int64_t, int> order_count;
    for (int64_t key : o->partition(p).rows.column(0).ints()) order_count[key]++;
    for (int64_t key : l->partition(p).rows.column(0).ints()) {
      auto it = order_count.find(key);
      if (it != order_count.end()) local_join_pairs += it->second;
    }
  }
  // Reference join size: every lineitem joins exactly one order.
  EXPECT_EQ(local_join_pairs, (*db->FindTable("lineitem"))->num_rows());
}

TEST(MetricsTest, AllHashedAndAllReplicatedBaselines) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  auto hashed = MakeAllHashed(db->schema(), 10);
  ASSERT_TRUE(hashed.ok());
  auto edges = SchemaEdges(*db);
  EXPECT_DOUBLE_EQ(DataLocality(*hashed, edges), 0.0);
  auto replicated = MakeAllReplicated(db->schema(), 10);
  ASSERT_TRUE(replicated.ok());
  EXPECT_DOUBLE_EQ(DataLocality(*replicated, edges), 1.0);
  auto pdb_r = PartitionDatabase(*db, *replicated);
  ASSERT_TRUE(pdb_r.ok());
  EXPECT_NEAR((*pdb_r)->DataRedundancy(), 9.0, 1e-9);
  auto pdb_h = PartitionDatabase(*db, *hashed);
  ASSERT_TRUE(pdb_h.ok());
  EXPECT_NEAR((*pdb_h)->DataRedundancy(), 0.0, 1e-9);
}

TEST(MetricsTest, ClassicalTpchMatchesPaperShape) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  auto cp = MakeTpchClassical(db->schema(), 10);
  ASSERT_TRUE(cp.ok());
  auto edges = SchemaEdges(*db);
  // CP achieves DL = 1 (everything not co-hashed is replicated).
  EXPECT_DOUBLE_EQ(DataLocality(*cp, edges), 1.0);
  auto pdb = PartitionDatabase(*db, *cp);
  ASSERT_TRUE(pdb.ok());
  // Paper: DR = 1.21 at 10 nodes (Table 1); cardinality ratios preserved.
  double dr = (*pdb)->DataRedundancy();
  EXPECT_GT(dr, 1.0);
  EXPECT_LT(dr, 1.5);
}

TEST(MetricsTest, SdManualDominatesClassicalOnRedundancy) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  auto cp_pdb = PartitionDatabase(*db, *MakeTpchClassical(db->schema(), 10));
  auto sd_pdb = PartitionDatabase(*db, MakeTpchSdManual(db->schema(), 10));
  ASSERT_TRUE(cp_pdb.ok() && sd_pdb.ok());
  // Same DL = 1 but far less redundancy — the paper's headline (Table 1).
  auto edges = SchemaEdges(*db);
  EXPECT_DOUBLE_EQ(DataLocality(MakeTpchSdManual(db->schema(), 10), edges), 1.0);
  EXPECT_LT((*sd_pdb)->DataRedundancy(), (*cp_pdb)->DataRedundancy());
}

TEST(MetricsTest, EdgeIsLocalCases) {
  Database db = MakeFigure2Database();
  PartitioningConfig config = MakeFigure2Config(db.schema());
  const Schema& s = db.schema();
  JoinPredicate lo = *s.MakePredicate("orders", {"orderkey"}, "lineitem", {"orderkey"});
  JoinPredicate oc = *s.MakePredicate("customer", {"custkey"}, "orders", {"custkey"});
  JoinPredicate lc = *s.MakePredicate("customer", {"custkey"}, "lineitem", {"linekey"});
  EXPECT_TRUE(EdgeIsLocal(config, lo));
  EXPECT_TRUE(EdgeIsLocal(config, lo.Reversed()));
  EXPECT_TRUE(EdgeIsLocal(config, oc));
  EXPECT_FALSE(EdgeIsLocal(config, lc));
}

TEST(DeploymentTest, SharedSchemeCountedOnce) {
  Database db = MakeFigure2Database();
  // Two configs with identical lineitem scheme and different orders schemes.
  PartitioningConfig a(&db.schema(), 2);
  ASSERT_TRUE(a.AddHash("lineitem", {"linekey"}).ok());
  ASSERT_TRUE(a.AddHash("orders", {"orderkey"}).ok());
  ASSERT_TRUE(a.Finalize().ok());
  PartitioningConfig b(&db.schema(), 2);
  ASSERT_TRUE(b.AddHash("lineitem", {"linekey"}).ok());
  ASSERT_TRUE(b.AddHash("orders", {"custkey"}).ok());
  ASSERT_TRUE(b.Finalize().ok());
  Deployment d;
  d.AddConfig(std::move(a));
  d.AddConfig(std::move(b));
  auto dr = d.Redundancy(db);
  ASSERT_TRUE(dr.ok());
  // lineitem stored once (5 rows), orders twice (2 x 4 rows); |D| = 9.
  EXPECT_NEAR(*dr, (5.0 + 8.0) / 9.0 - 1.0, 1e-9);
}

TEST(DeploymentTest, RouteQueryPicksCoveringConfig) {
  Database db = MakeFigure2Database();
  PartitioningConfig a(&db.schema(), 2);
  ASSERT_TRUE(a.AddHash("lineitem", {"linekey"}).ok());
  ASSERT_TRUE(a.Finalize().ok());
  PartitioningConfig b(&db.schema(), 2);
  ASSERT_TRUE(b.AddHash("orders", {"orderkey"}).ok());
  ASSERT_TRUE(b.AddHash("customer", {"custkey"}).ok());
  ASSERT_TRUE(b.Finalize().ok());
  Deployment d;
  d.AddConfig(std::move(a));
  d.AddConfig(std::move(b));
  TableId o = *db.schema().FindTable("orders");
  TableId c = *db.schema().FindTable("customer");
  TableId l = *db.schema().FindTable("lineitem");
  const PartitioningConfig* routed = d.RouteQuery({o, c});
  ASSERT_NE(routed, nullptr);
  EXPECT_TRUE(routed->Contains(o));
  EXPECT_EQ(d.RouteQuery({l, o}), nullptr);
}

TEST(PresetsTest, SpecsEquivalentDiscriminates) {
  PartitionSpec h1 = PartitionSpec::Hash({0}, 4);
  PartitionSpec h2 = PartitionSpec::Hash({0}, 4);
  PartitionSpec h3 = PartitionSpec::Hash({1}, 4);
  PartitionSpec h4 = PartitionSpec::Hash({0}, 8);
  EXPECT_TRUE(SpecsEquivalent(h1, h2));
  EXPECT_FALSE(SpecsEquivalent(h1, h3));
  EXPECT_FALSE(SpecsEquivalent(h1, h4));
  EXPECT_FALSE(SpecsEquivalent(h1, PartitionSpec::Replicated(4)));
  EXPECT_TRUE(
      SpecsEquivalent(PartitionSpec::Replicated(4), PartitionSpec::Replicated(4)));
}

}  // namespace
}  // namespace pref
