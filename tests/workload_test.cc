// Workload library tests: the 22 TPC-H queries execute correctly under
// every partitioning configuration (validated against a single-node
// reference), their join graphs drive the WD design to the paper's
// component counts, and the TPC-DS block table has the right shape.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "catalog/tpcds_schema.h"
#include "datagen/tpcds_gen.h"
#include "datagen/tpch_gen.h"
#include "design/sd_design.h"
#include "design/wd_design.h"
#include "engine/executor.h"
#include "partition/presets.h"
#include "test_util.h"
#include "workloads/tpch_queries.h"
#include "workloads/tpcds_workload.h"

namespace pref {
namespace {

struct CanonResult {
  std::multiset<std::string> keys;
  std::map<std::string, std::vector<double>> doubles;
};

CanonResult Canon(const QueryResult& result) {
  CanonResult out;
  for (size_t r = 0; r < result.rows.num_rows(); ++r) {
    std::string key;
    std::vector<double> ds;
    for (int c = 0; c < result.rows.num_columns(); ++c) {
      const Column& col = result.rows.column(c);
      if (col.is_double()) {
        ds.push_back(col.GetDouble(r));
      } else if (col.is_int()) {
        key += std::to_string(col.GetInt64(r)) + "|";
      } else {
        key += col.GetString(r) + "|";
      }
    }
    out.keys.insert(key);
    auto& bucket = out.doubles[key];
    bucket.insert(bucket.end(), ds.begin(), ds.end());
  }
  for (auto& [k, ds] : out.doubles) std::sort(ds.begin(), ds.end());
  return out;
}

void ExpectSameResults(const QueryResult& expected, const QueryResult& actual,
                       const std::string& label) {
  CanonResult e = Canon(expected), a = Canon(actual);
  ASSERT_EQ(e.keys, a.keys) << label;
  for (const auto& [key, evals] : e.doubles) {
    const auto& avals = a.doubles[key];
    ASSERT_EQ(evals.size(), avals.size()) << label;
    for (size_t i = 0; i < evals.size(); ++i) {
      double tol = std::max(1e-6, std::fabs(evals[i]) * 1e-9);
      EXPECT_NEAR(evals[i], avals[i], tol) << label << " key " << key;
    }
  }
}

class TpchWorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    auto ref = PartitionDatabase(*db_, *MakeAllHashed(db_->schema(), 1));
    ASSERT_TRUE(ref.ok());
    reference_ = ref->release();
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete db_;
    reference_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static PartitionedDatabase* reference_;
};

Database* TpchWorkloadTest::db_ = nullptr;
PartitionedDatabase* TpchWorkloadTest::reference_ = nullptr;

TEST_F(TpchWorkloadTest, AllQueriesBuild) {
  auto queries = TpchQueries(db_->schema());
  ASSERT_EQ(queries.size(), 22u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].name, "Q" + std::to_string(i + 1));
    EXPECT_FALSE(queries[i].tables.empty());
  }
}

TEST_F(TpchWorkloadTest, AllQueriesRunOnReference) {
  for (const auto& q : TpchQueries(db_->schema())) {
    auto r = ExecuteQuery(q, *reference_);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    EXPECT_GT(r->rows.num_rows(), 0u) << q.name << " returned no rows";
  }
}

TEST_F(TpchWorkloadTest, SdConfigMatchesReferenceOnAllQueries) {
  auto pdb = PartitionDatabase(*db_, MakeTpchSdManual(db_->schema(), 6));
  ASSERT_TRUE(pdb.ok());
  for (const auto& q : TpchQueries(db_->schema())) {
    auto expected = ExecuteQuery(q, *reference_);
    auto actual = ExecuteQuery(q, **pdb);
    ASSERT_TRUE(expected.ok()) << q.name;
    ASSERT_TRUE(actual.ok()) << q.name << ": " << actual.status().ToString();
    ExpectSameResults(*expected, *actual, q.name);
  }
}

TEST_F(TpchWorkloadTest, ClassicalConfigMatchesReferenceOnAllQueries) {
  auto pdb = PartitionDatabase(*db_, *MakeTpchClassical(db_->schema(), 6));
  ASSERT_TRUE(pdb.ok());
  for (const auto& q : TpchQueries(db_->schema())) {
    auto expected = ExecuteQuery(q, *reference_);
    auto actual = ExecuteQuery(q, **pdb);
    ASSERT_TRUE(expected.ok() && actual.ok()) << q.name;
    ExpectSameResults(*expected, *actual, q.name);
  }
}

TEST_F(TpchWorkloadTest, AllHashedConfigMatchesReferenceOnAllQueries) {
  auto pdb = PartitionDatabase(*db_, *MakeAllHashed(db_->schema(), 6));
  ASSERT_TRUE(pdb.ok());
  for (const auto& q : TpchQueries(db_->schema())) {
    auto expected = ExecuteQuery(q, *reference_);
    auto actual = ExecuteQuery(q, **pdb);
    ASSERT_TRUE(expected.ok() && actual.ok()) << q.name;
    ExpectSameResults(*expected, *actual, q.name);
  }
}

TEST_F(TpchWorkloadTest, SdDesignedConfigMatchesReferenceOnAllQueries) {
  SdOptions options;
  options.num_partitions = 6;
  options.replicate_tables = {"nation", "region", "supplier"};
  auto sd = SchemaDrivenDesign(*db_, options);
  ASSERT_TRUE(sd.ok());
  auto pdb = PartitionDatabase(*db_, sd->config);
  ASSERT_TRUE(pdb.ok());
  for (const auto& q : TpchQueries(db_->schema())) {
    auto expected = ExecuteQuery(q, *reference_);
    auto actual = ExecuteQuery(q, **pdb);
    ASSERT_TRUE(expected.ok() && actual.ok()) << q.name;
    ExpectSameResults(*expected, *actual, q.name);
  }
}

TEST_F(TpchWorkloadTest, QueryGraphsExtractJoinStructure) {
  auto graphs = TpchQueryGraphs(db_->schema());
  ASSERT_EQ(graphs.size(), 22u);
  // Q1 and Q6 are single-table.
  EXPECT_TRUE(graphs[0].equi_joins.empty());
  EXPECT_TRUE(graphs[5].equi_joins.empty());
  // Q5 keeps its 5-join path (supplier composite collapses to one edge).
  EXPECT_EQ(graphs[4].equi_joins.size(), 5u);
  // Q7's nation self-aliases produce two distinct edges to nation.
  int nation_edges = 0;
  TableId nation = *db_->schema().FindTable("nation");
  for (const auto& p : graphs[6].equi_joins) {
    if (p.Mentions(nation)) nation_edges++;
  }
  EXPECT_EQ(nation_edges, 2);
}

TEST_F(TpchWorkloadTest, WdDesignOnTpchWorkload) {
  // §5.1: WD merges the 22 queries into 4 connected components in phase 1
  // and 2 components after the cost-based phase.
  WdOptions options;
  options.num_partitions = 10;
  options.replicate_tables = {"nation", "region"};
  auto result =
      WorkloadDrivenDesign(*db_, TpchQueryGraphs(db_->schema()), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->components_after_phase1, 2);
  EXPECT_LE(result->components_after_phase1, 7);
  EXPECT_GE(result->components_after_phase2, 1);
  EXPECT_LE(result->components_after_phase2, 4);
  EXPECT_LE(result->components_after_phase2, result->components_after_phase1);
  // Every query routes to some configuration.
  for (const auto& g : TpchQueryGraphs(db_->schema())) {
    if (g.equi_joins.empty()) continue;
    EXPECT_NE(result->deployment.RouteQuery(g.tables), nullptr) << g.name;
  }
}

TEST(TpcdsWorkloadTest, BlockTableShape) {
  const auto& blocks = TpcdsBlocks();
  // Paper: 99 queries, 165 SPJA components.
  std::set<std::string> queries;
  for (const auto& b : blocks) queries.insert(b.query);
  EXPECT_EQ(queries.size(), 99u);
  EXPECT_GE(blocks.size(), 150u);
  EXPECT_LE(blocks.size(), 180u);
}

TEST(TpcdsWorkloadTest, GraphsResolveAgainstSchema) {
  Schema schema = MakeTpcdsSchema();
  auto graphs = TpcdsQueryGraphs(schema);
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  EXPECT_EQ(graphs->size(), TpcdsBlocks().size());
  for (const auto& g : *graphs) {
    // Every edge references tables of the graph.
    for (const auto& p : g.equi_joins) {
      EXPECT_TRUE(g.UsesTable(p.left_table)) << g.name;
      EXPECT_TRUE(g.UsesTable(p.right_table)) << g.name;
    }
  }
}

TEST(TpcdsWorkloadTest, WdDesignReachesPaperComponentCounts) {
  TpcdsGenOptions gen;
  gen.scale_factor = 0.02;
  auto db = GenerateTpcds(gen);
  ASSERT_TRUE(db.ok());
  auto graphs = TpcdsQueryGraphs(db->schema());
  ASSERT_TRUE(graphs.ok());
  WdOptions options;
  options.num_partitions = 10;
  options.replicate_tables = TpcdsSmallTables();
  auto result = WorkloadDrivenDesign(*db, *graphs, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::cout << "[ TPC-DS WD ] initial=" << result->initial_components
            << " phase1=" << result->components_after_phase1
            << " phase2=" << result->components_after_phase2 << std::endl;
  // Paper: 165 components -> 17 after phase 1 -> 7 after phase 2. Ours:
  // 167 -> 23 -> 10 (the three customer-rooted demographic-snowflake block
  // families cannot merge into the fact stars without cycles under our
  // encoding; see EXPERIMENTS.md).
  EXPECT_GE(result->initial_components, 160);
  EXPECT_LE(result->initial_components, 175);
  EXPECT_GE(result->components_after_phase1, 15);
  EXPECT_LE(result->components_after_phase1, 26);
  EXPECT_GE(result->components_after_phase2, 7);
  EXPECT_LE(result->components_after_phase2, 11);
  // One configuration per final MAST; every fact table is covered by some
  // configuration.
  for (const auto& fact : TpcdsFactTables()) {
    TableId id = *db->schema().FindTable(fact);
    bool covered = false;
    for (const auto& config : result->deployment.configs()) {
      covered |= config.Contains(id);
    }
    EXPECT_TRUE(covered) << fact;
  }
}

}  // namespace
}  // namespace pref
