// White-box tests for the §2.2 rewriter: exact plan shapes, Part(o)/Dup(o)
// property propagation through the three join cases, exchange insertion,
// and the wo-optimizations fallback paths.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "engine/rewriter.h"
#include "partition/presets.h"
#include "test_util.h"

namespace pref {
namespace {

/// Finds the first node of `kind` in pre-order, or null.
const PlanNode* FindNode(const PlanNode& root, OpKind kind) {
  if (root.kind == kind) return &root;
  for (const auto& child : root.children) {
    if (const PlanNode* found = FindNode(*child, kind)) return found;
  }
  return nullptr;
}

int CountNodes(const PlanNode& root, OpKind kind) {
  int n = root.kind == kind ? 1 : 0;
  for (const auto& child : root.children) n += CountNodes(*child, kind);
  return n;
}

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = GenerateTpch({0.001, 42});
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    auto sd = PartitionDatabase(*db_, MakeTpchSdManual(db_->schema(), 4));
    ASSERT_TRUE(sd.ok());
    sd_pdb_ = std::move(*sd);
    auto cp = PartitionDatabase(*db_, *MakeTpchClassical(db_->schema(), 4));
    ASSERT_TRUE(cp.ok());
    cp_pdb_ = std::move(*cp);
  }

  std::unique_ptr<PlanNode> Plan(const QuerySpec& q, const PartitionedDatabase& pdb,
                                 QueryOptions options = {}) {
    auto plan = RewriteQuery(q, pdb, options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(*plan);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<PartitionedDatabase> sd_pdb_;
  std::unique_ptr<PartitionedDatabase> cp_pdb_;
};

TEST_F(RewriterTest, Case1PlanHasNoJoinRepartition) {
  auto q = QueryBuilder(&db_->schema(), "c1")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto plan = Plan(*q, *cp_pdb_);
  const PlanNode* join = FindNode(*plan, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  // Both children are plain scans (no exchange in between).
  EXPECT_EQ(join->children[0]->kind, OpKind::kScan);
  EXPECT_EQ(join->children[1]->kind, OpKind::kScan);
  // Result keeps the hash property.
  EXPECT_EQ(join->part.method, PartitionMethod::kHash);
  EXPECT_TRUE(join->active_dup_slots.empty());
}

TEST_F(RewriterTest, Case2ClearsDupAndKeepsSeedScheme) {
  // Under the SD manual config: lineitem hash seed, orders PREF by it.
  auto q = QueryBuilder(&db_->schema(), "c2")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto plan = Plan(*q, *sd_pdb_);
  const PlanNode* join = FindNode(*plan, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->children[0]->kind, OpKind::kScan);
  EXPECT_EQ(join->children[1]->kind, OpKind::kScan);
  // Case (2): Dup(o) = 0 even though the PREF side physically has dups.
  EXPECT_TRUE(join->active_dup_slots.empty());
  EXPECT_EQ(CountNodes(*plan, OpKind::kRepartition), 0);
  EXPECT_EQ(CountNodes(*plan, OpKind::kDupElim), 0);
}

TEST_F(RewriterTest, Case3InheritsReferencedDupStatus) {
  // Scattered seed (lineitem hashed on partkey) makes orders genuinely
  // duplicated; customer (PREF by orders) join orders is case (3) and the
  // result inherits the referenced (orders) input's dup status.
  PartitioningConfig config(&db_->schema(), 4);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_partkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}).ok());
  auto scattered = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(scattered.ok());
  auto q = QueryBuilder(&db_->schema(), "c3")
               .From("customer")
               .Join("orders", "c_custkey", "o_custkey")
               .Project({"c_name", "o_totalprice"})
               .Build();
  auto plan = Plan(*q, **scattered);
  const PlanNode* join = FindNode(*plan, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  // orders carries duplicates under the SD config -> result Dup = 1.
  EXPECT_FALSE(join->active_dup_slots.empty());
  // ... and the dup slot points at the orders side (origin column name
  // prefixed __dup.orders).
  for (int slot : join->active_dup_slots) {
    EXPECT_EQ(join->cols[static_cast<size_t>(slot)].name.rfind("__dup.orders", 0), 0u);
  }
  // Projection path eliminates the duplicates before gathering.
  EXPECT_EQ(CountNodes(*plan, OpKind::kDupElim), 1);
}

TEST_F(RewriterTest, NonLocalJoinInsertsRepartitionOnBothSides) {
  auto hashed = PartitionDatabase(*db_, *MakeAllHashed(db_->schema(), 4));
  ASSERT_TRUE(hashed.ok());
  auto q = QueryBuilder(&db_->schema(), "remote")
               .From("orders")
               .Join("customer", "o_custkey", "c_custkey")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto plan = Plan(*q, **hashed);
  const PlanNode* join = FindNode(*plan, OpKind::kJoin);
  ASSERT_NE(join, nullptr);
  // orders hashed on o_orderkey: repartitioned; customer hashed on
  // c_custkey == join key: stays put.
  EXPECT_EQ(join->children[0]->kind, OpKind::kRepartition);
  EXPECT_EQ(join->children[1]->kind, OpKind::kScan);
}

TEST_F(RewriterTest, AggregationAlignmentSkipsExchange) {
  auto q = QueryBuilder(&db_->schema(), "aligned")
               .From("orders")
               .GroupBy({"o_orderkey"})
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto plan = Plan(*q, *cp_pdb_);  // orders hashed on o_orderkey
  EXPECT_EQ(CountNodes(*plan, OpKind::kRepartition), 0);
  EXPECT_EQ(CountNodes(*plan, OpKind::kGather), 1);
  auto q2 = QueryBuilder(&db_->schema(), "misaligned")
                .From("orders")
                .GroupBy({"o_custkey"})
                .Agg(AggFunc::kCountStar, "", "cnt")
                .Build();
  auto plan2 = Plan(*q2, *cp_pdb_);
  EXPECT_EQ(CountNodes(*plan2, OpKind::kRepartition), 1);
}

TEST_F(RewriterTest, WoOptimizationsUsesValueDistinct) {
  auto q = QueryBuilder(&db_->schema(), "wo")
               .From("customer")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  QueryOptions no_opt;
  no_opt.pref_optimizations = false;
  auto plan = Plan(*q, *sd_pdb_, no_opt);
  EXPECT_EQ(CountNodes(*plan, OpKind::kDupElim), 0);
  EXPECT_EQ(CountNodes(*plan, OpKind::kValueDistinct), 1);
  EXPECT_GE(CountNodes(*plan, OpKind::kRepartition), 1);  // full-row shuffle
}

TEST_F(RewriterTest, SemiRewriteDropsTheJoinEntirely) {
  auto q = QueryBuilder(&db_->schema(), "semi")
               .From("customer")
               .Join("orders", "c_custkey", "o_custkey", JoinType::kSemi)
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto plan = Plan(*q, *sd_pdb_);
  EXPECT_EQ(CountNodes(*plan, OpKind::kJoin), 0);
  const PlanNode* scan = FindNode(*plan, OpKind::kScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_TRUE(scan->scan_has_partner.has_value());
  EXPECT_TRUE(*scan->scan_has_partner);
}

TEST_F(RewriterTest, SemiRewriteBlockedByRightFilter) {
  auto q = QueryBuilder(&db_->schema(), "semi-filtered")
               .From("customer")
               .Join("orders", "c_custkey", "o_custkey", JoinType::kSemi)
               .Where("orders", Gt("o_totalprice", Value(100.0)))
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto plan = Plan(*q, *sd_pdb_);
  EXPECT_EQ(CountNodes(*plan, OpKind::kJoin), 1);  // rewrite not applicable
}

TEST_F(RewriterTest, SemiRewriteBlockedWhenColumnsUsedDownstream) {
  auto q = QueryBuilder(&db_->schema(), "semi-used")
               .From("customer")
               .Join("orders", "c_custkey", "o_custkey", JoinType::kSemi)
               .GroupBy({"c_mktsegment"})
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  // group column is customer's -> rewrite allowed.
  auto plan = Plan(*q, *sd_pdb_);
  EXPECT_EQ(CountNodes(*plan, OpKind::kJoin), 0);
}

TEST_F(RewriterTest, ReplicatedScanMarksReplicated) {
  auto q = QueryBuilder(&db_->schema(), "repl")
               .From("nation")
               .Project({"n_name"})
               .Build();
  auto plan = Plan(*q, *sd_pdb_);
  const PlanNode* scan = FindNode(*plan, OpKind::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(scan->replicated);
  // Gather of a replicated input costs nothing: verify via execution.
  auto r = ExecutePlan(*plan, *sd_pdb_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.bytes_shuffled, 0u);
  EXPECT_EQ(r->rows.num_rows(), 25u);
}

TEST_F(RewriterTest, EffectiveHashChainExposedAsHash) {
  // partsupp PREF by part on ps_partkey = p_partkey with part hashed on
  // p_partkey is co-located and orphan-free -> scan presents as HASH.
  PartitioningConfig config(&db_->schema(), 4);
  ASSERT_TRUE(config.AddHash("part", {"p_partkey"}).ok());
  ASSERT_TRUE(config.AddPref("partsupp", {"ps_partkey"}, "part", {"p_partkey"}).ok());
  auto pdb = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(pdb.ok());
  auto q = QueryBuilder(&db_->schema(), "chain")
               .From("partsupp")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto plan = Plan(*q, **pdb);
  const PlanNode* scan = FindNode(*plan, OpKind::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->part.method, PartitionMethod::kHash);
  EXPECT_FALSE(scan->scan_attach_dup);  // duplicate-free chain
}

TEST_F(RewriterTest, ExecutorHandlesEmptyFilterResults) {
  auto q = QueryBuilder(&db_->schema(), "empty")
               .From("customer")
               .Where("customer", Eq("c_name", Value(std::string("nobody"))))
               .Join("orders", "c_custkey", "o_custkey")
               .GroupBy({"o_orderpriority"})
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto r = ExecuteQuery(*q, *sd_pdb_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.num_rows(), 0u);
}

TEST_F(RewriterTest, PrefPartitionPruningViaPartitionIndex) {
  // Scattered seed: orders PREF by lineitem hashed on l_partkey, so an
  // order's copies live in the partitions its lineitems hash to. A point
  // query on o_orderkey prunes the orders scan to exactly those partitions
  // via the lineitem partition index (§7 outlook, PREF case).
  PartitioningConfig config(&db_->schema(), 8);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_partkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(pdb.ok());
  auto q = QueryBuilder(&db_->schema(), "pref-prune")
               .From("orders")
               .Where("orders", Eq("o_orderkey", Value(int64_t{77})))
               .Project({"o_orderkey", "o_totalprice"})
               .Build();
  ASSERT_TRUE(q.ok());
  QueryOptions pruned;
  pruned.partition_pruning = true;
  auto plan = Plan(*q, **pdb, pruned);
  const PlanNode* scan = FindNode(*plan, OpKind::kScan);
  ASSERT_NE(scan, nullptr);
  ASSERT_FALSE(scan->scan_partitions.empty());
  EXPECT_LT(scan->scan_partitions.size(), 8u);
  // Same results, less work.
  auto with = ExecuteQuery(*q, **pdb, pruned);
  auto without = ExecuteQuery(*q, **pdb);
  ASSERT_TRUE(with.ok() && without.ok());
  ASSERT_EQ(with->rows.num_rows(), without->rows.num_rows());
  EXPECT_GT(with->rows.num_rows(), 0u);
  EXPECT_LT(with->stats.total_rows_processed, without->stats.total_rows_processed);
}

TEST_F(RewriterTest, PrefPruningSkippedForOrphanableKeys) {
  // A key absent from the referenced table might sit anywhere (round-robin
  // orphan): the scan must not be pruned.
  PartitioningConfig config(&db_->schema(), 8);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_partkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db_, std::move(config));
  ASSERT_TRUE(pdb.ok());
  auto q = QueryBuilder(&db_->schema(), "orphan-key")
               .From("orders")
               .Where("orders", Eq("o_orderkey", Value(int64_t{99999999})))
               .Project({"o_orderkey"})
               .Build();
  QueryOptions pruned;
  pruned.partition_pruning = true;
  auto plan = Plan(*q, **pdb, pruned);
  const PlanNode* scan = FindNode(*plan, OpKind::kScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(scan->scan_partitions.empty());
}

TEST_F(RewriterTest, PlanToStringIsStable) {
  auto q = QueryBuilder(&db_->schema(), "tostring")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto a = ExplainQuery(*q, *sd_pdb_);
  auto b = ExplainQuery(*q, *sd_pdb_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace pref
