// Tests for the TPC-H and TPC-DS data generators: cardinality ratios,
// referential integrity, determinism, orphan/skew structure.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <unordered_set>

#include "catalog/tpcds_schema.h"
#include "catalog/tpch_schema.h"
#include "datagen/tpcds_gen.h"
#include "datagen/tpch_gen.h"

namespace pref {
namespace {

TpchGenOptions SmallTpch() {
  TpchGenOptions o;
  o.scale_factor = 0.002;  // ~12k lineitems
  o.seed = 42;
  return o;
}

TEST(TpchGenTest, RejectsBadScaleFactor) {
  TpchGenOptions o;
  o.scale_factor = 0;
  EXPECT_FALSE(GenerateTpch(o).ok());
  o.scale_factor = -1;
  EXPECT_FALSE(GenerateTpch(o).ok());
}

TEST(TpchGenTest, CardinalityRatios) {
  auto db = GenerateTpch(SmallTpch());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db->FindTable("region"))->num_rows(), 5u);
  EXPECT_EQ((*db->FindTable("nation"))->num_rows(), 25u);
  size_t customers = (*db->FindTable("customer"))->num_rows();
  size_t orders = (*db->FindTable("orders"))->num_rows();
  size_t lineitems = (*db->FindTable("lineitem"))->num_rows();
  size_t parts = (*db->FindTable("part"))->num_rows();
  size_t partsupps = (*db->FindTable("partsupp"))->num_rows();
  EXPECT_EQ(customers, 300u);
  EXPECT_EQ(orders, 3000u);
  EXPECT_EQ(partsupps, parts * 4);
  // ~4 lineitems per order on average.
  double per_order = static_cast<double>(lineitems) / static_cast<double>(orders);
  EXPECT_GT(per_order, 3.0);
  EXPECT_LT(per_order, 5.0);
}

TEST(TpchGenTest, Deterministic) {
  auto a = GenerateTpch(SmallTpch());
  auto b = GenerateTpch(SmallTpch());
  ASSERT_TRUE(a.ok() && b.ok());
  const RowBlock& la = (*a->FindTable("lineitem"))->data();
  const RowBlock& lb = (*b->FindTable("lineitem"))->data();
  ASSERT_EQ(la.num_rows(), lb.num_rows());
  for (size_t i = 0; i < std::min<size_t>(la.num_rows(), 100); ++i) {
    EXPECT_EQ(la.GetRow(i), lb.GetRow(i));
  }
  TpchGenOptions other = SmallTpch();
  other.seed = 43;
  auto c = GenerateTpch(other);
  ASSERT_TRUE(c.ok());
  // Different seed must give different data somewhere in the first rows.
  const RowBlock& lc = (*c->FindTable("lineitem"))->data();
  bool any_diff = false;
  for (size_t i = 0; i < std::min<size_t>({la.num_rows(), lc.num_rows(), 50});
       ++i) {
    if (la.GetRow(i) != lc.GetRow(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TpchGenTest, ReferentialIntegrity) {
  auto db = GenerateTpch(SmallTpch());
  ASSERT_TRUE(db.ok());
  // Every o_custkey exists in customer.
  const RowBlock& c = (*db->FindTable("customer"))->data();
  std::unordered_set<int64_t> custkeys(c.column(0).ints().begin(),
                                       c.column(0).ints().end());
  for (int64_t ck : (*db->FindTable("orders"))->data().column(1).ints()) {
    EXPECT_TRUE(custkeys.count(ck)) << ck;
  }
  // Every l_orderkey exists in orders.
  const RowBlock& o = (*db->FindTable("orders"))->data();
  std::unordered_set<int64_t> orderkeys(o.column(0).ints().begin(),
                                        o.column(0).ints().end());
  for (int64_t ok : (*db->FindTable("lineitem"))->data().column(0).ints()) {
    EXPECT_TRUE(orderkeys.count(ok)) << ok;
  }
  // Every (l_partkey, l_suppkey) exists in partsupp.
  const RowBlock& ps = (*db->FindTable("partsupp"))->data();
  std::set<std::pair<int64_t, int64_t>> pskeys;
  for (size_t i = 0; i < ps.num_rows(); ++i) {
    pskeys.insert({ps.column(0).GetInt64(i), ps.column(1).GetInt64(i)});
  }
  const RowBlock& l = (*db->FindTable("lineitem"))->data();
  for (size_t i = 0; i < l.num_rows(); ++i) {
    EXPECT_TRUE(
        pskeys.count({l.column(1).GetInt64(i), l.column(2).GetInt64(i)}))
        << "row " << i;
  }
}

TEST(TpchGenTest, OneThirdOfCustomersHaveNoOrders) {
  auto db = GenerateTpch(SmallTpch());
  ASSERT_TRUE(db.ok());
  std::unordered_set<int64_t> with_orders(
      (*db->FindTable("orders"))->data().column(1).ints().begin(),
      (*db->FindTable("orders"))->data().column(1).ints().end());
  size_t customers = (*db->FindTable("customer"))->num_rows();
  // Customers with custkey % 3 == 0 never appear.
  for (int64_t ck : with_orders) EXPECT_NE(ck % 3, 0);
  // So at least ~1/3 of customers are orderless.
  EXPECT_LE(with_orders.size(), customers * 2 / 3 + 1);
}

TEST(TpchGenTest, PartsuppHasDistinctSuppliersPerPart) {
  auto db = GenerateTpch(SmallTpch());
  ASSERT_TRUE(db.ok());
  const RowBlock& ps = (*db->FindTable("partsupp"))->data();
  std::map<int64_t, std::set<int64_t>> suppliers_of;
  for (size_t i = 0; i < ps.num_rows(); ++i) {
    suppliers_of[ps.column(0).GetInt64(i)].insert(ps.column(1).GetInt64(i));
  }
  for (const auto& [part, sups] : suppliers_of) {
    EXPECT_EQ(sups.size(), 4u) << "part " << part;
  }
}

TpcdsGenOptions SmallTpcds() {
  TpcdsGenOptions o;
  o.scale_factor = 0.05;
  o.seed = 7;
  return o;
}

TEST(TpcdsGenTest, RejectsBadOptions) {
  TpcdsGenOptions o;
  o.scale_factor = 0;
  EXPECT_FALSE(GenerateTpcds(o).ok());
  o = TpcdsGenOptions();
  o.skew = 1.0;
  EXPECT_FALSE(GenerateTpcds(o).ok());
}

TEST(TpcdsGenTest, AllTablesPopulated) {
  auto db = GenerateTpcds(SmallTpcds());
  ASSERT_TRUE(db.ok());
  for (const auto& t : db->schema().tables()) {
    EXPECT_GT(db->table(t.id).num_rows(), 0u) << t.name;
  }
  // Fact tables dominate.
  EXPECT_GT((*db->FindTable("store_sales"))->num_rows(),
            (*db->FindTable("item"))->num_rows());
}

TEST(TpcdsGenTest, SurrogateKeysAreSequences) {
  auto db = GenerateTpcds(SmallTpcds());
  ASSERT_TRUE(db.ok());
  const RowBlock& item = (*db->FindTable("item"))->data();
  for (size_t i = 0; i < item.num_rows(); ++i) {
    EXPECT_EQ(item.column(0).GetInt64(i), static_cast<int64_t>(i + 1));
  }
}

TEST(TpcdsGenTest, FactForeignKeysInDomainOrOrphan) {
  auto db = GenerateTpcds(SmallTpcds());
  ASSERT_TRUE(db.ok());
  int64_t n_items = static_cast<int64_t>((*db->FindTable("item"))->num_rows());
  int orphans = 0;
  const auto& col = (*db->FindTable("store_sales"))->data().column(2);  // ss_item_sk
  for (int64_t v : col.ints()) {
    if (v == -1) {
      orphans++;
    } else {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, n_items);
    }
  }
  // ~2% orphans.
  double frac = static_cast<double>(orphans) / static_cast<double>(col.size());
  EXPECT_GT(frac, 0.005);
  EXPECT_LT(frac, 0.05);
}

TEST(TpcdsGenTest, FactKeysAreSkewed) {
  auto db = GenerateTpcds(SmallTpcds());
  ASSERT_TRUE(db.ok());
  // Top-decile of customers should receive far more than 10% of sales.
  const auto& col = (*db->FindTable("store_sales"))->data().column(3);  // customer
  int64_t n_cust = static_cast<int64_t>((*db->FindTable("customer"))->num_rows());
  int64_t head = 0, total = 0;
  for (int64_t v : col.ints()) {
    if (v == -1) continue;
    total++;
    if (v <= n_cust / 10) head++;
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.25);
}

TEST(TpcdsGenTest, ReturnsReferenceRealSales) {
  auto db = GenerateTpcds(SmallTpcds());
  ASSERT_TRUE(db.ok());
  const RowBlock& ss = (*db->FindTable("store_sales"))->data();
  const TableDef& ssd = (*db->FindTable("store_sales"))->def();
  ColumnId ss_item = *ssd.FindColumn("ss_item_sk");
  ColumnId ss_tick = *ssd.FindColumn("ss_ticket_number");
  std::set<std::pair<int64_t, int64_t>> sales_keys;
  for (size_t i = 0; i < ss.num_rows(); ++i) {
    sales_keys.insert({ss.column(ss_item).GetInt64(i), ss.column(ss_tick).GetInt64(i)});
  }
  const RowBlock& sr = (*db->FindTable("store_returns"))->data();
  const TableDef& srd = (*db->FindTable("store_returns"))->def();
  ColumnId sr_item = *srd.FindColumn("sr_item_sk");
  ColumnId sr_tick = *srd.FindColumn("sr_ticket_number");
  for (size_t i = 0; i < sr.num_rows(); ++i) {
    EXPECT_TRUE(sales_keys.count(
        {sr.column(sr_item).GetInt64(i), sr.column(sr_tick).GetInt64(i)}))
        << "return row " << i;
  }
}

TEST(TpcdsGenTest, Deterministic) {
  auto a = GenerateTpcds(SmallTpcds());
  auto b = GenerateTpcds(SmallTpcds());
  ASSERT_TRUE(a.ok() && b.ok());
  const RowBlock& fa = (*a->FindTable("web_sales"))->data();
  const RowBlock& fb = (*b->FindTable("web_sales"))->data();
  ASSERT_EQ(fa.num_rows(), fb.num_rows());
  for (size_t i = 0; i < std::min<size_t>(fa.num_rows(), 50); ++i) {
    EXPECT_EQ(fa.GetRow(i), fb.GetRow(i));
  }
}

}  // namespace
}  // namespace pref
