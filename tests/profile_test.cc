// QueryProfile identity tests (DESIGN.md §11): the deterministic sections
// of a profile — EXPLAIN ANALYZE text and JSON rendered without the
// wall-clock timings section — must be *byte-identical* across pool widths
// (PREF_THREADS 1/2/4/8) and under concurrent serving at 4 clients, the
// same invariance the executor promises for results. Also checks the
// locality accounting is internally consistent (flows sum to the
// local/remote totals) and the JSON parses.
//
// Runs under ThreadSanitizer and AddressSanitizer in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"
#include "datagen/tpch_gen.h"
#include "engine/profile.h"
#include "engine/scheduler.h"
#include "partition/partitioner.h"
#include "test_util.h"
#include "workloads/tpch_queries.h"

namespace pref {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new Database(std::move(*db));
    auto config = MakeTpchSdManual(db_->schema(), 4);
    auto pdb = PartitionDatabase(*db_, config);
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    pdb_ = pdb->release();
  }
  static void TearDownTestSuite() {
    delete pdb_;
    delete db_;
    pdb_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static PartitionedDatabase* pdb_;
};

Database* ProfileTest::db_ = nullptr;
PartitionedDatabase* ProfileTest::pdb_ = nullptr;

/// The deterministic renders: EXPLAIN ANALYZE text and JSON, both without
/// the wall-clock timings section.
struct Renders {
  std::string text;
  std::string json;
};

Renders RenderDeterministic(const QueryProfile& profile) {
  ProfileRenderOptions opts;
  opts.include_timings = false;
  return {profile.ExplainAnalyze(opts), profile.ToJson(opts)};
}

TEST_F(ProfileTest, BitIdenticalAcrossPoolWidths) {
  const auto queries = TpchQueries(db_->schema());
  std::vector<Renders> reference;
  {
    ThreadPool pool(1);
    for (const auto& q : queries) {
      auto result = ExecuteQuery(q, *pdb_, {}, {}, &pool);
      ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
      reference.push_back(RenderDeterministic(
          QueryProfile::FromStats(q.name, result->stats)));
    }
  }
  for (int width : {2, 4, 8}) {
    ThreadPool pool(width);
    for (size_t i = 0; i < queries.size(); ++i) {
      auto result = ExecuteQuery(queries[i], *pdb_, {}, {}, &pool);
      ASSERT_TRUE(result.ok()) << queries[i].name;
      const Renders got = RenderDeterministic(
          QueryProfile::FromStats(queries[i].name, result->stats));
      EXPECT_EQ(got.text, reference[i].text)
          << queries[i].name << " at width " << width;
      EXPECT_EQ(got.json, reference[i].json)
          << queries[i].name << " at width " << width;
    }
  }
}

TEST_F(ProfileTest, BitIdenticalUnderConcurrentServing) {
  const auto queries = TpchQueries(db_->schema());
  std::vector<Renders> reference;
  {
    ThreadPool pool(1);
    for (const auto& q : queries) {
      auto result = ExecuteQuery(q, *pdb_, {}, {}, &pool);
      ASSERT_TRUE(result.ok()) << q.name;
      reference.push_back(RenderDeterministic(
          QueryProfile::FromStats(q.name, result->stats)));
    }
  }
  ThreadPool pool(4);
  QueryScheduler scheduler(*pdb_, {/*max_in_flight=*/4, &pool});
  constexpr int kRounds = 2;
  std::vector<std::pair<uint64_t, size_t>> submitted;
  for (int r = 0; r < kRounds; ++r) {
    for (size_t i = 0; i < queries.size(); ++i) {
      submitted.emplace_back(scheduler.Submit(queries[i]), i);
    }
  }
  for (const auto& [id, qidx] : submitted) {
    QueryProfile profile;
    auto result = scheduler.Take(id, &profile);
    ASSERT_TRUE(result.ok()) << queries[qidx].name;
    EXPECT_TRUE(profile.has_timings);
    EXPECT_EQ(profile.query_id, id);
    EXPECT_GE(profile.timings.admission_wait_seconds, 0);
    EXPECT_GE(profile.timings.queue_wait_seconds, 0);
    EXPECT_GE(profile.timings.run_seconds, 0);
    EXPECT_GE(profile.timings.time_to_first_morsel_seconds, 0);
    EXPECT_LE(profile.timings.time_to_first_morsel_seconds,
              profile.stats.wall_seconds);
    const Renders got = RenderDeterministic(profile);
    EXPECT_EQ(got.text, reference[qidx].text) << queries[qidx].name;
    EXPECT_EQ(got.json, reference[qidx].json) << queries[qidx].name;
  }
}

TEST_F(ProfileTest, LocalityAccountingConsistent) {
  const auto queries = TpchQueries(db_->schema());
  for (const auto& q : queries) {
    auto result = ExecuteQuery(q, *pdb_);
    ASSERT_TRUE(result.ok()) << q.name;
    const ExecStats& stats = result->stats;
    EXPECT_GE(stats.LocalityRatio(), 0.0) << q.name;
    EXPECT_LE(stats.LocalityRatio(), 1.0) << q.name;
    size_t op_local = 0, op_remote = 0;
    for (const auto& op : stats.operators) {
      size_t flow_rows = 0, flow_local = 0, flow_bytes = 0;
      int prev = -1;
      for (const auto& f : op.flows) {
        // Source-major, target-minor: the emit order is fixed, not
        // pool-scheduling dependent.
        const int key = f.source * 1000 + f.target;
        EXPECT_GT(key, prev) << q.name << " op " << op.op;
        prev = key;
        flow_rows += f.rows;
        flow_bytes += f.bytes;
        if (f.source == f.target) {
          flow_local += f.rows;
          EXPECT_EQ(f.bytes, 0u) << q.name;
        }
      }
      EXPECT_EQ(flow_local, op.rows_local) << q.name << " op " << op.op;
      EXPECT_EQ(flow_rows - flow_local, op.rows_shuffled)
          << q.name << " op " << op.op;
      EXPECT_EQ(flow_bytes, op.bytes_shuffled) << q.name << " op " << op.op;
      if (op.exchanges == 0) {
        EXPECT_TRUE(op.flows.empty()) << q.name;
      }
      op_local += op.rows_local;
      op_remote += op.rows_shuffled;
    }
    EXPECT_EQ(op_local, stats.rows_local) << q.name;
    EXPECT_EQ(op_remote, stats.rows_shuffled) << q.name;
  }
}

TEST_F(ProfileTest, RendersParseAndAnnotate) {
  const auto queries = TpchQueries(db_->schema());
  ASSERT_FALSE(queries.empty());
  const auto& q = queries[0];
  auto result = ExecuteQuery(q, *pdb_);
  ASSERT_TRUE(result.ok());
  QueryProfile profile = QueryProfile::FromStats(q.name, result->stats);
  profile.has_timings = true;  // exercise the timings sections too
  profile.timings.run_seconds = 0.25;

  std::vector<std::string> keys;
  ASSERT_TRUE(JsonValidator::Valid(profile.ToJson(), &keys));
  EXPECT_NE(std::find(keys.begin(), keys.end(), "summary"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "operators"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "timings"), keys.end());

  ProfileRenderOptions no_timings;
  no_timings.include_timings = false;
  std::vector<std::string> keys2;
  ASSERT_TRUE(JsonValidator::Valid(profile.ToJson(no_timings), &keys2));
  EXPECT_EQ(std::find(keys2.begin(), keys2.end(), "timings"), keys2.end());

  const std::string text = profile.ExplainAnalyze();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("locality="), std::string::npos);
  EXPECT_NE(text.find("Scan"), std::string::npos);
  EXPECT_NE(text.find("timings:"), std::string::npos);
  EXPECT_EQ(profile.ExplainAnalyze(no_timings).find("timings:"),
            std::string::npos);
}

}  // namespace
}  // namespace pref
