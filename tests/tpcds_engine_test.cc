// End-to-end TPC-DS engine tests: the executable query set runs under
// multiple designed configurations and matches the single-node reference.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "catalog/tpcds_schema.h"
#include "datagen/tpcds_gen.h"
#include "design/sd_design.h"
#include "design/wd_design.h"
#include "engine/executor.h"
#include "partition/presets.h"
#include "sql/parser.h"
#include "workloads/tpcds_queries.h"
#include "workloads/tpcds_workload.h"

namespace pref {
namespace {

struct CanonRow {
  std::string key;
  std::vector<double> doubles;
};

void ExpectSame(const QueryResult& e, const QueryResult& a, const std::string& q) {
  ASSERT_EQ(e.rows.num_rows(), a.rows.num_rows()) << q;
  auto canon = [](const QueryResult& r) {
    std::map<std::string, std::vector<double>> m;
    for (size_t i = 0; i < r.rows.num_rows(); ++i) {
      std::string key;
      std::vector<double> ds;
      for (int c = 0; c < r.rows.num_columns(); ++c) {
        const Column& col = r.rows.column(c);
        if (col.is_double()) {
          ds.push_back(col.GetDouble(i));
        } else if (col.is_int()) {
          key += std::to_string(col.GetInt64(i)) + "|";
        } else {
          key += col.GetString(i) + "|";
        }
      }
      auto& bucket = m[key];
      bucket.insert(bucket.end(), ds.begin(), ds.end());
    }
    for (auto& [k, ds] : m) std::sort(ds.begin(), ds.end());
    return m;
  };
  auto em = canon(e), am = canon(a);
  ASSERT_EQ(em.size(), am.size()) << q;
  for (const auto& [key, evals] : em) {
    ASSERT_TRUE(am.count(key)) << q << " key " << key;
    const auto& avals = am[key];
    ASSERT_EQ(evals.size(), avals.size()) << q;
    for (size_t i = 0; i < evals.size(); ++i) {
      EXPECT_NEAR(evals[i], avals[i], std::fabs(evals[i]) * 1e-9 + 1e-6)
          << q << " key " << key;
    }
  }
}

class TpcdsEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpcdsGenOptions gen;
    gen.scale_factor = 0.05;
    auto db = GenerateTpcds(gen);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    auto ref = PartitionDatabase(*db_, *MakeAllHashed(db_->schema(), 1));
    ASSERT_TRUE(ref.ok());
    reference_ = ref->release();
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete db_;
    reference_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static PartitionedDatabase* reference_;
};

Database* TpcdsEngineTest::db_ = nullptr;
PartitionedDatabase* TpcdsEngineTest::reference_ = nullptr;

TEST_F(TpcdsEngineTest, AllQueriesParseAndRunOnReference) {
  auto queries = TpcdsExecutableQueries(db_->schema());
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_GE(queries->size(), 12u);
  for (const auto& q : *queries) {
    auto r = ExecuteQuery(q, *reference_);
    ASSERT_TRUE(r.ok()) << q.name << ": " << r.status().ToString();
    EXPECT_GT(r->rows.num_rows(), 0u) << q.name;
  }
}

TEST_F(TpcdsEngineTest, SdNaiveConfigMatchesReference) {
  SdOptions options;
  options.num_partitions = 6;
  options.replicate_tables = TpcdsSmallTables();
  auto sd = SchemaDrivenDesign(*db_, options);
  ASSERT_TRUE(sd.ok());
  auto pdb = PartitionDatabase(*db_, sd->config);
  ASSERT_TRUE(pdb.ok());
  auto queries = TpcdsExecutableQueries(db_->schema());
  ASSERT_TRUE(queries.ok());
  for (const auto& q : *queries) {
    auto expected = ExecuteQuery(q, *reference_);
    auto actual = ExecuteQuery(q, **pdb);
    ASSERT_TRUE(expected.ok()) << q.name;
    ASSERT_TRUE(actual.ok()) << q.name << ": " << actual.status().ToString();
    ExpectSame(*expected, *actual, q.name);
  }
}

TEST_F(TpcdsEngineTest, WdRoutedConfigsMatchReference) {
  auto graphs = TpcdsQueryGraphs(db_->schema());
  ASSERT_TRUE(graphs.ok());
  WdOptions options;
  options.num_partitions = 6;
  options.replicate_tables = TpcdsSmallTables();
  auto wd = WorkloadDrivenDesign(*db_, *graphs, options);
  ASSERT_TRUE(wd.ok());
  auto pdbs = wd->deployment.Materialize(*db_);
  ASSERT_TRUE(pdbs.ok());
  auto queries = TpcdsExecutableQueries(db_->schema());
  ASSERT_TRUE(queries.ok());
  int routed_count = 0;
  for (const auto& q : *queries) {
    std::vector<TableId> tables;
    for (const auto& ref : q.tables) {
      tables.push_back(*db_->schema().FindTable(ref.table));
    }
    // Route to the first covering configuration, if any.
    const PartitionedDatabase* target = nullptr;
    for (size_t i = 0; i < wd->deployment.configs().size(); ++i) {
      bool all = true;
      for (TableId t : tables) all &= wd->deployment.configs()[i].Contains(t);
      if (all) {
        target = (*pdbs)[i].get();
        break;
      }
    }
    if (target == nullptr) continue;  // not every ad-hoc query is covered
    routed_count++;
    auto expected = ExecuteQuery(q, *reference_);
    auto actual = ExecuteQuery(q, *target);
    ASSERT_TRUE(expected.ok() && actual.ok())
        << q.name << ": " << actual.status().ToString();
    ExpectSame(*expected, *actual, q.name);
  }
  EXPECT_GE(routed_count, 8) << "too few queries routed to WD configurations";
}

TEST_F(TpcdsEngineTest, SalesReturnsCompositeJoinLocalUnderSd) {
  // store_returns PREF by store_sales on the composite key makes the
  // returns join fully local under the SD design.
  SdOptions options;
  options.num_partitions = 6;
  options.replicate_tables = TpcdsSmallTables();
  auto sd = SchemaDrivenDesign(*db_, options);
  ASSERT_TRUE(sd.ok());
  TableId sr = *db_->schema().FindTable("store_returns");
  // Only meaningful if the design PREF-chained sr to ss (it should:
  // the composite edge is the heaviest incident edge).
  if (sd->config.spec(sr).method != PartitionMethod::kPref) {
    GTEST_SKIP() << "design did not PREF store_returns";
  }
  auto pdb = PartitionDatabase(*db_, sd->config);
  ASSERT_TRUE(pdb.ok());
  auto q = sql::ParseQuery(db_->schema(),
                           "SELECT COUNT(*) AS cnt FROM store_returns "
                           "JOIN store_sales ON sr_item_sk = ss_item_sk AND "
                           "sr_ticket_number = ss_ticket_number");
  ASSERT_TRUE(q.ok());
  auto r = ExecuteQuery(*q, **pdb);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.column(0).GetInt64(0),
            static_cast<int64_t>((*db_->FindTable("store_returns"))->num_rows()));
}

}  // namespace
}  // namespace pref
