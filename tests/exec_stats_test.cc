// Tests for the per-operator ExecStats breakdown: operator entries form a
// valid pre-order tree, their totals sum exactly to the aggregate fields
// (they are derived by folding, so this guards the derivation), Merge()
// accumulates across queries, and the executor's simulated timeline
// exports one span per operator per node.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.h"
#include "common/trace.h"
#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "partition/partitioner.h"
#include "test_util.h"
#include "workloads/tpch_queries.h"

namespace pref {
namespace {

class ExecStatsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new Database(std::move(*db));
    auto config = MakeTpchSdManual(db_->schema(), 4);
    auto pdb = PartitionDatabase(*db_, config);
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    pdb_ = pdb->release();
  }
  static void TearDownTestSuite() {
    delete pdb_;
    delete db_;
    pdb_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static PartitionedDatabase* pdb_;
};

Database* ExecStatsTest::db_ = nullptr;
PartitionedDatabase* ExecStatsTest::pdb_ = nullptr;

void ExpectBreakdownSumsToAggregates(const ExecStats& stats) {
  ASSERT_FALSE(stats.operators.empty());
  size_t bytes = 0, rows_shuffled = 0, rows_processed = 0;
  int exchanges = 0;
  std::vector<size_t> node_rows(stats.node_rows.size(), 0);
  for (const auto& op : stats.operators) {
    bytes += op.bytes_shuffled;
    rows_shuffled += op.rows_shuffled;
    rows_processed += op.rows_processed;
    exchanges += op.exchanges;
    ASSERT_LE(op.node_rows.size(), node_rows.size());
    for (size_t p = 0; p < op.node_rows.size(); ++p) {
      node_rows[p] += op.node_rows[p];
    }
    // rows_processed of one operator is by definition the sum of its
    // per-node charges.
    size_t own = 0;
    for (size_t r : op.node_rows) own += r;
    EXPECT_EQ(op.rows_processed, own) << op.op;
  }
  EXPECT_EQ(bytes, stats.bytes_shuffled);
  EXPECT_EQ(rows_shuffled, stats.rows_shuffled);
  EXPECT_EQ(rows_processed, stats.total_rows_processed);
  EXPECT_EQ(exchanges, stats.exchanges);
  EXPECT_EQ(node_rows, stats.node_rows);
}

TEST_F(ExecStatsTest, BreakdownSumsExactlyToAggregates) {
  auto queries = TpchQueries(db_->schema());
  // Q3 (multi-join) and Q6 (single-table filter) exercise different plan
  // shapes.
  for (size_t i : {2u, 5u}) {
    auto r = ExecuteQuery(queries[i], *pdb_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectBreakdownSumsToAggregates(r->stats);
  }
}

TEST_F(ExecStatsTest, OperatorsFormPreOrderTree) {
  auto queries = TpchQueries(db_->schema());
  auto r = ExecuteQuery(queries[2], *pdb_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& ops = r->stats.operators;
  ASSERT_FALSE(ops.empty());
  EXPECT_EQ(ops[0].parent, -1);
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].index, static_cast<int>(i));
    EXPECT_FALSE(ops[i].op.empty());
    if (i > 0) {
      // Pre-order: every non-root operator's parent precedes it.
      EXPECT_GE(ops[i].parent, 0);
      EXPECT_LT(ops[i].parent, static_cast<int>(i));
    }
  }
}

TEST_F(ExecStatsTest, WallSecondsIsPopulated) {
  auto queries = TpchQueries(db_->schema());
  auto r = ExecuteQuery(queries[2], *pdb_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->stats.wall_seconds, 0.0);
}

TEST(ExecStatsMerge, SumsAggregatesAndAppendsOperators) {
  ExecStats a, b;
  a.bytes_shuffled = 100;
  a.rows_shuffled = 10;
  a.exchanges = 1;
  a.total_rows_processed = 50;
  a.wall_seconds = 0.5;
  a.node_rows = {30, 20};
  a.operators.resize(2);
  b.bytes_shuffled = 7;
  b.rows_shuffled = 3;
  b.exchanges = 2;
  b.total_rows_processed = 9;
  b.wall_seconds = 0.25;
  b.node_rows = {4, 5, 6};  // wider than a: element-wise with resize
  b.operators.resize(1);
  a.Merge(b);
  EXPECT_EQ(a.bytes_shuffled, 107u);
  EXPECT_EQ(a.rows_shuffled, 13u);
  EXPECT_EQ(a.exchanges, 3);
  EXPECT_EQ(a.total_rows_processed, 59u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);
  ASSERT_EQ(a.node_rows.size(), 3u);
  EXPECT_EQ(a.node_rows[0], 34u);
  EXPECT_EQ(a.node_rows[1], 25u);
  EXPECT_EQ(a.node_rows[2], 6u);
  EXPECT_EQ(a.operators.size(), 3u);
}

TEST(ExecStatsMerge, EmptyStatsMergeIsIdentity) {
  ExecStats a;
  a.bytes_shuffled = 12;
  a.rows_shuffled = 3;
  a.rows_local = 9;
  a.exchanges = 1;
  a.total_rows_processed = 40;
  a.wall_seconds = 0.125;
  a.node_rows = {25, 15};
  a.operators.resize(2);
  a.operators[0].op = "Scan";
  a.operators[1].op = "Exchange";

  // Merging default-constructed stats changes nothing.
  a.Merge(ExecStats{});
  EXPECT_EQ(a.bytes_shuffled, 12u);
  EXPECT_EQ(a.rows_shuffled, 3u);
  EXPECT_EQ(a.rows_local, 9u);
  EXPECT_EQ(a.exchanges, 1);
  EXPECT_EQ(a.total_rows_processed, 40u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.125);
  EXPECT_EQ(a.node_rows, (std::vector<size_t>{25, 15}));
  EXPECT_EQ(a.operators.size(), 2u);

  // Merging into empty stats reproduces the source.
  ExecStats fresh;
  fresh.Merge(a);
  EXPECT_EQ(fresh.bytes_shuffled, a.bytes_shuffled);
  EXPECT_EQ(fresh.rows_shuffled, a.rows_shuffled);
  EXPECT_EQ(fresh.rows_local, a.rows_local);
  EXPECT_EQ(fresh.exchanges, a.exchanges);
  EXPECT_EQ(fresh.total_rows_processed, a.total_rows_processed);
  EXPECT_DOUBLE_EQ(fresh.wall_seconds, a.wall_seconds);
  EXPECT_EQ(fresh.node_rows, a.node_rows);
  ASSERT_EQ(fresh.operators.size(), 2u);
  EXPECT_EQ(fresh.operators[1].op, "Exchange");
}

TEST(ExecStatsMerge, DisjointOperatorBreakdownsAppendInOrder) {
  ExecStats a;
  OperatorStats scan;
  scan.index = 0;
  scan.parent = -1;
  scan.op = "Scan";
  scan.detail = "lineitem";
  scan.rows_out = 100;
  scan.rows_processed = 100;
  scan.node_rows = {60, 40};
  a.operators.push_back(scan);
  a.total_rows_processed = 100;
  a.node_rows = {60, 40};

  ExecStats b;
  OperatorStats ex;
  ex.index = 0;
  ex.parent = -1;
  ex.op = "Exchange";
  ex.exchanges = 1;
  ex.rows_local = 30;
  ex.rows_shuffled = 70;
  ex.bytes_shuffled = 700;
  ex.flows = {{0, 0, 30, 0}, {0, 1, 70, 700}};
  b.operators.push_back(ex);
  b.exchanges = 1;
  b.rows_local = 30;
  b.rows_shuffled = 70;
  b.bytes_shuffled = 700;

  a.Merge(b);
  // Disjoint breakdowns append in order with every field intact —
  // including the flow matrices, which downstream profile renders rely on.
  ASSERT_EQ(a.operators.size(), 2u);
  EXPECT_EQ(a.operators[0].detail, "lineitem");
  EXPECT_EQ(a.operators[1].op, "Exchange");
  ASSERT_EQ(a.operators[1].flows.size(), 2u);
  EXPECT_EQ(a.operators[1].flows[1].bytes, 700u);
  EXPECT_EQ(a.rows_local, 30u);
  EXPECT_EQ(a.rows_shuffled, 70u);
  EXPECT_DOUBLE_EQ(a.LocalityRatio(), 0.3);
}

TEST(ExecStatsMerge, MergeOperatorFoldsFlowTotalsIntoAggregates) {
  OperatorStats ex;
  ex.op = "Exchange";
  ex.exchanges = 1;
  ex.flows = {{0, 0, 10, 0}, {0, 1, 5, 50}, {1, 0, 7, 70}, {1, 1, 20, 0}};
  for (const ExchangeFlow& f : ex.flows) {
    if (f.source == f.target) {
      ex.rows_local += f.rows;
    } else {
      ex.rows_shuffled += f.rows;
      ex.bytes_shuffled += f.bytes;
    }
  }

  ExecStats stats;
  stats.MergeOperator(ex);
  EXPECT_EQ(stats.rows_local, 30u);
  EXPECT_EQ(stats.rows_shuffled, 12u);
  EXPECT_EQ(stats.bytes_shuffled, 120u);
  EXPECT_EQ(stats.exchanges, 1);
  EXPECT_DOUBLE_EQ(stats.LocalityRatio(), 30.0 / 42.0);

  // No exchange input at all counts as fully local.
  EXPECT_DOUBLE_EQ(ExecStats{}.LocalityRatio(), 1.0);
}

#if PREF_METRICS
TEST_F(ExecStatsTest, SimulatedTimelineEmitsOneSpanPerOperatorPerNode) {
  Tracer& tracer = Tracer::Default();
  tracer.Clear();
  tracer.SetEnabled(true);
  auto queries = TpchQueries(db_->schema());
  auto r = ExecuteQuery(queries[2], *pdb_);
  tracer.SetEnabled(false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  tracer.Clear();
  ASSERT_TRUE(JsonValidator::Valid(json));

  size_t node_spans = 0;
  const std::string needle = "\"cat\":\"sim.node\"";
  for (size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + needle.size())) {
    ++node_spans;
  }
  const size_t nodes = r->stats.node_rows.size();
  EXPECT_EQ(node_spans, r->stats.operators.size() * nodes);
}
#endif  // PREF_METRICS

}  // namespace
}  // namespace pref
