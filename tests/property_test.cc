// Parameterized property tests: Definition-1 invariants, losslessness and
// metric bounds swept across partitioning configurations, partition
// counts and data seeds; incremental-load equivalence swept across batch
// splits; estimator laws swept across partition counts and skew.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/tpch_gen.h"
#include "design/estimator.h"
#include "engine/executor.h"
#include "partition/bulk_loader.h"
#include "partition/locality.h"
#include "partition/partitioner.h"
#include "partition/presets.h"
#include "test_util.h"

namespace pref {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: every configuration kind x partition count x data seed keeps
// the Definition-1 invariants and loses no tuples.
// ---------------------------------------------------------------------

enum class ConfigKind {
  kSdManual,       // hash seed + 4-table PREF chain
  kClassical,      // co-hash + replication
  kAllHashed,      // no PREF at all
  kRangeChain,     // range seed + PREF
  kRoundRobinChain // round-robin seed + PREF
};

std::string KindName(ConfigKind k) {
  switch (k) {
    case ConfigKind::kSdManual:
      return "SdManual";
    case ConfigKind::kClassical:
      return "Classical";
    case ConfigKind::kAllHashed:
      return "AllHashed";
    case ConfigKind::kRangeChain:
      return "RangeChain";
    case ConfigKind::kRoundRobinChain:
      return "RoundRobinChain";
  }
  return "?";
}

Result<PartitioningConfig> BuildConfig(ConfigKind kind, const Database& db, int n) {
  const Schema& schema = db.schema();
  switch (kind) {
    case ConfigKind::kSdManual:
      return MakeTpchSdManual(schema, n);
    case ConfigKind::kClassical:
      return MakeTpchClassical(schema, n);
    case ConfigKind::kAllHashed:
      return MakeAllHashed(schema, n);
    case ConfigKind::kRangeChain: {
      PartitioningConfig config(&schema, n);
      int64_t orders = static_cast<int64_t>((*db.FindTable("orders"))->num_rows());
      std::vector<Value> bounds;
      for (int i = 1; i < n; ++i) {
        bounds.push_back(Value(orders * i / n + 1));
      }
      PREF_RETURN_NOT_OK(config.AddRange("orders", "o_orderkey", std::move(bounds)));
      PREF_RETURN_NOT_OK(
          config.AddPref("lineitem", {"l_orderkey"}, "orders", {"o_orderkey"}));
      PREF_RETURN_NOT_OK(
          config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}));
      PREF_RETURN_NOT_OK(config.Finalize());
      return config;
    }
    case ConfigKind::kRoundRobinChain: {
      PartitioningConfig config(&schema, n);
      PREF_RETURN_NOT_OK(config.AddRoundRobin("customer"));
      PREF_RETURN_NOT_OK(
          config.AddPref("orders", {"o_custkey"}, "customer", {"c_custkey"}));
      PREF_RETURN_NOT_OK(
          config.AddPref("lineitem", {"l_orderkey"}, "orders", {"o_orderkey"}));
      PREF_RETURN_NOT_OK(config.Finalize());
      return config;
    }
  }
  return Status::Internal("unknown kind");
}

using PartitionSweepParam = std::tuple<ConfigKind, int /*partitions*/, int /*seed*/>;

class PartitionSweepTest : public ::testing::TestWithParam<PartitionSweepParam> {};

TEST_P(PartitionSweepTest, InvariantsHold) {
  auto [kind, n, seed] = GetParam();
  auto db = GenerateTpch({0.001, static_cast<uint64_t>(seed)});
  ASSERT_TRUE(db.ok());
  auto config = BuildConfig(kind, *db, n);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  auto pdb = PartitionDatabase(*db, *config);
  ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();

  for (const auto& [table_id, spec] : config->specs()) {
    const PartitionedTable* pt = (*pdb)->GetTable(table_id);
    ASSERT_NE(pt, nullptr);
    // Losslessness: distinct rows equal the base cardinality.
    EXPECT_EQ(pt->DistinctRows(), db->table(table_id).num_rows())
        << db->schema().table(table_id).name;
    // Full Definition-1 check for PREF tables.
    if (spec.method == PartitionMethod::kPref) {
      CheckPrefInvariants(*db, **pdb, table_id);
    }
    // Non-PREF, non-replicated tables never duplicate.
    if (spec.method == PartitionMethod::kHash ||
        spec.method == PartitionMethod::kRange ||
        spec.method == PartitionMethod::kRoundRobin) {
      EXPECT_EQ(pt->TotalRows(), db->table(table_id).num_rows());
    }
  }
  // DR bounds: [0, n-1].
  double dr = (*pdb)->DataRedundancy();
  EXPECT_GE(dr, -1e-9);
  EXPECT_LE(dr, static_cast<double>(n - 1) + 1e-9);
}

TEST_P(PartitionSweepTest, QueryOracleAgrees) {
  auto [kind, n, seed] = GetParam();
  auto db = GenerateTpch({0.001, static_cast<uint64_t>(seed)});
  ASSERT_TRUE(db.ok());
  auto config = BuildConfig(kind, *db, n);
  ASSERT_TRUE(config.ok());
  auto pdb = PartitionDatabase(*db, *config);
  ASSERT_TRUE(pdb.ok());
  auto ref = PartitionDatabase(*db, *MakeAllHashed(db->schema(), 1));
  ASSERT_TRUE(ref.ok());

  // A 3-way join + group-by touching only tables present in every kind.
  auto q = QueryBuilder(&db->schema(), "oracle")
               .From("lineitem")
               .Join("orders", "l_orderkey", "o_orderkey")
               .Join("customer", "o_custkey", "c_custkey")
               .GroupBy({"c_mktsegment"})
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Agg(AggFunc::kSum, "l_quantity", "qty")
               .Build();
  ASSERT_TRUE(q.ok());
  auto expected = ExecuteQuery(*q, **ref);
  auto actual = ExecuteQuery(*q, **pdb);
  ASSERT_TRUE(expected.ok() && actual.ok())
      << expected.status().ToString() << " / " << actual.status().ToString();
  ASSERT_EQ(expected->rows.num_rows(), actual->rows.num_rows());
  // Compare via sorted (segment, count) pairs; sums with tolerance.
  std::map<std::string, std::pair<int64_t, double>> e, a;
  for (size_t r = 0; r < expected->rows.num_rows(); ++r) {
    e[expected->rows.column(0).GetString(r)] = {
        expected->rows.column(1).GetInt64(r), expected->rows.column(2).GetDouble(r)};
  }
  for (size_t r = 0; r < actual->rows.num_rows(); ++r) {
    a[actual->rows.column(0).GetString(r)] = {actual->rows.column(1).GetInt64(r),
                                              actual->rows.column(2).GetDouble(r)};
  }
  for (const auto& [key, val] : e) {
    ASSERT_TRUE(a.count(key)) << key;
    EXPECT_EQ(a[key].first, val.first) << key;
    EXPECT_NEAR(a[key].second, val.second, std::fabs(val.second) * 1e-9 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweepTest,
    ::testing::Combine(::testing::Values(ConfigKind::kSdManual,
                                         ConfigKind::kClassical,
                                         ConfigKind::kAllHashed,
                                         ConfigKind::kRangeChain,
                                         ConfigKind::kRoundRobinChain),
                       ::testing::Values(2, 3, 7), ::testing::Values(1, 99)),
    [](const ::testing::TestParamInfo<PartitionSweepParam>& info) {
      return KindName(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: bulk loading in k batches is equivalent to one-shot
// partitioning (same distinct rows per table; Definition 1 intact).
// ---------------------------------------------------------------------

class BatchedLoadTest : public ::testing::TestWithParam<int /*batches*/> {};

TEST_P(BatchedLoadTest, EquivalentToOneShot) {
  const int batches = GetParam();
  auto db = GenerateTpch({0.001, 7});
  ASSERT_TRUE(db.ok());
  PartitioningConfig config = MakeTpchSdManual(db->schema(), 4);

  // Empty-partitioned database, then load every table in `batches` chunks
  // following the PREF dependency order.
  PartitionedDatabase pdb(&*db);
  for (TableId id : config.LoadOrder()) {
    ASSERT_TRUE(pdb.AddTable(id, config.spec(id)).ok());
  }
  BulkLoader loader;
  for (TableId id : config.LoadOrder()) {
    const RowBlock& src = db->table(id).data();
    size_t per = src.num_rows() / static_cast<size_t>(batches) + 1;
    for (size_t start = 0; start < src.num_rows(); start += per) {
      RowBlock chunk(&db->schema().table(id));
      for (size_t r = start; r < std::min(src.num_rows(), start + per); ++r) {
        chunk.AppendRow(src, r);
      }
      auto stats = loader.Append(&pdb, id, chunk);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
  }

  for (const auto& [id, spec] : config.specs()) {
    EXPECT_EQ(pdb.GetTable(id)->DistinctRows(), db->table(id).num_rows());
    if (spec.method == PartitionMethod::kPref) {
      CheckPrefInvariants(*db, pdb, id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchedLoadTest, ::testing::Values(1, 2, 5, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "k" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Sweep 3: estimator laws across partition counts.
// ---------------------------------------------------------------------

class ExpectedCopiesLawTest : public ::testing::TestWithParam<int /*n*/> {};

TEST_P(ExpectedCopiesLawTest, StirlingEqualsClosedFormAndMonotone) {
  const int n = GetParam();
  ExpectedCopies e(n);
  double prev = 0;
  for (int f = 1; f <= 64; ++f) {
    EXPECT_NEAR(e.ExactStirling(f), e.ClosedForm(f), 1e-6) << "f=" << f;
    double v = e.Get(f);
    EXPECT_GE(v, prev - 1e-12);
    EXPECT_GE(v, 1.0 - 1e-12);
    EXPECT_LE(v, static_cast<double>(n) + 1e-9);
    prev = v;
  }
  // Group occupancy: exact for f=1, classic for c=1, bounded by n.
  for (double c : {1.0, 2.5, static_cast<double>(n)}) {
    EXPECT_NEAR(e.GroupOccupancy(1, c), std::min(c, static_cast<double>(n)), 1e-9);
    EXPECT_LE(e.GroupOccupancy(50, c), static_cast<double>(n) + 1e-9);
  }
  EXPECT_NEAR(e.GroupOccupancy(7, 1.0), e.Get(7), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Nodes, ExpectedCopiesLawTest,
                         ::testing::Values(1, 2, 4, 10, 25, 64),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

class EstimatorAccuracyTest
    : public ::testing::TestWithParam<std::tuple<int /*n*/, int /*seed*/>> {};

TEST_P(EstimatorAccuracyTest, SingleEdgeEstimateTracksMeasurement) {
  auto [n, seed] = GetParam();
  auto db = GenerateTpch({0.002, static_cast<uint64_t>(seed)});
  ASSERT_TRUE(db.ok());
  // Scatter lineitem by partkey; orders PREF by orderkey has scattered
  // partners and genuine duplication.
  PartitioningConfig config(&db->schema(), n);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_partkey"}).ok());
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db, config);
  ASSERT_TRUE(pdb.ok());
  double actual = static_cast<double>(
      (*pdb)->GetTable(*db->schema().FindTable("orders"))->TotalRows());

  RedundancyEstimator est(&*db, n);
  JoinPredicate p = *db->schema().MakePredicate("orders", {"o_orderkey"}, "lineitem",
                                                {"l_orderkey"});
  double estimated =
      est.EdgeFactor(p) * static_cast<double>((*db->FindTable("orders"))->num_rows());
  EXPECT_NEAR(estimated / actual, 1.0, 0.06)
      << "n=" << n << " estimated=" << estimated << " actual=" << actual;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EstimatorAccuracyTest,
    ::testing::Combine(::testing::Values(2, 5, 10, 20), ::testing::Values(42, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 4: locality metric laws.
// ---------------------------------------------------------------------

class LocalityLawTest : public ::testing::TestWithParam<int /*n*/> {};

TEST_P(LocalityLawTest, BaselinesBracketDesigns) {
  const int n = GetParam();
  auto db = GenerateTpch({0.001, 5});
  ASSERT_TRUE(db.ok());
  auto edges = SchemaEdges(*db);
  auto hashed = MakeAllHashed(db->schema(), n);
  auto replicated = MakeAllReplicated(db->schema(), n);
  auto sd = MakeTpchSdManual(db->schema(), n);
  ASSERT_TRUE(hashed.ok() && replicated.ok());
  double dl_h = DataLocality(*hashed, edges);
  double dl_r = DataLocality(*replicated, edges);
  double dl_sd = DataLocality(sd, edges);
  EXPECT_DOUBLE_EQ(dl_h, 0.0);
  EXPECT_DOUBLE_EQ(dl_r, 1.0);
  EXPECT_GE(dl_sd, dl_h);
  EXPECT_LE(dl_sd, dl_r);
  // DL is independent of n for these schemes.
  auto hashed2 = MakeAllHashed(db->schema(), n * 2);
  EXPECT_DOUBLE_EQ(DataLocality(*hashed2, edges), dl_h);
}

INSTANTIATE_TEST_SUITE_P(Nodes, LocalityLawTest, ::testing::Values(2, 5, 10, 50),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace pref
