// Tests for the span tracer: RAII spans nest on the wall-clock timeline,
// the exporter emits Chrome trace-event JSON the minimal checker accepts,
// and disabled tracers record nothing.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/task_context.h"

namespace pref {
namespace {

/// Number of non-overlapping occurrences of `needle` in `s`.
size_t CountOf(const std::string& s, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  {
    TraceSpan span("outer", "test", &tracer);
    span.AddArg("k", 1);
  }
  tracer.AddComplete("x", "test", 0, 10, Tracer::kSimulatedPid, 0);
  EXPECT_EQ(tracer.EventCount(), 0u);
}

#if PREF_METRICS
TEST(Tracer, SpansNest) {
  Tracer tracer;
  tracer.SetEnabled(true);
  {
    TraceSpan outer("outer", "test", &tracer);
    { TraceSpan inner("inner", "test", &tracer); }
  }
  ASSERT_EQ(tracer.EventCount(), 2u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator::Valid(json)) << json;
  // Both spans exported on the same process-pid track; the inner span was
  // recorded first (destroyed first).
  size_t inner = json.find("\"inner\"");
  size_t outer = json.find("\"outer\"");
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(outer, std::string::npos);
  EXPECT_LT(inner, outer);
  EXPECT_EQ(CountOf(json, "\"ph\":\"X\""), 2u);
}

TEST(Tracer, SpanArgsAreExported) {
  Tracer tracer;
  tracer.SetEnabled(true);
  {
    TraceSpan span("load", "test", &tracer);
    span.AddArg("rows", 123);
  }
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  EXPECT_NE(os.str().find("\"rows\":123"), std::string::npos) << os.str();
}

TEST(Tracer, ExportsTopLevelTraceEventsObject) {
  Tracer tracer;
  tracer.SetEnabled(true);
  tracer.SetTrackName(Tracer::kSimulatedPid, 0, "node-0");
  tracer.AddComplete("scan", "sim.node", 0, 100, Tracer::kSimulatedPid, 0,
                     {{"rows", 42}});
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  std::vector<std::string> keys;
  ASSERT_TRUE(JsonValidator::Valid(os.str(), &keys)) << os.str();
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys[0], "traceEvents");
  // Track-name metadata plus the complete event.
  EXPECT_NE(os.str().find("\"thread_name\""), std::string::npos);
  EXPECT_NE(os.str().find("\"node-0\""), std::string::npos);
}

TEST(Tracer, ClearDropsEvents) {
  Tracer tracer;
  tracer.SetEnabled(true);
  { TraceSpan span("s", "test", &tracer); }
  EXPECT_EQ(tracer.EventCount(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.EventCount(), 0u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  EXPECT_TRUE(JsonValidator::Valid(os.str()));
}

TEST(Tracer, SpansInsideTaggedTasksCarryQueryId) {
  // Query identity (DESIGN.md §10): any span recorded while a task tag is
  // active gets a "qid" arg, so a multi-query Chrome trace can be filtered
  // per query. Untagged spans stay unstamped.
  Tracer tracer;
  tracer.SetEnabled(true);
  {
    TaskTagScope tag(7);
    TraceSpan span("tagged", "test", &tracer);
  }
  { TraceSpan span("untagged", "test", &tracer); }
  tracer.AddComplete("untagged-complete", "test", 0, 10, Tracer::kSimulatedPid,
                     0);
  {
    TaskTagScope tag(9);
    tracer.AddComplete("tagged-complete", "test", 0, 10, Tracer::kSimulatedPid,
                       0, {{"rows", 1}});
  }
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator::Valid(json)) << json;
  EXPECT_NE(json.find("\"qid\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"qid\":9"), std::string::npos) << json;
  EXPECT_EQ(CountOf(json, "\"qid\""), 2u) << json;  // untagged spans clean
}

TEST(Tracer, SpansFromMultipleThreadsGetDistinctTids) {
  Tracer tracer;
  tracer.SetEnabled(true);
  std::thread other([&] { TraceSpan span("other-thread", "test", &tracer); });
  other.join();
  { TraceSpan span("main-thread", "test", &tracer); }
  EXPECT_EQ(tracer.EventCount(), 2u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  ASSERT_TRUE(JsonValidator::Valid(os.str()));
}
#endif  // PREF_METRICS

}  // namespace
}  // namespace pref
