// Concurrency tests for the parallel bulk loader: the pooled path must
// produce byte-identical partitions, dup/hasS bitmaps, and partition
// indexes versus the serial path, across every partitioning method and the
// TPC-H lineitem → orders → customer PREF chain. Run under ThreadSanitizer
// in CI (the .github workflow's tsan job).

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/tpch_gen.h"
#include "partition/bulk_loader.h"
#include "partition/partitioner.h"
#include "test_util.h"

namespace pref {
namespace {

// The default pool is sized on first use from PREF_THREADS (else the
// hardware). Force multiple lanes before anything touches the pool so the
// parallel path really interleaves — also on single-core CI runners, where
// TSan would otherwise have nothing to observe.
const bool kForcedThreads = [] {
  setenv("PREF_THREADS", "4", /*overwrite=*/0);
  return true;
}();

std::vector<ColumnId> AllColumns(const PartitionedTable& t) {
  std::vector<ColumnId> cols(static_cast<size_t>(t.def().num_columns()));
  std::iota(cols.begin(), cols.end(), 0);
  return cols;
}

/// Asserts `a` and `b` agree on every partition's rows (value-identical, in
/// order), dup/hasS bitmaps, and on every registered partition index
/// (probed with all keys occurring in `full_data`).
void ExpectTablesIdentical(const PartitionedTable& a, const PartitionedTable& b,
                           const RowBlock& full_data) {
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  const auto cols = AllColumns(a);
  for (int p = 0; p < a.num_partitions(); ++p) {
    const Partition& pa = a.partition(p);
    const Partition& pb = b.partition(p);
    ASSERT_EQ(pa.rows.num_rows(), pb.rows.num_rows())
        << a.name() << " partition " << p;
    for (size_t r = 0; r < pa.rows.num_rows(); ++r) {
      ASSERT_TRUE(pa.rows.RowsEqual(cols, r, pb.rows, cols, r))
          << a.name() << " partition " << p << " row " << r;
    }
    EXPECT_TRUE(pa.dup == pb.dup) << a.name() << " dup bitmap, partition " << p;
    EXPECT_TRUE(pa.has_partner == pb.has_partner)
        << a.name() << " hasS bitmap, partition " << p;
  }
  ASSERT_EQ(a.indexes().size(), b.indexes().size());
  for (size_t i = 0; i < a.indexes().size(); ++i) {
    const auto& [cols_a, idx_a] = a.indexes()[i];
    const auto& [cols_b, idx_b] = b.indexes()[i];
    ASSERT_EQ(cols_a, cols_b);
    EXPECT_EQ(idx_a->num_keys(), idx_b->num_keys());
    for (size_t r = 0; r < full_data.num_rows(); ++r) {
      PartitionIndex::Key key;
      for (ColumnId c : cols_a) key.push_back(full_data.column(c).GetValue(r));
      EXPECT_EQ(idx_a->Lookup(key), idx_b->Lookup(key))
          << a.name() << " index " << i << " source row " << r;
    }
  }
}

/// Bulk loads every table of `db` into empty partitions of `config`, in
/// PREF dependency order, with the given loader mode.
Result<std::unique_ptr<PartitionedDatabase>> LoadAll(const Database& db,
                                                     PartitioningConfig config,
                                                     bool parallel) {
  PREF_RETURN_NOT_OK(config.Finalize());
  auto pdb = std::make_unique<PartitionedDatabase>(&db);
  for (TableId id : config.LoadOrder()) {
    PREF_ASSIGN_OR_RAISE(auto* table, pdb->AddTable(id, config.spec(id)));
    (void)table;
  }
  BulkLoader loader(/*use_partition_index=*/true, parallel);
  for (TableId id : config.LoadOrder()) {
    PREF_RETURN_NOT_OK(loader.Append(pdb.get(), id, db.table(id).data()).status());
  }
  return pdb;
}

PartitioningConfig ChainConfig(const Schema& schema, int nodes) {
  PartitioningConfig config(&schema, nodes);
  EXPECT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}).ok());
  EXPECT_TRUE(config.AddReplicated("nation").ok());
  EXPECT_TRUE(config.AddRoundRobin("supplier").ok());
  return config;
}

TEST(BulkLoadParallelTest, PoolHasMultipleLanes) {
  ASSERT_TRUE(kForcedThreads);
  // If this fails the remaining tests exercise nothing concurrent.
  EXPECT_GE(ThreadPool::Default().num_threads(), 2);
}

TEST(BulkLoadParallelTest, FullLoadIdenticalToSerialAcrossPrefChain) {
  auto db = GenerateTpch({0.002, 7});
  ASSERT_TRUE(db.ok());
  const int nodes = 6;
  auto serial = LoadAll(*db, ChainConfig(db->schema(), nodes), false);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = LoadAll(*db, ChainConfig(db->schema(), nodes), true);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  for (const char* name : {"lineitem", "orders", "customer", "nation", "supplier"}) {
    TableId id = *db->schema().FindTable(name);
    ExpectTablesIdentical(*(*serial)->GetTable(id), *(*parallel)->GetTable(id),
                          db->table(id).data());
  }
  // The parallel result must also satisfy Definition 1 outright.
  CheckPrefInvariants(*db, **parallel, *db->schema().FindTable("orders"));
  CheckPrefInvariants(*db, **parallel, *db->schema().FindTable("customer"));
}

TEST(BulkLoadParallelTest, TailLoadIdenticalToSerial) {
  auto db = GenerateTpch({0.002, 11});
  ASSERT_TRUE(db.ok());
  const Table& orders = **db->FindTable("orders");
  // Head rows partitioned up front, tail bulk-loaded serial vs parallel.
  size_t cut = orders.num_rows() / 2;
  RowBlock tail(&orders.def());
  for (size_t r = cut; r < orders.num_rows(); ++r) {
    tail.AppendRow(orders.data(), r);
  }
  Schema schema_copy = db->schema();
  Database head_db(std::move(schema_copy));
  for (const auto& def : db->schema().tables()) {
    const Table& src = db->table(def.id);
    Table* dst = *head_db.FindTable(def.name);
    size_t limit = def.name == "orders" ? cut : src.num_rows();
    for (size_t r = 0; r < limit; ++r) dst->data().AppendRow(src.data(), r);
  }

  auto make_pdb = [&]() {
    PartitioningConfig config(&head_db.schema(), 4);
    EXPECT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
    EXPECT_TRUE(
        config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
    auto pdb = PartitionDatabase(head_db, std::move(config));
    EXPECT_TRUE(pdb.ok());
    return std::move(*pdb);
  };
  auto serial_pdb = make_pdb();
  auto parallel_pdb = make_pdb();
  TableId o_id = *head_db.schema().FindTable("orders");

  BulkLoader serial_loader(true, /*parallel=*/false);
  BulkLoader parallel_loader(true, /*parallel=*/true);
  auto s1 = serial_loader.Append(serial_pdb.get(), o_id, tail);
  auto s2 = parallel_loader.Append(parallel_pdb.get(), o_id, tail);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(s1->rows_inserted, s2->rows_inserted);
  EXPECT_EQ(s1->copies_written, s2->copies_written);
  EXPECT_EQ(s1->index_lookups, s2->index_lookups);
  ExpectTablesIdentical(*serial_pdb->GetTable(o_id), *parallel_pdb->GetTable(o_id),
                        orders.data());
  CheckPrefInvariants(*db, *parallel_pdb, o_id);
}

TEST(BulkLoadParallelTest, NaiveScanPathIdenticalToSerial) {
  // The no-partition-index ablation also runs its partner scans on the
  // pool; results must still match the serial scan exactly.
  auto db = GenerateTpch({0.001, 5});
  ASSERT_TRUE(db.ok());
  auto make_pdb = [&]() {
    PartitioningConfig config(&db->schema(), 4);
    EXPECT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
    auto pdb = PartitionDatabase(*db, std::move(config));
    EXPECT_TRUE(pdb.ok());
    PartitionSpec pref;
    pref.method = PartitionMethod::kPref;
    TableId o_id = *db->schema().FindTable("orders");
    TableId l_id = *db->schema().FindTable("lineitem");
    pref.num_partitions = 4;
    pref.referenced_table = l_id;
    pref.attributes = {0};  // o_orderkey
    JoinPredicate p;
    p.left_table = o_id;
    p.left_columns = {0};
    p.right_table = l_id;
    p.right_columns = {0};  // l_orderkey
    pref.predicate = p;
    EXPECT_TRUE((*pdb)->AddTable(o_id, pref).ok());
    return std::move(*pdb);
  };
  auto serial_pdb = make_pdb();
  auto parallel_pdb = make_pdb();
  TableId o_id = *db->schema().FindTable("orders");
  const RowBlock& orders = db->table(o_id).data();

  BulkLoader serial_loader(/*use_partition_index=*/false, /*parallel=*/false);
  BulkLoader parallel_loader(/*use_partition_index=*/false, /*parallel=*/true);
  auto s1 = serial_loader.Append(serial_pdb.get(), o_id, orders);
  auto s2 = parallel_loader.Append(parallel_pdb.get(), o_id, orders);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_GT(s2->scan_probes, 0u);
  EXPECT_EQ(s1->scan_probes, s2->scan_probes);
  ExpectTablesIdentical(*serial_pdb->GetTable(o_id), *parallel_pdb->GetTable(o_id),
                        orders);
}

TEST(BulkLoadParallelTest, RangeSpecWithoutAttributeIsInvalid) {
  auto db = GenerateTpch({0.001, 3});
  ASSERT_TRUE(db.ok());
  PartitionedDatabase pdb(&*db);
  TableId o_id = *db->schema().FindTable("orders");
  PartitionSpec bad;  // hand-crafted: bypasses AddRange's validation
  bad.method = PartitionMethod::kRange;
  bad.num_partitions = 2;
  bad.range_bounds = {Value(int64_t{10})};
  ASSERT_TRUE(pdb.AddTable(o_id, bad).ok());
  BulkLoader loader;
  auto status = loader.Append(&pdb, o_id, db->table(o_id).data()).status();
  EXPECT_TRUE(status.IsInvalid()) << status.ToString();
}

TEST(BulkLoadParallelTest, RangeSpecWithWrongBoundCountIsInvalid) {
  auto db = GenerateTpch({0.001, 3});
  ASSERT_TRUE(db.ok());
  PartitionedDatabase pdb(&*db);
  TableId o_id = *db->schema().FindTable("orders");
  PartitionSpec bad;
  bad.method = PartitionMethod::kRange;
  bad.attributes = {0};
  bad.num_partitions = 3;
  bad.range_bounds = {Value(int64_t{10})};  // needs 2 bounds for 3 partitions
  ASSERT_TRUE(pdb.AddTable(o_id, bad).ok());
  BulkLoader loader;
  auto status = loader.Append(&pdb, o_id, db->table(o_id).data()).status();
  EXPECT_TRUE(status.IsInvalid()) << status.ToString();
}

TEST(BulkLoadParallelTest, RangeBulkLoadMatchesInitialPartitioningOnBounds) {
  // upper_bound routing must agree with the partitioner's RangeBucket,
  // including values exactly equal to a bound (which belong to the next
  // partition: partition i holds bounds[i-1] <= v < bounds[i]).
  auto db = GenerateTpch({0.001, 3});
  ASSERT_TRUE(db.ok());
  TableId o_id = *db->schema().FindTable("orders");
  const Table& orders = db->table(o_id);

  PartitioningConfig config(&db->schema(), 3);
  ASSERT_TRUE(config
                  .AddRange("orders", "o_orderkey",
                            {Value(int64_t{100}), Value(int64_t{1000})})
                  .ok());
  auto full = PartitionDatabase(*db, std::move(config));
  ASSERT_TRUE(full.ok());

  PartitioningConfig config2(&db->schema(), 3);
  ASSERT_TRUE(config2
                  .AddRange("orders", "o_orderkey",
                            {Value(int64_t{100}), Value(int64_t{1000})})
                  .ok());
  ASSERT_TRUE(config2.Finalize().ok());
  PartitionedDatabase loaded(&*db);
  ASSERT_TRUE(loaded.AddTable(o_id, config2.spec(o_id)).ok());
  BulkLoader loader;
  ASSERT_TRUE(loader.Append(&loaded, o_id, orders.data()).ok());

  ExpectTablesIdentical(*(*full)->GetTable(o_id), *loaded.GetTable(o_id),
                        orders.data());
}

}  // namespace
}  // namespace pref
