// Tests for the bounded worker pool (common/thread_pool.h) and the
// ParallelFor facade (common/parallel.h) rebuilt on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "common/task_context.h"
#include "common/thread_pool.h"

namespace pref {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ConcurrencyIsBoundedByPoolSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::mutex mu;
  std::set<std::thread::id> seen;
  // Far more iterations than lanes: the old implementation would have
  // spawned 2000 threads; the pool must reuse at most 3 (workers + caller).
  pool.ParallelFor(2000, [&](int) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_LE(seen.size(), 3u);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(64, [&](int i) { total += i; });
  }
  EXPECT_EQ(total.load(), 200L * (64 * 63 / 2));
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int i) {
                         ran++;
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  EXPECT_GT(ran.load(), 0);
  // The pool must survive an exception and keep scheduling.
  std::atomic<int> after{0};
  pool.ParallelFor(50, [&](int) { after++; });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](int) {
    // Nested calls fan out too (the joiner helps drain same-tag tasks, so
    // a worker blocking on an inner join can never deadlock the pool).
    pool.ParallelFor(8, [&](int) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPoolTest, ChunkIndexesAreDenseAndCoverTheRange) {
  ThreadPool pool(4);
  constexpr size_t kN = 1001;
  std::vector<std::atomic<int>> covered(kN);
  std::mutex mu;
  std::set<int> chunks;
  pool.ParallelForChunks(kN, [&](int chunk, size_t begin, size_t end) {
    {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert(chunk);
    }
    ASSERT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) covered[i]++;
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(covered[i].load(), 1);
  // Dense chunk ids in [0, chunks.size()): per-chunk accumulator slots work.
  EXPECT_EQ(*chunks.begin(), 0);
  EXPECT_EQ(*chunks.rbegin(), static_cast<int>(chunks.size()) - 1);
  EXPECT_LE(chunks.size(), 4u);
}

TEST(ThreadPoolTest, MorselsCoverRangeExactlyOnceWithFixedBoundaries) {
  ThreadPool pool(4);
  constexpr size_t kN = 10001;
  constexpr size_t kMorsel = 256;
  std::vector<std::atomic<int>> covered(kN);
  std::mutex mu;
  std::set<size_t> morsels;
  pool.ParallelForMorsels(kN, kMorsel, [&](size_t m, size_t begin, size_t end) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ASSERT_TRUE(morsels.insert(m).second) << "morsel " << m << " ran twice";
    }
    // Boundaries are a pure function of (n, morsel_size): morsel m always
    // covers [m*size, min(n, (m+1)*size)) regardless of pool width.
    EXPECT_EQ(begin, m * kMorsel);
    EXPECT_EQ(end, std::min(kN, begin + kMorsel));
    for (size_t i = begin; i < end; ++i) covered[i]++;
  });
  EXPECT_EQ(morsels.size(), (kN + kMorsel - 1) / kMorsel);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(covered[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, MorselBoundariesIndependentOfPoolWidth) {
  auto collect = [](ThreadPool& pool) {
    std::mutex mu;
    std::set<std::tuple<size_t, size_t, size_t>> seen;
    pool.ParallelForMorsels(1000, 64, [&](size_t m, size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      seen.emplace(m, b, e);
    });
    return seen;
  };
  ThreadPool one(1), four(4);
  EXPECT_EQ(collect(one), collect(four));
}

TEST(ThreadPoolTest, MorselExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelForMorsels(1000, 16,
                                       [&](size_t m, size_t, size_t) {
                                         if (m == 7) throw std::runtime_error("boom");
                                       }),
               std::runtime_error);
  std::atomic<int> after{0};
  pool.ParallelForMorsels(100, 10, [&](size_t, size_t b, size_t e) {
    after += static_cast<int>(e - b);
  });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolTest, MorselEdgeCases) {
  ThreadPool pool(4);
  int runs = 0;
  pool.ParallelForMorsels(0, 128, [&](size_t, size_t, size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  // morsel_size 0 is clamped to 1 instead of dividing by zero.
  std::atomic<int> singles{0};
  pool.ParallelForMorsels(5, 0, [&](size_t, size_t b, size_t e) {
    EXPECT_EQ(e, b + 1);
    singles++;
  });
  EXPECT_EQ(singles.load(), 5);
  // Nested call from a worker fans out via help-joins, like ParallelFor.
  std::atomic<int> nested{0};
  pool.ParallelForMorsels(4, 1, [&](size_t, size_t, size_t) {
    pool.ParallelForMorsels(4, 1, [&](size_t, size_t, size_t) { nested++; });
  });
  EXPECT_EQ(nested.load(), 16);
}

TEST(ThreadPoolTest, ZeroAndOneIterationEdgeCases) {
  ThreadPool pool(4);
  int runs = 0;
  pool.ParallelFor(0, [&](int) { ++runs; });
  EXPECT_EQ(runs, 0);
  pool.ParallelFor(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, SingleLanePoolRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(16, [&](int) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPoolTest, ConcurrentSubmittersWithNestedFanOutDoNotDeadlock) {
  // The regression this guards (run under TSan in CI): multiple threads
  // submitting nested ParallelForMorsels into one shared pool used to be
  // able to park every lane inside an outer join while the inner tasks
  // they were waiting on sat unexecuted in the queue. With help-first
  // joins each blocked submitter drains its own tag's tasks instead.
  ThreadPool pool(4);
  constexpr int kSubmitters = 4;
  constexpr size_t kOuter = 600;
  constexpr size_t kInner = 300;
  std::vector<std::atomic<long>> totals(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      pool.ParallelForMorsels(kOuter, 64, [&](size_t, size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
          pool.ParallelForMorsels(kInner, 32, [&](size_t, size_t ib, size_t ie) {
            totals[static_cast<size_t>(s)] += static_cast<long>(ie - ib);
          });
        }
      });
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(totals[static_cast<size_t>(s)].load(),
              static_cast<long>(kOuter * kInner))
        << "submitter " << s;
  }
}

TEST(ThreadPoolTest, ParallelBodiesInheritTheSubmittersTaskTag) {
  // Fan-out tasks carry the tag active at the submitting call site — the
  // mechanism the query scheduler uses to interleave queries fairly and
  // stamp trace spans with query identity.
  ThreadPool pool(4);
  std::atomic<int> tagged{0};
  TaskTagScope scope(42);
  pool.ParallelFor(64, [&](int) {
    if (CurrentTaskTag() == 42) tagged++;
  });
  EXPECT_EQ(tagged.load(), 64);
}

TEST(ThreadPoolTest, PostAndTryRunOneTask) {
  // A 1-lane pool has no workers: Posted tasks sit queued until someone
  // lends a thread, which makes dispatch order observable and exact.
  ThreadPool pool(1);
  std::vector<int> order;
  EXPECT_FALSE(pool.TryRunOneTask());  // empty queue
  pool.Post([&] { order.push_back(1); });
  pool.Post([&] { order.push_back(2); });
  EXPECT_TRUE(pool.TryRunOneTask());
  EXPECT_TRUE(pool.TryRunOneTask());
  EXPECT_FALSE(pool.TryRunOneTask());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // FIFO within one tag
}

TEST(ThreadPoolTest, DispatchRoundRobinsAcrossTags) {
  // Two tags with two queued tasks each: round-robin dispatch alternates
  // tags instead of draining one tag's backlog first. Deterministic on a
  // 1-lane pool because only TryRunOneTask executes anything.
  ThreadPool pool(1);
  std::vector<uint64_t> order;
  {
    TaskTagScope scope(1);
    pool.Post([&] { order.push_back(1); });
    pool.Post([&] { order.push_back(1); });
  }
  {
    TaskTagScope scope(2);
    pool.Post([&] { order.push_back(2); });
    pool.Post([&] { order.push_back(2); });
  }
  while (pool.TryRunOneTask()) {
  }
  EXPECT_EQ(order, (std::vector<uint64_t>{1, 2, 1, 2}));
}

TEST(ThreadPoolTest, DestructorRunsLeftoverPostedTasks) {
  // Post promises the task eventually runs; on a 1-lane pool with no
  // waiter that has to happen in the destructor's drain.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.Post([&] { ran++; });
  }
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, FreeFunctionParallelForStillWorks) {
  // The legacy entry point used across the engine: same signature, now
  // bounded by the shared pool.
  std::atomic<int> total{0};
  ParallelFor(256, [&](int i) { total += i; });
  EXPECT_EQ(total.load(), 256 * 255 / 2);
}

TEST(ThreadPoolTest, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1);
  EXPECT_GE(ThreadPool::Default().num_threads(), 1);
}

}  // namespace
}  // namespace pref
