// Tests for the bounded worker pool (common/thread_pool.h) and the
// ParallelFor facade (common/parallel.h) rebuilt on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "common/thread_pool.h"

namespace pref {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ConcurrencyIsBoundedByPoolSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::mutex mu;
  std::set<std::thread::id> seen;
  // Far more iterations than lanes: the old implementation would have
  // spawned 2000 threads; the pool must reuse at most 3 (workers + caller).
  pool.ParallelFor(2000, [&](int) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_LE(seen.size(), 3u);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(64, [&](int i) { total += i; });
  }
  EXPECT_EQ(total.load(), 200L * (64 * 63 / 2));
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int i) {
                         ran++;
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  EXPECT_GT(ran.load(), 0);
  // The pool must survive an exception and keep scheduling.
  std::atomic<int> after{0};
  pool.ParallelFor(50, [&](int) { after++; });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](int) {
    // Runs serially when already on a pool worker; must complete either way.
    pool.ParallelFor(8, [&](int) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPoolTest, ChunkIndexesAreDenseAndCoverTheRange) {
  ThreadPool pool(4);
  constexpr size_t kN = 1001;
  std::vector<std::atomic<int>> covered(kN);
  std::mutex mu;
  std::set<int> chunks;
  pool.ParallelForChunks(kN, [&](int chunk, size_t begin, size_t end) {
    {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert(chunk);
    }
    ASSERT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) covered[i]++;
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(covered[i].load(), 1);
  // Dense chunk ids in [0, chunks.size()): per-chunk accumulator slots work.
  EXPECT_EQ(*chunks.begin(), 0);
  EXPECT_EQ(*chunks.rbegin(), static_cast<int>(chunks.size()) - 1);
  EXPECT_LE(chunks.size(), 4u);
}

TEST(ThreadPoolTest, MorselsCoverRangeExactlyOnceWithFixedBoundaries) {
  ThreadPool pool(4);
  constexpr size_t kN = 10001;
  constexpr size_t kMorsel = 256;
  std::vector<std::atomic<int>> covered(kN);
  std::mutex mu;
  std::set<size_t> morsels;
  pool.ParallelForMorsels(kN, kMorsel, [&](size_t m, size_t begin, size_t end) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ASSERT_TRUE(morsels.insert(m).second) << "morsel " << m << " ran twice";
    }
    // Boundaries are a pure function of (n, morsel_size): morsel m always
    // covers [m*size, min(n, (m+1)*size)) regardless of pool width.
    EXPECT_EQ(begin, m * kMorsel);
    EXPECT_EQ(end, std::min(kN, begin + kMorsel));
    for (size_t i = begin; i < end; ++i) covered[i]++;
  });
  EXPECT_EQ(morsels.size(), (kN + kMorsel - 1) / kMorsel);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(covered[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, MorselBoundariesIndependentOfPoolWidth) {
  auto collect = [](ThreadPool& pool) {
    std::mutex mu;
    std::set<std::tuple<size_t, size_t, size_t>> seen;
    pool.ParallelForMorsels(1000, 64, [&](size_t m, size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      seen.emplace(m, b, e);
    });
    return seen;
  };
  ThreadPool one(1), four(4);
  EXPECT_EQ(collect(one), collect(four));
}

TEST(ThreadPoolTest, MorselExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelForMorsels(1000, 16,
                                       [&](size_t m, size_t, size_t) {
                                         if (m == 7) throw std::runtime_error("boom");
                                       }),
               std::runtime_error);
  std::atomic<int> after{0};
  pool.ParallelForMorsels(100, 10, [&](size_t, size_t b, size_t e) {
    after += static_cast<int>(e - b);
  });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolTest, MorselEdgeCases) {
  ThreadPool pool(4);
  int runs = 0;
  pool.ParallelForMorsels(0, 128, [&](size_t, size_t, size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  // morsel_size 0 is clamped to 1 instead of dividing by zero.
  std::atomic<int> singles{0};
  pool.ParallelForMorsels(5, 0, [&](size_t, size_t b, size_t e) {
    EXPECT_EQ(e, b + 1);
    singles++;
  });
  EXPECT_EQ(singles.load(), 5);
  // Nested call from a worker runs serially, like ParallelFor.
  std::atomic<int> nested{0};
  pool.ParallelForMorsels(4, 1, [&](size_t, size_t, size_t) {
    pool.ParallelForMorsels(4, 1, [&](size_t, size_t, size_t) { nested++; });
  });
  EXPECT_EQ(nested.load(), 16);
}

TEST(ThreadPoolTest, ZeroAndOneIterationEdgeCases) {
  ThreadPool pool(4);
  int runs = 0;
  pool.ParallelFor(0, [&](int) { ++runs; });
  EXPECT_EQ(runs, 0);
  pool.ParallelFor(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, SingleLanePoolRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(16, [&](int) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPoolTest, FreeFunctionParallelForStillWorks) {
  // The legacy entry point used across the engine: same signature, now
  // bounded by the shared pool.
  std::atomic<int> total{0};
  ParallelFor(256, [&](int i) { total += i; });
  EXPECT_EQ(total.load(), 256 * 255 / 2);
}

TEST(ThreadPoolTest, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1);
  EXPECT_GE(ThreadPool::Default().num_threads(), 1);
}

}  // namespace
}  // namespace pref
