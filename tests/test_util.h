// Shared test helpers: Definition-1 invariant checking for PREF-partitioned
// tables and hand-built partitioning configurations.

#pragma once

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "partition/config.h"
#include "partition/partitioner.h"
#include "storage/partition.h"
#include "storage/table.h"

namespace pref {

/// Renders a row as a comparable string key (test-only; source rows are
/// assumed unique, which holds for all generated tables).
inline std::string RowKey(const RowBlock& rows, size_t r) {
  std::string key;
  for (const auto& v : rows.GetRow(r)) {
    key += v.ToString();
    key += '|';
  }
  return key;
}

/// \brief Validates Definition 1 plus the dup/hasS semantics of §2.1 for a
/// PREF-partitioned table:
///  * condition (1): a row appears in exactly the partitions of the
///    referenced table holding a partitioning partner;
///  * condition (2): partnerless rows appear in exactly one partition;
///  * exactly one copy of every source row has dup = 0;
///  * has_partner matches the existence of partners;
///  * bitmap lengths equal partition row counts.
inline void CheckPrefInvariants(const Database& db, const PartitionedDatabase& pdb,
                                TableId table_id) {
  const PartitionedTable* pt = pdb.GetTable(table_id);
  ASSERT_NE(pt, nullptr);
  ASSERT_EQ(pt->spec().method, PartitionMethod::kPref);
  const JoinPredicate& p = *pt->spec().predicate;
  const PartitionedTable* ref = pdb.GetTable(pt->spec().referenced_table);
  ASSERT_NE(ref, nullptr);
  const RowBlock& src = db.table(table_id).data();

  // Partner partitions per predicate key of the referenced table.
  std::map<std::string, std::set<int>> ref_parts_of_key;
  for (int i = 0; i < ref->num_partitions(); ++i) {
    const RowBlock& rows = ref->partition(i).rows;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      std::string key;
      for (ColumnId c : p.right_columns) {
        key += rows.column(c).GetValue(r).ToString();
        key += '|';
      }
      ref_parts_of_key[key].insert(i);
    }
  }

  // Expected partition set per source row.
  std::map<std::string, std::set<int>> expected;
  std::map<std::string, bool> expect_partner;
  for (size_t r = 0; r < src.num_rows(); ++r) {
    std::string pred_key;
    for (ColumnId c : p.left_columns) {
      pred_key += src.column(c).GetValue(r).ToString();
      pred_key += '|';
    }
    auto it = ref_parts_of_key.find(pred_key);
    std::string row = RowKey(src, r);
    if (it == ref_parts_of_key.end()) {
      expected[row] = {};  // filled by actual single placement below
      expect_partner[row] = false;
    } else {
      expected[row] = it->second;
      expect_partner[row] = true;
    }
  }

  // Observed placements.
  std::map<std::string, std::set<int>> observed;
  std::map<std::string, int> non_dup_copies;
  for (int i = 0; i < pt->num_partitions(); ++i) {
    const Partition& part = pt->partition(i);
    ASSERT_EQ(part.dup.size(), part.rows.num_rows());
    ASSERT_EQ(part.has_partner.size(), part.rows.num_rows());
    for (size_t r = 0; r < part.rows.num_rows(); ++r) {
      std::string row = RowKey(part.rows, r);
      observed[row].insert(i);
      if (!part.dup.Get(r)) non_dup_copies[row]++;
      auto partner_it = expect_partner.find(row);
      ASSERT_NE(partner_it, expect_partner.end()) << "unknown row " << row;
      EXPECT_EQ(part.has_partner.Get(r), partner_it->second) << row;
    }
  }

  EXPECT_EQ(observed.size(), expected.size());
  for (const auto& [row, parts] : expected) {
    auto obs = observed.find(row);
    ASSERT_NE(obs, observed.end()) << "missing row " << row;
    if (expect_partner[row]) {
      EXPECT_EQ(obs->second, parts) << "row " << row;
    } else {
      EXPECT_EQ(obs->second.size(), 1u) << "orphan row " << row;
    }
    EXPECT_EQ(non_dup_copies[row], 1) << "row " << row;
  }
}

// (engine result comparison helpers live in engine-dependent tests; see
// workload_test.cc / engine_test.cc)

/// The SD (wo small tables) TPC-H configuration of §5.1, built by hand:
/// LINEITEM seed (hash on orderkey); ORDERS, PARTSUPP, PART, CUSTOMER
/// PREF-chained along the MAST; NATION/REGION/SUPPLIER replicated.
inline PartitioningConfig MakeTpchSdManual(const Schema& schema, int n) {
  PartitioningConfig config(&schema, n);
  EXPECT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}).ok());
  EXPECT_TRUE(config
                  .AddPref("partsupp", {"ps_partkey", "ps_suppkey"}, "lineitem",
                           {"l_partkey", "l_suppkey"})
                  .ok());
  EXPECT_TRUE(config.AddPref("part", {"p_partkey"}, "partsupp", {"ps_partkey"}).ok());
  EXPECT_TRUE(config.AddReplicated("nation").ok());
  EXPECT_TRUE(config.AddReplicated("region").ok());
  EXPECT_TRUE(config.AddReplicated("supplier").ok());
  EXPECT_TRUE(config.Finalize().ok());
  return config;
}

}  // namespace pref
