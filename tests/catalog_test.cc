// Unit tests for the schema catalog and the TPC-H / TPC-DS definitions.

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/tpch_schema.h"
#include "catalog/tpcds_schema.h"

namespace pref {
namespace {

Schema TwoTableSchema() {
  Schema s;
  EXPECT_TRUE(s.AddTable("a", {{"a_id", DataType::kInt64}, {"a_x", DataType::kDouble}},
                         {"a_id"})
                  .ok());
  EXPECT_TRUE(
      s.AddTable("b", {{"b_id", DataType::kInt64}, {"b_a_id", DataType::kInt64}},
                 {"b_id"})
          .ok());
  EXPECT_TRUE(s.AddForeignKey("fk_b_a", "b", {"b_a_id"}, "a", {"a_id"}).ok());
  return s;
}

TEST(SchemaTest, AddAndFindTables) {
  Schema s = TwoTableSchema();
  EXPECT_EQ(s.num_tables(), 2);
  auto a = s.FindTable("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(s.table(*a).name, "a");
  EXPECT_FALSE(s.FindTable("zzz").ok());
}

TEST(SchemaTest, DuplicateTableRejected) {
  Schema s = TwoTableSchema();
  EXPECT_TRUE(s.AddTable("a", {{"x", DataType::kInt64}}).status().IsAlreadyExists());
}

TEST(SchemaTest, EmptyColumnsRejected) {
  Schema s;
  EXPECT_TRUE(s.AddTable("t", {}).status().IsInvalid());
}

TEST(SchemaTest, DuplicateColumnRejected) {
  Schema s;
  EXPECT_FALSE(
      s.AddTable("t", {{"c", DataType::kInt64}, {"c", DataType::kDouble}}).ok());
}

TEST(SchemaTest, PrimaryKeyResolved) {
  Schema s = TwoTableSchema();
  const TableDef& a = s.table(*s.FindTable("a"));
  ASSERT_EQ(a.primary_key.size(), 1u);
  EXPECT_EQ(a.column(a.primary_key[0]).name, "a_id");
}

TEST(SchemaTest, ForeignKeyResolved) {
  Schema s = TwoTableSchema();
  ASSERT_EQ(s.foreign_keys().size(), 1u);
  const ForeignKey& fk = s.foreign_keys()[0];
  EXPECT_EQ(s.table(fk.src_table).name, "b");
  EXPECT_EQ(s.table(fk.dst_table).name, "a");
  JoinPredicate p = s.PredicateOf(fk);
  EXPECT_EQ(p.left_table, fk.src_table);
  EXPECT_EQ(p.right_table, fk.dst_table);
}

TEST(SchemaTest, BadForeignKeyRejected) {
  Schema s = TwoTableSchema();
  EXPECT_FALSE(s.AddForeignKey("bad", "b", {"nope"}, "a", {"a_id"}).ok());
  EXPECT_FALSE(s.AddForeignKey("bad", "b", {"b_a_id"}, "zzz", {"a_id"}).ok());
  EXPECT_FALSE(s.AddForeignKey("bad", "b", {}, "a", {}).ok());
  EXPECT_FALSE(s.AddForeignKey("bad", "b", {"b_a_id"}, "a", {"a_id", "a_x"}).ok());
}

TEST(SchemaTest, MakePredicateByName) {
  Schema s = TwoTableSchema();
  auto p = s.MakePredicate("b", {"b_a_id"}, "a", {"a_id"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(s.table(p->left_table).name, "b");
  EXPECT_EQ(p->left_columns.size(), 1u);
}

TEST(SchemaTest, PredicateEquivalence) {
  Schema s = TwoTableSchema();
  JoinPredicate p = *s.MakePredicate("b", {"b_a_id"}, "a", {"a_id"});
  EXPECT_TRUE(p.EquivalentTo(p));
  EXPECT_TRUE(p.EquivalentTo(p.Reversed()));
  JoinPredicate q = *s.MakePredicate("b", {"b_id"}, "a", {"a_id"});
  EXPECT_FALSE(p.EquivalentTo(q));
}

TEST(SchemaTest, SubsetKeepsOnlyRequestedTablesAndFks) {
  Schema tpch = MakeTpchSchema();
  auto sub = tpch.Subset({"customer", "orders", "lineitem", "part", "partsupp"});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_tables(), 5);
  // nation/region/supplier FKs must be gone; orders->customer etc. retained.
  for (const auto& fk : sub->foreign_keys()) {
    EXPECT_TRUE(sub->FindTable(sub->table(fk.src_table).name).ok());
    EXPECT_TRUE(sub->FindTable(sub->table(fk.dst_table).name).ok());
  }
  // orders->customer, lineitem->orders, lineitem->part, partsupp->part.
  EXPECT_EQ(sub->foreign_keys().size(), 4u);
}

TEST(TpchSchemaTest, ShapeMatchesSpec) {
  Schema s = MakeTpchSchema();
  EXPECT_EQ(s.num_tables(), 8);
  EXPECT_EQ(s.foreign_keys().size(), 9u);
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(s.FindTable(name).ok()) << name;
  }
}

TEST(TpchSchemaTest, Cardinalities) {
  EXPECT_EQ(TpchBaseCardinality("lineitem"), 6000000);
  EXPECT_EQ(TpchBaseCardinality("orders"), 1500000);
  EXPECT_EQ(TpchBaseCardinality("nation"), 25);
  EXPECT_EQ(TpchBaseCardinality("unknown"), 0);
  EXPECT_TRUE(TpchIsFixedSize("nation"));
  EXPECT_TRUE(TpchIsFixedSize("region"));
  EXPECT_FALSE(TpchIsFixedSize("lineitem"));
}

TEST(TpcdsSchemaTest, ShapeMatchesSpec) {
  Schema s = MakeTpcdsSchema();
  EXPECT_EQ(s.num_tables(), 24);
  EXPECT_EQ(TpcdsFactTables().size(), 7u);
  for (const auto& fact : TpcdsFactTables()) {
    EXPECT_TRUE(s.FindTable(fact).ok()) << fact;
    EXPECT_TRUE(TpcdsIsFactTable(fact));
  }
  EXPECT_FALSE(TpcdsIsFactTable("item"));
  // Every table has a positive base cardinality.
  for (const auto& t : s.tables()) {
    EXPECT_GT(TpcdsBaseCardinality(t.name), 0) << t.name;
  }
}

TEST(TpcdsSchemaTest, AllForeignKeysResolve) {
  Schema s = MakeTpcdsSchema();
  EXPECT_GT(s.foreign_keys().size(), 40u);
  for (const auto& fk : s.foreign_keys()) {
    EXPECT_GE(fk.src_table, 0);
    EXPECT_GE(fk.dst_table, 0);
    EXPECT_EQ(fk.src_columns.size(), fk.dst_columns.size());
    // Destination columns must be the primary key of the referenced table
    // for single-column FKs to dimensions.
    const TableDef& dst = s.table(fk.dst_table);
    if (fk.dst_columns.size() == 1 && dst.primary_key.size() == 1) {
      EXPECT_EQ(fk.dst_columns[0], dst.primary_key[0]) << fk.name;
    }
  }
}

TEST(TpcdsSchemaTest, SmallTablesAreSmall) {
  for (const auto& t : TpcdsSmallTables()) {
    EXPECT_LT(TpcdsBaseCardinality(t), 1000) << t;
  }
}

TEST(ValueTest, TypedAccessAndEquality) {
  Value i(int64_t{42}), d(3.5), s(std::string("hi"));
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);
  EXPECT_EQ(s.AsString(), "hi");
  EXPECT_EQ(i, Value(int64_t{42}));
  EXPECT_NE(i.Hash(), Value(int64_t{43}).Hash());
  EXPECT_EQ(s.ToString(), "'hi'");
  EXPECT_EQ(i.ToString(), "42");
}

}  // namespace
}  // namespace pref
