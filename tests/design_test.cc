// Tests for the design substrate: schema graphs, MAST extraction, the
// Appendix A estimator (exact + sampled), findOptimalPC (Listing 1), the
// §3.4 constraint handling, and the schema-driven algorithm end-to-end on
// TPC-H (matching §5.1's reported configurations).

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/tpch_gen.h"
#include "design/enumerator.h"
#include "design/estimator.h"
#include "design/schema_graph.h"
#include "design/sd_design.h"
#include "partition/locality.h"
#include "partition/partitioner.h"
#include "test_util.h"

namespace pref {
namespace {

TEST(SchemaGraphTest, FromSchemaBuildsFkEdges) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  SchemaGraph g = SchemaGraph::FromSchema(*db);
  EXPECT_EQ(g.nodes().size(), 8u);
  EXPECT_EQ(g.edges().size(), 9u);
  // Edge weight = size of the smaller table: orders--customer weighs
  // |customer|.
  bool found = false;
  for (const auto& e : g.edges()) {
    const auto& s = db->schema();
    std::string l = s.table(e.predicate.left_table).name;
    std::string r = s.table(e.predicate.right_table).name;
    if ((l == "orders" && r == "customer") || (l == "customer" && r == "orders")) {
      found = true;
      EXPECT_DOUBLE_EQ(e.weight,
                       static_cast<double>((*db->FindTable("customer"))->num_rows()));
    }
  }
  EXPECT_TRUE(found);
}

TEST(SchemaGraphTest, ExcludeTablesDropsNodesAndEdges) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  SchemaGraph g = SchemaGraph::FromSchema(*db, {"nation", "region", "supplier"});
  EXPECT_EQ(g.nodes().size(), 5u);
  // Surviving edges: L-O, O-C, L-PS, PS-P.
  EXPECT_EQ(g.edges().size(), 4u);
}

TEST(SchemaGraphTest, ParallelEdgesCollapsed) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  SchemaGraph g;
  WeightedEdge e;
  e.predicate = *db->schema().MakePredicate("orders", {"o_custkey"}, "customer",
                                            {"c_custkey"});
  e.weight = 5;
  g.AddEdge(e);
  WeightedEdge mirrored;
  mirrored.predicate = e.predicate.Reversed();
  mirrored.weight = 5;
  g.AddEdge(mirrored);
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(SchemaGraphTest, ConnectedComponents) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  SchemaGraph g = SchemaGraph::FromSchema(*db);
  EXPECT_EQ(g.ConnectedComponents().size(), 1u);
  SchemaGraph reduced =
      SchemaGraph::FromSchema(*db, {"lineitem", "partsupp", "nation"});
  // Remaining: region | supplier | customer-orders | part (customer-orders
  // still linked; others isolated).
  auto comps = reduced.ConnectedComponents();
  EXPECT_EQ(comps.size(), 4u);
}

TEST(MastTest, PicksHeaviestAcyclicSubset) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  SchemaGraph g = SchemaGraph::FromSchema(*db);
  Mast m = MaximumSpanningTree(g);
  // Spanning tree over 8 connected nodes: 7 edges.
  EXPECT_EQ(m.edges.size(), 7u);
  // Figure 4's discard: one of the two weight-25 nation edges
  // (supplier-nation or customer-nation) must be dropped, plus the
  // lineitem-supplier edge (10k) stays since... verify weight total equals
  // sum of all but the two lightest removable edges by checking against a
  // recomputed optimum: total graph weight minus MAST weight equals the
  // weight of dropped edges (2 edges dropped from 9).
  EXPECT_EQ(g.edges().size() - m.edges.size(), 2u);
  EXPECT_LT(m.total_weight, g.TotalWeight());
}

TEST(MastTest, EnumerationFindsEqualWeightAlternatives) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  SchemaGraph g = SchemaGraph::FromSchema(*db);
  auto masts = EnumerateMaximumSpanningTrees(g, 8);
  ASSERT_GE(masts.size(), 2u);  // the two weight-25 nation edges tie
  for (const auto& m : masts) {
    EXPECT_DOUBLE_EQ(m.total_weight, masts[0].total_weight);
    EXPECT_EQ(m.edges.size(), 7u);
  }
}

TEST(MastTest, ContainsAndMerge) {
  auto db = GenerateTpch({0.001, 1});
  ASSERT_TRUE(db.ok());
  const Schema& s = db->schema();
  auto edge = [&](const char* lt, const char* lc, const char* rt, const char* rc,
                  double w) {
    WeightedEdge e;
    e.predicate = *s.MakePredicate(lt, {lc}, rt, {rc});
    e.weight = w;
    return e;
  };
  Mast big;
  big.nodes = {*s.FindTable("lineitem"), *s.FindTable("orders"),
               *s.FindTable("customer")};
  big.edges = {edge("lineitem", "l_orderkey", "orders", "o_orderkey", 3),
               edge("orders", "o_custkey", "customer", "c_custkey", 2)};
  big.total_weight = 5;
  Mast small;
  small.nodes = {*s.FindTable("lineitem"), *s.FindTable("orders")};
  small.edges = {edge("orders", "o_orderkey", "lineitem", "l_orderkey", 3)};
  small.total_weight = 3;
  EXPECT_TRUE(big.Contains(small));  // reversed predicate counts as equal
  EXPECT_FALSE(small.Contains(big));

  Mast other;
  other.nodes = {*s.FindTable("customer"), *s.FindTable("nation")};
  other.edges = {edge("customer", "c_nationkey", "nation", "n_nationkey", 1)};
  other.total_weight = 1;
  auto merged = Mast::Merge(big, other);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->nodes.size(), 4u);
  EXPECT_EQ(merged->edges.size(), 3u);
  EXPECT_DOUBLE_EQ(merged->total_weight, 6);

  // Merging in an edge that closes a cycle fails.
  Mast cyclic;
  cyclic.nodes = {*s.FindTable("lineitem"), *s.FindTable("customer")};
  cyclic.edges = {edge("lineitem", "l_suppkey", "customer", "c_custkey", 9)};
  cyclic.total_weight = 9;
  EXPECT_FALSE(Mast::Merge(*merged, cyclic).ok());
}

TEST(ExpectedCopiesTest, StirlingMatchesClosedForm) {
  for (int n : {2, 3, 10, 40}) {
    ExpectedCopies e(n);
    for (int f : {1, 2, 3, 5, 8, 13, 30, 64}) {
      EXPECT_NEAR(e.ExactStirling(f), e.ClosedForm(f), 1e-6)
          << "n=" << n << " f=" << f;
    }
  }
}

TEST(ExpectedCopiesTest, BoundaryBehaviour) {
  ExpectedCopies e(10);
  EXPECT_DOUBLE_EQ(e.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(e.Get(1), 1.0);
  EXPECT_GT(e.Get(2), 1.0);
  EXPECT_LT(e.Get(2), 2.0);
  // Monotone in f, saturating at n.
  double prev = 0;
  for (int f = 1; f < 500; f *= 2) {
    double v = e.Get(f);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, 10.0 + 1e-9);
    prev = v;
  }
  EXPECT_NEAR(e.Get(10000), 10.0, 1e-6);
  ExpectedCopies single(1);
  EXPECT_DOUBLE_EQ(single.Get(7), 1.0);
}

TEST(EstimatorTest, UniqueReferencedKeyGivesFactorOne) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  RedundancyEstimator est(&*db, 10);
  // LINEITEM PREF by ORDERS on orderkey: o_orderkey is unique, so every
  // lineitem has exactly one partner partition.
  JoinPredicate p = *db->schema().MakePredicate("lineitem", {"l_orderkey"}, "orders",
                                                {"o_orderkey"});
  EXPECT_NEAR(est.EdgeFactor(p), 1.0, 1e-9);
}

TEST(EstimatorTest, EstimateMatchesMeasuredRedundancy) {
  // The accuracy claim of Figure 13 at sampling rate 100%: estimate the
  // size of ORDERS PREF by LINEITEM (scattered partners) and compare with
  // the actual partitioned size.
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  const int n = 10;
  PartitioningConfig config(&db->schema(), n);
  ASSERT_TRUE(config.AddHash("lineitem", {"l_partkey"}).ok());  // scatter orderkeys
  ASSERT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  auto pdb = PartitionDatabase(*db, config);
  ASSERT_TRUE(pdb.ok());
  double actual =
      static_cast<double>((*pdb)->GetTable(*db->schema().FindTable("orders"))->TotalRows());

  RedundancyEstimator est(&*db, n);
  JoinPredicate p = *db->schema().MakePredicate("orders", {"o_orderkey"}, "lineitem",
                                                {"l_orderkey"});
  double estimated = est.EdgeFactor(p) *
                     static_cast<double>((*db->FindTable("orders"))->num_rows());
  EXPECT_NEAR(estimated / actual, 1.0, 0.05);
}

TEST(EstimatorTest, SampledEstimateCloseToExact) {
  auto db = GenerateTpch({0.005, 42});
  ASSERT_TRUE(db.ok());
  JoinPredicate p = *db->schema().MakePredicate("orders", {"o_orderkey"}, "lineitem",
                                                {"l_orderkey"});
  RedundancyEstimator exact(&*db, 10, 1.0);
  RedundancyEstimator sampled(&*db, 10, 0.1);
  double e = exact.EdgeFactor(p);
  double s = sampled.EdgeFactor(p);
  EXPECT_NEAR(s / e, 1.0, 0.10);  // paper: ~3% error at 10% on TPC-H
}

TEST(EstimatorTest, OrphansCountOneCopy) {
  // Customers without orders (1/3 of them) must be counted with one copy.
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  RedundancyEstimator est(&*db, 10);
  JoinPredicate p = *db->schema().MakePredicate("customer", {"c_custkey"}, "orders",
                                                {"o_custkey"});
  double r = est.EdgeFactor(p);
  // Active customers (~2/3) have many orders (near n copies); orphans 1.
  EXPECT_GT(r, 2.0);
  EXPECT_LT(r, 10.0);
}

TEST(FindOptimalPcTest, ChosenSeedIsNoWorseThanPaperChoice) {
  // §5.1 reports LINEITEM as the suggested seed. Several seeds tie within
  // estimation noise here (co-located chains make C, L and PS seeds all
  // cheap); what Listing 1 guarantees is minimality of the estimated size.
  // Verify the *measured* size of the chosen configuration does not exceed
  // the paper's LINEITEM-seed configuration.
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  SchemaGraph g = SchemaGraph::FromSchema(*db, {"nation", "region", "supplier"});
  Mast mast = MaximumSpanningTree(g);
  RedundancyEstimator est(&*db, 10);
  auto plan = FindOptimalPc(mast, db->schema(), &est);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_seeds, 1);
  // Exactly one seed; whichever it is, its heaviest incident neighbor is
  // co-located (path factor stays 1 one hop downstream), and every factor
  // is within [1, n].
  int seeds = 0;
  for (const auto& [t, scheme] : plan->schemes) {
    if (scheme.is_seed) seeds++;
    EXPECT_GE(scheme.path_factor, 1.0 - 1e-9);
    EXPECT_LE(scheme.path_factor, 10.0 + 1e-9);
  }
  EXPECT_EQ(seeds, 1);

  // Materialize the chosen plan and the paper's manual plan; compare.
  SdOptions options;
  options.num_partitions = 10;
  options.replicate_tables = {"nation", "region", "supplier"};
  auto sd = SchemaDrivenDesign(*db, options);
  ASSERT_TRUE(sd.ok());
  auto chosen = PartitionDatabase(*db, sd->config);
  auto manual = PartitionDatabase(*db, MakeTpchSdManual(db->schema(), 10));
  ASSERT_TRUE(chosen.ok() && manual.ok());
  EXPECT_LE((*chosen)->TotalRows(), (*manual)->TotalRows() * 101 / 100);
}

TEST(FindOptimalPcTest, RedundancyFreeConstraintsForceTwoSeeds) {
  // §5.1 SD (wo small tables, wo data-redundancy): the algorithm must pick
  // two seed tables, PART and CUSTOMER, with LINEITEM PREF by ORDERS,
  // ORDERS by CUSTOMER and PARTSUPP by PART — and DL drops to 0.7.
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  SchemaGraph g = SchemaGraph::FromSchema(*db, {"nation", "region", "supplier"});
  Mast mast = MaximumSpanningTree(g);
  RedundancyEstimator est(&*db, 10);
  EnumerationConstraints constraints;
  for (const char* t : {"customer", "orders", "lineitem", "part", "partsupp"}) {
    constraints.no_redundancy.insert(*db->schema().FindTable(t));
  }
  auto plan = FindOptimalPc(mast, db->schema(), &est, constraints);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_seeds, 2);
  auto id = [&](const char* t) { return *db->schema().FindTable(t); };
  EXPECT_TRUE(plan->schemes.at(id("customer")).is_seed);
  EXPECT_TRUE(plan->schemes.at(id("part")).is_seed);
  // ORDERS PREF by CUSTOMER; LINEITEM PREF by ORDERS; PARTSUPP PREF by PART.
  EXPECT_EQ(plan->schemes.at(id("orders")).predicate.right_table, id("customer"));
  EXPECT_EQ(plan->schemes.at(id("lineitem")).predicate.right_table, id("orders"));
  EXPECT_EQ(plan->schemes.at(id("partsupp")).predicate.right_table, id("part"));
  // All tables redundancy-free.
  for (const auto& [t, scheme] : plan->schemes) {
    EXPECT_NEAR(scheme.path_factor, 1.0, 0.02);
  }
  // Cut weight = |PARTSUPP| (the dropped L-PS edge) => DL = 0.7.
  double total = g.TotalWeight();
  EXPECT_NEAR(1.0 - plan->cut_weight / total, 0.7, 0.03);
}

TEST(SdDesignTest, TpchEndToEndMatchesPaper) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  SdOptions options;
  options.num_partitions = 10;
  options.replicate_tables = {"nation", "region", "supplier"};
  auto result = SchemaDrivenDesign(*db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_seed_tables, 1);
  // DL = 1.0 on the reduced graph; all 4 reduced-graph edges local.
  auto edges = SchemaEdges(*db, result->config);
  EXPECT_DOUBLE_EQ(DataLocality(result->config, edges), 1.0);
  // Materialize and compare DR with Table 1 (0.5) and the estimate.
  auto pdb = PartitionDatabase(*db, result->config);
  ASSERT_TRUE(pdb.ok());
  double dr = (*pdb)->DataRedundancy();
  EXPECT_GT(dr, 0.2);
  EXPECT_LT(dr, 1.0);
  EXPECT_NEAR(result->estimated_redundancy, dr, 0.15);
  // Definition 1 holds for every PREF table.
  for (const auto& [id, spec] : result->config.specs()) {
    if (spec.method == PartitionMethod::kPref) {
      CheckPrefInvariants(*db, **pdb, id);
    }
  }
}

TEST(SdDesignTest, NoRedundancyVariantEndToEnd) {
  auto db = GenerateTpch({0.002, 42});
  ASSERT_TRUE(db.ok());
  SdOptions options;
  options.num_partitions = 10;
  options.replicate_tables = {"nation", "region", "supplier"};
  options.no_redundancy_tables = {"customer", "orders", "lineitem", "part",
                                  "partsupp"};
  auto result = SchemaDrivenDesign(*db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_seed_tables, 2);
  auto pdb = PartitionDatabase(*db, result->config);
  ASSERT_TRUE(pdb.ok());
  // Only the replicated small tables add redundancy; the five big tables
  // are duplicate-free. Paper: DR = 0.19 (their DR includes replicas).
  for (const char* t : {"customer", "orders", "lineitem", "part", "partsupp"}) {
    const PartitionedTable* pt = (*pdb)->GetTable(*db->schema().FindTable(t));
    EXPECT_EQ(pt->TotalRows(), (*db->FindTable(t))->num_rows()) << t;
  }
}

TEST(SdDesignTest, SampledDesignAgreesWithExact) {
  auto db = GenerateTpch({0.005, 42});
  ASSERT_TRUE(db.ok());
  SdOptions exact;
  exact.num_partitions = 10;
  exact.replicate_tables = {"nation", "region", "supplier"};
  SdOptions sampled = exact;
  sampled.sample_rate = 0.1;
  auto a = SchemaDrivenDesign(*db, exact);
  auto b = SchemaDrivenDesign(*db, sampled);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_seed_tables, b->num_seed_tables);
  EXPECT_NEAR(b->estimated_size / a->estimated_size, 1.0, 0.15);
}

TEST(SdDesignTest, IsolatedTableBecomesHashSeed) {
  // A schema component with a single table must still get a scheme.
  Schema s;
  ASSERT_TRUE(s.AddTable("solo", {{"id", DataType::kInt64}, {"v", DataType::kDouble}},
                         {"id"})
                  .ok());
  Database db(std::move(s));
  RowBlock& data = (*db.FindTable("solo"))->data();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(data.AppendRowValues({Value(int64_t{i}), Value(1.0)}).ok());
  }
  SdOptions options;
  options.num_partitions = 4;
  auto result = SchemaDrivenDesign(db, options);
  ASSERT_TRUE(result.ok());
  TableId solo = *db.schema().FindTable("solo");
  EXPECT_EQ(result->config.spec(solo).method, PartitionMethod::kHash);
}

}  // namespace
}  // namespace pref
