// Golden corpus for the bench/ scope: raw-random and raw-thread fire in
// benchmark drivers (their numbers must replay from a seed just like the
// library), but raw-stdout does not — human-readable stdout is what a
// bench main is for.

#include <chrono>
#include <cstdio>
#include <thread>

void bench_bad_randomness() {
  int r = rand();  // expect: raw-random
  (void)r;
  auto now = std::chrono::system_clock::now();  // expect: raw-random
  (void)now;
}

void bench_bad_threads() {
  std::thread t([] {});  // expect: raw-thread
  t.join();
}

void bench_stdout_is_fine() {
  // The human-readable results table: legitimate in bench/, a finding in
  // src/.
  std::printf("p50 %7.2fms\n", 1.0);
}

void bench_sleep_is_fine() {
  // Open-loop pacing; std::this_thread is not std::thread construction.
  std::this_thread::sleep_for(std::chrono::microseconds(200));
}
