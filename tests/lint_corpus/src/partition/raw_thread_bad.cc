// Golden corpus: rule [raw-thread] — ad-hoc std::thread outside the
// bounded pool. Mentions in comments (std::thread) must not fire.
#include <thread>

namespace pref {

void SpawnUnbounded() {
  std::thread worker([] {});  // expect: raw-thread
  worker.join();
  // hardware_concurrency is a capacity query, not a spawn; allowed:
  unsigned hw = std::thread::hardware_concurrency();
  (void)hw;
}

}  // namespace pref
