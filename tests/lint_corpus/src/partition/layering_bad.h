// Golden corpus: layering — the include DAG is
// common < catalog < storage < datagen/partition < design < engine < sql
// < workloads. A partition header reaching up into engine or design is a
// back-edge; downward edges and system includes stay clean.
#pragma once

#include <vector>            // no finding: system header, outside the DAG

#include "common/mutex.h"    // no finding: downward edge
#include "design/wd_design.h"   // expect: layering
#include "engine/plan.h"        // expect: layering
#include "storage/partition.h"  // no finding: downward edge
