// Golden corpus: src/common/random.* is the one place allowed to touch
// raw entropy sources — rule [raw-random] must stay quiet here.
#include <cstdlib>
#include <random>

namespace pref {

unsigned CorpusEntropySeed() {
  std::random_device rd;  // no finding: inside src/common/random.*
  return rd() ^ static_cast<unsigned>(rand());  // no finding
}

}  // namespace pref
