// Golden corpus: src/common/simd.h is the one home of raw intrinsics —
// rule [raw-simd] must stay quiet here.
#include <immintrin.h>  // no finding: inside src/common/simd.h

namespace pref::simd {

inline int CorpusKernel() { return 0; }

}  // namespace pref::simd
