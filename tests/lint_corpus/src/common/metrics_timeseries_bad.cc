// Corpus case for the wall-clock rule: clock reads inside the replayable
// observability paths (profile / workload_monitor / metrics_timeseries)
// must fire, while count-driven ticking stays clean.
#include <chrono>

namespace pref {

void TickFromClock() {
  auto now = std::chrono::steady_clock::now();  // expect: wall-clock
  (void)now;
  Stopwatch watch;  // expect: wall-clock
  (void)watch;
}

void TickFromCounts(unsigned long completions) {
  // Clean: the label is a logical clock supplied by the caller.
  double label = static_cast<double>(completions);
  (void)label;
}

}  // namespace pref
