// Golden corpus: src/common/thread_pool.* owns thread creation — rule
// [raw-thread] must stay quiet here.
#include <thread>
#include <vector>

namespace pref {

void CorpusPoolSpawn(std::vector<std::thread>* workers) {
  workers->emplace_back([] {});  // no finding
  std::thread extra([] {});      // no finding: inside thread_pool.*
  extra.join();
}

}  // namespace pref
