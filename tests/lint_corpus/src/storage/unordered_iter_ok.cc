// Golden corpus: the same loop that fires in src/engine is fine here —
// rule [unordered-iter] is scoped to result-producing code
// (src/engine, src/partition, src/design), not the whole tree.
#include <unordered_map>

namespace pref {

int StorageInternalIteration() {
  std::unordered_map<int, int> m{{1, 2}};
  int total = 0;
  for (const auto& [k, v] : m) total += v;  // no finding: out of scope
  return total;
}

}  // namespace pref
