#include "member_iter.h"

namespace pref {

double FoldHistogram(const CorpusHistogram& h) {
  double sum = 0;
  for (const auto& [k, v] : h.freqs) {  // expect: unordered-iter
    sum += static_cast<double>(v);
  }
  return sum;
}

}  // namespace pref
