// Golden corpus: observability schema — string literals handed to the
// metrics/trace APIs must be registered in src/common/metric_names.h
// (the real registry: these cases reference real registered names).
// Unregistered names and edit-distance-1 near-duplicates both fire.
namespace pref {

struct CorpusCounter {
  void Add(unsigned long n) {}
};

struct CorpusRegistry {
  CorpusCounter& GetCounter(const char* name) {
    static CorpusCounter c;
    return c;
  }
  CorpusCounter& GetGauge(const char* name) {
    static CorpusCounter g;
    return g;
  }
};

void RecordMetrics(CorpusRegistry& registry) {
  registry.GetCounter("scheduler.submitted").Add(1);  // no finding: registered
  registry.GetCounter("scheduler.submited").Add(1);  // expect: metric-name
  registry.GetGauge("engine.bogus_gauge").Add(1);  // expect: metric-name
  registry.GetCounter("pool.worker_busy_us.3").Add(1);  // no finding: prefix family
}

}  // namespace pref
