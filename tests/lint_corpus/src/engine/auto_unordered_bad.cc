// Golden corpus: determinism v2 — unordered iteration reached through
// auto, typedef/alias chains, and accessor return types: exactly the
// resolution steps the old regex linter could not perform.
#include <unordered_map>
#include <unordered_set>

namespace pref {

typedef std::unordered_set<int> RawSeenSet;
using SeenSetAlias = RawSeenSet;  // alias of a typedef: a two-hop chain

struct CorpusConfig {
  std::unordered_map<int, int> limits;
  const std::unordered_map<int, int>& limit_map() const { return limits; }
};

int AutoFromAccessor(const CorpusConfig& cfg) {
  auto snapshot = cfg.limit_map();  // auto hides the unordered type
  int total = 0;
  for (const auto& [k, v] : snapshot) total += v;  // expect: unordered-iter
  return total;
}

int AliasChain() {
  SeenSetAlias visited{1, 2, 3};
  int total = 0;
  for (int v : visited) total += v;  // expect: unordered-iter
  return total;
}

int OrderedAutoStaysClean(const int (&values)[4]) {
  auto copy = values;  // auto over an ordered range: no finding
  int total = 0;
  for (int v : copy) total += v;
  return total;
}

}  // namespace pref
