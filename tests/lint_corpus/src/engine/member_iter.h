// Golden corpus: unordered member declared in a header, iterated from the
// sibling .cc — the linter must pick the member's type up across files.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace pref {

struct CorpusHistogram {
  std::unordered_map<uint64_t, int64_t> freqs;
};

double FoldHistogram(const CorpusHistogram& h);

}  // namespace pref
