// Golden corpus: pool discipline — a blocking call inside a lambda
// submitted to the ThreadPool parks a pool lane on work the pool itself
// may have to run (the PR 6 deadlock class). A justified
// `// lint:pool-wait` tag suppresses; a bare tag is itself a finding.
#include <chrono>
#include <thread>

namespace pref {

class CorpusPool {
 public:
  template <typename F>
  void Post(F&& fn) {}
  template <typename F>
  void ParallelFor(int n, F&& fn) {}
};

struct CorpusLatch {
  void Wait() {}
  void Notify() {}
};

struct CorpusWorker {
  void join() {}
};

void BlockingInsidePostedLambda(CorpusPool* pool, CorpusLatch* latch) {
  pool->Post([latch] {
    latch->Wait();  // expect: pool-discipline
  });
  pool->Post([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // expect: pool-discipline
  });
}

void JoinInsideParallelFor(CorpusPool* pool, CorpusWorker* worker) {
  pool->ParallelFor(4, [worker](int) {
    worker->join();  // not matched by the dot-join pattern on purpose...
    CorpusWorker local;
    local.join();  // expect: pool-discipline
  });
}

void JustifiedWait(CorpusPool* pool, CorpusLatch* latch) {
  pool->Post([latch] {
    // lint:pool-wait: the latch is always signalled before this task is
    // queued (construction order), so the wait can never park the lane.
    latch->Wait();
  });
}

void NonBlockingTaskStaysClean(CorpusPool* pool, CorpusLatch* latch) {
  pool->Post([] {
    int work = 1;
    work += 2;
  });
  // Blocking *outside* any submitted lambda is the caller's business.
  latch->Wait();  // no finding
}

}  // namespace pref
