// Golden corpus: status discipline — Status/Result values constructed
// and dropped: never read after initialization, swallowed by a (void)
// cast (which defeats [[nodiscard]]), or a bare call statement whose
// declared return type is Status everywhere. A justified
// `// lint:status-ok` tag suppresses a deliberate drop.
#include "common/status.h"

namespace pref {

Status DoRebuild();
Status DoPublish();

void DropEveryWay() {
  Status ignored = DoRebuild();  // expect: status-discipline
  (void)DoPublish();  // expect: status-discipline
  DoRebuild();  // expect: status-discipline
}

void SwallowedLocal() {
  Status s = DoRebuild();
  (void)s;  // expect: status-discipline
}

void JustifiedDrop() {
  Status s = DoRebuild();
  // lint:status-ok: this path only warms the staging cache; the terminal
  // status is re-read and surfaced to callers by Wait().
  (void)s;
}

Status UsedProperly() {
  Status first = DoRebuild();
  if (!first.ok()) return first;
  return DoPublish();  // no finding: returned to the caller
}

}  // namespace pref
