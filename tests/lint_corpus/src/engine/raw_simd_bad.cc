// Golden corpus: rule [raw-simd] — raw intrinsics headers outside
// src/common/simd.h. Any *intrin.h angle include fires; project headers
// (including common/simd.h itself, the sanctioned wrapper) do not.
#include <immintrin.h>  // expect: raw-simd
#include <x86intrin.h>  // expect: raw-simd
#include <emmintrin.h>  // expect: raw-simd

#include <cstring>

#include "common/simd.h"  // no finding: the dispatched kernel layer

namespace pref {

// Mentions in comments or strings must not fire: #include <immintrin.h>
const char* kDoc = "#include <immintrin.h>";

}  // namespace pref
