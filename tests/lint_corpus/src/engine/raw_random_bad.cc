// Golden corpus: rule [raw-random] — unseeded randomness and wall-clock
// reads that make runs unrepeatable. All of these must fire outside
// src/common/random.*.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace pref {

int EveryForbiddenSource() {
  int x = rand();  // expect: raw-random
  std::random_device rd;  // expect: raw-random
  x += static_cast<int>(rd());
  x += static_cast<int>(time(NULL));  // expect: raw-random
  auto now = std::chrono::system_clock::now();  // expect: raw-random
  x += static_cast<int>(now.time_since_epoch().count());
  // steady_clock is fine: monotonic timing, not wall-clock identity.
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  // Identifiers merely *containing* the tokens must not fire:
  int grand = 0;
  int strtime = 0;
  return x + grand + strtime;
}

}  // namespace pref
