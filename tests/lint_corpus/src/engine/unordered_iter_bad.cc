// Golden corpus: every way rule [unordered-iter] must fire in
// result-producing code (src/engine scope). Each offending line carries an
// `// expect: <rule>` marker the self-test checks against.
#include <unordered_map>
#include <unordered_set>

namespace pref {

using SeenSet = std::unordered_set<int>;

int IterateEveryWay() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int total = 0;
  for (const auto& [k, v] : counts) total += v;  // expect: unordered-iter
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // expect: unordered-iter
    total += it->second;
  }
  SeenSet seen{1, 2, 3};
  for (int v : seen) total += v;  // expect: unordered-iter
  return total;
}

struct Holder {
  std::unordered_map<int, double> weights;
};

double MemberIteration(const Holder& h) {
  double sum = 0;
  for (const auto& [k, w] : h.weights) sum += w;  // expect: unordered-iter
  return sum;
}

}  // namespace pref
