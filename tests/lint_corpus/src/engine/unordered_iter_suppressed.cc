// Golden corpus: `// lint:ordered-fold` suppressions. A justified tag —
// same line or in the contiguous comment block above — silences
// [unordered-iter]; a tag without a reason is itself a finding.
#include <unordered_map>

namespace pref {

int SuppressedSameLine() {
  std::unordered_map<int, int> m{{1, 2}};
  int total = 0;
  // lint:ordered-fold: integer sum; any visit order yields the same total.
  for (const auto& [k, v] : m) total += v;
  return total;
}

int SuppressedMultiLineBlock() {
  std::unordered_map<int, int> m{{1, 2}};
  int total = 0;
  // lint:ordered-fold: the accumulation below is order-insensitive
  // (integer addition is associative and commutative), so unspecified
  // iteration order cannot change the result.
  for (const auto& [k, v] : m) total += v;
  return total;
}

int BareTagWithoutReason() {
  std::unordered_map<int, int> m{{1, 2}};
  int total = 0;
  // expect: unordered-iter -- a reasonless tag must fire: lint:ordered-fold
  for (const auto& [k, v] : m) total += v;
  return total;
}

}  // namespace pref
