// Golden corpus: rule [raw-stdout] — stdout writes from library code.
// stderr diagnostics, snprintf formatting, and string literals that merely
// mention the tokens must not fire.
#include <cstdio>
#include <iostream>
#include <string>

namespace pref {

void EveryForbiddenWrite(int rows) {
  std::cout << "rows=" << rows << "\n";  // expect: raw-stdout
  printf("rows=%d\n", rows);  // expect: raw-stdout
  fprintf(stdout, "rows=%d\n", rows);  // expect: raw-stdout
}

void AllowedWrites(int rows) {
  fprintf(stderr, "diagnostic: rows=%d\n", rows);  // no finding: stderr
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", rows);  // no finding: formatting
  std::string s = "call printf( or std::cout here";  // no finding: literal
}

}  // namespace pref
