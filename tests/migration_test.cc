// Online-migration tests (DESIGN.md §12): the planner's diff is minimal
// and exact (kKeep for untouched tables, kRecolocate for PREF chains
// dragged along, flows that add up to the totals), the executor's rebuilt
// state is bit-identical to a from-scratch load with unchanged tables
// pointer-shared, queries served *during* a migration stay bit-identical
// to serial runs on the version they pinned, and a cancelled migration
// leaves the deployment on a consistent published version.
//
// Runs under ThreadSanitizer and AddressSanitizer in CI.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/tpch_gen.h"
#include "engine/scheduler.h"
#include "partition/migration.h"
#include "engine/mutation.h"
#include "partition/partitioner.h"
#include "test_util.h"
#include "workloads/tpch_queries.h"

namespace pref {
namespace {

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Bit-exact RowBlock comparison: same rows in the same order, doubles
/// compared by bit pattern (the determinism contract of the load phases).
void ExpectBlocksIdentical(const RowBlock& a, const RowBlock& b,
                           const std::string& label) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
  ASSERT_EQ(a.num_columns(), b.num_columns()) << label;
  for (int c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (ca.is_double()) {
        ASSERT_EQ(DoubleBits(ca.GetDouble(r)), DoubleBits(cb.GetDouble(r)))
            << label << " col " << c << " row " << r;
      } else if (ca.is_int()) {
        ASSERT_EQ(ca.GetInt64(r), cb.GetInt64(r))
            << label << " col " << c << " row " << r;
      } else {
        ASSERT_EQ(ca.GetString(r), cb.GetString(r))
            << label << " col " << c << " row " << r;
      }
    }
  }
}

/// Bit-exact result comparison (same contract as scheduler_test).
void ExpectBitIdentical(const QueryResult& a, const QueryResult& b,
                        const std::string& label) {
  ASSERT_EQ(a.rows.num_rows(), b.rows.num_rows()) << label;
  EXPECT_EQ(a.column_names, b.column_names) << label;
  ExpectBlocksIdentical(a.rows, b.rows, label);
}

/// The parts-rooted alternative to MakeTpchSdManual: part becomes the
/// hash seed and partsupp follows it, while the orders-side chain
/// (lineitem / orders / customer) and the replicated tables are textually
/// unchanged — the shape a parts-heavy workload shift designs to.
PartitioningConfig MakePartsRooted(const Schema& schema, int n) {
  PartitioningConfig config(&schema, n);
  EXPECT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}).ok());
  EXPECT_TRUE(config.AddHash("part", {"p_partkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("partsupp", {"ps_partkey"}, "part", {"p_partkey"}).ok());
  EXPECT_TRUE(config.AddReplicated("nation").ok());
  EXPECT_TRUE(config.AddReplicated("region").ok());
  EXPECT_TRUE(config.AddReplicated("supplier").ok());
  EXPECT_TRUE(config.Finalize().ok());
  return config;
}

/// Like MakeTpchSdManual but with the seed re-keyed: only lineitem's spec
/// changes textually, yet every PREF table transitively referencing it
/// must re-route to follow its partners.
PartitioningConfig MakeSeedRekeyed(const Schema& schema, int n) {
  PartitioningConfig config(&schema, n);
  EXPECT_TRUE(config.AddHash("lineitem", {"l_partkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("customer", {"c_custkey"}, "orders", {"o_custkey"}).ok());
  EXPECT_TRUE(config
                  .AddPref("partsupp", {"ps_partkey", "ps_suppkey"}, "lineitem",
                           {"l_partkey", "l_suppkey"})
                  .ok());
  EXPECT_TRUE(
      config.AddPref("part", {"p_partkey"}, "partsupp", {"ps_partkey"}).ok());
  EXPECT_TRUE(config.AddReplicated("nation").ok());
  EXPECT_TRUE(config.AddReplicated("region").ok());
  EXPECT_TRUE(config.AddReplicated("supplier").ok());
  EXPECT_TRUE(config.Finalize().ok());
  return config;
}

/// Two independent changed groups (parts re-rooting + a customer leaf
/// change), so the plan needs two publish epochs.
PartitioningConfig MakeTwoEpochTarget(const Schema& schema, int n) {
  PartitioningConfig config(&schema, n);
  EXPECT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
  EXPECT_TRUE(config.AddHash("customer", {"c_custkey"}).ok());
  EXPECT_TRUE(config.AddHash("part", {"p_partkey"}).ok());
  EXPECT_TRUE(
      config.AddPref("partsupp", {"ps_partkey"}, "part", {"p_partkey"}).ok());
  EXPECT_TRUE(config.AddReplicated("nation").ok());
  EXPECT_TRUE(config.AddReplicated("region").ok());
  EXPECT_TRUE(config.AddReplicated("supplier").ok());
  EXPECT_TRUE(config.Finalize().ok());
  return config;
}

class MigrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = GenerateTpch({0.005, 42});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static std::shared_ptr<const PartitionedDatabase> Materialize(
      const PartitioningConfig& config) {
    auto pdb = PartitionDatabase(*db_, config);
    EXPECT_TRUE(pdb.ok()) << pdb.status().ToString();
    return std::shared_ptr<const PartitionedDatabase>(pdb->release());
  }

  static const MigrationStep& StepFor(const MigrationPlan& plan,
                                      const std::string& table) {
    for (const MigrationStep& s : plan.steps) {
      if (s.table_name == table) return s;
    }
    ADD_FAILURE() << "no step for table " << table;
    static MigrationStep none;
    return none;
  }

  static Database* db_;
};

Database* MigrationTest::db_ = nullptr;

TEST_F(MigrationTest, IdenticalConfigPlansEmpty) {
  const auto config = MakeTpchSdManual(db_->schema(), 4);
  auto pdb = Materialize(config);
  auto plan = PlanMigration(*db_, *pdb, config);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->Empty());
  EXPECT_EQ(plan->num_epochs, 0);
  EXPECT_EQ(plan->tables_moved, 0u);
  EXPECT_EQ(plan->tables_kept, 8u);
  EXPECT_EQ(plan->moved_rows, 0u);
  EXPECT_EQ(plan->moved_copies, 0u);
  for (const MigrationStep& s : plan->steps) {
    EXPECT_EQ(s.kind, MigrationStepKind::kKeep) << s.table_name;
    EXPECT_EQ(s.epoch, -1) << s.table_name;
    EXPECT_TRUE(s.flows.empty()) << s.table_name;
  }
}

TEST_F(MigrationTest, PlanIsMinimalAndExact) {
  // Re-rooting the parts side changes part (PREF -> hash) and partsupp
  // (new predicate); the orders chain and the replicated tables must be
  // zero-movement kKeep steps, and the movement totals must be strictly
  // below the full-reload baseline.
  const auto old_config = MakeTpchSdManual(db_->schema(), 4);
  auto pdb = Materialize(old_config);
  auto plan = PlanMigration(*db_, *pdb, MakePartsRooted(db_->schema(), 4));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  EXPECT_EQ(plan->tables_moved, 2u);
  EXPECT_EQ(plan->tables_kept, 6u);
  for (const char* kept :
       {"lineitem", "orders", "customer", "nation", "region", "supplier"}) {
    const MigrationStep& s = StepFor(*plan, kept);
    EXPECT_EQ(s.kind, MigrationStepKind::kKeep) << kept;
    EXPECT_EQ(s.moved_copies, 0u) << kept;
  }
  EXPECT_EQ(StepFor(*plan, "part").kind, MigrationStepKind::kMove);
  EXPECT_EQ(StepFor(*plan, "partsupp").kind, MigrationStepKind::kMove);
  // part and partsupp are PREF-connected (old and new config), so they
  // publish atomically in one epoch.
  EXPECT_EQ(plan->num_epochs, 1);
  EXPECT_EQ(StepFor(*plan, "part").epoch, 0);
  EXPECT_EQ(StepFor(*plan, "partsupp").epoch, 0);

  EXPECT_GT(plan->moved_copies, 0u);
  EXPECT_LT(plan->moved_copies, plan->reload_copies);
  // Per-step flows add up to the step totals and conserve cardinality.
  for (const MigrationStep& s : plan->steps) {
    if (s.kind == MigrationStepKind::kKeep) continue;
    size_t in = 0, out = 0, before = 0, after = 0;
    for (const PartitionFlow& f : s.flows) {
      in += f.rows_in;
      out += f.rows_out;
      before += f.rows_before;
      after += f.rows_after;
    }
    EXPECT_EQ(in, s.moved_copies) << s.table_name;
    EXPECT_EQ(before + in - out, after) << s.table_name;
    EXPECT_EQ(after, s.reload_copies) << s.table_name;
  }
}

TEST_F(MigrationTest, RecolocateFollowsMovedReferencedChain) {
  // Only lineitem's spec changes textually, but PREF placement is
  // data-dependent: every table whose transitive PREF chain reaches
  // lineitem re-routes (kRecolocate), atomically with it in one epoch.
  auto pdb = Materialize(MakeTpchSdManual(db_->schema(), 4));
  auto plan = PlanMigration(*db_, *pdb, MakeSeedRekeyed(db_->schema(), 4));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  EXPECT_EQ(StepFor(*plan, "lineitem").kind, MigrationStepKind::kMove);
  for (const char* chained : {"orders", "customer", "partsupp", "part"}) {
    const MigrationStep& s = StepFor(*plan, chained);
    EXPECT_EQ(s.kind, MigrationStepKind::kRecolocate) << chained;
    EXPECT_EQ(s.epoch, 0) << chained;
  }
  EXPECT_EQ(plan->num_epochs, 1);
  EXPECT_EQ(plan->tables_kept, 3u);  // the replicated tables
}

TEST_F(MigrationTest, SplitAndMergeClassification) {
  const Schema& schema = db_->schema();
  auto two_table = [&](int n) {
    PartitioningConfig config(&schema, n);
    EXPECT_TRUE(config.AddHash("lineitem", {"l_orderkey"}).ok());
    EXPECT_TRUE(
        config.AddPref("orders", {"o_orderkey"}, "lineitem", {"l_orderkey"}).ok());
    EXPECT_TRUE(config.Finalize().ok());
    return config;
  };
  auto four = Materialize(two_table(4));
  auto grow = PlanMigration(*db_, *four, two_table(6));
  ASSERT_TRUE(grow.ok()) << grow.status().ToString();
  EXPECT_EQ(StepFor(*grow, "lineitem").kind, MigrationStepKind::kSplit);
  EXPECT_EQ(StepFor(*grow, "orders").kind, MigrationStepKind::kSplit);

  auto six = Materialize(two_table(6));
  auto shrink = PlanMigration(*db_, *six, two_table(4));
  ASSERT_TRUE(shrink.ok()) << shrink.status().ToString();
  EXPECT_EQ(StepFor(*shrink, "lineitem").kind, MigrationStepKind::kMerge);
  EXPECT_EQ(StepFor(*shrink, "orders").kind, MigrationStepKind::kMerge);
}

TEST_F(MigrationTest, TargetMustCoverEveryServingTable) {
  const Schema& schema = db_->schema();
  auto pdb = Materialize(MakeTpchSdManual(schema, 4));
  PartitioningConfig partial(&schema, 4);
  ASSERT_TRUE(partial.AddHash("lineitem", {"l_orderkey"}).ok());
  ASSERT_TRUE(partial.Finalize().ok());
  auto plan = PlanMigration(*db_, *pdb, partial);
  EXPECT_FALSE(plan.ok());
}

TEST_F(MigrationTest, ExecutorMatchesFromScratchLoadBitIdentical) {
  const auto new_config = MakePartsRooted(db_->schema(), 4);
  auto base = Materialize(MakeTpchSdManual(db_->schema(), 4));
  ServingDatabase serving(base);

  MigrationOptions options;
  options.verify_colocation = true;
  auto plan = PlanMigration(*db_, *base, new_config, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  MigrationExecutor executor(*db_, &serving, std::move(*plan), options);
  ASSERT_TRUE(executor.Run().ok());
  EXPECT_EQ(executor.state(), MigrationExecutor::State::kDone);
  EXPECT_EQ(executor.epochs_published(), executor.plan().num_epochs);
  EXPECT_EQ(serving.version(), 2u);

  auto scratch = Materialize(new_config);
  auto final_snap = serving.Acquire();
  EXPECT_TRUE(VerifyColocation(*db_, *final_snap.pdb).ok());
  for (const MigrationStep& s : executor.plan().steps) {
    const PartitionedTable* got = final_snap.pdb->GetTable(s.table);
    const PartitionedTable* want = scratch->GetTable(s.table);
    ASSERT_NE(got, nullptr) << s.table_name;
    ASSERT_NE(want, nullptr) << s.table_name;
    if (s.kind == MigrationStepKind::kKeep) {
      // Zero bytes copied: the new version references the base version's
      // storage object itself.
      EXPECT_EQ(final_snap.pdb->TableHandle(s.table).get(),
                base->TableHandle(s.table).get())
          << s.table_name;
      continue;
    }
    // The rebuild writes exactly what the plan's replay predicted, which
    // is exactly what a from-scratch load ships.
    EXPECT_EQ(s.rebuilt_copies, s.reload_copies) << s.table_name;
    ASSERT_EQ(got->num_partitions(), want->num_partitions()) << s.table_name;
    for (int p = 0; p < got->num_partitions(); ++p) {
      const Partition& gp = got->partition(p);
      const Partition& wp = want->partition(p);
      const std::string label = s.table_name + " p" + std::to_string(p);
      ExpectBlocksIdentical(gp.rows, wp.rows, label);
      // The PREF bitmaps ride along bit-for-bit (hash tables carry none).
      ASSERT_EQ(gp.dup.size(), wp.dup.size()) << label;
      ASSERT_EQ(gp.has_partner.size(), wp.has_partner.size()) << label;
      for (size_t r = 0; r < gp.dup.size(); ++r) {
        EXPECT_EQ(gp.dup.Get(r), wp.dup.Get(r)) << label << " row " << r;
      }
      for (size_t r = 0; r < gp.has_partner.size(); ++r) {
        EXPECT_EQ(gp.has_partner.Get(r), wp.has_partner.Get(r))
            << label << " row " << r;
      }
    }
  }
}

TEST_F(MigrationTest, QueriesStayBitIdenticalMidMigration) {
  // Queries submitted while the migration rebuilds and publishes in the
  // background must return exactly what a serial run on their pinned
  // database version returns — at 1 pool lane (everything interleaves on
  // the waiter's thread) and at 4 (genuine concurrency; TSan covers it).
  const Schema& schema = db_->schema();
  const auto new_config = MakePartsRooted(schema, 4);
  std::vector<QuerySpec> mix;
  {
    auto ps_part = QueryBuilder(&schema, "ps_part")
                       .From("partsupp")
                       .Join("part", "ps_partkey", "p_partkey")
                       .Agg(AggFunc::kCountStar, "", "cnt")
                       .Build();
    ASSERT_TRUE(ps_part.ok());
    mix.push_back(*ps_part);
    auto li_ord = QueryBuilder(&schema, "li_ord")
                      .From("lineitem")
                      .Join("orders", "l_orderkey", "o_orderkey")
                      .Agg(AggFunc::kSum, "l_extendedprice", "rev")
                      .Build();
    ASSERT_TRUE(li_ord.ok());
    mix.push_back(*li_ord);
    auto li_part = QueryBuilder(&schema, "li_part")
                       .From("lineitem")
                       .Join("part", "l_partkey", "p_partkey")
                       .Agg(AggFunc::kCountStar, "", "cnt")
                       .Build();
    ASSERT_TRUE(li_part.ok());
    mix.push_back(*li_part);
  }

  for (int lanes : {1, 4}) {
    auto base = Materialize(MakeTpchSdManual(schema, 4));
    ServingDatabase serving(base);
    ThreadPool pool(lanes);
    ThreadPool serial(1);
    QueryScheduler scheduler(&serving, {0, &pool});

    // Version -> pinned storage. The plan has one epoch, so the only
    // versions are 1 (seeded here) and 2 (recorded after any completion
    // that observed the publish).
    std::map<uint64_t, std::shared_ptr<const PartitionedDatabase>> versions;
    versions.emplace(1, base);
    // (version, query) -> serial baseline, computed on first need.
    std::map<std::pair<uint64_t, std::string>, QueryResult> baselines;
    auto expect_matches_baseline = [&](const QuerySpec& q, uint64_t version,
                                       const QueryResult& got) {
      auto it = versions.find(version);
      ASSERT_NE(it, versions.end()) << "unrecorded version " << version;
      auto key = std::make_pair(version, q.name);
      auto cached = baselines.find(key);
      if (cached == baselines.end()) {
        auto serial_run = ExecuteQuery(q, *it->second, {}, {}, &serial);
        ASSERT_TRUE(serial_run.ok()) << serial_run.status().ToString();
        cached = baselines.emplace(key, std::move(*serial_run)).first;
      }
      const std::string label =
          q.name + " v" + std::to_string(version) + " @" + std::to_string(lanes);
      ExpectBitIdentical(cached->second, got, label);
      EXPECT_EQ(cached->second.stats.rows_shuffled, got.stats.rows_shuffled)
          << label;
      EXPECT_EQ(cached->second.stats.total_rows_processed,
                got.stats.total_rows_processed)
          << label;
    };
    auto serve_round = [&] {
      for (const QuerySpec& q : mix) {
        const uint64_t id = scheduler.Submit(q);
        QueryProfile profile;
        auto result = scheduler.Take(id, &profile);
        ASSERT_TRUE(result.ok()) << q.name << ": "
                                 << result.status().ToString();
        auto snap = serving.Acquire();
        versions.emplace(snap.version, snap.pdb);
        expect_matches_baseline(q, profile.database_version, *result);
      }
    };

    auto plan = PlanMigration(*db_, *base, new_config);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ASSERT_EQ(plan->num_epochs, 1);
    MigrationExecutor executor(*db_, &serving, std::move(*plan), {});
    executor.Start(&pool);
    // Serve across the swap barrier: keep submitting until the migration
    // finished, then one more round pinned entirely on the new version.
    while (!executor.Done()) serve_round();
    ASSERT_TRUE(executor.Wait().ok());
    EXPECT_EQ(serving.version(), 2u);
    serve_round();
  }
}

TEST_F(MigrationTest, CancelledMigrationLeavesConsistentPublishedVersion) {
  const auto new_config = MakeTwoEpochTarget(db_->schema(), 4);
  auto base = Materialize(MakeTpchSdManual(db_->schema(), 4));
  ServingDatabase serving(base);
  auto plan = PlanMigration(*db_, *base, new_config);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->num_epochs, 2);

  MigrationExecutor executor(*db_, &serving, std::move(*plan), {});
  // Cancellation is checked before the first table, so cancelling before
  // Run() deterministically publishes nothing.
  executor.Cancel();
  Status s = executor.Run();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_EQ(executor.state(), MigrationExecutor::State::kCancelled);
  EXPECT_EQ(executor.epochs_published(), 0);
  EXPECT_EQ(serving.version(), 1u);
  // The deployment still serves the untouched base version.
  auto snap = serving.Acquire();
  EXPECT_EQ(snap.pdb.get(), base.get());
  EXPECT_TRUE(VerifyColocation(*db_, *snap.pdb).ok());
}

TEST_F(MigrationTest, VerifyColocationCatchesBrokenPlacement) {
  const Schema& schema = db_->schema();
  auto good = Materialize(MakeTpchSdManual(schema, 4));
  EXPECT_TRUE(VerifyColocation(*db_, *good).ok());

  // A frankenversion mixing orders' old placement with a re-keyed
  // lineitem: exactly the state an unsound migration (one that published
  // a PREF table without its moved referenced table) would serve. The
  // co-location contract is broken even though each table individually
  // holds all its rows.
  PartitioningConfig rekeyed(&schema, 4);
  ASSERT_TRUE(rekeyed.AddHash("lineitem", {"l_partkey"}).ok());
  ASSERT_TRUE(rekeyed.Finalize().ok());
  auto moved = Materialize(rekeyed);

  PartitionedDatabase franken(db_);
  ASSERT_TRUE(
      franken.ShareTable(moved->TableHandle(*schema.FindTable("lineitem"))).ok());
  for (const char* carried :
       {"orders", "customer", "partsupp", "part", "nation", "region",
        "supplier"}) {
    ASSERT_TRUE(
        franken.ShareTable(good->TableHandle(*schema.FindTable(carried))).ok());
  }
  Status broken = VerifyColocation(*db_, franken);
  EXPECT_FALSE(broken.ok()) << "frankenversion passed verification";
}

TEST_F(MigrationTest, MutationsRefuseTablesSharedAcrossVersions) {
  const Schema& schema = db_->schema();
  const auto config = MakeTpchSdManual(schema, 4);
  auto pdb = PartitionDatabase(*db_, config);
  ASSERT_TRUE(pdb.ok());
  Mutator mutator(&config);
  const Dnf filter =
      Dnf::And({Eq("c_mktsegment", Value(std::string("BUILDING")))});

  {
    // A second live version sharing customer's storage freezes it.
    PartitionedDatabase next(db_);
    ASSERT_TRUE(
        next.ShareTable((*pdb)->TableHandle(*schema.FindTable("customer"))).ok());
    auto blocked = mutator.Delete(pdb->get(), "customer", filter);
    ASSERT_FALSE(blocked.ok());
    EXPECT_TRUE(blocked.status().IsInvalid()) << blocked.status().ToString();
    // Tables not shared with the other version stay mutable.
    auto fine = mutator.Delete(pdb->get(), "nation",
                               Dnf::And({Eq("n_nationkey", Value(int64_t{3}))}));
    EXPECT_TRUE(fine.ok()) << fine.status().ToString();
  }
  // The old version drained: sharing ended, mutations apply again.
  auto after = mutator.Delete(pdb->get(), "customer", filter);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

}  // namespace
}  // namespace pref
