// MetricsTimeseries tests (DESIGN.md §11): counters sample as per-tick
// deltas, gauges as point-in-time values, the fixed ring drops oldest
// samples (counted), and the JSON export emits surviving samples
// oldest-first and parses.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/metrics_timeseries.h"

namespace pref {
namespace {

TEST(MetricsTimeseriesTest, CounterDeltasAndGaugeValues) {
  MetricsRegistry registry;
  Counter& work = registry.GetCounter("ts.work");
  Gauge& depth = registry.GetGauge("ts.depth");

  MetricsTimeseries ts({"ts.work"}, {"ts.depth"}, {}, &registry);
  work.Add(5);
  depth.Set(2);
  ts.Tick(1);
  work.Add(3);
  depth.Set(7);
  ts.Tick(2);
  ts.Tick(3);  // nothing changed: delta 0, gauge unchanged
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.dropped(), 0u);

  std::ostringstream os;
  ts.WriteJson(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator::Valid(json)) << json;
#if PREF_METRICS
  // First tick sees the full count, later ticks only the increments.
  EXPECT_NE(json.find("\"label\":1,\"counters\":[5],\"gauges\":[2]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"label\":2,\"counters\":[3],\"gauges\":[7]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"label\":3,\"counters\":[0],\"gauges\":[7]"),
            std::string::npos)
      << json;
#else
  // With the metrics layer compiled out every instrument reads zero, but
  // the caller-driven tick/ring mechanics still work.
  EXPECT_NE(json.find("\"label\":1,\"counters\":[0],\"gauges\":[0]"),
            std::string::npos)
      << json;
#endif
}

TEST(MetricsTimeseriesTest, RingDropsOldestAndCounts) {
  MetricsRegistry registry;
  Counter& work = registry.GetCounter("ts.work");
  TimeseriesOptions opts;
  opts.capacity = 3;
  MetricsTimeseries ts({"ts.work"}, {}, opts, &registry);
  for (int i = 1; i <= 5; ++i) {
    work.Add(static_cast<uint64_t>(i));
    ts.Tick(i);
  }
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.dropped(), 2u);

  std::ostringstream os;
  ts.WriteJson(os);
  const std::string json = os.str();
  ASSERT_TRUE(JsonValidator::Valid(json));
  // Ticks 1 and 2 were overwritten; 3..5 survive, oldest first.
  EXPECT_EQ(json.find("\"label\":1,"), std::string::npos);
  EXPECT_EQ(json.find("\"label\":2,"), std::string::npos);
  const size_t p3 = json.find("\"label\":3,");
  const size_t p4 = json.find("\"label\":4,");
  const size_t p5 = json.find("\"label\":5,");
  ASSERT_NE(p3, std::string::npos);
  ASSERT_NE(p4, std::string::npos);
  ASSERT_NE(p5, std::string::npos);
  EXPECT_LT(p3, p4);
  EXPECT_LT(p4, p5);
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
}

TEST(MetricsTimeseriesTest, UnregisteredInstrumentsReadZero) {
  MetricsRegistry registry;
  MetricsTimeseries ts({"ts.never_touched"}, {"ts.no_gauge"}, {}, &registry);
  ts.Tick(1);
  std::ostringstream os;
  ts.WriteJson(os);
  ASSERT_TRUE(JsonValidator::Valid(os.str()));
  EXPECT_NE(os.str().find("\"counters\":[0],\"gauges\":[0]"),
            std::string::npos)
      << os.str();
}

}  // namespace
}  // namespace pref
