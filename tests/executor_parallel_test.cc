// Determinism tests for the parallel executor: a query run on a 1-lane pool
// (the serial baseline) and on a multi-lane pool must produce *bit-identical*
// results — same rows, same row order, same double bit patterns — and equal
// ExecStats aggregates. This is stronger than the tolerant comparisons of
// engine_test.cc on purpose: the morsel-parallel scan and the deterministic
// aggregation fold (DESIGN.md §7) promise exact invariance across thread
// counts, not merely equivalence up to reassociation.
//
// Run under ThreadSanitizer in CI alongside bulk_load_parallel_test.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "test_util.h"
#include "workloads/tpch_queries.h"

namespace pref {
namespace {

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Bit-exact result comparison: row count, row order, and per-cell equality
/// with doubles compared by bit pattern (catches reassociated FP sums that a
/// tolerance would let through).
void ExpectBitIdentical(const QueryResult& a, const QueryResult& b,
                        const std::string& label) {
  ASSERT_EQ(a.rows.num_rows(), b.rows.num_rows()) << label;
  ASSERT_EQ(a.rows.num_columns(), b.rows.num_columns()) << label;
  EXPECT_EQ(a.column_names, b.column_names) << label;
  for (int c = 0; c < a.rows.num_columns(); ++c) {
    const Column& ca = a.rows.column(c);
    const Column& cb = b.rows.column(c);
    for (size_t r = 0; r < a.rows.num_rows(); ++r) {
      if (ca.is_double()) {
        EXPECT_EQ(DoubleBits(ca.GetDouble(r)), DoubleBits(cb.GetDouble(r)))
            << label << " col " << c << " row " << r;
      } else if (ca.is_int()) {
        EXPECT_EQ(ca.GetInt64(r), cb.GetInt64(r))
            << label << " col " << c << " row " << r;
      } else {
        EXPECT_EQ(ca.GetString(r), cb.GetString(r))
            << label << " col " << c << " row " << r;
      }
    }
  }
}

/// ExecStats must agree on everything except wall-clock time: the same rows
/// flowed through the same operators on the same simulated nodes.
void ExpectStatsEqual(const ExecStats& a, const ExecStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.bytes_shuffled, b.bytes_shuffled) << label;
  EXPECT_EQ(a.rows_shuffled, b.rows_shuffled) << label;
  EXPECT_EQ(a.exchanges, b.exchanges) << label;
  EXPECT_EQ(a.total_rows_processed, b.total_rows_processed) << label;
  EXPECT_EQ(a.node_rows, b.node_rows) << label;
  ASSERT_EQ(a.operators.size(), b.operators.size()) << label;
  for (size_t i = 0; i < a.operators.size(); ++i) {
    const OperatorStats& oa = a.operators[i];
    const OperatorStats& ob = b.operators[i];
    EXPECT_EQ(oa.op, ob.op) << label << " op " << i;
    EXPECT_EQ(oa.parent, ob.parent) << label << " op " << i;
    EXPECT_EQ(oa.rows_in, ob.rows_in) << label << " op " << oa.op;
    EXPECT_EQ(oa.rows_out, ob.rows_out) << label << " op " << oa.op;
    EXPECT_EQ(oa.rows_processed, ob.rows_processed) << label << " op " << oa.op;
    EXPECT_EQ(oa.rows_shuffled, ob.rows_shuffled) << label << " op " << oa.op;
    EXPECT_EQ(oa.bytes_shuffled, ob.bytes_shuffled) << label << " op " << oa.op;
    EXPECT_EQ(oa.exchanges, ob.exchanges) << label << " op " << oa.op;
    EXPECT_EQ(oa.node_rows, ob.node_rows) << label << " op " << oa.op;
  }
}

class ExecutorParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Scale factor chosen so lineitem partitions span multiple 4096-row
    // morsels: the multi-morsel code paths (bitmap slices, partial-table
    // folds) actually run, rather than degenerating to one morsel each.
    auto db = GenerateTpch({0.01, 42});
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    auto pdb = PartitionDatabase(*db_, MakeTpchSdManual(db_->schema(), 4));
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    pdb_ = pdb->release();
  }

  static void TearDownTestSuite() {
    delete pdb_;
    pdb_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static PartitionedDatabase* pdb_;
};

Database* ExecutorParallelTest::db_ = nullptr;
PartitionedDatabase* ExecutorParallelTest::pdb_ = nullptr;

TEST_F(ExecutorParallelTest, LineitemSpansMultipleMorsels) {
  // Guards the premise of this suite: if data shrinks below one morsel per
  // partition, the bit-identity tests stop exercising parallel folds.
  const PartitionedTable* li = pdb_->GetTable(*db_->schema().FindTable("lineitem"));
  ASSERT_NE(li, nullptr);
  size_t max_rows = 0;
  for (int p = 0; p < li->num_partitions(); ++p) {
    max_rows = std::max(max_rows, li->partition(p).rows.num_rows());
  }
  EXPECT_GT(max_rows, 4096u) << "largest lineitem partition fits one morsel";
}

TEST_F(ExecutorParallelTest, AllTpchQueriesBitIdenticalAcrossThreadCounts) {
  // Now that the exchange operators are parallel counting-sort scatters,
  // every pool width — not just scan/agg fan-out — must reproduce the
  // 1-lane baseline bit for bit, ExecStats included.
  ThreadPool serial(1);
  ThreadPool two(2);
  ThreadPool four(4);
  ThreadPool eight(8);
  std::vector<std::pair<const char*, ThreadPool*>> pools = {
      {"2", &two}, {"4", &four}, {"8", &eight}};
  size_t checked = 0;
  size_t with_shuffle = 0;
  for (const QuerySpec& q : TpchQueries(db_->schema())) {
    auto a = ExecuteQuery(q, *pdb_, {}, {}, &serial);
    ASSERT_TRUE(a.ok()) << q.name << ": " << a.status().ToString();
    for (auto& [width, pool] : pools) {
      auto b = ExecuteQuery(q, *pdb_, {}, {}, pool);
      ASSERT_TRUE(b.ok()) << q.name << ": " << b.status().ToString();
      ExpectBitIdentical(*a, *b, q.name + std::string(" @") + width);
      ExpectStatsEqual(a->stats, b->stats, q.name + std::string(" @") + width);
    }
    if (a->stats.rows_shuffled > 0) ++with_shuffle;
    ++checked;
  }
  EXPECT_GE(checked, 10u);
  // The identity claim must actually cover the parallel exchange path.
  EXPECT_GE(with_shuffle, 3u) << "no query shuffled rows; exchange untested";
}

TEST_F(ExecutorParallelTest, ScanHeavyQueryProducesRowsOnBothPaths) {
  // Q6 is the pure-scan query: selection bitmaps + scalar aggregation.
  ThreadPool serial(1);
  ThreadPool parallel(4);
  for (const QuerySpec& q : TpchQueries(db_->schema())) {
    if (q.name != "Q6") continue;
    auto a = ExecuteQuery(q, *pdb_, {}, {}, &serial);
    auto b = ExecuteQuery(q, *pdb_, {}, {}, &parallel);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->rows.num_rows(), 1u);
    EXPECT_EQ(DoubleBits(a->rows.column(0).GetDouble(0)),
              DoubleBits(b->rows.column(0).GetDouble(0)));
    return;
  }
  FAIL() << "Q6 not found in workload";
}

TEST_F(ExecutorParallelTest, AggregationHeavyQueryGroupOrderIsStable) {
  // Q1 groups lineitem by (returnflag, linestatus): the parallel fold must
  // reproduce the serial first-occurrence group order, not just the group
  // set. Three runs on pools of different widths must agree row for row.
  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool four(4);
  const QuerySpec* q1 = nullptr;
  auto qs = TpchQueries(db_->schema());
  for (const QuerySpec& q : qs) {
    if (q.name == "Q1") q1 = &q;
  }
  ASSERT_NE(q1, nullptr);
  auto a = ExecuteQuery(*q1, *pdb_, {}, {}, &one);
  auto b = ExecuteQuery(*q1, *pdb_, {}, {}, &two);
  auto c = ExecuteQuery(*q1, *pdb_, {}, {}, &four);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_GT(a->rows.num_rows(), 1u);
  ExpectBitIdentical(*a, *b, "Q1 1v2");
  ExpectBitIdentical(*a, *c, "Q1 1v4");
}

}  // namespace
}  // namespace pref
