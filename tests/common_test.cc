// Unit tests for the common runtime: Status/Result, RNG, Zipf, bitmap,
// hashing and the combinatorics used by the Appendix A estimator.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/bitmap.h"
#include "common/hash.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace pref {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad arg: ", 42);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(st.message(), "bad arg: 42");
  EXPECT_EQ(st.ToString(), "Invalid: bad arg: 42");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::KeyError("k");
  Status copy = st;
  EXPECT_TRUE(copy.IsKeyError());
  EXPECT_TRUE(st.IsKeyError());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsKeyError());
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::ExecutionError("x").IsExecutionError());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PREF_ASSIGN_OR_RAISE(int h, Half(x));
  PREF_ASSIGN_OR_RAISE(int q, Half(h));
  return q;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);

  Result<int> err = Half(3);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalid());
}

TEST(ResultTest, AssignOrRaisePropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, UniformSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(42, 42), 42);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(5);
  ZipfGenerator z(100, 0.0);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[z.Next(&rng)]++;
  // Every value in [1,100], roughly uniform (within 3x of expectation).
  for (const auto& [v, c] : counts) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    EXPECT_LT(c, 600);
  }
}

TEST(ZipfTest, SkewConcentratesMass) {
  Rng rng(5);
  ZipfGenerator z(1000, 0.99);
  int head = 0, total = 50000;
  for (int i = 0; i < total; ++i) {
    if (z.Next(&rng) <= 10) head++;
  }
  // With theta=0.99 the top-10 of 1000 values should hold a large share.
  EXPECT_GT(static_cast<double>(head) / total, 0.3);
}

TEST(ZipfTest, DomainRespected) {
  Rng rng(11);
  ZipfGenerator z(7, 0.8);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = z.Next(&rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 7);
  }
}

TEST(BitmapTest, SetGetResize) {
  Bitmap b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(129));
  EXPECT_FALSE(b.Get(1));
  EXPECT_EQ(b.Count(), 3u);
  EXPECT_EQ(b.CountZeros(), 127u);
  b.Set(64, false);
  EXPECT_FALSE(b.Get(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitmapTest, PushBack) {
  Bitmap b;
  for (int i = 0; i < 200; ++i) b.PushBack(i % 3 == 0);
  EXPECT_EQ(b.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(b.Get(static_cast<size_t>(i)), i % 3 == 0);
  EXPECT_EQ(b.Count(), 67u);
}

TEST(BitmapTest, InitialValueTrue) {
  Bitmap b(70, true);
  EXPECT_EQ(b.Count(), 70u);
  EXPECT_EQ(b.CountZeros(), 0u);
}

TEST(HashTest, Int64Avalanche) {
  EXPECT_NE(HashInt64(1), HashInt64(2));
  EXPECT_NE(HashInt64(0), HashInt64(1));
  EXPECT_EQ(HashInt64(77), HashInt64(77));
}

TEST(HashTest, Bytes) {
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(HashTest, BytesTailSensitivity) {
  // The word-at-a-time hash must distinguish strings that differ only in
  // the sub-word tail, at every length mod 8, and must include the length
  // (a prefix never hashes like its extension).
  std::string base = "abcdefghijklmnopqrstuvwxyz01234";
  for (size_t len = 1; len <= base.size(); ++len) {
    std::string a = base.substr(0, len);
    std::string b = a;
    b.back() ^= 1;
    EXPECT_NE(HashBytes(a), HashBytes(b)) << "len " << len;
    EXPECT_NE(HashBytes(a), HashBytes(base.substr(0, len - 1))) << "len " << len;
  }
}

TEST(HashTest, BytesCollisionSmoke) {
  // Hash-quality smoke test: distinct TPC-like strings must be
  // collision-free at this scale (64k keys vs a 64-bit range — any
  // collision indicates a broken mixer, not bad luck), and low 6 bits
  // (join-table home-slot bits at small capacities) must spread evenly.
  std::set<uint64_t> seen;
  std::map<uint64_t, size_t> low_bits;
  const size_t n = 65536;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = HashBytes("customer#" + std::to_string(i));
    seen.insert(h);
    low_bits[h & 63]++;
  }
  EXPECT_EQ(seen.size(), n);
  // Each of the 64 buckets expects n/64 = 1024 keys; allow ±25%.
  ASSERT_EQ(low_bits.size(), 64u);
  for (const auto& [bucket, count] : low_bits) {
    EXPECT_GT(count, 768u) << "bucket " << bucket;
    EXPECT_LT(count, 1280u) << "bucket " << bucket;
  }
}

TEST(MathTest, StirlingSmallValues) {
  StirlingTable t(10);
  // S(3,2) = 3, S(4,2) = 7, S(5,3) = 25
  EXPECT_NEAR(std::exp(t.LogStirling2(3, 2)), 3.0, 1e-9);
  EXPECT_NEAR(std::exp(t.LogStirling2(4, 2)), 7.0, 1e-9);
  EXPECT_NEAR(std::exp(t.LogStirling2(5, 3)), 25.0, 1e-9);
  EXPECT_NEAR(std::exp(t.LogStirling2(5, 5)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(t.LogStirling2(5, 1)), 1.0, 1e-9);
  EXPECT_TRUE(std::isinf(t.LogStirling2(5, 6)));
  EXPECT_TRUE(std::isinf(t.LogStirling2(5, 0)));
}

TEST(MathTest, StirlingRowSumsToBell) {
  StirlingTable t(12);
  for (int n : {5, 8, 12}) {
    double sum = 0;
    for (int k = 1; k <= n; ++k) sum += std::exp(t.LogStirling2(n, k));
    EXPECT_NEAR(sum, BellNumber(n), BellNumber(n) * 1e-9);
  }
}

TEST(MathTest, BellNumbers) {
  EXPECT_DOUBLE_EQ(BellNumber(0), 1.0);
  EXPECT_DOUBLE_EQ(BellNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(BellNumber(2), 2.0);
  EXPECT_DOUBLE_EQ(BellNumber(3), 5.0);
  EXPECT_DOUBLE_EQ(BellNumber(5), 52.0);
  EXPECT_DOUBLE_EQ(BellNumber(10), 115975.0);
}

TEST(MathTest, LogBinomial) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 0)), 1.0, 1e-9);
  EXPECT_TRUE(std::isinf(LogBinomial(3, 5)));
}

}  // namespace
}  // namespace pref
