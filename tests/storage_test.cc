// Unit tests for columnar storage, partitions and the partition index.

#include <gtest/gtest.h>

#include "storage/partition.h"
#include "storage/table.h"

namespace pref {
namespace {

Schema SmallSchema() {
  Schema s;
  EXPECT_TRUE(s.AddTable("t",
                         {{"id", DataType::kInt64},
                          {"score", DataType::kDouble},
                          {"tag", DataType::kString}},
                         {"id"})
                  .ok());
  return s;
}

TEST(ColumnTest, TypedAppendAndGet) {
  Column c(DataType::kInt64);
  c.AppendInt64(7);
  c.AppendInt64(-3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetInt64(0), 7);
  EXPECT_EQ(c.GetInt64(1), -3);
  EXPECT_EQ(c.GetValue(1), Value(int64_t{-3}));
}

TEST(ColumnTest, DateSharesIntRepresentation) {
  Column c(DataType::kDate);
  c.AppendInt64(19000);
  EXPECT_TRUE(c.is_int());
  EXPECT_EQ(c.GetInt64(0), 19000);
}

TEST(ColumnTest, AppendValueTypeChecked) {
  Column c(DataType::kDouble);
  EXPECT_TRUE(c.AppendValue(Value(1.5)).ok());
  EXPECT_FALSE(c.AppendValue(Value(int64_t{1})).ok());
  EXPECT_FALSE(c.AppendValue(Value(std::string("x"))).ok());
  EXPECT_EQ(c.size(), 1u);
}

TEST(ColumnTest, HashAndEqualAt) {
  Column a(DataType::kString), b(DataType::kString);
  a.AppendString("foo");
  b.AppendString("foo");
  b.AppendString("bar");
  EXPECT_EQ(a.HashAt(0), b.HashAt(0));
  EXPECT_TRUE(a.EqualAt(0, b, 0));
  EXPECT_FALSE(a.EqualAt(0, b, 1));
}

TEST(ColumnTest, ByteSize) {
  Column i(DataType::kInt64);
  i.AppendInt64(1);
  i.AppendInt64(2);
  EXPECT_EQ(i.ByteSize(), 16u);
  EXPECT_EQ(i.RowByteSize(0), 8u);
  Column s(DataType::kString);
  s.AppendString("abcd");
  EXPECT_EQ(s.RowByteSize(0), 4u + sizeof(size_t));
}

TEST(RowBlockTest, AppendAndFetchRows) {
  Schema schema = SmallSchema();
  const TableDef& def = schema.table(0);
  RowBlock block(&def);
  ASSERT_TRUE(
      block.AppendRowValues({Value(int64_t{1}), Value(2.5), Value(std::string("a"))})
          .ok());
  ASSERT_TRUE(
      block.AppendRowValues({Value(int64_t{2}), Value(5.0), Value(std::string("b"))})
          .ok());
  EXPECT_EQ(block.num_rows(), 2u);
  auto row = block.GetRow(1);
  EXPECT_EQ(row[0], Value(int64_t{2}));
  EXPECT_EQ(row[2], Value(std::string("b")));
}

TEST(RowBlockTest, ArityAndTypeErrors) {
  Schema schema = SmallSchema();
  RowBlock block(&schema.table(0));
  EXPECT_FALSE(block.AppendRowValues({Value(int64_t{1})}).ok());
  EXPECT_FALSE(block
                   .AppendRowValues({Value(1.0), Value(2.5), Value(std::string("a"))})
                   .ok());
}

TEST(RowBlockTest, AppendRowCopiesBetweenBlocks) {
  Schema schema = SmallSchema();
  RowBlock a(&schema.table(0)), b(&schema.table(0));
  ASSERT_TRUE(
      a.AppendRowValues({Value(int64_t{9}), Value(1.0), Value(std::string("z"))}).ok());
  b.AppendRow(a, 0);
  EXPECT_EQ(b.num_rows(), 1u);
  EXPECT_EQ(b.GetRow(0), a.GetRow(0));
}

TEST(RowBlockTest, HashRowAndRowsEqual) {
  Schema schema = SmallSchema();
  RowBlock a(&schema.table(0));
  ASSERT_TRUE(
      a.AppendRowValues({Value(int64_t{1}), Value(1.0), Value(std::string("x"))}).ok());
  ASSERT_TRUE(
      a.AppendRowValues({Value(int64_t{1}), Value(2.0), Value(std::string("y"))}).ok());
  ASSERT_TRUE(
      a.AppendRowValues({Value(int64_t{2}), Value(1.0), Value(std::string("x"))}).ok());
  EXPECT_EQ(a.HashRow({0}, 0), a.HashRow({0}, 1));
  EXPECT_NE(a.HashRow({0}, 0), a.HashRow({0}, 2));
  EXPECT_TRUE(a.RowsEqual({0}, 0, a, {0}, 1));
  EXPECT_FALSE(a.RowsEqual({0}, 0, a, {0}, 2));
  EXPECT_TRUE(a.RowsEqual({1, 2}, 0, a, {1, 2}, 2));
}

TEST(RowBlockTest, SynthesizedSchema) {
  RowBlock block({DataType::kInt64, DataType::kInt64});
  EXPECT_EQ(block.num_columns(), 2);
  EXPECT_EQ(block.def(), nullptr);
}

TEST(DatabaseTest, TablesMatchSchema) {
  Database db(SmallSchema());
  EXPECT_EQ(db.num_tables(), 1);
  auto t = db.FindTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "t");
  EXPECT_FALSE(db.FindTable("nope").ok());
  EXPECT_EQ(db.TotalRows(), 0u);
}

TEST(PartitionIndexTest, AddAndLookup) {
  PartitionIndex idx;
  PartitionIndex::Key k1{Value(int64_t{1})}, k2{Value(int64_t{2})};
  idx.Add(k1, 0);
  idx.Add(k1, 2);
  idx.Add(k1, 0);  // idempotent
  idx.Add(k2, 1);
  EXPECT_EQ(idx.Lookup(k1), (std::vector<int>{0, 2}));
  EXPECT_EQ(idx.Lookup(k2), (std::vector<int>{1}));
  EXPECT_TRUE(idx.Lookup({Value(int64_t{3})}).empty());
  EXPECT_EQ(idx.num_keys(), 2u);
}

TEST(PartitionIndexTest, CompositeKeys) {
  PartitionIndex idx;
  PartitionIndex::Key k{Value(int64_t{1}), Value(std::string("a"))};
  PartitionIndex::Key other{Value(int64_t{1}), Value(std::string("b"))};
  idx.Add(k, 3);
  EXPECT_EQ(idx.Lookup(k).size(), 1u);
  EXPECT_TRUE(idx.Lookup(other).empty());
}

TEST(PartitionedTableTest, RowAccounting) {
  Schema schema = SmallSchema();
  PartitionedTable pt(&schema.table(0), PartitionSpec::Hash({0}, 3));
  EXPECT_EQ(pt.num_partitions(), 3);
  ASSERT_TRUE(pt.partition(0)
                  .rows
                  .AppendRowValues(
                      {Value(int64_t{1}), Value(1.0), Value(std::string("a"))})
                  .ok());
  ASSERT_TRUE(pt.partition(1)
                  .rows
                  .AppendRowValues(
                      {Value(int64_t{2}), Value(2.0), Value(std::string("b"))})
                  .ok());
  EXPECT_EQ(pt.TotalRows(), 2u);
  EXPECT_EQ(pt.DistinctRows(), 2u);  // no dup bitmap -> all distinct
}

TEST(PartitionedTableTest, DupBitmapAffectsDistinctCount) {
  Schema schema = SmallSchema();
  PartitionedTable pt(&schema.table(0), PartitionSpec::Hash({0}, 2));
  auto& p0 = pt.partition(0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(p0.rows
                    .AppendRowValues(
                        {Value(int64_t{i}), Value(0.0), Value(std::string("x"))})
                    .ok());
  }
  p0.dup.PushBack(false);
  p0.dup.PushBack(true);
  p0.dup.PushBack(true);
  EXPECT_EQ(pt.TotalRows(), 3u);
  EXPECT_EQ(pt.DistinctRows(), 1u);
}

TEST(PartitionedTableTest, PartitionIndexRegistry) {
  Schema schema = SmallSchema();
  PartitionedTable pt(&schema.table(0), PartitionSpec::Hash({0}, 2));
  EXPECT_EQ(pt.FindPartitionIndex({0}), nullptr);
  PartitionIndex* idx = pt.AddPartitionIndex({0});
  idx->Add({Value(int64_t{5})}, 1);
  const PartitionIndex* found = pt.FindPartitionIndex({0});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->Lookup({Value(int64_t{5})}).size(), 1u);
  EXPECT_EQ(pt.FindPartitionIndex({0, 1}), nullptr);
}

TEST(PartitionedDatabaseTest, AddFindAndRedundancy) {
  Database db(SmallSchema());
  Table* t = *db.FindTable("t");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t->data()
                    .AppendRowValues(
                        {Value(int64_t{i}), Value(0.5), Value(std::string("s"))})
                    .ok());
  }
  PartitionedDatabase pdb(&db);
  auto pt = pdb.AddTable(0, PartitionSpec::Hash({0}, 2));
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(pdb.AddTable(0, PartitionSpec::Hash({0}, 2)).status().IsAlreadyExists());

  // Copy all 4 rows into partition 0 and 2 of them again into partition 1:
  // |D^P| = 6, |D| = 4 -> DR = 0.5.
  for (int i = 0; i < 4; ++i) (*pt)->partition(0).rows.AppendRow(t->data(), i);
  for (int i = 0; i < 2; ++i) (*pt)->partition(1).rows.AppendRow(t->data(), i);
  EXPECT_EQ(pdb.TotalRows(), 6u);
  EXPECT_DOUBLE_EQ(pdb.DataRedundancy(), 0.5);

  EXPECT_TRUE(pdb.FindTable("t").ok());
  EXPECT_FALSE(pdb.FindTable("nope").ok());
}

TEST(PartitionedTableTest, ReplicatedDistinctRows) {
  Schema schema = SmallSchema();
  PartitionedTable pt(&schema.table(0), PartitionSpec::Replicated(3));
  for (int part = 0; part < 3; ++part) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(pt.partition(part)
                      .rows
                      .AppendRowValues(
                          {Value(int64_t{i}), Value(0.0), Value(std::string("r"))})
                      .ok());
    }
  }
  EXPECT_EQ(pt.TotalRows(), 15u);
  EXPECT_EQ(pt.DistinctRows(), 5u);
}

TEST(PartitionSpecTest, ToStringDescribesScheme) {
  Schema schema = SmallSchema();
  PartitionSpec h = PartitionSpec::Hash({0}, 4);
  EXPECT_EQ(h.ToString(schema, 0), "HASH BY (id) x4");
  PartitionSpec r = PartitionSpec::Replicated(2);
  EXPECT_EQ(r.ToString(schema, 0), "REPLICATED x2");
}

}  // namespace
}  // namespace pref
