// Tests for §2.3 updates and deletes over partitioned tables.

#include <gtest/gtest.h>

#include "datagen/tpch_gen.h"
#include "engine/executor.h"
#include "engine/mutation.h"
#include "partition/partitioner.h"
#include "test_util.h"

namespace pref {
namespace {

class MutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = GenerateTpch({0.002, 42});
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    config_ = std::make_unique<PartitioningConfig>(
        MakeTpchSdManual(db_->schema(), 5));
    auto pdb = PartitionDatabase(*db_, *config_);
    ASSERT_TRUE(pdb.ok());
    pdb_ = std::move(*pdb);
  }

  int64_t CountRows(const std::string& table) {
    auto q = QueryBuilder(&db_->schema(), "count")
                 .From(table)
                 .Agg(AggFunc::kCountStar, "", "cnt")
                 .Build();
    auto r = ExecuteQuery(*q, *pdb_);
    EXPECT_TRUE(r.ok());
    return r->rows.column(0).GetInt64(0);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<PartitioningConfig> config_;
  std::unique_ptr<PartitionedDatabase> pdb_;
};

TEST_F(MutationTest, DeleteRemovesAllCopies) {
  Mutator mutator(config_.get());
  int64_t before = CountRows("customer");
  // Customers in the BUILDING segment disappear from every partition.
  auto stats = mutator.Delete(pdb_.get(), "customer",
                              Dnf::And({Eq("c_mktsegment",
                                           Value(std::string("BUILDING")))}));
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->tuples_affected, 0u);
  EXPECT_GE(stats->copies_affected, stats->tuples_affected);
  EXPECT_EQ(CountRows("customer"),
            before - static_cast<int64_t>(stats->tuples_affected));
  // No copy of a BUILDING customer survives anywhere.
  const PartitionedTable* c = pdb_->GetTable(*db_->schema().FindTable("customer"));
  const TableDef& def = c->def();
  ColumnId seg = *def.FindColumn("c_mktsegment");
  for (int p = 0; p < c->num_partitions(); ++p) {
    const RowBlock& rows = c->partition(p).rows;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      EXPECT_NE(rows.column(seg).GetString(r), "BUILDING");
    }
    // Bitmap lengths stay consistent after compaction.
    EXPECT_EQ(c->partition(p).dup.size(), rows.num_rows());
    EXPECT_EQ(c->partition(p).has_partner.size(), rows.num_rows());
  }
}

TEST_F(MutationTest, DeleteOnReplicatedTableCountsTuplesOnce) {
  Mutator mutator(config_.get());
  auto stats = mutator.Delete(pdb_.get(), "nation",
                              Dnf::And({Eq("n_nationkey", Value(int64_t{3}))}));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tuples_affected, 1u);
  EXPECT_EQ(stats->copies_affected, 5u);  // one per node
}

TEST_F(MutationTest, DeleteKeepsQueriesConsistent) {
  Mutator mutator(config_.get());
  // Delete all orders above a price; a downstream join must agree with a
  // fresh partitioning of the mutated base data.
  ASSERT_TRUE(mutator.Delete(pdb_.get(), "orders",
                             Dnf::And({Gt("o_totalprice", Value(3000.0))}))
                  .ok());
  auto q = QueryBuilder(&db_->schema(), "join")
               .From("orders")
               .Join("customer", "o_custkey", "c_custkey")
               .Agg(AggFunc::kCountStar, "", "cnt")
               .Build();
  auto r = ExecuteQuery(*q, *pdb_);
  ASSERT_TRUE(r.ok());
  // Reference: count qualifying orders in the base data (every order joins
  // exactly one customer).
  const RowBlock& orders = (*db_->FindTable("orders"))->data();
  ColumnId price = *db_->schema().table(*db_->schema().FindTable("orders"))
                        .FindColumn("o_totalprice");
  int64_t expected = 0;
  for (size_t i = 0; i < orders.num_rows(); ++i) {
    if (orders.column(price).GetDouble(i) <= 3000.0) expected++;
  }
  EXPECT_EQ(r->rows.column(0).GetInt64(0), expected);
}

TEST_F(MutationTest, DeleteMaintainsPartitionIndexes) {
  // orders carries a partition index (built for customer's PREF routing);
  // after deleting an order key, the index must not route to it anymore.
  Mutator mutator(config_.get());
  PartitionedTable* o = pdb_->GetTable(*db_->schema().FindTable("orders"));
  ASSERT_FALSE(o->indexes().empty());
  const auto& cols = o->indexes()[0].first;
  // Pick an existing key.
  PartitionIndex::Key key;
  for (ColumnId c : cols) key.push_back(o->partition(0).rows.column(c).GetValue(0));
  ASSERT_FALSE(o->indexes()[0].second->Lookup(key).empty());
  // Delete by that column value (single-column index on o_custkey).
  ASSERT_EQ(cols.size(), 1u);
  const std::string col_name = o->def().column(cols[0]).name;
  ASSERT_TRUE(
      mutator.Delete(pdb_.get(), "orders", Dnf::And({Eq(col_name, key[0])})).ok());
  EXPECT_TRUE(o->indexes()[0].second->Lookup(key).empty());
}

TEST_F(MutationTest, UpdatePayloadColumnEverywhere) {
  Mutator mutator(config_.get());
  auto stats =
      mutator.Update(pdb_.get(), "customer", "c_acctbal", Value(0.0),
                     Dnf::And({Eq("c_mktsegment", Value(std::string("MACHINERY")))}));
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->tuples_affected, 0u);
  const PartitionedTable* c = pdb_->GetTable(*db_->schema().FindTable("customer"));
  ColumnId seg = *c->def().FindColumn("c_mktsegment");
  ColumnId bal = *c->def().FindColumn("c_acctbal");
  for (int p = 0; p < c->num_partitions(); ++p) {
    const RowBlock& rows = c->partition(p).rows;
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      if (rows.column(seg).GetString(r) == "MACHINERY") {
        EXPECT_DOUBLE_EQ(rows.column(bal).GetDouble(r), 0.0);
      }
    }
  }
}

TEST_F(MutationTest, UpdateOnPredicateColumnRejected) {
  Mutator mutator(config_.get());
  // c_custkey is customer's partitioning-predicate column.
  EXPECT_TRUE(mutator
                  .Update(pdb_.get(), "customer", "c_custkey", Value(int64_t{1}),
                          Dnf::And({Eq("c_name", Value(std::string("x")))}))
                  .status()
                  .IsInvalid());
  // o_custkey is referenced by customer's PREF predicate.
  EXPECT_TRUE(mutator
                  .Update(pdb_.get(), "orders", "o_custkey", Value(int64_t{1}),
                          Dnf())
                  .status()
                  .IsInvalid());
  // l_orderkey is lineitem's hash attribute.
  EXPECT_TRUE(mutator
                  .Update(pdb_.get(), "lineitem", "l_orderkey", Value(int64_t{1}),
                          Dnf())
                  .status()
                  .IsInvalid());
  // Payload updates on the same tables are fine.
  EXPECT_TRUE(mutator
                  .Update(pdb_.get(), "orders", "o_totalprice", Value(1.0),
                          Dnf::And({Eq("o_orderkey", Value(int64_t{1}))}))
                  .ok());
}

TEST_F(MutationTest, TypeMismatchRejected) {
  Mutator mutator(config_.get());
  EXPECT_FALSE(mutator
                   .Update(pdb_.get(), "customer", "c_acctbal",
                           Value(std::string("oops")), Dnf())
                   .ok());
}

TEST_F(MutationTest, UnknownTableOrColumn) {
  Mutator mutator(config_.get());
  EXPECT_FALSE(mutator.Delete(pdb_.get(), "nope", Dnf()).ok());
  EXPECT_FALSE(mutator
                   .Update(pdb_.get(), "customer", "no_col", Value(0.0), Dnf())
                   .ok());
}

}  // namespace
}  // namespace pref
