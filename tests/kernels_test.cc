// Unit tests for the vectorized execution kernels (DESIGN.md §8): the
// column/row-block gather kernels, the batch hash/byte-size kernels, the
// flat open-addressing join hash table, and the counting-sort ScatterPlan
// the exchange operators are built on.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "engine/exchange_kernels.h"
#include "engine/join_hash_table.h"
#include "storage/table.h"

namespace pref {
namespace {

RowBlock MakeBlock(size_t rows) {
  RowBlock block(
      std::vector<DataType>{DataType::kInt64, DataType::kDouble, DataType::kString});
  for (size_t r = 0; r < rows; ++r) {
    block.column(0).AppendInt64(static_cast<int64_t>(r * 7 % 13));
    block.column(1).AppendDouble(static_cast<double>(r) * 0.5 - 3.25);
    block.column(2).AppendString("row-" + std::to_string(r % 5));
  }
  return block;
}

TEST(AppendGatherTest, MatchesRowAtATimeAppend) {
  RowBlock src = MakeBlock(100);
  std::vector<uint32_t> sel = {0, 99, 17, 17, 42, 3};

  RowBlock gathered(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                          DataType::kString});
  gathered.AppendGather(src, sel);

  RowBlock expected(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                          DataType::kString});
  for (uint32_t r : sel) expected.AppendRow(src, r);

  ASSERT_EQ(gathered.num_rows(), sel.size());
  for (size_t r = 0; r < sel.size(); ++r) {
    EXPECT_EQ(gathered.column(0).GetInt64(r), expected.column(0).GetInt64(r));
    EXPECT_EQ(gathered.column(1).GetDouble(r), expected.column(1).GetDouble(r));
    EXPECT_EQ(gathered.column(2).GetString(r), expected.column(2).GetString(r));
  }
}

TEST(AppendGatherTest, EmptySelectionAppendsNothing) {
  RowBlock src = MakeBlock(10);
  RowBlock dst(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                     DataType::kString});
  dst.AppendGather(src, {});
  EXPECT_EQ(dst.num_rows(), 0u);
}

TEST(AppendGatherTest, AppendsAfterExistingRows) {
  RowBlock src = MakeBlock(10);
  Column dst(DataType::kInt64);
  dst.AppendInt64(-1);
  std::vector<uint32_t> sel = {4, 2};
  dst.AppendGather(src.column(0), sel);
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.GetInt64(0), -1);
  EXPECT_EQ(dst.GetInt64(1), src.column(0).GetInt64(4));
  EXPECT_EQ(dst.GetInt64(2), src.column(0).GetInt64(2));
}

TEST(AppendBlockTest, EqualsGatherWithIdentitySelection) {
  RowBlock src = MakeBlock(25);
  RowBlock a(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                   DataType::kString});
  RowBlock b = a;
  a.AppendBlock(src);
  std::vector<uint32_t> iota(src.num_rows());
  for (size_t i = 0; i < iota.size(); ++i) iota[i] = static_cast<uint32_t>(i);
  b.AppendGather(src, iota);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.column(0).GetInt64(r), b.column(0).GetInt64(r));
    EXPECT_EQ(a.column(2).GetString(r), b.column(2).GetString(r));
  }
}

TEST(BatchHashTest, MatchesRowAtATimeHashRow) {
  RowBlock src = MakeBlock(300);
  const std::vector<ColumnId> cols = {0, 2};
  std::vector<uint64_t> batch(src.num_rows());
  src.HashRows(cols, batch);
  for (size_t r = 0; r < src.num_rows(); ++r) {
    EXPECT_EQ(batch[r], src.HashRow(cols, r)) << "row " << r;
  }
}

TEST(BatchHashTest, SubrangeUsesBeginOffset) {
  RowBlock src = MakeBlock(64);
  const std::vector<ColumnId> cols = {1};
  std::vector<uint64_t> batch(10);
  src.HashRows(cols, batch, /*begin=*/20);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i], src.HashRow(cols, 20 + i));
  }
}

TEST(BatchByteSizeTest, MatchesRowAtATimeRowByteSize) {
  RowBlock src = MakeBlock(50);
  std::vector<size_t> sizes(src.num_rows());
  src.RowByteSizes(sizes);
  size_t total = 0;
  for (size_t r = 0; r < src.num_rows(); ++r) {
    EXPECT_EQ(sizes[r], src.RowByteSize(r)) << "row " << r;
    total += sizes[r];
  }
  // The whole-block sum equals ByteSize — the identity ExecGather's
  // shuffle-byte accounting relies on.
  EXPECT_EQ(total, src.ByteSize());
}

TEST(JoinHashTableTest, FindsAllDuplicateKeysInAscendingOrder) {
  // Rows 1, 3, 5 share a hash; 0, 2, 4 are singletons.
  std::vector<uint64_t> hashes = {11, 77, 22, 77, 33, 77};
  JoinHashTable table(hashes);
  std::vector<uint32_t> matches;
  table.ForEachMatch(77, [&](uint32_t r) { matches.push_back(r); });
  EXPECT_EQ(matches, (std::vector<uint32_t>{1, 3, 5}));
  matches.clear();
  table.ForEachMatch(22, [&](uint32_t r) { matches.push_back(r); });
  EXPECT_EQ(matches, (std::vector<uint32_t>{2}));
}

TEST(JoinHashTableTest, MissingHashYieldsNoMatches) {
  std::vector<uint64_t> hashes = {1, 2, 3};
  JoinHashTable table(hashes);
  int count = 0;
  table.ForEachMatch(99, [&](uint32_t) { count++; });
  EXPECT_EQ(count, 0);
}

TEST(JoinHashTableTest, EmptyBuildSideProbesCleanly) {
  JoinHashTable table(std::span<const uint64_t>{});
  int count = 0;
  table.ForEachMatch(0, [&](uint32_t) { count++; });
  table.ForEachMatch(12345, [&](uint32_t) { count++; });
  EXPECT_EQ(count, 0);
  EXPECT_GE(table.capacity(), 1u);
}

TEST(JoinHashTableTest, CollidingHomeSlotsStillResolve) {
  // Force probe-chain collisions: hashes that agree modulo every
  // power-of-two capacity but differ as keys.
  const size_t n = 64;
  std::vector<uint64_t> hashes(n);
  for (size_t i = 0; i < n; ++i) hashes[i] = i << 32;  // all home to slot 0
  JoinHashTable table(hashes);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> matches;
    table.ForEachMatch(hashes[i], [&](uint32_t r) { matches.push_back(r); });
    ASSERT_EQ(matches.size(), 1u) << "hash " << i;
    EXPECT_EQ(matches[0], static_cast<uint32_t>(i));
  }
}

TEST(JoinHashTableTest, ManyDuplicatesOfOneKey) {
  std::vector<uint64_t> hashes(1000, 42);
  JoinHashTable table(hashes);
  std::vector<uint32_t> matches;
  table.ForEachMatch(42, [&](uint32_t r) { matches.push_back(r); });
  ASSERT_EQ(matches.size(), 1000u);
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i], static_cast<uint32_t>(i));
  }
}

TEST(ExclusiveSumTest, BasicAndEmpty) {
  std::vector<size_t> v = {3, 0, 2, 5};
  EXPECT_EQ(ExclusiveSum(v), (std::vector<size_t>{0, 3, 3, 5, 10}));
  EXPECT_EQ(ExclusiveSum(std::vector<size_t>{}), (std::vector<size_t>{0}));
}

TEST(ScatterPlanTest, GroupsRowsByTargetInRowOrder) {
  std::vector<uint32_t> targets = {2, 0, 2, 1, 0, 2};
  ScatterPlan plan = BuildScatterPlan(targets, 3);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.CountFor(0), 2u);
  EXPECT_EQ(plan.CountFor(1), 1u);
  EXPECT_EQ(plan.CountFor(2), 3u);
  auto s0 = plan.SliceFor(0);
  EXPECT_EQ(std::vector<uint32_t>(s0.begin(), s0.end()),
            (std::vector<uint32_t>{1, 4}));
  auto s1 = plan.SliceFor(1);
  EXPECT_EQ(std::vector<uint32_t>(s1.begin(), s1.end()),
            (std::vector<uint32_t>{3}));
  auto s2 = plan.SliceFor(2);
  EXPECT_EQ(std::vector<uint32_t>(s2.begin(), s2.end()),
            (std::vector<uint32_t>{0, 2, 5}));
}

TEST(ScatterPlanTest, SingleTargetDegenerates) {
  // The n_ = 1 cluster: every row routes to target 0 and the plan is the
  // identity permutation.
  std::vector<uint32_t> targets(17, 0);
  ScatterPlan plan = BuildScatterPlan(targets, 1);
  EXPECT_EQ(plan.CountFor(0), 17u);
  auto s = plan.SliceFor(0);
  for (size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], static_cast<uint32_t>(i));
}

TEST(ScatterPlanTest, EmptySourceHasZeroCounts) {
  ScatterPlan plan = BuildScatterPlan({}, 4);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(plan.CountFor(t), 0u);
    EXPECT_TRUE(plan.SliceFor(t).empty());
  }
  // A default-constructed plan (the executor's "source never ran" state)
  // reports zero counts as well.
  ScatterPlan unbuilt;
  EXPECT_TRUE(unbuilt.empty());
  EXPECT_EQ(unbuilt.CountFor(0), 0u);
}

TEST(ScatterPlanTest, ScatterThenGatherReproducesSerialAppendOrder) {
  // End-to-end shape of ExecRepartition: scatter a block by target, gather
  // per target in row order, compare against the serial row loop.
  RowBlock src = MakeBlock(200);
  const int n = 4;
  std::vector<uint64_t> hashes(src.num_rows());
  src.HashRows({0, 2}, hashes);
  std::vector<uint32_t> targets(src.num_rows());
  for (size_t r = 0; r < targets.size(); ++r) {
    targets[r] = static_cast<uint32_t>(hashes[r] % n);
  }
  ScatterPlan plan = BuildScatterPlan(targets, n);

  for (int t = 0; t < n; ++t) {
    RowBlock kernel(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                          DataType::kString});
    kernel.AppendGather(src, plan.SliceFor(t));
    RowBlock serial = kernel;  // copy types, then rebuild row-at-a-time
    serial = RowBlock(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                            DataType::kString});
    for (size_t r = 0; r < src.num_rows(); ++r) {
      if (targets[r] == static_cast<uint32_t>(t)) serial.AppendRow(src, r);
    }
    ASSERT_EQ(kernel.num_rows(), serial.num_rows()) << "target " << t;
    for (size_t r = 0; r < kernel.num_rows(); ++r) {
      EXPECT_EQ(kernel.column(0).GetInt64(r), serial.column(0).GetInt64(r));
      EXPECT_EQ(kernel.column(2).GetString(r), serial.column(2).GetString(r));
    }
  }
}

}  // namespace
}  // namespace pref
