// Unit tests for the vectorized execution kernels (DESIGN.md §8, §13): the
// column/row-block gather kernels, the batch hash/byte-size kernels, the
// SIMD kernel layer (prefix sum, batch hash combine, selection compaction)
// at every dispatch level, the batch-chain join hash table, and the
// counting-sort ScatterPlan the exchange operators are built on.
//
// Every SIMD kernel is pinned bit-identical to its scalar form over
// unaligned lengths (0, 1, lane-1, lane, lane+1, large) at every level the
// host CPU supports; CI additionally reruns the suite with
// PREF_FORCE_SCALAR=1 and under TSan/ASan/UBSan.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "engine/exchange_kernels.h"
#include "engine/join_hash_table.h"
#include "storage/table.h"

namespace pref {
namespace {

RowBlock MakeBlock(size_t rows) {
  RowBlock block(
      std::vector<DataType>{DataType::kInt64, DataType::kDouble, DataType::kString});
  for (size_t r = 0; r < rows; ++r) {
    block.column(0).AppendInt64(static_cast<int64_t>(r * 7 % 13));
    block.column(1).AppendDouble(static_cast<double>(r) * 0.5 - 3.25);
    block.column(2).AppendString("row-" + std::to_string(r % 5));
  }
  return block;
}

/// Deterministic pseudo-random 64-bit stream (splitmix64) for kernel inputs.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Every dispatch level the host CPU can actually run (kScalar always).
std::vector<simd::Level> SupportedLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  const simd::Level detected = simd::DetectLevel();
  if (detected >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  if (detected >= simd::Level::kAvx512) levels.push_back(simd::Level::kAvx512);
  return levels;
}

/// Unaligned lengths around both vector widths (8/16 u32 lanes, 4/8 u64
/// lanes, 16/32 bitmap bytes) plus large odd sizes.
const std::vector<size_t> kKernelLengths = {0,  1,  3,  4,  5,   7,   8,    9,
                                            15, 16, 17, 31, 32,  33,  100,  1000,
                                            4096, 4097};

TEST(AppendGatherTest, MatchesRowAtATimeAppend) {
  RowBlock src = MakeBlock(100);
  std::vector<uint32_t> sel = {0, 99, 17, 17, 42, 3};

  RowBlock gathered(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                          DataType::kString});
  gathered.AppendGather(src, sel);

  RowBlock expected(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                          DataType::kString});
  for (uint32_t r : sel) expected.AppendRow(src, r);

  ASSERT_EQ(gathered.num_rows(), sel.size());
  for (size_t r = 0; r < sel.size(); ++r) {
    EXPECT_EQ(gathered.column(0).GetInt64(r), expected.column(0).GetInt64(r));
    EXPECT_EQ(gathered.column(1).GetDouble(r), expected.column(1).GetDouble(r));
    EXPECT_EQ(gathered.column(2).GetString(r), expected.column(2).GetString(r));
  }
}

TEST(AppendGatherTest, EmptySelectionAppendsNothing) {
  RowBlock src = MakeBlock(10);
  RowBlock dst(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                     DataType::kString});
  dst.AppendGather(src, {});
  EXPECT_EQ(dst.num_rows(), 0u);
}

TEST(AppendGatherTest, AppendsAfterExistingRows) {
  RowBlock src = MakeBlock(10);
  Column dst(DataType::kInt64);
  dst.AppendInt64(-1);
  std::vector<uint32_t> sel = {4, 2};
  dst.AppendGather(src.column(0), sel);
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.GetInt64(0), -1);
  EXPECT_EQ(dst.GetInt64(1), src.column(0).GetInt64(4));
  EXPECT_EQ(dst.GetInt64(2), src.column(0).GetInt64(2));
}

TEST(AppendBlockTest, EqualsGatherWithIdentitySelection) {
  RowBlock src = MakeBlock(25);
  RowBlock a(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                   DataType::kString});
  RowBlock b = a;
  a.AppendBlock(src);
  std::vector<uint32_t> iota(src.num_rows());
  for (size_t i = 0; i < iota.size(); ++i) iota[i] = static_cast<uint32_t>(i);
  b.AppendGather(src, iota);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.column(0).GetInt64(r), b.column(0).GetInt64(r));
    EXPECT_EQ(a.column(2).GetString(r), b.column(2).GetString(r));
  }
}

TEST(BatchHashTest, MatchesRowAtATimeHashRow) {
  RowBlock src = MakeBlock(300);
  const std::vector<ColumnId> cols = {0, 2};
  std::vector<uint64_t> batch(src.num_rows());
  src.HashRows(cols, batch);
  for (size_t r = 0; r < src.num_rows(); ++r) {
    EXPECT_EQ(batch[r], src.HashRow(cols, r)) << "row " << r;
  }
}

TEST(BatchHashTest, SubrangeUsesBeginOffset) {
  RowBlock src = MakeBlock(64);
  const std::vector<ColumnId> cols = {1};
  std::vector<uint64_t> batch(10);
  src.HashRows(cols, batch, /*begin=*/20);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i], src.HashRow(cols, 20 + i));
  }
}

TEST(BatchByteSizeTest, MatchesRowAtATimeRowByteSize) {
  RowBlock src = MakeBlock(50);
  std::vector<size_t> sizes(src.num_rows());
  src.RowByteSizes(sizes);
  size_t total = 0;
  for (size_t r = 0; r < src.num_rows(); ++r) {
    EXPECT_EQ(sizes[r], src.RowByteSize(r)) << "row " << r;
    total += sizes[r];
  }
  // The whole-block sum equals ByteSize — the identity ExecGather's
  // shuffle-byte accounting relies on.
  EXPECT_EQ(total, src.ByteSize());
}

// --- SIMD kernel layer: every level bit-identical to scalar ---------------

TEST(SimdLevelTest, DetectAndOverride) {
  const simd::Level detected = simd::DetectLevel();
  EXPECT_EQ(simd::ActiveLevel(), detected);
  simd::SetActiveLevelForTest(simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  // The override clamps to what the CPU supports, so restoring via the
  // detected level always round-trips.
  simd::SetActiveLevelForTest(detected);
  EXPECT_EQ(simd::ActiveLevel(), detected);
}

TEST(SimdExclusiveSumTest, AllLevelsMatchScalarAtUnalignedLengths) {
  uint64_t rng = 7;
  for (size_t n : kKernelLengths) {
    std::vector<uint32_t> v(n);
    for (auto& x : v) x = static_cast<uint32_t>(NextRand(&rng));
    std::vector<uint32_t> ref(n + 1);
    simd::ExclusiveSumScalar(v.data(), n, ref.data());
    for (simd::Level level : SupportedLevels()) {
      std::vector<uint32_t> out(n + 1, 0xdeadbeef);
      simd::ExclusiveSum(v.data(), n, out.data(), level);
      EXPECT_EQ(out, ref) << "n=" << n << " level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdExclusiveSumTest, BasicValues) {
  const std::vector<uint32_t> v = {3, 0, 2, 5};
  std::vector<uint32_t> out(v.size() + 1);
  for (simd::Level level : SupportedLevels()) {
    simd::ExclusiveSum(v.data(), v.size(), out.data(), level);
    EXPECT_EQ(out, (std::vector<uint32_t>{0, 3, 3, 5, 10}))
        << simd::LevelName(level);
  }
}

TEST(SimdHashCombineTest, Int64AllLevelsMatchScalar) {
  uint64_t rng = 99;
  for (size_t n : kKernelLengths) {
    std::vector<int64_t> keys(n);
    for (auto& k : keys) k = static_cast<int64_t>(NextRand(&rng));
    std::vector<uint64_t> seed(n);
    for (auto& a : seed) a = NextRand(&rng);
    std::vector<uint64_t> ref = seed;
    simd::HashCombineInt64Scalar(keys.data(), n, ref.data());
    for (simd::Level level : SupportedLevels()) {
      std::vector<uint64_t> acc = seed;
      simd::HashCombineInt64(keys.data(), n, acc.data(), level);
      EXPECT_EQ(acc, ref) << "n=" << n << " level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdHashCombineTest, F64AllLevelsMatchScalarIncludingSpecials) {
  uint64_t rng = 1234;
  for (size_t n : kKernelLengths) {
    std::vector<double> keys(n);
    for (size_t i = 0; i < n; ++i) {
      switch (i % 5) {
        case 0: keys[i] = static_cast<double>(NextRand(&rng)) * 1e-3; break;
        case 1: keys[i] = -0.0; break;
        case 2: keys[i] = std::numeric_limits<double>::quiet_NaN(); break;
        case 3: keys[i] = std::numeric_limits<double>::infinity(); break;
        default: keys[i] = -static_cast<double>(NextRand(&rng)); break;
      }
    }
    std::vector<uint64_t> seed(n);
    for (auto& a : seed) a = NextRand(&rng);
    std::vector<uint64_t> ref = seed;
    simd::HashCombineF64(keys.data(), n, ref.data(), simd::Level::kScalar);
    for (simd::Level level : SupportedLevels()) {
      std::vector<uint64_t> acc = seed;
      simd::HashCombineF64(keys.data(), n, acc.data(), level);
      EXPECT_EQ(acc, ref) << "n=" << n << " level=" << simd::LevelName(level);
    }
  }
}

TEST(SimdCompactTest, AllLevelsMatchScalarOverPatterns) {
  uint64_t rng = 5;
  for (size_t n : kKernelLengths) {
    // Dense, empty, and ~1/8-sparse bitmaps.
    std::vector<std::vector<uint8_t>> patterns;
    patterns.emplace_back(n, uint8_t{1});
    patterns.emplace_back(n, uint8_t{0});
    std::vector<uint8_t> sparse(n);
    for (auto& b : sparse) b = (NextRand(&rng) % 8 == 0) ? 1 : 0;
    patterns.push_back(std::move(sparse));
    for (const auto& bitmap : patterns) {
      const uint32_t base = static_cast<uint32_t>(NextRand(&rng) % 1000);
      std::vector<uint32_t> ref(n + 1, 0xdeadbeef);
      const size_t ref_k =
          simd::BitmapToSelectionScalar(bitmap.data(), n, base, ref.data());
      for (simd::Level level : SupportedLevels()) {
        std::vector<uint32_t> out(n + 1, 0xdeadbeef);
        const size_t k =
            simd::BitmapToSelection(bitmap.data(), n, base, out.data(), level);
        ASSERT_EQ(k, ref_k) << "n=" << n << " level=" << simd::LevelName(level);
        for (size_t i = 0; i < k; ++i) {
          ASSERT_EQ(out[i], ref[i])
              << "n=" << n << " i=" << i << " level=" << simd::LevelName(level);
        }
      }
    }
  }
}

TEST(SimdCompactTest, NonzeroBytesAllSelect) {
  // The bitmap contract is 0 = drop, any nonzero byte = keep; all levels
  // must agree on arbitrary byte values, not just 0/1.
  std::vector<uint8_t> bitmap(64);
  for (size_t i = 0; i < bitmap.size(); ++i) {
    bitmap[i] = static_cast<uint8_t>((i * 37) & 0xff);  // 0 only at i = 0
  }
  std::vector<uint32_t> ref(bitmap.size());
  const size_t ref_k =
      simd::BitmapToSelectionScalar(bitmap.data(), bitmap.size(), 0, ref.data());
  for (simd::Level level : SupportedLevels()) {
    std::vector<uint32_t> out(bitmap.size());
    const size_t k =
        simd::BitmapToSelection(bitmap.data(), bitmap.size(), 0, out.data(), level);
    ASSERT_EQ(k, ref_k) << simd::LevelName(level);
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(out[i], ref[i]);
  }
}

// --- Join hash table: batch-chain layout ----------------------------------

TEST(JoinHashTableTest, FindsAllDuplicateKeysInAscendingOrder) {
  // Rows 1, 3, 5 share a hash; 0, 2, 4 are singletons.
  std::vector<uint64_t> hashes = {11, 77, 22, 77, 33, 77};
  JoinHashTable table(hashes);
  std::vector<uint32_t> matches;
  table.ForEachMatch(77, [&](uint32_t r) { matches.push_back(r); });
  EXPECT_EQ(matches, (std::vector<uint32_t>{1, 3, 5}));
  matches.clear();
  table.ForEachMatch(22, [&](uint32_t r) { matches.push_back(r); });
  EXPECT_EQ(matches, (std::vector<uint32_t>{2}));
}

TEST(JoinHashTableTest, ChainsGroupDuplicatesContiguously) {
  std::vector<uint64_t> hashes = {11, 77, 22, 77, 33, 77};
  JoinHashTable table(hashes);
  EXPECT_EQ(table.num_chains(), 4u);  // 11, 77, 22, 33
  int calls = 0;
  table.ForEachChain(77, [&](std::span<const uint32_t> rows) {
    calls++;
    EXPECT_EQ(std::vector<uint32_t>(rows.begin(), rows.end()),
              (std::vector<uint32_t>{1, 3, 5}));
  });
  EXPECT_EQ(calls, 1);  // one chain per distinct hash in hash-only mode
}

TEST(JoinHashTableTest, MissingHashYieldsNoMatches) {
  std::vector<uint64_t> hashes = {1, 2, 3};
  JoinHashTable table(hashes);
  int count = 0;
  table.ForEachMatch(99, [&](uint32_t) { count++; });
  EXPECT_EQ(count, 0);
}

TEST(JoinHashTableTest, EmptyBuildSideProbesCleanly) {
  JoinHashTable table(std::span<const uint64_t>{});
  int count = 0;
  table.ForEachMatch(0, [&](uint32_t) { count++; });
  table.ForEachMatch(12345, [&](uint32_t) { count++; });
  EXPECT_EQ(count, 0);
  EXPECT_GE(table.capacity(), 1u);
  EXPECT_EQ(table.num_chains(), 0u);
}

TEST(JoinHashTableTest, CollidingHomeSlotsStillResolve) {
  // Force probe-chain collisions: hashes that agree modulo every
  // power-of-two capacity but differ as keys.
  const size_t n = 64;
  std::vector<uint64_t> hashes(n);
  for (size_t i = 0; i < n; ++i) hashes[i] = i << 32;  // all home to slot 0
  JoinHashTable table(hashes);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> matches;
    table.ForEachMatch(hashes[i], [&](uint32_t r) { matches.push_back(r); });
    ASSERT_EQ(matches.size(), 1u) << "hash " << i;
    EXPECT_EQ(matches[0], static_cast<uint32_t>(i));
  }
}

TEST(JoinHashTableTest, ManyDuplicatesOfOneKey) {
  std::vector<uint64_t> hashes(1000, 42);
  JoinHashTable table(hashes);
  EXPECT_EQ(table.num_chains(), 1u);
  std::vector<uint32_t> matches;
  table.ForEachMatch(42, [&](uint32_t r) { matches.push_back(r); });
  ASSERT_EQ(matches.size(), 1000u);
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i], static_cast<uint32_t>(i));
  }
}

TEST(JoinHashTableTest, KeyedBuildSplitsCollidingDistinctKeys) {
  // Four distinct int keys forced onto the same hash: the keyed build must
  // give each its own chain, and probes confirm per chain, not per row.
  RowBlock build(std::vector<DataType>{DataType::kInt64});
  for (int i = 0; i < 12; ++i) build.column(0).AppendInt64(i % 4);
  std::vector<uint64_t> hashes(12, 42);
  const std::vector<ColumnId> keys = {0};
  JoinHashTable table(hashes, build, keys);
  EXPECT_EQ(table.num_chains(), 4u);
  // Each chain's rows all carry the chain's key, ascending; the 4 chains
  // cover all 12 rows.
  size_t total = 0;
  table.ForEachChain(42, [&](std::span<const uint32_t> rows) {
    ASSERT_FALSE(rows.empty());
    const int64_t key = build.column(0).GetInt64(rows.front());
    uint32_t prev = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(build.column(0).GetInt64(rows[i]), key);
      if (i > 0) {
        EXPECT_GT(rows[i], prev);
      }
      prev = rows[i];
    }
    total += rows.size();
  });
  EXPECT_EQ(total, 12u);
}

TEST(JoinHashTableTest, KeyedStringBuildAllEqualKeys) {
  // The all-equal worst case: one chain holds every row.
  RowBlock build(std::vector<DataType>{DataType::kString});
  const size_t n = 500;
  for (size_t i = 0; i < n; ++i) build.column(0).AppendString("same-key");
  const std::vector<ColumnId> keys = {0};
  std::vector<uint64_t> hashes(n);
  build.HashRows(keys, hashes);
  JoinHashTable table(hashes, build, keys);
  EXPECT_EQ(table.num_chains(), 1u);
  table.ForEachChain(hashes[0], [&](std::span<const uint32_t> rows) {
    ASSERT_EQ(rows.size(), n);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(rows[i], static_cast<uint32_t>(i));
  });
}

/// The executor's probe loop (ForEachChain + confirm against the chain's
/// first row + reversed emission) against a nested-loop reference that
/// emits matches in descending build-row order — the historical
/// std::unordered_multimap emission order the executor preserves.
void ExpectProbeMatchesReference(const RowBlock& probe, const RowBlock& build,
                                 const std::vector<ColumnId>& ls,
                                 const std::vector<ColumnId>& rs) {
  std::vector<uint64_t> build_hashes(build.num_rows());
  build.HashRows(rs, build_hashes);
  JoinHashTable table(build_hashes, build, rs);
  std::vector<uint64_t> probe_hashes(probe.num_rows());
  probe.HashRows(ls, probe_hashes);

  std::vector<std::pair<uint32_t, uint32_t>> got, want;
  std::vector<uint32_t> match_buf;
  for (size_t i = 0; i < probe.num_rows(); ++i) {
    bool matched = false;
    match_buf.clear();
    table.ForEachChain(probe_hashes[i], [&](std::span<const uint32_t> rows) {
      if (matched) return;
      if (!probe.RowsEqual(ls, i, build, rs, rows.front())) return;
      matched = true;
      match_buf.assign(rows.begin(), rows.end());
    });
    for (size_t k = match_buf.size(); k-- > 0;) {
      got.emplace_back(static_cast<uint32_t>(i), match_buf[k]);
    }
    for (size_t b = build.num_rows(); b-- > 0;) {
      if (probe.RowsEqual(ls, i, build, rs, b)) {
        want.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(b));
      }
    }
  }
  EXPECT_EQ(got, want);
}

TEST(JoinHashTableTest, StringKeyProbeMatchesDescendingReference) {
  RowBlock build(std::vector<DataType>{DataType::kString});
  RowBlock probe(std::vector<DataType>{DataType::kString});
  // Duplicate-heavy build side over a handful of string keys, with lengths
  // straddling the 8-byte hash words.
  for (size_t i = 0; i < 200; ++i) {
    build.column(0).AppendString("customer-key-" + std::to_string(i % 7));
  }
  for (size_t i = 0; i < 50; ++i) {
    probe.column(0).AppendString("customer-key-" + std::to_string(i % 10));
  }
  ExpectProbeMatchesReference(probe, build, {0}, {0});
}

TEST(JoinHashTableTest, MultiColumnKeyProbeMatchesDescendingReference) {
  RowBlock build = MakeBlock(300);  // int, double, string columns
  RowBlock probe = MakeBlock(80);
  ExpectProbeMatchesReference(probe, build, {0, 2}, {0, 2});
}

// --- Exchange kernels -----------------------------------------------------

TEST(ExclusiveSumTest, BasicAndEmpty) {
  std::vector<uint32_t> v = {3, 0, 2, 5};
  EXPECT_EQ(ExclusiveSum(v), (std::vector<uint32_t>{0, 3, 3, 5, 10}));
  EXPECT_EQ(ExclusiveSum(std::vector<uint32_t>{}), (std::vector<uint32_t>{0}));
}

TEST(ScatterPlanTest, GroupsRowsByTargetInRowOrder) {
  std::vector<uint32_t> targets = {2, 0, 2, 1, 0, 2};
  ScatterPlan plan = BuildScatterPlan(targets, 3);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.CountFor(0), 2u);
  EXPECT_EQ(plan.CountFor(1), 1u);
  EXPECT_EQ(plan.CountFor(2), 3u);
  auto s0 = plan.SliceFor(0);
  EXPECT_EQ(std::vector<uint32_t>(s0.begin(), s0.end()),
            (std::vector<uint32_t>{1, 4}));
  auto s1 = plan.SliceFor(1);
  EXPECT_EQ(std::vector<uint32_t>(s1.begin(), s1.end()),
            (std::vector<uint32_t>{3}));
  auto s2 = plan.SliceFor(2);
  EXPECT_EQ(std::vector<uint32_t>(s2.begin(), s2.end()),
            (std::vector<uint32_t>{0, 2, 5}));
}

TEST(ScatterPlanTest, SingleTargetDegenerates) {
  // The n_ = 1 cluster: every row routes to target 0 and the plan is the
  // identity permutation.
  std::vector<uint32_t> targets(17, 0);
  ScatterPlan plan = BuildScatterPlan(targets, 1);
  EXPECT_EQ(plan.CountFor(0), 17u);
  auto s = plan.SliceFor(0);
  for (size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], static_cast<uint32_t>(i));
}

TEST(ScatterPlanTest, EmptySourceHasZeroCounts) {
  ScatterPlan plan = BuildScatterPlan({}, 4);
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(plan.CountFor(t), 0u);
    EXPECT_TRUE(plan.SliceFor(t).empty());
  }
  // A default-constructed plan (the executor's "source never ran" state)
  // reports zero counts as well.
  ScatterPlan unbuilt;
  EXPECT_TRUE(unbuilt.empty());
  EXPECT_EQ(unbuilt.CountFor(0), 0u);
}

TEST(ScatterPlanTest, ScratchReuseMatchesFreshPlans) {
  // One scratch + one plan threaded through blocks of different sizes and
  // target counts (the exchange operators' reuse pattern) must reproduce
  // fresh-allocation plans exactly.
  uint64_t rng = 77;
  ScatterScratch scratch;
  ScatterPlan reused;
  for (int round = 0; round < 6; ++round) {
    const size_t rows = static_cast<size_t>(NextRand(&rng) % 3000);
    const int nt = 1 + static_cast<int>(NextRand(&rng) % 12);
    std::vector<uint32_t> targets(rows);
    for (auto& t : targets) {
      t = static_cast<uint32_t>(NextRand(&rng) % static_cast<uint64_t>(nt));
    }
    BuildScatterPlanInto(targets, nt, scratch, reused);
    ScatterPlan fresh = BuildScatterPlan(targets, nt);
    EXPECT_EQ(reused.offsets, fresh.offsets) << "round " << round;
    EXPECT_EQ(reused.ordered, fresh.ordered) << "round " << round;
  }
}

TEST(ScatterPlanTest, ScatterThenGatherReproducesSerialAppendOrder) {
  // End-to-end shape of ExecRepartition: scatter a block by target, gather
  // per target in row order, compare against the serial row loop.
  RowBlock src = MakeBlock(200);
  const int n = 4;
  std::vector<uint64_t> hashes(src.num_rows());
  src.HashRows({0, 2}, hashes);
  std::vector<uint32_t> targets(src.num_rows());
  for (size_t r = 0; r < targets.size(); ++r) {
    targets[r] = static_cast<uint32_t>(hashes[r] % n);
  }
  ScatterPlan plan = BuildScatterPlan(targets, n);

  for (int t = 0; t < n; ++t) {
    RowBlock kernel(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                          DataType::kString});
    kernel.AppendGather(src, plan.SliceFor(t));
    RowBlock serial = kernel;  // copy types, then rebuild row-at-a-time
    serial = RowBlock(std::vector<DataType>{DataType::kInt64, DataType::kDouble,
                                            DataType::kString});
    for (size_t r = 0; r < src.num_rows(); ++r) {
      if (targets[r] == static_cast<uint32_t>(t)) serial.AppendRow(src, r);
    }
    ASSERT_EQ(kernel.num_rows(), serial.num_rows()) << "target " << t;
    for (size_t r = 0; r < kernel.num_rows(); ++r) {
      EXPECT_EQ(kernel.column(0).GetInt64(r), serial.column(0).GetInt64(r));
      EXPECT_EQ(kernel.column(2).GetString(r), serial.column(2).GetString(r));
    }
  }
}

}  // namespace
}  // namespace pref
