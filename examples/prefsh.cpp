// prefsh — an interactive shell over the library: generate or import data,
// run the design algorithms, partition, and execute SQL with EXPLAIN and
// cost statistics. Run `help` inside the shell for commands.
//
//   $ build/examples/example_prefsh
//   pref> gen tpch 0.01
//   pref> design sd nation,region,supplier
//   pref> partition 10
//   pref> explain SELECT ... ;
//   pref> SELECT o_orderpriority, COUNT(*) AS c FROM orders GROUP BY ...

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "catalog/tpcds_schema.h"
#include "catalog/tpch_schema.h"
#include "datagen/tpcds_gen.h"
#include "datagen/tpch_gen.h"
#include "design/sd_design.h"
#include "design/wd_design.h"
#include "engine/executor.h"
#include "engine/mutation.h"
#include "partition/partitioner.h"
#include "partition/presets.h"
#include "sql/parser.h"
#include "storage/csv.h"
#include "workloads/tpch_queries.h"

namespace {

using namespace pref;  // NOLINT — example brevity

struct ShellState {
  std::unique_ptr<Database> db;
  std::unique_ptr<PartitioningConfig> config;
  std::unique_ptr<PartitionedDatabase> pdb;
  int nodes = 10;
};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void PrintResult(const QueryResult& r, size_t max_rows = 25) {
  for (const auto& name : r.column_names) std::printf("%-20s", name.c_str());
  std::printf("\n");
  for (size_t i = 0; i < std::min(r.rows.num_rows(), max_rows); ++i) {
    for (int c = 0; c < r.rows.num_columns(); ++c) {
      const Column& col = r.rows.column(c);
      if (col.is_int()) {
        std::printf("%-20lld", static_cast<long long>(col.GetInt64(i)));
      } else if (col.is_double()) {
        std::printf("%-20.4f", col.GetDouble(i));
      } else {
        std::printf("%-20s", col.GetString(i).c_str());
      }
    }
    std::printf("\n");
  }
  if (r.rows.num_rows() > max_rows) {
    std::printf("... (%zu rows total)\n", r.rows.num_rows());
  }
  CostModel model;
  std::printf("[%zu rows, %d exchanges, %zu bytes shuffled, sim %.3fs, wall %.3fs]\n",
              r.rows.num_rows(), r.stats.exchanges, r.stats.bytes_shuffled,
              r.stats.SimulatedSeconds(model), r.stats.wall_seconds);
}

void Help() {
  std::printf(
      "commands:\n"
      "  gen tpch <sf> | gen tpcds <sf> [skew]   generate a database\n"
      "  import <table> <file.csv>               append CSV rows to a table\n"
      "  export <table> <file.csv>               write a table as CSV\n"
      "  tables                                  list tables and row counts\n"
      "  design sd [repl1,repl2,...]             schema-driven design\n"
      "  design wd [repl1,repl2,...]             workload-driven (TPC-H queries)\n"
      "  manual                                  classical TPC-H design\n"
      "  partition <nodes>                       materialize the design\n"
      "  config                                  show the current design\n"
      "  explain SELECT ...                      show the rewritten plan\n"
      "  delete <table> WHERE col = value        delete matching tuples\n"
      "  SELECT ...                              execute SQL\n"
      "  quit\n");
}

void Dispatch(ShellState* st, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  auto need_db = [&]() {
    if (!st->db) std::printf("no database: run `gen` first\n");
    return st->db != nullptr;
  };
  auto need_pdb = [&]() {
    if (!st->pdb) std::printf("not partitioned: run `design` + `partition`\n");
    return st->pdb != nullptr;
  };

  if (cmd == "help") {
    Help();
  } else if (cmd == "gen") {
    std::string which;
    double sf = 0.01, skew = 0.5;
    in >> which >> sf >> skew;
    if (which == "tpch") {
      auto db = GenerateTpch({sf, 42});
      if (!db.ok()) {
        std::printf("%s\n", db.status().ToString().c_str());
        return;
      }
      st->db = std::make_unique<Database>(std::move(*db));
    } else if (which == "tpcds") {
      TpcdsGenOptions o;
      o.scale_factor = sf;
      o.skew = skew;
      auto db = GenerateTpcds(o);
      if (!db.ok()) {
        std::printf("%s\n", db.status().ToString().c_str());
        return;
      }
      st->db = std::make_unique<Database>(std::move(*db));
    } else {
      std::printf("usage: gen tpch <sf> | gen tpcds <sf> [skew]\n");
      return;
    }
    st->config.reset();
    st->pdb.reset();
    std::printf("generated %s: %zu tuples in %d tables\n", which.c_str(),
                st->db->TotalRows(), st->db->num_tables());
  } else if (cmd == "tables") {
    if (!need_db()) return;
    for (const auto& def : st->db->schema().tables()) {
      std::printf("  %-26s %10zu rows\n", def.name.c_str(),
                  st->db->table(def.id).num_rows());
    }
  } else if (cmd == "import" || cmd == "export") {
    if (!need_db()) return;
    std::string table, path;
    in >> table >> path;
    auto t = st->db->FindTable(table);
    if (!t.ok()) {
      std::printf("%s\n", t.status().ToString().c_str());
      return;
    }
    Status s = cmd == "import" ? ImportCsvFile(*t, path) : ExportCsvFile(**t, path);
    std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
    if (cmd == "import") st->pdb.reset();  // partitions are stale now
  } else if (cmd == "design") {
    if (!need_db()) return;
    std::string kind, repl;
    in >> kind >> repl;
    auto replicate = SplitCommas(repl);
    if (kind == "sd") {
      SdOptions o;
      o.num_partitions = st->nodes;
      o.replicate_tables = replicate;
      auto r = SchemaDrivenDesign(*st->db, o);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        return;
      }
      st->config = std::make_unique<PartitioningConfig>(std::move(r->config));
      std::printf("schema-driven design (est DR %.3f):\n%s",
                  r->estimated_redundancy, st->config->ToString().c_str());
    } else if (kind == "wd") {
      WdOptions o;
      o.num_partitions = st->nodes;
      o.replicate_tables = replicate;
      auto r = WorkloadDrivenDesign(*st->db, TpchQueryGraphs(st->db->schema()), o);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        return;
      }
      std::printf("workload-driven: %d -> %d -> %d configurations; using #1:\n",
                  r->initial_components, r->components_after_phase1,
                  r->components_after_phase2);
      st->config = std::make_unique<PartitioningConfig>(
          std::move(r->deployment.configs().front()));
      std::printf("%s", st->config->ToString().c_str());
    } else {
      std::printf("usage: design sd|wd [replicated,tables]\n");
    }
    st->pdb.reset();
  } else if (cmd == "manual") {
    if (!need_db()) return;
    auto c = MakeTpchClassical(st->db->schema(), st->nodes);
    if (!c.ok()) {
      std::printf("%s\n", c.status().ToString().c_str());
      return;
    }
    st->config = std::make_unique<PartitioningConfig>(std::move(*c));
    st->pdb.reset();
    std::printf("classical design set\n");
  } else if (cmd == "partition") {
    if (!need_db()) return;
    int n = st->nodes;
    in >> n;
    st->nodes = n;
    if (!st->config) {
      std::printf("no design: run `design` or `manual` first\n");
      return;
    }
    // Re-run the design if the node count changed the spec counts.
    if (st->config->num_partitions() != n) {
      std::printf("(design was for %d nodes; re-run design for %d)\n",
                  st->config->num_partitions(), n);
      return;
    }
    auto pdb = PartitionDatabase(*st->db, *st->config);
    if (!pdb.ok()) {
      std::printf("%s\n", pdb.status().ToString().c_str());
      return;
    }
    st->pdb = std::move(*pdb);
    std::printf("partitioned onto %d nodes: %zu tuples, DR = %.3f\n", n,
                st->pdb->TotalRows(), st->pdb->DataRedundancy());
  } else if (cmd == "config") {
    if (st->config) {
      std::printf("%s", st->config->ToString().c_str());
    } else {
      std::printf("no design yet\n");
    }
  } else if (cmd == "explain") {
    if (!need_pdb()) return;
    std::string rest;
    std::getline(in, rest);
    auto q = sql::ParseQuery(st->db->schema(), rest);
    if (!q.ok()) {
      std::printf("%s\n", q.status().ToString().c_str());
      return;
    }
    auto text = ExplainQuery(*q, *st->pdb);
    std::printf("%s", text.ok() ? text->c_str() : text.status().ToString().c_str());
  } else if (cmd == "delete") {
    if (!need_pdb()) return;
    std::string table, where, col, eq, value;
    in >> table >> where >> col >> eq >> value;
    if (where != "WHERE" && where != "where") {
      std::printf("usage: delete <table> WHERE <col> = <value>\n");
      return;
    }
    Value v;
    if (!value.empty() && value.front() == '\'') {
      v = Value(value.substr(1, value.size() - 2));
    } else if (value.find('.') != std::string::npos) {
      v = Value(std::stod(value));
    } else {
      v = Value(static_cast<int64_t>(std::stoll(value)));
    }
    Mutator mutator(st->config.get());
    auto r = mutator.Delete(st->pdb.get(), table, Dnf::And({Eq(col, v)}));
    if (!r.ok()) {
      std::printf("%s\n", r.status().ToString().c_str());
      return;
    }
    std::printf("deleted %zu tuples (%zu copies)\n", r->tuples_affected,
                r->copies_affected);
  } else if (cmd == "SELECT" || cmd == "select") {
    if (!need_pdb()) return;
    auto q = sql::ParseQuery(st->db->schema(), line);
    if (!q.ok()) {
      std::printf("%s\n", q.status().ToString().c_str());
      return;
    }
    auto r = ExecuteQuery(*q, *st->pdb);
    if (!r.ok()) {
      std::printf("%s\n", r.status().ToString().c_str());
      return;
    }
    PrintResult(*r);
  } else if (!cmd.empty()) {
    std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShellState state;
  std::printf("prefsh — PREF partitioning shell (type `help`)\n");
  // Non-interactive mode: execute each argv command (used by tests/demos).
  for (int i = 1; i < argc; ++i) {
    std::printf("pref> %s\n", argv[i]);
    Dispatch(&state, argv[i]);
  }
  if (argc > 1) return 0;
  std::string line;
  while (std::printf("pref> "), std::fflush(stdout), std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    Dispatch(&state, line);
  }
  return 0;
}
