// Quickstart: define a small schema, PREF-partition it (the paper's
// Figure 2 example), inspect the placement, and run SQL over the
// partitioned database.

#include <cstdio>

#include "engine/executor.h"
#include "partition/partitioner.h"
#include "sql/parser.h"
#include "storage/table.h"

using namespace pref;  // NOLINT — example brevity

int main() {
  // --- 1. Schema: lineitem <- orders <- customer (Figure 2) -------------
  Schema schema;
  (void)schema.AddTable(
      "lineitem", {{"linekey", DataType::kInt64}, {"orderkey", DataType::kInt64}},
      {"linekey"});
  (void)schema.AddTable(
      "orders", {{"orderkey", DataType::kInt64}, {"custkey", DataType::kInt64}},
      {"orderkey"});
  (void)schema.AddTable(
      "customer", {{"custkey", DataType::kInt64}, {"cname", DataType::kString}},
      {"custkey"});

  Database db(std::move(schema));
  RowBlock& l = (*db.FindTable("lineitem"))->data();
  for (auto [lk, ok] : {std::pair<int64_t, int64_t>{0, 1}, {1, 4}, {2, 1}, {3, 2},
                        {4, 3}}) {
    l.column(0).AppendInt64(lk);
    l.column(1).AppendInt64(ok);
  }
  RowBlock& o = (*db.FindTable("orders"))->data();
  for (auto [ok, ck] :
       {std::pair<int64_t, int64_t>{1, 1}, {2, 1}, {3, 2}, {4, 1}}) {
    o.column(0).AppendInt64(ok);
    o.column(1).AppendInt64(ck);
  }
  RowBlock& c = (*db.FindTable("customer"))->data();
  for (auto [ck, nm] :
       {std::pair<int64_t, const char*>{1, "A"}, {2, "B"}, {3, "C"}}) {
    c.column(0).AppendInt64(ck);
    c.column(1).AppendString(nm);
  }

  // --- 2. Partition: lineitem hashed; orders and customer PREF-chained. --
  PartitioningConfig config(&db.schema(), 3);
  (void)config.AddHash("lineitem", {"linekey"});
  (void)config.AddPref("orders", {"orderkey"}, "lineitem", {"orderkey"});
  (void)config.AddPref("customer", {"custkey"}, "orders", {"custkey"});
  auto pdb = PartitionDatabase(db, std::move(config));
  if (!pdb.ok()) {
    std::printf("partitioning failed: %s\n", pdb.status().ToString().c_str());
    return 1;
  }

  std::printf("Partitioned database (3 nodes):\n");
  for (const auto* table : (*pdb)->tables()) {
    std::printf("  %s: %zu rows total (%zu distinct) — %s\n",
                table->name().c_str(), table->TotalRows(), table->DistinctRows(),
                table->spec().ToString(db.schema(), table->id()).c_str());
  }
  std::printf("Data redundancy DR = %.2f\n\n", (*pdb)->DataRedundancy());

  // --- 3. SQL over the partitioned database ------------------------------
  const char* text =
      "SELECT c.cname, SUM(o.orderkey) AS key_sum, COUNT(*) AS orders "
      "FROM orders o JOIN customer c ON o.custkey = c.custkey "
      "GROUP BY c.cname";
  auto query = sql::ParseQuery(db.schema(), text, "quickstart");
  if (!query.ok()) {
    std::printf("parse failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  auto result = ExecuteQuery(*query, **pdb);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Query: %s\n", text);
  for (size_t r = 0; r < result->rows.num_rows(); ++r) {
    std::printf("  %s  key_sum=%ld  orders=%ld\n",
                result->rows.column(0).GetString(r).c_str(),
                static_cast<long>(result->rows.column(1).GetInt64(r)),
                static_cast<long>(result->rows.column(2).GetInt64(r)));
  }
  std::printf(
      "Join executed locally per node (exchanges: %d — only the aggregate "
      "shuffle), bytes shuffled: %zu\n",
      result->stats.exchanges, result->stats.bytes_shuffled);
  return 0;
}
