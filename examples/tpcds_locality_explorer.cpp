// TPC-DS locality explorer: generates the 24-table skewed database,
// contrasts the naive and individual-stars design variants, and runs a
// star-join SQL query against the workload-driven deployment — showing how
// PREF keeps a snowflake schema's joins local where classic co-hashing
// cannot.

#include <cstdio>

#include "catalog/tpcds_schema.h"
#include "datagen/tpcds_gen.h"
#include "design/sd_design.h"
#include "design/stars.h"
#include "design/wd_design.h"
#include "engine/executor.h"
#include "partition/locality.h"
#include "partition/partitioner.h"
#include "partition/presets.h"
#include "sql/parser.h"
#include "workloads/tpcds_workload.h"

using namespace pref;  // NOLINT — example brevity

int main() {
  TpcdsGenOptions gen;
  gen.scale_factor = 0.1;
  gen.skew = 0.85;
  auto generated = GenerateTpcds(gen);
  if (!generated.ok()) return 1;
  Database db(std::move(*generated));
  std::printf("TPC-DS database: %zu tuples, %d tables (Zipf theta %.2f)\n\n",
              db.TotalRows(), db.num_tables(), gen.skew);

  const auto& small = TpcdsSmallTables();

  // Naive SD over the whole snowflake vs per-star designs.
  SdOptions options;
  options.num_partitions = 10;
  options.replicate_tables = small;
  auto naive = SchemaDrivenDesign(db, options);
  auto stars = TpcdsSdIndividualStars(db, options);
  if (!naive.ok() || !stars.ok()) return 1;
  auto naive_pdb = PartitionDatabase(db, naive->config);
  auto stars_dr = stars->Redundancy(db);
  std::printf("SD naive:  DL = %.2f, DR = %.2f\n",
              DataLocality(naive->config, SchemaEdges(db, naive->config)),
              (*naive_pdb)->DataRedundancy());
  std::printf("SD stars:  DL = %.2f, DR = %.2f (one configuration per fact)\n\n",
              stars->Locality(db), stars_dr.ok() ? *stars_dr : -1);

  // Workload-driven over the 99-query block workload.
  auto graphs = TpcdsQueryGraphs(db.schema());
  if (!graphs.ok()) return 1;
  WdOptions wd_options;
  wd_options.num_partitions = 10;
  wd_options.replicate_tables = small;
  auto wd = WorkloadDrivenDesign(db, *graphs, wd_options);
  if (!wd.ok()) return 1;
  std::printf("WD: %d blocks -> %d -> %d configurations, workload DL = %.2f\n\n",
              wd->initial_components, wd->components_after_phase1,
              wd->components_after_phase2,
              WorkloadLocality(db, wd->deployment, *graphs));

  // Run a star-join query against the configuration its tables route to.
  const char* text =
      "SELECT i_category, SUM(ss_net_profit) AS profit, COUNT(*) AS sales "
      "FROM store_sales "
      "JOIN item ON ss_item_sk = i_item_sk "
      "JOIN date_dim ON ss_sold_date_sk = d_date_sk "
      "WHERE d_year >= 2000 "
      "GROUP BY i_category";
  auto query = sql::ParseQuery(db.schema(), text, "star");
  if (!query.ok()) {
    std::printf("parse failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::vector<TableId> tables;
  for (const auto& ref : query->tables) {
    tables.push_back(*db.schema().FindTable(ref.table));
  }
  const PartitioningConfig* routed = wd->deployment.RouteQuery(tables);
  if (routed == nullptr) {
    std::printf("no WD configuration covers the query\n");
    return 1;
  }
  auto pdb = PartitionDatabase(db, *routed);
  if (!pdb.ok()) return 1;
  auto result = ExecuteQuery(*query, **pdb);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Star query over the WD deployment: %zu groups, %d exchanges, "
              "%zu bytes shuffled\n",
              result->rows.num_rows(), result->stats.exchanges,
              result->stats.bytes_shuffled);
  for (size_t r = 0; r < std::min<size_t>(result->rows.num_rows(), 5); ++r) {
    std::printf("  %-24s profit=%12.2f sales=%6ld\n",
                result->rows.column(0).GetString(r).c_str(),
                result->rows.column(1).GetDouble(r),
                static_cast<long>(result->rows.column(2).GetInt64(r)));
  }
  return 0;
}
