// Warehouse loading scenario (§2.3): an initial bulk load followed by a
// nightly delta of new orders and their lineitems, routed through the
// partition indexes, with Definition-1 placement maintained incrementally.

#include <cstdio>

#include "datagen/tpch_gen.h"
#include "partition/bulk_loader.h"
#include "partition/partitioner.h"

using namespace pref;  // NOLINT — example brevity

int main() {
  auto generated = GenerateTpch({0.01, 7});
  if (!generated.ok()) return 1;
  Database full(std::move(*generated));
  const Schema& schema = full.schema();

  // Split: 90% initial load, 10% nightly delta (orders + lineitems).
  Database initial(schema);
  RowBlock delta_orders(&schema.table(*schema.FindTable("orders")));
  RowBlock delta_lineitems(&schema.table(*schema.FindTable("lineitem")));
  // Orders are keyed 1..N; the delta holds the last 10% of order keys and
  // exactly the lineitems referencing them (referential consistency).
  const size_t n_orders = (*full.FindTable("orders"))->num_rows();
  const int64_t order_cut = static_cast<int64_t>(n_orders * 9 / 10);
  for (const auto& def : schema.tables()) {
    const RowBlock& src = full.table(def.id).data();
    RowBlock& dst = (*initial.FindTable(def.name))->data();
    for (size_t r = 0; r < src.num_rows(); ++r) {
      if (def.name == "orders" && src.column(0).GetInt64(r) > order_cut) {
        delta_orders.AppendRow(src, r);
      } else if (def.name == "lineitem" && src.column(0).GetInt64(r) > order_cut) {
        delta_lineitems.AppendRow(src, r);
      } else {
        dst.AppendRow(src, r);
      }
    }
  }

  // Initial partitioning: customer-rooted PREF chain.
  PartitioningConfig config(&schema, 8);
  (void)config.AddHash("customer", {"c_custkey"});
  (void)config.AddPref("orders", {"o_custkey"}, "customer", {"c_custkey"});
  (void)config.AddPref("lineitem", {"l_orderkey"}, "orders", {"o_orderkey"});
  for (const char* t : {"nation", "region", "supplier", "part", "partsupp"}) {
    (void)config.AddReplicated(t);
  }
  auto pdb = PartitionDatabase(initial, std::move(config));
  if (!pdb.ok()) {
    std::printf("initial load failed: %s\n", pdb.status().ToString().c_str());
    return 1;
  }
  std::printf("Initial load: %zu tuples, DR = %.3f\n", (*pdb)->TotalRows(),
              (*pdb)->DataRedundancy());

  // Nightly delta: referenced tables first (orders before lineitems).
  BulkLoader loader;
  TableId orders = *schema.FindTable("orders");
  TableId lineitem = *schema.FindTable("lineitem");
  auto s1 = loader.Append(pdb->get(), orders, delta_orders);
  auto s2 = loader.Append(pdb->get(), lineitem, delta_lineitems);
  if (!s1.ok() || !s2.ok()) {
    std::printf("delta load failed\n");
    return 1;
  }
  std::printf("Delta orders:    %zu rows -> %zu copies, %zu index lookups\n",
              s1->rows_inserted, s1->copies_written, s1->index_lookups);
  std::printf("Delta lineitems: %zu rows -> %zu copies, %zu index lookups\n",
              s2->rows_inserted, s2->copies_written, s2->index_lookups);
  std::printf("After delta: %zu tuples, DR = %.3f\n", (*pdb)->TotalRows(),
              (*pdb)->DataRedundancy());

  // Every join along the chain remains local: verify by counting local
  // order-lineitem pairs.
  const PartitionedTable* o = (*pdb)->GetTable(orders);
  const PartitionedTable* l = (*pdb)->GetTable(lineitem);
  size_t pairs = 0;
  for (int p = 0; p < o->num_partitions(); ++p) {
    std::unordered_map<int64_t, int> keys;
    const auto& orows = o->partition(p).rows;
    for (size_t r = 0; r < orows.num_rows(); ++r) {
      if (o->partition(p).dup.Get(r)) continue;  // count each order once
      keys[orows.column(0).GetInt64(r)]++;
    }
    const auto& lrows = l->partition(p).rows;
    for (size_t r = 0; r < lrows.num_rows(); ++r) {
      if (l->partition(p).dup.Get(r)) continue;
      auto it = keys.find(lrows.column(0).GetInt64(r));
      if (it != keys.end()) pairs += static_cast<size_t>(it->second);
    }
  }
  std::printf("Local order-lineitem join pairs: %zu (lineitems in db: %zu)\n",
              pairs, full.table(lineitem).num_rows());
  return 0;
}
