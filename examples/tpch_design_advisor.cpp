// Design advisor: runs both automated partitioning-design algorithms on a
// generated TPC-H database, prints the chosen configurations with
// estimated vs measured redundancy, and compares query costs against the
// classical warehouse design — the workflow a DBA would follow with this
// library.

#include <cstdio>

#include "datagen/tpch_gen.h"
#include "design/sd_design.h"
#include "design/wd_design.h"
#include "engine/executor.h"
#include "partition/locality.h"
#include "partition/partitioner.h"
#include "partition/presets.h"
#include "workloads/tpch_queries.h"

using namespace pref;  // NOLINT — example brevity

int main() {
  const int kNodes = 10;
  auto generated = GenerateTpch({0.01, 42});
  if (!generated.ok()) return 1;
  Database db(std::move(*generated));
  const Schema& schema = db.schema();
  std::printf("TPC-H database: %zu tuples across %d tables, %d nodes\n\n",
              db.TotalRows(), db.num_tables(), kNodes);

  // --- Schema-driven design (needs only schema + data) -------------------
  SdOptions sd_options;
  sd_options.num_partitions = kNodes;
  sd_options.replicate_tables = {"nation", "region", "supplier"};
  auto sd = SchemaDrivenDesign(db, sd_options);
  if (!sd.ok()) return 1;
  std::printf("=== Schema-driven design (%.3fs) ===\n%s", sd->design_seconds,
              sd->config.ToString().c_str());
  auto sd_pdb = PartitionDatabase(db, sd->config);
  std::printf("estimated DR = %.3f, measured DR = %.3f, DL = %.2f\n\n",
              sd->estimated_redundancy, (*sd_pdb)->DataRedundancy(),
              DataLocality(sd->config, SchemaEdges(db, sd->config)));

  // --- Workload-driven design (additionally uses the 22 queries) ---------
  WdOptions wd_options;
  wd_options.num_partitions = kNodes;
  wd_options.replicate_tables = {"nation", "region", "supplier"};
  auto workload = TpchQueryGraphs(schema);
  auto wd = WorkloadDrivenDesign(db, workload, wd_options);
  if (!wd.ok()) return 1;
  std::printf("=== Workload-driven design (%.3fs) ===\n", wd->design_seconds);
  std::printf("merge: %d query components -> %d (containment) -> %d (cost-based)\n",
              wd->initial_components, wd->components_after_phase1,
              wd->components_after_phase2);
  for (size_t i = 0; i < wd->deployment.configs().size(); ++i) {
    std::printf("--- configuration %zu ---\n%s", i + 1,
                wd->deployment.configs()[i].ToString().c_str());
  }
  auto wd_dr = wd->deployment.Redundancy(db);
  std::printf("deployment DR = %.3f, workload DL = %.2f\n\n",
              wd_dr.ok() ? *wd_dr : -1.0,
              WorkloadLocality(db, wd->deployment, workload));

  // --- Compare a representative query across designs ---------------------
  auto cp_pdb = PartitionDatabase(db, *MakeTpchClassical(schema, kNodes));
  auto queries = TpchQueries(schema);
  const QuerySpec& q9 = queries[8];
  CostModel model;
  std::printf("=== Q9 (6-way join) across designs ===\n");
  auto report = [&](const char* name, const PartitionedDatabase& pdb) {
    auto r = ExecuteQuery(q9, pdb);
    if (!r.ok()) return;
    size_t max_node = 0;
    for (size_t n : r->stats.node_rows) max_node = std::max(max_node, n);
    std::printf("%-14s rows/node(max)=%8zu shuffled=%8zu B exchanges=%d\n", name,
                max_node, r->stats.bytes_shuffled, r->stats.exchanges);
  };
  report("Classical", **cp_pdb);
  report("SD", **sd_pdb);
  return 0;
}
