// In-memory columnar tables and databases (the *unpartitioned* form, the
// paper's database D).

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "storage/column.h"

namespace pref {

/// \brief A columnar chunk of rows conforming to a TableDef.
///
/// Used both for base tables (class Table below) and for the per-node
/// partitions (storage/partition.h) and intermediate results of the
/// executor.
class RowBlock {
 public:
  explicit RowBlock(const TableDef* def);
  /// A block with an explicit column-type list (intermediate results whose
  /// schema is synthesized by the planner).
  explicit RowBlock(const std::vector<DataType>& types);

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }

  void Reserve(size_t n);

  /// Appends row `row` of `src` (which must have identical column types).
  void AppendRow(const RowBlock& src, size_t row);

  /// Gather kernel: appends the rows sel[0], sel[1], ... of `src` in
  /// selection order, column at a time (no per-row dispatch).
  void AppendGather(const RowBlock& src, std::span<const uint32_t> sel);

  /// Appends every row of `src` in order, column at a time.
  void AppendBlock(const RowBlock& src);

  /// Appends a row of boxed values (type-checked).
  Status AppendRowValues(const std::vector<Value>& values);

  /// Materializes row `row` as boxed values.
  std::vector<Value> GetRow(size_t row) const;

  /// Combined hash of the given columns at `row` — join/partitioning key.
  uint64_t HashRow(const std::vector<ColumnId>& cols, size_t row) const;

  /// Batch hash kernel: out[i] = HashRow(cols, begin + i). Seeds every slot
  /// then folds one column at a time over the typed payloads; bit-identical
  /// to the row-at-a-time HashRow.
  void HashRows(const std::vector<ColumnId>& cols, std::span<uint64_t> out,
                size_t begin = 0) const;

  /// Batch size kernel: out[i] = RowByteSize(begin + i).
  void RowByteSizes(std::span<size_t> out, size_t begin = 0) const;

  /// True iff rows agree on the given column lists.
  bool RowsEqual(const std::vector<ColumnId>& cols, size_t row, const RowBlock& other,
                 const std::vector<ColumnId>& other_cols, size_t other_row) const;

  /// Total payload bytes.
  size_t ByteSize() const;
  /// Payload bytes of one row.
  size_t RowByteSize(size_t row) const;

  const TableDef* def() const { return def_; }

 private:
  const TableDef* def_ = nullptr;  // may be null for synthesized blocks
  std::vector<Column> columns_;
};

/// \brief A named base table: definition + data.
class Table {
 public:
  explicit Table(const TableDef* def) : def_(def), data_(def) {}

  const TableDef& def() const { return *def_; }
  const std::string& name() const { return def_->name; }
  TableId id() const { return def_->id; }

  RowBlock& data() { return data_; }
  const RowBlock& data() const { return data_; }

  size_t num_rows() const { return data_.num_rows(); }
  size_t ByteSize() const { return data_.ByteSize(); }

 private:
  const TableDef* def_;
  RowBlock data_;
};

/// \brief The unpartitioned database D: a Schema plus one Table per
/// TableDef. Owns the schema.
class Database {
 public:
  explicit Database(Schema schema);

  const Schema& schema() const { return *schema_; }

  Table& table(TableId id) { return tables_[static_cast<size_t>(id)]; }
  const Table& table(TableId id) const { return tables_[static_cast<size_t>(id)]; }

  Result<Table*> FindTable(const std::string& name);
  Result<const Table*> FindTable(const std::string& name) const;

  int num_tables() const { return static_cast<int>(tables_.size()); }

  /// Total number of tuples across all tables (the |D| of §3.3).
  size_t TotalRows() const;
  /// Total payload bytes across all tables.
  size_t TotalBytes() const;

 private:
  std::unique_ptr<Schema> schema_;  // stable address for TableDef pointers
  std::vector<Table> tables_;
};

}  // namespace pref
