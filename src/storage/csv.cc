#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pref {

namespace {

/// Splits one CSV record, honoring double-quoted fields.
Result<std::vector<std::string>> SplitRecord(const std::string& line, char delim,
                                             size_t line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (quoted) {
    return Status::Invalid("CSV line ", line_no, ": unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> ParseField(const std::string& field, DataType type, size_t line_no) {
  switch (type) {
    case DataType::kInt64:
    case DataType::kDate: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::Invalid("CSV line ", line_no, ": '", field,
                               "' is not an integer");
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::Invalid("CSV line ", line_no, ": '", field,
                               "' is not a number");
      }
      return Value(v);
    }
    case DataType::kString:
      return Value(field);
  }
  return Status::Internal("unknown column type");
}

std::string QuoteField(const std::string& s, char delim) {
  bool needs_quotes = s.find(delim) != std::string::npos ||
                      s.find('"') != std::string::npos ||
                      s.find('\n') != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Status ImportCsv(Table* table, std::istream& input, const CsvOptions& options) {
  const TableDef& def = table->def();
  std::string line;
  size_t line_no = 0;

  // Column order: identity unless a header remaps it.
  std::vector<ColumnId> order;
  if (options.header) {
    if (!std::getline(input, line)) {
      return Status::Invalid("CSV import: missing header line");
    }
    ++line_no;
    PREF_ASSIGN_OR_RAISE(auto names, SplitRecord(line, options.delimiter, line_no));
    if (static_cast<int>(names.size()) != def.num_columns()) {
      return Status::Invalid("CSV header has ", names.size(), " columns, table '",
                             def.name, "' has ", def.num_columns());
    }
    for (const auto& name : names) {
      PREF_ASSIGN_OR_RAISE(ColumnId c, def.FindColumn(name));
      order.push_back(c);
    }
  } else {
    for (ColumnId c = 0; c < def.num_columns(); ++c) order.push_back(c);
  }

  // Stage into a scratch block for atomicity.
  RowBlock staged(&def);
  std::vector<Value> row(static_cast<size_t>(def.num_columns()));
  while (std::getline(input, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    PREF_ASSIGN_OR_RAISE(auto fields, SplitRecord(line, options.delimiter, line_no));
    if (fields.size() != order.size()) {
      return Status::Invalid("CSV line ", line_no, ": expected ", order.size(),
                             " fields, got ", fields.size());
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      ColumnId c = order[i];
      PREF_ASSIGN_OR_RAISE(row[static_cast<size_t>(c)],
                           ParseField(fields[i], def.column(c).type, line_no));
    }
    PREF_RETURN_NOT_OK(staged.AppendRowValues(row));
  }
  for (size_t r = 0; r < staged.num_rows(); ++r) {
    table->data().AppendRow(staged, r);
  }
  return Status::OK();
}

Status ImportCsvFile(Table* table, const std::string& path,
                     const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '", path, "' for reading");
  return ImportCsv(table, in, options);
}

Status ExportCsv(const Table& table, std::ostream& output,
                 const CsvOptions& options) {
  const TableDef& def = table.def();
  if (options.header) {
    for (int c = 0; c < def.num_columns(); ++c) {
      if (c) output << options.delimiter;
      output << def.column(c).name;
    }
    output << '\n';
  }
  const RowBlock& rows = table.data();
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    for (int c = 0; c < def.num_columns(); ++c) {
      if (c) output << options.delimiter;
      const Column& col = rows.column(c);
      if (col.is_int()) {
        output << col.GetInt64(r);
      } else if (col.is_double()) {
        std::ostringstream ss;
        ss.precision(17);
        ss << col.GetDouble(r);
        output << ss.str();
      } else {
        output << QuoteField(col.GetString(r), options.delimiter);
      }
    }
    output << '\n';
  }
  if (!output) return Status::Internal("CSV export: stream write failed");
  return Status::OK();
}

Status ExportCsvFile(const Table& table, const std::string& path,
                     const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '", path, "' for writing");
  return ExportCsv(table, out, options);
}

}  // namespace pref
