// CSV import/export for base tables, so users can load their own data
// instead of the built-in generators.

#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace pref {

struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names; on import they must match the table
  /// definition (any order), on export they are always written.
  bool header = true;
};

/// Appends the rows of `input` (CSV text) to `table`. Values are parsed by
/// the table's column types; string fields may be double-quoted (with ""
/// escaping). Fails atomically: on a parse error the table is unchanged.
Status ImportCsv(Table* table, std::istream& input, const CsvOptions& options = {});
Status ImportCsvFile(Table* table, const std::string& path,
                     const CsvOptions& options = {});

/// Writes the table as CSV. Strings containing the delimiter, quotes or
/// newlines are quoted.
Status ExportCsv(const Table& table, std::ostream& output,
                 const CsvOptions& options = {});
Status ExportCsvFile(const Table& table, const std::string& path,
                     const CsvOptions& options = {});

}  // namespace pref
