// Partitioned storage: the paper's database D^P.
//
// A PartitionedTable holds n Partitions (one per simulated cluster node),
// each a columnar RowBlock plus the two PREF auxiliary bitmap indexes of
// §2.1 (`dup`: is this row a PREF-introduced duplicate; `hasS`: does this
// row have a partitioning partner in the referenced table). A
// PartitionedDatabase also carries the partition indexes of §2.3 used for
// bulk loading.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitmap.h"
#include "storage/table.h"

namespace pref {

/// Horizontal partitioning methods. kNone marks an intermediate result with
/// no exploitable partitioning (the paper's Part(o).m = NONE).
enum class PartitionMethod : uint8_t {
  kNone,
  kHash,
  kRange,
  kRoundRobin,
  kReplicated,
  kPref,
};

const char* PartitionMethodName(PartitionMethod m);

/// \brief Partitioning descriptor of one table (or intermediate result):
/// the paper's Part(o) = {method m, attribute list A, partition count c},
/// extended with the PREF linkage (referenced table, partitioning predicate,
/// seed table).
struct PartitionSpec {
  PartitionMethod method = PartitionMethod::kNone;
  /// Partitioning attributes (columns of *this* table). For PREF these are
  /// the local columns of the partitioning predicate.
  std::vector<ColumnId> attributes;
  /// Number of partitions (cluster nodes).
  int num_partitions = 0;

  /// RANGE only: ascending upper bounds; partition i holds values v with
  /// bounds[i-1] <= v < bounds[i], the last partition holds the tail.
  /// Exactly num_partitions - 1 entries; single partitioning column.
  std::vector<Value> range_bounds;

  /// PREF only: the directly referenced table S.
  TableId referenced_table = kInvalidTableId;
  /// PREF only: the partitioning predicate p(r, s); left side = this table.
  std::optional<JoinPredicate> predicate;
  /// PREF only: the seed table — first non-PREF table along the predicate
  /// path (Definition 1).
  TableId seed_table = kInvalidTableId;
  /// Seed partitioning attributes of the seed table (identifies the
  /// co-partitioning family for the rewriter's case (2)/(3) checks).
  std::vector<ColumnId> seed_attributes;

  static PartitionSpec Hash(std::vector<ColumnId> attrs, int n) {
    PartitionSpec s;
    s.method = PartitionMethod::kHash;
    s.attributes = std::move(attrs);
    s.num_partitions = n;
    return s;
  }
  static PartitionSpec Range(ColumnId column, std::vector<Value> bounds, int n) {
    PartitionSpec s;
    s.method = PartitionMethod::kRange;
    s.attributes = {column};
    s.range_bounds = std::move(bounds);
    s.num_partitions = n;
    return s;
  }
  static PartitionSpec RoundRobin(int n) {
    PartitionSpec s;
    s.method = PartitionMethod::kRoundRobin;
    s.num_partitions = n;
    return s;
  }
  static PartitionSpec Replicated(int n) {
    PartitionSpec s;
    s.method = PartitionMethod::kReplicated;
    s.num_partitions = n;
    return s;
  }

  std::string ToString(const Schema& schema, TableId self) const;
};

/// \brief One partition: rows plus the PREF bitmap indexes.
struct Partition {
  explicit Partition(const TableDef* def) : rows(def) {}
  explicit Partition(const std::vector<DataType>& types) : rows(types) {}

  RowBlock rows;
  /// dup[i] == true iff row i is a PREF-introduced duplicate (not the first
  /// occurrence of the original tuple across partitions). Empty for non-PREF
  /// tables.
  Bitmap dup;
  /// has_partner[i] == true iff row i has at least one partitioning partner
  /// in the referenced table (the paper's hasS index). Empty for non-PREF.
  Bitmap has_partner;
};

/// \brief Partition index (§2.3): maps a referenced-attribute key of table S
/// to the set of partitions of S containing that key. Lets bulk loading of
/// a referencing PREF table avoid a join against S.
class PartitionIndex {
 public:
  using Key = std::vector<Value>;

  struct KeyHasher {
    size_t operator()(const Key& k) const {
      uint64_t h = 0xcbf29ce484222325ULL;
      for (const auto& v : k) h = HashCombine(h, v.Hash());
      return static_cast<size_t>(h);
    }
  };

  /// Records that `key` occurs in partition `part` (idempotent).
  void Add(const Key& key, int part);

  /// Partitions containing `key`; empty if the key is absent.
  const std::vector<int>& Lookup(const Key& key) const;

  size_t num_keys() const { return map_.size(); }

 private:
  std::unordered_map<Key, std::vector<int>, KeyHasher> map_;
  static const std::vector<int> kEmpty;
};

/// \brief A partitioned table: spec + n partitions (+ optional partition
/// indexes on referenced attribute sets).
class PartitionedTable {
 public:
  PartitionedTable(const TableDef* def, PartitionSpec spec);

  const TableDef& def() const { return *def_; }
  const std::string& name() const { return def_->name; }
  TableId id() const { return def_->id; }
  const PartitionSpec& spec() const { return spec_; }

  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  Partition& partition(int i) { return partitions_[static_cast<size_t>(i)]; }
  const Partition& partition(int i) const {
    return partitions_[static_cast<size_t>(i)];
  }

  /// Total row count across partitions — |T^P| of §3.3, duplicates included.
  size_t TotalRows() const;
  /// Rows that are not PREF duplicates (equals the base-table cardinality
  /// once partitioning is correct; checked by tests).
  size_t DistinctRows() const;
  size_t TotalBytes() const;

  /// Registers a partition index keyed by the given columns of this table.
  PartitionIndex* AddPartitionIndex(const std::vector<ColumnId>& columns);
  /// Finds a partition index on exactly these columns, or null.
  const PartitionIndex* FindPartitionIndex(const std::vector<ColumnId>& columns) const;

  using IndexEntry = std::pair<std::vector<ColumnId>, std::unique_ptr<PartitionIndex>>;
  /// All registered partition indexes (mutable: bulk loading maintains them).
  std::vector<IndexEntry>& indexes() { return indexes_; }
  const std::vector<IndexEntry>& indexes() const { return indexes_; }

 private:
  const TableDef* def_;
  PartitionSpec spec_;
  std::vector<Partition> partitions_;
  std::vector<IndexEntry> indexes_;
};

/// \brief The partitioned database D^P: one PartitionedTable per schema
/// table. Borrows the Schema (and its TableDefs) from the source Database,
/// which must outlive it.
///
/// Tables are held by shared ownership so two database *versions* (e.g. the
/// pre- and post-migration states of a live deployment) can share the
/// physical storage of tables whose placement did not change — see
/// partition/migration.h. A table reachable from more than one version must
/// be treated as immutable; Mutator refuses to touch shared tables.
class PartitionedDatabase {
 public:
  explicit PartitionedDatabase(const Database* source) : source_(source) {}

  const Database& source() const { return *source_; }
  const Schema& schema() const { return source_->schema(); }

  /// Adds a table with the given spec; fails if already present.
  Result<PartitionedTable*> AddTable(TableId id, PartitionSpec spec);

  /// Adds `table` (already materialized elsewhere) under its own id by
  /// shared ownership — the storage is *not* copied. Fails if the id is
  /// already present. This is how a migration carries unchanged tables into
  /// the next database version with zero data movement.
  Result<PartitionedTable*> ShareTable(std::shared_ptr<PartitionedTable> table);

  /// The shared-ownership handle for `id` (null if absent). Use when a new
  /// database version wants to reference this table without copying it.
  std::shared_ptr<PartitionedTable> TableHandle(TableId id) const;

  /// True when the table's storage is co-owned by another database version
  /// (ShareTable'd handle still alive). Shared tables are frozen: in-place
  /// mutation would be visible to every co-owning version.
  bool TableShared(TableId id) const;

  Result<PartitionedTable*> FindTable(const std::string& name);
  Result<const PartitionedTable*> FindTable(const std::string& name) const;
  PartitionedTable* GetTable(TableId id);
  const PartitionedTable* GetTable(TableId id) const;

  /// All partitioned tables (iteration order = insertion order).
  std::vector<PartitionedTable*> tables();
  std::vector<const PartitionedTable*> tables() const;

  /// |D^P|: total tuples across all partitioned tables.
  size_t TotalRows() const;
  size_t TotalBytes() const;

  /// Data-redundancy DR = |D^P| / |D| - 1 (§3.3), computed over the tables
  /// present in this partitioned database.
  double DataRedundancy() const;

 private:
  const Database* source_;
  std::map<TableId, std::shared_ptr<PartitionedTable>> tables_;
};

}  // namespace pref
