#include "storage/column.h"

#include "common/simd.h"

namespace pref {

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kInt64:
    case DataType::kDate:
      data_ = Ints{};
      break;
    case DataType::kDouble:
      data_ = Doubles{};
      break;
    case DataType::kString:
      data_ = Strings{};
      break;
  }
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

void Column::Reserve(size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

Status Column::AppendValue(const Value& v) {
  if (is_int()) {
    if (!v.is_int64()) return Status::Invalid("expected int64 value");
    AppendInt64(v.AsInt64());
  } else if (is_double()) {
    if (!v.is_double()) return Status::Invalid("expected double value");
    AppendDouble(v.AsDouble());
  } else {
    if (!v.is_string()) return Status::Invalid("expected string value");
    AppendString(v.AsString());
  }
  return Status::OK();
}

Value Column::GetValue(size_t row) const {
  if (is_int()) return Value(GetInt64(row));
  if (is_double()) return Value(GetDouble(row));
  return Value(GetString(row));
}

uint64_t Column::HashAt(size_t row) const {
  if (is_int()) return HashInt64(GetInt64(row));
  if (is_double()) {
    double d = GetDouble(row);
    int64_t bits;
    __builtin_memcpy(&bits, &d, sizeof(d));
    return HashInt64(bits);
  }
  return HashBytes(GetString(row));
}

bool Column::EqualAt(size_t row, const Column& other, size_t other_row) const {
  assert(type_ == other.type_ || (is_int() && other.is_int()));
  if (is_int()) return GetInt64(row) == other.GetInt64(other_row);
  if (is_double()) return GetDouble(row) == other.GetDouble(other_row);
  return GetString(row) == other.GetString(other_row);
}

void Column::AppendFrom(const Column& other, size_t other_row) {
  if (is_int()) {
    AppendInt64(other.GetInt64(other_row));
  } else if (is_double()) {
    AppendDouble(other.GetDouble(other_row));
  } else {
    AppendString(other.GetString(other_row));
  }
}

void Column::AppendGather(const Column& src, std::span<const uint32_t> sel) {
  if (is_int()) {
    auto& dst = std::get<Ints>(data_);
    const auto& s = src.ints();
    const size_t base = dst.size();
    dst.resize(base + sel.size());
    int64_t* out = dst.data() + base;
    for (size_t i = 0; i < sel.size(); ++i) out[i] = s[sel[i]];
  } else if (is_double()) {
    auto& dst = std::get<Doubles>(data_);
    const auto& s = src.doubles();
    const size_t base = dst.size();
    dst.resize(base + sel.size());
    double* out = dst.data() + base;
    for (size_t i = 0; i < sel.size(); ++i) out[i] = s[sel[i]];
  } else {
    auto& dst = std::get<Strings>(data_);
    const auto& s = src.strings();
    dst.reserve(dst.size() + sel.size());
    for (uint32_t r : sel) dst.push_back(s[r]);
  }
}

void Column::AppendColumn(const Column& src) {
  if (is_int()) {
    auto& dst = std::get<Ints>(data_);
    dst.insert(dst.end(), src.ints().begin(), src.ints().end());
  } else if (is_double()) {
    auto& dst = std::get<Doubles>(data_);
    dst.insert(dst.end(), src.doubles().begin(), src.doubles().end());
  } else {
    auto& dst = std::get<Strings>(data_);
    dst.insert(dst.end(), src.strings().begin(), src.strings().end());
  }
}

void Column::HashCombineInto(std::span<uint64_t> acc, size_t begin) const {
  // Int and double lanes vectorize (common/simd.h); strings stay row-at-a-
  // time but hash word-at-a-time inside HashBytes. All paths produce the
  // exact per-row values HashAt computes, at every dispatch level.
  if (is_int()) {
    simd::HashCombineInt64(ints().data() + begin, acc.size(), acc.data());
  } else if (is_double()) {
    simd::HashCombineF64(doubles().data() + begin, acc.size(), acc.data());
  } else {
    const std::string* v = strings().data() + begin;
    for (size_t i = 0; i < acc.size(); ++i) {
      acc[i] = HashCombine(acc[i], HashBytes(v[i]));
    }
  }
}

void Column::AddRowByteSizes(std::span<size_t> acc, size_t begin) const {
  if (!is_string()) {
    const size_t w = is_int() ? sizeof(int64_t) : sizeof(double);
    for (size_t i = 0; i < acc.size(); ++i) acc[i] += w;
    return;
  }
  const std::string* v = strings().data() + begin;
  for (size_t i = 0; i < acc.size(); ++i) acc[i] += v[i].size() + sizeof(size_t);
}

void Column::RemoveRows(const std::vector<bool>& keep) {
  std::visit(
      [&keep](auto& vec) {
        size_t out = 0;
        for (size_t i = 0; i < vec.size(); ++i) {
          if (keep[i]) {
            if (out != i) vec[out] = std::move(vec[i]);
            ++out;
          }
        }
        vec.resize(out);
      },
      data_);
}

Status Column::SetValue(size_t row, const Value& v) {
  if (is_int()) {
    if (!v.is_int64()) return Status::Invalid("expected int64 value");
    std::get<Ints>(data_)[row] = v.AsInt64();
  } else if (is_double()) {
    if (!v.is_double()) return Status::Invalid("expected double value");
    std::get<Doubles>(data_)[row] = v.AsDouble();
  } else {
    if (!v.is_string()) return Status::Invalid("expected string value");
    std::get<Strings>(data_)[row] = v.AsString();
  }
  return Status::OK();
}

size_t Column::ByteSize() const {
  if (is_int()) return ints().size() * sizeof(int64_t);
  if (is_double()) return doubles().size() * sizeof(double);
  size_t total = 0;
  for (const auto& s : strings()) total += s.size() + sizeof(size_t);
  return total;
}

size_t Column::RowByteSize(size_t row) const {
  if (is_int()) return sizeof(int64_t);
  if (is_double()) return sizeof(double);
  return GetString(row).size() + sizeof(size_t);
}

}  // namespace pref
