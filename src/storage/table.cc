#include "storage/table.h"

#include <algorithm>

namespace pref {

RowBlock::RowBlock(const TableDef* def) : def_(def) {
  columns_.reserve(def->columns.size());
  for (const auto& c : def->columns) columns_.emplace_back(c.type);
}

RowBlock::RowBlock(const std::vector<DataType>& types) {
  columns_.reserve(types.size());
  for (DataType t : types) columns_.emplace_back(t);
}

void RowBlock::Reserve(size_t n) {
  for (auto& c : columns_) c.Reserve(n);
}

void RowBlock::AppendRow(const RowBlock& src, size_t row) {
  assert(src.num_columns() == num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[static_cast<size_t>(i)].AppendFrom(src.column(i), row);
  }
}

void RowBlock::AppendGather(const RowBlock& src, std::span<const uint32_t> sel) {
  assert(src.num_columns() == num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[static_cast<size_t>(i)].AppendGather(src.column(i), sel);
  }
}

void RowBlock::AppendBlock(const RowBlock& src) {
  assert(src.num_columns() == num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[static_cast<size_t>(i)].AppendColumn(src.column(i));
  }
}

Status RowBlock::AppendRowValues(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != num_columns()) {
    return Status::Invalid("row arity ", values.size(), " != column count ",
                           num_columns());
  }
  for (int i = 0; i < num_columns(); ++i) {
    PREF_RETURN_NOT_OK(columns_[static_cast<size_t>(i)].AppendValue(
        values[static_cast<size_t>(i)]));
  }
  return Status::OK();
}

std::vector<Value> RowBlock::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.GetValue(row));
  return out;
}

uint64_t RowBlock::HashRow(const std::vector<ColumnId>& cols, size_t row) const {
  uint64_t h = 0x84222325cbf29ce4ULL;
  for (ColumnId c : cols) h = HashCombine(h, column(c).HashAt(row));
  return h;
}

void RowBlock::HashRows(const std::vector<ColumnId>& cols, std::span<uint64_t> out,
                        size_t begin) const {
  std::fill(out.begin(), out.end(), 0x84222325cbf29ce4ULL);
  for (ColumnId c : cols) column(c).HashCombineInto(out, begin);
}

void RowBlock::RowByteSizes(std::span<size_t> out, size_t begin) const {
  std::fill(out.begin(), out.end(), 0);
  for (const auto& c : columns_) c.AddRowByteSizes(out, begin);
}

bool RowBlock::RowsEqual(const std::vector<ColumnId>& cols, size_t row,
                         const RowBlock& other,
                         const std::vector<ColumnId>& other_cols,
                         size_t other_row) const {
  assert(cols.size() == other_cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    if (!column(cols[i]).EqualAt(row, other.column(other_cols[i]), other_row)) {
      return false;
    }
  }
  return true;
}

size_t RowBlock::ByteSize() const {
  size_t total = 0;
  for (const auto& c : columns_) total += c.ByteSize();
  return total;
}

size_t RowBlock::RowByteSize(size_t row) const {
  size_t total = 0;
  for (const auto& c : columns_) total += c.RowByteSize(row);
  return total;
}

Database::Database(Schema schema)
    : schema_(std::make_unique<Schema>(std::move(schema))) {
  tables_.reserve(static_cast<size_t>(schema_->num_tables()));
  for (const auto& def : schema_->tables()) tables_.emplace_back(&def);
}

Result<Table*> Database::FindTable(const std::string& name) {
  PREF_ASSIGN_OR_RAISE(TableId id, schema_->FindTable(name));
  return &table(id);
}

Result<const Table*> Database::FindTable(const std::string& name) const {
  PREF_ASSIGN_OR_RAISE(TableId id, schema_->FindTable(name));
  return &table(id);
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t.num_rows();
  return total;
}

size_t Database::TotalBytes() const {
  size_t total = 0;
  for (const auto& t : tables_) total += t.ByteSize();
  return total;
}

}  // namespace pref
