#include "storage/partition.h"

#include <algorithm>
#include <sstream>

namespace pref {

const char* PartitionMethodName(PartitionMethod m) {
  switch (m) {
    case PartitionMethod::kNone:
      return "NONE";
    case PartitionMethod::kHash:
      return "HASH";
    case PartitionMethod::kRange:
      return "RANGE";
    case PartitionMethod::kRoundRobin:
      return "ROUND_ROBIN";
    case PartitionMethod::kReplicated:
      return "REPLICATED";
    case PartitionMethod::kPref:
      return "PREF";
  }
  return "UNKNOWN";
}

std::string PartitionSpec::ToString(const Schema& schema, TableId self) const {
  std::ostringstream ss;
  ss << PartitionMethodName(method);
  if ((method == PartitionMethod::kHash || method == PartitionMethod::kRange) &&
      !attributes.empty()) {
    ss << " BY (";
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (i) ss << ", ";
      ss << schema.table(self).column(attributes[i]).name;
    }
    ss << ")";
  } else if (method == PartitionMethod::kPref && predicate.has_value()) {
    ss << " ON " << schema.table(referenced_table).name << " BY (";
    const auto& p = *predicate;
    for (size_t i = 0; i < p.left_columns.size(); ++i) {
      if (i) ss << " AND ";
      ss << schema.table(p.left_table).column(p.left_columns[i]).name << " = "
         << schema.table(p.right_table).column(p.right_columns[i]).name;
    }
    ss << ")";
  }
  ss << " x" << num_partitions;
  return ss.str();
}

const std::vector<int> PartitionIndex::kEmpty;

void PartitionIndex::Add(const Key& key, int part) {
  auto& parts = map_[key];
  if (std::find(parts.begin(), parts.end(), part) == parts.end()) {
    parts.push_back(part);
  }
}

const std::vector<int>& PartitionIndex::Lookup(const Key& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

PartitionedTable::PartitionedTable(const TableDef* def, PartitionSpec spec)
    : def_(def), spec_(std::move(spec)) {
  partitions_.reserve(static_cast<size_t>(spec_.num_partitions));
  for (int i = 0; i < spec_.num_partitions; ++i) partitions_.emplace_back(def_);
}

size_t PartitionedTable::TotalRows() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p.rows.num_rows();
  return total;
}

size_t PartitionedTable::DistinctRows() const {
  size_t total = 0;
  for (const auto& p : partitions_) {
    if (p.dup.empty()) {
      total += p.rows.num_rows();
    } else {
      total += p.dup.CountZeros();
    }
  }
  // A replicated table stores every row on every node but logically holds
  // the base cardinality once.
  if (spec_.method == PartitionMethod::kReplicated && num_partitions() > 0) {
    return total / static_cast<size_t>(num_partitions());
  }
  return total;
}

size_t PartitionedTable::TotalBytes() const {
  size_t total = 0;
  for (const auto& p : partitions_) total += p.rows.ByteSize();
  return total;
}

PartitionIndex* PartitionedTable::AddPartitionIndex(
    const std::vector<ColumnId>& columns) {
  indexes_.emplace_back(columns, std::make_unique<PartitionIndex>());
  return indexes_.back().second.get();
}

const PartitionIndex* PartitionedTable::FindPartitionIndex(
    const std::vector<ColumnId>& columns) const {
  for (const auto& [cols, idx] : indexes_) {
    if (cols == columns) return idx.get();
  }
  return nullptr;
}

Result<PartitionedTable*> PartitionedDatabase::AddTable(TableId id,
                                                        PartitionSpec spec) {
  if (tables_.count(id)) {
    return Status::AlreadyExists("table '", schema().table(id).name,
                                 "' already partitioned");
  }
  auto table =
      std::make_shared<PartitionedTable>(&schema().table(id), std::move(spec));
  PartitionedTable* ptr = table.get();
  tables_[id] = std::move(table);
  return ptr;
}

Result<PartitionedTable*> PartitionedDatabase::ShareTable(
    std::shared_ptr<PartitionedTable> table) {
  if (table == nullptr) return Status::Invalid("null table handle");
  TableId id = table->id();
  if (tables_.count(id)) {
    return Status::AlreadyExists("table '", schema().table(id).name,
                                 "' already partitioned");
  }
  PartitionedTable* ptr = table.get();
  tables_[id] = std::move(table);
  return ptr;
}

std::shared_ptr<PartitionedTable> PartitionedDatabase::TableHandle(
    TableId id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second;
}

bool PartitionedDatabase::TableShared(TableId id) const {
  auto it = tables_.find(id);
  return it != tables_.end() && it->second.use_count() > 1;
}

Result<PartitionedTable*> PartitionedDatabase::FindTable(const std::string& name) {
  PREF_ASSIGN_OR_RAISE(TableId id, schema().FindTable(name));
  PartitionedTable* t = GetTable(id);
  if (t == nullptr) return Status::NotFound("table '", name, "' not partitioned");
  return t;
}

Result<const PartitionedTable*> PartitionedDatabase::FindTable(
    const std::string& name) const {
  PREF_ASSIGN_OR_RAISE(TableId id, schema().FindTable(name));
  const PartitionedTable* t = GetTable(id);
  if (t == nullptr) return Status::NotFound("table '", name, "' not partitioned");
  return t;
}

PartitionedTable* PartitionedDatabase::GetTable(TableId id) {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

const PartitionedTable* PartitionedDatabase::GetTable(TableId id) const {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<PartitionedTable*> PartitionedDatabase::tables() {
  std::vector<PartitionedTable*> out;
  out.reserve(tables_.size());
  for (auto& [id, t] : tables_) out.push_back(t.get());
  return out;
}

std::vector<const PartitionedTable*> PartitionedDatabase::tables() const {
  std::vector<const PartitionedTable*> out;
  out.reserve(tables_.size());
  for (const auto& [id, t] : tables_) out.push_back(t.get());
  return out;
}

size_t PartitionedDatabase::TotalRows() const {
  size_t total = 0;
  for (const auto& [id, t] : tables_) total += t->TotalRows();
  return total;
}

size_t PartitionedDatabase::TotalBytes() const {
  size_t total = 0;
  for (const auto& [id, t] : tables_) total += t->TotalBytes();
  return total;
}

double PartitionedDatabase::DataRedundancy() const {
  size_t original = 0;
  for (const auto& [id, t] : tables_) {
    original += source_->table(id).num_rows();
  }
  if (original == 0) return 0.0;
  return static_cast<double>(TotalRows()) / static_cast<double>(original) - 1.0;
}

}  // namespace pref
