// Columnar storage primitive: one typed value vector.

#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"

namespace pref {

/// \brief A single column: a typed, contiguous vector of values.
///
/// Int64 and Date share the int64 representation. Access is either typed
/// (fast path used by the executor and the partitioners) or via boxed
/// Value at API boundaries.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const;
  bool empty() const { return size() == 0; }

  void Reserve(size_t n);

  void AppendInt64(int64_t v) { std::get<Ints>(data_).push_back(v); }
  void AppendDouble(double v) { std::get<Doubles>(data_).push_back(v); }
  void AppendString(std::string v) {
    std::get<Strings>(data_).push_back(std::move(v));
  }
  /// Appends a boxed value; the value's runtime type must match the column.
  Status AppendValue(const Value& v);

  int64_t GetInt64(size_t row) const { return std::get<Ints>(data_)[row]; }
  double GetDouble(size_t row) const { return std::get<Doubles>(data_)[row]; }
  const std::string& GetString(size_t row) const {
    return std::get<Strings>(data_)[row];
  }

  Value GetValue(size_t row) const;
  uint64_t HashAt(size_t row) const;
  bool EqualAt(size_t row, const Column& other, size_t other_row) const;

  /// Appends other[other_row] to this column; types must match.
  void AppendFrom(const Column& other, size_t other_row);

  /// Gather kernel: appends src[sel[0]], src[sel[1]], ... in selection
  /// order, operating directly on the typed payload (no Value boxing).
  /// The representations must match (int/date interchangeably).
  void AppendGather(const Column& src, std::span<const uint32_t> sel);

  /// Appends the entire payload of `src` (a gather with the identity
  /// selection, without materializing it).
  void AppendColumn(const Column& src);

  /// Batch hash kernel: acc[i] = HashCombine(acc[i], HashAt(begin + i)) for
  /// i in [0, acc.size()). Runs column-at-a-time over the typed payload;
  /// bit-identical to calling HashAt row by row.
  void HashCombineInto(std::span<uint64_t> acc, size_t begin = 0) const;

  /// Batch size kernel: acc[i] += RowByteSize(begin + i). Fixed-width
  /// columns add a constant without touching the payload.
  void AddRowByteSizes(std::span<size_t> acc, size_t begin = 0) const;

  /// Compacts the column, keeping only rows where keep[i] is true.
  void RemoveRows(const std::vector<bool>& keep);

  /// Overwrites row `row` with `v` (type-checked).
  Status SetValue(size_t row, const Value& v);

  /// Approximate in-memory footprint in bytes (used by the network cost
  /// model and the DR size accounting).
  size_t ByteSize() const;

  /// Bytes occupied by a single row of this column.
  size_t RowByteSize(size_t row) const;

  bool is_int() const { return std::holds_alternative<Ints>(data_); }
  bool is_double() const { return std::holds_alternative<Doubles>(data_); }
  bool is_string() const { return std::holds_alternative<Strings>(data_); }

  /// Direct access to the int64 payload (int64/date columns only).
  const std::vector<int64_t>& ints() const { return std::get<Ints>(data_); }
  const std::vector<double>& doubles() const { return std::get<Doubles>(data_); }
  const std::vector<std::string>& strings() const { return std::get<Strings>(data_); }

 private:
  using Ints = std::vector<int64_t>;
  using Doubles = std::vector<double>;
  using Strings = std::vector<std::string>;

  DataType type_;
  std::variant<Ints, Doubles, Strings> data_;
};

}  // namespace pref
