#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "sql/lexer.h"

namespace pref {
namespace sql {

namespace {

CompareOp NegateOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
    case CompareOp::kBetween:
      return CompareOp::kBetween;  // caller rejects NOT BETWEEN
  }
  return op;
}

struct SelectItem {
  bool is_agg = false;
  AggFunc func = AggFunc::kCountStar;
  std::string column;  // empty for COUNT(*)
  std::string name;
};

class Parser {
 public:
  Parser(const Schema& schema, std::vector<Token> tokens, std::string name)
      : schema_(schema), tokens_(std::move(tokens)) {
    spec_.name = std::move(name);
  }

  Result<QuerySpec> Parse() {
    PREF_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    PREF_RETURN_NOT_OK(ParseSelectList());
    PREF_RETURN_NOT_OK(ExpectKeyword("FROM"));
    PREF_RETURN_NOT_OK(ParseFrom());
    if (AcceptKeyword("WHERE")) {
      PREF_ASSIGN_OR_RAISE(Dnf where, ParseOr());
      PREF_RETURN_NOT_OK(AttachWhere(std::move(where)));
    }
    if (AcceptKeyword("GROUP")) {
      PREF_RETURN_NOT_OK(ExpectKeyword("BY"));
      PREF_RETURN_NOT_OK(ParseGroupBy());
    }
    if (AcceptKeyword("HAVING")) {
      PREF_ASSIGN_OR_RAISE(spec_.having, ParseOr());
    }
    if (AcceptKeyword("ORDER")) {
      PREF_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        PREF_ASSIGN_OR_RAISE(std::string col, ExpectIdentifier("order-by column"));
        bool desc = false;
        if (AcceptKeyword("DESC")) {
          desc = true;
        } else {
          AcceptKeyword("ASC");
        }
        spec_.order_by.emplace_back(std::move(col), desc);
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) return Error("expected LIMIT count");
      spec_.limit = Next().int_value;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    PREF_RETURN_NOT_OK(AssembleOutputs());
    return spec_;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }
  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Accept(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Error("expected ", kw);
    return Status::OK();
  }
  Status Expect(TokenKind kind, const char* what) {
    if (!Accept(kind)) return Error("expected ", what);
    return Status::OK();
  }
  template <typename... Args>
  Status Error(Args&&... args) const {
    return Status::Invalid("SQL parse error at offset ", Peek().position, ": ",
                           std::forward<Args>(args)...);
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) return Error("expected ", what);
    return Next().text;
  }

  // --- SELECT ----------------------------------------------------------
  Status ParseSelectList() {
    do {
      SelectItem item;
      if (Peek().kind == TokenKind::kStar) {
        ++pos_;
        select_star_ = true;
        continue;
      }
      if (Peek().kind == TokenKind::kKeyword &&
          (Peek().text == "SUM" || Peek().text == "COUNT" || Peek().text == "AVG" ||
           Peek().text == "MIN" || Peek().text == "MAX")) {
        std::string func = Next().text;
        PREF_RETURN_NOT_OK(Expect(TokenKind::kLParen, "("));
        item.is_agg = true;
        if (func == "SUM") item.func = AggFunc::kSum;
        if (func == "AVG") item.func = AggFunc::kAvg;
        if (func == "MIN") item.func = AggFunc::kMin;
        if (func == "MAX") item.func = AggFunc::kMax;
        if (func == "COUNT") {
          if (Accept(TokenKind::kStar)) {
            item.func = AggFunc::kCountStar;
            PREF_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
            item.name = "count";
            PREF_RETURN_NOT_OK(MaybeAlias(&item));
            items_.push_back(std::move(item));
            continue;
          }
          item.func = AggFunc::kCount;
        }
        PREF_ASSIGN_OR_RAISE(item.column, ExpectIdentifier("aggregate argument"));
        PREF_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
        std::string base = item.column;
        std::replace(base.begin(), base.end(), '.', '_');
        item.name = func;
        std::transform(item.name.begin(), item.name.end(), item.name.begin(),
                       [](char c) { return static_cast<char>(std::tolower(c)); });
        item.name += "_" + base;
        PREF_RETURN_NOT_OK(MaybeAlias(&item));
        items_.push_back(std::move(item));
        continue;
      }
      PREF_ASSIGN_OR_RAISE(item.column, ExpectIdentifier("select column"));
      item.name = item.column;
      PREF_RETURN_NOT_OK(MaybeAlias(&item));
      items_.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));
    return Status::OK();
  }

  Status MaybeAlias(SelectItem* item) {
    if (AcceptKeyword("AS")) {
      PREF_ASSIGN_OR_RAISE(item->name, ExpectIdentifier("alias"));
    }
    return Status::OK();
  }

  // --- FROM / JOIN ------------------------------------------------------
  Status ParseFrom() {
    PREF_RETURN_NOT_OK(ParseTableRef());
    for (;;) {
      JoinType type = JoinType::kInner;
      if (AcceptKeyword("SEMI")) {
        type = JoinType::kSemi;
      } else if (AcceptKeyword("ANTI")) {
        type = JoinType::kAnti;
      } else {
        AcceptKeyword("INNER");
      }
      if (!AcceptKeyword("JOIN")) {
        if (type != JoinType::kInner) return Error("expected JOIN");
        break;
      }
      PREF_RETURN_NOT_OK(ParseTableRef());
      PREF_RETURN_NOT_OK(ExpectKeyword("ON"));
      JoinStep step;
      step.table_index = static_cast<int>(spec_.tables.size()) - 1;
      step.type = type;
      do {
        PREF_ASSIGN_OR_RAISE(std::string a, ExpectIdentifier("join column"));
        PREF_RETURN_NOT_OK(Expect(TokenKind::kEq, "="));
        PREF_ASSIGN_OR_RAISE(std::string b, ExpectIdentifier("join column"));
        // Orient: the side belonging to the newly joined table is "right".
        PREF_ASSIGN_OR_RAISE(int ta, TableOf(a));
        PREF_ASSIGN_OR_RAISE(int tb, TableOf(b));
        if (tb == step.table_index && ta != step.table_index) {
          step.left_columns.push_back(a);
          step.right_columns.push_back(b);
        } else if (ta == step.table_index && tb != step.table_index) {
          step.left_columns.push_back(b);
          step.right_columns.push_back(a);
        } else {
          return Error("join condition must link the joined table to an earlier one");
        }
      } while (AcceptKeyword("AND"));
      spec_.joins.push_back(std::move(step));
    }
    return Status::OK();
  }

  Status ParseTableRef() {
    PREF_ASSIGN_OR_RAISE(std::string table, ExpectIdentifier("table name"));
    PREF_RETURN_NOT_OK(schema_.FindTable(table).status());
    std::string alias;
    if (Peek().kind == TokenKind::kIdentifier) alias = Next().text;
    spec_.tables.push_back({table, alias});
    spec_.table_filters.emplace_back();
    return Status::OK();
  }

  /// Table-ref index owning qualified/bare column `name`.
  Result<int> TableOf(const std::string& name) const {
    for (size_t i = 0; i < spec_.tables.size(); ++i) {
      const TableRef& ref = spec_.tables[i];
      std::string alias = ref.alias.empty() ? ref.table : ref.alias;
      std::string bare = name;
      if (name.size() > alias.size() + 1 && name.compare(0, alias.size(), alias) == 0 &&
          name[alias.size()] == '.') {
        bare = name.substr(alias.size() + 1);
      } else if (alias != ref.table) {
        continue;
      }
      TableId id = *schema_.FindTable(ref.table);
      if (schema_.table(id).FindColumn(bare).ok()) return static_cast<int>(i);
    }
    return Error("column '", name, "' not resolvable");
  }

  // --- WHERE (recursive descent to DNF) ---------------------------------
  Result<Dnf> ParseOr() {
    PREF_ASSIGN_OR_RAISE(Dnf left, ParseAnd());
    while (AcceptKeyword("OR")) {
      PREF_ASSIGN_OR_RAISE(Dnf right, ParseAnd());
      for (auto& d : right.disjuncts) left.disjuncts.push_back(std::move(d));
    }
    return left;
  }

  Result<Dnf> ParseAnd() {
    PREF_ASSIGN_OR_RAISE(Dnf left, ParsePrimary());
    while (AcceptKeyword("AND")) {
      PREF_ASSIGN_OR_RAISE(Dnf right, ParsePrimary());
      // Distribute: (A1|A2) AND (B1|B2) = A1B1|A1B2|A2B1|A2B2.
      Dnf combined;
      for (const auto& a : left.disjuncts) {
        for (const auto& b : right.disjuncts) {
          auto conj = a;
          conj.insert(conj.end(), b.begin(), b.end());
          combined.disjuncts.push_back(std::move(conj));
        }
      }
      left = std::move(combined);
    }
    return left;
  }

  Result<Dnf> ParsePrimary() {
    if (AcceptKeyword("NOT")) {
      if (Accept(TokenKind::kLParen)) {
        return Error("NOT over parenthesized expressions is not supported");
      }
      PREF_ASSIGN_OR_RAISE(SimplePredicate pred, ParsePredicate());
      if (pred.op == CompareOp::kBetween) {
        return Error("NOT BETWEEN is not supported");
      }
      pred.op = NegateOp(pred.op);
      return Dnf::And({std::move(pred)});
    }
    if (Accept(TokenKind::kLParen)) {
      PREF_ASSIGN_OR_RAISE(Dnf inner, ParseOr());
      PREF_RETURN_NOT_OK(Expect(TokenKind::kRParen, ")"));
      return inner;
    }
    PREF_ASSIGN_OR_RAISE(SimplePredicate pred, ParsePredicate());
    return Dnf::And({std::move(pred)});
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger:
        ++pos_;
        return Value(t.int_value);
      case TokenKind::kFloat:
        ++pos_;
        return Value(t.float_value);
      case TokenKind::kString:
        ++pos_;
        return Value(t.text);
      default:
        return Error("expected literal");
    }
  }

  Result<SimplePredicate> ParsePredicate() {
    PREF_ASSIGN_OR_RAISE(std::string column, ExpectIdentifier("column"));
    SimplePredicate pred;
    pred.column = std::move(column);
    if (AcceptKeyword("BETWEEN")) {
      pred.op = CompareOp::kBetween;
      PREF_ASSIGN_OR_RAISE(pred.value, ParseLiteral());
      PREF_RETURN_NOT_OK(ExpectKeyword("AND"));
      PREF_ASSIGN_OR_RAISE(pred.value_hi, ParseLiteral());
      return pred;
    }
    switch (Peek().kind) {
      case TokenKind::kEq:
        pred.op = CompareOp::kEq;
        break;
      case TokenKind::kNe:
        pred.op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        pred.op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        pred.op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        pred.op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        pred.op = CompareOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    ++pos_;
    PREF_ASSIGN_OR_RAISE(pred.value, ParseLiteral());
    return pred;
  }

  /// Pushes single-table pieces of the WHERE clause down to table filters;
  /// the remainder becomes the residual filter.
  Status AttachWhere(Dnf where) {
    if (where.disjuncts.size() == 1) {
      // Split the conjunction by owning table.
      std::map<int, std::vector<SimplePredicate>> by_table;
      for (auto& pred : where.disjuncts[0]) {
        PREF_ASSIGN_OR_RAISE(int t, TableOf(pred.column));
        by_table[t].push_back(std::move(pred));
      }
      for (auto& [t, preds] : by_table) {
        Dnf d;
        d.disjuncts.push_back(std::move(preds));
        spec_.table_filters[static_cast<size_t>(t)] = std::move(d);
      }
      return Status::OK();
    }
    // Multiple disjuncts all over one table -> that table's filter.
    int common = -1;
    bool single_table = true;
    for (const auto& conj : where.disjuncts) {
      for (const auto& pred : conj) {
        PREF_ASSIGN_OR_RAISE(int t, TableOf(pred.column));
        if (common == -1) common = t;
        if (t != common) single_table = false;
      }
    }
    if (single_table && common >= 0) {
      spec_.table_filters[static_cast<size_t>(common)] = std::move(where);
    } else {
      spec_.residual_filter = std::move(where);
    }
    return Status::OK();
  }

  // --- GROUP BY / outputs -----------------------------------------------
  Status ParseGroupBy() {
    do {
      PREF_ASSIGN_OR_RAISE(std::string col, ExpectIdentifier("group-by column"));
      spec_.group_by.push_back(std::move(col));
    } while (Accept(TokenKind::kComma));
    return Status::OK();
  }

  Status AssembleOutputs() {
    bool any_agg = false;
    for (const auto& item : items_) any_agg |= item.is_agg;
    if (any_agg || !spec_.group_by.empty()) {
      for (const auto& item : items_) {
        if (item.is_agg) {
          spec_.aggregates.push_back({item.func, item.column, item.name});
        } else {
          // Bare columns must be grouping keys.
          bool grouped = std::find(spec_.group_by.begin(), spec_.group_by.end(),
                                   item.column) != spec_.group_by.end();
          if (!grouped) {
            return Status::Invalid("column '", item.column,
                                   "' must appear in GROUP BY");
          }
        }
      }
      if (spec_.aggregates.empty()) {
        return Status::Invalid("GROUP BY without aggregates is not supported");
      }
    } else if (!select_star_) {
      for (const auto& item : items_) spec_.projection.push_back(item.column);
    }
    return Status::OK();
  }

  const Schema& schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  QuerySpec spec_;
  std::vector<SelectItem> items_;
  bool select_star_ = false;
};

}  // namespace

Result<QuerySpec> ParseQuery(const Schema& schema, const std::string& query_text,
                             const std::string& query_name) {
  PREF_ASSIGN_OR_RAISE(auto tokens, Tokenize(query_text));
  Parser parser(schema, std::move(tokens), query_name);
  return parser.Parse();
}

}  // namespace sql
}  // namespace pref
