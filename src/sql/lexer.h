// SQL lexer for the engine's SPJA subset.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace pref {
namespace sql {

enum class TokenKind : uint8_t {
  kIdentifier,  // foo, foo.bar (dotted identifiers are one token)
  kKeyword,     // SELECT, FROM, ... (uppercased in `text`)
  kInteger,
  kFloat,
  kString,  // 'quoted' (quotes stripped)
  kComma,
  kLParen,
  kRParen,
  kStar,
  kEq,
  kNe,  // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset for error messages
};

/// Tokenizes `input`; keywords are recognized case-insensitively and
/// reported uppercased.
Result<std::vector<Token>> Tokenize(const std::string& input);

/// True if `word` (uppercase) is a reserved keyword.
bool IsKeyword(const std::string& upper);

}  // namespace sql
}  // namespace pref
