// SQL front end: parses the engine's SPJA subset into a QuerySpec.
//
// Supported grammar (case-insensitive keywords):
//
//   SELECT select_item [, ...]
//   FROM table [alias]
//        { [INNER | SEMI | ANTI] JOIN table [alias] ON equality [AND ...] }*
//   [WHERE condition]
//   [GROUP BY column [, ...]]
//
//   select_item := column | agg(column) [AS name] | COUNT(*) [AS name]
//   agg         := SUM | COUNT | AVG | MIN | MAX
//   equality    := column = column
//   condition   := boolean combination (AND / OR / NOT / parentheses) of
//                  column op literal | column BETWEEN literal AND literal
//   op          := = | <> | != | < | <= | > | >=
//
// The WHERE condition is normalized to DNF; conjunction branches that
// reference a single table are pushed down to that table's scan, the rest
// become the post-join residual filter.

#pragma once

#include <string>

#include "engine/query.h"

namespace pref {
namespace sql {

/// Parses `query_text` against `schema` into an executable QuerySpec.
Result<QuerySpec> ParseQuery(const Schema& schema, const std::string& query_text,
                             const std::string& query_name = "sql");

}  // namespace sql
}  // namespace pref
