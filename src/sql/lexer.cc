#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace pref {
namespace sql {

namespace {
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE",   "GROUP", "BY",    "JOIN", "SEMI",
      "ANTI",   "ON",    "AND",     "OR",    "AS",    "SUM",  "COUNT",
      "AVG",    "MIN",   "MAX",     "BETWEEN", "NOT", "INNER",
      "HAVING", "ORDER", "LIMIT", "ASC", "DESC"};
  return kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}
}  // namespace

bool IsKeyword(const std::string& upper) { return Keywords().count(upper) > 0; }

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenKind kind, std::string text, size_t pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      // Identifier, possibly dotted (alias.column).
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_' || input[j] == '.')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (word.find('.') == std::string::npos && IsKeyword(upper)) {
        push(TokenKind::kKeyword, upper, start);
      } else {
        push(TokenKind::kIdentifier, word, start);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') is_float = true;
        ++j;
      }
      std::string num = input.substr(i, j - i);
      Token t;
      t.position = start;
      t.text = num;
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::stod(num);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::stoll(num);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j >= n) {
        return Status::Invalid("unterminated string literal at offset ", start);
      }
      push(TokenKind::kString, input.substr(i + 1, j - i - 1), start);
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        break;
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kNe, "!=", start);
          i += 2;
        } else {
          return Status::Invalid("unexpected '!' at offset ", start);
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenKind::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        break;
      default:
        return Status::Invalid("unexpected character '", std::string(1, c),
                               "' at offset ", start);
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sql
}  // namespace pref
