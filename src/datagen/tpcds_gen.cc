#include "datagen/tpcds_gen.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "catalog/tpcds_schema.h"
#include "common/random.h"

namespace pref {

namespace {

/// Per-row value override for selected columns.
using Override = std::function<Value(int64_t row)>;

struct GenContext {
  Database* db;
  Rng* rng;
  double skew;
  /// (table, column) -> referenced table for single-column FKs.
  std::map<std::pair<TableId, ColumnId>, TableId> fk_of_column;
  /// Generated row counts (referenced tables must be filled first).
  std::unordered_map<TableId, int64_t> row_counts;
  /// Zipf generators keyed by (fact column, domain size), created lazily.
  std::map<std::pair<TableId, ColumnId>, std::unique_ptr<ZipfGenerator>> zipfs;
};

int64_t ScaledCard(const std::string& name, double sf) {
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(
             static_cast<double>(TpcdsBaseCardinality(name)) * sf)));
}

/// Fills `n` rows of `name`. PK head column gets the sequence 1..n; FK
/// columns reference already-filled tables (Zipf-skewed for fact tables,
/// uniform for dimensions, ~2% orphan -1 keys on fact tables); other
/// columns get type-appropriate payload. `overrides` wins over all rules.
void FillTable(GenContext* ctx, const std::string& name, int64_t n,
               const std::map<std::string, Override>& overrides = {}) {
  Table* t = *ctx->db->FindTable(name);
  const TableDef& def = t->def();
  const bool is_fact = TpcdsIsFactTable(name);
  RowBlock& data = t->data();
  data.Reserve(static_cast<size_t>(n));

  // Resolve overrides to column ids.
  std::unordered_map<ColumnId, const Override*> ov;
  for (const auto& [col, fn] : overrides) {
    ov[*def.FindColumn(col)] = &fn;
  }

  const ColumnId pk_head =
      def.primary_key.empty() ? -1 : def.primary_key.front();

  for (int64_t row = 1; row <= n; ++row) {
    for (ColumnId c = 0; c < def.num_columns(); ++c) {
      Column& col = data.column(c);
      if (auto it = ov.find(c); it != ov.end()) {
        PREF_CHECK_OK(col.AppendValue((*it->second)(row)));
        continue;
      }
      auto fk_it = ctx->fk_of_column.find({def.id, c});
      if (fk_it != ctx->fk_of_column.end()) {
        int64_t domain = ctx->row_counts.at(fk_it->second);
        int64_t v;
        if (is_fact) {
          auto& z = ctx->zipfs[{def.id, c}];
          if (!z) z = std::make_unique<ZipfGenerator>(domain, ctx->skew);
          // ~2% orphan keys exercise PREF condition (2) round-robin.
          v = ctx->rng->Bernoulli(0.02) ? -1 : z->Next(ctx->rng);
        } else {
          v = ctx->rng->Uniform(1, domain);
        }
        col.AppendInt64(v);
        continue;
      }
      if (c == pk_head && col.is_int()) {
        col.AppendInt64(row);
        continue;
      }
      // Payload columns.
      if (col.is_int()) {
        col.AppendInt64(ctx->rng->Uniform(0, 9999));
      } else if (col.is_double()) {
        col.AppendDouble(static_cast<double>(ctx->rng->Uniform(0, 99999)) / 100.0);
      } else {
        col.AppendString(def.column(c).name + "_" +
                         std::to_string(ctx->rng->Uniform(0, 19)));
      }
    }
  }
  ctx->row_counts[def.id] = n;
}

/// Overrides that make a returns table reference real (item, order) pairs
/// of its sales parent. Draws a random parent row per return.
std::map<std::string, Override> ReturnsLinkedTo(GenContext* ctx,
                                                const std::string& sales_table,
                                                const std::string& item_col,
                                                const std::string& order_col,
                                                ColumnId sales_item_col,
                                                ColumnId sales_order_col) {
  const Table* sales = *ctx->db->FindTable(sales_table);
  const RowBlock* block = &sales->data();
  int64_t n_sales = static_cast<int64_t>(block->num_rows());
  Rng* rng = ctx->rng;
  // Draw the parent row once per return row; both overrides must agree, so
  // cache the chosen row per `row` value.
  auto chosen = std::make_shared<std::unordered_map<int64_t, size_t>>();
  auto pick = [rng, n_sales, chosen](int64_t row) {
    auto it = chosen->find(row);
    if (it != chosen->end()) return it->second;
    size_t r = static_cast<size_t>(rng->Uniform(0, n_sales - 1));
    (*chosen)[row] = r;
    return r;
  };
  std::map<std::string, Override> ov;
  ov[item_col] = [block, pick, sales_item_col](int64_t row) {
    return Value(block->column(sales_item_col).GetInt64(pick(row)));
  };
  ov[order_col] = [block, pick, sales_order_col](int64_t row) {
    return Value(block->column(sales_order_col).GetInt64(pick(row)));
  };
  return ov;
}

}  // namespace

Result<Database> GenerateTpcds(const TpcdsGenOptions& options) {
  if (options.scale_factor <= 0) {
    return Status::Invalid("scale_factor must be positive, got ",
                           options.scale_factor);
  }
  if (options.skew < 0 || options.skew >= 1.0) {
    return Status::Invalid("skew must be in [0, 1), got ", options.skew);
  }
  Database db(MakeTpcdsSchema());
  Rng rng(options.seed);
  GenContext ctx;
  ctx.db = &db;
  ctx.rng = &rng;
  ctx.skew = options.skew;

  // Index single-column FKs; composite FKs (sales<->returns) are handled
  // via ReturnsLinkedTo overrides.
  for (const auto& fk : db.schema().foreign_keys()) {
    if (fk.src_columns.size() == 1) {
      ctx.fk_of_column[{fk.src_table, fk.src_columns[0]}] = fk.dst_table;
    }
  }

  const double sf = options.scale_factor;
  auto card = [&](const char* t) { return ScaledCard(t, sf); };

  // Dimensions in dependency order (referenced before referencing).
  // date_dim and time_dim get calendar-shaped payloads (queries filter on
  // d_year / d_moy / t_hour).
  FillTable(&ctx, "date_dim", card("date_dim"),
            {{"d_year", [](int64_t row) { return Value(1998 + (row - 1) / 365); }},
             // Months cycle quickly so every month exists even at tiny
             // scale factors.
             {"d_moy", [](int64_t row) { return Value((row - 1) % 12 + 1); }},
             {"d_dom", [](int64_t row) { return Value((row - 1) % 28 + 1); }}});
  FillTable(&ctx, "time_dim", card("time_dim"),
            {{"t_hour", [](int64_t row) { return Value((row - 1) % 24); }},
             {"t_minute", [](int64_t row) { return Value(((row - 1) / 24) % 60); }}});
  for (const char* t :
       {"item", "income_band", "customer_address",
        "customer_demographics", "household_demographics", "store", "call_center",
        "catalog_page", "web_site", "web_page", "warehouse", "promotion", "reason",
        "ship_mode", "customer"}) {
    FillTable(&ctx, t, card(t));
  }

  // Fact tables: ticket/order numbers are the row sequence so composite
  // keys (item_sk, number) are unique per sales row.
  FillTable(&ctx, "store_sales", card("store_sales"),
            {{"ss_ticket_number", [](int64_t row) { return Value(row); }}});
  FillTable(&ctx, "catalog_sales", card("catalog_sales"),
            {{"cs_order_number", [](int64_t row) { return Value(row); }}});
  FillTable(&ctx, "web_sales", card("web_sales"),
            {{"ws_order_number", [](int64_t row) { return Value(row); }}});
  FillTable(&ctx, "inventory", card("inventory"));

  // Returns reference real sales rows.
  {
    const TableDef& ss = db.table(*db.schema().FindTable("store_sales")).def();
    auto ov = ReturnsLinkedTo(&ctx, "store_sales", "sr_item_sk",
                              "sr_ticket_number", *ss.FindColumn("ss_item_sk"),
                              *ss.FindColumn("ss_ticket_number"));
    FillTable(&ctx, "store_returns", card("store_returns"), ov);
  }
  {
    const TableDef& cs = db.table(*db.schema().FindTable("catalog_sales")).def();
    auto ov = ReturnsLinkedTo(&ctx, "catalog_sales", "cr_item_sk",
                              "cr_order_number", *cs.FindColumn("cs_item_sk"),
                              *cs.FindColumn("cs_order_number"));
    FillTable(&ctx, "catalog_returns", card("catalog_returns"), ov);
  }
  {
    const TableDef& ws = db.table(*db.schema().FindTable("web_sales")).def();
    auto ov = ReturnsLinkedTo(&ctx, "web_sales", "wr_item_sk", "wr_order_number",
                              *ws.FindColumn("ws_item_sk"),
                              *ws.FindColumn("ws_order_number"));
    FillTable(&ctx, "web_returns", card("web_returns"), ov);
  }

  return db;
}

}  // namespace pref
