// TPC-DS data generator: 24-table snowflake schema with Zipf-skewed fact
// foreign keys (the paper uses TPC-DS as its "complex schema with skewed
// data" case, §1/§5).

#pragma once

#include <cstdint>

#include "common/result.h"
#include "storage/table.h"

namespace pref {

struct TpcdsGenOptions {
  /// Multiplies the base cardinalities of catalog/tpcds_schema.h.
  double scale_factor = 1.0;
  /// Zipf theta for fact-table foreign keys (0 = uniform). The default
  /// mirrors dsdgen's visibly skewed sales distributions.
  double skew = 0.85;
  uint64_t seed = 7;
};

/// Generates a fully populated TPC-DS database. Returns tables reference
/// rows actually present in the corresponding sales tables (so the
/// sales<->returns composite-key joins have real partners); ~2% of
/// nullable fact FKs are set to -1 to exercise orphan handling.
Result<Database> GenerateTpcds(const TpcdsGenOptions& options);

}  // namespace pref
