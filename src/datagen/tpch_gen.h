// TPC-H data generator (dbgen equivalent): uniform distributions, spec
// cardinality ratios, deterministic for a given seed.

#pragma once

#include <cstdint>

#include "common/result.h"
#include "storage/table.h"

namespace pref {

struct TpchGenOptions {
  /// Scale factor. SF 1 corresponds to the official 6M-row LINEITEM; the
  /// in-memory experiments use fractional SF (the paper's shape results are
  /// invariant in SF, see §5.1/§5.3).
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

/// Generates a fully populated TPC-H database.
///
/// Mirrors dbgen's structural properties that matter to PREF:
///  * one third of customers place no orders (orphans for incoming-FK
///    PREF partitions),
///  * 1..7 lineitems per order, uniform part/supplier references,
///  * exactly 4 partsupp rows per part with distinct suppliers.
Result<Database> GenerateTpch(const TpchGenOptions& options);

}  // namespace pref
