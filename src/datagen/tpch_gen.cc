#include "datagen/tpch_gen.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "catalog/tpch_schema.h"
#include "common/random.h"

namespace pref {

namespace {

int64_t Scaled(const std::string& table, double sf) {
  int64_t base = TpchBaseCardinality(table);
  if (TpchIsFixedSize(table)) return base;
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                  static_cast<double>(base) * sf)));
}

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                             "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                            "TRUCK"};
const char* kReturnFlags[] = {"A", "N", "R"};
const char* kContainers[] = {"SM CASE", "LG BOX", "MED BAG", "JUMBO JAR",
                             "WRAP PKG"};
const char* kTypes[] = {"ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS",
                        "MEDIUM POLISHED COPPER", "PROMO BURNISHED NICKEL",
                        "SMALL PLATED TIN", "STANDARD POLISHED BRASS"};

// Date domain: days since 1992-01-01, ~7 years as in the spec.
constexpr int64_t kDateLo = 0;
constexpr int64_t kDateHi = 2556;

/// The j-th (0..3) supplier of part `p` among `s` suppliers. The stride
/// floor(s/4) guarantees four distinct suppliers whenever s >= 4 (dbgen's
/// spread formula degenerates for the reduced scale factors used here).
int64_t SupplierOfPart(int64_t p, int64_t j, int64_t s) {
  int64_t step = std::max<int64_t>(1, s / 4);
  return (p - 1 + j * step) % s + 1;
}

}  // namespace

Result<Database> GenerateTpch(const TpchGenOptions& options) {
  if (options.scale_factor <= 0) {
    return Status::Invalid("scale_factor must be positive, got ",
                           options.scale_factor);
  }
  const double sf = options.scale_factor;
  Database db(MakeTpchSchema());
  Rng rng(options.seed);

  const int64_t n_supplier = Scaled("supplier", sf);
  const int64_t n_customer = Scaled("customer", sf);
  const int64_t n_part = Scaled("part", sf);
  const int64_t n_orders = Scaled("orders", sf);

  // --- region ---------------------------------------------------------
  {
    RowBlock& r = (*db.FindTable("region"))->data();
    for (int64_t i = 0; i < 5; ++i) {
      r.column(0).AppendInt64(i);
      r.column(1).AppendString(kRegions[i]);
      r.column(2).AppendString("region comment");
    }
  }

  // --- nation ---------------------------------------------------------
  {
    RowBlock& n = (*db.FindTable("nation"))->data();
    for (int64_t i = 0; i < 25; ++i) {
      n.column(0).AppendInt64(i);
      n.column(1).AppendString("NATION_" + std::to_string(i));
      n.column(2).AppendInt64(i % 5);
      n.column(3).AppendString("nation comment");
    }
  }

  // --- supplier ---------------------------------------------------------
  {
    RowBlock& s = (*db.FindTable("supplier"))->data();
    s.Reserve(static_cast<size_t>(n_supplier));
    for (int64_t i = 1; i <= n_supplier; ++i) {
      s.column(0).AppendInt64(i);
      s.column(1).AppendString("Supplier#" + std::to_string(i));
      s.column(2).AppendInt64(rng.Uniform(0, 24));
      s.column(3).AppendString("11-2345");
      s.column(4).AppendDouble(static_cast<double>(rng.Uniform(-99999, 999999)) /
                               100.0);
    }
  }

  // --- customer ---------------------------------------------------------
  {
    RowBlock& c = (*db.FindTable("customer"))->data();
    c.Reserve(static_cast<size_t>(n_customer));
    for (int64_t i = 1; i <= n_customer; ++i) {
      c.column(0).AppendInt64(i);
      c.column(1).AppendString("Customer#" + std::to_string(i));
      c.column(2).AppendInt64(rng.Uniform(0, 24));
      c.column(3).AppendString("22-6789");
      c.column(4).AppendDouble(static_cast<double>(rng.Uniform(-99999, 999999)) /
                               100.0);
      c.column(5).AppendString(kSegments[rng.Uniform(0, 4)]);
    }
  }

  // --- part -------------------------------------------------------------
  {
    RowBlock& p = (*db.FindTable("part"))->data();
    p.Reserve(static_cast<size_t>(n_part));
    for (int64_t i = 1; i <= n_part; ++i) {
      p.column(0).AppendInt64(i);
      p.column(1).AppendString("part " + std::to_string(i));
      p.column(2).AppendString("Brand#" + std::to_string(rng.Uniform(1, 5)) +
                               std::to_string(rng.Uniform(1, 5)));
      p.column(3).AppendString(kTypes[rng.Uniform(0, 5)]);
      p.column(4).AppendInt64(rng.Uniform(1, 50));
      p.column(5).AppendString(kContainers[rng.Uniform(0, 4)]);
      p.column(6).AppendDouble(900.0 + static_cast<double>(i % 1000) / 10.0);
    }
  }

  // --- partsupp: exactly 4 distinct suppliers per part --------------------
  {
    RowBlock& ps = (*db.FindTable("partsupp"))->data();
    ps.Reserve(static_cast<size_t>(n_part * 4));
    for (int64_t p = 1; p <= n_part; ++p) {
      for (int64_t j = 0; j < 4; ++j) {
        int64_t sk = SupplierOfPart(p, j, n_supplier);
        ps.column(0).AppendInt64(p);
        ps.column(1).AppendInt64(sk);
        ps.column(2).AppendInt64(rng.Uniform(1, 9999));
        ps.column(3).AppendDouble(static_cast<double>(rng.Uniform(100, 100000)) /
                                  100.0);
      }
    }
  }

  // --- orders: one third of customers have no orders ----------------------
  {
    RowBlock& o = (*db.FindTable("orders"))->data();
    o.Reserve(static_cast<size_t>(n_orders));
    for (int64_t i = 1; i <= n_orders; ++i) {
      // Spec: custkey never ≡ 0 (mod 3), leaving 1/3 of customers orderless.
      int64_t ck;
      do {
        ck = rng.Uniform(1, n_customer);
      } while (n_customer >= 3 && ck % 3 == 0);
      o.column(0).AppendInt64(i);
      o.column(1).AppendInt64(ck);
      o.column(2).AppendString(rng.Bernoulli(0.5) ? "F" : "O");
      o.column(3).AppendDouble(static_cast<double>(rng.Uniform(1000, 500000)) /
                               100.0);
      o.column(4).AppendInt64(rng.Uniform(kDateLo, kDateHi - 151));
      o.column(5).AppendString(kPriorities[rng.Uniform(0, 4)]);
      o.column(6).AppendInt64(0);
    }
  }

  // --- lineitem: 1..7 lines per order -------------------------------------
  {
    const RowBlock& o = (*db.FindTable("orders"))->data();
    RowBlock& l = (*db.FindTable("lineitem"))->data();
    l.Reserve(static_cast<size_t>(n_orders) * 4);
    for (int64_t oi = 0; oi < n_orders; ++oi) {
      int64_t orderkey = o.column(0).GetInt64(static_cast<size_t>(oi));
      int64_t odate = o.column(4).GetInt64(static_cast<size_t>(oi));
      int64_t lines = rng.Uniform(1, 7);
      for (int64_t ln = 1; ln <= lines; ++ln) {
        int64_t partkey = rng.Uniform(1, n_part);
        // Pick one of the 4 partsupp suppliers of this part.
        int64_t suppkey = SupplierOfPart(partkey, rng.Uniform(0, 3), n_supplier);
        double qty = static_cast<double>(rng.Uniform(1, 50));
        double price = qty * (900.0 + static_cast<double>(partkey % 1000) / 10.0);
        int64_t ship = odate + rng.Uniform(1, 121);
        l.column(0).AppendInt64(orderkey);
        l.column(1).AppendInt64(partkey);
        l.column(2).AppendInt64(suppkey);
        l.column(3).AppendInt64(ln);
        l.column(4).AppendDouble(qty);
        l.column(5).AppendDouble(price);
        l.column(6).AppendDouble(static_cast<double>(rng.Uniform(0, 10)) / 100.0);
        l.column(7).AppendDouble(static_cast<double>(rng.Uniform(0, 8)) / 100.0);
        l.column(8).AppendString(kReturnFlags[rng.Uniform(0, 2)]);
        l.column(9).AppendString(rng.Bernoulli(0.5) ? "F" : "O");
        l.column(10).AppendInt64(ship);
        l.column(11).AppendInt64(ship + rng.Uniform(-10, 30));
        l.column(12).AppendInt64(ship + rng.Uniform(1, 30));
        l.column(13).AppendString(kShipModes[rng.Uniform(0, 6)]);
      }
    }
  }

  return db;
}

}  // namespace pref
