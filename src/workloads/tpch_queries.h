// The TPC-H workload (22 queries) in two forms:
//  * engine-executable QuerySpecs reproducing each query's join structure,
//    selective filters and aggregation shape (§5.1, Figures 7-8), and
//  * QueryGraphs for the workload-driven design algorithm (§4).
//
// Deviations from official TPC-H SQL (documented per query below and in
// DESIGN.md): no ORDER BY/LIMIT (irrelevant to locality), no scalar
// expressions inside aggregates (sum(a*b) becomes sum(a)), correlated
// subqueries flattened to the joins they induce, and Q13/Q22's outer joins
// expressed through the anti-join form the paper itself uses to make Q13
// finish (§5.1).

#pragma once

#include <vector>

#include "design/query_graph.h"
#include "engine/query.h"

namespace pref {

/// All 22 queries, index i = Q(i+1).
std::vector<QuerySpec> TpchQueries(const Schema& schema);

/// Query numbers (1-based) excluded from the paper's Figure 7/8 runtime
/// totals (Q13 and Q22 did not finish under MySQL without rewrites).
const std::vector<int>& TpchExcludedQueries();

/// Join-graph form of a query spec for the WD algorithm. Self-join edges
/// (same table on both sides) are dropped — they cannot co-partition
/// anything beyond what the table's own scheme provides.
Result<QueryGraph> ToQueryGraph(const QuerySpec& spec, const Schema& schema);

/// Join graphs of the full workload.
std::vector<QueryGraph> TpchQueryGraphs(const Schema& schema);

}  // namespace pref
