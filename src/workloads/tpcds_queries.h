// Executable TPC-DS-style queries: a representative set of star and
// snowflake SPJA queries over the 24-table schema, written in the SQL
// subset (sql/parser.h). They power TPC-DS engine tests and the
// locality-explorer example; the full 99-query *join-graph* workload used
// by the design algorithms lives in tpcds_workload.h.

#pragma once

#include <vector>

#include "engine/query.h"

namespace pref {

/// Parses and returns the executable TPC-DS query set (≥ 12 queries).
Result<std::vector<QuerySpec>> TpcdsExecutableQueries(const Schema& schema);

/// The raw SQL texts (parallel to TpcdsExecutableQueries, for display).
const std::vector<const char*>& TpcdsExecutableSql();

}  // namespace pref
