#include "workloads/tpcds_queries.h"

#include "sql/parser.h"

namespace pref {

const std::vector<const char*>& TpcdsExecutableSql() {
  static const std::vector<const char*> kSql = {
      // q3-style: store sales by brand for one month.
      "SELECT d_year, i_brand_id, SUM(ss_net_profit) AS profit "
      "FROM store_sales "
      "JOIN date_dim ON ss_sold_date_sk = d_date_sk "
      "JOIN item ON ss_item_sk = i_item_sk "
      "WHERE d_moy = 11 GROUP BY d_year, i_brand_id",

      // q7-style: demographic filter star.
      "SELECT i_category, AVG(ss_quantity) AS avg_qty, COUNT(*) AS cnt "
      "FROM store_sales "
      "JOIN item ON ss_item_sk = i_item_sk "
      "JOIN customer_demographics ON ss_cdemo_sk = cd_demo_sk "
      "WHERE cd_gender = 'cd_gender_1' GROUP BY i_category",

      // q19-style: customer-address star.
      "SELECT ca_state, SUM(ss_sales_price) AS sales "
      "FROM store_sales "
      "JOIN customer ON ss_customer_sk = c_customer_sk "
      "JOIN customer_address ON ss_addr_sk = ca_address_sk "
      "GROUP BY ca_state",

      // q42-style: category totals by year.
      "SELECT d_year, i_category, SUM(ss_net_profit) AS profit "
      "FROM store_sales "
      "JOIN date_dim ON ss_sold_date_sk = d_date_sk "
      "JOIN item ON ss_item_sk = i_item_sk "
      "GROUP BY d_year, i_category ORDER BY profit DESC LIMIT 20",

      // q52-style on the web channel.
      "SELECT d_year, i_brand_id, SUM(ws_sales_price) AS sales "
      "FROM web_sales "
      "JOIN date_dim ON ws_sold_date_sk = d_date_sk "
      "JOIN item ON ws_item_sk = i_item_sk "
      "GROUP BY d_year, i_brand_id",

      // q20-style on the catalog channel with a date filter.
      "SELECT i_category, SUM(cs_sales_price) AS sales "
      "FROM catalog_sales "
      "JOIN date_dim ON cs_sold_date_sk = d_date_sk "
      "JOIN item ON cs_item_sk = i_item_sk "
      "WHERE d_year >= 2 GROUP BY i_category",

      // sales-returns composite join (q93-style).
      "SELECT r_reason_desc, SUM(sr_return_amt) AS refunded, COUNT(*) AS cnt "
      "FROM store_returns "
      "JOIN store_sales ON sr_item_sk = ss_item_sk AND "
      "sr_ticket_number = ss_ticket_number "
      "JOIN reason ON sr_reason_sk = r_reason_sk "
      "GROUP BY r_reason_desc",

      // q21-style inventory star.
      "SELECT w_warehouse_name, SUM(inv_quantity_on_hand) AS qty "
      "FROM inventory "
      "JOIN warehouse ON inv_warehouse_sk = w_warehouse_sk "
      "JOIN item ON inv_item_sk = i_item_sk "
      "GROUP BY w_warehouse_name",

      // customer snowflake through household demographics.
      "SELECT hd_buy_potential, COUNT(*) AS customers "
      "FROM customer "
      "JOIN household_demographics ON c_current_hdemo_sk = hd_demo_sk "
      "GROUP BY hd_buy_potential",

      // semi join: items that sold in stores.
      "SELECT COUNT(*) AS sold_items FROM item "
      "SEMI JOIN store_sales ON i_item_sk = ss_item_sk",

      // anti join: customers who never bought on the web.
      "SELECT COUNT(*) AS quiet_customers FROM customer "
      "ANTI JOIN web_sales ON c_customer_sk = ws_bill_customer_sk",

      // q96-style: time-of-day traffic.
      "SELECT t_hour, COUNT(*) AS sales "
      "FROM store_sales "
      "JOIN time_dim ON ss_sold_time_sk = t_time_sk "
      "JOIN household_demographics ON ss_hdemo_sk = hd_demo_sk "
      "WHERE hd_dep_count >= 5000 GROUP BY t_hour",

      // q55-style with HAVING.
      "SELECT i_brand_id, SUM(ss_sales_price) AS sales "
      "FROM store_sales JOIN item ON ss_item_sk = i_item_sk "
      "GROUP BY i_brand_id HAVING sales > 100.0 "
      "ORDER BY sales DESC LIMIT 10",
  };
  return kSql;
}

Result<std::vector<QuerySpec>> TpcdsExecutableQueries(const Schema& schema) {
  std::vector<QuerySpec> out;
  int i = 0;
  for (const char* text : TpcdsExecutableSql()) {
    PREF_ASSIGN_OR_RAISE(
        QuerySpec spec,
        sql::ParseQuery(schema, text, "ds" + std::to_string(++i)));
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace pref
