#include "workloads/tpch_queries.h"

#include <cassert>

namespace pref {

namespace {

QuerySpec MustBuild(QueryBuilder& builder) {
  auto spec = builder.Build();
  assert(spec.ok());
  return *spec;
}
QuerySpec MustBuild(QueryBuilder&& builder) { return MustBuild(builder); }

Value S(const char* s) { return Value(std::string(s)); }
Value I(int64_t v) { return Value(v); }
Value D(double v) { return Value(v); }

}  // namespace

std::vector<QuerySpec> TpchQueries(const Schema& schema) {
  std::vector<QuerySpec> qs;

  // Q1: pricing summary report. Single-table scan + group aggregation.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q1")
                             .From("lineitem")
                             .Where("lineitem", Le("l_shipdate", I(2400)))
                             .GroupBy({"l_returnflag", "l_linestatus"})
                             .Agg(AggFunc::kSum, "l_quantity", "sum_qty")
                             .Agg(AggFunc::kSum, "l_extendedprice", "sum_price")
                             .Agg(AggFunc::kAvg, "l_quantity", "avg_qty")
                             .Agg(AggFunc::kAvg, "l_discount", "avg_disc")
                             .Agg(AggFunc::kCountStar, "", "count_order")));

  // Q2: minimum-cost supplier. (The correlated min-subquery is flattened
  // to its join path part-partsupp-supplier-nation-region.)
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q2")
                             .From("part")
                             .Where("part", Eq("p_size", I(15)))
                             .Join("partsupp", "p_partkey", "ps_partkey")
                             .Join("supplier", "ps_suppkey", "s_suppkey")
                             .Join("nation", "s_nationkey", "n_nationkey")
                             .Join("region", "n_regionkey", "r_regionkey")
                             .Where("region", Eq("r_name", S("EUROPE")))
                             .GroupBy({"p_partkey"})
                             .Agg(AggFunc::kMin, "ps_supplycost", "min_cost")));

  // Q3: shipping priority.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q3")
                             .From("customer")
                             .Where("customer", Eq("c_mktsegment", S("BUILDING")))
                             .Join("orders", "c_custkey", "o_custkey")
                             .Where("orders", Lt("o_orderdate", I(1200)))
                             .Join("lineitem", "o_orderkey", "l_orderkey")
                             .Where("lineitem", Gt("l_shipdate", I(1200)))
                             .GroupBy({"l_orderkey", "o_shippriority"})
                             .Agg(AggFunc::kSum, "l_extendedprice", "revenue")));

  // Q4: order priority checking — orders with at least one late lineitem
  // (EXISTS flattened to a semi join; the right-side filter keeps this on
  // the generic semi-join path rather than the hasS rewrite).
  {
    QueryBuilder b(&schema, "Q4");
    b.From("orders")
        .Where("orders", Between("o_orderdate", I(800), I(892)))
        .Join("lineitem", "o_orderkey", "l_orderkey", JoinType::kSemi)
        .Where("lineitem", Gt("l_receiptdate", I(820)))
        .GroupBy({"o_orderpriority"})
        .Agg(AggFunc::kCountStar, "", "order_count");
    qs.push_back(MustBuild(std::move(b)));
  }

  // Q5: local supplier volume. The c_nationkey = s_nationkey condition is
  // folded into a composite join with supplier.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q5")
                             .From("customer")
                             .Join("orders", "c_custkey", "o_custkey")
                             .Where("orders", Between("o_orderdate", I(365), I(730)))
                             .Join("lineitem", "o_orderkey", "l_orderkey")
                             .JoinMulti("supplier", {"l_suppkey", "c_nationkey"},
                                        {"s_suppkey", "s_nationkey"})
                             .Join("nation", "s_nationkey", "n_nationkey")
                             .Join("region", "n_regionkey", "r_regionkey")
                             .Where("region", Eq("r_name", S("ASIA")))
                             .GroupBy({"n_name"})
                             .Agg(AggFunc::kSum, "l_extendedprice", "revenue")));

  // Q6: forecasting revenue change. Pure scan.
  {
    QueryBuilder b(&schema, "Q6");
    b.From("lineitem")
        .Where("lineitem", Between("l_shipdate", I(365), I(730)))
        .Where("lineitem", Between("l_discount", D(0.02), D(0.04)))
        .Where("lineitem", Lt("l_quantity", D(24.0)))
        .Agg(AggFunc::kSum, "l_extendedprice", "revenue");
    qs.push_back(MustBuild(std::move(b)));
  }

  // Q7: volume shipping between two nations (nation self-join via aliases).
  qs.push_back(MustBuild(
      QueryBuilder(&schema, "Q7")
          .From("supplier")
          .Join("lineitem", "s_suppkey", "l_suppkey")
          .Join("orders", "l_orderkey", "o_orderkey")
          .Join("customer", "o_custkey", "c_custkey")
          .Join("nation", "s_nationkey", "n1.n_nationkey", JoinType::kInner, "n1")
          .Where("n1", Eq("n1.n_name", S("NATION_7")))
          .Join("nation", "c_nationkey", "n2.n_nationkey", JoinType::kInner, "n2")
          .Where("n2", Eq("n2.n_name", S("NATION_8")))
          .GroupBy({"n1.n_name", "n2.n_name"})
          .Agg(AggFunc::kSum, "l_extendedprice", "revenue")));

  // Q8: national market share (group key simplified: no YEAR()).
  qs.push_back(MustBuild(
      QueryBuilder(&schema, "Q8")
          .From("part")
          .Where("part", Eq("p_type", S("ECONOMY ANODIZED STEEL")))
          .Join("lineitem", "p_partkey", "l_partkey")
          .Join("supplier", "l_suppkey", "s_suppkey")
          .Join("orders", "l_orderkey", "o_orderkey")
          .Where("orders", Between("o_orderdate", I(1095), I(1825)))
          .Join("customer", "o_custkey", "c_custkey")
          .Join("nation", "c_nationkey", "n1.n_nationkey", JoinType::kInner, "n1")
          .Join("region", "n1.n_regionkey", "r_regionkey")
          .Where("region", Eq("r_name", S("AMERICA")))
          .Join("nation", "s_nationkey", "n2.n_nationkey", JoinType::kInner, "n2")
          .GroupBy({"n2.n_name"})
          .Agg(AggFunc::kSum, "l_extendedprice", "volume")));

  // Q9: product type profit measure.
  qs.push_back(MustBuild(
      QueryBuilder(&schema, "Q9")
          .From("part")
          .Where("part", Eq("p_brand", S("Brand#11")))
          .Join("lineitem", "p_partkey", "l_partkey")
          .Join("supplier", "l_suppkey", "s_suppkey")
          .JoinMulti("partsupp", {"l_partkey", "l_suppkey"},
                     {"ps_partkey", "ps_suppkey"})
          .Join("orders", "l_orderkey", "o_orderkey")
          .Join("nation", "s_nationkey", "n_nationkey")
          .GroupBy({"n_name"})
          .Agg(AggFunc::kSum, "l_extendedprice", "amount")
          .Agg(AggFunc::kSum, "ps_supplycost", "cost")));

  // Q10: returned item reporting.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q10")
                             .From("customer")
                             .Join("orders", "c_custkey", "o_custkey")
                             .Where("orders", Between("o_orderdate", I(270), I(360)))
                             .Join("lineitem", "o_orderkey", "l_orderkey")
                             .Where("lineitem", Eq("l_returnflag", S("R")))
                             .Join("nation", "c_nationkey", "n_nationkey")
                             .GroupBy({"c_name", "n_name"})
                             .Agg(AggFunc::kSum, "l_extendedprice", "revenue")));

  // Q11: important stock identification.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q11")
                             .From("partsupp")
                             .Join("supplier", "ps_suppkey", "s_suppkey")
                             .Join("nation", "s_nationkey", "n_nationkey")
                             .Where("nation", Eq("n_name", S("NATION_3")))
                             .GroupBy({"ps_partkey"})
                             .Agg(AggFunc::kSum, "ps_supplycost", "value")));

  // Q12: shipping modes and order priority.
  {
    Dnf modes;
    modes.disjuncts.push_back({Eq("l_shipmode", S("MAIL")),
                               Between("l_receiptdate", I(365), I(730))});
    modes.disjuncts.push_back({Eq("l_shipmode", S("SHIP")),
                               Between("l_receiptdate", I(365), I(730))});
    qs.push_back(MustBuild(QueryBuilder(&schema, "Q12")
                               .From("orders")
                               .Join("lineitem", "o_orderkey", "l_orderkey")
                               .WhereDnf("lineitem", modes)
                               .GroupBy({"l_shipmode"})
                               .Agg(AggFunc::kCountStar, "", "line_count")));
  }

  // Q13: customer distribution. The paper rewrites the left outer join to
  // the hasS anti-join form to make it finish (§5.1); this is that form:
  // customers without orders, counted.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q13")
                             .From("customer")
                             .Join("orders", "c_custkey", "o_custkey",
                                   JoinType::kAnti)
                             .GroupBy({"c_nationkey"})
                             .Agg(AggFunc::kCountStar, "", "custdist")));

  // Q14: promotion effect.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q14")
                             .From("lineitem")
                             .Where("lineitem", Between("l_shipdate", I(700), I(730)))
                             .Join("part", "l_partkey", "p_partkey")
                             .GroupBy({"p_type"})
                             .Agg(AggFunc::kSum, "l_extendedprice", "revenue")));

  // Q15: top supplier (max-revenue subquery flattened to the group-by).
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q15")
                             .From("supplier")
                             .Join("lineitem", "s_suppkey", "l_suppkey")
                             .Where("lineitem", Between("l_shipdate", I(700), I(790)))
                             .GroupBy({"s_name"})
                             .Agg(AggFunc::kSum, "l_extendedprice", "total_revenue")));

  // Q16: parts/supplier relationship.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q16")
                             .From("partsupp")
                             .Join("part", "ps_partkey", "p_partkey")
                             .Where("part", Ne("p_brand", S("Brand#45")))
                             .Where("part", Gt("p_size", I(20)))
                             .GroupBy({"p_brand", "p_type", "p_size"})
                             .Agg(AggFunc::kCountStar, "", "supplier_cnt")));

  // Q17: small-quantity-order revenue.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q17")
                             .From("lineitem")
                             .Join("part", "l_partkey", "p_partkey")
                             .Where("part", Eq("p_brand", S("Brand#23")))
                             .Where("part", Eq("p_container", S("MED BAG")))
                             .Agg(AggFunc::kSum, "l_extendedprice", "total")
                             .Agg(AggFunc::kAvg, "l_quantity", "avg_qty")));

  // Q18: large volume customer.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q18")
                             .From("customer")
                             .Join("orders", "c_custkey", "o_custkey")
                             .Where("orders", Gt("o_totalprice", D(4000.0)))
                             .Join("lineitem", "o_orderkey", "l_orderkey")
                             .GroupBy({"c_name", "o_orderkey"})
                             .Agg(AggFunc::kSum, "l_quantity", "sum_qty")));

  // Q19: discounted revenue — the classic three-disjunct DNF over
  // part/lineitem attributes, applied after the join.
  {
    Dnf dnf;
    dnf.disjuncts.push_back({Eq("p_brand", S("Brand#12")),
                             Eq("p_container", S("SM CASE")),
                             Between("l_quantity", D(1.0), D(11.0))});
    dnf.disjuncts.push_back({Eq("p_brand", S("Brand#23")),
                             Eq("p_container", S("MED BAG")),
                             Between("l_quantity", D(10.0), D(20.0))});
    dnf.disjuncts.push_back({Eq("p_brand", S("Brand#34")),
                             Eq("p_container", S("LG BOX")),
                             Between("l_quantity", D(20.0), D(30.0))});
    qs.push_back(MustBuild(QueryBuilder(&schema, "Q19")
                               .From("lineitem")
                               .Join("part", "l_partkey", "p_partkey")
                               .ResidualFilter(dnf)
                               .Agg(AggFunc::kSum, "l_extendedprice", "revenue")));
  }

  // Q20: potential part promotion — supplier semi partsupp (nested EXISTS
  // flattened), joined with the nation filter.
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q20")
                             .From("supplier")
                             .Join("nation", "s_nationkey", "n_nationkey")
                             .Where("nation", Eq("n_name", S("NATION_4")))
                             .Join("partsupp", "s_suppkey", "ps_suppkey",
                                   JoinType::kSemi)
                             .Project({"s_name"})));

  // Q21: suppliers who kept orders waiting (the l2/l3 self-join EXISTS
  // pair is dropped; the join path supplier-lineitem-orders-nation stays).
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q21")
                             .From("supplier")
                             .Join("lineitem", "s_suppkey", "l_suppkey")
                             .Join("orders", "l_orderkey", "o_orderkey")
                             .Where("orders", Eq("o_orderstatus", S("F")))
                             .Join("nation", "s_nationkey", "n_nationkey")
                             .Where("nation", Eq("n_name", S("NATION_12")))
                             .GroupBy({"s_name"})
                             .Agg(AggFunc::kCountStar, "", "numwait")));

  // Q22: global sales opportunity — customers with above-average balance
  // and no orders (anti join, as the paper's optimized form).
  qs.push_back(MustBuild(QueryBuilder(&schema, "Q22")
                             .From("customer")
                             .Where("customer", Gt("c_acctbal", D(0.0)))
                             .Join("orders", "c_custkey", "o_custkey",
                                   JoinType::kAnti)
                             .GroupBy({"c_nationkey"})
                             .Agg(AggFunc::kCountStar, "", "numcust")
                             .Agg(AggFunc::kSum, "c_acctbal", "totacctbal")));

  return qs;
}

const std::vector<int>& TpchExcludedQueries() {
  static const std::vector<int> kExcluded = {13, 22};
  return kExcluded;
}

Result<QueryGraph> ToQueryGraph(const QuerySpec& spec, const Schema& schema) {
  QueryGraph graph;
  graph.name = spec.name;
  // Nodes: distinct base tables.
  for (const auto& ref : spec.tables) {
    PREF_ASSIGN_OR_RAISE(TableId id, schema.FindTable(ref.table));
    if (!graph.UsesTable(id)) graph.tables.push_back(id);
  }
  // Resolve a column reference to (table id, column id) using the same
  // alias convention as the engine.
  auto resolve = [&](const std::string& name)
      -> Result<std::pair<TableId, ColumnId>> {
    for (const auto& ref : spec.tables) {
      std::string alias = ref.alias.empty() ? ref.table : ref.alias;
      std::string bare = name;
      if (name.size() > alias.size() + 1 && name.compare(0, alias.size(), alias) == 0 &&
          name[alias.size()] == '.') {
        bare = name.substr(alias.size() + 1);
      } else if (alias != ref.table) {
        continue;
      }
      PREF_ASSIGN_OR_RAISE(TableId tid, schema.FindTable(ref.table));
      auto col = schema.table(tid).FindColumn(bare);
      if (col.ok()) return std::make_pair(tid, *col);
    }
    return Status::NotFound("column '", name, "' not resolvable");
  };
  for (const auto& step : spec.joins) {
    JoinPredicate p;
    for (size_t i = 0; i < step.left_columns.size(); ++i) {
      PREF_ASSIGN_OR_RAISE(auto l, resolve(step.left_columns[i]));
      PREF_ASSIGN_OR_RAISE(auto r, resolve(step.right_columns[i]));
      if (i == 0) {
        p.left_table = l.first;
        p.right_table = r.first;
      }
      if (l.first != p.left_table || r.first != p.right_table) {
        // Mixed-side composite predicate: keep only the leading pair.
        continue;
      }
      p.left_columns.push_back(l.second);
      p.right_columns.push_back(r.second);
    }
    if (p.left_table == p.right_table) continue;  // self join: no edge
    graph.equi_joins.push_back(std::move(p));
  }
  return graph;
}

std::vector<QueryGraph> TpchQueryGraphs(const Schema& schema) {
  std::vector<QueryGraph> graphs;
  for (const auto& spec : TpchQueries(schema)) {
    auto g = ToQueryGraph(spec, schema);
    assert(g.ok());
    graphs.push_back(std::move(*g));
  }
  return graphs;
}

}  // namespace pref
