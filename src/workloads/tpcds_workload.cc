#include "workloads/tpcds_workload.h"

#include <map>

#include "catalog/tpcds_schema.h"

namespace pref {

namespace {

/// Short table codes used by the block table.
const std::map<std::string, std::string>& CodeMap() {
  static const std::map<std::string, std::string> kCodes = {
      {"ss", "store_sales"},     {"sr", "store_returns"},
      {"cs", "catalog_sales"},   {"cr", "catalog_returns"},
      {"ws", "web_sales"},       {"wr", "web_returns"},
      {"inv", "inventory"},      {"d", "date_dim"},
      {"t", "time_dim"},         {"i", "item"},
      {"c", "customer"},         {"ca", "customer_address"},
      {"cd", "customer_demographics"},
      {"hd", "household_demographics"},
      {"ib", "income_band"},     {"s", "store"},
      {"cc", "call_center"},     {"cp", "catalog_page"},
      {"web", "web_site"},       {"wp", "web_page"},
      {"w", "warehouse"},        {"p", "promotion"},
      {"r", "reason"},           {"sm", "ship_mode"}};
  return kCodes;
}

}  // namespace

const std::vector<TpcdsBlockSpec>& TpcdsBlocks() {
  // One entry per SPJA block; multi-channel queries and queries whose
  // subqueries scan different fact tables contribute several blocks
  // (paper: 99 queries -> 165 components).
  static const std::vector<TpcdsBlockSpec> kBlocks = {
      {"q01", "sr", {"d", "s", "c"}},
      {"q02", "ws", {"d"}},
      {"q02", "cs", {"d"}},
      {"q03", "ss", {"d", "i"}},
      {"q04", "ss", {"d", "c"}},
      {"q04", "cs", {"d", "c"}},
      {"q04", "ws", {"d", "c"}},
      {"q05", "ss", {"d", "s"}},
      {"q05", "sr", {"d", "s"}},
      {"q05", "cs", {"d", "cp"}},
      {"q05", "cr", {"d", "cc"}},
      {"q05", "ws", {"d", "web"}},
      {"q05", "wr", {"d", "wp"}},
      {"q06", "ss", {"d", "i", "c", "ca"}},
      {"q07", "ss", {"d", "i", "cd", "p"}},
      {"q08", "ss", {"d", "s", "c", "ca"}},
      {"q09", "ss", {"d"}},
      {"q10", "c", {"ca", "cd", "ss", "d"}},
      {"q10", "c", {"ca", "cd", "ws", "d"}},
      {"q10", "c", {"ca", "cd", "cs", "d"}},
      {"q11", "ss", {"d", "c"}},
      {"q11", "ws", {"d", "c"}},
      {"q12", "ws", {"d", "i"}},
      {"q13", "ss", {"d", "s", "cd", "hd", "ca"}},
      {"q14", "ss", {"d", "i"}},
      {"q14", "cs", {"d", "i"}},
      {"q14", "ws", {"d", "i"}},
      {"q15", "cs", {"d", "c", "ca"}},
      {"q16", "cs", {"d", "ca", "cc"}},
      {"q17", "ss", {"d", "i", "s"}},
      {"q17", "sr", {"d", "ss"}},
      {"q17", "cs", {"d", "c"}},
      {"q18", "cs", {"d", "i", "c", "cd", "ca"}},
      {"q19", "ss", {"d", "i", "c", "ca", "s"}},
      {"q20", "cs", {"d", "i"}},
      {"q21", "inv", {"d", "i", "w"}},
      {"q22", "inv", {"d", "i", "w"}},
      {"q23", "ss", {"d", "i"}},
      {"q23", "cs", {"d", "c"}},
      {"q23", "ws", {"d", "c"}},
      {"q24", "sr", {"ss", "s", "i", "c"}},
      {"q25", "ss", {"d", "i", "s"}},
      {"q25", "sr", {"d", "ss"}},
      {"q25", "cs", {"d", "c"}},
      {"q26", "cs", {"d", "i", "cd", "p"}},
      {"q27", "ss", {"d", "i", "s", "cd"}},
      {"q28", "ss", {}},
      {"q29", "ss", {"d", "i", "s"}},
      {"q29", "sr", {"d", "ss"}},
      {"q29", "cs", {"d", "c"}},
      {"q30", "wr", {"d", "c", "ca"}},
      {"q31", "ss", {"d", "ca"}},
      {"q31", "ws", {"d", "ca"}},
      {"q32", "cs", {"d", "i"}},
      {"q33", "ss", {"d", "i", "ca"}},
      {"q33", "cs", {"d", "i", "ca"}},
      {"q33", "ws", {"d", "i", "ca"}},
      {"q34", "ss", {"d", "s", "hd", "c"}},
      {"q35", "c", {"ca", "cd", "ss", "d"}},
      {"q35", "c", {"ca", "cd", "ws", "d"}},
      {"q35", "c", {"ca", "cd", "cs", "d"}},
      {"q36", "ss", {"d", "i", "s"}},
      {"q37", "inv", {"d", "i"}},
      {"q37", "cs", {"i"}},
      {"q38", "ss", {"d", "c"}},
      {"q38", "cs", {"d", "c"}},
      {"q38", "ws", {"d", "c"}},
      {"q39", "inv", {"d", "i", "w"}},
      {"q40", "cs", {"d", "i", "w"}},
      {"q40", "cr", {"cs"}},
      {"q41", "i", {}},
      {"q42", "ss", {"d", "i"}},
      {"q43", "ss", {"d", "s"}},
      {"q44", "ss", {"i"}},
      {"q45", "ws", {"d", "i", "c", "ca"}},
      {"q46", "ss", {"d", "s", "hd", "c", "ca"}},
      {"q47", "ss", {"d", "i", "s"}},
      {"q48", "ss", {"d", "s", "cd", "ca"}},
      {"q49", "sr", {"ss", "d"}},
      {"q49", "cr", {"cs", "d"}},
      {"q49", "wr", {"ws", "d"}},
      {"q50", "sr", {"ss", "d", "s"}},
      {"q51", "ws", {"d", "i"}},
      {"q51", "ss", {"d", "i"}},
      {"q52", "ss", {"d", "i"}},
      {"q53", "ss", {"d", "i", "s"}},
      {"q54", "cs", {"d", "i", "c"}},
      {"q54", "ws", {"d", "i", "c"}},
      {"q54", "ss", {"d", "c", "ca", "s"}},
      {"q55", "ss", {"d", "i"}},
      {"q56", "ss", {"d", "i", "ca"}},
      {"q56", "cs", {"d", "i", "ca"}},
      {"q56", "ws", {"d", "i", "ca"}},
      {"q57", "cs", {"d", "i", "cc"}},
      {"q58", "ss", {"d", "i"}},
      {"q58", "cs", {"d", "i"}},
      {"q58", "ws", {"d", "i"}},
      {"q59", "ss", {"d", "s"}},
      {"q60", "ss", {"d", "i", "ca"}},
      {"q60", "cs", {"d", "i", "ca"}},
      {"q60", "ws", {"d", "i", "ca"}},
      {"q61", "ss", {"d", "i", "c", "ca", "s", "p"}},
      {"q62", "ws", {"d", "w", "sm", "wp"}},
      {"q63", "ss", {"d", "i", "s"}},
      {"q64", "ss", {"d", "i", "c", "cd", "hd", "ca", "s", "p"}},
      {"q64", "sr", {"ss"}},
      {"q64", "cs", {"d", "i"}},
      {"q64", "cr", {"cs"}},
      {"q65", "ss", {"d", "i", "s"}},
      {"q66", "ws", {"d", "t", "w", "sm"}},
      {"q66", "cs", {"d", "t", "w", "sm"}},
      {"q67", "ss", {"d", "i", "s"}},
      {"q68", "ss", {"d", "s", "hd", "c", "ca"}},
      {"q69", "c", {"ca", "cd", "ss", "d"}},
      {"q69", "c", {"ca", "cd", "ws", "d"}},
      {"q69", "c", {"ca", "cd", "cs", "d"}},
      {"q70", "ss", {"d", "s"}},
      {"q71", "ss", {"d", "t", "i"}},
      {"q71", "cs", {"d", "t", "i"}},
      {"q71", "ws", {"d", "t", "i"}},
      {"q72", "cs", {"d", "i", "cd", "hd", "p", "inv", "w"}},
      {"q73", "ss", {"d", "s", "hd", "c"}},
      {"q74", "ss", {"d", "c"}},
      {"q74", "ws", {"d", "c"}},
      {"q75", "sr", {"ss", "d", "i"}},
      {"q75", "cr", {"cs", "d", "i"}},
      {"q75", "wr", {"ws", "d", "i"}},
      {"q76", "ss", {"d", "i"}},
      {"q76", "ws", {"d", "i"}},
      {"q76", "cs", {"d", "i"}},
      {"q77", "ss", {"d", "s"}},
      {"q77", "sr", {"d", "s"}},
      {"q77", "cs", {"d", "cp"}},
      {"q77", "cr", {"d"}},
      {"q77", "ws", {"d", "wp"}},
      {"q77", "wr", {"d", "wp"}},
      {"q78", "sr", {"ss", "d"}},
      {"q78", "cr", {"cs", "d"}},
      {"q78", "wr", {"ws", "d"}},
      {"q79", "ss", {"d", "s", "hd", "c"}},
      {"q80", "sr", {"ss", "d", "i", "s", "p"}},
      {"q80", "cr", {"cs", "d", "i", "cc", "p"}},
      {"q80", "wr", {"ws", "d", "i", "web", "p"}},
      {"q81", "cr", {"d", "c", "ca"}},
      {"q82", "inv", {"d", "i"}},
      {"q82", "ss", {"i"}},
      {"q83", "sr", {"d", "i"}},
      {"q83", "cr", {"d", "i"}},
      {"q83", "wr", {"d", "i"}},
      {"q84", "c", {"ca", "cd", "hd", "ib", "sr", "r"}},
      {"q85", "wr", {"ws", "d", "r", "wp"}},
      {"q86", "ws", {"d", "i"}},
      {"q87", "ss", {"d", "c"}},
      {"q87", "cs", {"d", "c"}},
      {"q87", "ws", {"d", "c"}},
      {"q88", "ss", {"t", "s", "hd"}},
      {"q89", "ss", {"d", "i", "s"}},
      {"q90", "ws", {"t", "hd", "wp"}},
      {"q91", "cr", {"d", "c", "cc"}},
      {"q91", "c", {"ca", "cd", "hd"}},
      {"q92", "ws", {"d", "i"}},
      {"q93", "sr", {"ss", "r"}},
      {"q94", "ws", {"d", "ca", "web", "wr"}},
      {"q95", "ws", {"d", "ca", "web", "wr"}},
      {"q96", "ss", {"t", "hd", "s"}},
      {"q97", "ss", {"d"}},
      {"q97", "cs", {"d"}},
      {"q98", "ss", {"d", "i"}},
      {"q99", "cs", {"d", "w", "sm", "cc"}},
  };
  return kBlocks;
}

int TpcdsQueryCount() { return 99; }

Result<std::vector<QueryGraph>> TpcdsQueryGraphs(const Schema& schema) {
  const auto& codes = CodeMap();
  auto table_of = [&](const std::string& code) -> Result<TableId> {
    auto it = codes.find(code);
    if (it == codes.end()) return Status::NotFound("unknown table code '", code, "'");
    return schema.FindTable(it->second);
  };
  // FK connecting a and b (either direction); first match wins.
  auto fk_between = [&](TableId a, TableId b) -> const ForeignKey* {
    for (const auto& fk : schema.foreign_keys()) {
      if ((fk.src_table == a && fk.dst_table == b) ||
          (fk.src_table == b && fk.dst_table == a)) {
        return &fk;
      }
    }
    return nullptr;
  };

  std::vector<QueryGraph> graphs;
  int block_index = 0;
  for (const auto& block : TpcdsBlocks()) {
    QueryGraph g;
    g.name = block.query + "#" + std::to_string(block_index++);
    PREF_ASSIGN_OR_RAISE(TableId root, table_of(block.root));
    g.tables.push_back(root);
    // customer (if present) anchors the demographic snowflake.
    TableId customer = *schema.FindTable("customer");
    TableId hd = *schema.FindTable("household_demographics");
    for (const auto& ref_code : block.refs) {
      PREF_ASSIGN_OR_RAISE(TableId ref, table_of(ref_code));
      // Candidate attach points: for the customer snowflake prefer the
      // customer (then household_demographics for income_band); otherwise
      // root first, then earlier tables in listed order.
      std::vector<TableId> candidates;
      bool snowflake = ref_code == "ib";
      if (snowflake) {
        if (ref_code == "ib" && g.UsesTable(hd)) candidates.push_back(hd);
        if (g.UsesTable(customer) && ref != customer) candidates.push_back(customer);
      }
      candidates.push_back(root);
      for (TableId t : g.tables) {
        if (t != root) candidates.push_back(t);
      }
      const ForeignKey* fk = nullptr;
      for (TableId cand : candidates) {
        if (cand == ref) continue;
        fk = fk_between(cand, ref);
        if (fk != nullptr) break;
      }
      if (fk == nullptr) {
        return Status::Invalid("block ", g.name, ": no foreign key connects '",
                               ref_code, "'");
      }
      if (!g.UsesTable(ref)) g.tables.push_back(ref);
      g.equi_joins.push_back(schema.PredicateOf(*fk));
    }
    graphs.push_back(std::move(g));
  }
  return graphs;
}

}  // namespace pref
