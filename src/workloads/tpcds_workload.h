// The TPC-DS workload as join graphs for the workload-driven design
// (§5.3). The paper reports: 99 queries decompose into 165 connected
// components (one per SPJA block after separating subqueries / UNION
// branches), which merge phase 1 reduces to 17 and the cost-based phase 2
// to 7 (one per fact table).
//
// Substitution note (DESIGN.md): the official queries' SQL is not
// reproduced; each query is encoded as its SPJA blocks' star/snowflake
// join templates — which is exactly the information the WD algorithm
// consumes (§4.2).

#pragma once

#include <string>
#include <vector>

#include "design/query_graph.h"

namespace pref {

/// One SPJA block: a root table joined to a set of referenced tables along
/// foreign-key paths, e.g. "ss:d,i,s" (store_sales star with date_dim,
/// item, store) or "sr:ss,r" (store_returns joined to its sales parent and
/// reason).
struct TpcdsBlockSpec {
  std::string query;              // e.g. "q05"
  std::string root;               // table short code
  std::vector<std::string> refs;  // short codes of referenced tables
};

/// The 99-query block table (>= 160 blocks).
const std::vector<TpcdsBlockSpec>& TpcdsBlocks();

/// Expands the block table into QueryGraphs, one per block, resolving each
/// reference through the first foreign key from root (or ref) matching.
Result<std::vector<QueryGraph>> TpcdsQueryGraphs(const Schema& schema);

/// Number of distinct queries in the workload (99).
int TpcdsQueryCount();

}  // namespace pref
