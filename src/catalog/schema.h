// Schema catalog: table definitions, referential constraints (foreign keys)
// and join predicates. The design algorithms (§3, §4) consume this catalog
// to build schema graphs; the partitioners consume it to resolve column
// references in partitioning predicates.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "catalog/value.h"

namespace pref {

using TableId = int32_t;
using ColumnId = int32_t;
constexpr TableId kInvalidTableId = -1;

/// \brief One column of a table definition.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
};

/// \brief A table definition within a Schema.
struct TableDef {
  TableId id = kInvalidTableId;
  std::string name;
  std::vector<ColumnDef> columns;
  /// Column indices forming the primary key (possibly empty).
  std::vector<ColumnId> primary_key;

  Result<ColumnId> FindColumn(const std::string& column_name) const;
  const ColumnDef& column(ColumnId id) const { return columns[static_cast<size_t>(id)]; }
  int num_columns() const { return static_cast<int>(columns.size()); }
};

/// \brief A referential constraint: `src_table.src_columns` references
/// `dst_table.dst_columns` (an *outgoing* foreign key of the src table, in
/// the paper's terminology).
struct ForeignKey {
  std::string name;
  TableId src_table = kInvalidTableId;
  std::vector<ColumnId> src_columns;
  TableId dst_table = kInvalidTableId;
  std::vector<ColumnId> dst_columns;
};

/// \brief An equi-join predicate between two tables: a conjunction of
/// column-equality terms `left.left_columns[i] = right.right_columns[i]`.
///
/// This is the paper's "partitioning predicate" (Definition 1): PREF only
/// supports simple equi-join predicates and conjunctions thereof, since
/// other predicates degenerate to (near-)full redundancy.
struct JoinPredicate {
  TableId left_table = kInvalidTableId;
  std::vector<ColumnId> left_columns;
  TableId right_table = kInvalidTableId;
  std::vector<ColumnId> right_columns;

  /// The same predicate with sides exchanged.
  JoinPredicate Reversed() const {
    return JoinPredicate{right_table, right_columns, left_table, left_columns};
  }

  /// True if this predicate mentions `t` on either side.
  bool Mentions(TableId t) const { return left_table == t || right_table == t; }

  /// Columns of table `t` in this predicate; `t` must be one of the sides.
  const std::vector<ColumnId>& ColumnsOf(TableId t) const {
    return t == left_table ? left_columns : right_columns;
  }

  /// Equality up to side exchange.
  bool EquivalentTo(const JoinPredicate& other) const;
};

/// \brief A database schema: tables plus referential constraints.
class Schema {
 public:
  /// Adds a table; fails on duplicate name or empty column list.
  Result<TableId> AddTable(const std::string& name, std::vector<ColumnDef> columns,
                           std::vector<std::string> primary_key = {});

  /// Adds a foreign key by table/column names; all names must resolve and
  /// the two column lists must have equal, non-zero size.
  Status AddForeignKey(const std::string& fk_name, const std::string& src_table,
                       const std::vector<std::string>& src_columns,
                       const std::string& dst_table,
                       const std::vector<std::string>& dst_columns);

  Result<TableId> FindTable(const std::string& name) const;
  const TableDef& table(TableId id) const { return tables_[static_cast<size_t>(id)]; }
  const std::vector<TableDef>& tables() const { return tables_; }
  int num_tables() const { return static_cast<int>(tables_.size()); }

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// The equi-join predicate induced by a referential constraint
  /// (src side on the left).
  JoinPredicate PredicateOf(const ForeignKey& fk) const;

  /// Builds a join predicate from names:
  /// `left.l_col = right.r_col [AND ...]`.
  Result<JoinPredicate> MakePredicate(
      const std::string& left_table, const std::vector<std::string>& left_columns,
      const std::string& right_table,
      const std::vector<std::string>& right_columns) const;

  /// Restricts the schema to the named tables; foreign keys between removed
  /// tables are dropped. Used to exclude replicated small tables before
  /// running the design algorithms (§3.1).
  Result<Schema> Subset(const std::vector<std::string>& keep_tables) const;

  std::string ToString() const;

 private:
  std::vector<TableDef> tables_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace pref
