#include "catalog/tpch_schema.h"

#include "common/status.h"

namespace pref {

namespace {
constexpr DataType kI = DataType::kInt64;
constexpr DataType kD = DataType::kDouble;
constexpr DataType kS = DataType::kString;
constexpr DataType kDate = DataType::kDate;
}  // namespace

Schema MakeTpchSchema() {
  Schema s;
  auto ok = [](auto&& r) { PREF_CHECK_OK(r.status()); };

  ok(s.AddTable("region",
                {{"r_regionkey", kI}, {"r_name", kS}, {"r_comment", kS}},
                {"r_regionkey"}));
  ok(s.AddTable("nation",
                {{"n_nationkey", kI},
                 {"n_name", kS},
                 {"n_regionkey", kI},
                 {"n_comment", kS}},
                {"n_nationkey"}));
  ok(s.AddTable("supplier",
                {{"s_suppkey", kI},
                 {"s_name", kS},
                 {"s_nationkey", kI},
                 {"s_phone", kS},
                 {"s_acctbal", kD}},
                {"s_suppkey"}));
  ok(s.AddTable("customer",
                {{"c_custkey", kI},
                 {"c_name", kS},
                 {"c_nationkey", kI},
                 {"c_phone", kS},
                 {"c_acctbal", kD},
                 {"c_mktsegment", kS}},
                {"c_custkey"}));
  ok(s.AddTable("part",
                {{"p_partkey", kI},
                 {"p_name", kS},
                 {"p_brand", kS},
                 {"p_type", kS},
                 {"p_size", kI},
                 {"p_container", kS},
                 {"p_retailprice", kD}},
                {"p_partkey"}));
  ok(s.AddTable("partsupp",
                {{"ps_partkey", kI},
                 {"ps_suppkey", kI},
                 {"ps_availqty", kI},
                 {"ps_supplycost", kD}},
                {"ps_partkey", "ps_suppkey"}));
  ok(s.AddTable("orders",
                {{"o_orderkey", kI},
                 {"o_custkey", kI},
                 {"o_orderstatus", kS},
                 {"o_totalprice", kD},
                 {"o_orderdate", kDate},
                 {"o_orderpriority", kS},
                 {"o_shippriority", kI}},
                {"o_orderkey"}));
  ok(s.AddTable("lineitem",
                {{"l_orderkey", kI},
                 {"l_partkey", kI},
                 {"l_suppkey", kI},
                 {"l_linenumber", kI},
                 {"l_quantity", kD},
                 {"l_extendedprice", kD},
                 {"l_discount", kD},
                 {"l_tax", kD},
                 {"l_returnflag", kS},
                 {"l_linestatus", kS},
                 {"l_shipdate", kDate},
                 {"l_commitdate", kDate},
                 {"l_receiptdate", kDate},
                 {"l_shipmode", kS}},
                {"l_orderkey", "l_linenumber"}));

  auto fk = [&](const char* name, const char* src, std::vector<std::string> sc,
                const char* dst, std::vector<std::string> dc) {
    PREF_CHECK_OK(s.AddForeignKey(name, src, sc, dst, dc));
  };
  fk("fk_nation_region", "nation", {"n_regionkey"}, "region", {"r_regionkey"});
  fk("fk_supplier_nation", "supplier", {"s_nationkey"}, "nation", {"n_nationkey"});
  fk("fk_customer_nation", "customer", {"c_nationkey"}, "nation", {"n_nationkey"});
  fk("fk_partsupp_part", "partsupp", {"ps_partkey"}, "part", {"p_partkey"});
  fk("fk_partsupp_supplier", "partsupp", {"ps_suppkey"}, "supplier", {"s_suppkey"});
  fk("fk_orders_customer", "orders", {"o_custkey"}, "customer", {"c_custkey"});
  fk("fk_lineitem_orders", "lineitem", {"l_orderkey"}, "orders", {"o_orderkey"});
  fk("fk_lineitem_supplier", "lineitem", {"l_suppkey"}, "supplier", {"s_suppkey"});
  fk("fk_lineitem_partsupp", "lineitem", {"l_partkey", "l_suppkey"}, "partsupp",
     {"ps_partkey", "ps_suppkey"});
  // Note: LINEITEM references PART only transitively through PARTSUPP (the
  // composite constraint above). This matches the schema graph implied by
  // the paper's Table 1: with NATION/REGION/SUPPLIER removed, the reduced
  // graph {C, O, L, PS, P} with edges L-O, O-C, L-PS, PS-P is a tree, which
  // is the only way SD (wo small tables) reaches DL = 1.0 and SD (wo
  // redundancy) reaches DL = 0.7 = 1 - |PS| / (|O|+|C|+|PS|+|P|) exactly as
  // reported. A direct lineitem -> part edge would close the cycle
  // L-PS-P-L and cap DL at ~0.93.
  return s;
}

int64_t TpchBaseCardinality(const std::string& table_name) {
  if (table_name == "region") return 5;
  if (table_name == "nation") return 25;
  if (table_name == "supplier") return 10000;
  if (table_name == "customer") return 150000;
  if (table_name == "part") return 200000;
  if (table_name == "partsupp") return 800000;
  if (table_name == "orders") return 1500000;
  if (table_name == "lineitem") return 6000000;
  return 0;
}

bool TpchIsFixedSize(const std::string& table_name) {
  return table_name == "region" || table_name == "nation";
}

}  // namespace pref
