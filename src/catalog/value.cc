#include "catalog/value.h"

#include <sstream>

namespace pref {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  std::ostringstream ss;
  if (is_int64()) {
    ss << AsInt64();
  } else if (is_double()) {
    ss << AsDouble();
  } else {
    ss << '\'' << AsString() << '\'';
  }
  return ss.str();
}

}  // namespace pref
