#include "catalog/tpcds_schema.h"

#include <algorithm>
#include "common/status.h"

namespace pref {

namespace {
constexpr DataType kI = DataType::kInt64;
constexpr DataType kD = DataType::kDouble;
constexpr DataType kS = DataType::kString;
}  // namespace

Schema MakeTpcdsSchema() {
  Schema s;
  auto ok = [](auto&& r) { PREF_CHECK_OK(r.status()); };

  // --- Dimension tables -----------------------------------------------
  ok(s.AddTable("date_dim",
                {{"d_date_sk", kI}, {"d_year", kI}, {"d_moy", kI}, {"d_dom", kI},
                 {"d_day_name", kS}},
                {"d_date_sk"}));
  ok(s.AddTable("time_dim",
                {{"t_time_sk", kI}, {"t_hour", kI}, {"t_minute", kI}},
                {"t_time_sk"}));
  ok(s.AddTable("item",
                {{"i_item_sk", kI}, {"i_brand_id", kI}, {"i_class", kS},
                 {"i_category", kS}, {"i_current_price", kD}},
                {"i_item_sk"}));
  ok(s.AddTable("customer",
                {{"c_customer_sk", kI}, {"c_current_cdemo_sk", kI},
                 {"c_current_hdemo_sk", kI}, {"c_current_addr_sk", kI},
                 {"c_first_name", kS}, {"c_last_name", kS}},
                {"c_customer_sk"}));
  ok(s.AddTable("customer_address",
                {{"ca_address_sk", kI}, {"ca_city", kS}, {"ca_state", kS},
                 {"ca_zip", kS}},
                {"ca_address_sk"}));
  ok(s.AddTable("customer_demographics",
                {{"cd_demo_sk", kI}, {"cd_gender", kS}, {"cd_marital_status", kS},
                 {"cd_education_status", kS}},
                {"cd_demo_sk"}));
  ok(s.AddTable("household_demographics",
                {{"hd_demo_sk", kI}, {"hd_income_band_sk", kI},
                 {"hd_buy_potential", kS}, {"hd_dep_count", kI}},
                {"hd_demo_sk"}));
  ok(s.AddTable("income_band",
                {{"ib_income_band_sk", kI}, {"ib_lower_bound", kI},
                 {"ib_upper_bound", kI}},
                {"ib_income_band_sk"}));
  ok(s.AddTable("store",
                {{"s_store_sk", kI}, {"s_store_name", kS}, {"s_state", kS},
                 {"s_market_id", kI}},
                {"s_store_sk"}));
  ok(s.AddTable("call_center",
                {{"cc_call_center_sk", kI}, {"cc_name", kS}, {"cc_class", kS}},
                {"cc_call_center_sk"}));
  ok(s.AddTable("catalog_page",
                {{"cp_catalog_page_sk", kI}, {"cp_department", kS},
                 {"cp_type", kS}},
                {"cp_catalog_page_sk"}));
  ok(s.AddTable("web_site",
                {{"web_site_sk", kI}, {"web_name", kS}, {"web_class", kS}},
                {"web_site_sk"}));
  ok(s.AddTable("web_page",
                {{"wp_web_page_sk", kI}, {"wp_type", kS}, {"wp_char_count", kI}},
                {"wp_web_page_sk"}));
  ok(s.AddTable("warehouse",
                {{"w_warehouse_sk", kI}, {"w_warehouse_name", kS},
                 {"w_state", kS}},
                {"w_warehouse_sk"}));
  ok(s.AddTable("promotion",
                {{"p_promo_sk", kI}, {"p_channel_email", kS}, {"p_channel_tv", kS}},
                {"p_promo_sk"}));
  ok(s.AddTable("reason",
                {{"r_reason_sk", kI}, {"r_reason_desc", kS}},
                {"r_reason_sk"}));
  ok(s.AddTable("ship_mode",
                {{"sm_ship_mode_sk", kI}, {"sm_type", kS}, {"sm_carrier", kS}},
                {"sm_ship_mode_sk"}));

  // --- Fact tables ------------------------------------------------------
  ok(s.AddTable("store_sales",
                {{"ss_sold_date_sk", kI}, {"ss_sold_time_sk", kI},
                 {"ss_item_sk", kI}, {"ss_customer_sk", kI}, {"ss_cdemo_sk", kI},
                 {"ss_hdemo_sk", kI}, {"ss_addr_sk", kI}, {"ss_store_sk", kI},
                 {"ss_promo_sk", kI}, {"ss_ticket_number", kI},
                 {"ss_quantity", kI}, {"ss_sales_price", kD},
                 {"ss_net_profit", kD}},
                {"ss_item_sk", "ss_ticket_number"}));
  ok(s.AddTable("store_returns",
                {{"sr_returned_date_sk", kI}, {"sr_item_sk", kI},
                 {"sr_customer_sk", kI}, {"sr_store_sk", kI},
                 {"sr_reason_sk", kI}, {"sr_ticket_number", kI},
                 {"sr_return_quantity", kI}, {"sr_return_amt", kD}},
                {"sr_item_sk", "sr_ticket_number"}));
  ok(s.AddTable("catalog_sales",
                {{"cs_sold_date_sk", kI}, {"cs_sold_time_sk", kI},
                 {"cs_ship_date_sk", kI},
                 {"cs_bill_customer_sk", kI}, {"cs_bill_cdemo_sk", kI},
                 {"cs_bill_hdemo_sk", kI}, {"cs_bill_addr_sk", kI},
                 {"cs_call_center_sk", kI},
                 {"cs_catalog_page_sk", kI}, {"cs_ship_mode_sk", kI},
                 {"cs_warehouse_sk", kI}, {"cs_item_sk", kI},
                 {"cs_promo_sk", kI}, {"cs_order_number", kI},
                 {"cs_quantity", kI}, {"cs_sales_price", kD},
                 {"cs_net_profit", kD}},
                {"cs_item_sk", "cs_order_number"}));
  ok(s.AddTable("catalog_returns",
                {{"cr_returned_date_sk", kI}, {"cr_item_sk", kI},
                 {"cr_refunded_customer_sk", kI}, {"cr_call_center_sk", kI},
                 {"cr_reason_sk", kI}, {"cr_order_number", kI},
                 {"cr_return_quantity", kI}, {"cr_return_amount", kD}},
                {"cr_item_sk", "cr_order_number"}));
  ok(s.AddTable("web_sales",
                {{"ws_sold_date_sk", kI}, {"ws_sold_time_sk", kI},
                 {"ws_ship_date_sk", kI}, {"ws_item_sk", kI},
                 {"ws_bill_customer_sk", kI}, {"ws_bill_hdemo_sk", kI},
                 {"ws_bill_addr_sk", kI},
                 {"ws_web_page_sk", kI}, {"ws_web_site_sk", kI},
                 {"ws_ship_mode_sk", kI}, {"ws_warehouse_sk", kI},
                 {"ws_promo_sk", kI}, {"ws_order_number", kI},
                 {"ws_quantity", kI}, {"ws_sales_price", kD},
                 {"ws_net_profit", kD}},
                {"ws_item_sk", "ws_order_number"}));
  ok(s.AddTable("web_returns",
                {{"wr_returned_date_sk", kI}, {"wr_item_sk", kI},
                 {"wr_refunded_customer_sk", kI}, {"wr_web_page_sk", kI},
                 {"wr_reason_sk", kI}, {"wr_order_number", kI},
                 {"wr_return_quantity", kI}, {"wr_return_amt", kD}},
                {"wr_item_sk", "wr_order_number"}));
  ok(s.AddTable("inventory",
                {{"inv_date_sk", kI}, {"inv_item_sk", kI},
                 {"inv_warehouse_sk", kI}, {"inv_quantity_on_hand", kI}},
                {"inv_date_sk", "inv_item_sk", "inv_warehouse_sk"}));

  auto fk = [&](const char* name, const char* src, const char* sc, const char* dst,
                const char* dc) {
    PREF_CHECK_OK(s.AddForeignKey(name, src, {sc}, dst, {dc}));
  };

  // Dimension-to-dimension snowflake edges.
  fk("fk_customer_cdemo", "customer", "c_current_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("fk_customer_hdemo", "customer", "c_current_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("fk_customer_addr", "customer", "c_current_addr_sk", "customer_address",
     "ca_address_sk");
  fk("fk_hdemo_income", "household_demographics", "hd_income_band_sk", "income_band",
     "ib_income_band_sk");

  // store_sales star.
  fk("fk_ss_date", "store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk");
  fk("fk_ss_time", "store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk");
  fk("fk_ss_item", "store_sales", "ss_item_sk", "item", "i_item_sk");
  fk("fk_ss_customer", "store_sales", "ss_customer_sk", "customer", "c_customer_sk");
  fk("fk_ss_cdemo", "store_sales", "ss_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("fk_ss_hdemo", "store_sales", "ss_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("fk_ss_addr", "store_sales", "ss_addr_sk", "customer_address", "ca_address_sk");
  fk("fk_ss_store", "store_sales", "ss_store_sk", "store", "s_store_sk");
  fk("fk_ss_promo", "store_sales", "ss_promo_sk", "promotion", "p_promo_sk");

  // store_returns star (+ link back to store_sales via item/ticket).
  fk("fk_sr_date", "store_returns", "sr_returned_date_sk", "date_dim", "d_date_sk");
  fk("fk_sr_item", "store_returns", "sr_item_sk", "item", "i_item_sk");
  fk("fk_sr_customer", "store_returns", "sr_customer_sk", "customer",
     "c_customer_sk");
  fk("fk_sr_store", "store_returns", "sr_store_sk", "store", "s_store_sk");
  fk("fk_sr_reason", "store_returns", "sr_reason_sk", "reason", "r_reason_sk");
  {
    PREF_CHECK_OK(s.AddForeignKey("fk_sr_ss", "store_returns",
                                {"sr_item_sk", "sr_ticket_number"}, "store_sales",
                                {"ss_item_sk", "ss_ticket_number"}));
  }

  // catalog_sales star.
  fk("fk_cs_date", "catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk");
  fk("fk_cs_time", "catalog_sales", "cs_sold_time_sk", "time_dim", "t_time_sk");
  fk("fk_cs_ship_date", "catalog_sales", "cs_ship_date_sk", "date_dim", "d_date_sk");
  fk("fk_cs_customer", "catalog_sales", "cs_bill_customer_sk", "customer",
     "c_customer_sk");
  fk("fk_cs_cdemo", "catalog_sales", "cs_bill_cdemo_sk", "customer_demographics",
     "cd_demo_sk");
  fk("fk_cs_hdemo", "catalog_sales", "cs_bill_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("fk_cs_addr", "catalog_sales", "cs_bill_addr_sk", "customer_address",
     "ca_address_sk");
  fk("fk_cs_cc", "catalog_sales", "cs_call_center_sk", "call_center",
     "cc_call_center_sk");
  fk("fk_cs_cp", "catalog_sales", "cs_catalog_page_sk", "catalog_page",
     "cp_catalog_page_sk");
  fk("fk_cs_sm", "catalog_sales", "cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk");
  fk("fk_cs_wh", "catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk");
  fk("fk_cs_item", "catalog_sales", "cs_item_sk", "item", "i_item_sk");
  fk("fk_cs_promo", "catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk");

  // catalog_returns star (+ link to catalog_sales).
  fk("fk_cr_date", "catalog_returns", "cr_returned_date_sk", "date_dim", "d_date_sk");
  fk("fk_cr_item", "catalog_returns", "cr_item_sk", "item", "i_item_sk");
  fk("fk_cr_customer", "catalog_returns", "cr_refunded_customer_sk", "customer",
     "c_customer_sk");
  fk("fk_cr_cc", "catalog_returns", "cr_call_center_sk", "call_center",
     "cc_call_center_sk");
  fk("fk_cr_reason", "catalog_returns", "cr_reason_sk", "reason", "r_reason_sk");
  {
    PREF_CHECK_OK(s.AddForeignKey("fk_cr_cs", "catalog_returns",
                                {"cr_item_sk", "cr_order_number"}, "catalog_sales",
                                {"cs_item_sk", "cs_order_number"}));
  }

  // web_sales star.
  fk("fk_ws_date", "web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk");
  fk("fk_ws_time", "web_sales", "ws_sold_time_sk", "time_dim", "t_time_sk");
  fk("fk_ws_ship_date", "web_sales", "ws_ship_date_sk", "date_dim", "d_date_sk");
  fk("fk_ws_item", "web_sales", "ws_item_sk", "item", "i_item_sk");
  fk("fk_ws_customer", "web_sales", "ws_bill_customer_sk", "customer",
     "c_customer_sk");
  fk("fk_ws_hdemo", "web_sales", "ws_bill_hdemo_sk", "household_demographics",
     "hd_demo_sk");
  fk("fk_ws_addr", "web_sales", "ws_bill_addr_sk", "customer_address",
     "ca_address_sk");
  fk("fk_ws_wp", "web_sales", "ws_web_page_sk", "web_page", "wp_web_page_sk");
  fk("fk_ws_site", "web_sales", "ws_web_site_sk", "web_site", "web_site_sk");
  fk("fk_ws_sm", "web_sales", "ws_ship_mode_sk", "ship_mode", "sm_ship_mode_sk");
  fk("fk_ws_wh", "web_sales", "ws_warehouse_sk", "warehouse", "w_warehouse_sk");
  fk("fk_ws_promo", "web_sales", "ws_promo_sk", "promotion", "p_promo_sk");

  // web_returns star (+ link to web_sales).
  fk("fk_wr_date", "web_returns", "wr_returned_date_sk", "date_dim", "d_date_sk");
  fk("fk_wr_item", "web_returns", "wr_item_sk", "item", "i_item_sk");
  fk("fk_wr_customer", "web_returns", "wr_refunded_customer_sk", "customer",
     "c_customer_sk");
  fk("fk_wr_wp", "web_returns", "wr_web_page_sk", "web_page", "wp_web_page_sk");
  fk("fk_wr_reason", "web_returns", "wr_reason_sk", "reason", "r_reason_sk");
  {
    PREF_CHECK_OK(s.AddForeignKey("fk_wr_ws", "web_returns",
                                {"wr_item_sk", "wr_order_number"}, "web_sales",
                                {"ws_item_sk", "ws_order_number"}));
  }

  // inventory star.
  fk("fk_inv_date", "inventory", "inv_date_sk", "date_dim", "d_date_sk");
  fk("fk_inv_item", "inventory", "inv_item_sk", "item", "i_item_sk");
  fk("fk_inv_wh", "inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk");

  return s;
}

int64_t TpcdsBaseCardinality(const std::string& t) {
  // Proportional to dsdgen SF-1 row counts, divided by ~24 so that the
  // largest fact table matches TPC-H LINEITEM-at-SF-0.02 scale used in
  // the in-memory experiments. Ratios between tables are preserved.
  if (t == "date_dim") return 3049;        // 73049 / 24
  if (t == "time_dim") return 3600;        // 86400 / 24
  if (t == "item") return 750;             // 18000 / 24
  if (t == "customer") return 4167;        // 100000 / 24
  if (t == "customer_address") return 2084;  // 50014 / 24
  if (t == "customer_demographics") return 8000;  // 1920800 / 240 (capped)
  if (t == "household_demographics") return 300;  // 7200 / 24
  if (t == "income_band") return 20;
  if (t == "store") return 12;
  if (t == "call_center") return 6;
  if (t == "catalog_page") return 500;     // 11718 / 24
  if (t == "web_site") return 30;
  if (t == "web_page") return 60;
  if (t == "warehouse") return 5;
  if (t == "promotion") return 300;
  if (t == "reason") return 35;
  if (t == "ship_mode") return 20;
  if (t == "store_sales") return 120000;   // 2880404 / 24
  if (t == "store_returns") return 12000;  // 287514 / 24
  if (t == "catalog_sales") return 60000;  // 1441548 / 24
  if (t == "catalog_returns") return 6000; // 144067 / 24
  if (t == "web_sales") return 30000;      // 719384 / 24
  if (t == "web_returns") return 3000;     // 71763 / 24
  if (t == "inventory") return 48000;      // 11745000 / 240 (capped)
  return 0;
}

const std::vector<std::string>& TpcdsFactTables() {
  static const std::vector<std::string> kFacts = {
      "store_sales", "store_returns", "catalog_sales", "catalog_returns",
      "web_sales",   "web_returns",   "inventory"};
  return kFacts;
}

bool TpcdsIsFactTable(const std::string& t) {
  const auto& f = TpcdsFactTables();
  return std::find(f.begin(), f.end(), t) != f.end();
}

const std::vector<std::string>& TpcdsSmallTables() {
  static const std::vector<std::string> kSmall = {
      "income_band", "store", "call_center", "web_site", "web_page",
      "warehouse",   "reason", "ship_mode"};
  return kSmall;
}

}  // namespace pref
