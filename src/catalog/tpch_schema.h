// The TPC-H schema (8 tables, uniform data) used throughout the paper's
// evaluation (§5). Column sets are trimmed to keys plus representative
// payload; every join key referenced by the 22 benchmark queries is present.

#pragma once

#include "catalog/schema.h"

namespace pref {

/// Builds the TPC-H schema with all referential constraints.
Schema MakeTpchSchema();

/// Base (scale-factor 1) cardinalities of the TPC-H tables, keyed by name.
/// LINEITEM is approximate in TPC-H itself (~6M at SF 1); we use the
/// expected value. Scaled tables multiply by SF; NATION/REGION are fixed.
int64_t TpchBaseCardinality(const std::string& table_name);

/// True for tables whose size does not grow with scale factor.
bool TpchIsFixedSize(const std::string& table_name);

}  // namespace pref
