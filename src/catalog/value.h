// Value: the scalar type crossing the library's API boundaries.
//
// Storage is columnar (see storage/column.h); Value is used where a single
// scalar is handed around — predicate constants, tuple materialization at
// result boundaries, and partition-index keys.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"

namespace pref {

/// Physical column types. Dates are stored as days-since-epoch int64s
/// (kDate exists so schemas stay self-describing).
enum class DataType : uint8_t { kInt64, kDouble, kString, kDate };

const char* DataTypeName(DataType t);

/// \brief A typed scalar: int64, double, or string.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  uint64_t Hash() const {
    if (is_int64()) return HashInt64(AsInt64());
    if (is_double()) {
      double d = AsDouble();
      int64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      return HashInt64(bits);
    }
    return HashBytes(AsString());
  }

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> repr_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};

}  // namespace pref
