#include "catalog/schema.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace pref {

Result<ColumnId> TableDef::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<ColumnId>(i);
  }
  return Status::NotFound("column '", column_name, "' not in table '", name, "'");
}

bool JoinPredicate::EquivalentTo(const JoinPredicate& other) const {
  auto same = [](const JoinPredicate& a, const JoinPredicate& b) {
    return a.left_table == b.left_table && a.right_table == b.right_table &&
           a.left_columns == b.left_columns && a.right_columns == b.right_columns;
  };
  return same(*this, other) || same(Reversed(), other);
}

Result<TableId> Schema::AddTable(const std::string& name,
                                 std::vector<ColumnDef> columns,
                                 std::vector<std::string> primary_key) {
  if (columns.empty()) return Status::Invalid("table '", name, "' has no columns");
  if (FindTable(name).ok()) return Status::AlreadyExists("table '", name, "'");
  std::unordered_set<std::string> seen;
  for (const auto& c : columns) {
    if (!seen.insert(c.name).second) {
      return Status::Invalid("duplicate column '", c.name, "' in table '", name, "'");
    }
  }
  TableDef def;
  def.id = static_cast<TableId>(tables_.size());
  def.name = name;
  def.columns = std::move(columns);
  for (const auto& pk_col : primary_key) {
    PREF_ASSIGN_OR_RAISE(ColumnId cid, def.FindColumn(pk_col));
    def.primary_key.push_back(cid);
  }
  tables_.push_back(std::move(def));
  return tables_.back().id;
}

Status Schema::AddForeignKey(const std::string& fk_name, const std::string& src_table,
                             const std::vector<std::string>& src_columns,
                             const std::string& dst_table,
                             const std::vector<std::string>& dst_columns) {
  if (src_columns.empty() || src_columns.size() != dst_columns.size()) {
    return Status::Invalid("foreign key '", fk_name,
                           "': column lists must be non-empty and equal-sized");
  }
  PREF_ASSIGN_OR_RAISE(TableId src, FindTable(src_table));
  PREF_ASSIGN_OR_RAISE(TableId dst, FindTable(dst_table));
  ForeignKey fk;
  fk.name = fk_name;
  fk.src_table = src;
  fk.dst_table = dst;
  for (const auto& c : src_columns) {
    PREF_ASSIGN_OR_RAISE(ColumnId cid, table(src).FindColumn(c));
    fk.src_columns.push_back(cid);
  }
  for (const auto& c : dst_columns) {
    PREF_ASSIGN_OR_RAISE(ColumnId cid, table(dst).FindColumn(c));
    fk.dst_columns.push_back(cid);
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

Result<TableId> Schema::FindTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return t.id;
  }
  return Status::NotFound("table '", name, "' not in schema");
}

JoinPredicate Schema::PredicateOf(const ForeignKey& fk) const {
  return JoinPredicate{fk.src_table, fk.src_columns, fk.dst_table, fk.dst_columns};
}

Result<JoinPredicate> Schema::MakePredicate(
    const std::string& left_table, const std::vector<std::string>& left_columns,
    const std::string& right_table,
    const std::vector<std::string>& right_columns) const {
  if (left_columns.empty() || left_columns.size() != right_columns.size()) {
    return Status::Invalid("join predicate column lists must be non-empty equal-sized");
  }
  PREF_ASSIGN_OR_RAISE(TableId lt, FindTable(left_table));
  PREF_ASSIGN_OR_RAISE(TableId rt, FindTable(right_table));
  JoinPredicate p;
  p.left_table = lt;
  p.right_table = rt;
  for (const auto& c : left_columns) {
    PREF_ASSIGN_OR_RAISE(ColumnId cid, table(lt).FindColumn(c));
    p.left_columns.push_back(cid);
  }
  for (const auto& c : right_columns) {
    PREF_ASSIGN_OR_RAISE(ColumnId cid, table(rt).FindColumn(c));
    p.right_columns.push_back(cid);
  }
  return p;
}

Result<Schema> Schema::Subset(const std::vector<std::string>& keep_tables) const {
  Schema out;
  std::vector<TableId> old_ids;
  for (const auto& name : keep_tables) {
    PREF_ASSIGN_OR_RAISE(TableId id, FindTable(name));
    old_ids.push_back(id);
    const TableDef& t = table(id);
    std::vector<std::string> pk_names;
    for (ColumnId c : t.primary_key) pk_names.push_back(t.column(c).name);
    // The new id is recomputable (dense insertion order); only failure matters.
    PREF_RETURN_NOT_OK(out.AddTable(t.name, t.columns, pk_names).status());
  }
  auto kept = [&](TableId id) {
    return std::find(old_ids.begin(), old_ids.end(), id) != old_ids.end();
  };
  for (const auto& fk : foreign_keys_) {
    if (!kept(fk.src_table) || !kept(fk.dst_table)) continue;
    std::vector<std::string> src_cols, dst_cols;
    for (ColumnId c : fk.src_columns) src_cols.push_back(table(fk.src_table).column(c).name);
    for (ColumnId c : fk.dst_columns) dst_cols.push_back(table(fk.dst_table).column(c).name);
    PREF_RETURN_NOT_OK(out.AddForeignKey(fk.name, table(fk.src_table).name, src_cols,
                                         table(fk.dst_table).name, dst_cols));
  }
  return out;
}

std::string Schema::ToString() const {
  std::ostringstream ss;
  for (const auto& t : tables_) {
    ss << t.name << "(";
    for (size_t i = 0; i < t.columns.size(); ++i) {
      if (i) ss << ", ";
      ss << t.columns[i].name << " " << DataTypeName(t.columns[i].type);
    }
    ss << ")\n";
  }
  for (const auto& fk : foreign_keys_) {
    ss << "  FK " << fk.name << ": " << table(fk.src_table).name << " -> "
       << table(fk.dst_table).name << "\n";
  }
  return ss.str();
}

}  // namespace pref
