// The TPC-DS schema (24 tables: 7 fact + 17 dimension, skewed data) used by
// the paper to evaluate design on a complex snowflake schema (§5.3).
// Column sets are trimmed to surrogate keys, foreign keys and representative
// measures; every referential constraint relevant to star-join workloads is
// declared.

#pragma once

#include <vector>

#include "catalog/schema.h"

namespace pref {

/// Builds the 24-table TPC-DS schema with referential constraints.
Schema MakeTpcdsSchema();

/// Base (scale-factor 1) cardinality of a TPC-DS table, keyed by name.
/// Proportional to the official dsdgen SF-1 counts, reduced by a constant
/// factor so SF-scaled experiments fit in memory (documented in DESIGN.md).
int64_t TpcdsBaseCardinality(const std::string& table_name);

/// The seven fact tables.
const std::vector<std::string>& TpcdsFactTables();

/// True if the named table is one of the seven fact tables.
bool TpcdsIsFactTable(const std::string& table_name);

/// Dimension tables with fewer than 1000 rows at SF 1 — the "small tables"
/// the paper removes and replicates before running the design algorithms.
const std::vector<std::string>& TpcdsSmallTables();

}  // namespace pref
