// Query graphs (§4.2): the join structure of a workload query, which is
// all the workload-driven design consumes.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace pref {

/// \brief An undirected labeled query graph G_Q: tables plus equi-join
/// predicates. Non-equi joins are retained separately so the engine can
/// execute them, but they never enter schema graphs (they would degenerate
/// to full redundancy under PREF, §2.1).
struct QueryGraph {
  std::string name;
  std::vector<TableId> tables;
  std::vector<JoinPredicate> equi_joins;

  bool UsesTable(TableId t) const {
    for (TableId x : tables) {
      if (x == t) return true;
    }
    return false;
  }
};

/// \brief Convenience builder resolving table/column names.
class QueryGraphBuilder {
 public:
  QueryGraphBuilder(const Schema* schema, std::string name)
      : schema_(schema) {
    graph_.name = std::move(name);
  }

  QueryGraphBuilder& Table(const std::string& table) {
    auto id = schema_->FindTable(table);
    if (!id.ok()) {
      status_ = id.status();
      return *this;
    }
    if (!graph_.UsesTable(*id)) graph_.tables.push_back(*id);
    return *this;
  }

  /// Adds `left.lcol = right.rcol` (both tables are added as nodes).
  QueryGraphBuilder& Join(const std::string& left, const std::string& lcol,
                          const std::string& right, const std::string& rcol) {
    return JoinMulti(left, {lcol}, right, {rcol});
  }

  QueryGraphBuilder& JoinMulti(const std::string& left,
                               const std::vector<std::string>& lcols,
                               const std::string& right,
                               const std::vector<std::string>& rcols) {
    Table(left);
    Table(right);
    auto p = schema_->MakePredicate(left, lcols, right, rcols);
    if (!p.ok()) {
      status_ = p.status();
      return *this;
    }
    graph_.equi_joins.push_back(*p);
    return *this;
  }

  Result<QueryGraph> Build() {
    if (!status_.ok()) return status_;
    return graph_;
  }

 private:
  const Schema* schema_;
  QueryGraph graph_;
  Status status_;
};

}  // namespace pref
