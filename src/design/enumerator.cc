#include "design/enumerator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/metrics.h"
#include "common/metric_names.h"

namespace pref {

namespace {

/// Orients `e` so that `left` is the referencing (left) side.
JoinPredicate Oriented(const WeightedEdge& e, TableId left) {
  return e.predicate.left_table == left ? e.predicate : e.predicate.Reversed();
}

/// A sub-MAST produced by cutting edges: node set + surviving edges.
struct SubTree {
  std::set<TableId> nodes;
  std::vector<const WeightedEdge*> edges;
};

/// Splits `mast` into connected sub-trees after removing `cut` edges.
std::vector<SubTree> SplitByCut(const Mast& mast,
                                const std::set<const WeightedEdge*>& cut) {
  std::vector<SubTree> out;
  std::set<TableId> visited;
  for (TableId start : mast.nodes) {
    if (visited.count(start)) continue;
    SubTree tree;
    std::vector<TableId> stack{start};
    visited.insert(start);
    tree.nodes.insert(start);
    while (!stack.empty()) {
      TableId t = stack.back();
      stack.pop_back();
      for (const auto& e : mast.edges) {
        if (cut.count(&e) || !e.predicate.Mentions(t)) continue;
        TableId other =
            e.predicate.left_table == t ? e.predicate.right_table : e.predicate.left_table;
        if (visited.count(other)) continue;
        visited.insert(other);
        tree.nodes.insert(other);
        tree.edges.push_back(&e);
        stack.push_back(other);
      }
    }
    // Collect edges fully inside this tree (the loop above may rediscover
    // some; dedupe).
    tree.edges.clear();
    for (const auto& e : mast.edges) {
      if (cut.count(&e)) continue;
      if (tree.nodes.count(e.predicate.left_table) &&
          tree.nodes.count(e.predicate.right_table)) {
        tree.edges.push_back(&e);
      }
    }
    out.push_back(std::move(tree));
  }
  return out;
}

/// Seed hash attributes: the seed-side columns of the heaviest edge
/// incident to the seed (§3.1); primary key for isolated nodes.
std::vector<ColumnId> SeedAttributes(const SubTree& tree, TableId seed,
                                     const Schema& schema) {
  const WeightedEdge* heaviest = nullptr;
  for (const WeightedEdge* e : tree.edges) {
    if (!e->predicate.Mentions(seed)) continue;
    if (heaviest == nullptr || e->weight > heaviest->weight) heaviest = e;
  }
  if (heaviest != nullptr) return heaviest->predicate.ColumnsOf(seed);
  const TableDef& def = schema.table(seed);
  if (!def.primary_key.empty()) return def.primary_key;
  return {0};
}

/// Builds the plan fragment for one sub-tree with `seed` as seed table.
/// Returns the estimated size, filling `schemes`. Fails constraint checks
/// by returning infinity.
///
/// Co-location refinement of Appendix A: if a parent table's placement is
/// *determined* by a column set K (the seed's hash attributes, or the
/// referencing columns of an r = 1 PREF edge) and the partitioning
/// predicate's parent-side columns contain K, then every partitioning
/// partner of a child tuple lives in a single partition and the edge's
/// redundancy factor is exactly 1 — e.g. ORDERS PREF-partitioned on
/// orderkey by a LINEITEM table hash-partitioned on orderkey. The generic
/// balls-into-bins estimate only applies to scattered parents.
double PlanSubTree(const SubTree& tree, TableId seed, const Schema& schema,
                   RedundancyEstimator* estimator,
                   const EnumerationConstraints& constraints,
                   std::map<TableId, TableScheme>* schemes) {
  const double n = static_cast<double>(estimator->num_partitions());
  TableScheme seed_scheme;
  seed_scheme.is_seed = true;
  seed_scheme.hash_columns = SeedAttributes(tree, seed, schema);
  seed_scheme.path_factor = 1.0;
  // Per-table copy profiles for skew-aware cumulative estimation.
  std::map<TableId, RedundancyEstimator::CopyProfile> profiles;
  profiles[seed] = {};  // every seed tuple has exactly one copy
  // colocation_key[t]: columns of t whose equality implies same partition
  // (empty = placement is scattered).
  std::map<TableId, std::set<ColumnId>> colocation_key;
  colocation_key[seed] = std::set<ColumnId>(seed_scheme.hash_columns.begin(),
                                            seed_scheme.hash_columns.end());
  (*schemes)[seed] = std::move(seed_scheme);
  double size = estimator->EstimateTableSize(seed, 1.0);

  // BFS from the seed, PREF-partitioning every reached table by its parent
  // (function addPREF of Listing 1), accumulating the path factor.
  std::vector<TableId> stack{seed};
  std::set<TableId> done{seed};
  while (!stack.empty()) {
    TableId parent = stack.back();
    stack.pop_back();
    double parent_factor = schemes->at(parent).path_factor;
    for (const WeightedEdge* e : tree.edges) {
      if (!e->predicate.Mentions(parent)) continue;
      TableId child = e->predicate.left_table == parent ? e->predicate.right_table
                                                        : e->predicate.left_table;
      if (done.count(child)) continue;
      done.insert(child);
      TableScheme scheme;
      scheme.is_seed = false;
      scheme.predicate = Oriented(*e, child);
      const auto& parent_key = colocation_key[parent];
      std::set<ColumnId> pred_parent_cols(scheme.predicate.right_columns.begin(),
                                          scheme.predicate.right_columns.end());
      bool colocated = !parent_key.empty() &&
                       std::includes(pred_parent_cols.begin(), pred_parent_cols.end(),
                                     parent_key.begin(), parent_key.end());
      if (colocated) {
        // All partners of a child tuple share one partition: r(e) = 1 and
        // the child's own placement is determined by its predicate columns.
        scheme.path_factor = parent_factor;
        colocation_key[child] =
            std::set<ColumnId>(scheme.predicate.left_columns.begin(),
                               scheme.predicate.left_columns.end());
        RedundancyEstimator::CopyProfile profile;
        profile.key_columns = scheme.predicate.left_columns;
        profiles[child] = std::move(profile);  // one copy per tuple
      } else if (constraints.naive_cumulative_estimates) {
        // Appendix A verbatim: independent per-edge factors multiplied
        // along the path from the seed (ablation baseline).
        scheme.path_factor =
            std::min(n, parent_factor * estimator->EdgeFactor(scheme.predicate));
        profiles[child] = {};
        colocation_key[child] = {};
      } else {
        // Cumulative redundancy: the child's copies are the occupancy of
        // f * parent_copies(v) placements (per-value when the keys align),
        // not an independent multiplication of edge factors.
        RedundancyEstimator::CopyProfile child_profile;
        scheme.path_factor = std::min(
            n, estimator->EdgeFactor(scheme.predicate, &profiles[parent],
                                     &child_profile));
        profiles[child] = std::move(child_profile);
        colocation_key[child] = {};
      }
      if (constraints.no_redundancy.count(child) &&
          scheme.path_factor > 1.0 + constraints.epsilon) {
        return std::numeric_limits<double>::infinity();
      }
      size += estimator->EstimateTableSize(child, scheme.path_factor);
      (*schemes)[child] = std::move(scheme);
      stack.push_back(child);
    }
  }
  return size;
}

/// Best seed choice for one sub-tree; infinity if no seed satisfies the
/// constraints.
double BestPlanForSubTree(const SubTree& tree, const Schema& schema,
                          RedundancyEstimator* estimator,
                          const EnumerationConstraints& constraints,
                          std::map<TableId, TableScheme>* best_schemes) {
  // Every (sub-tree, seed) pair is one candidate configuration; constraint
  // failures (infinite size) count as pruned.
  static Counter& enumerated =
      MetricsRegistry::Default().GetCounter(metric_names::kDesignConfigsEnumerated);
  static Counter& pruned =
      MetricsRegistry::Default().GetCounter(metric_names::kDesignConfigsPruned);
  double best = std::numeric_limits<double>::infinity();
  for (TableId seed : tree.nodes) {
    // A constrained table is a fine seed; an unconstrained seed is fine
    // too. Constraint failures surface inside PlanSubTree.
    std::map<TableId, TableScheme> schemes;
    double size = PlanSubTree(tree, seed, schema, estimator, constraints, &schemes);
    enumerated.Add(1);
    if (std::isinf(size)) pruned.Add(1);
    if (size < best) {
      best = size;
      *best_schemes = std::move(schemes);
    }
  }
  return best;
}

/// Enumerates cut-sets of size k (indices into mast.edges), ordered by
/// ascending total cut weight, capped at `limit` sets.
std::vector<std::vector<size_t>> EnumerateCuts(const Mast& mast, size_t k,
                                               int limit) {
  std::vector<std::vector<size_t>> cuts;
  std::vector<size_t> current;
  std::function<void(size_t)> rec = [&](size_t start) {
    if (static_cast<int>(cuts.size()) >= limit) return;
    if (current.size() == k) {
      cuts.push_back(current);
      return;
    }
    for (size_t i = start; i < mast.edges.size(); ++i) {
      current.push_back(i);
      rec(i + 1);
      current.pop_back();
    }
  };
  rec(0);
  std::sort(cuts.begin(), cuts.end(), [&](const auto& a, const auto& b) {
    double wa = 0, wb = 0;
    for (size_t i : a) wa += mast.edges[i].weight;
    for (size_t i : b) wb += mast.edges[i].weight;
    return wa < wb;
  });
  return cuts;
}

}  // namespace

Result<ComponentPlan> FindOptimalPc(const Mast& mast, const Schema& schema,
                                    RedundancyEstimator* estimator,
                                    const EnumerationConstraints& constraints) {
  if (mast.nodes.empty()) return Status::Invalid("empty MAST");
  const size_t max_seeds = mast.nodes.size();
  for (size_t num_seeds = 1; num_seeds <= max_seeds; ++num_seeds) {
    size_t cuts_needed = num_seeds - 1;
    if (cuts_needed > mast.edges.size()) break;
    auto cut_sets = EnumerateCuts(mast, cuts_needed, constraints.max_cut_enumeration);
    ComponentPlan best;
    best.estimated_size = std::numeric_limits<double>::infinity();
    for (const auto& cut_indices : cut_sets) {
      std::set<const WeightedEdge*> cut;
      double cut_weight = 0;
      for (size_t i : cut_indices) {
        cut.insert(&mast.edges[i]);
        cut_weight += mast.edges[i].weight;
      }
      // Prefer the lightest feasible cut (maximal locality); cut_sets are
      // sorted, so once a feasible plan exists, heavier cuts only compete
      // if they tie on weight.
      if (best.estimated_size < std::numeric_limits<double>::infinity() &&
          cut_weight > best.cut_weight) {
        break;
      }
      auto trees = SplitByCut(mast, cut);
      ComponentPlan plan;
      plan.num_seeds = static_cast<int>(trees.size());
      plan.cut_weight = cut_weight;
      plan.estimated_size = 0;
      bool feasible = true;
      for (const auto& tree : trees) {
        std::map<TableId, TableScheme> schemes;
        double size =
            BestPlanForSubTree(tree, schema, estimator, constraints, &schemes);
        if (std::isinf(size)) {
          feasible = false;
          break;
        }
        plan.estimated_size += size;
        for (auto& [t, s] : schemes) plan.schemes[t] = std::move(s);
      }
      if (!feasible) continue;
      if (plan.estimated_size < best.estimated_size) best = std::move(plan);
    }
    if (best.estimated_size < std::numeric_limits<double>::infinity()) {
      return best;
    }
  }
  return Status::Invalid("no partitioning configuration satisfies the constraints");
}

}  // namespace pref
