// Schema-driven automated partitioning design (§3): derive the schema
// graph from the referential constraints, extract maximum spanning trees,
// and enumerate PREF configurations minimizing estimated redundancy.

#pragma once

#include <string>
#include <vector>

#include "design/enumerator.h"
#include "partition/config.h"

namespace pref {

struct SdOptions {
  int num_partitions = 10;
  /// Histogram sampling rate for the Appendix A estimator (Figure 13).
  double sample_rate = 1.0;
  uint64_t seed = 17;
  /// Small tables to exclude from the schema graph and replicate instead
  /// (the paper's "wo small tables" variants, §3.1).
  std::vector<std::string> replicate_tables;
  /// Tables for which data redundancy is disallowed (§3.4).
  std::vector<std::string> no_redundancy_tables;
  /// If non-empty, design only these tables (the "individual stars"
  /// variants of §5.3 restrict the design to one star sub-schema at a
  /// time); all other tables are left out of the configuration entirely.
  std::vector<std::string> restrict_to_tables;
  /// Bound on the number of equal-weight MASTs examined per component.
  int max_mast_candidates = 8;
  /// Ablation: use the paper's naive per-edge factor multiplication
  /// instead of the skew-aware copy-profile propagation.
  bool naive_estimator = false;
};

struct SdResult {
  PartitioningConfig config;
  /// Chosen MAST per connected component of the schema graph.
  std::vector<Mast> masts;
  /// Estimated tuples after partitioning (replicated tables included).
  double estimated_size = 0;
  /// Estimated data redundancy DR.
  double estimated_redundancy = 0;
  /// Total seed tables across components.
  int num_seed_tables = 0;
  /// Wall time of the design run.
  double design_seconds = 0;
};

/// Runs the schema-driven design over all tables of `db`.
Result<SdResult> SchemaDrivenDesign(const Database& db, const SdOptions& options);

}  // namespace pref
