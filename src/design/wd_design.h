// Workload-driven automated partitioning design (§4): per-query MASTs,
// containment merging (phase 1), and cost-based dynamic-programming
// merging (phase 2), producing one partitioning configuration per final
// merged MAST (a Deployment).

#pragma once

#include <string>
#include <vector>

#include "design/enumerator.h"
#include "design/query_graph.h"
#include "partition/deployment.h"

namespace pref {

struct WdOptions {
  int num_partitions = 10;
  double sample_rate = 1.0;
  uint64_t seed = 17;
  /// Small tables replicated in every output configuration and excluded
  /// from the query graphs.
  std::vector<std::string> replicate_tables;
  /// Beam width for the level-wise merge DP. Width 1 reproduces the
  /// paper's "optimal configuration per level" chain (Figure 6); larger
  /// widths explore more merge configurations.
  int beam_width = 4;
  int max_mast_candidates = 4;
};

struct WdResult {
  /// One configuration per final merged MAST (plus replicated tables).
  Deployment deployment;
  std::vector<Mast> final_masts;
  /// Connected components before any merge (one per query component).
  int initial_components = 0;
  /// After containment merging (phase 1).
  int components_after_phase1 = 0;
  /// After cost-based merging (phase 2).
  int components_after_phase2 = 0;
  /// Sum of estimated per-MAST partitioned sizes.
  double estimated_size = 0;
  double design_seconds = 0;
};

/// Runs the workload-driven design for `workload` over `db`.
Result<WdResult> WorkloadDrivenDesign(const Database& db,
                                      const std::vector<QueryGraph>& workload,
                                      const WdOptions& options);

/// Turns a designed Deployment into one finalized PartitioningConfig a
/// migration can target: picks the deployment configuration covering the
/// most tables of `current` (first wins ties), copies its specs verbatim,
/// and fills every remaining table of `current` with the spec it is
/// already serving under — so tables the drifted workload never mentioned
/// plan as kKeep (zero movement) instead of being re-partitioned by
/// default. Fails if the deployment is empty or the completed config does
/// not validate (e.g. partition counts disagree along a PREF chain that
/// spans designed and kept tables).
Result<PartitioningConfig> CompleteServingConfig(
    const Deployment& deployment, const PartitionedDatabase& current);

/// Workload-level data locality: each query is routed to its deployment
/// configuration and contributes the weight of its join edges that execute
/// locally there (§4.1 maximizes this per query). This is the DL the paper
/// reports for WD variants.
double WorkloadLocality(const Database& db, const Deployment& deployment,
                        const std::vector<QueryGraph>& workload);

}  // namespace pref
