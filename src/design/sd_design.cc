#include "design/sd_design.h"

#include <algorithm>
#include <limits>

#include "common/stopwatch.h"

namespace pref {

namespace {

/// Translates a ComponentPlan fragment into AddHash/AddPref calls.
Status ApplyPlan(const Schema& schema, const ComponentPlan& plan,
                 PartitioningConfig* config) {
  for (const auto& [table, scheme] : plan.schemes) {
    const TableDef& def = schema.table(table);
    if (scheme.is_seed) {
      std::vector<std::string> cols;
      for (ColumnId c : scheme.hash_columns) cols.push_back(def.column(c).name);
      PREF_RETURN_NOT_OK(config->AddHash(def.name, cols));
    } else {
      const TableDef& ref = schema.table(scheme.predicate.right_table);
      std::vector<std::string> cols, ref_cols;
      for (ColumnId c : scheme.predicate.left_columns) cols.push_back(def.column(c).name);
      for (ColumnId c : scheme.predicate.right_columns)
        ref_cols.push_back(ref.column(c).name);
      PREF_RETURN_NOT_OK(config->AddPref(def.name, cols, ref.name, ref_cols));
    }
  }
  return Status::OK();
}

}  // namespace

Result<SdResult> SchemaDrivenDesign(const Database& db, const SdOptions& options) {
  Stopwatch timer;
  const Schema& schema = db.schema();
  std::vector<std::string> exclude = options.replicate_tables;
  if (!options.restrict_to_tables.empty()) {
    for (const auto& t : schema.tables()) {
      bool keep = false;
      for (const auto& name : options.restrict_to_tables) {
        if (t.name == name) keep = true;
      }
      if (!keep) exclude.push_back(t.name);
    }
  }
  SchemaGraph graph = SchemaGraph::FromSchema(db, exclude);

  RedundancyEstimator estimator(&db, options.num_partitions, options.sample_rate,
                                options.seed);
  EnumerationConstraints constraints;
  constraints.naive_cumulative_estimates = options.naive_estimator;
  for (const auto& name : options.no_redundancy_tables) {
    PREF_ASSIGN_OR_RAISE(TableId id, schema.FindTable(name));
    constraints.no_redundancy.insert(id);
  }

  SdResult result{PartitioningConfig(&schema, options.num_partitions), {}};

  // Decompose the graph into connected components; each is optimized
  // independently, enumerating equal-weight MAST alternatives.
  for (const auto& component_nodes : graph.ConnectedComponents()) {
    SchemaGraph component;
    for (TableId t : component_nodes) component.AddNode(t);
    for (const auto& e : graph.edges()) {
      if (component_nodes.count(e.predicate.left_table)) component.AddEdge(e);
    }
    auto masts = EnumerateMaximumSpanningTrees(component, options.max_mast_candidates);
    if (masts.empty()) continue;

    const Mast* best_mast = nullptr;
    ComponentPlan best_plan;
    best_plan.estimated_size = std::numeric_limits<double>::infinity();
    Status last_error;
    for (const auto& mast : masts) {
      auto plan = FindOptimalPc(mast, schema, &estimator, constraints);
      if (!plan.ok()) {
        last_error = plan.status();
        continue;
      }
      if (plan->estimated_size < best_plan.estimated_size) {
        best_plan = std::move(*plan);
        best_mast = &mast;
      }
    }
    if (best_mast == nullptr) return last_error;
    PREF_RETURN_NOT_OK(ApplyPlan(schema, best_plan, &result.config));
    result.masts.push_back(*best_mast);
    result.estimated_size += best_plan.estimated_size;
    result.num_seed_tables += best_plan.num_seeds;
  }

  // Replicate the excluded small tables.
  double replicated_rows = 0;
  for (const auto& name : options.replicate_tables) {
    PREF_RETURN_NOT_OK(result.config.AddReplicated(name));
    PREF_ASSIGN_OR_RAISE(const Table* t, db.FindTable(name));
    replicated_rows += static_cast<double>(t->num_rows()) *
                       static_cast<double>(options.num_partitions);
  }
  result.estimated_size += replicated_rows;

  PREF_RETURN_NOT_OK(result.config.Finalize());

  // DR estimate over the tables covered by the configuration.
  double original = 0;
  for (const auto& [id, spec] : result.config.specs()) {
    original += static_cast<double>(db.table(id).num_rows());
  }
  result.estimated_redundancy =
      original == 0 ? 0.0 : result.estimated_size / original - 1.0;
  result.design_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace pref
