// Listing 1 (findOptimalPC): enumerate partitioning configurations for a
// MAST — every node tried as the seed table, all other tables recursively
// PREF partitioned along the tree — and pick the one minimizing the
// estimated partitioned size. Extended with the §3.4 redundancy-free
// constraints via multi-seed enumeration (cutting MAST edges).

#pragma once

#include <map>
#include <set>

#include "design/estimator.h"
#include "design/schema_graph.h"

namespace pref {

/// \brief The scheme chosen for one table inside a component plan.
struct TableScheme {
  bool is_seed = false;
  /// Seed only: hash partitioning attributes.
  std::vector<ColumnId> hash_columns;
  /// PREF only: partitioning predicate with this table on the left.
  JoinPredicate predicate;
  /// Estimated cumulative redundancy factor (product of r(e) from the seed).
  double path_factor = 1.0;
};

/// \brief An optimal partitioning plan for one MAST (connected component).
struct ComponentPlan {
  std::map<TableId, TableScheme> schemes;
  /// Estimated total tuples after partitioning.
  double estimated_size = 0;
  /// Number of seed tables (1 unless redundancy-free constraints forced a
  /// split, §3.4).
  int num_seeds = 0;
  /// Total weight of MAST edges cut to satisfy constraints (lost locality).
  double cut_weight = 0;
};

struct EnumerationConstraints {
  /// Tables that must not carry any redundancy (§3.4).
  std::set<TableId> no_redundancy;
  /// Estimation slack for declaring a table redundancy-free.
  double epsilon = 0.01;
  /// Cap on the number of edge cut-sets enumerated per seed count.
  int max_cut_enumeration = 20000;
  /// Ablation switch: estimate cumulative redundancy by multiplying
  /// independent per-edge factors (the paper's Appendix A composition)
  /// instead of propagating per-value copy profiles.
  bool naive_cumulative_estimates = false;
};

/// Runs Listing 1 on one MAST. With constraints, enumerates configurations
/// with 1, 2, ... seed tables (cutting 0, 1, ... MAST edges, lightest cut
/// weight first) and stops at the first seed count admitting a valid
/// configuration — the maximal-locality configuration satisfying the
/// constraints, with minimal estimated size among those.
Result<ComponentPlan> FindOptimalPc(const Mast& mast, const Schema& schema,
                                    RedundancyEstimator* estimator,
                                    const EnumerationConstraints& constraints = {});

}  // namespace pref
