// Appendix A: probabilistic estimation of post-partitioning table sizes.
//
// For an edge referenced -> referencing, the redundancy factor r(e) is the
// expected size ratio of the referencing table after PREF partitioning. It
// is computed from a histogram of the referenced table's predicate column:
// a value occurring f times lands in E_{f,n}[X] distinct partitions in
// expectation, and each occurrence-partition holds one copy of the
// referencing tuple. Redundancy is cumulative along the PREF path from the
// seed table: |T_i^P| = |T_i| * prod r(e).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/math_util.h"
#include "common/result.h"
#include "storage/table.h"

namespace pref {

/// \brief Expected number of distinct partitions (copies) for a value with
/// frequency f distributed uniformly over n partitions.
///
/// Exposes both the paper's Stirling-number formulation
///   E = sum_x x * C(n,x) x! S(f,x) / n^f
/// and the closed-form occupancy identity E = n (1 - (1 - 1/n)^f); the two
/// agree analytically (tested) and the closed form is used for f beyond the
/// precomputed Stirling range.
class ExpectedCopies {
 public:
  explicit ExpectedCopies(int num_partitions, int max_exact_f = 64);

  double Get(int64_t frequency) const;
  /// Continuous extension used for cumulative chains: a fractional
  /// "effective frequency" f * parent_copies enters the occupancy form.
  double GetContinuous(double effective_frequency) const;
  /// Expected partitions covered by `f` partner tuples that each occupy
  /// `parent_copies` *distinct* partitions: n (1 - (1 - c/n)^f). Exact for
  /// f = 1 (the child inherits the parent tuple's copies) and reduces to
  /// the classic occupancy for c = 1.
  double GroupOccupancy(double f, double parent_copies) const;

  /// The Stirling-number evaluation (valid for f <= max_exact_f).
  double ExactStirling(int frequency) const;
  /// The closed-form occupancy evaluation.
  double ClosedForm(double frequency) const;

  int num_partitions() const { return n_; }

 private:
  int n_;
  int max_exact_f_;
  StirlingTable stirling_;
  std::vector<double> precomputed_;  // [f] for f <= max_exact_f
};

/// \brief Estimates redundancy factors r(e) and post-partitioning sizes
/// from (optionally sampled) histograms of the database.
///
/// Sampling uses hash-based distinct-value sampling: a value v enters the
/// histogram iff hash(v) falls in the sampled fraction, and the estimate is
/// scaled by 1/rate. This keeps per-value frequencies exact (unbiased sum
/// estimator) while shrinking histogram build cost, and reproduces the
/// paper's error shape — small error on uniform TPC-H, larger on skewed
/// TPC-DS where heavy values dominate the sum (Figure 13).
class RedundancyEstimator {
 public:
  RedundancyEstimator(const Database* db, int num_partitions,
                      double sample_rate = 1.0, uint64_t seed = 17);

  /// \brief Expected copy counts of a table's tuples, keyed by the hash of
  /// their placement-key value (the table's partitioning-predicate
  /// columns). Lets cumulative estimates capture reference-skew
  /// correlation: a parent tuple referenced by many children is usually
  /// also the one duplicated to many partitions.
  struct CopyProfile {
    /// Columns (of the profiled table) the map keys refer to.
    std::vector<ColumnId> key_columns;
    /// value-hash -> expected copies; values absent default to `average`.
    std::unordered_map<uint64_t, double> copies;
    double average = 1.0;
  };

  /// r(e) for PREF partitioning `p.left_table` by `p.right_table` on
  /// predicate p: expected copies of the referencing table divided by its
  /// size. Referencing tuples without partners count one copy each.
  ///
  /// Cumulative redundancy (Appendix A, refined): when the referenced
  /// table is itself duplicated, each referencing tuple effectively draws
  /// f * parent_copies partner placements, so its expected copies are the
  /// occupancy E[f * c, n]. If `parent` is keyed by exactly the
  /// predicate's referenced columns, c is resolved per value (capturing
  /// skew correlation); otherwise `parent->average` is used. The
  /// referencing table's own profile is written to `child` when non-null.
  /// Returns the *total* copy factor of the referencing table.
  double EdgeFactor(const JoinPredicate& p, const CopyProfile* parent = nullptr,
                    CopyProfile* child = nullptr);

  /// Estimated |R^P| when R is PREF partitioned with cumulative factor
  /// `path_factor` = prod of r(e) along the path from the seed (§3.3).
  double EstimateTableSize(TableId table, double path_factor) const;

  int num_partitions() const { return n_; }
  double sample_rate() const { return sample_rate_; }

  /// Total histogram build + estimation time spent so far, seconds.
  double estimation_seconds() const { return estimation_seconds_; }

 private:
  struct Histogram {
    /// value-hash -> frequency, over the sampled distinct values. Keying by
    /// hash makes histograms of joined columns directly matchable.
    std::unordered_map<uint64_t, int64_t> freqs;
    double sampled_fraction = 1.0;  // fraction of the value domain kept
  };
  const Histogram& HistogramFor(TableId table, const std::vector<ColumnId>& cols);

  const Database* db_;
  int n_;
  double sample_rate_;
  uint64_t seed_;
  ExpectedCopies expected_;
  std::map<std::pair<TableId, std::vector<ColumnId>>, Histogram> histograms_;
  double estimation_seconds_ = 0;
};

}  // namespace pref
