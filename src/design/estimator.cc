#include "design/estimator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/metric_names.h"
#include "storage/partition.h"

namespace pref {

ExpectedCopies::ExpectedCopies(int num_partitions, int max_exact_f)
    : n_(num_partitions), max_exact_f_(max_exact_f), stirling_(max_exact_f) {
  precomputed_.resize(static_cast<size_t>(max_exact_f) + 1);
  precomputed_[0] = 0.0;
  for (int f = 1; f <= max_exact_f_; ++f) {
    precomputed_[static_cast<size_t>(f)] = ExactStirling(f);
  }
}

double ExpectedCopies::ExactStirling(int f) const {
  if (f <= 0) return 0.0;
  const double log_nf = static_cast<double>(f) * std::log(static_cast<double>(n_));
  const int m = std::min<int>(n_, f);
  double e = 0;
  for (int x = 1; x <= m; ++x) {
    double log_p = LogBinomial(n_, x) + LogFactorial(x) +
                   stirling_.LogStirling2(f, x) - log_nf;
    e += static_cast<double>(x) * std::exp(log_p);
  }
  return e;
}

double ExpectedCopies::ClosedForm(double f) const {
  if (f <= 0) return 0.0;
  const double n = static_cast<double>(n_);
  if (n_ == 1) return 1.0;
  return n * (1.0 - std::pow(1.0 - 1.0 / n, f));
}

double ExpectedCopies::GroupOccupancy(double f, double parent_copies) const {
  if (f <= 0) return 0.0;
  const double n = static_cast<double>(n_);
  double c = std::min(std::max(parent_copies, 1.0), n);
  if (c <= 1.0 + 1e-12) return GetContinuous(f);  // Stirling-exact path
  return n * (1.0 - std::pow(1.0 - c / n, f));
}

double ExpectedCopies::GetContinuous(double f) const {
  if (f <= 0) return 0.0;
  if (f < 1.0) return 1.0;  // at least one placement
  double lo = Get(static_cast<int64_t>(f));
  double hi = Get(static_cast<int64_t>(f) + 1);
  double frac = f - std::floor(f);
  return lo + (hi - lo) * frac;
}

double ExpectedCopies::Get(int64_t f) const {
  if (f <= 0) return 0.0;
  if (f <= max_exact_f_) return precomputed_[static_cast<size_t>(f)];
  return ClosedForm(static_cast<double>(f));
}

RedundancyEstimator::RedundancyEstimator(const Database* db, int num_partitions,
                                         double sample_rate, uint64_t seed)
    : db_(db),
      n_(num_partitions),
      sample_rate_(std::clamp(sample_rate, 1e-4, 1.0)),
      seed_(seed),
      expected_(num_partitions) {}

namespace {
uint64_t KeyHash(const RowBlock& rows, const std::vector<ColumnId>& cols, size_t r,
                 uint64_t seed) {
  uint64_t h = seed;
  for (ColumnId c : cols) h = HashCombine(h, rows.column(c).HashAt(r));
  return h;
}
}  // namespace

const RedundancyEstimator::Histogram& RedundancyEstimator::HistogramFor(
    TableId table, const std::vector<ColumnId>& cols) {
  auto key = std::make_pair(table, cols);
  auto it = histograms_.find(key);
  if (it != histograms_.end()) return it->second;

  Stopwatch timer;
  Histogram hist;
  hist.sampled_fraction = sample_rate_;
  const RowBlock& rows = db_->table(table).data();
  // Hash-based distinct-value sampling: a value is kept iff its hash lands
  // below the rate threshold. The same hash (same seed) is used for every
  // table, so histograms of joined columns sample the same value subset.
  const uint64_t threshold = static_cast<uint64_t>(
      sample_rate_ * static_cast<double>(UINT64_MAX));
  std::unordered_map<uint64_t, int64_t> freq;  // keyed by value hash
  freq.reserve(rows.num_rows() / 4 + 16);
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    uint64_t h = KeyHash(rows, cols, r, seed_);
    if (sample_rate_ < 1.0 && h > threshold) continue;
    freq[h]++;
  }
  hist.freqs = std::move(freq);
  estimation_seconds_ += timer.ElapsedSeconds();
  auto [pos, inserted] = histograms_.emplace(std::move(key), std::move(hist));
  return pos->second;
}

double RedundancyEstimator::EdgeFactor(const JoinPredicate& p,
                                       const CopyProfile* parent,
                                       CopyProfile* child) {
  static Counter& invocations =
      MetricsRegistry::Default().GetCounter(metric_names::kDesignEstimatorInvocations);
  invocations.Add(1);
  const TableId referencing = p.left_table;
  const TableId referenced = p.right_table;
  const Histogram& s_hist = HistogramFor(referenced, p.right_columns);
  const Histogram& r_hist = HistogramFor(referencing, p.left_columns);

  Stopwatch timer;
  // Per-value parent copies are applicable iff the parent profile is keyed
  // by exactly the columns this predicate references.
  const bool per_value_parent =
      parent != nullptr && parent->key_columns == p.right_columns &&
      !parent->copies.empty();
  const double parent_avg = parent == nullptr ? 1.0 : parent->average;

  if (child != nullptr) {
    child->key_columns = p.left_columns;
    child->copies.clear();
  }

  // Copies of the referencing table: for every sampled distinct value v
  // with multiplicity m_v on the referencing side, the m_v tuples each get
  // the occupancy of f_v * parent_copies(v) placements when v occurs f_v
  // times in the referenced column, and exactly 1 copy (condition 2) when
  // it does not occur at all.
  double copies_sampled = 0;
  double tuples_sampled = 0;
  // lint:ordered-fold: iteration order is fixed for a given histogram
  // (content-hashed keys, single-threaded build, same libstdc++ layout),
  // so the float accumulation below replays identically across runs and
  // thread counts.
  for (const auto& [value_hash, m_v] : r_hist.freqs) {
    auto it = s_hist.freqs.find(value_hash);
    double per_tuple = 1.0;
    if (it != s_hist.freqs.end()) {
      double c = parent_avg;
      if (per_value_parent) {
        auto pit = parent->copies.find(value_hash);
        if (pit != parent->copies.end()) c = pit->second;
      }
      per_tuple = std::max(
          1.0, expected_.GroupOccupancy(static_cast<double>(it->second), c));
    }
    copies_sampled += static_cast<double>(m_v) * per_tuple;
    tuples_sampled += static_cast<double>(m_v);
    if (child != nullptr) child->copies.emplace(value_hash, per_tuple);
  }
  double copies = copies_sampled / r_hist.sampled_fraction;
  double size = static_cast<double>(db_->table(referencing).num_rows());
  estimation_seconds_ += timer.ElapsedSeconds();
  if (size == 0) return 1.0;
  double factor = std::clamp(copies / size, 1.0, static_cast<double>(n_));
  if (child != nullptr) {
    child->average = tuples_sampled == 0 ? 1.0 : copies_sampled / tuples_sampled;
  }
  return factor;
}

double RedundancyEstimator::EstimateTableSize(TableId table,
                                              double path_factor) const {
  return static_cast<double>(db_->table(table).num_rows()) * path_factor;
}

}  // namespace pref
