// Schema graphs G_S (§3.1) and their maximum spanning trees (§3.2).
//
// Nodes are tables; an edge is an equi-join predicate labeled with the
// network cost of executing that join remotely — the size of the smaller
// table, since that is the relation typically shipped.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "partition/locality.h"
#include "storage/table.h"

namespace pref {

/// \brief An undirected, labeled, weighted schema graph.
class SchemaGraph {
 public:
  /// The schema-driven graph: one edge per referential constraint among the
  /// tables NOT listed in `exclude_tables` (the paper removes replicated
  /// small tables before design, §3.1).
  static SchemaGraph FromSchema(const Database& db,
                                const std::vector<std::string>& exclude_tables = {});

  /// A graph from an explicit edge list (the workload-driven path builds
  /// one per query from its join predicates, §4.2). Non-equi predicates
  /// must already be filtered out by the caller.
  static SchemaGraph FromEdges(std::vector<WeightedEdge> edges);

  void AddNode(TableId t) { nodes_.insert(t); }
  /// Adds an edge (and its endpoints). Parallel edges with equivalent
  /// predicates are collapsed.
  void AddEdge(const WeightedEdge& e);

  const std::set<TableId>& nodes() const { return nodes_; }
  const std::vector<WeightedEdge>& edges() const { return edges_; }

  double TotalWeight() const;

  /// Connected components (as node sets), in deterministic order.
  std::vector<std::set<TableId>> ConnectedComponents() const;

  std::string ToString(const Schema& schema) const;

 private:
  std::set<TableId> nodes_;
  std::vector<WeightedEdge> edges_;
};

/// \brief A maximum spanning tree (per connected component a spanning tree;
/// for a multi-component graph this is a maximum spanning forest).
struct Mast {
  std::set<TableId> nodes;
  std::vector<WeightedEdge> edges;
  double total_weight = 0;

  /// Edges incident to `t`.
  std::vector<const WeightedEdge*> EdgesOf(TableId t) const;

  /// True if `other`'s nodes and edges (up to predicate equivalence and
  /// equal weight) are all contained in this MAST (§4.1 merge phase 1).
  bool Contains(const Mast& other) const;

  /// Union of two MASTs; fails if the union contains a cycle (§4.3).
  static Result<Mast> Merge(const Mast& a, const Mast& b);

  std::string ToString(const Schema& schema) const;
};

/// Computes one maximum spanning forest of `graph` (Kruskal with a
/// deterministic tie-break given by `tie_break_seed`).
Mast MaximumSpanningTree(const SchemaGraph& graph, uint64_t tie_break_seed = 0);

/// Enumerates up to `max_candidates` distinct maximum spanning forests of
/// equal (maximal) total weight, by re-running Kruskal under different
/// tie-break permutations. Exhaustive all-MST enumeration is exponential;
/// this bounded variant covers the equal-weight alternatives the paper
/// exploits (§3.1) while staying tractable.
std::vector<Mast> EnumerateMaximumSpanningTrees(const SchemaGraph& graph,
                                                int max_candidates);

}  // namespace pref
