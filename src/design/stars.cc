#include "design/stars.h"

#include <algorithm>
#include <set>

#include "catalog/tpcds_schema.h"

namespace pref {

Result<Deployment> TpcdsSdIndividualStars(const Database& db,
                                          const SdOptions& base) {
  const Schema& schema = db.schema();
  Deployment deployment;
  for (const auto& fact_name : TpcdsFactTables()) {
    PREF_ASSIGN_OR_RAISE(TableId fact_id, schema.FindTable(fact_name));
    std::set<std::string> star{fact_name};
    for (const auto& fk : schema.foreign_keys()) {
      if (fk.src_table != fact_id) continue;
      const std::string& dst = schema.table(fk.dst_table).name;
      if (TpcdsIsFactTable(dst)) continue;  // fact-fact edges are cut
      star.insert(dst);
    }
    SdOptions options = base;
    options.restrict_to_tables.assign(star.begin(), star.end());
    // Replicate only the small tables that belong to this star.
    options.replicate_tables.clear();
    for (const auto& small : base.replicate_tables) {
      if (star.count(small)) options.replicate_tables.push_back(small);
    }
    // Remove replicated tables from the restricted set (they are excluded
    // from the schema graph anyway).
    auto& restrict = options.restrict_to_tables;
    restrict.erase(std::remove_if(restrict.begin(), restrict.end(),
                                  [&](const std::string& t) {
                                    return std::find(options.replicate_tables.begin(),
                                                     options.replicate_tables.end(),
                                                     t) !=
                                           options.replicate_tables.end();
                                  }),
                   restrict.end());
    PREF_ASSIGN_OR_RAISE(SdResult result, SchemaDrivenDesign(db, options));
    deployment.AddConfig(std::move(result.config));
  }
  return deployment;
}

}  // namespace pref
