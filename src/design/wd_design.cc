#include "design/wd_design.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "common/stopwatch.h"

namespace pref {

namespace {

/// Canonical signature of a MAST (sorted edge endpoints + columns), used to
/// memoize optimal-plan computations across merge configurations (§4.3).
std::string MastSignature(const Mast& mast) {
  std::vector<std::string> parts;
  for (const auto& e : mast.edges) {
    TableId a = e.predicate.left_table, b = e.predicate.right_table;
    auto ca = e.predicate.left_columns, cb = e.predicate.right_columns;
    if (b < a) {
      std::swap(a, b);
      std::swap(ca, cb);
    }
    std::ostringstream ss;
    ss << a << ':';
    for (ColumnId c : ca) ss << c << ',';
    ss << '=' << b << ':';
    for (ColumnId c : cb) ss << c << ',';
    parts.push_back(ss.str());
  }
  std::sort(parts.begin(), parts.end());
  std::string sig;
  for (TableId t : mast.nodes) sig += std::to_string(t) + ";";
  sig += "|";
  for (const auto& p : parts) {
    sig += p;
    sig += '|';
  }
  return sig;
}

/// A merge expression: a merged MAST with its cached optimal plan.
struct MergeExpr {
  Mast mast;
  ComponentPlan plan;
};

/// A merge configuration: a set of merge expressions (Figure 6).
struct MergeConfig {
  std::vector<MergeExpr> exprs;
  double total_size = 0;

  std::string Signature() const {
    std::vector<std::string> sigs;
    for (const auto& e : exprs) sigs.push_back(MastSignature(e.mast));
    std::sort(sigs.begin(), sigs.end());
    std::string out;
    for (const auto& s : sigs) {
      out += s;
      out += '#';
    }
    return out;
  }
};

/// Plan cache keyed by MAST signature.
class PlanCache {
 public:
  PlanCache(const Schema* schema, RedundancyEstimator* estimator)
      : schema_(schema), estimator_(estimator) {}

  Result<ComponentPlan> PlanFor(const Mast& mast) {
    std::string sig = MastSignature(mast);
    auto it = cache_.find(sig);
    if (it != cache_.end()) return it->second;
    PREF_ASSIGN_OR_RAISE(ComponentPlan plan,
                         FindOptimalPc(mast, *schema_, estimator_, {}));
    cache_[sig] = plan;
    return plan;
  }

 private:
  const Schema* schema_;
  RedundancyEstimator* estimator_;
  std::map<std::string, ComponentPlan> cache_;
};

Status ApplyPlanToConfig(const Schema& schema, const ComponentPlan& plan,
                         PartitioningConfig* config) {
  for (const auto& [table, scheme] : plan.schemes) {
    const TableDef& def = schema.table(table);
    if (scheme.is_seed) {
      std::vector<std::string> cols;
      for (ColumnId c : scheme.hash_columns) cols.push_back(def.column(c).name);
      PREF_RETURN_NOT_OK(config->AddHash(def.name, cols));
    } else {
      const TableDef& ref = schema.table(scheme.predicate.right_table);
      std::vector<std::string> cols, ref_cols;
      for (ColumnId c : scheme.predicate.left_columns) cols.push_back(def.column(c).name);
      for (ColumnId c : scheme.predicate.right_columns)
        ref_cols.push_back(ref.column(c).name);
      PREF_RETURN_NOT_OK(config->AddPref(def.name, cols, ref.name, ref_cols));
    }
  }
  return Status::OK();
}

}  // namespace

double WorkloadLocality(const Database& db, const Deployment& deployment,
                        const std::vector<QueryGraph>& workload) {
  double covered = 0, total = 0;
  for (const auto& query : workload) {
    const PartitioningConfig* config = deployment.RouteQuery(query.tables);
    for (const auto& p : query.equi_joins) {
      double w = static_cast<double>(std::min(db.table(p.left_table).num_rows(),
                                              db.table(p.right_table).num_rows()));
      total += w;
      if (config != nullptr && EdgeIsLocal(*config, p)) covered += w;
    }
  }
  return total == 0 ? 1.0 : covered / total;
}

Result<WdResult> WorkloadDrivenDesign(const Database& db,
                                      const std::vector<QueryGraph>& workload,
                                      const WdOptions& options) {
  Stopwatch timer;
  const Schema& schema = db.schema();
  RedundancyEstimator estimator(&db, options.num_partitions, options.sample_rate,
                                options.seed);
  PlanCache plans(&schema, &estimator);

  std::set<TableId> replicated;
  for (const auto& name : options.replicate_tables) {
    PREF_ASSIGN_OR_RAISE(TableId id, schema.FindTable(name));
    replicated.insert(id);
  }

  // --- Per-query MASTs, one per connected component (§4.2). --------------
  // Among equal-weight MAST alternatives keep the one whose optimal plan
  // has minimal estimated size.
  std::vector<MergeExpr> units;
  for (const auto& query : workload) {
    SchemaGraph g;
    for (TableId t : query.tables) {
      if (!replicated.count(t)) g.AddNode(t);
    }
    for (const auto& p : query.equi_joins) {
      if (replicated.count(p.left_table) || replicated.count(p.right_table)) continue;
      WeightedEdge e;
      e.predicate = p;
      e.weight = static_cast<double>(
          std::min(db.table(p.left_table).num_rows(),
                   db.table(p.right_table).num_rows()));
      g.AddEdge(e);
    }
    for (const auto& component_nodes : g.ConnectedComponents()) {
      if (component_nodes.size() < 2) continue;  // single tables constrain nothing
      SchemaGraph component;
      for (TableId t : component_nodes) component.AddNode(t);
      for (const auto& e : g.edges()) {
        if (component_nodes.count(e.predicate.left_table)) component.AddEdge(e);
      }
      auto masts = EnumerateMaximumSpanningTrees(component, options.max_mast_candidates);
      MergeExpr best;
      best.plan.estimated_size = std::numeric_limits<double>::infinity();
      for (auto& mast : masts) {
        auto plan = plans.PlanFor(mast);
        if (!plan.ok()) continue;
        if (plan->estimated_size < best.plan.estimated_size) {
          best.mast = std::move(mast);
          best.plan = std::move(*plan);
        }
      }
      if (std::isinf(best.plan.estimated_size)) {
        return Status::Internal("no plan for a query component of ", query.name);
      }
      units.push_back(std::move(best));
    }
  }

  WdResult result;
  result.initial_components = static_cast<int>(units.size());

  // --- Phase 1: containment merging (§4.1). -------------------------------
  // Sort by descending edge count so containers precede the contained.
  std::stable_sort(units.begin(), units.end(), [](const MergeExpr& a, const MergeExpr& b) {
    return a.mast.edges.size() > b.mast.edges.size();
  });
  std::vector<MergeExpr> phase1;
  for (auto& unit : units) {
    bool contained = false;
    for (const auto& kept : phase1) {
      if (kept.mast.Contains(unit.mast)) {
        contained = true;
        break;
      }
    }
    if (!contained) phase1.push_back(std::move(unit));
  }
  result.components_after_phase1 = static_cast<int>(phase1.size());

  // --- Phase 2: cost-based merging via level-wise DP (§4.3, Figure 6). ----
  // Beam of merge configurations per level; memoization prunes duplicate
  // configurations reached by different merge orders.
  std::vector<MergeConfig> beam;
  {
    MergeConfig empty;
    beam.push_back(std::move(empty));
  }
  for (auto& unit : phase1) {
    std::vector<MergeConfig> next;
    std::set<std::string> seen;
    auto push = [&](MergeConfig&& cfg) {
      std::string sig = cfg.Signature();
      if (!seen.insert(sig).second) return;
      next.push_back(std::move(cfg));
    };
    for (const auto& cfg : beam) {
      // (a) keep the unit as its own merge expression.
      {
        MergeConfig extended = cfg;
        extended.exprs.push_back(unit);
        extended.total_size += unit.plan.estimated_size;
        push(std::move(extended));
      }
      // (b) merge the unit into each existing expression, if acyclic and
      // if it does not increase the estimated size over keeping separate
      // databases (|D^P(Qi+j)| < |D^P(Qi)| + |D^P(Qj)| is checked globally
      // through the beam ranking; invalid merges are skipped).
      for (size_t i = 0; i < cfg.exprs.size(); ++i) {
        auto merged_mast = Mast::Merge(cfg.exprs[i].mast, unit.mast);
        if (!merged_mast.ok()) continue;
        auto plan = plans.PlanFor(*merged_mast);
        if (!plan.ok()) continue;
        MergeConfig extended = cfg;
        extended.total_size -= extended.exprs[i].plan.estimated_size;
        extended.exprs[i].mast = std::move(*merged_mast);
        extended.exprs[i].plan = std::move(*plan);
        extended.total_size += extended.exprs[i].plan.estimated_size;
        push(std::move(extended));
      }
    }
    std::sort(next.begin(), next.end(), [](const MergeConfig& a, const MergeConfig& b) {
      return a.total_size < b.total_size;
    });
    if (static_cast<int>(next.size()) > options.beam_width) {
      next.resize(static_cast<size_t>(options.beam_width));
    }
    beam = std::move(next);
  }
  if (beam.empty()) return Status::Internal("merge DP produced no configuration");
  MergeConfig final_config = std::move(beam.front());
  result.components_after_phase2 = static_cast<int>(final_config.exprs.size());
  result.estimated_size = final_config.total_size;

  // --- Emit one PartitioningConfig per final MAST. -------------------------
  for (auto& expr : final_config.exprs) {
    PartitioningConfig config(&schema, options.num_partitions);
    PREF_RETURN_NOT_OK(ApplyPlanToConfig(schema, expr.plan, &config));
    for (TableId t : replicated) {
      PREF_RETURN_NOT_OK(config.AddReplicated(schema.table(t).name));
    }
    PREF_RETURN_NOT_OK(config.Finalize());
    result.deployment.AddConfig(std::move(config));
    result.final_masts.push_back(std::move(expr.mast));
  }
  result.design_seconds = timer.ElapsedSeconds();
  return result;
}

Result<PartitioningConfig> CompleteServingConfig(
    const Deployment& deployment, const PartitionedDatabase& current) {
  if (deployment.configs().empty()) {
    return Status::Invalid("deployment has no configurations to complete");
  }
  const Schema& schema = current.schema();

  // Pick the designed configuration covering the most serving tables.
  const PartitioningConfig* best = nullptr;
  size_t best_covered = 0;
  for (const PartitioningConfig& cfg : deployment.configs()) {
    size_t covered = 0;
    for (const PartitionedTable* t : current.tables()) {
      if (cfg.Contains(t->id())) ++covered;
    }
    if (best == nullptr || covered > best_covered) {
      best = &cfg;
      best_covered = covered;
    }
  }

  PartitioningConfig out(&schema, best->num_partitions());
  for (const auto& [id, spec] : best->specs()) {
    PREF_RETURN_NOT_OK(out.AddSpec(schema.table(id).name, spec));
  }
  // Tables the design did not mention keep their serving spec — they plan
  // as zero-movement kKeep steps unless a PREF chain drags them along.
  for (const PartitionedTable* t : current.tables()) {
    if (out.Contains(t->id())) continue;
    PREF_RETURN_NOT_OK(out.AddSpec(schema.table(t->id()).name, t->spec()));
  }
  PREF_RETURN_NOT_OK(out.Finalize());
  return out;
}

}  // namespace pref
