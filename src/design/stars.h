// "Individual stars" design variants for TPC-DS (§5.3): split the
// snowflake schema into one star per fact table (duplicating dimension
// tables at the cut) and run the schema-driven design on each star
// independently. The result is a Deployment, like the workload-driven
// algorithm's output.

#pragma once

#include "design/sd_design.h"
#include "partition/deployment.h"

namespace pref {

/// Runs SchemaDrivenDesign once per TPC-DS fact table, restricted to the
/// star of that fact (the fact plus its directly referenced non-fact
/// dimensions, minus `base.replicate_tables` which are replicated in every
/// star configuration).
Result<Deployment> TpcdsSdIndividualStars(const Database& db,
                                          const SdOptions& base);

}  // namespace pref
