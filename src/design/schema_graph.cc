#include "design/schema_graph.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "common/random.h"

namespace pref {

namespace {

/// Union-find over TableIds.
class DisjointSet {
 public:
  int Find(TableId t) {
    auto it = parent_.find(t);
    if (it == parent_.end()) {
      parent_[t] = t;
      return t;
    }
    if (it->second != t) it->second = Find(it->second);
    return it->second;
  }
  bool Union(TableId a, TableId b) {
    TableId ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::map<TableId, TableId> parent_;
};

bool SameEdge(const WeightedEdge& a, const WeightedEdge& b) {
  return a.predicate.EquivalentTo(b.predicate);
}

}  // namespace

SchemaGraph SchemaGraph::FromSchema(const Database& db,
                                    const std::vector<std::string>& exclude_tables) {
  SchemaGraph g;
  std::set<TableId> excluded;
  for (const auto& name : exclude_tables) {
    auto id = db.schema().FindTable(name);
    if (id.ok()) excluded.insert(*id);
  }
  for (const auto& t : db.schema().tables()) {
    if (!excluded.count(t.id)) g.AddNode(t.id);
  }
  for (const auto& e : SchemaEdges(db)) {
    if (excluded.count(e.predicate.left_table) ||
        excluded.count(e.predicate.right_table)) {
      continue;
    }
    g.AddEdge(e);
  }
  return g;
}

SchemaGraph SchemaGraph::FromEdges(std::vector<WeightedEdge> edges) {
  SchemaGraph g;
  for (const auto& e : edges) g.AddEdge(e);
  return g;
}

void SchemaGraph::AddEdge(const WeightedEdge& e) {
  nodes_.insert(e.predicate.left_table);
  nodes_.insert(e.predicate.right_table);
  for (const auto& existing : edges_) {
    if (SameEdge(existing, e)) return;
  }
  edges_.push_back(e);
}

double SchemaGraph::TotalWeight() const {
  double total = 0;
  for (const auto& e : edges_) total += e.weight;
  return total;
}

std::vector<std::set<TableId>> SchemaGraph::ConnectedComponents() const {
  DisjointSet ds;
  for (TableId t : nodes_) ds.Find(t);
  for (const auto& e : edges_) {
    ds.Union(e.predicate.left_table, e.predicate.right_table);
  }
  std::map<TableId, std::set<TableId>> by_root;
  for (TableId t : nodes_) by_root[ds.Find(t)].insert(t);
  std::vector<std::set<TableId>> out;
  for (auto& [root, nodes] : by_root) out.push_back(std::move(nodes));
  return out;
}

std::string SchemaGraph::ToString(const Schema& schema) const {
  std::ostringstream ss;
  for (const auto& e : edges_) {
    ss << schema.table(e.predicate.left_table).name << " -- "
       << schema.table(e.predicate.right_table).name << " (w=" << e.weight << ")\n";
  }
  return ss.str();
}

std::vector<const WeightedEdge*> Mast::EdgesOf(TableId t) const {
  std::vector<const WeightedEdge*> out;
  for (const auto& e : edges) {
    if (e.predicate.Mentions(t)) out.push_back(&e);
  }
  return out;
}

bool Mast::Contains(const Mast& other) const {
  for (TableId t : other.nodes) {
    if (!nodes.count(t)) return false;
  }
  for (const auto& oe : other.edges) {
    bool found = false;
    for (const auto& e : edges) {
      if (e.predicate.EquivalentTo(oe.predicate)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<Mast> Mast::Merge(const Mast& a, const Mast& b) {
  Mast out = a;
  DisjointSet ds;
  for (const auto& e : a.edges) {
    ds.Union(e.predicate.left_table, e.predicate.right_table);
  }
  for (const auto& e : b.edges) {
    bool duplicate = false;
    for (const auto& ae : a.edges) {
      if (ae.predicate.EquivalentTo(e.predicate)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    if (!ds.Union(e.predicate.left_table, e.predicate.right_table)) {
      return Status::Invalid("merging MASTs would create a cycle");
    }
    out.edges.push_back(e);
    out.total_weight += e.weight;
  }
  for (TableId t : b.nodes) out.nodes.insert(t);
  return out;
}

std::string Mast::ToString(const Schema& schema) const {
  std::ostringstream ss;
  ss << "MAST(w=" << total_weight << "):";
  for (const auto& e : edges) {
    ss << " " << schema.table(e.predicate.left_table).name << "--"
       << schema.table(e.predicate.right_table).name;
  }
  return ss.str();
}

Mast MaximumSpanningTree(const SchemaGraph& graph, uint64_t tie_break_seed) {
  // Kruskal on descending weight; equal weights permuted by the seed.
  std::vector<size_t> order(graph.edges().size());
  std::iota(order.begin(), order.end(), size_t{0});
  Rng rng(tie_break_seed + 1);
  std::vector<uint64_t> jitter(order.size());
  for (auto& j : jitter) j = rng.Next();
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const auto& ea = graph.edges()[a];
    const auto& eb = graph.edges()[b];
    if (ea.weight != eb.weight) return ea.weight > eb.weight;
    return jitter[a] < jitter[b];
  });
  Mast mast;
  mast.nodes = graph.nodes();
  DisjointSet ds;
  for (size_t i : order) {
    const auto& e = graph.edges()[i];
    if (ds.Union(e.predicate.left_table, e.predicate.right_table)) {
      mast.edges.push_back(e);
      mast.total_weight += e.weight;
    }
  }
  return mast;
}

std::vector<Mast> EnumerateMaximumSpanningTrees(const SchemaGraph& graph,
                                                int max_candidates) {
  std::vector<Mast> out;
  auto same_mast = [](const Mast& a, const Mast& b) {
    if (a.edges.size() != b.edges.size()) return false;
    for (const auto& ea : a.edges) {
      bool found = false;
      for (const auto& eb : b.edges) {
        if (ea.predicate.EquivalentTo(eb.predicate)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  // Try several deterministic tie-break orders; keep distinct trees of
  // maximal weight. 4x oversampling saturates quickly when few ties exist.
  for (int attempt = 0; attempt < max_candidates * 4 &&
                        static_cast<int>(out.size()) < max_candidates;
       ++attempt) {
    Mast m = MaximumSpanningTree(graph, static_cast<uint64_t>(attempt));
    bool duplicate = false;
    for (const auto& existing : out) {
      if (same_mast(existing, m)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(std::move(m));
  }
  return out;
}

}  // namespace pref
