// Per-query execution profiles (DESIGN.md §11).
//
// A QueryProfile bundles everything the engine knows about one finished
// query: the per-operator ExecStats breakdown with its locality accounting
// (local vs. remote exchange tuples, per source→target flow matrices) and
// the scheduler's timing decomposition (admission wait, queue wait,
// time-to-first-morsel, run time). It renders two ways:
//
//  * ExplainAnalyze() — the plan tree annotated with measured rows, flows
//    and simulated cost, mirroring EXPLAIN ANALYZE;
//  * WriteJson()/ToJson() — a machine-readable document (the feedback
//    signal for advisor-v2 style cost loops).
//
// Everything except the `timings` section derives from deterministic
// executor state, so renders with `include_timings = false` are
// bit-identical across PREF_THREADS widths and under concurrent serving
// (enforced by tests/profile_test.cc). Wall-clock quantities live only in
// the timings section.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "engine/cost_model.h"

namespace pref {

/// Scheduler-side decomposition of one query's latency. All wall-clock.
struct SchedulerTimings {
  /// Submit() until the scheduler granted an in-flight slot.
  double admission_wait_seconds = 0;
  /// Slot granted until the query task started executing on the pool.
  double queue_wait_seconds = 0;
  /// Execution start until the first scan morsel ran.
  double time_to_first_morsel_seconds = 0;
  /// Execution start until completion (the executor's wall clock).
  double run_seconds = 0;
};

struct ProfileRenderOptions {
  /// Run context (the scheduler timings, wall_seconds, and the
  /// scheduler-assigned query id) is the one part of a profile that
  /// legitimately differs run to run; identity tests render with
  /// include_timings = false and compare bytes.
  bool include_timings = true;
};

struct QueryProfile {
  /// Scheduler id of the query (0 when produced outside the scheduler).
  uint64_t query_id = 0;
  /// ServingDatabase version the query executed against (0 when the
  /// scheduler was built over a fixed database). Which version a query
  /// lands on during an online migration depends on timing, so renders
  /// with include_timings = false pin it to 0, like query_id.
  uint64_t database_version = 0;
  std::string query_name;
  ExecStats stats;
  /// The cost model the query ran under (simulated seconds depend on it).
  CostModel cost_model;
  SchedulerTimings timings;
  /// True when the profile came through the scheduler and `timings` holds
  /// measured values.
  bool has_timings = false;

  /// Builds a profile directly from executor output (no scheduler timings).
  static QueryProfile FromStats(std::string name, const ExecStats& stats,
                                const CostModel& cost_model = {});

  /// The annotated plan tree, reconstructed from the operator breakdown's
  /// pre-order index/parent links.
  std::string ExplainAnalyze(const ProfileRenderOptions& opts = {}) const;

  /// JSON document: summary, per-operator breakdown with flows, and (when
  /// include_timings and has_timings) the timing decomposition.
  void WriteJson(std::ostream& os, const ProfileRenderOptions& opts = {}) const;
  std::string ToJson(const ProfileRenderOptions& opts = {}) const;
};

}  // namespace pref
