#include "engine/workload_monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/json.h"
#include "common/metrics.h"
#include "common/metric_names.h"

namespace pref {

namespace {

/// Strips a "prefix." or "prefix_" qualifier if `name` carries one that
/// matches `ref` (alias-qualified input columns or alias_column output
/// names). Returns the bare column name, or `name` unchanged.
std::string StripQualifier(const std::string& name, const TableRef& ref) {
  const std::string alias = ref.alias.empty() ? ref.table : ref.alias;
  if (name.size() > alias.size() + 1 &&
      name.compare(0, alias.size(), alias) == 0 &&
      (name[alias.size()] == '.' || name[alias.size()] == '_')) {
    return name.substr(alias.size() + 1);
  }
  return name;
}

/// Resolves one left-side join column of `spec` to (table index, bare
/// column): first by alias qualifier, then by bare-name lookup across the
/// tables joined so far. Returns -1 if nothing matches (computed columns).
int ResolveLeftColumn(const QuerySpec& spec, const Schema& schema,
                      size_t joined_through, const std::string& column,
                      std::string* bare) {
  for (size_t t = 0; t < joined_through && t < spec.tables.size(); ++t) {
    const std::string stripped = StripQualifier(column, spec.tables[t]);
    auto table_id = schema.FindTable(spec.tables[t].table);
    if (!table_id.ok()) continue;
    if (stripped != column &&
        schema.table(*table_id).FindColumn(stripped).ok()) {
      *bare = stripped;
      return static_cast<int>(t);
    }
  }
  for (size_t t = 0; t < joined_through && t < spec.tables.size(); ++t) {
    auto table_id = schema.FindTable(spec.tables[t].table);
    if (!table_id.ok()) continue;
    if (schema.table(*table_id).FindColumn(column).ok()) {
      *bare = column;
      return static_cast<int>(t);
    }
  }
  return -1;
}

std::string JoinColumns(const std::vector<std::string>& cols) {
  std::string out;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ',';
    out += cols[i];
  }
  return out;
}

double L1Distance(const std::map<std::string, size_t>& a,
                  const std::map<std::string, size_t>& b) {
  size_t total_a = 0;
  size_t total_b = 0;
  for (const auto& [k, v] : a) total_a += v;
  for (const auto& [k, v] : b) total_b += v;
  if (total_a == 0 && total_b == 0) return 0;
  double dist = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  auto norm = [](size_t v, size_t total) {
    return total == 0 ? 0.0
                      : static_cast<double>(v) / static_cast<double>(total);
  };
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      dist += norm(ia->second, total_a);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      dist += norm(ib->second, total_b);
      ++ib;
    } else {
      dist += std::abs(norm(ia->second, total_a) - norm(ib->second, total_b));
      ++ia;
      ++ib;
    }
  }
  return dist;
}

}  // namespace

/// Canonical key with sides ordered lexicographically, so l⋈r and r⋈l
/// count as the same join.
std::string WorkloadMonitor::JoinKey(const JoinRecord& j) {
  const std::string left = j.left_table + "." + JoinColumns(j.left_columns);
  const std::string right = j.right_table + "." + JoinColumns(j.right_columns);
  return left <= right ? left + "=" + right : right + "=" + left;
}

double WorkloadMonitor::PartitionSkewOf(const Window& win) {
  if (win.partition_rows.empty()) return 1.0;
  size_t total = 0;
  size_t max = 0;
  for (size_t r : win.partition_rows) {
    total += r;
    max = std::max(max, r);
  }
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) /
                      static_cast<double>(win.partition_rows.size());
  return static_cast<double>(max) / mean;
}

WorkloadMonitor::WorkloadMonitor(MonitorOptions options)
    : options_(options) {
  if (options_.window_size == 0) options_.window_size = 1;
}

void WorkloadMonitor::OnQueryComplete(const QueryProfile& profile,
                                      const QuerySpec& spec,
                                      const Schema& schema) {
  Record rec;
  rec.name = spec.name;
  for (const TableRef& t : spec.tables) {
    rec.tables.push_back(t.table);
    current_.scan_freq[t.table] += 1;
  }
  for (const JoinStep& step : spec.joins) {
    if (step.table_index < 0 ||
        static_cast<size_t>(step.table_index) >= spec.tables.size() ||
        step.left_columns.empty() ||
        step.left_columns.size() != step.right_columns.size()) {
      continue;
    }
    std::string bare;
    const int left = ResolveLeftColumn(
        spec, schema, static_cast<size_t>(step.table_index),
        step.left_columns[0], &bare);
    if (left < 0) continue;
    JoinRecord j;
    j.left_table = spec.tables[static_cast<size_t>(left)].table;
    j.right_table = spec.tables[static_cast<size_t>(step.table_index)].table;
    j.left_columns.push_back(bare);
    bool ok = true;
    for (size_t c = 1; c < step.left_columns.size(); ++c) {
      std::string b;
      if (ResolveLeftColumn(spec, schema,
                            static_cast<size_t>(step.table_index),
                            step.left_columns[c], &b) != left) {
        ok = false;  // composite keys must sit on one base table
        break;
      }
      j.left_columns.push_back(b);
    }
    if (!ok) continue;
    j.right_columns = step.right_columns;
    current_.join_freq[JoinKey(j)] += 1;
    rec.joins.push_back(std::move(j));
  }
  if (current_.partition_rows.size() < profile.stats.node_rows.size()) {
    current_.partition_rows.resize(profile.stats.node_rows.size(), 0);
  }
  for (size_t p = 0; p < profile.stats.node_rows.size(); ++p) {
    current_.partition_rows[p] += profile.stats.node_rows[p];
  }
  current_.records.push_back(std::move(rec));
  ++completions_;

  MetricsRegistry& registry = MetricsRegistry::Default();
  for (size_t p = 0; p < current_.partition_rows.size(); ++p) {
    registry.GetGauge(metric_names::kMonitorPartitionRowsPrefix + std::to_string(p))
        .Set(static_cast<int64_t>(current_.partition_rows[p]));
  }

  if (current_.records.size() >= options_.window_size) FinalizeWindow();
}

void WorkloadMonitor::FinalizeWindow() {
  ++windows_completed_;
  if (!has_reference_) {
    reference_join_freq_ = current_.join_freq;
    has_reference_ = true;
    last_drift_ = 0;
  } else {
    last_drift_ = L1Distance(current_.join_freq, reference_join_freq_);
  }
  const bool above = last_drift_ > options_.drift_threshold;
  if (above && !above_threshold_) {
    ++drift_crossings_;
    if (callback_) callback_(last_drift_, windows_completed_);
  }
  above_threshold_ = above;

  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetGauge(metric_names::kMonitorDriftMilli)
      .Set(static_cast<int64_t>(last_drift_ * 1000.0));
  registry.GetGauge(metric_names::kMonitorSkewMilli)
      .Set(static_cast<int64_t>(PartitionSkewOf(current_) * 1000.0));
  registry.GetGauge(metric_names::kMonitorWindowsCompleted)
      .Set(static_cast<int64_t>(windows_completed_));

  last_ = std::move(current_);
  current_ = Window{};
}

void WorkloadMonitor::Rebase() {
  has_reference_ = false;
  reference_join_freq_.clear();
  above_threshold_ = false;
  last_drift_ = 0;
  ++rebases_;
}

std::map<std::string, size_t> WorkloadMonitor::ScanFrequencies() const {
  return ViewWindow().scan_freq;
}

std::map<std::string, size_t> WorkloadMonitor::JoinFrequencies() const {
  return ViewWindow().join_freq;
}

std::vector<size_t> WorkloadMonitor::PartitionRows() const {
  return ViewWindow().partition_rows;
}

double WorkloadMonitor::PartitionSkew() const {
  return PartitionSkewOf(ViewWindow());
}

std::vector<QueryGraph> WorkloadMonitor::WindowQueryGraphs(
    const Schema& schema) const {
  std::vector<QueryGraph> graphs;
  for (const Record& rec : ViewWindow().records) {
    QueryGraphBuilder builder(&schema, rec.name);
    for (const std::string& t : rec.tables) builder.Table(t);
    for (const JoinRecord& j : rec.joins) {
      builder.JoinMulti(j.left_table, j.left_columns, j.right_table,
                        j.right_columns);
    }
    auto graph = builder.Build();
    if (graph.ok()) graphs.push_back(std::move(*graph));
  }
  return graphs;
}

void WorkloadMonitor::WriteJson(std::ostream& os) const {
  const Window& win = ViewWindow();
  JsonWriter w(&os);
  w.BeginObject();
  w.Key("monitor");
  w.BeginObject();
  w.Key("window_size");
  w.UInt(options_.window_size);
  w.Key("completions");
  w.UInt(completions_);
  w.Key("windows_completed");
  w.UInt(windows_completed_);
  w.EndObject();

  w.Key("drift");
  w.BeginObject();
  w.Key("score");
  w.Double(last_drift_);
  w.Key("threshold");
  w.Double(options_.drift_threshold);
  w.Key("crossings");
  w.UInt(drift_crossings_);
  w.Key("rebases");
  w.UInt(rebases_);
  w.Key("has_reference");
  w.Bool(has_reference_);
  w.EndObject();

  w.Key("scan_frequencies");
  w.BeginObject();
  for (const auto& [table, count] : win.scan_freq) {
    w.Key(table);
    w.UInt(count);
  }
  w.EndObject();

  w.Key("join_frequencies");
  w.BeginObject();
  for (const auto& [join, count] : win.join_freq) {
    w.Key(join);
    w.UInt(count);
  }
  w.EndObject();

  w.Key("reference_join_frequencies");
  w.BeginObject();
  for (const auto& [join, count] : reference_join_freq_) {
    w.Key(join);
    w.UInt(count);
  }
  w.EndObject();

  w.Key("partition_rows");
  w.BeginArray();
  for (size_t r : win.partition_rows) w.UInt(r);
  w.EndArray();
  w.Key("partition_skew");
  w.Double(PartitionSkewOf(win));
  w.EndObject();
  os << '\n';
}

}  // namespace pref
