#include "engine/executor.h"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "common/metrics.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/metric_names.h"
#include "engine/exchange_kernels.h"
#include "engine/join_hash_table.h"

namespace pref {

namespace {

/// Rows per morsel for intra-node parallelism (scan selection, aggregation
/// grouping). Fixed — never derived from the thread count — so morsel
/// boundaries, and therefore fold order, are a pure function of the data
/// and results are identical for any pool width (DESIGN.md §7).
constexpr size_t kMorselRows = 4096;

/// Per-node materialized blocks of one operator's output.
struct DistResult {
  std::vector<RowBlock> nodes;
};

std::vector<DataType> TypesOf(const PlanNode& node) {
  std::vector<DataType> types;
  types.reserve(node.cols.size());
  for (const auto& c : node.cols) types.push_back(c.type);
  return types;
}

DistResult MakeDist(const PlanNode& node, int n) {
  DistResult out;
  auto types = TypesOf(node);
  out.nodes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.nodes.emplace_back(types);
  return out;
}

bool CompareValues(const Value& a, CompareOp op, const Value& lo, const Value& hi) {
  switch (op) {
    case CompareOp::kEq:
      return a == lo;
    case CompareOp::kNe:
      return !(a == lo);
    case CompareOp::kLt:
      return a < lo;
    case CompareOp::kLe:
      return a < lo || a == lo;
    case CompareOp::kGt:
      return lo < a;
    case CompareOp::kGe:
      return lo < a || a == lo;
    case CompareOp::kBetween:
      return !(a < lo) && !(hi < a);
  }
  return false;
}

bool EvalDnf(const BoundDnf& dnf, const RowBlock& rows, size_t r) {
  if (dnf.empty()) return true;
  for (const auto& conj : dnf.disjuncts) {
    bool all = true;
    for (const auto& p : conj) {
      Value v = rows.column(p.slot).GetValue(r);
      if (!CompareValues(v, p.op, p.value, p.value_hi)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

using GroupKey = std::vector<Value>;
struct GroupKeyHasher {
  size_t operator()(const GroupKey& k) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : k) h = HashCombine(h, v.Hash());
    return static_cast<size_t>(h);
  }
};

struct AggState {
  double sum = 0;
  int64_t count = 0;
  bool has_value = false;
  Value min_v, max_v;
};

/// One aggregation group: its dense id (first-occurrence order) and its
/// rows in ascending source-row order.
struct GroupSlot {
  size_t gid = 0;
  std::vector<size_t> rows;
};

/// Keys are inserted in global first-occurrence row order — the exact
/// insertion sequence a serial row loop produces — so map iteration order,
/// and therefore output row order, matches the serial path bit for bit.
using GroupMap = std::unordered_map<GroupKey, GroupSlot, GroupKeyHasher>;

class Executor {
 public:
  Executor(const PartitionedDatabase& pdb, const CostModel& cost_model,
           ThreadPool* pool, QueryControl* control)
      : pdb_(pdb), cost_model_(cost_model), pool_(pool), control_(control) {}

  Result<QueryResult> Run(const PlanNode& root) {
    Stopwatch timer;
    run_watch_.Restart();
    TraceSpan span(metric_names::kSpanExecutePlan, metric_names::kCategoryEngine);
    const double sim_base_us = Tracer::Default().NowMicros();
    n_ = 0;
    for (const auto* t : pdb_.tables()) {
      n_ = std::max(n_, t->num_partitions());
    }
    if (n_ == 0) return Status::Invalid("partitioned database has no tables");
    stats_.node_rows.assign(static_cast<size_t>(n_), 0);
    scatter_scratch_.resize(static_cast<size_t>(n_));

    PREF_ASSIGN_OR_RAISE(DistResult dist, Exec(root, /*parent=*/-1));
    QueryResult result;
    result.rows = RowBlock(TypesOf(root));
    for (auto& block : dist.nodes) result.rows.AppendBlock(block);
    for (const auto& c : root.cols) result.column_names.push_back(c.name);

    // Fan the per-operator breakdown into the aggregates: every aggregate
    // counter is *derived* from the operator entries, so the breakdown sums
    // to the totals by construction.
    for (auto& op : ops_) {
      for (size_t r : op.node_rows) op.rows_processed += r;
      stats_.MergeOperator(op);
    }
    stats_.wall_seconds = timer.ElapsedSeconds();
    stats_.first_morsel_seconds = first_morsel_seconds_;
    stats_.operators = std::move(ops_);

    {
      MetricsRegistry& registry = MetricsRegistry::Default();
      static Counter& queries = registry.GetCounter(metric_names::kEngineQueries);
      static Counter& exchange_bytes = registry.GetCounter(metric_names::kEngineExchangeBytes);
      static Counter& exchange_rows = registry.GetCounter(metric_names::kEngineExchangeRows);
      static Counter& exchange_local_rows =
          registry.GetCounter(metric_names::kEngineExchangeLocalRows);
      static Counter& rows_processed = registry.GetCounter(metric_names::kEngineRowsProcessed);
      static Histogram& query_seconds = registry.GetHistogram(metric_names::kEngineQuerySeconds);
      static Counter& scan_morsels = registry.GetCounter(metric_names::kExecScanMorsels);
      static Counter& scan_rows = registry.GetCounter(metric_names::kExecScanRows);
      static Counter& agg_morsels = registry.GetCounter(metric_names::kExecAggMorsels);
      static Counter& agg_rows = registry.GetCounter(metric_names::kExecAggRows);
      static Counter& agg_groups = registry.GetCounter(metric_names::kExecAggGroups);
      queries.Add(1);
      exchange_bytes.Add(stats_.bytes_shuffled);
      exchange_rows.Add(stats_.rows_shuffled);
      exchange_local_rows.Add(stats_.rows_local);
      rows_processed.Add(stats_.total_rows_processed);
      query_seconds.Observe(stats_.wall_seconds);
      // Morsel counters accumulate per query in stats_ (never straight
      // into the registry from operator code), so concurrent queries keep
      // clean per-query breakdowns; the registry sees one fold per query.
      scan_morsels.Add(stats_.scan_morsels);
      scan_rows.Add(stats_.scan_rows);
      agg_morsels.Add(stats_.agg_morsels);
      agg_rows.Add(stats_.agg_rows);
      agg_groups.Add(stats_.agg_groups);
    }
    if (Tracer::Default().enabled()) EmitSimulatedTimeline(sim_base_us);
    span.AddArg("operators", static_cast<int64_t>(stats_.operators.size()));
    span.AddArg("rows_out", static_cast<int64_t>(result.rows.num_rows()));

    result.stats = stats_;
    return result;
  }

 private:
  void Charge(int op, int node, size_t rows) {
    ops_[static_cast<size_t>(op)].node_rows[static_cast<size_t>(node)] += rows;
  }

  OperatorStats& Op(int op) { return ops_[static_cast<size_t>(op)]; }

  /// Dispatches one plan node: registers its OperatorStats entry (pre-order
  /// index, parent link), runs the operator, and credits its output rows to
  /// the parent's rows_in. Every Exec* only touches its own entry, and an
  /// operator's internal fan-out only writes disjoint node_rows slots of
  /// that entry — the recursion itself stays on the calling thread, so
  /// `ops_` never reallocates under a concurrent writer.
  Result<DistResult> Exec(const PlanNode& node, int parent) {
    // Cooperative cancellation: one cheap check per operator bounds how
    // long a cancel or deadline takes to land without polling in row loops.
    if (control_ != nullptr && control_->ShouldStop()) {
      return control_->cancelled()
                 ? Status::Cancelled("query cancelled")
                 : Status::Cancelled("query deadline exceeded");
    }
    const int idx = static_cast<int>(ops_.size());
    {
      OperatorStats op;
      op.index = idx;
      op.parent = parent;
      op.op = OpKindName(node.kind);
      op.node_rows.assign(static_cast<size_t>(n_), 0);
      ops_.push_back(std::move(op));
    }
    TraceSpan span(OpKindName(node.kind), metric_names::kCategoryEngineOp);
    PREF_ASSIGN_OR_RAISE(DistResult out, Dispatch(node, idx));
    size_t rows_out = 0;
    for (const RowBlock& block : out.nodes) rows_out += block.num_rows();
    Op(idx).rows_out = rows_out;
    if (parent >= 0) Op(parent).rows_in += rows_out;
    exec_order_.push_back(idx);
    span.AddArg("rows_out", static_cast<int64_t>(rows_out));
    return out;
  }

  Result<DistResult> Dispatch(const PlanNode& node, int op) {
    switch (node.kind) {
      case OpKind::kScan:
        return ExecScan(node, op);
      case OpKind::kFilter:
        return ExecFilter(node, op);
      case OpKind::kJoin:
        return ExecJoin(node, op);
      case OpKind::kRepartition:
        return ExecRepartition(node, op);
      case OpKind::kDupElim:
        return ExecDupElim(node, op);
      case OpKind::kValueDistinct:
        return ExecValueDistinct(node, op);
      case OpKind::kPartialAgg:
        return ExecPartialAgg(node, op);
      case OpKind::kGather:
        return ExecGather(node, op);
      case OpKind::kFinalAgg:
        return ExecFinalAgg(node, op);
      case OpKind::kProject:
        return ExecProject(node, op);
      case OpKind::kSort:
        return ExecSort(node, op);
      case OpKind::kBroadcast:
        return Status::NotImplemented("broadcast operator");
    }
    return Status::Internal("unknown operator");
  }

  /// Runs fn(p) for every simulated node concurrently on the pool. Safe for
  /// operator bodies that touch only their own node's input/output blocks
  /// and their own node_rows slot (all per-node operators here qualify).
  void ForEachNode(const std::function<void(int)>& fn) { pool_->ParallelFor(n_, fn); }

  /// Records time-to-first-morsel once: the exchange winner alone writes
  /// the double, and the reader (Run) is ordered after the ParallelFor
  /// join, so the value is race-free at any pool width.
  void MarkFirstMorsel() {
    if (!first_morsel_seen_.load(std::memory_order_relaxed) &&
        !first_morsel_seen_.exchange(true, std::memory_order_relaxed)) {
      first_morsel_seconds_ = run_watch_.ElapsedSeconds();
    }
  }

  /// Lays the finished query out on a simulated-cluster timeline: one span
  /// per operator per node (CPU share at the cost model's throughput) on
  /// pid kSimulatedPid with one track per node, plus exchange spans on a
  /// dedicated network track acting as barriers — the trace a real
  /// shared-nothing run of this plan would produce.
  void EmitSimulatedTimeline(double base_us) const {
    Tracer& tracer = Tracer::Default();
    const int pid = Tracer::kSimulatedPid;
    for (int p = 0; p < n_; ++p) {
      tracer.SetTrackName(pid, p, "node-" + std::to_string(p));
    }
    tracer.SetTrackName(pid, n_, "network");
    std::vector<double> cursor(static_cast<size_t>(n_), base_us);
    for (int idx : exec_order_) {
      const OperatorStats& op = stats_.operators[static_cast<size_t>(idx)];
      double max_end = base_us;
      for (int p = 0; p < n_; ++p) {
        size_t rows = op.node_rows[static_cast<size_t>(p)];
        double dur = static_cast<double>(rows) /
                     cost_model_.rows_per_second_per_node * 1e6;
        tracer.AddComplete(op.op, metric_names::kCategorySimNode, cursor[static_cast<size_t>(p)], dur,
                           pid, p,
                           {{"rows", static_cast<int64_t>(rows)},
                            {"op_index", op.index}});
        cursor[static_cast<size_t>(p)] += dur;
        max_end = std::max(max_end, cursor[static_cast<size_t>(p)]);
      }
      if (op.exchanges > 0 || op.bytes_shuffled > 0) {
        double net_us =
            static_cast<double>(op.bytes_shuffled) /
                cost_model_.network_bytes_per_second * 1e6 +
            static_cast<double>(op.exchanges) *
                cost_model_.exchange_latency_seconds * 1e6;
        tracer.AddComplete(op.op + metric_names::kSpanExchangeSuffix, metric_names::kCategorySimNet, max_end, net_us, pid, n_,
                           {{"bytes", static_cast<int64_t>(op.bytes_shuffled)},
                            {"rows", static_cast<int64_t>(op.rows_shuffled)}});
        // An exchange is a barrier: every node resumes after it completes.
        for (double& c : cursor) c = max_end + net_us;
      }
    }
  }

  /// Morsel-parallel table scan. Two phases:
  ///   1. Select — each partition's rows are chunked into fixed-size
  ///      morsels; every morsel evaluates the pushed-down predicates
  ///      (hasS restriction + scan filter) into its own disjoint slice of
  ///      the partition's selection bitmap. No locks, no shared writes.
  ///   2. Append — one task per partition, exclusively owning its output
  ///      block, materializes the selected rows in row order.
  /// Output is therefore identical to a serial scan for any thread count.
  Result<DistResult> ExecScan(const PlanNode& node, int op) {
    const PartitionedTable* pt = pdb_.GetTable(node.scan_table);
    if (pt == nullptr) {
      return Status::Invalid("scan: table not in partitioned database");
    }
    Op(op).detail = pt->name();
    DistResult out = MakeDist(node, n_);
    const size_t base_cols = node.project_slots.size();

    // The scanned partitions (partition pruning applied).
    std::vector<int> parts;
    for (int p = 0; p < pt->num_partitions(); ++p) {
      if (!node.scan_partitions.empty() &&
          std::find(node.scan_partitions.begin(), node.scan_partitions.end(), p) ==
              node.scan_partitions.end()) {
        continue;
      }
      parts.push_back(p);
    }

    struct Morsel {
      int part;  // index into `parts`
      size_t begin;
      size_t end;
    };
    std::vector<Morsel> morsels;
    std::vector<std::vector<uint8_t>> sel(parts.size());
    size_t rows_total = 0;
    for (size_t i = 0; i < parts.size(); ++i) {
      const size_t rows = pt->partition(parts[i]).rows.num_rows();
      sel[i].assign(rows, 0);
      rows_total += rows;
      for (size_t b = 0; b < rows; b += kMorselRows) {
        morsels.push_back(
            {static_cast<int>(i), b, std::min(rows, b + kMorselRows)});
      }
    }

    {
      TraceSpan select_span(metric_names::kSpanScanSelect, metric_names::kCategoryEngineMorsel);
      select_span.AddArg("morsels", static_cast<int64_t>(morsels.size()));
      select_span.AddArg("rows", static_cast<int64_t>(rows_total));
      pool_->ParallelFor(static_cast<int>(morsels.size()), [&](int m) {
        MarkFirstMorsel();
        const Morsel& mo = morsels[static_cast<size_t>(m)];
        const Partition& part = pt->partition(parts[static_cast<size_t>(mo.part)]);
        const RowBlock& rows = part.rows;
        uint8_t* s = sel[static_cast<size_t>(mo.part)].data();
        for (size_t r = mo.begin; r < mo.end; ++r) {
          if (node.scan_has_partner.has_value() &&
              part.has_partner.Get(r) != *node.scan_has_partner) {
            continue;
          }
          // Filter is bound to base-table column ids.
          if (!EvalDnf(node.scan_filter, rows, r)) continue;
          s[r] = 1;
        }
      });
    }

    {
      TraceSpan append_span(metric_names::kSpanScanAppend, metric_names::kCategoryEngineMorsel);
      pool_->ParallelFor(static_cast<int>(parts.size()), [&](int i) {
        const int p = parts[static_cast<size_t>(i)];
        const Partition& part = pt->partition(p);
        const RowBlock& rows = part.rows;
        Charge(op, p, rows.num_rows());
        RowBlock& dst = out.nodes[static_cast<size_t>(p)];
        const auto& s = sel[static_cast<size_t>(i)];
        // Selection bitmap → selection vector via the SIMD compaction
        // kernel, then one gather per column.
        std::vector<uint32_t> picked(rows.num_rows());
        picked.resize(
            simd::BitmapToSelection(s.data(), rows.num_rows(), 0, picked.data()));
        for (size_t c = 0; c < base_cols; ++c) {
          dst.column(static_cast<int>(c))
              .AppendGather(rows.column(node.project_slots[c]), picked);
        }
        if (node.scan_attach_dup) {
          Column& dup_col = dst.column(static_cast<int>(base_cols));
          dup_col.Reserve(picked.size());
          for (uint32_t r : picked) {
            dup_col.AppendInt64(part.dup.empty() ? 0 : (part.dup.Get(r) ? 1 : 0));
          }
        }
      });
    }

    stats_.scan_morsels += morsels.size();
    stats_.scan_rows += rows_total;
    return out;
  }

  Result<DistResult> ExecFilter(const PlanNode& node, int op) {
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(*node.children[0], op));
    DistResult out = MakeDist(node, n_);
    ForEachNode([&](int p) {
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      // Predicate evaluation piggybacks on the producing operator: no
      // separate CPU charge (as in the paper's engine, where filters are
      // pushed into the per-node DBMS scan).
      RowBlock& dst = out.nodes[static_cast<size_t>(p)];
      // Predicate → bitmap, then the SIMD compaction kernel turns it into
      // a selection vector in one pass.
      std::vector<uint8_t> bits(src.num_rows(), 0);
      for (size_t r = 0; r < src.num_rows(); ++r) {
        if (EvalDnf(node.filter, src, r)) bits[r] = 1;
      }
      std::vector<uint32_t> picked(src.num_rows());
      picked.resize(
          simd::BitmapToSelection(bits.data(), src.num_rows(), 0, picked.data()));
      dst.AppendGather(src, picked);
    });
    return out;
  }

  Result<DistResult> ExecJoin(const PlanNode& node, int op) {
    PREF_ASSIGN_OR_RAISE(DistResult left, Exec(*node.children[0], op));
    PREF_ASSIGN_OR_RAISE(DistResult right, Exec(*node.children[1], op));
    DistResult out = MakeDist(node, n_);
    const auto& ls = node.join_left_slots;
    const auto& rs = node.join_right_slots;
    const bool inner = node.join_type == JoinType::kInner;
    // Per-partition bodies are independent (disjoint outputs and per-node
    // counters): execute the simulated nodes concurrently on the shared
    // bounded pool (never more threads than the hardware has lanes, however
    // many nodes are simulated).
    ForEachNode([&](int p) {
      const RowBlock& l = left.nodes[static_cast<size_t>(p)];
      const RowBlock& r = right.nodes[static_cast<size_t>(p)];
      Charge(op, p, l.num_rows() + r.num_rows());
      if (l.num_rows() == 0) return;
      // Build: batch-hash the right side, then group build rows into
      // contiguous per-distinct-key chains (DESIGN.md §8, §13). The keyed
      // build confirms equality per chain, so string keys hash + compare
      // once per distinct key, not once per duplicate.
      std::vector<uint64_t> build_hashes(r.num_rows());
      r.HashRows(rs, build_hashes);
      JoinHashTable table(build_hashes, r, rs);
      // Probe into per-morsel selection-vector pairs. Morsels are processed
      // in ascending row order; matches per probe row are emitted in
      // *descending* build-row order — the order the previous
      // std::unordered_multimap path produced (libstdc++ prepends equal
      // keys, so equal_range iterates newest-first) — keeping join output,
      // and therefore every downstream stable sort with ties, bit-identical
      // to the historical executor. Chains hold rows ascending, so copying
      // the matching chain and reversing reproduces exactly that order.
      std::vector<uint64_t> probe_hashes(l.num_rows());
      l.HashRows(ls, probe_hashes);
      struct MorselSel {
        std::vector<uint32_t> left, right;
      };
      std::vector<MorselSel> sels((l.num_rows() + kMorselRows - 1) / kMorselRows);
      std::vector<uint32_t> match_buf;
      size_t total_out = 0;
      for (size_t m = 0; m < sels.size(); ++m) {
        const size_t row_end = std::min(l.num_rows(), (m + 1) * kMorselRows);
        MorselSel& sel = sels[m];
        for (size_t i = m * kMorselRows; i < row_end; ++i) {
          bool matched = false;
          match_buf.clear();
          table.ForEachChain(probe_hashes[i], [&](std::span<const uint32_t> rows) {
            if (matched) return;  // at most one chain holds the key
            if (!l.RowsEqual(ls, i, r, rs, rows.front())) return;
            matched = true;
            if (inner) match_buf.assign(rows.begin(), rows.end());
          });
          for (size_t k = match_buf.size(); k-- > 0;) {
            sel.left.push_back(static_cast<uint32_t>(i));
            sel.right.push_back(match_buf[k]);
          }
          bool emit_left_only = (node.join_type == JoinType::kSemi && matched) ||
                                (node.join_type == JoinType::kAnti && !matched);
          if (emit_left_only) sel.left.push_back(static_cast<uint32_t>(i));
        }
        total_out += sel.left.size();
      }
      // Gather column-at-a-time in morsel order into an exactly-reserved
      // output block (match counts are known, not estimated).
      RowBlock& dst = out.nodes[static_cast<size_t>(p)];
      dst.Reserve(total_out);
      for (const MorselSel& sel : sels) {
        if (sel.left.empty()) continue;
        if (inner) {
          for (int c = 0; c < l.num_columns(); ++c) {
            dst.column(c).AppendGather(l.column(c), sel.left);
          }
          for (int c = 0; c < r.num_columns(); ++c) {
            dst.column(l.num_columns() + c).AppendGather(r.column(c), sel.right);
          }
        } else {
          dst.AppendGather(l, sel.left);
        }
      }
    });
    return out;
  }

  /// Two-pass counting-sort shuffle (DESIGN.md §8). Pass 1 fans out over
  /// *source* nodes: batch-hash each block, derive per-row targets, build a
  /// ScatterPlan (count → exclusive prefix sum → scatter of row ids) and
  /// per-source shuffle counters. Pass 2 fans out over *target* nodes: each
  /// target owns its output block, reserves the exact row count, and
  /// gathers its slice of every source in source order — reproducing the
  /// serial row loop's output order bit for bit. The counters fold in
  /// source order on the calling thread, so ExecStats are identical at any
  /// pool width.
  Result<DistResult> ExecRepartition(const PlanNode& node, int op) {
    const PlanNode& child = *node.children[0];
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(child, op));
    DistResult out = MakeDist(node, n_);
    Op(op).exchanges++;
    std::vector<ScatterPlan> plans(static_cast<size_t>(n_));
    // Per-source locality accounting: rows/bytes per target node, written
    // by the owning source task and folded serially in source order below,
    // so flows (and every derived counter) are pool-width independent.
    std::vector<std::vector<size_t>> pair_rows(
        static_cast<size_t>(n_), std::vector<size_t>(static_cast<size_t>(n_), 0));
    std::vector<std::vector<size_t>> pair_bytes(
        static_cast<size_t>(n_), std::vector<size_t>(static_cast<size_t>(n_), 0));
    pool_->ParallelFor(n_, [&](int p) {
      if (child.replicated && p != 0) return;  // one copy feeds the shuffle
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      Charge(op, p, src.num_rows());
      const size_t rows = src.num_rows();
      if (rows == 0) return;
      std::vector<uint64_t> hashes(rows);
      src.HashRows(node.hash_slots, hashes);
      std::vector<uint32_t> targets(rows);
      for (size_t r = 0; r < rows; ++r) {
        targets[r] = static_cast<uint32_t>(hashes[r] % static_cast<uint64_t>(n_));
      }
      std::vector<size_t> sizes(rows);
      src.RowByteSizes(sizes);
      std::vector<size_t>& t_rows = pair_rows[static_cast<size_t>(p)];
      std::vector<size_t>& t_bytes = pair_bytes[static_cast<size_t>(p)];
      for (size_t r = 0; r < rows; ++r) {
        t_rows[targets[r]]++;
        t_bytes[targets[r]] += sizes[r];
      }
      // Scratch is per source node: each task owns slot p exclusively, and
      // the buffers carry over to the next exchange of this query.
      BuildScatterPlanInto(targets, n_, scatter_scratch_[static_cast<size_t>(p)],
                           plans[static_cast<size_t>(p)]);
    });
    for (int p = 0; p < n_; ++p) {
      for (int t = 0; t < n_; ++t) {
        const size_t rows = pair_rows[static_cast<size_t>(p)][static_cast<size_t>(t)];
        if (rows == 0) continue;
        const size_t bytes =
            pair_bytes[static_cast<size_t>(p)][static_cast<size_t>(t)];
        if (t == p) {
          Op(op).rows_local += rows;
          Op(op).flows.push_back({p, t, rows, 0});
        } else {
          Op(op).rows_shuffled += rows;
          Op(op).bytes_shuffled += bytes;
          Op(op).flows.push_back({p, t, rows, bytes});
        }
      }
    }
    pool_->ParallelFor(n_, [&](int t) {
      RowBlock& dst = out.nodes[static_cast<size_t>(t)];
      size_t total = 0;
      for (const ScatterPlan& plan : plans) total += plan.CountFor(t);
      if (total == 0) return;
      dst.Reserve(total);
      for (int p = 0; p < n_; ++p) {
        const ScatterPlan& plan = plans[static_cast<size_t>(p)];
        if (plan.empty()) continue;
        auto slice = plan.SliceFor(t);
        if (!slice.empty()) dst.AppendGather(in.nodes[static_cast<size_t>(p)], slice);
      }
    });
    return out;
  }

  Result<DistResult> ExecDupElim(const PlanNode& node, int op) {
    const PlanNode& child = *node.children[0];
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(child, op));
    DistResult out = MakeDist(node, n_);
    ForEachNode([&](int p) {
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      // The dup-bitmap filter is a fused predicate (dup = 0), not a
      // standalone pass: no CPU charge. The typed int payloads are hoisted
      // out of the row loop — no per-row boxed access.
      RowBlock& dst = out.nodes[static_cast<size_t>(p)];
      std::vector<const int64_t*> dup_cols;
      dup_cols.reserve(child.active_dup_slots.size());
      for (int slot : child.active_dup_slots) {
        dup_cols.push_back(src.column(slot).ints().data());
      }
      std::vector<uint32_t> picked;
      picked.reserve(src.num_rows());
      for (size_t r = 0; r < src.num_rows(); ++r) {
        bool dup = false;
        for (const int64_t* d : dup_cols) {
          if (d[r] != 0) {
            dup = true;
            break;
          }
        }
        if (!dup) picked.push_back(static_cast<uint32_t>(r));
      }
      dst.AppendGather(src, picked);
    });
    return out;
  }

  Result<DistResult> ExecValueDistinct(const PlanNode& node, int op) {
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(*node.children[0], op));
    DistResult out = MakeDist(node, n_);
    std::vector<ColumnId> key_cols(node.project_slots.begin(),
                                   node.project_slots.end());
    ForEachNode([&](int p) {
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      Charge(op, p, src.num_rows());
      RowBlock& dst = out.nodes[static_cast<size_t>(p)];
      std::vector<uint64_t> hashes(src.num_rows());
      src.HashRows(key_cols, hashes);
      std::unordered_map<uint64_t, std::vector<size_t>> seen;
      std::vector<uint32_t> picked;
      for (size_t r = 0; r < src.num_rows(); ++r) {
        auto& bucket = seen[hashes[r]];
        bool duplicate = false;
        for (size_t prev : bucket) {
          if (src.RowsEqual(key_cols, r, src, key_cols, prev)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        bucket.push_back(r);
        picked.push_back(static_cast<uint32_t>(r));
      }
      dst.AppendGather(src, picked);
    });
    return out;
  }

  /// Gather-to-coordinator as a counting-sort degenerate: every row's
  /// target is node 0, so the "plan" is just per-source row counts. The
  /// shuffle counters use whole-block sums (Column::ByteSize equals the sum
  /// of per-row sizes by construction) and fold in source order; the concat
  /// fans out over output *columns*, which are disjoint.
  Result<DistResult> ExecGather(const PlanNode& node, int op) {
    const PlanNode& child = *node.children[0];
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(child, op));
    DistResult out = MakeDist(node, n_);
    if (child.replicated) {
      // One copy is already complete; no network needed.
      out.nodes[0] = std::move(in.nodes[0]);
      return out;
    }
    Op(op).exchanges++;
    size_t total = 0;
    for (int p = 0; p < n_; ++p) {
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      Charge(op, p, src.num_rows());
      total += src.num_rows();
      if (src.num_rows() == 0) continue;
      if (p != 0) {
        Op(op).rows_shuffled += src.num_rows();
        Op(op).bytes_shuffled += src.ByteSize();
        Op(op).flows.push_back({p, 0, src.num_rows(), src.ByteSize()});
      } else {
        // The coordinator's own rows never move: the local diagonal.
        Op(op).rows_local += src.num_rows();
        Op(op).flows.push_back({0, 0, src.num_rows(), 0});
      }
    }
    RowBlock& dst = out.nodes[0];
    dst.Reserve(total);
    pool_->ParallelFor(dst.num_columns(), [&](int c) {
      for (int p = 0; p < n_; ++p) {
        dst.column(c).AppendColumn(in.nodes[static_cast<size_t>(p)].column(c));
      }
    });
    return out;
  }

  void Accumulate(const PlanNode& node, const RowBlock& src, size_t r,
                  std::vector<AggState>* states) {
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      const BoundAgg& agg = node.aggs[a];
      AggState& st = (*states)[a];
      switch (agg.func) {
        case AggFunc::kCountStar:
          st.count++;
          break;
        case AggFunc::kCount:
          st.count++;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg: {
          const Column& c = src.column(agg.slot);
          st.sum += c.is_int() ? static_cast<double>(c.GetInt64(r)) : c.GetDouble(r);
          st.count++;
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          Value v = src.column(agg.slot).GetValue(r);
          if (!st.has_value) {
            st.min_v = v;
            st.max_v = v;
            st.has_value = true;
          } else {
            if (v < st.min_v) st.min_v = v;
            if (st.max_v < v) st.max_v = std::move(v);
          }
          break;
        }
      }
    }
  }

  /// Parallel group-by over one node's rows. Each fixed-size morsel builds
  /// a partial hash table mapping group key → the morsel's rows for that
  /// key; the tables are folded serially *in morsel order*, which restores
  /// global row order within every group (morsels are ascending contiguous
  /// ranges) and replays the serial loop's key-insertion sequence (first
  /// occurrence in row order). Per-group work downstream — accumulating
  /// AggStates by walking the group's rows in ascending order — therefore
  /// performs the same floating-point additions in the same order as a
  /// serial pass, making results bit-identical for any thread count.
  GroupMap GroupRows(const RowBlock& src, const std::vector<ColumnId>& group_cols) {
    const size_t rows = src.num_rows();
    struct MorselGroups {
      std::unordered_map<GroupKey, size_t, GroupKeyHasher> index;  // key → slot
      /// (key in the index, rows of this morsel) in first-occurrence order.
      std::vector<std::pair<const GroupKey*, std::vector<size_t>>> ordered;
    };
    std::vector<MorselGroups> partial((rows + kMorselRows - 1) / kMorselRows);
    {
      TraceSpan span(metric_names::kSpanAggGroup, metric_names::kCategoryEngineMorsel);
      span.AddArg("morsels", static_cast<int64_t>(partial.size()));
      span.AddArg("rows", static_cast<int64_t>(rows));
      pool_->ParallelForMorsels(
          rows, kMorselRows, [&](size_t m, size_t begin, size_t end) {
            MorselGroups& mg = partial[m];
            for (size_t r = begin; r < end; ++r) {
              GroupKey key;
              key.reserve(group_cols.size());
              for (ColumnId g : group_cols) key.push_back(src.column(g).GetValue(r));
              auto [it, inserted] =
                  mg.index.try_emplace(std::move(key), mg.ordered.size());
              if (inserted) {
                mg.ordered.emplace_back(&it->first, std::vector<size_t>{});
              }
              mg.ordered[it->second].second.push_back(r);
            }
          });
    }
    GroupMap out;
    size_t next_gid = 0;
    for (auto& mg : partial) {
      for (auto& [key, rowlist] : mg.ordered) {
        auto [it, inserted] = out.try_emplace(*key);
        if (inserted) it->second.gid = next_gid++;
        auto& dst = it->second.rows;
        dst.insert(dst.end(), rowlist.begin(), rowlist.end());
      }
    }
    stats_.agg_morsels += partial.size();
    stats_.agg_rows += rows;
    stats_.agg_groups += out.size();
    return out;
  }

  /// Indexes a GroupMap's slots by dense gid for the parallel fold.
  static std::vector<const GroupSlot*> SlotsInOrder(const GroupMap& groups) {
    std::vector<const GroupSlot*> slots(groups.size());
    // lint:ordered-fold: writes land at slot.gid, a dense key assigned in
    // deterministic first-occurrence order; visit order cannot change the
    // filled array.
    for (const auto& [key, slot] : groups) slots[slot.gid] = &slot;
    return slots;
  }

  Result<DistResult> ExecPartialAgg(const PlanNode& node, int op) {
    const PlanNode& child = *node.children[0];
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(child, op));
    DistResult out = MakeDist(node, n_);
    std::vector<ColumnId> group_cols(node.group_slots.begin(),
                                     node.group_slots.end());
    for (int p = 0; p < n_; ++p) {
      if (child.replicated && p != 0) continue;  // aggregate one copy only
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      Charge(op, p, src.num_rows());
      if (src.num_rows() == 0) continue;
      GroupMap groups = GroupRows(src, group_cols);
      const auto slots = SlotsInOrder(groups);
      // Per-group accumulation: groups are disjoint, so they fan out on the
      // pool; each group's rows are walked in ascending order (see
      // GroupRows) for serial-identical floating-point sums.
      std::vector<std::vector<AggState>> states(slots.size());
      {
        TraceSpan fold_span(metric_names::kSpanAggFold, metric_names::kCategoryEngineMorsel);
        pool_->ParallelFor(static_cast<int>(slots.size()), [&](int g) {
          auto& st = states[static_cast<size_t>(g)];
          st.resize(node.aggs.size());
          for (size_t r : slots[static_cast<size_t>(g)]->rows) {
            Accumulate(node, src, r, &st);
          }
        });
      }
      RowBlock& dst = out.nodes[static_cast<size_t>(p)];
      // lint:ordered-fold: GroupMap insertion replays first-occurrence row
      // order regardless of thread count (morsel-ordered fold, see
      // GroupRows), and its hashes are content-based, so this emission
      // order is reproducible across runs and PREF_THREADS settings; the
      // engine's bit-identity tests (executor_parallel_test) pin it.
      for (const auto& [key, slot] : groups) {
        const auto& group_states = states[slot.gid];
        int c = 0;
        for (const auto& v : key) {
          Status st = dst.column(c++).AppendValue(v);
          if (!st.ok()) return st;
        }
        for (size_t a = 0; a < node.aggs.size(); ++a) {
          const BoundAgg& agg = node.aggs[a];
          const AggState& s = group_states[a];
          switch (agg.func) {
            case AggFunc::kCountStar:
            case AggFunc::kCount:
              dst.column(c++).AppendInt64(s.count);
              break;
            case AggFunc::kSum:
              if (agg.output_type == DataType::kDouble) {
                dst.column(c++).AppendDouble(s.sum);
              } else {
                dst.column(c++).AppendInt64(static_cast<int64_t>(s.sum));
              }
              break;
            case AggFunc::kAvg:
              dst.column(c++).AppendDouble(s.sum);
              dst.column(c++).AppendInt64(s.count);
              break;
            case AggFunc::kMin: {
              Status st = dst.column(c++).AppendValue(s.min_v);
              if (!st.ok()) return st;
              break;
            }
            case AggFunc::kMax: {
              Status st = dst.column(c++).AppendValue(s.max_v);
              if (!st.ok()) return st;
              break;
            }
          }
        }
      }
    }
    return out;
  }

  Result<DistResult> ExecFinalAgg(const PlanNode& node, int op) {
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(*node.children[0], op));
    DistResult out = MakeDist(node, n_);
    const size_t k = node.group_slots.size();
    std::vector<ColumnId> group_cols(node.group_slots.begin(),
                                     node.group_slots.end());
    for (int p = 0; p < n_; ++p) {
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      Charge(op, p, src.num_rows());
      if (src.num_rows() == 0) continue;
      // Merge partial states per group; same morsel-parallel grouping and
      // per-group row-order fold as ExecPartialAgg.
      GroupMap groups = GroupRows(src, group_cols);
      const auto slots = SlotsInOrder(groups);
      std::vector<std::vector<AggState>> states(slots.size());
      {
        TraceSpan fold_span(metric_names::kSpanAggFold, metric_names::kCategoryEngineMorsel);
        pool_->ParallelFor(static_cast<int>(slots.size()), [&](int g) {
          auto& st = states[static_cast<size_t>(g)];
          st.resize(node.aggs.size());
          for (size_t r : slots[static_cast<size_t>(g)]->rows) {
            // Partial layout: group cols then partial cols in agg order.
            int c = static_cast<int>(k);
            for (size_t a = 0; a < node.aggs.size(); ++a) {
              const BoundAgg& agg = node.aggs[a];
              AggState& sa = st[a];
              switch (agg.func) {
                case AggFunc::kCountStar:
                case AggFunc::kCount:
                  sa.count += src.column(c++).GetInt64(r);
                  break;
                case AggFunc::kSum: {
                  const Column& col = src.column(c++);
                  sa.sum += col.is_int() ? static_cast<double>(col.GetInt64(r))
                                         : col.GetDouble(r);
                  break;
                }
                case AggFunc::kAvg:
                  sa.sum += src.column(c++).GetDouble(r);
                  sa.count += src.column(c++).GetInt64(r);
                  break;
                case AggFunc::kMin: {
                  Value v = src.column(c++).GetValue(r);
                  if (!sa.has_value || v < sa.min_v) sa.min_v = v;
                  sa.has_value = true;
                  break;
                }
                case AggFunc::kMax: {
                  Value v = src.column(c++).GetValue(r);
                  if (!sa.has_value || sa.max_v < v) sa.max_v = v;
                  sa.has_value = true;
                  break;
                }
              }
            }
          }
        });
      }
      RowBlock& dst = out.nodes[static_cast<size_t>(p)];
      // lint:ordered-fold: GroupMap insertion replays first-occurrence row
      // order regardless of thread count (morsel-ordered fold, see
      // GroupRows), and its hashes are content-based, so this emission
      // order is reproducible across runs and PREF_THREADS settings; the
      // engine's bit-identity tests (executor_parallel_test) pin it.
      for (const auto& [key, slot] : groups) {
        const auto& group_states = states[slot.gid];
        int c = 0;
        for (const auto& v : key) {
          Status st = dst.column(c++).AppendValue(v);
          if (!st.ok()) return st;
        }
        for (size_t a = 0; a < node.aggs.size(); ++a) {
          const BoundAgg& agg = node.aggs[a];
          const AggState& s = group_states[a];
          switch (agg.func) {
            case AggFunc::kCountStar:
            case AggFunc::kCount:
              dst.column(c++).AppendInt64(s.count);
              break;
            case AggFunc::kSum:
              if (agg.output_type == DataType::kDouble) {
                dst.column(c++).AppendDouble(s.sum);
              } else {
                dst.column(c++).AppendInt64(static_cast<int64_t>(s.sum));
              }
              break;
            case AggFunc::kAvg:
              dst.column(c++).AppendDouble(s.count == 0 ? 0.0
                                                        : s.sum / static_cast<double>(
                                                                      s.count));
              break;
            case AggFunc::kMin: {
              Status st = dst.column(c++).AppendValue(s.min_v);
              if (!st.ok()) return st;
              break;
            }
            case AggFunc::kMax: {
              Status st = dst.column(c++).AppendValue(s.max_v);
              if (!st.ok()) return st;
              break;
            }
          }
        }
      }
    }
    return out;
  }

  Result<DistResult> ExecSort(const PlanNode& node, int op) {
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(*node.children[0], op));
    DistResult out = MakeDist(node, n_);
    ForEachNode([&](int p) {
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      if (src.num_rows() == 0) return;
      Charge(op, p, src.num_rows());
      std::vector<uint32_t> order(src.num_rows());
      for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
      std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        for (const auto& [slot, desc] : node.sort_keys) {
          Value va = src.column(slot).GetValue(a);
          Value vb = src.column(slot).GetValue(b);
          if (va < vb) return !desc;
          if (vb < va) return desc;
        }
        return false;
      });
      size_t keep = node.limit >= 0
                        ? std::min<size_t>(order.size(),
                                           static_cast<size_t>(node.limit))
                        : order.size();
      order.resize(keep);
      out.nodes[static_cast<size_t>(p)].AppendGather(src, order);
    });
    return out;
  }

  Result<DistResult> ExecProject(const PlanNode& node, int op) {
    PREF_ASSIGN_OR_RAISE(DistResult in, Exec(*node.children[0], op));
    DistResult out = MakeDist(node, n_);
    ForEachNode([&](int p) {
      const RowBlock& src = in.nodes[static_cast<size_t>(p)];
      // Projection is free: column selection costs nothing extra. Whole
      // columns copy in one shot — no per-row dispatch at all.
      RowBlock& dst = out.nodes[static_cast<size_t>(p)];
      for (size_t i = 0; i < node.project_slots.size(); ++i) {
        dst.column(static_cast<int>(i)).AppendColumn(src.column(node.project_slots[i]));
      }
    });
    return out;
  }

  const PartitionedDatabase& pdb_;
  const CostModel& cost_model_;
  /// Executes every operator fan-out; a 1-lane pool degrades to the serial
  /// path with identical results.
  ThreadPool* pool_;
  /// Optional cooperative cancellation; polled at operator boundaries.
  QueryControl* control_;
  int n_ = 0;
  ExecStats stats_;
  /// Reusable counting-sort scratch, one slot per source node: exchange
  /// tasks index it by their own node id, so writes never overlap, and the
  /// buffers amortize across every exchange of the query.
  std::vector<ScatterScratch> scatter_scratch_;
  /// Time-to-first-morsel bookkeeping (see MarkFirstMorsel).
  Stopwatch run_watch_;
  std::atomic<bool> first_morsel_seen_{false};
  double first_morsel_seconds_ = 0;
  /// Per-operator accounting, indexed by pre-order plan position. Entries
  /// are appended before children run, so parent links always resolve; an
  /// operator's fan-out only writes disjoint node_rows slots of its own
  /// entry.
  std::vector<OperatorStats> ops_;
  /// Operator indexes in execution-completion (post-order) order — the
  /// order work would flow through a real cluster; drives the simulated
  /// timeline export.
  std::vector<int> exec_order_;
};

}  // namespace

Result<QueryResult> ExecutePlan(const PlanNode& root, const PartitionedDatabase& pdb,
                                const CostModel& cost_model, ThreadPool* pool,
                                QueryControl* control) {
  Executor executor(pdb, cost_model,
                    pool != nullptr ? pool : &ThreadPool::Default(), control);
  return executor.Run(root);
}

Result<QueryResult> ExecuteQuery(const QuerySpec& query,
                                 const PartitionedDatabase& pdb,
                                 const QueryOptions& options,
                                 const CostModel& cost_model, ThreadPool* pool,
                                 QueryControl* control) {
  Stopwatch timer;
  TraceSpan span(metric_names::kSpanExecuteQuery, metric_names::kCategoryEngine);
  auto plan = [&] {
    TraceSpan rewrite_span(metric_names::kSpanRewrite, metric_names::kCategoryEngine);
    return RewriteQuery(query, pdb, options);
  }();
  PREF_RETURN_NOT_OK(plan.status());
  PREF_ASSIGN_OR_RAISE(QueryResult result,
                       ExecutePlan(**plan, pdb, cost_model, pool, control));
  // Consistent meaning across both entry points: wall_seconds covers
  // everything the caller asked for — rewrite + execution here, execution
  // only in ExecutePlan.
  result.stats.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace pref
