// Simulated-cluster cost model.
//
// The engine physically executes queries in one process, but accounts CPU
// and network as if each partition lived on its own shared-nothing node
// (the paper's 10x m1.medium EC2 cluster). Reported runtimes are
//   max_node_cpu + network_bytes / bandwidth + exchanges * latency,
// which preserves the quantity Figures 7-9 measure: the penalty of remote
// operators and of redundant data.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pref {

struct CostModel {
  /// Per-node row processing throughput (rows/s). m1.medium-class CPU.
  double rows_per_second_per_node = 5e6;
  /// Effective network bandwidth for shuffles (bytes/s).
  double network_bytes_per_second = 100e6;
  /// Fixed coordination latency per exchange operator.
  double exchange_latency_seconds = 0.05;
};

/// \brief One source→target edge of an exchange: how many tuples node
/// `source` contributed to node `target`, and the simulated network bytes
/// that move cost (zero when source == target — local tuples never touch
/// the wire). The executor emits flows in source-major, target-minor order,
/// so the list is bit-identical at any pool width.
struct ExchangeFlow {
  int source = 0;
  int target = 0;
  size_t rows = 0;
  size_t bytes = 0;  // 0 for the local (source == target) diagonal

  bool operator==(const ExchangeFlow&) const = default;
};

/// \brief One plan operator's share of a query's cost, per simulated node.
///
/// The executor fills one entry per plan node (pre-order `index`, parent
/// link for tree reconstruction) and derives the aggregate ExecStats fields
/// by merging these entries, so the per-operator breakdown sums *exactly*
/// to the aggregates (asserted by tests/exec_stats_test).
struct OperatorStats {
  int index = 0;    // pre-order position in the plan tree
  int parent = -1;  // -1 for the root
  std::string op;   // OpKindName of the plan node
  /// Operator-specific annotation: the scanned table's name for Scan nodes,
  /// empty elsewhere. Profiles and the workload monitor key on it.
  std::string detail;
  /// Rows received from child operators (sum of their rows_out).
  size_t rows_in = 0;
  /// Rows this operator produced across all nodes.
  size_t rows_out = 0;
  /// CPU-charged rows (sum of node_rows); feeds total_rows_processed.
  size_t rows_processed = 0;
  size_t rows_shuffled = 0;
  size_t bytes_shuffled = 0;
  int exchanges = 0;
  /// Exchange operators only: input rows whose target was their own node
  /// (no network). rows_local + rows_shuffled = exchange input rows.
  size_t rows_local = 0;
  /// Exchange operators only: the full source→target tuple/byte matrix
  /// (sparse, source-major order; includes the local diagonal).
  std::vector<ExchangeFlow> flows;
  /// CPU-charged rows per simulated node.
  std::vector<size_t> node_rows;

  /// Same accounting as ExecStats::SimulatedSeconds, scoped to this
  /// operator: slowest node's CPU share plus this operator's network cost.
  double SimulatedSeconds(const CostModel& model) const {
    size_t max_node = 0;
    for (size_t r : node_rows) max_node = r > max_node ? r : max_node;
    double cpu = static_cast<double>(max_node) / model.rows_per_second_per_node;
    double net = static_cast<double>(bytes_shuffled) / model.network_bytes_per_second +
                 static_cast<double>(exchanges) * model.exchange_latency_seconds;
    return cpu + net;
  }
};

struct ExecStats {
  size_t bytes_shuffled = 0;
  size_t rows_shuffled = 0;
  int exchanges = 0;
  /// Exchange input rows that stayed on their own node (the local half of
  /// the locality accounting; rows_shuffled is the remote half).
  size_t rows_local = 0;
  /// Rows consumed by operators, per simulated node.
  std::vector<size_t> node_rows;
  size_t total_rows_processed = 0;
  /// Real wall-clock of producing this result. ExecutePlan measures plan
  /// execution; ExecuteQuery measures rewrite + execution.
  double wall_seconds = 0;
  /// Wall-clock from execution start until the first scan morsel ran
  /// (time-to-first-morsel; wall-clock like wall_seconds, so it is
  /// excluded from bit-identity comparisons).
  double first_morsel_seconds = 0;
  /// Morsel-level executor counters, scoped to this query (the per-query
  /// view of the exec.scan.* / exec.agg.* registry metrics — accumulated
  /// inside the executor and folded into the global registry once at query
  /// end, so concurrent queries never interleave each other's counts).
  size_t scan_morsels = 0;
  size_t scan_rows = 0;
  size_t agg_morsels = 0;
  size_t agg_rows = 0;
  size_t agg_groups = 0;
  /// Per-operator breakdown in pre-order; totals equal the fields above.
  std::vector<OperatorStats> operators;

  double SimulatedSeconds(const CostModel& model) const {
    size_t max_node = 0;
    for (size_t r : node_rows) max_node = r > max_node ? r : max_node;
    double cpu = static_cast<double>(max_node) / model.rows_per_second_per_node;
    double net = static_cast<double>(bytes_shuffled) / model.network_bytes_per_second +
                 static_cast<double>(exchanges) * model.exchange_latency_seconds;
    return cpu + net;
  }

  /// Fraction of exchange input tuples that stayed on their own node —
  /// the run-time analogue of the design-time DL metric. 1.0 when the
  /// query moved nothing (including the no-exchange case).
  double LocalityRatio() const {
    const size_t total = rows_local + rows_shuffled;
    return total == 0 ? 1.0
                      : static_cast<double>(rows_local) /
                            static_cast<double>(total);
  }

  /// Folds one operator's contribution into the aggregate fields (the
  /// executor's fan-in; does not touch `operators`).
  void MergeOperator(const OperatorStats& op) {
    bytes_shuffled += op.bytes_shuffled;
    rows_shuffled += op.rows_shuffled;
    exchanges += op.exchanges;
    rows_local += op.rows_local;
    total_rows_processed += op.rows_processed;
    if (node_rows.size() < op.node_rows.size()) node_rows.resize(op.node_rows.size(), 0);
    for (size_t p = 0; p < op.node_rows.size(); ++p) node_rows[p] += op.node_rows[p];
  }

  /// Accumulates another query's stats into this one (workload totals):
  /// aggregate fields sum, node_rows add element-wise, wall clocks add,
  /// and the other side's operator breakdown is appended.
  void Merge(const ExecStats& other) {
    bytes_shuffled += other.bytes_shuffled;
    rows_shuffled += other.rows_shuffled;
    exchanges += other.exchanges;
    rows_local += other.rows_local;
    total_rows_processed += other.total_rows_processed;
    wall_seconds += other.wall_seconds;
    scan_morsels += other.scan_morsels;
    scan_rows += other.scan_rows;
    agg_morsels += other.agg_morsels;
    agg_rows += other.agg_rows;
    agg_groups += other.agg_groups;
    if (node_rows.size() < other.node_rows.size()) {
      node_rows.resize(other.node_rows.size(), 0);
    }
    for (size_t p = 0; p < other.node_rows.size(); ++p) {
      node_rows[p] += other.node_rows[p];
    }
    operators.insert(operators.end(), other.operators.begin(),
                     other.operators.end());
  }
};

}  // namespace pref
