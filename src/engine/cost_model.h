// Simulated-cluster cost model.
//
// The engine physically executes queries in one process, but accounts CPU
// and network as if each partition lived on its own shared-nothing node
// (the paper's 10x m1.medium EC2 cluster). Reported runtimes are
//   max_node_cpu + network_bytes / bandwidth + exchanges * latency,
// which preserves the quantity Figures 7-9 measure: the penalty of remote
// operators and of redundant data.

#pragma once

#include <cstddef>
#include <vector>

namespace pref {

struct CostModel {
  /// Per-node row processing throughput (rows/s). m1.medium-class CPU.
  double rows_per_second_per_node = 5e6;
  /// Effective network bandwidth for shuffles (bytes/s).
  double network_bytes_per_second = 100e6;
  /// Fixed coordination latency per exchange operator.
  double exchange_latency_seconds = 0.05;
};

struct ExecStats {
  size_t bytes_shuffled = 0;
  size_t rows_shuffled = 0;
  int exchanges = 0;
  /// Rows consumed by operators, per simulated node.
  std::vector<size_t> node_rows;
  size_t total_rows_processed = 0;
  double wall_seconds = 0;

  double SimulatedSeconds(const CostModel& model) const {
    size_t max_node = 0;
    for (size_t r : node_rows) max_node = r > max_node ? r : max_node;
    double cpu = static_cast<double>(max_node) / model.rows_per_second_per_node;
    double net = static_cast<double>(bytes_shuffled) / model.network_bytes_per_second +
                 static_cast<double>(exchanges) * model.exchange_latency_seconds;
    return cpu + net;
  }
};

}  // namespace pref
