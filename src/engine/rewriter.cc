#include "engine/rewriter.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/hash.h"

namespace pref {

namespace {

std::string ScanColName(const TableRef& ref, const std::string& col) {
  std::string alias = ref.alias.empty() ? ref.table : ref.alias;
  return alias == ref.table ? col : alias + "." + col;
}

DataType AggOutputType(AggFunc func, DataType input) {
  switch (func) {
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kSum:
      return input == DataType::kDouble ? DataType::kDouble : DataType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input;
  }
  return DataType::kInt64;
}

/// If `table`'s placement is fully value-determined — every PREF link in
/// its reference chain is co-located (the link predicate's referenced-side
/// columns contain the columns determining the parent's placement) and
/// orphan-free — returns the columns of `table` that determine its
/// partition. Such a table is physically hash-partitioned on those columns
/// and carries no duplicates, so the rewriter can expose it as HASH.
std::optional<std::vector<ColumnId>> EffectiveHashColumns(
    const PartitionedDatabase& pdb, TableId table) {
  const PartitionedTable* pt = pdb.GetTable(table);
  if (pt == nullptr) return std::nullopt;
  const PartitionSpec& spec = pt->spec();
  if (spec.method == PartitionMethod::kHash) return spec.attributes;
  if (spec.method != PartitionMethod::kPref) return std::nullopt;
  // Orphans are placed round-robin, off their value-hash position.
  for (int p = 0; p < pt->num_partitions(); ++p) {
    if (pt->partition(p).has_partner.CountZeros() != 0) return std::nullopt;
  }
  auto parent_cols = EffectiveHashColumns(pdb, spec.referenced_table);
  if (!parent_cols.has_value()) return std::nullopt;
  const JoinPredicate& pred = *spec.predicate;
  std::vector<ColumnId> mapped;
  for (ColumnId pc : *parent_cols) {
    bool found = false;
    for (size_t j = 0; j < pred.right_columns.size(); ++j) {
      if (pred.right_columns[j] == pc) {
        mapped.push_back(pred.left_columns[j]);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;  // parent key not covered by predicate
  }
  return mapped;
}

class Rewriter {
 public:
  Rewriter(const QuerySpec& query, const PartitionedDatabase& pdb,
           const QueryOptions& options)
      : query_(query), pdb_(pdb), options_(options), schema_(pdb.schema()) {}

  Result<std::unique_ptr<PlanNode>> Run();

 private:
  struct RefInfo {
    TableId table = kInvalidTableId;
    const PartitionedTable* pt = nullptr;
    std::set<ColumnId> needed;
    bool removed = false;                     // semi/anti rewrite dropped it
    std::optional<bool> has_partner_filter;   // set on the surviving side
  };

  /// Resolves "alias.col" or bare "col" to (table-ref index, ColumnId).
  Result<std::pair<int, ColumnId>> ResolveColumn(const std::string& name) const {
    for (size_t i = 0; i < query_.tables.size(); ++i) {
      const TableRef& ref = query_.tables[i];
      std::string alias = ref.alias.empty() ? ref.table : ref.alias;
      std::string bare = name;
      if (name.size() > alias.size() + 1 && name.compare(0, alias.size(), alias) == 0 &&
          name[alias.size()] == '.') {
        bare = name.substr(alias.size() + 1);
      } else if (alias != ref.table) {
        // Aliased tables must be referenced with the alias prefix.
        continue;
      }
      auto col = schema_.table(refs_[i].table).FindColumn(bare);
      if (col.ok()) return std::make_pair(static_cast<int>(i), *col);
    }
    return Status::NotFound("column '", name, "' not resolvable in query '",
                            query_.name, "'");
  }

  Status CollectNeededColumns();
  Status ApplySemiAntiRewrites();
  Result<std::unique_ptr<PlanNode>> BuildScan(int ref_index);
  Result<BoundDnf> BindDnfToSlots(const Dnf& dnf, const PlanNode& node) const;
  Result<BoundDnf> BindDnfToTable(const Dnf& dnf, int ref_index) const;
  std::unique_ptr<PlanNode> MakeRepartition(std::unique_ptr<PlanNode> child,
                                            std::vector<int> slots);
  std::unique_ptr<PlanNode> MakeDedup(std::unique_ptr<PlanNode> child);
  Result<std::unique_ptr<PlanNode>> BuildJoins();
  Result<std::unique_ptr<PlanNode>> AddAggregation(std::unique_ptr<PlanNode> node);
  Result<std::unique_ptr<PlanNode>> AddProjection(std::unique_ptr<PlanNode> node);

  const QuerySpec& query_;
  const PartitionedDatabase& pdb_;
  const QueryOptions& options_;
  const Schema& schema_;
  std::vector<RefInfo> refs_;
  int n_ = 0;
};

Status Rewriter::CollectNeededColumns() {
  auto need = [&](const std::string& name) -> Status {
    PREF_ASSIGN_OR_RAISE(auto rc, ResolveColumn(name));
    refs_[static_cast<size_t>(rc.first)].needed.insert(rc.second);
    return Status::OK();
  };
  for (size_t i = 0; i < query_.tables.size(); ++i) {
    for (const auto& conj : query_.table_filters[i].disjuncts) {
      for (const auto& p : conj) PREF_RETURN_NOT_OK(need(p.column));
    }
  }
  for (const auto& step : query_.joins) {
    for (const auto& c : step.left_columns) PREF_RETURN_NOT_OK(need(c));
    for (const auto& c : step.right_columns) PREF_RETURN_NOT_OK(need(c));
  }
  for (const auto& conj : query_.residual_filter.disjuncts) {
    for (const auto& p : conj) PREF_RETURN_NOT_OK(need(p.column));
  }
  for (const auto& g : query_.group_by) PREF_RETURN_NOT_OK(need(g));
  for (const auto& a : query_.aggregates) {
    if (a.func != AggFunc::kCountStar) PREF_RETURN_NOT_OK(need(a.column));
  }
  for (const auto& p : query_.projection) PREF_RETURN_NOT_OK(need(p));
  if (query_.projection.empty() && query_.aggregates.empty()) {
    // SELECT *: everything.
    for (size_t i = 0; i < refs_.size(); ++i) {
      for (ColumnId c = 0; c < schema_.table(refs_[i].table).num_columns(); ++c) {
        refs_[i].needed.insert(c);
      }
    }
  }
  // Partitioning attributes are needed for the co-location checks.
  for (auto& ref : refs_) {
    const PartitionSpec& spec = ref.pt->spec();
    for (ColumnId c : spec.attributes) ref.needed.insert(c);
    if (spec.method == PartitionMethod::kPref) {
      for (ColumnId c : spec.predicate->left_columns) ref.needed.insert(c);
    }
    if (ref.needed.empty()) ref.needed.insert(0);
  }
  return Status::OK();
}

Status Rewriter::ApplySemiAntiRewrites() {
  if (!options_.pref_optimizations) return Status::OK();
  for (const auto& step : query_.joins) {
    if (step.type == JoinType::kInner) continue;
    size_t s_idx = static_cast<size_t>(step.table_index);
    // (a) S unfiltered.
    if (!query_.table_filters[s_idx].empty()) continue;
    // (b) S's columns unused outside this join step.
    bool used_elsewhere = false;
    auto uses_s = [&](const std::string& name) {
      auto rc = ResolveColumn(name);
      return rc.ok() && rc->first == step.table_index;
    };
    for (const auto& other : query_.joins) {
      if (&other == &step) continue;
      for (const auto& c : other.left_columns) used_elsewhere |= uses_s(c);
      for (const auto& c : other.right_columns) used_elsewhere |= uses_s(c);
    }
    for (const auto& conj : query_.residual_filter.disjuncts) {
      for (const auto& p : conj) used_elsewhere |= uses_s(p.column);
    }
    for (const auto& g : query_.group_by) used_elsewhere |= uses_s(g);
    for (const auto& a : query_.aggregates) {
      if (a.func != AggFunc::kCountStar) used_elsewhere |= uses_s(a.column);
    }
    for (const auto& p : query_.projection) used_elsewhere |= uses_s(p);
    if (used_elsewhere) continue;
    // (c) all left columns come from one table R, PREF-referencing S on
    // exactly this predicate.
    int r_idx = -1;
    std::vector<ColumnId> left_cols, right_cols;
    bool ok = true;
    for (size_t k = 0; k < step.left_columns.size(); ++k) {
      auto lc = ResolveColumn(step.left_columns[k]);
      auto rc = ResolveColumn(step.right_columns[k]);
      if (!lc.ok() || !rc.ok() || rc->first != step.table_index) {
        ok = false;
        break;
      }
      if (r_idx == -1) r_idx = lc->first;
      if (lc->first != r_idx) {
        ok = false;
        break;
      }
      left_cols.push_back(lc->second);
      right_cols.push_back(rc->second);
    }
    if (!ok || r_idx < 0) continue;
    RefInfo& r = refs_[static_cast<size_t>(r_idx)];
    const PartitionSpec& spec = r.pt->spec();
    if (spec.method != PartitionMethod::kPref ||
        spec.referenced_table != refs_[s_idx].table) {
      continue;
    }
    // Predicate equality (order-insensitive pairing).
    const JoinPredicate& p = *spec.predicate;
    if (p.left_columns.size() != left_cols.size()) continue;
    bool same = true;
    std::vector<bool> matched(p.left_columns.size(), false);
    for (size_t k = 0; k < left_cols.size() && same; ++k) {
      bool found = false;
      for (size_t m = 0; m < p.left_columns.size(); ++m) {
        if (!matched[m] && p.left_columns[m] == left_cols[k] &&
            p.right_columns[m] == right_cols[k]) {
          matched[m] = true;
          found = true;
          break;
        }
      }
      same = found;
    }
    if (!same) continue;
    // Rewrite: drop S, filter R on hasS.
    r.has_partner_filter = step.type == JoinType::kSemi;
    refs_[s_idx].removed = true;
  }
  return Status::OK();
}

Result<BoundDnf> Rewriter::BindDnfToTable(const Dnf& dnf, int ref_index) const {
  BoundDnf out;
  for (const auto& conj : dnf.disjuncts) {
    std::vector<BoundPredicate> bound;
    for (const auto& p : conj) {
      PREF_ASSIGN_OR_RAISE(auto rc, ResolveColumn(p.column));
      if (rc.first != ref_index) {
        return Status::Invalid("filter column '", p.column,
                               "' does not belong to the filtered table");
      }
      bound.push_back({rc.second, p.op, p.value, p.value_hi});
    }
    out.disjuncts.push_back(std::move(bound));
  }
  return out;
}

Result<BoundDnf> Rewriter::BindDnfToSlots(const Dnf& dnf, const PlanNode& node) const {
  BoundDnf out;
  for (const auto& conj : dnf.disjuncts) {
    std::vector<BoundPredicate> bound;
    for (const auto& p : conj) {
      int slot = node.FindCol(p.column);
      if (slot < 0) {
        return Status::NotFound("column '", p.column, "' not in plan output");
      }
      bound.push_back({slot, p.op, p.value, p.value_hi});
    }
    out.disjuncts.push_back(std::move(bound));
  }
  return out;
}

Result<std::unique_ptr<PlanNode>> Rewriter::BuildScan(int ref_index) {
  const RefInfo& ref = refs_[static_cast<size_t>(ref_index)];
  const TableRef& tref = query_.tables[static_cast<size_t>(ref_index)];
  const TableDef& def = schema_.table(ref.table);
  const PartitionSpec& spec = ref.pt->spec();

  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kScan;
  node->scan_table = ref.table;
  node->scan_alias = tref.alias.empty() ? tref.table : tref.alias;
  node->scan_has_partner = ref.has_partner_filter;

  std::vector<ColumnId> read_cols(ref.needed.begin(), ref.needed.end());
  for (ColumnId c : read_cols) {
    OutputCol col;
    col.name = ScanColName(tref, def.column(c).name);
    col.type = def.column(c).type;
    col.origin_table = ref.table;
    col.origin_col = c;
    node->cols.push_back(std::move(col));
  }
  node->project_slots.assign(read_cols.begin(), read_cols.end());  // base cols

  PREF_ASSIGN_OR_RAISE(node->scan_filter,
                       BindDnfToTable(query_.table_filters[static_cast<size_t>(
                                          ref_index)],
                                      ref_index));

  auto slot_of = [&](ColumnId c) {
    for (size_t i = 0; i < read_cols.size(); ++i) {
      if (read_cols[i] == c) return static_cast<int>(i);
    }
    return -1;
  };

  node->part.num_partitions = spec.num_partitions;
  switch (spec.method) {
    case PartitionMethod::kHash:
      node->part.method = PartitionMethod::kHash;
      for (ColumnId c : spec.attributes) node->part.slots.push_back(slot_of(c));
      node->part.anchor_table = ref.table;
      node->part.anchor_columns = spec.attributes;
      break;
    case PartitionMethod::kPref: {
      // A fully co-located, orphan-free PREF chain is physically hash
      // partitioning: expose it as HASH (duplicate-free), which unlocks
      // case (1)/(2) joins on the inherited key.
      auto effective = EffectiveHashColumns(pdb_, ref.table);
      if (effective.has_value()) {
        node->part.method = PartitionMethod::kHash;
        for (ColumnId c : *effective) node->part.slots.push_back(slot_of(c));
        node->part.anchor_table = spec.seed_table;
        node->part.anchor_columns = spec.seed_attributes;
        break;
      }
      node->part.method = PartitionMethod::kPref;
      for (ColumnId c : spec.predicate->left_columns) {
        node->part.slots.push_back(slot_of(c));
      }
      node->part.pref_table = ref.table;
      node->part.pref_spec = &spec;
      node->part.seed_table = spec.seed_table;
      node->part.seed_columns = spec.seed_attributes;
      // Attach the dup column.
      node->scan_attach_dup = true;
      OutputCol dup_col;
      dup_col.name = "__dup." + node->scan_alias;
      dup_col.type = DataType::kInt64;
      node->cols.push_back(std::move(dup_col));
      node->active_dup_slots.push_back(static_cast<int>(node->cols.size()) - 1);
      break;
    }
    case PartitionMethod::kReplicated:
      node->part.method = PartitionMethod::kReplicated;
      node->replicated = true;
      break;
    case PartitionMethod::kRange:
      // Range placement is value-determined but not hash-compatible: keep
      // the method so PREF tables referencing this seed join locally via
      // the faithfulness rule, while case (1) co-hash checks stay off.
      node->part.method = PartitionMethod::kRange;
      for (ColumnId c : spec.attributes) node->part.slots.push_back(slot_of(c));
      node->part.anchor_table = ref.table;
      node->part.anchor_columns = spec.attributes;
      break;
    default:
      node->part.method = PartitionMethod::kNone;
      break;
  }

  node->faithful_tables.push_back(ref.table);
  node->slot_class.resize(node->cols.size());
  for (size_t i = 0; i < node->cols.size(); ++i) {
    node->slot_class[i] = static_cast<int>(i);
  }

  // Partition pruning (§7 outlook). A single-disjunct equality filter
  // covering a placement-determining column set restricts the scan:
  //  * hash (or co-located effective-hash) placement -> the one partition
  //    the values hash to;
  //  * PREF placement -> the referenced table's partition-index entry for
  //    the predicate-key values (several partitions; no pruning if the key
  //    is absent, since a partnerless tuple may sit anywhere round-robin).
  // Either way every qualifying row lives in the pruned set, so the
  // co-location properties (and local joins) remain valid.
  if (options_.partition_pruning && node->scan_filter.disjuncts.size() == 1) {
    // Bound equality values per base column.
    auto value_of = [&](ColumnId col) -> const Value* {
      for (const auto& p : node->scan_filter.disjuncts[0]) {
        if (p.op == CompareOp::kEq && p.slot == col) return &p.value;
      }
      return nullptr;
    };
    if (node->part.method == PartitionMethod::kHash) {
      // part.slots index into read_cols; recover the base columns.
      std::vector<const Value*> values;
      bool covered = !node->part.slots.empty();
      for (int slot : node->part.slots) {
        const Value* v = value_of(read_cols[static_cast<size_t>(slot)]);
        if (v == nullptr) {
          covered = false;
          break;
        }
        values.push_back(v);
      }
      if (covered) {
        uint64_t h = 0x84222325cbf29ce4ULL;
        for (const Value* v : values) h = HashCombine(h, v->Hash());
        node->scan_partitions = {
            static_cast<int>(h % static_cast<uint64_t>(spec.num_partitions))};
      }
    } else if (spec.method == PartitionMethod::kPref) {
      const PartitionedTable* ref_table = pdb_.GetTable(spec.referenced_table);
      const PartitionIndex* index =
          ref_table == nullptr
              ? nullptr
              : ref_table->FindPartitionIndex(spec.predicate->right_columns);
      if (index != nullptr) {
        PartitionIndex::Key key;
        bool covered = true;
        for (ColumnId c : spec.predicate->left_columns) {
          const Value* v = value_of(c);
          if (v == nullptr) {
            covered = false;
            break;
          }
          key.push_back(*v);
        }
        if (covered) {
          const auto& parts = index->Lookup(key);
          if (!parts.empty()) node->scan_partitions = parts;
        }
      }
    }
  }
  return node;
}

std::unique_ptr<PlanNode> Rewriter::MakeRepartition(std::unique_ptr<PlanNode> child,
                                                    std::vector<int> slots) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kRepartition;
  node->cols = child->cols;
  node->slot_class = child->slot_class;
  node->hash_slots = slots;
  node->part.method = PartitionMethod::kHash;
  node->part.slots = std::move(slots);
  node->part.num_partitions = n_;
  // Anchor from slot provenance if available.
  bool anchored = true;
  for (int s : node->part.slots) {
    const OutputCol& c = child->cols[static_cast<size_t>(s)];
    if (c.origin_table == kInvalidTableId) {
      anchored = false;
      break;
    }
    if (node->part.anchor_table == kInvalidTableId) {
      node->part.anchor_table = c.origin_table;
    }
    if (node->part.anchor_table != c.origin_table) anchored = false;
  }
  if (anchored && node->part.anchor_table != kInvalidTableId) {
    for (int s : node->part.slots) {
      node->part.anchor_columns.push_back(child->cols[static_cast<size_t>(s)].origin_col);
    }
  } else {
    node->part.anchor_table = kInvalidTableId;
    node->part.anchor_columns.clear();
  }
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> Rewriter::MakeDedup(std::unique_ptr<PlanNode> child) {
  if (child->active_dup_slots.empty()) return child;
  if (options_.pref_optimizations) {
    auto node = std::make_unique<PlanNode>();
    node->kind = OpKind::kDupElim;
    node->cols = child->cols;
    node->slot_class = child->slot_class;
    node->part = child->part;
    node->replicated = child->replicated;
    node->children.push_back(std::move(child));
    return node;
  }
  // Without the dup-bitmap optimization: full-row shuffle + value distinct
  // over the non-dup columns.
  std::vector<int> value_slots;
  for (size_t i = 0; i < child->cols.size(); ++i) {
    if (child->cols[i].name.rfind("__dup.", 0) != 0) {
      value_slots.push_back(static_cast<int>(i));
    }
  }
  auto shuffled = MakeRepartition(std::move(child), value_slots);
  // Value-based repartition must NOT bitmap-dedup (that is the very
  // optimization being disabled): clear the child's active set knowledge by
  // marking this exchange as a raw shuffle via hash_slots only. The
  // executor skips bitmap dedup when pref optimizations are off; we encode
  // that by keeping active_dup_slots on the repartition output.
  shuffled->active_dup_slots.clear();
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kValueDistinct;
  node->cols = shuffled->cols;
  node->slot_class = shuffled->slot_class;
  node->part = shuffled->part;
  node->project_slots = value_slots;  // distinct key
  node->children.push_back(std::move(shuffled));
  return node;
}

Result<std::unique_ptr<PlanNode>> Rewriter::BuildJoins() {
  // First surviving table starts the tree.
  int first = -1;
  for (size_t i = 0; i < refs_.size(); ++i) {
    if (!refs_[i].removed) {
      first = static_cast<int>(i);
      break;
    }
  }
  if (first != 0) {
    return Status::Invalid("the first table of query '", query_.name,
                           "' was rewritten away; reorder the join tree");
  }
  PREF_ASSIGN_OR_RAISE(auto current, BuildScan(0));

  for (const auto& step : query_.joins) {
    if (refs_[static_cast<size_t>(step.table_index)].removed) continue;
    PREF_ASSIGN_OR_RAISE(auto right, BuildScan(step.table_index));

    // Bind join slots.
    std::vector<int> left_slots, right_slots;
    for (const auto& name : step.left_columns) {
      int s = current->FindCol(name);
      if (s < 0) return Status::NotFound("join column '", name, "' not in left input");
      left_slots.push_back(s);
    }
    for (const auto& name : step.right_columns) {
      int s = right->FindCol(name);
      if (s < 0) return Status::NotFound("join column '", name, "' not in right input");
      right_slots.push_back(s);
    }

    // --- §2.2 join locality cases -------------------------------------
    bool local = false;
    enum class ResultProp { kLeft, kRight, kHashSide, kReplicatedBoth } result_prop =
        ResultProp::kLeft;
    // Replicated inputs join locally everywhere.
    if (current->replicated && right->replicated) {
      local = true;
      result_prop = ResultProp::kReplicatedBoth;
    } else if (current->replicated && step.type == JoinType::kInner) {
      // A replicated left joined with a partitioned right is local. (For
      // semi/anti joins this would duplicate surviving left rows across
      // partitions, so those take the re-partitioning path.)
      local = true;
      result_prop = ResultProp::kRight;
    } else if (right->replicated) {
      local = true;
      result_prop = ResultProp::kLeft;
    }
    auto slots_match = [](const std::vector<int>& a, const std::vector<int>& b) {
      return !a.empty() && a == b;
    };
    // Case (1): both sides hash partitioned such that equal join keys land
    // on the same node. Strictly: both hashed on the full join key; also
    // accepted: both hashed on the *same aligned subset* of the join key
    // (equal join keys imply equal subset values imply equal placement).
    auto same_class = [](const PlanNode& node, int a, int b) {
      if (a == b) return true;
      if (node.slot_class.empty()) return false;
      return node.slot_class[static_cast<size_t>(a)] ==
             node.slot_class[static_cast<size_t>(b)];
    };
    auto co_hashed = [&](const PartProp& l, const PartProp& r) {
      if (l.method != PartitionMethod::kHash || r.method != PartitionMethod::kHash) {
        return false;
      }
      if (l.num_partitions != r.num_partitions) return false;
      if (l.slots.empty() || l.slots.size() != r.slots.size()) return false;
      for (size_t k = 0; k < l.slots.size(); ++k) {
        int pos = -1;
        for (size_t i = 0; i < left_slots.size(); ++i) {
          if (same_class(*current, left_slots[i], l.slots[k])) {
            pos = static_cast<int>(i);
            break;
          }
        }
        if (pos < 0 ||
            !same_class(*right, right_slots[static_cast<size_t>(pos)], r.slots[k])) {
          return false;
        }
      }
      return true;
    };
    if (!local && co_hashed(current->part, right->part)) {
      local = true;
      result_prop = ResultProp::kLeft;
    }
    // Cases (2) and (3): PREF-side join on its partitioning predicate.
    auto origin_matches = [&](const PlanNode& node, const std::vector<int>& slots,
                              TableId table, const std::vector<ColumnId>& cols) {
      if (slots.size() != cols.size()) return false;
      for (size_t i = 0; i < slots.size(); ++i) {
        const OutputCol& c = node.cols[static_cast<size_t>(slots[i])];
        if (c.origin_table != table || c.origin_col != cols[i]) return false;
      }
      return true;
    };
    auto check_pref_cases = [&](PlanNode* pref_side, PlanNode* other,
                                const std::vector<int>& pref_slots,
                                const std::vector<int>& other_slots) {
      const PartProp& p = pref_side->part;
      if (p.method != PartitionMethod::kPref) return false;
      if (!slots_match(p.slots, pref_slots)) return false;
      const JoinPredicate& pred = *p.pref_spec->predicate;
      // Other side must carry the referenced table's predicate columns.
      if (!origin_matches(*other, other_slots, pred.right_table,
                          pred.right_columns)) {
        return false;
      }
      if (other->part.num_partitions != p.num_partitions &&
          other->part.method != PartitionMethod::kNone) {
        return false;
      }
      // Unified case (2)/(3): if the other input still presents the
      // referenced table's rows at their Definition-1 placements, the PREF
      // side joins locally regardless of the referenced table's own scheme
      // (hash, range, round-robin, or another PREF family).
      {
        bool referenced_faithful =
            std::find(other->faithful_tables.begin(), other->faithful_tables.end(),
                       pred.right_table) != other->faithful_tables.end();
        if (referenced_faithful) return true;
      }
      if (other->part.method == PartitionMethod::kHash) {
        // Case (2): the hash side must carry the seed scheme — placed by
        // the same (table, columns) hash the PREF family was built on. The
        // hash attributes need not be the join columns: e.g. after the
        // local join (L JOIN O) the intermediate keeps L's hash-on-orderkey
        // placement, and CUSTOMER (PREF by O, seed L) joins it locally on
        // custkey because its copies were placed wherever its partner
        // orders' copies are.
        return other->part.anchor_table == p.seed_table &&
               other->part.anchor_columns == p.seed_columns;
      }
      if (other->part.method == PartitionMethod::kPref) {
        // Case (3), generalized to chained intermediates: the referenced
        // table's rows must still sit at their Definition-1 placements in
        // the other input (true for base scans and preserved by every
        // local join), and both PREF families must share the seed scheme.
        bool referenced_faithful =
            std::find(other->faithful_tables.begin(), other->faithful_tables.end(),
                      pred.right_table) != other->faithful_tables.end();
        return referenced_faithful && other->part.seed_table == p.seed_table &&
               other->part.seed_columns == p.seed_columns;
      }
      return false;
    };
    bool left_is_referencing = false, right_is_referencing = false;
    if (!local && check_pref_cases(current.get(), right.get(), left_slots,
                                   right_slots)) {
      local = true;
      left_is_referencing = true;
      result_prop =
          right->part.method == PartitionMethod::kHash ? ResultProp::kHashSide
                                                       : ResultProp::kRight;
    } else if (!local && check_pref_cases(right.get(), current.get(), right_slots,
                                          left_slots)) {
      local = true;
      right_is_referencing = true;
      result_prop = current->part.method == PartitionMethod::kHash
                        ? ResultProp::kHashSide
                        : ResultProp::kLeft;
    }

    if (!local) {
      // Neither case applies: re-partition so both sides are hashed on the
      // join keys (duplicates eliminated before shuffling, §2.2). A side
      // already hash-partitioned on its join key keeps its placement.
      bool left_ok = current->part.method == PartitionMethod::kHash &&
                     current->part.num_partitions == n_ &&
                     slots_match(current->part.slots, left_slots);
      if (!left_ok) {
        current = MakeDedup(std::move(current));
        current = MakeRepartition(std::move(current), left_slots);
      }
      bool right_ok = right->part.method == PartitionMethod::kHash &&
                      right->part.num_partitions == n_ &&
                      slots_match(right->part.slots, right_slots);
      if (!right_ok) {
        right = MakeDedup(std::move(right));
        right = MakeRepartition(std::move(right), right_slots);
      }
      result_prop = ResultProp::kLeft;
    }

    // Build the join node.
    auto join = std::make_unique<PlanNode>();
    join->kind = OpKind::kJoin;
    join->join_type = step.type;
    join->join_left_slots = left_slots;
    join->join_right_slots = right_slots;
    const int left_ncols = static_cast<int>(current->cols.size());
    const bool keep_right_cols = step.type == JoinType::kInner;

    join->cols = current->cols;
    if (keep_right_cols) {
      for (const auto& c : right->cols) join->cols.push_back(c);
    }

    auto shift = [&](const std::vector<int>& slots) {
      std::vector<int> out;
      for (int s : slots) out.push_back(s + left_ncols);
      return out;
    };

    // --- Part(o) and Dup(o) -------------------------------------------
    const PlanNode& left_ref = *current;
    const PlanNode& right_ref = *right;
    if (result_prop == ResultProp::kReplicatedBoth) {
      join->replicated = true;
      join->part.method = PartitionMethod::kReplicated;
      join->part.num_partitions = n_;
    } else if (!keep_right_cols) {
      // Semi/anti joins output only left columns: left properties hold.
      join->part = left_ref.part;
      join->active_dup_slots = left_ref.active_dup_slots;
      join->replicated = left_ref.replicated;
    } else if (left_is_referencing) {
      // Cases (2)/(3) with the left input referencing: the result takes the
      // referenced (right) input's scheme; case (2) clears Dup, case (3)
      // inherits the referenced input's dup status.
      join->part = right_ref.part;
      join->part.slots = shift(right_ref.part.slots);
      if (right_ref.part.method == PartitionMethod::kPref) {
        join->active_dup_slots = shift(right_ref.active_dup_slots);
      }
      join->replicated = false;
    } else if (right_is_referencing) {
      join->part = left_ref.part;
      if (left_ref.part.method == PartitionMethod::kPref) {
        join->active_dup_slots = left_ref.active_dup_slots;
      }
      join->replicated = false;
    } else {
      switch (result_prop) {
        case ResultProp::kLeft:
          join->part = left_ref.part;
          join->active_dup_slots = left_ref.active_dup_slots;
          if (keep_right_cols) {
            for (int s : right_ref.active_dup_slots) {
              join->active_dup_slots.push_back(s + left_ncols);
            }
          }
          join->replicated = left_ref.replicated && right_ref.replicated;
          break;
        case ResultProp::kRight:
        case ResultProp::kHashSide:
          join->part = right_ref.part;
          join->part.slots = shift(right_ref.part.slots);
          join->active_dup_slots = left_ref.active_dup_slots;
          for (int s : right_ref.active_dup_slots) {
            join->active_dup_slots.push_back(s + left_ncols);
          }
          join->replicated = false;
          break;
        case ResultProp::kReplicatedBoth:
          break;  // handled above
      }
    }

    // Pruning propagation: when a local join has one equality-pruned scan
    // side, matching rows of the other side can only live in the same
    // partition — restrict its scan too (inner/semi; anti joins must keep
    // scanning the probe side everywhere, which `local` semantics already
    // handle since only the build side is restricted).
    if (options_.partition_pruning && local) {
      auto propagate = [](PlanNode* from, PlanNode* to) {
        if (from->kind == OpKind::kScan && !from->scan_partitions.empty() &&
            to->kind == OpKind::kScan && to->scan_partitions.empty()) {
          to->scan_partitions = from->scan_partitions;
        }
      };
      if (step.type != JoinType::kAnti) {
        propagate(current.get(), right.get());
      }
      propagate(right.get(), current.get());
    }

    // Placement faithfulness: preserved for both sides of a local join
    // (exchange nodes carry empty sets, so the union handles the
    // re-partitioned paths too). Semi/anti keep only the surviving side.
    join->faithful_tables = left_ref.faithful_tables;
    if (keep_right_cols) {
      for (TableId t : right_ref.faithful_tables) join->faithful_tables.push_back(t);
    }

    // Slot equivalence classes: inherit, then merge the join-key pairs.
    join->slot_class = left_ref.slot_class;
    if (keep_right_cols) {
      for (int c : right_ref.slot_class) join->slot_class.push_back(c + left_ncols);
      std::function<int(int)> find_class = [&](int s) {
        while (join->slot_class[static_cast<size_t>(s)] != s) {
          s = join->slot_class[static_cast<size_t>(s)];
        }
        return s;
      };
      for (size_t i = 0; i < left_slots.size(); ++i) {
        int a = find_class(left_slots[i]);
        int b = find_class(right_slots[i] + left_ncols);
        if (a != b) join->slot_class[static_cast<size_t>(b)] = a;
      }
      for (size_t i = 0; i < join->slot_class.size(); ++i) {
        join->slot_class[i] = find_class(static_cast<int>(i));
      }
    }

    join->children.push_back(std::move(current));
    join->children.push_back(std::move(right));
    current = std::move(join);
  }

  // Residual filter after all joins.
  if (!query_.residual_filter.empty()) {
    auto filter = std::make_unique<PlanNode>();
    filter->kind = OpKind::kFilter;
    filter->cols = current->cols;
    PREF_ASSIGN_OR_RAISE(filter->filter,
                         BindDnfToSlots(query_.residual_filter, *current));
    filter->part = current->part;
    filter->active_dup_slots = current->active_dup_slots;
    filter->replicated = current->replicated;
    filter->faithful_tables = current->faithful_tables;
    filter->slot_class = current->slot_class;
    filter->children.push_back(std::move(current));
    current = std::move(filter);
  }
  return current;
}

Result<std::unique_ptr<PlanNode>> Rewriter::AddAggregation(
    std::unique_ptr<PlanNode> node) {
  if (query_.aggregates.empty()) return node;

  // Duplicates must be eliminated before any aggregation.
  node = MakeDedup(std::move(node));

  // Bind group slots and aggregate inputs.
  std::vector<int> group_slots;
  for (const auto& g : query_.group_by) {
    int s = node->FindCol(g);
    if (s < 0) return Status::NotFound("group-by column '", g, "' not in plan output");
    group_slots.push_back(s);
  }
  std::vector<BoundAgg> aggs;
  for (const auto& a : query_.aggregates) {
    BoundAgg bound;
    bound.func = a.func;
    bound.output_name = a.output_name;
    if (a.func == AggFunc::kCountStar) {
      bound.slot = -1;
      bound.output_type = DataType::kInt64;
    } else {
      int s = node->FindCol(a.column);
      if (s < 0) {
        return Status::NotFound("aggregate column '", a.column,
                                "' not in plan output");
      }
      bound.slot = s;
      bound.output_type = AggOutputType(a.func, node->cols[static_cast<size_t>(s)].type);
    }
    aggs.push_back(std::move(bound));
  }

  const bool input_replicated = node->replicated;

  // Alignment: input hash-partitioned and group columns start with the
  // partitioning attributes (§2.2 aggregation rule).
  bool aligned = false;
  if (node->part.method == PartitionMethod::kHash &&
      node->part.num_partitions == n_ &&
      node->part.slots.size() <= group_slots.size()) {
    aligned = std::equal(node->part.slots.begin(), node->part.slots.end(),
                         group_slots.begin());
  }
  if (input_replicated) aligned = true;  // executed on a single node

  // Partial aggregation per node.
  auto partial = std::make_unique<PlanNode>();
  partial->kind = OpKind::kPartialAgg;
  partial->group_slots = group_slots;
  partial->aggs = aggs;
  for (int g : group_slots) partial->cols.push_back(node->cols[static_cast<size_t>(g)]);
  for (const auto& a : aggs) {
    if (a.func == AggFunc::kAvg) {
      partial->cols.push_back({a.output_name + ".sum", DataType::kDouble,
                               kInvalidTableId, -1});
      partial->cols.push_back({a.output_name + ".cnt", DataType::kInt64,
                               kInvalidTableId, -1});
    } else {
      DataType t = a.func == AggFunc::kCount || a.func == AggFunc::kCountStar
                       ? DataType::kInt64
                       : a.output_type;
      partial->cols.push_back({a.output_name, t, kInvalidTableId, -1});
    }
  }
  partial->part = node->part;
  // Group slots move to the front of the partial layout.
  partial->part.slots.clear();
  if (node->part.method == PartitionMethod::kHash && aligned && !input_replicated) {
    for (size_t i = 0; i < node->part.slots.size(); ++i) {
      partial->part.slots.push_back(static_cast<int>(i));
    }
  } else {
    partial->part.method = PartitionMethod::kNone;
  }
  partial->replicated = false;  // executor reads one copy of replicated input
  partial->children.push_back(std::move(node));
  std::unique_ptr<PlanNode> current = std::move(partial);

  // Exchange if not aligned: grouped -> repartition on group columns;
  // global -> gather to the coordinator.
  if (!aligned) {
    if (group_slots.empty()) {
      auto gather = std::make_unique<PlanNode>();
      gather->kind = OpKind::kGather;
      gather->cols = current->cols;
      gather->part.method = PartitionMethod::kNone;
      gather->part.num_partitions = n_;
      gather->children.push_back(std::move(current));
      current = std::move(gather);
    } else {
      std::vector<int> partial_group_slots;
      for (size_t i = 0; i < group_slots.size(); ++i) {
        partial_group_slots.push_back(static_cast<int>(i));
      }
      current = MakeRepartition(std::move(current), partial_group_slots);
    }
  }

  // Final aggregation.
  auto final_agg = std::make_unique<PlanNode>();
  final_agg->kind = OpKind::kFinalAgg;
  for (size_t i = 0; i < group_slots.size(); ++i) {
    final_agg->group_slots.push_back(static_cast<int>(i));
    final_agg->cols.push_back(current->cols[i]);
  }
  final_agg->aggs = aggs;
  for (const auto& a : aggs) {
    final_agg->cols.push_back({a.output_name, a.output_type, kInvalidTableId, -1});
  }
  final_agg->part = current->part;
  final_agg->children.push_back(std::move(current));
  current = std::move(final_agg);

  // HAVING: a local filter over the aggregated output.
  if (!query_.having.empty()) {
    auto having = std::make_unique<PlanNode>();
    having->kind = OpKind::kFilter;
    having->cols = current->cols;
    PREF_ASSIGN_OR_RAISE(having->filter, BindDnfToSlots(query_.having, *current));
    having->part = current->part;
    having->children.push_back(std::move(current));
    current = std::move(having);
  }

  // Deliver the grouped result to the coordinator.
  if (!query_.group_by.empty() || aligned) {
    auto gather = std::make_unique<PlanNode>();
    gather->kind = OpKind::kGather;
    gather->cols = current->cols;
    gather->part.method = PartitionMethod::kNone;
    gather->part.num_partitions = n_;
    gather->children.push_back(std::move(current));
    current = std::move(gather);
  }
  return current;
}

Result<std::unique_ptr<PlanNode>> Rewriter::AddProjection(
    std::unique_ptr<PlanNode> node) {
  if (!query_.aggregates.empty()) return node;

  // Projection: eliminate PREF duplicates, gather, project.
  node = MakeDedup(std::move(node));
  if (node->kind != OpKind::kGather) {
    auto gather = std::make_unique<PlanNode>();
    gather->kind = OpKind::kGather;
    gather->cols = node->cols;
    gather->part.method = PartitionMethod::kNone;
    gather->part.num_partitions = n_;
    gather->replicated = false;
    gather->children.push_back(std::move(node));
    node = std::move(gather);
  }
  auto project = std::make_unique<PlanNode>();
  project->kind = OpKind::kProject;
  if (query_.projection.empty()) {
    for (size_t i = 0; i < node->cols.size(); ++i) {
      if (node->cols[i].name.rfind("__dup.", 0) == 0) continue;
      project->project_slots.push_back(static_cast<int>(i));
      project->cols.push_back(node->cols[i]);
    }
  } else {
    for (const auto& name : query_.projection) {
      int s = node->FindCol(name);
      if (s < 0) {
        return Status::NotFound("projection column '", name, "' not in plan output");
      }
      project->project_slots.push_back(s);
      project->cols.push_back(node->cols[static_cast<size_t>(s)]);
    }
  }
  project->part.method = PartitionMethod::kNone;
  project->part.num_partitions = n_;
  project->children.push_back(std::move(node));
  return project;
}

Result<std::unique_ptr<PlanNode>> Rewriter::Run() {
  n_ = 0;
  refs_.resize(query_.tables.size());
  for (size_t i = 0; i < query_.tables.size(); ++i) {
    PREF_ASSIGN_OR_RAISE(TableId id, schema_.FindTable(query_.tables[i].table));
    refs_[i].table = id;
    const PartitionedTable* pt = pdb_.GetTable(id);
    if (pt == nullptr) {
      return Status::Invalid("table '", query_.tables[i].table,
                             "' is not partitioned in this database");
    }
    refs_[i].pt = pt;
    n_ = std::max(n_, pt->num_partitions());
  }
  PREF_RETURN_NOT_OK(CollectNeededColumns());
  PREF_RETURN_NOT_OK(ApplySemiAntiRewrites());
  PREF_ASSIGN_OR_RAISE(auto joined, BuildJoins());
  PREF_ASSIGN_OR_RAISE(auto aggregated, AddAggregation(std::move(joined)));
  PREF_ASSIGN_OR_RAISE(auto projected, AddProjection(std::move(aggregated)));
  if (query_.order_by.empty() && query_.limit < 0) return projected;
  // Coordinator-side sort / limit.
  auto sort = std::make_unique<PlanNode>();
  sort->kind = OpKind::kSort;
  sort->cols = projected->cols;
  sort->part = projected->part;
  sort->limit = query_.limit;
  for (const auto& [name, desc] : query_.order_by) {
    int slot = projected->FindCol(name);
    if (slot < 0) {
      return Status::NotFound("ORDER BY column '", name, "' not in query output");
    }
    sort->sort_keys.emplace_back(slot, desc);
  }
  sort->children.push_back(std::move(projected));
  return sort;
}

}  // namespace

Result<std::unique_ptr<PlanNode>> RewriteQuery(const QuerySpec& query,
                                               const PartitionedDatabase& pdb,
                                               const QueryOptions& options) {
  Rewriter rewriter(query, pdb, options);
  return rewriter.Run();
}

Result<std::string> ExplainQuery(const QuerySpec& query,
                                 const PartitionedDatabase& pdb,
                                 const QueryOptions& options) {
  PREF_ASSIGN_OR_RAISE(auto plan, RewriteQuery(query, pdb, options));
  return plan->ToString(pdb.schema());
}

}  // namespace pref
