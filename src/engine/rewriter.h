// The §2.2 rewrite process: turns an SPJA QuerySpec into an executable
// plan over a PartitionedDatabase. Bottom-up, it computes Part(o) and
// Dup(o) for every operator, inserts re-partitioning and PREF-duplicate
// elimination where required, recognizes the three no-repartition join
// cases, and applies the hasS semi-/anti-join rewrites.

#pragma once

#include <memory>

#include "engine/plan.h"
#include "engine/query.h"
#include "storage/partition.h"

namespace pref {

struct QueryOptions {
  /// Apply the PREF-specific optimizations of §2.2: dup-bitmap duplicate
  /// elimination and hasS semi-/anti-join rewrites. When false (the
  /// "wo Optimizations" bars of Figure 9), duplicate elimination falls
  /// back to a full-row shuffle + value-distinct and semi-/anti-joins are
  /// executed as real joins.
  bool pref_optimizations = true;
  /// Partition pruning for seed-key equality predicates (§7 outlook).
  bool partition_pruning = false;
};

/// Rewrites `query` for execution over `pdb`. Every table referenced by
/// the query must have a partitioned representation in `pdb`.
Result<std::unique_ptr<PlanNode>> RewriteQuery(const QuerySpec& query,
                                               const PartitionedDatabase& pdb,
                                               const QueryOptions& options = {});

/// Renders the rewritten plan (EXPLAIN): one line per operator with its
/// Part(o)/Dup(o) properties, suitable for inspecting which joins execute
/// locally and where exchanges were inserted.
Result<std::string> ExplainQuery(const QuerySpec& query,
                                 const PartitionedDatabase& pdb,
                                 const QueryOptions& options = {});

}  // namespace pref
