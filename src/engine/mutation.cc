#include "engine/mutation.h"

#include <set>

#include "engine/plan.h"
#include "partition/partitioner.h"

namespace pref {

namespace {

/// Binds a name-based Dnf to ColumnIds of `def`.
Result<BoundDnf> BindDnf(const TableDef& def, const Dnf& filter) {
  BoundDnf bound;
  for (const auto& conj : filter.disjuncts) {
    std::vector<BoundPredicate> preds;
    for (const auto& p : conj) {
      PREF_ASSIGN_OR_RAISE(ColumnId c, def.FindColumn(p.column));
      preds.push_back({c, p.op, p.value, p.value_hi});
    }
    bound.disjuncts.push_back(std::move(preds));
  }
  return bound;
}

bool Matches(const BoundDnf& dnf, const RowBlock& rows, size_t r) {
  if (dnf.empty()) return true;
  for (const auto& conj : dnf.disjuncts) {
    bool all = true;
    for (const auto& p : conj) {
      Value v = rows.column(p.slot).GetValue(r);
      bool ok = false;
      switch (p.op) {
        case CompareOp::kEq:
          ok = v == p.value;
          break;
        case CompareOp::kNe:
          ok = !(v == p.value);
          break;
        case CompareOp::kLt:
          ok = v < p.value;
          break;
        case CompareOp::kLe:
          ok = v < p.value || v == p.value;
          break;
        case CompareOp::kGt:
          ok = p.value < v;
          break;
        case CompareOp::kGe:
          ok = p.value < v || v == p.value;
          break;
        case CompareOp::kBetween:
          ok = !(v < p.value) && !(p.value_hi < v);
          break;
      }
      if (!ok) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

void RebuildIndexes(PartitionedTable* table) {
  for (auto& [cols, idx] : table->indexes()) {
    idx = std::make_unique<PartitionIndex>();
    for (int p = 0; p < table->num_partitions(); ++p) {
      const RowBlock& rows = table->partition(p).rows;
      for (size_t r = 0; r < rows.num_rows(); ++r) {
        PartitionIndex::Key key;
        for (ColumnId c : cols) key.push_back(rows.column(c).GetValue(r));
        idx->Add(key, p);
      }
    }
  }
}

}  // namespace

Result<std::set<ColumnId>> Mutator::FrozenColumns(const Schema& schema,
                                                  TableId table) const {
  std::set<ColumnId> frozen;
  if (config_ == nullptr) return frozen;
  if (config_->Contains(table)) {
    const PartitionSpec& spec = config_->spec(table);
    for (ColumnId c : spec.attributes) frozen.insert(c);
    if (spec.method == PartitionMethod::kPref) {
      for (ColumnId c : spec.predicate->left_columns) frozen.insert(c);
    }
  }
  // Columns of `table` referenced by other tables' PREF predicates.
  for (const auto& [other, spec] : config_->specs()) {
    if (spec.method == PartitionMethod::kPref && spec.referenced_table == table) {
      for (ColumnId c : spec.predicate->right_columns) frozen.insert(c);
    }
  }
  return frozen;
}

Result<MutationStats> Mutator::Delete(PartitionedDatabase* pdb,
                                      const std::string& table, const Dnf& filter) {
  PREF_ASSIGN_OR_RAISE(PartitionedTable * pt, pdb->FindTable(table));
  if (pdb->TableShared(pt->id())) {
    return Status::Invalid(
        "table '", table,
        "' is shared with another live database version (online migration "
        "in flight); serialize mutations with migrations");
  }
  PREF_ASSIGN_OR_RAISE(BoundDnf bound, BindDnf(pt->def(), filter));
  MutationStats stats;
  for (int p = 0; p < pt->num_partitions(); ++p) {
    Partition& part = pt->partition(p);
    const size_t n = part.rows.num_rows();
    std::vector<bool> keep(n, true);
    for (size_t r = 0; r < n; ++r) {
      if (!Matches(bound, part.rows, r)) continue;
      keep[r] = false;
      stats.copies_affected++;
      // Count each logical tuple once: the dup=0 copy (or any copy for
      // non-PREF tables, where copies are unique per partition anyway).
      if (part.dup.empty() || !part.dup.Get(r)) stats.tuples_affected++;
    }
    for (int c = 0; c < part.rows.num_columns(); ++c) {
      part.rows.column(c).RemoveRows(keep);
    }
    if (!part.dup.empty()) {
      Bitmap dup, partner;
      for (size_t r = 0; r < n; ++r) {
        if (!keep[r]) continue;
        dup.PushBack(part.dup.Get(r));
        partner.PushBack(part.has_partner.Get(r));
      }
      part.dup = std::move(dup);
      part.has_partner = std::move(partner);
    }
  }
  // Replicated tables store each tuple once per node.
  if (pt->spec().method == PartitionMethod::kReplicated && pt->num_partitions() > 0) {
    stats.tuples_affected /= static_cast<size_t>(pt->num_partitions());
  }
  RebuildIndexes(pt);
  return stats;
}

Result<MutationStats> Mutator::Update(PartitionedDatabase* pdb,
                                      const std::string& table,
                                      const std::string& column, const Value& value,
                                      const Dnf& filter) {
  PREF_ASSIGN_OR_RAISE(PartitionedTable * pt, pdb->FindTable(table));
  if (pdb->TableShared(pt->id())) {
    return Status::Invalid(
        "table '", table,
        "' is shared with another live database version (online migration "
        "in flight); serialize mutations with migrations");
  }
  PREF_ASSIGN_OR_RAISE(ColumnId target, pt->def().FindColumn(column));
  PREF_ASSIGN_OR_RAISE(auto frozen, FrozenColumns(pdb->schema(), pt->id()));
  if (frozen.count(target)) {
    return Status::Invalid(
        "column '", column, "' of table '", table,
        "' participates in a partitioning predicate and cannot be updated (§2.3)");
  }
  PREF_ASSIGN_OR_RAISE(BoundDnf bound, BindDnf(pt->def(), filter));
  MutationStats stats;
  for (int p = 0; p < pt->num_partitions(); ++p) {
    Partition& part = pt->partition(p);
    for (size_t r = 0; r < part.rows.num_rows(); ++r) {
      if (!Matches(bound, part.rows, r)) continue;
      PREF_RETURN_NOT_OK(part.rows.column(target).SetValue(r, value));
      stats.copies_affected++;
      if (part.dup.empty() || !part.dup.Get(r)) stats.tuples_affected++;
    }
  }
  if (pt->spec().method == PartitionMethod::kReplicated && pt->num_partitions() > 0) {
    stats.tuples_affected /= static_cast<size_t>(pt->num_partitions());
  }
  return stats;
}

}  // namespace pref
