// Executable plans: the operator tree produced by the §2.2 rewriter and
// consumed by the executor. Every node carries the two rewrite properties
// of the paper — Part(o) (partitioning of the intermediate result) and
// Dup(o) (whether PREF duplicates may be present, tracked precisely as the
// set of *active dup column slots*).

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/query.h"
#include "storage/partition.h"

namespace pref {

enum class OpKind : uint8_t {
  kScan,
  kFilter,
  kJoin,
  kRepartition,
  kBroadcast,
  kDupElim,
  kValueDistinct,
  kPartialAgg,
  kGather,
  kFinalAgg,
  kProject,
  kSort,
};

const char* OpKindName(OpKind k);

struct OutputCol {
  std::string name;
  DataType type;
  /// Provenance: the base-table column this slot carries (invalid for
  /// computed columns). Used by the rewriter's co-location checks.
  TableId origin_table = kInvalidTableId;
  ColumnId origin_col = -1;
};

/// \brief Part(o): how an intermediate result is distributed.
///
/// `anchor` records the physical basis of the partitioning (the base-table
/// columns whose values determined placement), which the rewriter uses for
/// the case (2)/(3) co-location checks of §2.2.
struct PartProp {
  PartitionMethod method = PartitionMethod::kNone;
  /// Current output slots of the partitioning attributes (HASH) or of the
  /// PREF table's predicate columns (PREF).
  std::vector<int> slots;
  int num_partitions = 0;

  /// HASH: the base (table, columns) the hash values came from.
  TableId anchor_table = kInvalidTableId;
  std::vector<ColumnId> anchor_columns;

  /// PREF: the base PREF table and the identity of its seed.
  TableId pref_table = kInvalidTableId;
  const PartitionSpec* pref_spec = nullptr;
  TableId seed_table = kInvalidTableId;
  std::vector<ColumnId> seed_columns;
};

/// Compare-op payload bound to output slots.
struct BoundPredicate {
  int slot = -1;
  CompareOp op = CompareOp::kEq;
  Value value;
  Value value_hi;
};

struct BoundDnf {
  std::vector<std::vector<BoundPredicate>> disjuncts;
  bool empty() const { return disjuncts.empty(); }
};

struct BoundAgg {
  AggFunc func = AggFunc::kCountStar;
  int slot = -1;  // input slot (unused for COUNT(*))
  std::string output_name;
  DataType output_type = DataType::kInt64;
};

/// \brief One node of the executable plan.
struct PlanNode {
  OpKind kind;
  std::vector<std::unique_ptr<PlanNode>> children;
  std::vector<OutputCol> cols;

  // Properties (the paper's Part(o) / Dup(o)).
  PartProp part;
  /// Slots of dup columns that currently witness PREF duplication. Empty
  /// means Dup(o) = 0.
  std::vector<int> active_dup_slots;
  /// True if every node holds a full copy of this result.
  bool replicated = false;
  /// Equivalence class per output slot: two slots share a class iff equi
  /// joins upstream force their values equal on every row. The rewriter
  /// uses this for co-location checks (e.g. part hashed on p_partkey is
  /// co-located with a join key on l_partkey after p = l on partkey).
  std::vector<int> slot_class;
  /// Base tables whose rows still sit at their Definition-1 placements in
  /// this intermediate (every surviving copy in its original partition).
  /// Local joins preserve both sides' sets; exchanges clear them. A PREF
  /// table R can join the intermediate locally on its partitioning
  /// predicate iff the referenced table is in this set (§2.2 case 3
  /// generalized to chained intermediates).
  std::vector<TableId> faithful_tables;

  // --- kScan ---------------------------------------------------------
  TableId scan_table = kInvalidTableId;
  std::string scan_alias;
  BoundDnf scan_filter;  // bound to table ColumnIds via `slot`
  /// Filter on the PREF hasS bitmap (semi/anti rewrite, §2.2): require
  /// has_partner == *scan_has_partner.
  std::optional<bool> scan_has_partner;
  /// Attach the dup bitmap as a trailing int column.
  bool scan_attach_dup = false;
  /// Partition pruning (§7 outlook): when non-empty, scan only these
  /// partitions. Hash/range pruning yields one partition; PREF pruning via
  /// the referenced table's partition index can yield several.
  std::vector<int> scan_partitions;

  // --- kJoin ----------------------------------------------------------
  JoinType join_type = JoinType::kInner;
  std::vector<int> join_left_slots;
  std::vector<int> join_right_slots;

  // --- kFilter ----------------------------------------------------------
  BoundDnf filter;

  // --- kRepartition ------------------------------------------------------
  std::vector<int> hash_slots;

  // --- kPartialAgg / kFinalAgg ---------------------------------------
  std::vector<int> group_slots;  // for FinalAgg: slots in the partial layout
  std::vector<BoundAgg> aggs;

  // --- kProject ---------------------------------------------------------
  std::vector<int> project_slots;

  // --- kSort -------------------------------------------------------------
  /// (slot, descending) sort keys; applied at the coordinator.
  std::vector<std::pair<int, bool>> sort_keys;
  /// Row limit after sorting; -1 = unlimited.
  int64_t limit = -1;

  int FindCol(const std::string& name) const {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  std::string ToString(const Schema& schema, int indent = 0) const;
};

}  // namespace pref
