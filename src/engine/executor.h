// Parallel executor: runs a rewritten plan over a PartitionedDatabase,
// physically moving tuples between per-node memory arenas and accounting
// simulated network/CPU costs.
//
// Every data-parallel operator fans out on the bounded ThreadPool
// (DESIGN.md §7): scans split each node's partitions into fixed-size
// morsels with per-morsel selection-bitmap slices, aggregations group rows
// with per-morsel partial hash tables folded deterministically, per-node
// operators (join, filter, sort, ...) run the simulated nodes
// concurrently, and exchanges run as two-pass counting-sort scatters
// (parallel over sources, then over targets). Operators materialize
// through column-at-a-time selection-vector kernels (DESIGN.md §8) rather
// than row-at-a-time appends. Results — rows, their order, and ExecStats
// aggregates — are bit-identical for any thread count, including the
// PREF_THREADS=1 serial baseline.

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "engine/cost_model.h"
#include "engine/plan.h"
#include "engine/rewriter.h"
#include "storage/partition.h"

namespace pref {

class ThreadPool;

struct QueryResult {
  /// Final rows at the coordinator.
  RowBlock rows;
  std::vector<std::string> column_names;
  ExecStats stats;

  QueryResult() : rows(std::vector<DataType>{}) {}
};

/// Cooperative cancellation and deadline for one query. The executor polls
/// ShouldStop() at every operator boundary and returns Status::Cancelled
/// when it fires, so a cancel lands within one operator's work, not one
/// query's. Cancel() is thread-safe (one relaxed atomic store) and may be
/// called from any thread, including while the query runs on the pool. The
/// object must outlive the execution it controls.
class QueryControl {
 public:
  QueryControl() = default;
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Arms a deadline `seconds` from now (<= 0 disarms). Not thread-safe
  /// against concurrent ShouldStop — arm before execution starts.
  void ArmTimeout(double seconds) {
    timeout_seconds_ = seconds;
    started_.Restart();
  }

  /// True once cancelled or past the armed deadline.
  bool ShouldStop() const {
    if (cancelled()) return true;
    return timeout_seconds_ > 0 && started_.ElapsedSeconds() > timeout_seconds_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  double timeout_seconds_ = 0;  // 0 = no deadline
  Stopwatch started_;
};

/// Executes a rewritten plan. Operator fan-out runs on `pool`
/// (ThreadPool::Default() when null); a 1-lane pool executes everything on
/// the calling thread and produces bit-identical results. A non-null
/// `control` enables cooperative cancellation (checked per operator).
Result<QueryResult> ExecutePlan(const PlanNode& root, const PartitionedDatabase& pdb,
                                const CostModel& cost_model = {},
                                ThreadPool* pool = nullptr,
                                QueryControl* control = nullptr);

/// Rewrites (§2.2) and executes `query` over `pdb`.
Result<QueryResult> ExecuteQuery(const QuerySpec& query,
                                 const PartitionedDatabase& pdb,
                                 const QueryOptions& options = {},
                                 const CostModel& cost_model = {},
                                 ThreadPool* pool = nullptr,
                                 QueryControl* control = nullptr);

}  // namespace pref
