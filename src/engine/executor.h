// Parallel executor: runs a rewritten plan over a PartitionedDatabase,
// physically moving tuples between per-node memory arenas and accounting
// simulated network/CPU costs.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "engine/plan.h"
#include "engine/rewriter.h"
#include "storage/partition.h"

namespace pref {

struct QueryResult {
  /// Final rows at the coordinator.
  RowBlock rows;
  std::vector<std::string> column_names;
  ExecStats stats;

  QueryResult() : rows(std::vector<DataType>{}) {}
};

/// Executes a rewritten plan.
Result<QueryResult> ExecutePlan(const PlanNode& root, const PartitionedDatabase& pdb,
                                const CostModel& cost_model = {});

/// Rewrites (§2.2) and executes `query` over `pdb`.
Result<QueryResult> ExecuteQuery(const QuerySpec& query,
                                 const PartitionedDatabase& pdb,
                                 const QueryOptions& options = {},
                                 const CostModel& cost_model = {});

}  // namespace pref
