#include "engine/scheduler.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"
#include "common/task_context.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/metric_names.h"
#include "partition/deployment.h"

namespace pref {

QueryScheduler::QueryScheduler(const PartitionedDatabase& pdb,
                               ScheduleOptions options)
    : pdb_(&pdb) {
  Init(options);
}

QueryScheduler::QueryScheduler(ServingDatabase* serving,
                               ScheduleOptions options)
    : serving_(serving) {
  Init(options);
}

void QueryScheduler::Init(ScheduleOptions options) {
  pool_ = options.pool != nullptr ? options.pool : &ThreadPool::Default();
  max_in_flight_ = options.max_in_flight > 0 ? options.max_in_flight
                                             : pool_->num_threads();
  MetricsRegistry& registry = MetricsRegistry::Default();
  submitted_ = &registry.GetCounter(metric_names::kSchedulerSubmitted);
  completed_ctr_ = &registry.GetCounter(metric_names::kSchedulerCompleted);
  cancelled_ = &registry.GetCounter(metric_names::kSchedulerCancelled);
  in_flight_hwm_ = &registry.GetGauge(metric_names::kSchedulerInFlight);
  backlog_gauge_ = &registry.GetGauge(metric_names::kSchedulerBacklog);
  query_seconds_ = &registry.GetHistogram(metric_names::kSchedulerQuerySeconds);
  queue_wait_ = &registry.GetHistogram(metric_names::kSchedulerQueueWaitSeconds);
}

QueryScheduler::~QueryScheduler() {
  // Drain: every submitted query must finish before the entries (and the
  // QueryControls the executor polls) go away. Lend this thread to the
  // pool while waiting, same as Take.
  for (;;) {
    bool idle = false;
    {
      MutexLock lock(&mu_);
      idle = in_flight_ == 0 && backlog_.empty();
    }
    if (idle) return;
    if (pool_->TryRunOneTask()) continue;
    MutexLock lock(&mu_);
    if (in_flight_ == 0 && backlog_.empty()) return;
    cv_.Wait(&lock);
  }
}

void QueryScheduler::LaunchLocked() {
  while (in_flight_ < max_in_flight_ && !backlog_.empty()) {
    const uint64_t id = backlog_.front();
    backlog_.pop_front();
    Entry* entry = entries_.find(id)->second.get();
    entry->state = State::kRunning;
    // Admission wait ends here; restart the watch so RunQuery can read the
    // launch→execution queue wait off the same clock.
    entry->admission_wait_seconds = entry->wait_watch.ElapsedSeconds();
    entry->wait_watch.Restart();
    ++in_flight_;
#if PREF_METRICS
    in_flight_hwm_->SetMax(in_flight_);
    backlog_gauge_->Set(static_cast<int64_t>(backlog_.size()));
#endif
    // The tag scope makes Post capture this query's id, so the query task
    // — and every morsel it fans out — carries it through the pool.
    TaskTagScope tag(id);
    pool_->Post([this, id, entry] { RunQuery(id, entry); });
  }
}

void QueryScheduler::RunQuery(uint64_t id, Entry* entry) {
  TraceSpan span(metric_names::kSpanQuery, metric_names::kCategoryScheduler);
  span.AddArg("id", static_cast<int64_t>(id));
  const double queue_wait = entry->wait_watch.ElapsedSeconds();
  queue_wait_->Observe(entry->admission_wait_seconds + queue_wait);
  if (entry->options.timeout_seconds > 0) {
    entry->control.ArmTimeout(entry->options.timeout_seconds);
  }
  // Pin the database for this whole query. Against a ServingDatabase the
  // snapshot's shared ownership keeps the pinned version alive even if a
  // migration publishes newer ones while the query runs.
  std::shared_ptr<const PartitionedDatabase> pinned;
  const PartitionedDatabase* pdb = pdb_;
  uint64_t database_version = 0;
  if (serving_ != nullptr) {
    ServingDatabase::Snapshot snap = serving_->Acquire();
    pinned = std::move(snap.pdb);
    pdb = pinned.get();
    database_version = snap.version;
  }
  Stopwatch timer;
  Result<QueryResult> result =
      ExecuteQuery(entry->spec, *pdb, entry->options.query,
                   entry->options.cost_model, pool_, &entry->control);
  const double run_seconds = timer.ElapsedSeconds();
  query_seconds_->Observe(run_seconds);
  completed_ctr_->Add(1);
  if (!result.status().ok() && result.status().IsCancelled()) {
    cancelled_->Add(1);
  }
  QueryProfile profile;
  profile.query_id = id;
  profile.database_version = database_version;
  profile.query_name = entry->spec.name;
  profile.cost_model = entry->options.cost_model;
  profile.has_timings = true;
  profile.timings.admission_wait_seconds = entry->admission_wait_seconds;
  profile.timings.queue_wait_seconds = queue_wait;
  profile.timings.run_seconds = run_seconds;
  if (result.ok()) {
    profile.stats = result->stats;
    profile.timings.time_to_first_morsel_seconds =
        result->stats.first_morsel_seconds;
  }
  {
    MutexLock lock(&mu_);
    entry->profile = std::move(profile);
    entry->result = std::move(result);
    entry->state = State::kDone;
    completed_.push_back(id);
    --in_flight_;
    LaunchLocked();
    // Notify while still holding mu_: the moment in_flight_ hits zero the
    // destructor may observe idle (it takes mu_ to check) and tear the
    // CondVar down, so an unlocked notify here could touch a dead cv_.
    // Waiters reacquire mu_ anyway; the held-lock broadcast costs nothing.
    cv_.NotifyAll();
  }
}

uint64_t QueryScheduler::Submit(const QuerySpec& query, SubmitOptions options) {
  uint64_t id = 0;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
    entries_.emplace(id, std::make_unique<Entry>(query, std::move(options)));
    backlog_.push_back(id);
    LaunchLocked();
#if PREF_METRICS
    backlog_gauge_->Set(static_cast<int64_t>(backlog_.size()));
#endif
  }
  cv_.NotifyAll();
  submitted_->Add(1);
  return id;
}

Result<QueryResult> QueryScheduler::Take(uint64_t id, QueryProfile* profile) {
  for (;;) {
    {
      MutexLock lock(&mu_);
      auto it = entries_.find(id);
      if (it == entries_.end()) {
        return Status::KeyError("unknown query id ", id);
      }
      Entry* entry = it->second.get();
      if (entry->state == State::kTaken) {
        return Status::KeyError("query ", id, " already taken");
      }
      if (entry->state == State::kDone) {
        entry->state = State::kTaken;
        auto cit = std::find(completed_.begin(), completed_.end(), id);
        if (cit != completed_.end()) completed_.erase(cit);
        if (profile != nullptr) *profile = std::move(entry->profile);
        return std::move(entry->result);
      }
    }
    // Not finished: lend this thread to the pool instead of idling a lane
    // (on a 1-lane pool this is what executes the query). Park only when
    // there is nothing to help with; every completion and submission
    // notifies cv_, and the state was rechecked under mu_ just before the
    // wait, so the wakeup cannot be lost.
    if (pool_->TryRunOneTask()) continue;
    MutexLock lock(&mu_);
    Entry* entry = entries_.find(id)->second.get();
    if (entry->state == State::kDone || entry->state == State::kTaken) continue;
    cv_.Wait(&lock);
  }
}

uint64_t QueryScheduler::WaitAny() {
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (!completed_.empty()) {
        const uint64_t id = completed_.front();
        completed_.pop_front();
        return id;
      }
      if (in_flight_ == 0 && backlog_.empty()) return 0;  // nothing pending
    }
    if (pool_->TryRunOneTask()) continue;
    MutexLock lock(&mu_);
    if (!completed_.empty() || (in_flight_ == 0 && backlog_.empty())) continue;
    cv_.Wait(&lock);
  }
}

uint64_t QueryScheduler::PollCompleted() {
  MutexLock lock(&mu_);
  if (completed_.empty()) return 0;
  const uint64_t id = completed_.front();
  completed_.pop_front();
  return id;
}

void QueryScheduler::Cancel(uint64_t id) {
  bool notify = false;
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    Entry* entry = it->second.get();
    if (entry->state == State::kQueued) {
      // Never started: complete it as cancelled right here.
      auto bit = std::find(backlog_.begin(), backlog_.end(), id);
      if (bit != backlog_.end()) backlog_.erase(bit);
#if PREF_METRICS
      backlog_gauge_->Set(static_cast<int64_t>(backlog_.size()));
#endif
      entry->state = State::kDone;
      entry->result = Status::Cancelled("query cancelled before start");
      completed_.push_back(id);
      completed_ctr_->Add(1);
      cancelled_->Add(1);
      notify = true;
    } else if (entry->state == State::kRunning) {
      // The executor observes this at its next operator boundary.
      entry->control.Cancel();
    }
  }
  if (notify) cv_.NotifyAll();
}

int QueryScheduler::InFlight() const {
  MutexLock lock(&mu_);
  return in_flight_;
}

int QueryScheduler::Backlog() const {
  MutexLock lock(&mu_);
  return static_cast<int>(backlog_.size());
}

}  // namespace pref
