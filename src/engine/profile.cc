#include "engine/profile.h"

#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "common/json.h"

namespace pref {

namespace {

/// Fixed-precision seconds — identical doubles render identically, and the
/// simulated quantities are bit-identical at any pool width.
std::string Secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", s);
  return buf;
}

std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

void AppendFlows(std::string* out, const OperatorStats& op) {
  *out += "  [local=" + std::to_string(op.rows_local) +
          " remote=" + std::to_string(op.rows_shuffled) +
          " bytes=" + std::to_string(op.bytes_shuffled) + " flows:";
  for (const ExchangeFlow& f : op.flows) {
    *out += ' ';
    *out += std::to_string(f.source) + "->" + std::to_string(f.target) + ":" +
            std::to_string(f.rows) + "r";
    if (f.bytes > 0) *out += "/" + std::to_string(f.bytes) + "B";
  }
  *out += ']';
}

}  // namespace

QueryProfile QueryProfile::FromStats(std::string name, const ExecStats& stats,
                                     const CostModel& cost_model) {
  QueryProfile p;
  p.query_name = std::move(name);
  p.stats = stats;
  p.cost_model = cost_model;
  return p;
}

std::string QueryProfile::ExplainAnalyze(const ProfileRenderOptions& opts) const {
  std::string out = "EXPLAIN ANALYZE " +
                    (query_name.empty() ? std::string("(unnamed)") : query_name) +
                    "\n";
  out += "simulated=" + Secs(stats.SimulatedSeconds(cost_model)) +
         "s locality=" + Pct(stats.LocalityRatio()) +
         " local=" + std::to_string(stats.rows_local) +
         " remote=" + std::to_string(stats.rows_shuffled) +
         " shuffled_bytes=" + std::to_string(stats.bytes_shuffled) +
         " exchanges=" + std::to_string(stats.exchanges) +
         " rows_processed=" + std::to_string(stats.total_rows_processed) + "\n";
  if (opts.include_timings && has_timings) {
    out += "timings: admission=" + Secs(timings.admission_wait_seconds) +
           "s queue=" + Secs(timings.queue_wait_seconds) +
           "s first_morsel=" + Secs(timings.time_to_first_morsel_seconds) +
           "s run=" + Secs(timings.run_seconds) +
           "s wall=" + Secs(stats.wall_seconds) + "s\n";
  }

  // The breakdown is stored in pre-order, so emitting in index order with
  // parent-depth indentation reproduces the plan tree.
  std::vector<int> depth(stats.operators.size(), 0);
  for (size_t i = 0; i < stats.operators.size(); ++i) {
    const int parent = stats.operators[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < i) {
      depth[i] = depth[static_cast<size_t>(parent)] + 1;
    }
  }
  for (size_t i = 0; i < stats.operators.size(); ++i) {
    const OperatorStats& op = stats.operators[i];
    out.append(static_cast<size_t>(depth[i]) * 2, ' ');
    out += op.op;
    if (!op.detail.empty()) out += ' ' + op.detail;
    out += "  rows_in=" + std::to_string(op.rows_in) +
           " rows_out=" + std::to_string(op.rows_out) +
           " sim=" + Secs(op.SimulatedSeconds(cost_model)) + "s";
    if (op.exchanges > 0) AppendFlows(&out, op);
    out += '\n';
  }
  return out;
}

void QueryProfile::WriteJson(std::ostream& os,
                             const ProfileRenderOptions& opts) const {
  JsonWriter w(&os);
  w.BeginObject();
  w.Key("query");
  w.BeginObject();
  w.Key("id");
  // The scheduler-assigned id is run context, like the timings: the
  // deterministic render pins it so profiles of the same query compare
  // byte-equal regardless of submission order.
  w.UInt(opts.include_timings ? query_id : 0);
  w.Key("database_version");
  // Same rule: which serving version a query pinned mid-migration is run
  // context, not a property of the query.
  w.UInt(opts.include_timings ? database_version : 0);
  w.Key("name");
  w.String(query_name);
  w.EndObject();

  w.Key("summary");
  w.BeginObject();
  w.Key("simulated_seconds");
  w.Double(stats.SimulatedSeconds(cost_model));
  w.Key("locality_ratio");
  w.Double(stats.LocalityRatio());
  w.Key("rows_local");
  w.UInt(stats.rows_local);
  w.Key("rows_shuffled");
  w.UInt(stats.rows_shuffled);
  w.Key("bytes_shuffled");
  w.UInt(stats.bytes_shuffled);
  w.Key("exchanges");
  w.Int(stats.exchanges);
  w.Key("total_rows_processed");
  w.UInt(stats.total_rows_processed);
  w.Key("scan_rows");
  w.UInt(stats.scan_rows);
  w.Key("agg_groups");
  w.UInt(stats.agg_groups);
  w.Key("node_rows");
  w.BeginArray();
  for (size_t r : stats.node_rows) w.UInt(r);
  w.EndArray();
  w.EndObject();

  w.Key("cost_model");
  w.BeginObject();
  w.Key("rows_per_second_per_node");
  w.Double(cost_model.rows_per_second_per_node);
  w.Key("network_bytes_per_second");
  w.Double(cost_model.network_bytes_per_second);
  w.Key("exchange_latency_seconds");
  w.Double(cost_model.exchange_latency_seconds);
  w.EndObject();

  w.Key("operators");
  w.BeginArray();
  for (const OperatorStats& op : stats.operators) {
    w.BeginObject();
    w.Key("index");
    w.Int(op.index);
    w.Key("parent");
    w.Int(op.parent);
    w.Key("op");
    w.String(op.op);
    w.Key("detail");
    w.String(op.detail);
    w.Key("rows_in");
    w.UInt(op.rows_in);
    w.Key("rows_out");
    w.UInt(op.rows_out);
    w.Key("rows_processed");
    w.UInt(op.rows_processed);
    w.Key("rows_local");
    w.UInt(op.rows_local);
    w.Key("rows_shuffled");
    w.UInt(op.rows_shuffled);
    w.Key("bytes_shuffled");
    w.UInt(op.bytes_shuffled);
    w.Key("exchanges");
    w.Int(op.exchanges);
    w.Key("simulated_seconds");
    w.Double(op.SimulatedSeconds(cost_model));
    w.Key("node_rows");
    w.BeginArray();
    for (size_t r : op.node_rows) w.UInt(r);
    w.EndArray();
    w.Key("flows");
    w.BeginArray();
    for (const ExchangeFlow& f : op.flows) {
      w.BeginObject();
      w.Key("source");
      w.Int(f.source);
      w.Key("target");
      w.Int(f.target);
      w.Key("rows");
      w.UInt(f.rows);
      w.Key("bytes");
      w.UInt(f.bytes);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  if (opts.include_timings && has_timings) {
    w.Key("timings");
    w.BeginObject();
    w.Key("admission_wait_seconds");
    w.Double(timings.admission_wait_seconds);
    w.Key("queue_wait_seconds");
    w.Double(timings.queue_wait_seconds);
    w.Key("time_to_first_morsel_seconds");
    w.Double(timings.time_to_first_morsel_seconds);
    w.Key("run_seconds");
    w.Double(timings.run_seconds);
    w.Key("wall_seconds");
    w.Double(stats.wall_seconds);
    w.EndObject();
  }
  w.EndObject();
  os << '\n';
}

std::string QueryProfile::ToJson(const ProfileRenderOptions& opts) const {
  std::ostringstream os;
  WriteJson(os, opts);
  return os.str();
}

}  // namespace pref
