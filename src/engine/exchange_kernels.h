// Counting-sort kernels for the exchange operators (Repartition/Gather).
//
// A ScatterPlan groups one source block's rows by target node with the
// classic two-pass prefix-sum partitioning pattern: count rows per target,
// exclusive-scan the counts into offsets, then scatter each row id into its
// target's slice. Rows of target t occupy ordered[offsets[t], offsets[t+1])
// in ascending source-row order — exactly the order a serial row loop would
// append them — so a consumer that gathers the slices source-by-source
// reproduces the serial exchange output bit for bit (DESIGN.md §8).
//
// Counts and offsets are uint32_t: a block never holds 4G rows (row ids are
// uint32_t engine-wide), and the narrower lanes double the throughput of the
// vectorized scan in common/simd.h (DESIGN.md §13).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.h"

namespace pref {

/// Exclusive prefix sum: returns [0, v[0], v[0]+v[1], ...] with one extra
/// trailing element holding the total. Dispatches to the SIMD scan.
inline std::vector<uint32_t> ExclusiveSum(std::span<const uint32_t> v) {
  std::vector<uint32_t> out(v.size() + 1);
  simd::ExclusiveSum(v.data(), v.size(), out.data());
  return out;
}

/// One source block's rows grouped by target: rows destined for target t
/// sit in ordered[offsets[t], offsets[t+1]), ascending. Default-constructed
/// plans (empty offsets) mean "no rows" and are skipped by consumers.
struct ScatterPlan {
  std::vector<uint32_t> ordered;
  std::vector<uint32_t> offsets;  // size num_targets + 1; exclusive scan

  bool empty() const { return offsets.empty(); }
  size_t CountFor(int target) const {
    if (offsets.empty()) return 0;
    const size_t t = static_cast<size_t>(target);
    return offsets[t + 1] - offsets[t];
  }
  std::span<const uint32_t> SliceFor(int target) const {
    const size_t t = static_cast<size_t>(target);
    return std::span<const uint32_t>(ordered).subspan(offsets[t], CountFor(target));
  }
};

/// Reusable per-caller scratch for BuildScatterPlanInto. The counts and
/// cursor vectors otherwise get re-allocated for every morsel; exchange
/// operators keep one of these per source node and amortize the
/// allocations across all blocks of a query.
struct ScatterScratch {
  std::vector<uint32_t> counts;
  std::vector<uint32_t> cursor;
};

/// Builds the plan for one source block into `plan`, reusing `scratch` and
/// the plan's own vectors. `targets[r]` is row r's target in
/// [0, num_targets). Two passes: count, exclusive-scan, scatter.
inline void BuildScatterPlanInto(std::span<const uint32_t> targets,
                                 int num_targets, ScatterScratch& scratch,
                                 ScatterPlan& plan) {
  const size_t nt = static_cast<size_t>(num_targets);
  scratch.counts.assign(nt, 0);
  for (uint32_t t : targets) scratch.counts[t]++;
  plan.offsets.resize(nt + 1);
  simd::ExclusiveSum(scratch.counts.data(), nt, plan.offsets.data());
  plan.ordered.resize(targets.size());
  scratch.cursor.assign(plan.offsets.begin(), plan.offsets.end() - 1);
  for (size_t r = 0; r < targets.size(); ++r) {
    plan.ordered[scratch.cursor[targets[r]]++] = static_cast<uint32_t>(r);
  }
}

/// Convenience wrapper with fresh scratch (tests and one-shot callers).
inline ScatterPlan BuildScatterPlan(std::span<const uint32_t> targets,
                                    int num_targets) {
  ScatterScratch scratch;
  ScatterPlan plan;
  BuildScatterPlanInto(targets, num_targets, scratch, plan);
  return plan;
}

}  // namespace pref
