// Counting-sort kernels for the exchange operators (Repartition/Gather).
//
// A ScatterPlan groups one source block's rows by target node with the
// classic two-pass prefix-sum partitioning pattern: count rows per target,
// exclusive-scan the counts into offsets, then scatter each row id into its
// target's slice. Rows of target t occupy ordered[offsets[t], offsets[t+1])
// in ascending source-row order — exactly the order a serial row loop would
// append them — so a consumer that gathers the slices source-by-source
// reproduces the serial exchange output bit for bit (DESIGN.md §8).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pref {

/// Exclusive prefix sum: returns [0, v[0], v[0]+v[1], ...] with one extra
/// trailing element holding the total.
inline std::vector<size_t> ExclusiveSum(std::span<const size_t> v) {
  std::vector<size_t> out(v.size() + 1, 0);
  for (size_t i = 0; i < v.size(); ++i) out[i + 1] = out[i] + v[i];
  return out;
}

/// One source block's rows grouped by target: rows destined for target t
/// sit in ordered[offsets[t], offsets[t+1]), ascending. Default-constructed
/// plans (empty offsets) mean "no rows" and are skipped by consumers.
struct ScatterPlan {
  std::vector<uint32_t> ordered;
  std::vector<size_t> offsets;  // size num_targets + 1; exclusive scan

  bool empty() const { return offsets.empty(); }
  size_t CountFor(int target) const {
    if (offsets.empty()) return 0;
    const size_t t = static_cast<size_t>(target);
    return offsets[t + 1] - offsets[t];
  }
  std::span<const uint32_t> SliceFor(int target) const {
    const size_t t = static_cast<size_t>(target);
    return std::span<const uint32_t>(ordered).subspan(offsets[t], CountFor(target));
  }
};

/// Builds the plan for one source block. `targets[r]` is row r's target in
/// [0, num_targets). Two passes: count, exclusive-scan, scatter.
inline ScatterPlan BuildScatterPlan(std::span<const uint32_t> targets,
                                    int num_targets) {
  ScatterPlan plan;
  std::vector<size_t> counts(static_cast<size_t>(num_targets), 0);
  for (uint32_t t : targets) counts[t]++;
  plan.offsets = ExclusiveSum(counts);
  plan.ordered.resize(targets.size());
  std::vector<size_t> cursor(plan.offsets.begin(), plan.offsets.end() - 1);
  for (size_t r = 0; r < targets.size(); ++r) {
    plan.ordered[cursor[targets[r]]++] = static_cast<uint32_t>(r);
  }
  return plan;
}

}  // namespace pref
