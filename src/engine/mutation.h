// Updates and deletes over partitioned tables (§2.3, last paragraph):
// "updates and deletes over a PREF partitioned table are applied to all
// partitions. However, we do not allow that updates modify those attributes
// used in a partitioning predicate of a PREF scheme (neither in the
// referenced nor in the referencing table)."

#pragma once

#include <set>
#include <string>

#include "engine/query.h"
#include "partition/config.h"
#include "storage/partition.h"

namespace pref {

struct MutationStats {
  /// Logical tuples affected (each counted once).
  size_t tuples_affected = 0;
  /// Physical copies touched across partitions (>= tuples for PREF).
  size_t copies_affected = 0;
};

/// \brief Applies §2.3-style mutations to a PartitionedDatabase.
///
/// The `config` is consulted to reject updates that would touch any column
/// participating in a partitioning predicate or hash key (which would
/// silently break Definition 1). Deletes are unrestricted — removing every
/// copy of a tuple preserves the invariants, though downstream PREF tables
/// may be left with orphan placements (the same holds in the paper's
/// system; re-partitioning restores minimality).
///
/// Mutations refuse tables whose storage is shared with another live
/// database version (PartitionedDatabase::TableShared — the state an
/// online migration creates): writing through one version would be
/// visible mid-query in the other. Serialize mutations with migrations;
/// once the migration finishes and old versions drain, sharing ends and
/// mutations apply again.
class Mutator {
 public:
  explicit Mutator(const PartitioningConfig* config) : config_(config) {}

  /// Deletes every copy of the tuples matching `filter` (bound by name to
  /// columns of `table`) from all partitions.
  Result<MutationStats> Delete(PartitionedDatabase* pdb, const std::string& table,
                               const Dnf& filter);

  /// Sets `column = value` on every copy of the tuples matching `filter`.
  /// Fails with Invalid if `column` is a partitioning attribute of the
  /// table or appears in any PREF predicate referencing it.
  Result<MutationStats> Update(PartitionedDatabase* pdb, const std::string& table,
                               const std::string& column, const Value& value,
                               const Dnf& filter);

 private:
  /// Columns of `table` that no update may modify.
  Result<std::set<ColumnId>> FrozenColumns(const Schema& schema, TableId table) const;

  const PartitioningConfig* config_;
};

}  // namespace pref
