// Workload monitor: sliding-window aggregation of completed query profiles
// for drift detection (DESIGN.md §11).
//
// The monitor watches the served workload the same way wd_design reads a
// declared one: per-table scan frequencies, join-pair access frequencies,
// and per-partition access skew. Windows are tumbling and advance on query
// *completion counts*, never wall clock, so a monitored run is as
// deterministic as the queries feeding it (the determinism linter's
// wall-clock rule enforces this for the implementation).
//
// Drift detection: the first completed window freezes as the *reference*;
// every later window's normalized join-frequency vector is compared to the
// reference's by L1 distance (range [0, 2] — 0 means the same join mix,
// 2 means disjoint). When the score rises above MonitorOptions::
// drift_threshold the callback fires once per upward crossing (it re-arms
// only after a window scores back at or below the threshold).
//
// WindowQueryGraphs() replays the last completed window as the
// std::vector<QueryGraph> wd_design consumes, which is what a future
// live-repartitioning loop would hand to the advisor.
//
// Thread safety: none — feed completions from one thread. Both serving
// drivers (bench_serve, tests) consume completions single-threaded.

#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "design/query_graph.h"
#include "engine/profile.h"
#include "engine/query.h"

namespace pref {

struct MonitorOptions {
  /// Query completions per tumbling window.
  size_t window_size = 32;
  /// Drift score above which the callback fires (L1 over normalized
  /// join-frequency vectors; range [0, 2]).
  double drift_threshold = 0.5;
};

class WorkloadMonitor {
 public:
  /// `score` is the window's drift vs. the reference; `window` is the
  /// 1-based index of the completed window that crossed.
  using DriftCallback = std::function<void(double score, size_t window)>;

  explicit WorkloadMonitor(MonitorOptions options = {});

  void SetDriftCallback(DriftCallback cb) { callback_ = std::move(cb); }

  /// Folds one completed query into the current window. `spec` supplies
  /// the join structure (profiles alone don't carry column pairs); joins
  /// whose sides can't be resolved to base tables are skipped.
  void OnQueryComplete(const QueryProfile& profile, const QuerySpec& spec,
                       const Schema& schema);

  /// Drops the frozen drift reference and re-arms the callback: the next
  /// completed window freezes as the *new* reference. Call after a
  /// completed migration — the served mix the migration was designed for
  /// becomes the new normal, so the recovered workload must not re-trigger
  /// the callback (and a later shift away from it must).
  void Rebase();

  size_t completions() const { return completions_; }
  size_t windows_completed() const { return windows_completed_; }
  size_t drift_crossings() const { return drift_crossings_; }
  /// Times Rebase() was called (exported in the JSON drift section).
  size_t rebases() const { return rebases_; }
  bool has_reference() const { return has_reference_; }
  /// Latest completed window's drift vs. the reference (0 before the
  /// second window completes).
  double drift_score() const { return last_drift_; }

  /// Aggregates over the last *completed* window (over the partial current
  /// window before any window completed).
  std::map<std::string, size_t> ScanFrequencies() const;
  /// Keys are canonical "left.c1,c2=right.c1,c2" with sides ordered
  /// lexicographically, so the same join always lands on the same key.
  std::map<std::string, size_t> JoinFrequencies() const;
  /// Exchange-input rows charged per simulated node over the window.
  std::vector<size_t> PartitionRows() const;
  /// max/mean of PartitionRows(); 1.0 = perfectly even (and when empty).
  double PartitionSkew() const;

  /// The last completed window replayed as wd_design input: one QueryGraph
  /// per completed query (queries with no resolvable joins yield graphs
  /// with nodes only).
  std::vector<QueryGraph> WindowQueryGraphs(const Schema& schema) const;

  void WriteJson(std::ostream& os) const;

 private:
  struct JoinRecord {
    std::string left_table;
    std::vector<std::string> left_columns;
    std::string right_table;
    std::vector<std::string> right_columns;
  };
  /// One completed query's footprint, with names resolved to base tables.
  struct Record {
    std::string name;
    std::vector<std::string> tables;  // base table names, spec order
    std::vector<JoinRecord> joins;
  };
  struct Window {
    std::vector<Record> records;
    std::map<std::string, size_t> scan_freq;
    std::map<std::string, size_t> join_freq;
    std::vector<size_t> partition_rows;
  };

  static std::string JoinKey(const JoinRecord& j);
  static double PartitionSkewOf(const Window& win);

  void FinalizeWindow();
  const Window& ViewWindow() const {
    return windows_completed_ > 0 ? last_ : current_;
  }

  MonitorOptions options_;
  DriftCallback callback_;

  Window current_;
  Window last_;  // most recently completed
  std::map<std::string, size_t> reference_join_freq_;
  bool has_reference_ = false;
  bool above_threshold_ = false;
  double last_drift_ = 0;
  size_t completions_ = 0;
  size_t windows_completed_ = 0;
  size_t drift_crossings_ = 0;
  size_t rebases_ = 0;
};

}  // namespace pref
