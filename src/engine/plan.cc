#include "engine/plan.h"

#include <sstream>

namespace pref {

const char* OpKindName(OpKind k) {
  switch (k) {
    case OpKind::kScan:
      return "Scan";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kRepartition:
      return "Repartition";
    case OpKind::kBroadcast:
      return "Broadcast";
    case OpKind::kDupElim:
      return "DupElim";
    case OpKind::kValueDistinct:
      return "ValueDistinct";
    case OpKind::kPartialAgg:
      return "PartialAgg";
    case OpKind::kGather:
      return "Gather";
    case OpKind::kFinalAgg:
      return "FinalAgg";
    case OpKind::kProject:
      return "Project";
    case OpKind::kSort:
      return "Sort";
  }
  return "Unknown";
}

std::string PlanNode::ToString(const Schema& schema, int indent) const {
  std::ostringstream ss;
  ss << std::string(static_cast<size_t>(indent) * 2, ' ') << OpKindName(kind);
  if (kind == OpKind::kScan) {
    ss << " " << schema.table(scan_table).name;
    if (scan_has_partner.has_value()) {
      ss << (scan_has_partner.value() ? " [hasS=1]" : " [hasS=0]");
    }
    if (!scan_partitions.empty()) {
      ss << " [pruned->";
      for (size_t i = 0; i < scan_partitions.size(); ++i) {
        if (i) ss << ",";
        ss << scan_partitions[i];
      }
      ss << "]";
    }
    if (!scan_filter.empty()) ss << " [filter]";
  }
  if (kind == OpKind::kSort && limit >= 0) ss << " [limit=" << limit << "]";
  // Partitioning scheme with co-location provenance: the base (table,
  // columns) the placement derives from, so EXPLAIN shows why an exchange
  // was (or wasn't) needed without running the plan.
  ss << " {" << PartitionMethodName(part.method);
  auto cols = [&](TableId t, const std::vector<ColumnId>& ids) {
    const TableDef& def = schema.table(t);
    std::string out;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i) out += ',';
      out += def.column(ids[i]).name;
    }
    return out;
  };
  if (part.method == PartitionMethod::kHash &&
      part.anchor_table != kInvalidTableId) {
    ss << "(" << schema.table(part.anchor_table).name << "."
       << cols(part.anchor_table, part.anchor_columns) << ")";
  } else if (part.method == PartitionMethod::kPref &&
             part.pref_table != kInvalidTableId) {
    ss << "(" << schema.table(part.pref_table).name;
    if (part.pref_spec != nullptr &&
        part.pref_spec->referenced_table != kInvalidTableId) {
      ss << " ref=" << schema.table(part.pref_spec->referenced_table).name;
    }
    if (part.seed_table != kInvalidTableId) {
      ss << " seed=" << schema.table(part.seed_table).name << "("
         << cols(part.seed_table, part.seed_columns) << ")";
    }
    ss << ")";
  }
  if (part.num_partitions > 0) ss << " x" << part.num_partitions;
  if (!active_dup_slots.empty()) ss << ", dup";
  if (replicated) ss << ", repl";
  ss << "}\n";
  for (const auto& child : children) {
    ss << child->ToString(schema, indent + 1);
  }
  return ss.str();
}

}  // namespace pref
