// Flat open-addressing hash table for the executor's hash joins.
//
// One contiguous vector of (hash, row) entries with power-of-two capacity
// and linear probing, replacing std::unordered_multimap<uint64_t, size_t>
// (one heap node + pointer chase per build row). Duplicate hashes are
// supported: every (hash, row) pair is inserted at the first free slot at
// or after its home slot, so a probe that scans forward from the home slot
// until the first empty slot visits same-hash entries in insertion order —
// ascending build-row order, which is also the match-emission order the
// std::unordered_multimap path produced (equal keys keep insertion order).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pref {

class JoinHashTable {
 public:
  /// Builds the table over one hash per build row; row ids are dense
  /// [0, hashes.size()). Load factor is at most 1/2.
  explicit JoinHashTable(std::span<const uint64_t> hashes) {
    size_t cap = 16;
    while (cap < hashes.size() * 2) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, Entry{0, kEmpty});
    for (size_t i = 0; i < hashes.size(); ++i) {
      size_t s = hashes[i] & mask_;
      while (slots_[s].row != kEmpty) s = (s + 1) & mask_;
      slots_[s] = Entry{hashes[i], static_cast<uint32_t>(i)};
    }
  }

  /// Invokes fn(row) for every build row whose hash equals `h`, in
  /// ascending build-row order. Callers still confirm key equality — equal
  /// hashes may be colliding distinct keys.
  template <typename Fn>
  void ForEachMatch(uint64_t h, Fn&& fn) const {
    for (size_t s = h & mask_; slots_[s].row != kEmpty; s = (s + 1) & mask_) {
      if (slots_[s].hash == h) fn(slots_[s].row);
    }
  }

  size_t capacity() const { return slots_.size(); }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  struct Entry {
    uint64_t hash;
    uint32_t row;
  };

  std::vector<Entry> slots_;
  size_t mask_ = 0;
};

}  // namespace pref
