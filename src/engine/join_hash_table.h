// Batch-chain hash table for the executor's hash joins.
//
// Two layers, both contiguous (DESIGN.md §13):
//   * slots_ — power-of-two open-addressing directory of (hash, chain id)
//     with linear probing, one entry per *distinct key* (keyed build) or
//     per *distinct hash* (hash-only build), replacing the old one-entry-
//     per-row layout.
//   * chain_rows_ / chain_offsets_ — every chain's build-row ids packed
//     into one contiguous span, laid out by counting sort (count per
//     chain → SIMD exclusive prefix sum → scatter). Chain c's rows sit in
//     chain_rows_[chain_offsets_[c], chain_offsets_[c+1]) in ascending
//     build-row order.
//
// Duplicate-heavy probes therefore walk one cache-resident row block per
// key instead of re-probing the directory once per duplicate, and key
// equality is confirmed once per chain, not once per row — which is what
// makes string join keys first-class: the expensive string compare runs
// per distinct key. Ascending row order within a chain is a contract: the
// executor reverses each probe row's matches to reproduce the historical
// std::unordered_multimap emission order (newest build row first), keeping
// join output bit-identical across the rewrite.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.h"
#include "storage/table.h"

namespace pref {

class JoinHashTable {
 public:
  /// Hash-only build: rows that share a hash value share a chain, even if
  /// their keys differ (callers confirm equality per row). Row ids are
  /// dense [0, hashes.size()).
  explicit JoinHashTable(std::span<const uint64_t> hashes) {
    Build(hashes, [](size_t, size_t) { return true; });
  }

  /// Keyed build: rows join a chain only if their key columns compare
  /// equal to the chain's first row, so colliding distinct keys get
  /// distinct chains and a probe confirms equality once per chain.
  JoinHashTable(std::span<const uint64_t> hashes, const RowBlock& build,
                const std::vector<ColumnId>& key_slots) {
    Build(hashes, [&](size_t a, size_t b) {
      return build.RowsEqual(key_slots, a, build, key_slots, b);
    });
  }

  /// Invokes fn(rows) once per chain whose hash equals `h`, where `rows`
  /// is a std::span<const uint32_t> of build-row ids in ascending order.
  /// A keyed table calls fn at most once per distinct key; callers still
  /// confirm key equality against rows.front() — equal hashes may be
  /// colliding distinct keys.
  template <typename Fn>
  void ForEachChain(uint64_t h, Fn&& fn) const {
    for (size_t s = h & mask_; slots_[s].chain != kEmpty; s = (s + 1) & mask_) {
      if (slots_[s].hash == h) fn(ChainRows(slots_[s].chain));
    }
  }

  /// Invokes fn(row) for every build row whose hash equals `h`, in
  /// ascending build-row order — the row-at-a-time view over the chains.
  template <typename Fn>
  void ForEachMatch(uint64_t h, Fn&& fn) const {
    ForEachChain(h, [&](std::span<const uint32_t> rows) {
      for (uint32_t r : rows) fn(r);
    });
  }

  std::span<const uint32_t> ChainRows(uint32_t chain) const {
    const size_t begin = chain_offsets_[chain];
    return std::span<const uint32_t>(chain_rows_)
        .subspan(begin, chain_offsets_[chain + 1] - begin);
  }

  size_t capacity() const { return slots_.size(); }
  size_t num_chains() const { return chain_offsets_.size() - 1; }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  struct Slot {
    uint64_t hash;
    uint32_t chain;
  };

  /// Shared build: assign every row a chain (probing the directory, with
  /// `equal(row, chain_first_row)` deciding chain membership on hash
  /// ties), then counting-sort the row ids into contiguous chains. Load
  /// factor is at most 1/2 (chains ≤ rows).
  template <typename EqualFn>
  void Build(std::span<const uint64_t> hashes, EqualFn&& equal) {
    size_t cap = 16;
    while (cap < hashes.size() * 2) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, Slot{0, kEmpty});
    std::vector<uint32_t> chain_of(hashes.size());
    std::vector<uint32_t> chain_first;  // first (lowest) row of each chain
    std::vector<uint32_t> counts;
    for (size_t i = 0; i < hashes.size(); ++i) {
      uint32_t chain = kEmpty;
      size_t s = hashes[i] & mask_;
      for (; slots_[s].chain != kEmpty; s = (s + 1) & mask_) {
        if (slots_[s].hash == hashes[i] &&
            equal(i, chain_first[slots_[s].chain])) {
          chain = slots_[s].chain;
          break;
        }
      }
      if (chain == kEmpty) {
        chain = static_cast<uint32_t>(counts.size());
        slots_[s] = Slot{hashes[i], chain};
        chain_first.push_back(static_cast<uint32_t>(i));
        counts.push_back(0);
      }
      counts[chain]++;
      chain_of[i] = chain;
    }
    chain_offsets_.resize(counts.size() + 1);
    simd::ExclusiveSum(counts.data(), counts.size(), chain_offsets_.data());
    chain_rows_.resize(hashes.size());
    // Scatter in ascending row order: cursor reuses `counts` as the
    // per-chain write position seeded from the offsets.
    std::copy(chain_offsets_.begin(), chain_offsets_.end() - 1, counts.begin());
    for (size_t i = 0; i < hashes.size(); ++i) {
      chain_rows_[counts[chain_of[i]]++] = static_cast<uint32_t>(i);
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> chain_offsets_;  // num_chains + 1; exclusive scan
  std::vector<uint32_t> chain_rows_;     // all chains' rows, back to back
  size_t mask_ = 0;
};

}  // namespace pref
