#include "engine/query.h"

namespace pref {

namespace {
std::string EffectiveAlias(const TableRef& ref) {
  return ref.alias.empty() ? ref.table : ref.alias;
}
}  // namespace

QueryBuilder& QueryBuilder::From(const std::string& table, const std::string& alias) {
  if (!status_.ok()) return *this;
  auto id = schema_->FindTable(table);
  if (!id.ok()) {
    status_ = id.status();
    return *this;
  }
  spec_.tables.push_back({table, alias});
  spec_.table_filters.emplace_back();
  return *this;
}

QueryBuilder& QueryBuilder::Where(const std::string& alias_or_table,
                                  SimplePredicate pred) {
  Dnf d;
  d.disjuncts.push_back({std::move(pred)});
  return WhereDnf(alias_or_table, std::move(d));
}

QueryBuilder& QueryBuilder::WhereDnf(const std::string& alias_or_table, Dnf dnf) {
  if (!status_.ok()) return *this;
  for (size_t i = 0; i < spec_.tables.size(); ++i) {
    if (EffectiveAlias(spec_.tables[i]) == alias_or_table) {
      Dnf& existing = spec_.table_filters[i];
      if (existing.empty()) {
        existing = std::move(dnf);
      } else {
        // Conjoin two DNFs: distribute (small in practice).
        Dnf combined;
        for (const auto& a : existing.disjuncts) {
          for (const auto& b : dnf.disjuncts) {
            auto conj = a;
            conj.insert(conj.end(), b.begin(), b.end());
            combined.disjuncts.push_back(std::move(conj));
          }
        }
        existing = std::move(combined);
      }
      return *this;
    }
  }
  status_ = Status::NotFound("Where: table/alias '", alias_or_table,
                             "' not in FROM list");
  return *this;
}

QueryBuilder& QueryBuilder::Join(const std::string& table, const std::string& left_col,
                                 const std::string& right_col, JoinType type,
                                 const std::string& alias) {
  return JoinMulti(table, {left_col}, {right_col}, type, alias);
}

QueryBuilder& QueryBuilder::JoinMulti(const std::string& table,
                                      std::vector<std::string> left_cols,
                                      std::vector<std::string> right_cols,
                                      JoinType type, const std::string& alias) {
  if (!status_.ok()) return *this;
  auto id = schema_->FindTable(table);
  if (!id.ok()) {
    status_ = id.status();
    return *this;
  }
  if (left_cols.empty() || left_cols.size() != right_cols.size()) {
    status_ = Status::Invalid("join column lists must be non-empty equal-sized");
    return *this;
  }
  spec_.tables.push_back({table, alias});
  spec_.table_filters.emplace_back();
  JoinStep step;
  step.table_index = static_cast<int>(spec_.tables.size()) - 1;
  step.type = type;
  step.left_columns = std::move(left_cols);
  step.right_columns = std::move(right_cols);
  spec_.joins.push_back(std::move(step));
  return *this;
}

QueryBuilder& QueryBuilder::ResidualFilter(Dnf dnf) {
  spec_.residual_filter = std::move(dnf);
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(std::vector<std::string> columns) {
  spec_.group_by = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::Agg(AggFunc func, const std::string& column,
                                const std::string& output_name) {
  spec_.aggregates.push_back({func, column, output_name});
  return *this;
}

QueryBuilder& QueryBuilder::Project(std::vector<std::string> columns) {
  spec_.projection = std::move(columns);
  return *this;
}

QueryBuilder& QueryBuilder::Having(Dnf dnf) {
  spec_.having = std::move(dnf);
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(const std::string& column, bool descending) {
  spec_.order_by.emplace_back(column, descending);
  return *this;
}

QueryBuilder& QueryBuilder::Limit(int64_t n) {
  spec_.limit = n;
  return *this;
}

Result<QuerySpec> QueryBuilder::Build() {
  if (!status_.ok()) return status_;
  if (spec_.tables.empty()) return Status::Invalid("query has no tables");
  return spec_;
}

}  // namespace pref
