// Query specifications: the SPJA query shape the engine executes (§2.2).
//
// A QuerySpec is a left-deep join tree over base tables with per-table
// filters, an optional post-join residual filter, and an optional
// aggregation. The engine rewrites it against a PartitionedDatabase into an
// executable plan (engine/rewriter.h).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"

namespace pref {

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe, kBetween };

/// \brief One simple comparison `column op value` (or BETWEEN lo AND hi).
struct SimplePredicate {
  std::string column;  // qualified "alias.column" or bare column name
  CompareOp op = CompareOp::kEq;
  Value value;
  Value value_hi;  // BETWEEN upper bound
};

/// \brief A filter in disjunctive normal form: OR over AND-conjunctions.
/// An empty DNF means "accept everything".
struct Dnf {
  std::vector<std::vector<SimplePredicate>> disjuncts;

  bool empty() const { return disjuncts.empty(); }
  static Dnf And(std::vector<SimplePredicate> preds) {
    Dnf d;
    d.disjuncts.push_back(std::move(preds));
    return d;
  }
};

enum class JoinType : uint8_t { kInner, kSemi, kAnti };

enum class AggFunc : uint8_t { kSum, kCount, kCountStar, kMin, kMax, kAvg };

struct AggSpec {
  AggFunc func = AggFunc::kCountStar;
  std::string column;  // unused for COUNT(*)
  std::string output_name;
};

/// \brief A base-table occurrence in the FROM clause. Aliases make
/// self-joins expressible; output columns are named `alias_column` when an
/// alias differs from the table name, else just `column`.
struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name
};

/// \brief One step of the left-deep join tree: joins the accumulated
/// result with `table_index` (into QuerySpec::tables) on equal columns.
struct JoinStep {
  int table_index = 0;
  JoinType type = JoinType::kInner;
  /// Positional column pairs: left side references columns of the
  /// accumulated result; right side references the new table.
  std::vector<std::string> left_columns;
  std::vector<std::string> right_columns;
};

/// \brief An SPJA query.
struct QuerySpec {
  std::string name;
  std::vector<TableRef> tables;   // tables[0] starts the join tree
  std::vector<Dnf> table_filters; // parallel to `tables` (may be empty DNF)
  std::vector<JoinStep> joins;    // tables[1..] in join order
  Dnf residual_filter;            // applied after all joins
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;
  /// Filter over the aggregated output (HAVING); columns refer to group
  /// keys or aggregate output names.
  Dnf having;
  /// Eliminate PREF duplicates and project these columns (used when there
  /// is no aggregation); empty = all columns.
  std::vector<std::string> projection;
  /// Coordinator-side ordering: (output column, descending).
  std::vector<std::pair<std::string, bool>> order_by;
  /// Row limit applied after ordering; -1 = unlimited.
  int64_t limit = -1;
};

/// \brief Fluent builder with name validation against a schema.
class QueryBuilder {
 public:
  QueryBuilder(const Schema* schema, std::string name) : schema_(schema) {
    spec_.name = std::move(name);
  }

  QueryBuilder& From(const std::string& table, const std::string& alias = "");
  QueryBuilder& Where(const std::string& alias_or_table, SimplePredicate pred);
  QueryBuilder& WhereDnf(const std::string& alias_or_table, Dnf dnf);
  QueryBuilder& Join(const std::string& table, const std::string& left_col,
                     const std::string& right_col, JoinType type = JoinType::kInner,
                     const std::string& alias = "");
  QueryBuilder& JoinMulti(const std::string& table,
                          std::vector<std::string> left_cols,
                          std::vector<std::string> right_cols,
                          JoinType type = JoinType::kInner,
                          const std::string& alias = "");
  QueryBuilder& ResidualFilter(Dnf dnf);
  QueryBuilder& GroupBy(std::vector<std::string> columns);
  QueryBuilder& Agg(AggFunc func, const std::string& column,
                    const std::string& output_name);
  QueryBuilder& Project(std::vector<std::string> columns);
  QueryBuilder& Having(Dnf dnf);
  QueryBuilder& OrderBy(const std::string& column, bool descending = false);
  QueryBuilder& Limit(int64_t n);

  Result<QuerySpec> Build();

 private:
  const Schema* schema_;
  QuerySpec spec_;
  Status status_;
};

/// Helpers for building predicates tersely.
inline SimplePredicate Eq(std::string col, Value v) {
  return {std::move(col), CompareOp::kEq, std::move(v), Value()};
}
inline SimplePredicate Ne(std::string col, Value v) {
  return {std::move(col), CompareOp::kNe, std::move(v), Value()};
}
inline SimplePredicate Lt(std::string col, Value v) {
  return {std::move(col), CompareOp::kLt, std::move(v), Value()};
}
inline SimplePredicate Le(std::string col, Value v) {
  return {std::move(col), CompareOp::kLe, std::move(v), Value()};
}
inline SimplePredicate Gt(std::string col, Value v) {
  return {std::move(col), CompareOp::kGt, std::move(v), Value()};
}
inline SimplePredicate Ge(std::string col, Value v) {
  return {std::move(col), CompareOp::kGe, std::move(v), Value()};
}
inline SimplePredicate Between(std::string col, Value lo, Value hi) {
  return {std::move(col), CompareOp::kBetween, std::move(lo), std::move(hi)};
}

}  // namespace pref
